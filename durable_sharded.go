package lmfao

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/data"
)

// DurableShardedSession is the durable counterpart of ShardedSession: the
// fact relation is hash-partitioned across N shards, each maintained by its
// own DurableSession with its own write-ahead log and checkpoints under
// dir/shard-N/. A manifest (dir/MANIFEST.json) records the partitioning so
// recovery re-partitions the pristine database identically, and every
// coordinated checkpoint appends one line to dir/CHECKPOINTS.jsonl with the
// per-shard LSNs and the merged ShardVector it covers.
//
// Unlike ShardedSession there are no coalescing worker queues: each shard's
// DurableSession worker logs and applies its updates one record at a time,
// in routing order, which is what makes per-shard recovery deterministic —
// coalescing merges depend on queue timing and would make the replayed
// version vector diverge from the live one. The trade is throughput for
// replayability; layer a ShardedSession in front when ingest rate matters
// more than durability.
//
// Checkpoints are stop-the-world per shard set: Checkpoint waits for every
// shard to drain, checkpoints each, then records the (now consistent)
// merged vector. Automatic checkpoints trigger on the total update count
// across shards (DurableOptions.CheckpointEvery); the per-shard automatic
// policy is disabled in favor of this coordination.
//
// DurableShardedSession implements Maintainer.
type DurableShardedSession struct {
	shards   []*DurableSession
	factName string
	key      []AttrID
	// factSchema is a detached zero-row schema carrier for routing (see
	// ShardedSession.factSchema).
	factSchema *data.Relation
	dir        string
	opts       DurableOptions

	// mu serializes routing and fan-out, so each shard's log receives this
	// session's updates in call order, and guards sinceCkpt plus the
	// checkpoint log. Per-shard application still proceeds in parallel —
	// the critical section only covers enqueueing.
	mu        sync.Mutex
	sinceCkpt int
	closed    atomic.Bool
}

// shardManifest is the durable record of the partitioning, without which a
// recovery could not re-partition the pristine database identically.
type shardManifest struct {
	Shards int     `json:"shards"`
	Fact   string  `json:"fact"`
	Key    []int32 `json:"key"`
}

// ShardCheckpointRecord is one line of a durable sharded session's
// checkpoint log (dir/CHECKPOINTS.jsonl): the per-shard WAL positions of
// one coordinated checkpoint round and the merged version vector the
// checkpointed states reflect.
type ShardCheckpointRecord struct {
	// LSNs holds each shard's last committed LSN at the checkpoint.
	LSNs []uint64 `json:"lsns"`
	// Vector is the merged ShardVector the checkpoint covers.
	Vector ShardVector `json:"vector"`
}

func manifestPath(dir string) string    { return filepath.Join(dir, "MANIFEST.json") }
func checkpointLog(dir string) string   { return filepath.Join(dir, "CHECKPOINTS.jsonl") }
func shardDir(dir string, i int) string { return filepath.Join(dir, fmt.Sprintf("shard-%d", i)) }

// NewDurableShardedSession partitions db per so and builds one
// DurableSession per shard under dir/shard-N/, writing the partitioning
// manifest. The directory must not already hold durable sharded state; use
// RecoverShardedSession for that.
func NewDurableShardedSession(db *Database, queries []*Query, opts Options, so ShardOptions, dopts DurableOptions, dir string) (*DurableShardedSession, error) {
	dopts = dopts.norm()
	if _, err := os.Stat(manifestPath(dir)); err == nil {
		return nil, fmt.Errorf("lmfao: %s already holds durable sharded state; use RecoverShardedSession", dir)
	}
	factRel, key, err := resolveShardFact(db, so)
	if err != nil {
		return nil, err
	}
	shardDBs, err := data.PartitionDatabase(db, factRel.Name, key, so.Shards)
	if err != nil {
		return nil, err
	}
	s := &DurableShardedSession{
		shards:     make([]*DurableSession, so.Shards),
		factName:   factRel.Name,
		key:        append([]AttrID(nil), key...),
		factSchema: emptySchemaRelation(factRel),
		dir:        dir,
		opts:       dopts,
	}
	for i, sdb := range shardDBs {
		shard, err := NewDurableSession(sdb, queries, opts, shardDurableOptions(dopts), shardDir(dir, i))
		if err != nil {
			for _, sh := range s.shards[:i] {
				sh.Kill()
			}
			return nil, fmt.Errorf("lmfao: shard %d: %w", i, err)
		}
		s.shards[i] = shard
	}
	m := shardManifest{Shards: so.Shards, Fact: factRel.Name, Key: make([]int32, len(key))}
	for i, a := range key {
		m.Key[i] = int32(a)
	}
	if err := writeManifest(dir, m); err != nil {
		for _, sh := range s.shards {
			sh.Kill()
		}
		return nil, err
	}
	return s, nil
}

// RecoverShardedSession rebuilds a durable sharded session from dir. Like
// RecoverSession, the caller supplies the pristine initial database, query
// batch and options; the manifest's partitioning re-partitions the pristine
// base exactly as creation did, and each shard recovers independently from
// its own checkpoint and log.
func RecoverShardedSession(dir string, db *Database, queries []*Query, opts Options, dopts DurableOptions) (*DurableShardedSession, error) {
	dopts = dopts.norm()
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	factRel := db.Relation(m.Fact)
	if factRel == nil {
		return nil, fmt.Errorf("lmfao: manifest fact relation %q not in database — recover with the session's original database", m.Fact)
	}
	key := make([]AttrID, len(m.Key))
	for i, a := range m.Key {
		key[i] = AttrID(a)
	}
	shardDBs, err := data.PartitionDatabase(db, m.Fact, key, m.Shards)
	if err != nil {
		return nil, err
	}
	s := &DurableShardedSession{
		shards:     make([]*DurableSession, m.Shards),
		factName:   m.Fact,
		key:        key,
		factSchema: emptySchemaRelation(factRel),
		dir:        dir,
		opts:       dopts,
	}
	for i, sdb := range shardDBs {
		shard, err := RecoverSession(shardDir(dir, i), sdb, queries, opts, shardDurableOptions(dopts))
		if err != nil {
			for _, sh := range s.shards[:i] {
				sh.Kill()
			}
			return nil, fmt.Errorf("lmfao: shard %d: %w", i, err)
		}
		s.shards[i] = shard
	}
	return s, nil
}

// shardDurableOptions derives the per-shard options: automatic checkpoints
// off (the sharded layer coordinates them on the total update count).
func shardDurableOptions(dopts DurableOptions) DurableOptions {
	dopts.CheckpointEvery = -1
	return dopts
}

// NumShards returns the shard count.
func (s *DurableShardedSession) NumShards() int { return len(s.shards) }

// Shard returns shard i's DurableSession — read it freely; writing through
// it directly would bypass routing and break the partition invariant.
func (s *DurableShardedSession) Shard(i int) *DurableSession { return s.shards[i] }

// FactRelation returns the name of the hash-partitioned relation.
func (s *DurableShardedSession) FactRelation() string { return s.factName }

// ShardKey returns the attributes the fact relation is partitioned on.
func (s *DurableShardedSession) ShardKey() []AttrID { return append([]AttrID(nil), s.key...) }

// Dir returns the durable state directory.
func (s *DurableShardedSession) Dir() string { return s.dir }

// Run computes the batch on every shard in parallel (each shard writes its
// own covering checkpoint), records one coordinated checkpoint line, and
// returns the first merged snapshot.
//
// Unlike ShardedSession.Run, a FAILED durable Run is not atomic across
// shards: each shard's publish is coupled to its covering checkpoint, so
// shards that succeeded have already durably republished when the error
// returns. Recover the failing shard (or call Run again) before trusting
// merged reads; a repeat Run re-publishes every shard.
func (s *DurableShardedSession) Run() (Queryable, error) {
	if s.closed.Load() {
		return nil, errSessionClosed
	}
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *DurableSession) {
			defer wg.Done()
			_, errs[i] = sh.Run()
		}(i, sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("lmfao: shard %d: %w", i, err)
		}
	}
	s.mu.Lock()
	err := s.recordCheckpointLocked()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return s.Snapshot(), nil
}

// ApplyAsync routes the updates and fans them out to the shard workers,
// returning a buffered channel that delivers one aggregate result when
// every involved shard has committed (and, when the coordinated checkpoint
// interval was crossed, after the checkpoint round). Per shard, updates log
// and commit in call order; the cross-shard consistency contract matches
// ShardedSession's.
func (s *DurableShardedSession) ApplyAsync(updates ...Update) <-chan ApplyResult {
	ch := make(chan ApplyResult, 1)
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		ch <- ApplyResult{Err: errSessionClosed}
		return ch
	}
	perShard, err := routeUpdates(s.factSchema, s.key, len(s.shards), updates)
	if err != nil {
		s.mu.Unlock()
		ch <- ApplyResult{Err: err}
		return ch
	}
	var chans []<-chan ApplyResult
	for sh, list := range perShard {
		if len(list) == 0 {
			continue
		}
		chans = append(chans, s.shards[sh].ApplyAsync(list...))
		s.sinceCkpt += len(list)
	}
	ckpt := s.opts.CheckpointEvery > 0 && s.sinceCkpt >= s.opts.CheckpointEvery
	if ckpt {
		s.sinceCkpt = 0
	}
	s.mu.Unlock()
	if len(chans) == 0 {
		ch <- ApplyResult{}
		return ch
	}
	go func() {
		var out ApplyResult
		for _, c := range chans {
			r := <-c
			out.Stats = append(out.Stats, r.Stats...)
			if r.Err != nil && out.Err == nil {
				out.Err = r.Err
			}
		}
		if ckpt && out.Err == nil {
			if err := s.Checkpoint(); err != nil {
				out.Err = err
			}
		}
		ch <- out
	}()
	return ch
}

// Apply is ApplyAsync plus the wait: when it returns, every involved shard
// has durably logged and committed its slice of the updates.
func (s *DurableShardedSession) Apply(updates ...Update) ([]*ApplyStats, error) {
	res := <-s.ApplyAsync(updates...)
	return res.Stats, res.Err
}

// Checkpoint forces one coordinated checkpoint round: quiesce every shard,
// checkpoint each, then append the covered per-shard LSNs and merged vector
// to the checkpoint log. New updates block (on routing) for the duration.
func (s *DurableShardedSession) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards {
		sh.Wait()
	}
	for i, sh := range s.shards {
		if err := sh.Checkpoint(); err != nil {
			return fmt.Errorf("lmfao: shard %d checkpoint: %w", i, err)
		}
	}
	return s.recordCheckpointLocked()
}

// recordCheckpointLocked appends the current per-shard LSNs and merged
// vector to the checkpoint log. Caller holds mu with all shards quiesced.
func (s *DurableShardedSession) recordCheckpointLocked() error {
	rec := ShardCheckpointRecord{LSNs: make([]uint64, len(s.shards))}
	for i, sh := range s.shards {
		rec.LSNs[i] = sh.LastLSN()
	}
	if head := s.Head(); head != nil {
		rec.Vector = head.Versions()
	}
	return appendCheckpointRecord(s.dir, rec)
}

// Snapshot returns the current merged snapshot as a Queryable, or nil
// before Run has completed on every shard (see ShardedSession.Snapshot).
func (s *DurableShardedSession) Snapshot() Queryable {
	if sn := s.Head(); sn != nil {
		return sn
	}
	return nil
}

// Head returns the current merged snapshot as a concrete *ShardedSnapshot,
// nil before Run has completed on every shard (see ShardedSession.Head).
func (s *DurableShardedSession) Head() *ShardedSnapshot {
	shards := make([]*Snapshot, len(s.shards))
	for i, sh := range s.shards {
		sn := sh.Head()
		if sn == nil {
			return nil
		}
		shards[i] = sn
	}
	return &ShardedSnapshot{shards: shards}
}

// Wait blocks until every update accepted so far has been applied and
// committed on its shard.
func (s *DurableShardedSession) Wait() {
	for _, sh := range s.shards {
		sh.Wait()
	}
}

// Close drains and closes every shard (each writes a final checkpoint) and
// records the final coordinated checkpoint line. Further maintenance calls
// fail; snapshots stay readable. Idempotent.
func (s *DurableShardedSession) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Swap(true) {
		return
	}
	for _, sh := range s.shards {
		sh.Close()
	}
	_ = s.recordCheckpointLocked()
}

// Kill closes every shard without final checkpoints or log syncs — the
// shutdown of a simulated whole-process crash (testing). Idempotent with
// Close.
func (s *DurableShardedSession) Kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Swap(true) {
		return
	}
	for _, sh := range s.shards {
		sh.Kill()
	}
}

// ReadShardCheckpoints returns a durable sharded session's checkpoint log
// records, oldest first (empty if no checkpoint round completed). Torn
// trailing lines — a crash mid-append — are ignored.
func ReadShardCheckpoints(dir string) ([]ShardCheckpointRecord, error) {
	f, err := os.Open(checkpointLog(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []ShardCheckpointRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		var rec ShardCheckpointRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func writeManifest(dir string, m shardManifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	// Write-tmp / fsync / rename: the rename publishes atomically, but only
	// the Sync guarantees the bytes behind the new name survive a crash —
	// os.WriteFile alone could publish an empty or torn manifest.
	tmp := manifestPath(dir) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, manifestPath(dir)); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func readManifest(dir string) (shardManifest, error) {
	var m shardManifest
	b, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		return m, fmt.Errorf("lmfao: no durable sharded state in %s: %w", dir, err)
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("lmfao: corrupt shard manifest: %w", err)
	}
	if m.Shards < 1 || m.Fact == "" {
		return m, fmt.Errorf("lmfao: corrupt shard manifest: %+v", m)
	}
	return m, nil
}

// appendCheckpointRecord appends one JSONL line to the checkpoint log and
// fsyncs it.
func appendCheckpointRecord(dir string, rec ShardCheckpointRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(checkpointLog(dir), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
