package lmfao

import (
	"fmt"

	"repro/internal/ivm"
	"repro/internal/moo"
	"repro/internal/query"
)

// This file defines the serving API: the read/write contract every layer of
// the system publishes and every application consumes. The read side is
// Queryable — satisfied by *Snapshot, *ShardedSnapshot and the one-shot
// adapter RunQueryable returns — and the write/serve side is Maintainer,
// satisfied by *Session and *ShardedSession. Application entry points
// (BuildCovarMatrixFrom, LearnDecisionTreeFrom, …) take a Queryable, so a
// model can be re-fit from a live session between maintenance rounds with
// the exact code path that fits it from a one-shot engine run.

// Queryable is the read side of the serving API: one immutable, committed
// batch of group-by aggregate results, independent of how it was computed —
// a one-shot Engine run (RunQueryable), a Session snapshot, or a merged
// ShardedSession snapshot. Its method set is the full read contract:
//
//	NumQueries() int
//	Result(queryIdx int) *Result
//	Lookup(queryIdx int, key ...int64) ([]float64, bool)
//	Versions() ShardVector
//
// NumQueries returns the size of the served batch. Result returns query
// queryIdx's materialized output view (batch order; read-only, possibly
// carrying a trailing hidden tuple-count column after the query's
// aggregates), or nil when the implementation holds no state for it. Lookup
// returns one group's aggregate row — exactly the query's aggregates in
// query order, hidden columns trimmed — with ok=false for absent groups.
// Versions returns the base-relation version metadata: one VersionVector
// per independent writer (length 1 for unsharded states; read-only).
//
// Every application entry point with a From suffix learns from a Queryable,
// provided the Queryable serves that application's canonical batch (see
// CovarBatch, PolynomialBatch, MIBatch, CubeBatch). Combine batches in one
// session and carve per-application windows with SubQueryable.
type Queryable interface {
	// NumQueries returns the number of queries in the served batch.
	NumQueries() int
	// Result returns query queryIdx's materialized output (read-only).
	Result(queryIdx int) *Result
	// Lookup returns one group's aggregate row, or ok=false if absent.
	Lookup(queryIdx int, key ...int64) ([]float64, bool)
	// Versions returns one VersionVector per independent writer.
	Versions() ShardVector
}

// Requerier is the optional refinement hook some Queryable implementations
// provide alongside the static read contract. Its method set:
//
//	Requery(queries []*Query) ([]*Result, error)
//
// Requery evaluates a fresh ad-hoc batch over the database behind the
// Queryable and returns one materialized view per query, batch order. The
// decision-tree learner (LearnDecisionTreeFrom) needs it: every tree node
// issues a new batch conditioned on the node's ancestor splits, which no
// precomputed snapshot can answer. Snapshot and ShardedSnapshot implement
// it by running the batch on their session's engine(s), serialized with
// maintenance (per shard), so a requery never races the writer — but it
// reflects the writer's current base data, which may be newer than the
// snapshot's pinned Versions. Quiesce updates (ShardedSession.Wait, or
// simply between synchronous Apply calls) when the refinement must agree
// with the snapshot exactly. RunQueryable's adapter implements it by
// running on the wrapped engine directly.
type Requerier interface {
	// Requery evaluates a fresh batch behind the Queryable.
	Requery(queries []*Query) ([]*Result, error)
}

// Maintainer is the write/serve side of the serving API — the uniform
// contract over *Session (one writer) and *ShardedSession (N partitioned
// writers), so serving-tier code never special-cases the shard count. Its
// method set:
//
//	Run() (Queryable, error)
//	Apply(updates ...Update) ([]*ApplyStats, error)
//	ApplyAsync(updates ...Update) <-chan ApplyResult
//	Snapshot() Queryable
//	Wait()
//	Close()
//
// Run computes the batch from scratch and publishes (and returns) the first
// snapshot; it may be called again to force a full recompute. Apply mutates
// base data and incrementally maintains every view, publishing each
// committed round; ApplyAsync does the same off the caller's goroutine and
// delivers the one result on the returned channel. Snapshot returns the
// latest committed state (nil before the first Run) — lock-free, immutable,
// safe for unrestricted concurrent use. Wait blocks until every update
// accepted so far has committed (quiesce producers first: concurrent
// ApplyAsync callers make the drained condition a moving target). Close
// drains — updates accepted before the Close still commit — then
// permanently stops the maintainer: further Run/Apply/ApplyAsync calls
// fail, while published snapshots stay fully readable. Close is
// idempotent.
type Maintainer interface {
	// Run computes the batch from scratch and publishes a snapshot.
	Run() (Queryable, error)
	// Apply mutates base data and maintains every view incrementally.
	Apply(updates ...Update) ([]*ApplyStats, error)
	// ApplyAsync is Apply off the caller's goroutine.
	ApplyAsync(updates ...Update) <-chan ApplyResult
	// Snapshot returns the latest committed state, nil before Run.
	Snapshot() Queryable
	// Wait blocks until accepted updates have committed.
	Wait()
	// Close stops the maintainer; snapshots stay readable.
	Close()
}

// ErrSessionClosed is the sentinel error every Maintainer returns from
// Run/Apply/ApplyAsync once Close has been called (match with errors.Is).
// Serving-tier code uses it to distinguish a permanently shut-down
// maintainer — published snapshots stay readable — from a transient
// maintenance failure.
var ErrSessionClosed = errSessionClosed

// RunQueryable evaluates the batch once on eng and wraps the result in the
// serving contract: an immutable *Snapshot (epoch 1) answering Queryable
// reads from the materialized outputs, with Requery backed by eng. It is
// the bridge from the static engine API to the serving API — applications
// written against Queryable run unchanged over one-shot results. The
// engine stays caller-owned: do not run it concurrently with the returned
// adapter's Requery.
func RunQueryable(eng *Engine, queries []*Query) (*Snapshot, error) {
	res, err := eng.Run(queries)
	if err != nil {
		return nil, err
	}
	for _, v := range res.Results {
		v.EnsureIndex()
	}
	versions := res.Versions
	if versions == nil {
		versions = ivm.CaptureVersions(eng.DB())
	}
	return &Snapshot{epoch: 1, res: res, versions: versions,
		requery: func(qs []*query.Query) (*moo.BatchResult, error) {
			return eng.Run(qs)
		}}, nil
}

// SubQueryable restricts q to the half-open query-index window [lo, hi):
// the returned Queryable serves queries lo..hi-1 of q as its own batch
// 0..hi-lo-1, sharing q's state. It is the carving tool for combined
// batches — one session can maintain several applications' batches
// concatenated, and each application reads its window:
//
//	batch := append(lmfao.CovarBatch(spec), lmfao.MIBatch(attrs)...)
//	...
//	covar, _ := lmfao.SubQueryable(sess.Snapshot(), 0, len(lmfao.CovarBatch(spec)))
//
// If q implements Requerier, so does the returned Queryable (requeries are
// batch-agnostic and delegate unchanged).
func SubQueryable(q Queryable, lo, hi int) (Queryable, error) {
	if q == nil {
		return nil, fmt.Errorf("lmfao: SubQueryable over a nil Queryable")
	}
	if lo < 0 || hi < lo || hi > q.NumQueries() {
		return nil, fmt.Errorf("lmfao: SubQueryable window [%d, %d) out of range (batch has %d queries)", lo, hi, q.NumQueries())
	}
	sub := subQueryable{q: q, lo: lo, hi: hi}
	if rq, ok := q.(Requerier); ok {
		return subRequeryable{subQueryable: sub, rq: rq}, nil
	}
	return sub, nil
}

// subQueryable windows another Queryable's query indices.
type subQueryable struct {
	q      Queryable
	lo, hi int
}

// NumQueries returns the window width.
func (s subQueryable) NumQueries() int { return s.hi - s.lo }

// Result translates the window index and forwards (nil out of window).
func (s subQueryable) Result(queryIdx int) *Result {
	if queryIdx < 0 || s.lo+queryIdx >= s.hi {
		return nil
	}
	return s.q.Result(s.lo + queryIdx)
}

// Lookup translates the window index and forwards (miss out of window).
func (s subQueryable) Lookup(queryIdx int, key ...int64) ([]float64, bool) {
	if queryIdx < 0 || s.lo+queryIdx >= s.hi {
		return nil, false
	}
	return s.q.Lookup(s.lo+queryIdx, key...)
}

// Versions forwards the underlying version metadata unchanged.
func (s subQueryable) Versions() ShardVector { return s.q.Versions() }

// subRequeryable additionally forwards the refinement hook.
type subRequeryable struct {
	subQueryable
	rq Requerier
}

// Requery forwards to the underlying hook (requeries are batch-agnostic).
func (s subRequeryable) Requery(queries []*Query) ([]*Result, error) {
	return s.rq.Requery(queries)
}
