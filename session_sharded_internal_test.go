package lmfao

import (
	"testing"

	"repro/internal/data"
)

func insU(rel string, keys []int64, vals []float64) Update {
	return Update{Relation: rel, Inserts: []data.Column{data.NewIntColumn(keys), data.NewFloatColumn(vals)}}
}

func delU(rel string, keys []int64, vals []float64) Update {
	return Update{Relation: rel, Deletes: []data.Column{data.NewIntColumn(keys), data.NewFloatColumn(vals)}}
}

// TestShardedRunPartialFailureAtomic pins the staged-publish contract of
// ShardedSession.Run: when one shard's recompute fails, NO shard publishes —
// the merged head keeps serving the pre-Run epochs and values instead of
// mixing recomputed shards with stale ones. The failing shard is injected by
// closing one shard session directly: its stageRun then fails
// deterministically with errSessionClosed while its already-published
// snapshot stays readable for the post-failure assertions.
func TestShardedRunPartialFailureAtomic(t *testing.T) {
	db := NewDatabase()
	store := db.Attr("store", Key)
	amount := db.Attr("amount", Numeric)
	if err := db.AddRelation(NewRelation("sales",
		[]AttrID{store, amount},
		[]Column{IntColumn([]int64{0, 1, 2, 3}), FloatColumn([]float64{1, 2, 3, 4})})); err != nil {
		t.Fatal(err)
	}
	queries := []*Query{NewQuery("total", nil, Sum(amount), Count())}
	s, err := NewShardedSession(db, queries, DefaultOptions(), ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// A second full Run publishes on every shard: epochs advance in
	// lock-step. This is the all-success half of the atomicity contract.
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	head := s.Head()
	preEpochs := head.Epochs()
	if preEpochs[0] != 2 || preEpochs[1] != 2 {
		t.Fatalf("epochs after two Runs = %v, want [2 2]", preEpochs)
	}
	preRow, ok := head.Lookup(0)
	if !ok {
		t.Fatal("scalar lookup failed on first snapshot")
	}

	// Inject a failing shard: close shard 1's session, so its stageRun
	// errors while shard 0's succeeds. Before the staged-publish fix, shard
	// 0 published its recompute before Run returned the error, leaving the
	// head a mix of epoch 3 (shard 0) and epoch 2 (shard 1).
	s.sessions[1].Close()
	if _, err := s.Run(); err == nil {
		t.Fatal("Run with a failing shard did not error")
	}
	post := s.Head()
	postEpochs := post.Epochs()
	for i := range preEpochs {
		if postEpochs[i] != preEpochs[i] {
			t.Fatalf("shard %d epoch advanced across a failed Run: %d -> %d (partial publish)",
				i, preEpochs[i], postEpochs[i])
		}
	}
	if row, ok := post.Lookup(0); !ok || row[0] != preRow[0] || row[1] != preRow[1] {
		t.Fatalf("merged lookup changed across a failed Run: %v -> %v (ok=%v)", preRow, row, ok)
	}
}

func TestCoalesceUpdates(t *testing.T) {
	updates := []Update{
		insU("F", []int64{1}, []float64{10}), // job 0
		insU("F", []int64{2}, []float64{20}), // job 1: merges into previous
		delU("F", []int64{3}, []float64{30}), // job 1: delete run starts
		delU("F", []int64{4}, []float64{40}), // job 2: merges into previous
		insU("G", []int64{5}, []float64{50}), // job 3: other relation
		insU("G", []int64{6}, []float64{60}), // job 3: merges
	}
	owner := []int{0, 1, 1, 2, 3, 3}
	out, firstJob := coalesceUpdates(updates, owner)
	if len(out) != 3 {
		t.Fatalf("coalesced into %d updates, want 3: %+v", len(out), out)
	}
	if got, want := out[0].InsertRows(), 2; got != want {
		t.Fatalf("out[0] has %d inserts, want %d", got, want)
	}
	if out[0].Inserts[0].Ints[0] != 1 || out[0].Inserts[0].Ints[1] != 2 {
		t.Fatalf("out[0] insert keys = %v, want [1 2]", out[0].Inserts[0].Ints)
	}
	if got, want := out[1].DeleteRows(), 2; got != want {
		t.Fatalf("out[1] has %d deletes, want %d", got, want)
	}
	if out[2].Relation != "G" || out[2].InsertRows() != 2 {
		t.Fatalf("out[2] = %+v, want 2 G-inserts", out[2])
	}
	// firstJob: the error-attribution boundary. A failure of out[1] must
	// taint jobs >= 1 (its first contributor), never job 0.
	want := []int{0, 1, 3}
	for i := range want {
		if firstJob[i] != want[i] {
			t.Fatalf("firstJob = %v, want %v", firstJob, want)
		}
	}
	// A mixed insert+delete update must never merge with its neighbors.
	mixed := []Update{
		insU("F", []int64{1}, []float64{1}),
		{Relation: "F",
			Inserts: []data.Column{data.NewIntColumn([]int64{2}), data.NewFloatColumn([]float64{2})},
			Deletes: []data.Column{data.NewIntColumn([]int64{1}), data.NewFloatColumn([]float64{1})}},
		insU("F", []int64{3}, []float64{3}),
	}
	out, _ = coalesceUpdates(mixed, []int{0, 1, 2})
	if len(out) != 3 {
		t.Fatalf("mixed update coalesced away: %d outputs, want 3", len(out))
	}
}
