package lmfao_test

import (
	"fmt"
	"log"
	"os"
	"sort"

	lmfao "repro"
)

// salesDB builds the two-relation example database used by the doc
// examples: Sales(store, amount) natural-joined with Stores(store, region).
func salesDB() (db *lmfao.Database, region, amount lmfao.AttrID) {
	db = lmfao.NewDatabase()
	store := db.Attr("store", lmfao.Key)
	amount = db.Attr("amount", lmfao.Numeric)
	region = db.Attr("region", lmfao.Categorical)
	if err := db.AddRelation(lmfao.NewRelation("Sales",
		[]lmfao.AttrID{store, amount},
		[]lmfao.Column{
			lmfao.IntColumn([]int64{0, 0, 1, 2}),
			lmfao.FloatColumn([]float64{10, 5, 7, 3}),
		})); err != nil {
		log.Fatal(err)
	}
	if err := db.AddRelation(lmfao.NewRelation("Stores",
		[]lmfao.AttrID{store, region},
		[]lmfao.Column{
			lmfao.IntColumn([]int64{0, 1, 2}),
			lmfao.IntColumn([]int64{0, 0, 1}),
		})); err != nil {
		log.Fatal(err)
	}
	return db, region, amount
}

// printGrouped prints a grouped result's first aggregate column in key
// order (result rows follow the scan order, which is not part of the API).
func printGrouped(res *lmfao.Result) {
	type row struct {
		key int64
		val float64
	}
	rows := make([]row, res.NumRows())
	for i := range rows {
		rows[i] = row{res.KeyAt(i, 0), res.Val(i, 0)}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	for _, r := range rows {
		fmt.Printf("region %d: %g\n", r.key, r.val)
	}
}

// ExampleNewEngine runs a small batch — one scalar and one grouped
// aggregate over the natural join of Sales and Stores — from scratch.
func ExampleNewEngine() {
	db, region, amount := salesDB()
	eng, err := lmfao.NewEngine(db, lmfao.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run([]*lmfao.Query{
		lmfao.NewQuery("total", nil, lmfao.Sum(amount)),
		lmfao.NewQuery("by_region", []lmfao.AttrID{region}, lmfao.Sum(amount)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total = %g\n", res.Results[0].Val(0, 0))
	printGrouped(res.Results[1])
	// Output:
	// total = 25
	// region 0: 22
	// region 1: 3
}

// ExampleNewSession computes a batch once and keeps it fresh under
// base-data updates: Apply mutates the relations and incrementally
// maintains every view instead of recomputing from scratch.
func ExampleNewSession() {
	db, region, amount := salesDB()
	queries := []*lmfao.Query{
		lmfao.NewQuery("by_region", []lmfao.AttrID{region}, lmfao.Sum(amount)),
	}
	sess, err := lmfao.NewSession(db, queries, lmfao.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		log.Fatal(err)
	}
	printGrouped(sess.Result().Results[0])

	// Two new sales at store 1, one returned sale at store 0 — applied and
	// maintained in one call.
	stats, err := sess.Apply(
		lmfao.InsertRows("Sales",
			lmfao.IntColumn([]int64{1, 1}), lmfao.FloatColumn([]float64{4, 2})),
		lmfao.DeleteRows("Sales",
			lmfao.IntColumn([]int64{0}), lmfao.FloatColumn([]float64{5})),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental: %v %v\n", stats[0].Incremental, stats[1].Incremental)
	printGrouped(sess.Result().Results[0])
	// Output:
	// region 0: 22
	// region 1: 3
	// incremental: true true
	// region 0: 23
	// region 1: 3
}

// ExampleShardedSession scales maintenance across shard writers: the Sales
// fact relation is hash-partitioned on store into two shards (Stores is
// replicated), each maintained by its own Session, and reads merge the
// per-shard results — aggregates add, group sets union — so the answers
// match an unsharded session exactly.
func ExampleShardedSession() {
	db, region, amount := salesDB()
	store, _ := db.AttrByName("store")
	queries := []*lmfao.Query{
		lmfao.NewQuery("by_region", []lmfao.AttrID{region}, lmfao.Sum(amount)),
	}
	sharded, err := lmfao.NewShardedSession(db, queries, lmfao.DefaultOptions(),
		lmfao.ShardOptions{Shards: 2, Relation: "Sales", Key: []lmfao.AttrID{store}})
	if err != nil {
		log.Fatal(err)
	}
	defer sharded.Close()
	if _, err := sharded.Run(); err != nil {
		log.Fatal(err)
	}

	// Updates fan out: each inserted tuple routes to its hash shard, and the
	// per-shard writers maintain their partitions independently (queued
	// updates batch and coalesce per shard under ApplyAsync).
	if _, err := sharded.Apply(lmfao.InsertRows("Sales",
		lmfao.IntColumn([]int64{1, 2}), lmfao.FloatColumn([]float64{4, 40}))); err != nil {
		log.Fatal(err)
	}

	sn := sharded.Head() // vector of per-shard immutable snapshots
	row, _ := sn.Lookup(0, 0)
	fmt.Printf("region 0: %g\n", row[0])
	row, _ = sn.Lookup(0, 1)
	fmt.Printf("region 1: %g\n", row[0])
	fmt.Printf("shards: %d\n", sn.NumShards())
	// Output:
	// region 0: 26
	// region 1: 43
	// shards: 2
}

// ExampleQueryable re-fits a model from a live session between maintenance
// rounds: the application entry points take a Queryable — the uniform read
// contract over one-shot engine runs, session snapshots and merged sharded
// snapshots — so the covar matrix is read straight out of the maintained
// views, nothing recomputed. The identical call over RunQueryable's
// one-shot adapter proves the three backings serve one contract.
func ExampleQueryable() {
	db, region, amount := salesDB()
	spec := lmfao.LinRegSpec{Categorical: []lmfao.AttrID{region}, Label: amount, Lambda: 0.1}
	batch := lmfao.CovarBatch(spec) // the canonical batch the session serves
	sess, err := lmfao.NewSession(db, batch, lmfao.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		log.Fatal(err)
	}
	cm, err := lmfao.BuildCovarMatrixFrom(sess.Snapshot(), db, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training rows: %g\n", cm.Count)

	// Stream an update; the session maintains the covar views incrementally.
	if _, err := sess.Apply(lmfao.InsertRows("Sales",
		lmfao.IntColumn([]int64{2}), lmfao.FloatColumn([]float64{9}))); err != nil {
		log.Fatal(err)
	}
	cm, err = lmfao.BuildCovarMatrixFrom(sess.Snapshot(), db, spec) // fresh model, zero recompute
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after insert: %g\n", cm.Count)

	// The same entry point over a one-shot engine run (the updates are
	// quiesced, so the answers agree).
	eng, err := lmfao.NewEngine(db, lmfao.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	oneShot, err := lmfao.RunQueryable(eng, batch)
	if err != nil {
		log.Fatal(err)
	}
	cm2, err := lmfao.BuildCovarMatrixFrom(oneShot, db, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-shot agrees: %v\n", cm2.Count == cm.Count)
	// Output:
	// training rows: 4
	// after insert: 5
	// one-shot agrees: true
}

// ExampleSession_Snapshot serves reads from immutable snapshots while
// maintenance commits in the background: a snapshot acquired before an
// update keeps answering from the old version, the one acquired after sees
// the new, and neither read ever blocks on the writer.
func ExampleSession_Snapshot() {
	db, region, amount := salesDB()
	queries := []*lmfao.Query{
		lmfao.NewQuery("by_region", []lmfao.AttrID{region}, lmfao.Sum(amount)),
	}
	sess, err := lmfao.NewSession(db, queries, lmfao.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		log.Fatal(err)
	}

	before := sess.Head() // pinned: immune to later maintenance

	// Maintain in the background; readers keep serving `before` meanwhile.
	res := <-sess.ApplyAsync(lmfao.InsertRows("Sales",
		lmfao.IntColumn([]int64{2}), lmfao.FloatColumn([]float64{40})))
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	after := sess.Head()

	oldRow, _ := before.Lookup(0, 1) // region 1 in the old version
	newRow, _ := after.Lookup(0, 1)  // region 1 after the insert
	fmt.Printf("epochs: %d -> %d\n", before.Epoch(), after.Epoch())
	fmt.Printf("region 1 before: %g, after: %g\n", oldRow[0], newRow[0])
	fmt.Printf("sales version advanced: %v\n",
		after.VersionVector()["Sales"] > before.VersionVector()["Sales"])
	// Output:
	// epochs: 1 -> 2
	// region 1 before: 3, after: 43
	// sales version advanced: true
}

// ExampleDurableSession survives a crash: updates are logged to a WAL
// before they apply, checkpoints bound replay, and RecoverSession rebuilds
// the maintained views from the newest checkpoint plus the log suffix —
// landing exactly on the state the log committed.
func ExampleDurableSession() {
	db, region, amount := salesDB()
	queries := []*lmfao.Query{
		lmfao.NewQuery("by_region", []lmfao.AttrID{region}, lmfao.Sum(amount)),
	}
	dir, err := os.MkdirTemp("", "lmfao-durable")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sess, err := lmfao.NewDurableSession(db, queries, lmfao.DefaultOptions(),
		lmfao.DurableOptions{SyncEvery: 1}, dir)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Apply(lmfao.InsertRows("Sales",
		lmfao.IntColumn([]int64{1}), lmfao.FloatColumn([]float64{4}))); err != nil {
		log.Fatal(err)
	}
	// Kill abandons the session without a final checkpoint — the crash.
	sess.Kill()

	// Recovery starts from the pristine base data plus the durable dir.
	pristine, _, _ := salesDB()
	recovered, err := lmfao.RecoverSession(dir, pristine, queries,
		lmfao.DefaultOptions(), lmfao.DurableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()
	fmt.Printf("replayed through LSN %d\n", recovered.LastLSN())
	printGrouped(recovered.Head().Result(0))
	// Output:
	// replayed through LSN 1
	// region 0: 26
	// region 1: 3
}

// ExampleSession_monoidAggregates maintains aggregates outside the
// sum-product semiring — MIN, MAX and top-k per group — under deletes.
// These cannot subtract a removed tuple the way a SUM can; the planner
// compiles each one to an internal count-valued support view, and a delete
// that shrinks a group's support re-folds exactly that group's columns.
func ExampleSession_monoidAggregates() {
	db := lmfao.NewDatabase()
	store := db.Attr("store", lmfao.Key)
	item := db.Attr("item", lmfao.Categorical)
	region := db.Attr("region", lmfao.Categorical)
	if err := db.AddRelation(lmfao.NewRelation("Sales",
		[]lmfao.AttrID{store, item},
		[]lmfao.Column{
			lmfao.IntColumn([]int64{0, 0, 1, 2, 2}),
			lmfao.IntColumn([]int64{5, 3, 8, 7, 2}),
		})); err != nil {
		log.Fatal(err)
	}
	if err := db.AddRelation(lmfao.NewRelation("Stores",
		[]lmfao.AttrID{store, region},
		[]lmfao.Column{
			lmfao.IntColumn([]int64{0, 1, 2}),
			lmfao.IntColumn([]int64{0, 0, 1}),
		})); err != nil {
		log.Fatal(err)
	}

	// The wire form of this query is "extrema(region; SUM 1, MIN item,
	// MAX item, TOP2 item)" — see /v1/requery in cmd/lmfao-serve.
	q := lmfao.NewQuery("extrema", []lmfao.AttrID{region}, lmfao.Count())
	q.MonoidAggs = []lmfao.MonoidAgg{
		lmfao.MinOf(item), lmfao.MaxOf(item), lmfao.TopKOf(item, 2)}
	sess, err := lmfao.NewSession(db, []*lmfao.Query{q}, lmfao.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		log.Fatal(err)
	}
	row := func(region int64) {
		res := sess.Result().Results[0]
		i := res.Lookup(region)
		fmt.Printf("region %d: n=%g min=%g max=%g top2=[%g %g]\n", region,
			res.Val(i, 0), res.Val(i, 1), res.Val(i, 2), res.Val(i, 3), res.Val(i, 4))
	}
	row(0)
	row(1)

	// Deleting region 0's maximum (item 8) cannot be subtracted — the
	// session re-folds the group over its surviving support.
	if _, err := sess.Apply(lmfao.DeleteRows("Sales",
		lmfao.IntColumn([]int64{1}), lmfao.IntColumn([]int64{8}))); err != nil {
		log.Fatal(err)
	}
	row(0)
	// Output:
	// region 0: n=3 min=3 max=8 top2=[8 5]
	// region 1: n=2 min=2 max=7 top2=[7 2]
	// region 0: n=2 min=3 max=5 top2=[5 3]
}
