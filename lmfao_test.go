package lmfao_test

import (
	"math"
	"testing"

	lmfao "repro"
	"repro/internal/data"
)

// publicAPIDB builds a two-relation database through the public facade only.
func publicAPIDB(t *testing.T) (*lmfao.Database, lmfao.AttrID, lmfao.AttrID, lmfao.AttrID) {
	t.Helper()
	db := lmfao.NewDatabase()
	store := db.Attr("store", lmfao.Key)
	city := db.Attr("city", lmfao.Categorical)
	sales := db.Attr("sales", lmfao.Numeric)

	stores := lmfao.NewRelation("Stores",
		[]lmfao.AttrID{store, city},
		[]lmfao.Column{
			lmfao.IntColumn([]int64{0, 1, 2, 3}),
			lmfao.IntColumn([]int64{0, 0, 1, 1}),
		})
	if err := db.AddRelation(stores); err != nil {
		t.Fatal(err)
	}
	tx := lmfao.NewRelation("Sales",
		[]lmfao.AttrID{store, sales},
		[]lmfao.Column{
			lmfao.IntColumn([]int64{0, 0, 1, 2, 3, 3}),
			lmfao.FloatColumn([]float64{10, 20, 30, 40, 50, 60}),
		})
	if err := db.AddRelation(tx); err != nil {
		t.Fatal(err)
	}
	return db, store, city, sales
}

func TestPublicAPIQuickstart(t *testing.T) {
	db, _, city, sales := publicAPIDB(t)
	eng, err := lmfao.NewEngine(db, lmfao.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run([]*lmfao.Query{
		lmfao.NewQuery("by_city", []lmfao.AttrID{city},
			lmfao.Count(), lmfao.Sum(sales)),
		lmfao.NewQuery("total", nil, lmfao.Sum(sales)),
	})
	if err != nil {
		t.Fatal(err)
	}
	byCity := res.Results[0]
	if byCity.NumRows() != 2 {
		t.Fatalf("city groups = %d", byCity.NumRows())
	}
	// city 0 = stores {0,1}: sales 10+20+30 = 60, count 3.
	i := byCity.Lookup(0)
	if i < 0 || byCity.Val(i, 0) != 3 || math.Abs(byCity.Val(i, 1)-60) > 1e-9 {
		t.Fatalf("city 0 row: count=%g sum=%g", byCity.Val(i, 0), byCity.Val(i, 1))
	}
	total := res.Results[1]
	if math.Abs(total.Val(0, 0)-210) > 1e-9 {
		t.Fatalf("total = %g", total.Val(0, 0))
	}
	if res.Plan.Stats.Views == 0 || res.Plan.Stats.Groups == 0 {
		t.Fatal("plan stats empty")
	}
}

func TestPublicAPICustomAggregates(t *testing.T) {
	db, _, city, sales := publicAPIDB(t)
	eng, err := lmfao.NewEngine(db, lmfao.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// SUM over 2·sales² − sales for sales ≤ 40.
	agg := lmfao.NewAggregate("custom",
		lmfao.NewTerm(lmfao.PowF(sales, 2), lmfao.IndicatorF(sales, lmfao.LE, 40)).Scaled(2),
		lmfao.NewTerm(lmfao.IdentF(sales), lmfao.IndicatorF(sales, lmfao.LE, 40)).Scaled(-1),
	)
	res, err := eng.Run([]*lmfao.Query{lmfao.NewQuery("q", nil, agg)})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, s := range []float64{10, 20, 30, 40} {
		want += 2*s*s - s
	}
	if got := res.Results[0].Val(0, 0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("custom agg = %g, want %g", got, want)
	}
	_ = city
}

func TestPublicAPIBaseline(t *testing.T) {
	db, _, city, sales := publicAPIDB(t)
	base, err := lmfao.NewBaseline(db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := base.Run([]*lmfao.Query{
		lmfao.NewQuery("by_city", []lmfao.AttrID{city}, lmfao.Sum(sales)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].NumRows() != 2 {
		t.Fatalf("baseline groups = %d", res[0].NumRows())
	}
}

func TestPublicAPICodegen(t *testing.T) {
	db, _, city, sales := publicAPIDB(t)
	tree, err := lmfao.BuildJoinTree(db)
	if err != nil {
		t.Fatal(err)
	}
	src, err := lmfao.GenerateSource(tree, []*lmfao.Query{
		lmfao.NewQuery("q", []lmfao.AttrID{city}, lmfao.Sum(sales)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(src) == 0 {
		t.Fatal("no source generated")
	}
}

func TestPublicAPILinearRegression(t *testing.T) {
	db := lmfao.NewDatabase()
	k := db.Attr("k", lmfao.Key)
	x := db.Attr("x", lmfao.Numeric)
	y := db.Attr("y", lmfao.Numeric)
	n := 200
	kv := make([]int64, n)
	xv := make([]float64, n)
	yv := make([]float64, n)
	for i := 0; i < n; i++ {
		kv[i] = int64(i % 4)
		xv[i] = float64(i%17) * 0.5
		yv[i] = 1 + 3*xv[i]
	}
	if err := db.AddRelation(lmfao.NewRelation("R",
		[]lmfao.AttrID{k, x, y},
		[]lmfao.Column{lmfao.IntColumn(kv), lmfao.FloatColumn(xv), lmfao.FloatColumn(yv)})); err != nil {
		t.Fatal(err)
	}
	eng, err := lmfao.NewEngine(db, lmfao.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, err := lmfao.LearnLinearRegression(eng, lmfao.LinRegSpec{
		Continuous: []lmfao.AttrID{x}, Label: y, Lambda: 1e-8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Theta[0]-1) > 0.02 || math.Abs(m.Theta[1]-3) > 0.02 {
		t.Fatalf("theta = %v", m.Theta[:2])
	}
	cf, err := lmfao.LearnLinearRegressionClosedForm(eng, lmfao.LinRegSpec{
		Continuous: []lmfao.AttrID{x}, Label: y, Lambda: 1e-8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cf.Theta[1]-3) > 0.01 {
		t.Fatalf("closed form theta = %v", cf.Theta[:2])
	}
}

func TestPublicAPIKindAliases(t *testing.T) {
	if !lmfao.Key.Discrete() || lmfao.Numeric.Discrete() {
		t.Fatal("kind aliases broken")
	}
	var _ data.AttrID = lmfao.AttrID(0) // alias identity
}
