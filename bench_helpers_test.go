package lmfao_test

import (
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/ml/linreg"
	"repro/internal/ml/tree"
)

// benchLearnMaterialized runs the TensorFlow-proxy learner: full-batch
// gradient descent over the flat join for a fixed number of epochs (the
// paper reports one epoch for TensorFlow).
func benchLearnMaterialized(flat *data.Relation, ds *datagen.Dataset, spec linreg.FeatureSpec, epochs int) (*linreg.Model, error) {
	return linreg.LearnMaterialized(flat, ds.DB, spec, epochs, 1e-7)
}

// benchLearnTreeMaterialized runs the MADlib-proxy learner: CART over the
// flat join.
func benchLearnTreeMaterialized(flat *data.Relation, ds *datagen.Dataset, spec tree.Spec) (*tree.Model, error) {
	return tree.LearnMaterialized(flat, ds.DB, spec)
}
