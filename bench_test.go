// Benchmark harness: one benchmark family per table/figure of the paper's
// evaluation (§4). cmd/lmfao-bench prints the same experiments as formatted
// paper-style tables; these benchmarks make them reproducible under
// `go test -bench`. Scale with LMFAO_BENCH_SCALE (default 0.001 ≈ 125k-row
// Favorita fact table).
//
//	Table 1  — dataset characteristics (join materialization cost)
//	Table 2  — planner consolidation statistics (planning cost + metrics)
//	Table 3  — aggregate batches: LMFAO vs the materializing baseline
//	Table 4  — learning linear regression / regression trees end to end
//	Table 5  — classification trees over TPC-DS
//	Figure 5 — ablation of the optimization layers on the covar batch
package lmfao_test

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	lmfao "repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/moo"
	"repro/internal/workloads"
)

// benchThreads is the paper's 4-thread parallel setting capped at the host
// CPU count (oversubscription inverts the measurement on small hosts).
func benchThreads() int {
	t := runtime.NumCPU()
	if t > 4 {
		t = 4
	}
	if t < 1 {
		t = 1
	}
	return t
}

func benchScale() float64 {
	if s := os.Getenv("LMFAO_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.001
}

var (
	benchMu   sync.Mutex
	benchSets = map[string]*datagen.Dataset{}
)

func benchDataset(b *testing.B, name string) *datagen.Dataset {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if ds, ok := benchSets[name]; ok {
		return ds
	}
	build, err := datagen.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := build(datagen.Config{Scale: benchScale(), Seed: 2019})
	if err != nil {
		b.Fatal(err)
	}
	benchSets[name] = ds
	return ds
}

// BenchmarkTable1_JoinMaterialization measures the "tuples in join result"
// experiment behind Table 1: the cost the structure-agnostic competitors pay
// before touching a single aggregate.
func BenchmarkTable1_JoinMaterialization(b *testing.B) {
	for _, name := range datagen.All() {
		b.Run(name, func(b *testing.B) {
			ds := benchDataset(b, name)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				flat, err := ds.Tree.MaterializeAll("flat")
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(flat.Len()), "join-tuples")
				b.ReportMetric(float64(ds.DB.TotalTuples()), "db-tuples")
			}
		})
	}
}

// BenchmarkTable2_Planning measures the logical optimization layers and
// reports the consolidation statistics of Table 2 (A, I, V, G).
func BenchmarkTable2_Planning(b *testing.B) {
	for _, name := range datagen.All() {
		for _, wl := range []string{"covar", "rtnode", "mi", "cube"} {
			b.Run(name+"/"+wl, func(b *testing.B) {
				ds := benchDataset(b, name)
				batch, err := workloads.ByName(wl, ds)
				if err != nil {
					b.Fatal(err)
				}
				var stats core.Stats
				for i := 0; i < b.N; i++ {
					plan, err := core.BuildPlan(ds.Tree, batch, core.PlanOptions{
						MultiRoot: true, MultiOutput: true,
					})
					if err != nil {
						b.Fatal(err)
					}
					stats = plan.Stats
				}
				b.ReportMetric(float64(stats.AppAggregates), "A")
				b.ReportMetric(float64(stats.IntermediateAggs), "I")
				b.ReportMetric(float64(stats.Views), "V")
				b.ReportMetric(float64(stats.Groups), "G")
			})
		}
	}
}

// BenchmarkTable3 reproduces the aggregate-batch comparison: LMFAO vs the
// conventional per-query engine (the DBX/MonetDB proxy), which pipelines the
// join once per query over warm hash indexes and shares nothing across the
// batch.
func BenchmarkTable3(b *testing.B) {
	for _, name := range datagen.All() {
		ds := benchDataset(b, name)
		for _, wl := range workloads.Names() {
			batch, err := workloads.ByName(wl, ds)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(name+"/"+wl+"/lmfao", func(b *testing.B) {
				eng := moo.NewEngineWithTree(ds.DB, ds.Tree, moo.DefaultOptions())
				// Paper protocol: warm cache, average of subsequent runs.
				if _, err := eng.Run(batch); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Run(batch); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(name+"/"+wl+"/dbx-proxy", func(b *testing.B) {
				base := baseline.NewWithTree(ds.DB, ds.Tree)
				st, err := baseline.NewStreamer(base)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := st.RunBatchStreaming(batch); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// figure5Variants are the cumulative optimization levels of Figure 5.
func figure5Variants() []struct {
	Name string
	Opts moo.Options
} {
	return []struct {
		Name string
		Opts moo.Options
	}{
		{"0-acdc", moo.Options{Threads: 1}},
		{"1-compile", moo.Options{Compiled: true, Threads: 1}},
		{"2-multiout", moo.Options{Compiled: true, MultiOutput: true, Threads: 1}},
		{"3-multiroot", moo.Options{Compiled: true, MultiOutput: true, MultiRoot: true, Threads: 1}},
		{"4-parallel", moo.Options{Compiled: true, MultiOutput: true, MultiRoot: true,
			Threads: benchThreads(), DomainParallelRows: 16384}},
	}
}

// BenchmarkFigure5 reproduces the optimization ablation on the covar-matrix
// batch.
func BenchmarkFigure5(b *testing.B) {
	for _, name := range datagen.All() {
		ds := benchDataset(b, name)
		batch := workloads.CovarMatrix(ds)
		for _, v := range figure5Variants() {
			b.Run(name+"/"+v.Name, func(b *testing.B) {
				eng := moo.NewEngineWithTree(ds.DB, ds.Tree, v.Opts)
				if _, err := eng.Run(batch); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Run(batch); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable4 reproduces end-to-end model learning over Retailer and
// Favorita: the competitors' join materialization step (PSQL proxy), linear
// regression in LMFAO vs over the materialized join (TensorFlow 1-epoch
// proxy), and regression trees in LMFAO vs materialized CART (MADlib proxy).
func BenchmarkTable4(b *testing.B) {
	for _, name := range []string{"retailer", "favorita"} {
		ds := benchDataset(b, name)
		spec := workloads.LinRegSpec(ds)
		b.Run(name+"/join-psql", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ds.Tree.MaterializeAll("flat"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/linreg/lmfao", func(b *testing.B) {
			eng := moo.NewEngineWithTree(ds.DB, ds.Tree, moo.DefaultOptions())
			if _, err := lmfao.LearnLinearRegression(eng, spec); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lmfao.LearnLinearRegression(eng, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/linreg/materialized-1epoch", func(b *testing.B) {
			base := baseline.NewWithTree(ds.DB, ds.Tree)
			flat, err := base.Materialize()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := benchLearnMaterialized(flat, ds, spec, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		tspec := workloads.RTSpec(ds)
		b.Run(name+"/regtree/lmfao", func(b *testing.B) {
			eng := moo.NewEngineWithTree(ds.DB, ds.Tree, moo.DefaultOptions())
			if _, err := lmfao.LearnDecisionTree(eng, tspec); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lmfao.LearnDecisionTree(eng, tspec); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/regtree/materialized", func(b *testing.B) {
			base := baseline.NewWithTree(ds.DB, ds.Tree)
			flat, err := base.Materialize()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := benchLearnTreeMaterialized(flat, ds, tspec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable5 reproduces classification-tree learning over TPC-DS.
func BenchmarkTable5(b *testing.B) {
	ds := benchDataset(b, "tpcds")
	spec := workloads.CTSpec(ds)
	b.Run("tpcds/join-psql", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ds.Tree.MaterializeAll("flat"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tpcds/classtree/lmfao", func(b *testing.B) {
		eng := moo.NewEngineWithTree(ds.DB, ds.Tree, moo.DefaultOptions())
		if _, err := lmfao.LearnDecisionTree(eng, spec); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := lmfao.LearnDecisionTree(eng, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tpcds/classtree/materialized", func(b *testing.B) {
		base := baseline.NewWithTree(ds.DB, ds.Tree)
		flat, err := base.Materialize()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := benchLearnTreeMaterialized(flat, ds, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}
