package lmfao

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/ivm"
	"repro/internal/moo"
)

// ShardVector is the version metadata of a sharded snapshot: one
// VersionVector per shard, indexed by shard id (see ivm.ShardVector).
type ShardVector = ivm.ShardVector

// ShardOptions configures NewShardedSession.
type ShardOptions struct {
	// Shards is the number of partitions (and independent shard writers).
	// Must be at least 1; 1 yields a functional (if pointless) single-shard
	// session, useful as the baseline in scaling measurements.
	Shards int
	// Relation names the fact relation to hash-partition. Empty selects the
	// largest relation in the database — the fact table in every
	// star/snowflake schema this engine targets.
	Relation string
	// Key lists the discrete attributes the fact relation is hash-partitioned
	// on (data.ShardOf over the tuple's values). Nil selects the first
	// attribute in the fact's schema order that is discrete and shared with
	// another relation — a join key, so co-partitioned groups stay
	// shard-local where possible.
	Key []AttrID
}

// ShardedStats are cumulative fan-out counters of a ShardedSession,
// reporting how much batching the per-shard queues achieved: Enqueued counts
// shard-local updates handed to the workers (after routing), Applied the
// updates actually applied after coalescing, Rounds the maintenance rounds
// (Session.Apply calls) that covered them. Enqueued/Rounds is the average
// batch size the coalescing achieved.
type ShardedStats struct {
	Shards   int
	Enqueued int64
	Applied  int64
	Rounds   int64
}

// ShardedSession scales maintenance throughput beyond a single Session's
// one-writer limit: the fact relation is hash-partitioned on a join key into
// N shard databases (dimension relations replicated), each maintained by an
// independent Session writer on its own goroutine. Updates fan out by key —
// a fact update routes each tuple to its hash shard, a dimension update
// broadcasts to every shard — and queued updates batch/coalesce per shard,
// amortizing per-round maintenance overhead under high-rate streams.
//
// Reads merge per-shard results: every join tuple of the full database lives
// in exactly one shard (the fact partitions; replicated dimensions join
// identically everywhere), so aggregate values add across shards and group
// sets union — Snapshot returns a ShardedSnapshot whose Lookup and Result
// perform exactly that combination (moo.CombineViews).
//
// # Consistency
//
// Each shard keeps the full snapshot-isolation guarantees of its Session:
// shard components of a ShardedSnapshot are immutable committed states,
// acquired lock-free. Cross-shard, the snapshot is a vector of per-shard
// states (Versions returns the matching ShardVector), not a single global
// prefix: while a broadcast (dimension) update is mid-fan-out, some shards
// may reflect it before others. Fact-only streams have no such window —
// per-shard sub-streams touch disjoint data, so every shard-state vector
// equals some interleaving of the applied updates. To observe a fully
// drained state, call Wait (or use the synchronous Apply) before Snapshot.
//
// The source database passed to NewShardedSession is copied, not adopted:
// the sharded session owns its shard databases, and later mutations of the
// source are invisible to it.
type ShardedSession struct {
	sessions []*Session
	factName string
	key      []AttrID
	// factSchema carries the fact relation's schema for delta routing: a
	// detached zero-row relation, so routing reads never race with shard
	// writers mutating the live instances.
	factSchema *data.Relation

	jobs []chan *shardJob
	// pending tracks enqueued-but-undelivered shard jobs for Wait.
	pending sync.WaitGroup
	// workers drains on Close.
	workers sync.WaitGroup
	// closeMu lets producers enqueue under a read lock while Close takes the
	// write lock to flip closed, so an ApplyAsync racing Close can never
	// send on a closed queue.
	closeMu sync.RWMutex
	closed  atomic.Bool

	enqueued atomic.Int64
	applied  atomic.Int64
	rounds   atomic.Int64
}

// shardJob is one ApplyAsync call's slice of updates for one shard, plus the
// aggregate result it reports into.
type shardJob struct {
	updates []Update
	res     *asyncResult
}

// asyncResult fans one ApplyAsync call's per-shard completions back into a
// single ApplyResult.
type asyncResult struct {
	mu        sync.Mutex
	remaining int
	stats     []*ApplyStats
	err       error
	ch        chan ApplyResult
}

func (r *asyncResult) deliver(stats []*ApplyStats, err error) {
	r.mu.Lock()
	r.stats = append(r.stats, stats...)
	if err != nil && r.err == nil {
		r.err = err
	}
	r.remaining--
	done := r.remaining == 0
	var out ApplyResult
	if done {
		out = ApplyResult{Stats: r.stats, Err: r.err}
	}
	r.mu.Unlock()
	if done {
		r.ch <- out
	}
}

// NewShardedSession partitions db per so (data.PartitionDatabase: fact
// hash-partitioned, everything else replicated) and builds one maintained
// Session per shard over the query batch, each with its own engine and join
// tree and each served by a dedicated worker goroutine. Call Run once, then
// stream updates through Apply/ApplyAsync; call Close when done to stop the
// workers (the shard data remains readable).
func NewShardedSession(db *Database, queries []*Query, opts Options, so ShardOptions) (*ShardedSession, error) {
	factRel, key, err := resolveShardFact(db, so)
	if err != nil {
		return nil, err
	}
	factName := factRel.Name
	shardDBs, err := data.PartitionDatabase(db, factName, key, so.Shards)
	if err != nil {
		return nil, err
	}
	s := &ShardedSession{
		sessions: make([]*Session, so.Shards),
		factName: factName,
		key:      append([]AttrID(nil), key...),
		jobs:     make([]chan *shardJob, so.Shards),
	}
	for i, sdb := range shardDBs {
		sess, err := NewSession(sdb, queries, opts)
		if err != nil {
			return nil, fmt.Errorf("lmfao: shard %d: %w", i, err)
		}
		s.sessions[i] = sess
	}
	s.factSchema = emptySchemaRelation(factRel)
	for i := range s.jobs {
		s.jobs[i] = make(chan *shardJob, 256)
		s.workers.Add(1)
		go s.worker(i)
	}
	return s, nil
}

// resolveShardFact applies ShardOptions' defaulting rules: pick the fact
// relation (largest when unnamed) and the shard key (first discrete join
// attribute when unset). Shared by ShardedSession and DurableShardedSession.
func resolveShardFact(db *Database, so ShardOptions) (*data.Relation, []AttrID, error) {
	if so.Shards < 1 {
		return nil, nil, fmt.Errorf("lmfao: sharded session needs at least 1 shard, got %d", so.Shards)
	}
	factName := so.Relation
	if factName == "" {
		for _, r := range db.Relations() {
			if factRel := db.Relation(factName); factRel == nil || r.Len() > factRel.Len() {
				factName = r.Name
			}
		}
		if factName == "" {
			return nil, nil, fmt.Errorf("lmfao: sharded session over an empty database")
		}
	}
	factRel := db.Relation(factName)
	if factRel == nil {
		return nil, nil, fmt.Errorf("lmfao: sharded session: unknown fact relation %q", factName)
	}
	key := so.Key
	if key == nil {
		key = defaultShardKey(db, factRel)
		if key == nil {
			return nil, nil, fmt.Errorf("lmfao: sharded session: relation %q has no discrete attribute to shard on", factName)
		}
	}
	return factRel, key, nil
}

// emptySchemaRelation clones a relation's schema with zero-row typed
// columns: a safe, immutable carrier for block validation and routing.
func emptySchemaRelation(r *data.Relation) *data.Relation {
	cols := make([]Column, len(r.Cols))
	for i, c := range r.Cols {
		if c.IsInt() {
			cols[i] = data.NewIntColumn(nil)
		} else {
			cols[i] = data.NewFloatColumn(nil)
		}
	}
	return data.NewRelation(r.Name, append([]AttrID(nil), r.Attrs...), cols)
}

// defaultShardKey picks the first discrete fact attribute (schema order)
// shared with another relation — a join key — falling back to the first
// discrete attribute.
func defaultShardKey(db *Database, fact *data.Relation) []AttrID {
	var firstDiscrete []AttrID
	for _, a := range fact.Attrs {
		c, _ := fact.Col(a)
		if !c.IsInt() {
			continue
		}
		if firstDiscrete == nil {
			firstDiscrete = []AttrID{a}
		}
		for _, r := range db.Relations() {
			if r.Name != fact.Name && r.HasAttr(a) {
				return []AttrID{a}
			}
		}
	}
	return firstDiscrete
}

// NumShards returns the shard count.
func (s *ShardedSession) NumShards() int { return len(s.sessions) }

// Shard returns shard i's underlying Session — read it (Snapshot) freely;
// writing through it directly (Apply/Run/Close) would bypass routing and
// break the partition invariant.
func (s *ShardedSession) Shard(i int) *Session { return s.sessions[i] }

// FactRelation returns the name of the hash-partitioned relation.
func (s *ShardedSession) FactRelation() string { return s.factName }

// ShardKey returns the attributes the fact relation is partitioned on.
func (s *ShardedSession) ShardKey() []AttrID { return append([]AttrID(nil), s.key...) }

// Stats returns the cumulative fan-out counters.
func (s *ShardedSession) Stats() ShardedStats {
	return ShardedStats{
		Shards:   len(s.sessions),
		Enqueued: s.enqueued.Load(),
		Applied:  s.applied.Load(),
		Rounds:   s.rounds.Load(),
	}
}

// Run computes the batch on every shard (in parallel) and returns the first
// merged snapshot. Like Session.Run it can be called again to force a full
// recompute everywhere.
//
// Run is atomic across shards: every shard stages its recomputed result
// first (Session.stageRun), and the per-shard snapshots are published only
// when all of them succeeded. A failed Run therefore changes nothing
// observable — every shard keeps serving its previous snapshot, and Head
// never merges recomputed shards with stale ones.
//
// lmfao:acquires closeMu.R
func (s *ShardedSession) Run() (Queryable, error) {
	// Hold the enqueue read lock for the whole recompute (the ApplyAsync
	// pattern, but for the call's duration): Run executes against the shard
	// sessions, and a Close racing it must block until the recompute is
	// done rather than tear the session down mid-flight.
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed.Load() {
		return nil, errSessionClosed
	}
	finishes := make([]func(bool), len(s.sessions))
	errs := make([]error, len(s.sessions))
	var wg sync.WaitGroup
	for i, sess := range s.sessions {
		wg.Add(1)
		go func(i int, sess *Session) {
			defer wg.Done()
			finishes[i], errs[i] = sess.stageRun()
		}(i, sess)
	}
	wg.Wait()
	var firstErr error
	for i, err := range errs {
		if err != nil {
			firstErr = fmt.Errorf("lmfao: shard %d: %w", i, err)
			break
		}
	}
	commit := firstErr == nil
	for _, finish := range finishes {
		if finish != nil {
			finish(commit)
		}
	}
	if !commit {
		return nil, firstErr
	}
	return s.Head(), nil
}

// route splits one call's updates into per-shard update lists, preserving
// relative order: fact updates partition tuple-by-tuple via data.RouteDelta,
// every other update is broadcast to all shards (dimension relations are
// replicated). Shards left untouched by every update get a nil list.
func (s *ShardedSession) route(updates []Update) ([][]Update, error) {
	return routeUpdates(s.factSchema, s.key, len(s.sessions), updates)
}

// routeUpdates is the routing core shared by ShardedSession and
// DurableShardedSession (see route).
func routeUpdates(factSchema *data.Relation, key []AttrID, shards int, updates []Update) ([][]Update, error) {
	perShard := make([][]Update, shards)
	for _, u := range updates {
		if u.Relation == factSchema.Name {
			routed, err := data.RouteDelta(factSchema, u, key, shards)
			if err != nil {
				return nil, err
			}
			for sh, ru := range routed {
				if !ru.Empty() {
					perShard[sh] = append(perShard[sh], ru)
				}
			}
		} else {
			for sh := range perShard {
				perShard[sh] = append(perShard[sh], u)
			}
		}
	}
	return perShard, nil
}

// ApplyAsync routes the updates to their shards, enqueues them on the
// per-shard worker queues and returns a buffered channel delivering one
// aggregate result when every involved shard has committed. Queued updates
// of consecutive calls may be batched and coalesced per shard before
// maintenance (see coalesceUpdates), so the delivered Stats describe the
// maintenance rounds that covered this call's updates — after coalescing,
// their update granularity can differ from the call's. Per shard, updates
// commit in enqueue order; across shards there is no global order (see the
// consistency contract on ShardedSession).
//
// Error contract: a delivered Err means at least one of THIS call's updates
// did not commit on some shard — calls whose updates all landed in failed
// rounds' committed prefixes receive Err == nil even when a later queued
// update broke a round. A failed shard keeps serving its last committed
// snapshot and recovers on its next round, like a plain Session. Unlike a
// plain Session, a failed update is not atomic ACROSS shards: an update
// whose tuples route to several shards can commit its slice on some shards
// and fail on another (e.g. a delete block whose missing tuple hashes to one
// shard — the siblings' slices validate independently and commit). Do not
// blindly re-submit a failed multi-shard update; reconcile against
// Snapshot() first, or keep delete batches shard-local (single-key batches
// route to one shard by construction).
//
// lmfao:acquires closeMu.R
func (s *ShardedSession) ApplyAsync(updates ...Update) <-chan ApplyResult {
	ch := make(chan ApplyResult, 1)
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed.Load() {
		ch <- ApplyResult{Err: errSessionClosed}
		return ch
	}
	perShard, err := s.route(updates)
	if err != nil {
		ch <- ApplyResult{Err: err}
		return ch
	}
	res := &asyncResult{ch: ch}
	for _, list := range perShard {
		if list != nil {
			res.remaining++
		}
	}
	if res.remaining == 0 {
		ch <- ApplyResult{}
		return ch
	}
	for sh, list := range perShard {
		if list == nil {
			continue
		}
		s.enqueued.Add(int64(len(list)))
		s.pending.Add(1)
		s.jobs[sh] <- &shardJob{updates: list, res: res}
	}
	return ch
}

// Apply routes the updates, waits for every involved shard to commit and
// returns the per-round maintenance stats (shard completion order) plus the
// first error. It is ApplyAsync plus the wait, so a returned Snapshot
// reflects all of this call's updates on every shard.
func (s *ShardedSession) Apply(updates ...Update) ([]*ApplyStats, error) {
	res := <-s.ApplyAsync(updates...)
	return res.Stats, res.Err
}

// Wait blocks until every update enqueued so far has been applied and
// committed. Concurrent ApplyAsync callers make the drained condition a
// moving target — quiesce producers first.
func (s *ShardedSession) Wait() { s.pending.Wait() }

// Close stops the shard workers after draining their queues. Further
// ApplyAsync/Apply calls fail; snapshots and shard sessions stay readable.
// Close is idempotent.
//
// lmfao:acquires closeMu
func (s *ShardedSession) Close() {
	s.closeMu.Lock()
	already := s.closed.Swap(true)
	s.closeMu.Unlock()
	if already {
		return
	}
	s.pending.Wait()
	for _, ch := range s.jobs {
		close(ch)
	}
	s.workers.Wait()
}

// worker is shard sh's single writer: it drains the queue greedily, so a
// burst of small updates enqueued while a previous round was in flight is
// applied as one coalesced round. On a failed round the error is delivered
// only to the jobs whose updates did not all commit: Session.Apply stops at
// the first failing (coalesced) update and returns stats for the committed
// prefix, and each coalesced update is all-or-nothing (block validation
// precedes mutation), so a job is known-committed exactly when every
// coalesced update it fed into lies in that prefix.
func (s *ShardedSession) worker(sh int) {
	defer s.workers.Done()
	sess := s.sessions[sh]
	for job := range s.jobs[sh] {
		batch := []*shardJob{job}
	drain:
		for {
			select {
			case next, ok := <-s.jobs[sh]:
				if !ok {
					break drain
				}
				batch = append(batch, next)
			default:
				break drain
			}
		}
		var updates []Update
		var owner []int // source job index, parallel to updates
		for ji, j := range batch {
			for _, u := range j.updates {
				updates = append(updates, u)
				owner = append(owner, ji)
			}
		}
		coalesced, firstJob := coalesceUpdates(updates, owner)
		stats, err := sess.Apply(coalesced...)
		s.rounds.Add(1)
		s.applied.Add(int64(len(coalesced)))
		// Jobs whose updates all landed in the committed prefix succeeded
		// even if a later job's update failed the round. Contributors ascend
		// across coalesced updates, so every job below the failing update's
		// first contributor is fully committed; that contributor and
		// everything after it is not. An error without an identifiable
		// failing update (e.g. the trailing recompute failed) taints all.
		okThrough := len(batch)
		if err != nil {
			okThrough = 0
			if len(stats) < len(coalesced) {
				okThrough = firstJob[len(stats)]
			}
		}
		for ji, j := range batch {
			if err != nil && ji >= okThrough {
				j.res.deliver(stats, err)
			} else {
				j.res.deliver(stats, nil)
			}
			s.pending.Done()
		}
	}
}

// coalesceUpdates merges adjacent same-relation updates when the merge
// cannot change semantics: insert-only runs concatenate into one insert
// block, delete-only runs into one delete block. Mixed insert+delete updates
// pass through unmerged — a Delta applies deletes before inserts, so folding
// u1's inserts and u2's deletes into one delta could delete a row u1 was
// about to create. The one observable difference: a coalesced delete block
// fails atomically where the sequential updates would have partially
// applied.
//
// owner tags each input update with its source job index (ascending); the
// returned firstJob slice carries, per output update, the lowest
// contributing job index — the error-attribution map for failed rounds.
// Each coalescible run is measured first and concatenated once, so a burst
// of k updates costs one copy of each block, not k accumulator re-copies.
func coalesceUpdates(updates []Update, owner []int) ([]Update, []int) {
	out := make([]Update, 0, len(updates))
	firstJob := make([]int, 0, len(updates))
	for i := 0; i < len(updates); {
		j := i + 1
		for j < len(updates) && canCoalesce(updates[i], updates[j]) {
			// canCoalesce is associative over a run: updates[i] determines
			// the relation and the insert-only/delete-only side, and every
			// accepted update matches both.
			j++
		}
		u := updates[i]
		if j > i+1 {
			u = Update{
				Relation: u.Relation,
				Inserts:  concatRun(updates[i:j], func(x Update) []Column { return x.Inserts }),
				Deletes:  concatRun(updates[i:j], func(x Update) []Column { return x.Deletes }),
			}
		}
		out = append(out, u)
		firstJob = append(firstJob, owner[i])
		i = j
	}
	return out, firstJob
}

func canCoalesce(a, b Update) bool {
	if a.Relation != b.Relation {
		return false
	}
	insOnly := a.DeleteRows() == 0 && b.DeleteRows() == 0
	delOnly := a.InsertRows() == 0 && b.InsertRows() == 0
	return insOnly || delOnly
}

// concatRun concatenates one side's tuple blocks across a coalescible run
// into fresh, exactly-sized storage (nil when every member's side is empty;
// the inputs are caller-owned and never mutated). Each source block is
// copied exactly once.
func concatRun(run []Update, side func(Update) []Column) []Column {
	total := 0
	var proto []Column
	for _, u := range run {
		if b := side(u); len(b) > 0 && b[0].Len() > 0 {
			if proto == nil {
				proto = b
			}
			total += b[0].Len()
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]Column, len(proto))
	for ci := range out {
		if proto[ci].IsInt() {
			vals := make([]int64, 0, total)
			for _, u := range run {
				if b := side(u); len(b) > 0 {
					vals = append(vals, b[ci].Ints...)
				}
			}
			out[ci] = data.NewIntColumn(vals)
		} else {
			vals := make([]float64, 0, total)
			for _, u := range run {
				if b := side(u); len(b) > 0 {
					vals = append(vals, b[ci].Floats...)
				}
			}
			out[ci] = data.NewFloatColumn(vals)
		}
	}
	return out
}

// ShardedSnapshot is one merged, immutable view of a sharded session: a
// vector of per-shard Snapshots, each individually committed and immutable
// (see the consistency contract on ShardedSession). Merging happens on
// read: Lookup sums per-shard rows, Result materializes the union of a
// query's per-shard outputs (lazily, cached on the snapshot).
//
// ShardedSnapshot implements Queryable and Requerier: it is the sharded
// read side of the serving API, so applications written against Queryable
// learn from a live sharded session exactly as from an unsharded one. The
// zero value (no shard components) serves an empty batch: NumQueries is 0,
// Lookup misses, Result returns nil.
type ShardedSnapshot struct {
	shards []*Snapshot

	// mergeMu guards the lazy merged-view cache. Reads through Lookup and
	// the per-shard components never take it.
	mergeMu sync.Mutex
	merged  []*Result
}

// Snapshot returns the current merged snapshot as a Queryable — one
// lock-free atomic load per shard — or nil before Run has completed on
// every shard. Shard components are consistent per shard; call Wait first
// to pin a fully drained state. For the concrete *ShardedSnapshot
// (NumShards, Shard, Epochs) use Head.
func (s *ShardedSession) Snapshot() Queryable {
	if sn := s.Head(); sn != nil {
		return sn
	}
	return nil
}

// Head returns the current merged snapshot as a concrete *ShardedSnapshot
// (nil before Run has completed on every shard) — Snapshot with typed
// access to the shard components. Same lock-free acquisition contract.
func (s *ShardedSession) Head() *ShardedSnapshot {
	shards := make([]*Snapshot, len(s.sessions))
	for i, sess := range s.sessions {
		sn := sess.Head()
		if sn == nil {
			return nil
		}
		shards[i] = sn
	}
	return &ShardedSnapshot{shards: shards}
}

// NumShards returns the number of shard components.
func (sn *ShardedSnapshot) NumShards() int { return len(sn.shards) }

// Shard returns shard i's component snapshot.
func (sn *ShardedSnapshot) Shard(i int) *Snapshot { return sn.shards[i] }

// NumQueries returns the number of queries in the session batch (0 for a
// snapshot with no shard components).
func (sn *ShardedSnapshot) NumQueries() int {
	if len(sn.shards) == 0 {
		return 0
	}
	return sn.shards[0].NumQueries()
}

// Epochs returns each shard's publication epoch, indexed by shard id.
func (sn *ShardedSnapshot) Epochs() []uint64 {
	out := make([]uint64, len(sn.shards))
	for i, sh := range sn.shards {
		out[i] = sh.Epoch()
	}
	return out
}

// Versions returns the shard vector pinning each component's base-relation
// versions.
func (sn *ShardedSnapshot) Versions() ShardVector {
	out := make(ShardVector, len(sn.shards))
	for i, sh := range sn.shards {
		out[i] = sh.VersionVector()
	}
	return out
}

// Lookup merges one group's aggregates across shards: per-shard values add
// (each shard holds a disjoint partition of the join, so the sum is the
// unsharded aggregate) and ok is false only when the group is absent from
// every shard (always, for a snapshot with no shard components). Like
// Snapshot.Lookup it is lock-free, probes pre-built indexes and returns
// exactly the query's aggregate columns.
//
// Queries with monoid aggregates are the exception: their columns do not
// add across shards (the shard-wise MIN of MINs is fine, but DISTINCT
// counts and top-k buffers are not), so multi-shard lookups route through
// the cached merged view — first access per query pays the merge and takes
// the snapshot's merge lock.
func (sn *ShardedSnapshot) Lookup(queryIdx int, key ...int64) ([]float64, bool) {
	if len(sn.shards) > 1 && sn.shards[0].res.Plan.Monoids[queryIdx] != nil {
		v, err := sn.MergedResult(queryIdx)
		if err != nil {
			return nil, false
		}
		i := v.Lookup(key...)
		if i < 0 {
			return nil, false
		}
		n := sn.shards[0].res.Plan.VisibleCols(queryIdx)
		out := make([]float64, n)
		for c := 0; c < n; c++ {
			out[c] = v.Val(i, c)
		}
		return out, true
	}
	var out []float64
	for _, sh := range sn.shards {
		row, ok := sh.Lookup(queryIdx, key...)
		if !ok {
			continue
		}
		if out == nil {
			out = row
			continue
		}
		for c := range out {
			out[c] += row[c]
		}
	}
	return out, out != nil
}

// Result returns query queryIdx's full merged output: the union of the
// per-shard group sets with aggregates (and the hidden tuple-count column)
// summed — the view a single unsharded session would serve, read-only. The
// merge happens lazily on first access and is cached on the snapshot, so
// repeated reads (an application assembling its statistics, say) pay the
// row-copy cost once; a single-shard snapshot shares the shard's view
// directly. Returns nil for a snapshot with no shard components. For point
// reads use Lookup, which touches only the probed groups and no cache.
func (sn *ShardedSnapshot) Result(queryIdx int) *Result {
	v, _ := sn.MergedResult(queryIdx)
	return v
}

// MergedResult is Result with the merge error exposed: a non-nil error
// means the snapshot has no shard components or the per-shard outputs
// disagree on schema (impossible for snapshots of one session's batch).
func (sn *ShardedSnapshot) MergedResult(queryIdx int) (*Result, error) {
	if len(sn.shards) == 0 {
		return nil, fmt.Errorf("lmfao: sharded snapshot has no shard components")
	}
	if nq := sn.NumQueries(); queryIdx < 0 || queryIdx >= nq {
		return nil, fmt.Errorf("lmfao: query index %d out of range (batch has %d queries)", queryIdx, nq)
	}
	if len(sn.shards) == 1 {
		return sn.shards[0].Result(queryIdx), nil
	}
	sn.mergeMu.Lock()
	defer sn.mergeMu.Unlock()
	if sn.merged == nil {
		sn.merged = make([]*Result, sn.NumQueries())
	}
	if v := sn.merged[queryIdx]; v != nil {
		return v, nil
	}
	var v *moo.ViewData
	var err error
	if plan := sn.shards[0].res.Plan; plan.Monoids[queryIdx] != nil {
		// Monoid columns do not add across shards: merge the per-shard RAW
		// output and support views (plain count/sum views) and re-fold.
		v, err = mergeAssembled(plan, queryIdx, len(sn.shards), func(i, j int) *moo.ViewData {
			res := sn.shards[i].res
			return res.Materialized[res.Plan.OutputView[j]]
		})
	} else {
		parts := make([]*moo.ViewData, len(sn.shards))
		for i, sh := range sn.shards {
			parts[i] = sh.Result(queryIdx)
		}
		v, err = moo.CombineViews(parts)
	}
	if err != nil {
		return nil, err
	}
	v.EnsureIndex()
	sn.merged[queryIdx] = v
	return v, nil
}

// mergeAssembled merges monoid user query qi across nshards shard states.
// The assembled monoid columns themselves must never be summed, so the
// merge combines the per-shard raw output and support views — all plain
// count/sum views, which CombineViews handles exactly — and folds the
// merged supports into the user-visible view. plan is the merging plan;
// query indexes are identical across shards (plan expansion is
// deterministic on the query list), but view IDs may differ per shard
// (statistics-driven roots), which is why matView resolves plan-query j's
// output view through shard i's own plan.
func mergeAssembled(plan *core.Plan, qi, nshards int, matView func(i, j int) *moo.ViewData) (*moo.ViewData, error) {
	idxs := []int{qi}
	seen := make(map[int]bool)
	for _, col := range plan.Monoids[qi].Cols {
		if !seen[col.Support] {
			seen[col.Support] = true
			idxs = append(idxs, col.Support)
		}
	}
	mat := make([]*moo.ViewData, len(plan.Views))
	for _, j := range idxs {
		parts := make([]*moo.ViewData, nshards)
		for i := range parts {
			parts[i] = matView(i, j)
		}
		v, err := moo.CombineViews(parts)
		if err != nil {
			return nil, err
		}
		mat[plan.OutputView[j]] = v
	}
	return moo.AssembleQuery(plan, qi, mat)
}

// Requery evaluates a fresh ad-hoc batch across every shard and merges the
// per-query outputs (the Requerier hook; LearnDecisionTreeFrom depends on
// it). Each shard's evaluation serializes with that shard's writer and the
// shards run in parallel; like Snapshot.Requery, the result reflects each
// shard's current base data, which may be newer than this snapshot's pinned
// components — quiesce updates (Wait) when exact agreement matters.
func (sn *ShardedSnapshot) Requery(queries []*Query) ([]*Result, error) {
	if len(sn.shards) == 0 {
		return nil, fmt.Errorf("lmfao: sharded snapshot has no shard components")
	}
	for i, sh := range sn.shards {
		if sh.requery == nil {
			return nil, fmt.Errorf("lmfao: shard %d snapshot has no requery hook", i)
		}
	}
	parts := make([]*moo.BatchResult, len(sn.shards))
	errs := make([]error, len(sn.shards))
	var wg sync.WaitGroup
	for i, sh := range sn.shards {
		wg.Add(1)
		go func(i int, sh *Snapshot) {
			defer wg.Done()
			parts[i], errs[i] = sh.requery(queries)
		}(i, sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("lmfao: shard %d: %w", i, err)
		}
	}
	plan := parts[0].Plan
	out := make([]*Result, plan.UserQueries)
	for qi := 0; qi < plan.UserQueries; qi++ {
		var v *moo.ViewData
		var err error
		if plan.Monoids[qi] != nil {
			v, err = mergeAssembled(plan, qi, len(parts), func(i, j int) *moo.ViewData {
				return parts[i].Materialized[parts[i].Plan.OutputView[j]]
			})
		} else {
			per := make([]*moo.ViewData, len(sn.shards))
			for i := range sn.shards {
				per[i] = parts[i].Results[qi]
			}
			v, err = moo.CombineViews(per)
		}
		if err != nil {
			return nil, err
		}
		out[qi] = v
	}
	return out, nil
}
