package lmfao_test

import (
	"fmt"
	"math"
	"testing"

	lmfao "repro"
	"repro/internal/baseline"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/moo"
	"repro/internal/workloads"
)

// The master end-to-end test: every paper workload over every synthetic
// dataset, the full engine against the brute-force baseline.
func TestAllWorkloadsAllDatasetsMatchBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := datagen.Config{Scale: 0.0001, Seed: 99}
	for _, name := range datagen.All() {
		build, err := datagen.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		base := baseline.NewWithTree(ds.DB, ds.Tree)
		flat, err := base.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		eng := moo.NewEngineWithTree(ds.DB, ds.Tree, moo.DefaultOptions())
		for _, wl := range workloads.Names() {
			t.Run(name+"/"+wl, func(t *testing.T) {
				batch, err := workloads.ByName(wl, ds)
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.Run(batch)
				if err != nil {
					t.Fatal(err)
				}
				for qi, q := range batch {
					want, err := baseline.RunOverFlat(ds.DB, flat, q)
					if err != nil {
						t.Fatal(err)
					}
					diffResults(t, fmt.Sprintf("%s/%s/%s", name, wl, q.Name),
						res.Results[qi], want)
				}
			})
		}
	}
}

func diffResults(t *testing.T, label string, got *moo.ViewData, want *baseline.Result) {
	t.Helper()
	if got.NumRows() != len(want.Rows) {
		t.Errorf("%s: rows %d vs %d", label, got.NumRows(), len(want.Rows))
		return
	}
	for i := 0; i < got.NumRows(); i++ {
		key := data.PackKey(got.Key(i)...)
		wrow, ok := want.Rows[key]
		if !ok {
			t.Errorf("%s: spurious key %v", label, got.Key(i))
			return
		}
		for c := range wrow {
			g := got.Val(i, c)
			d := math.Abs(g - wrow[c])
			if d > 1e-6 && d > 1e-9*math.Max(math.Abs(g), math.Abs(wrow[c])) {
				t.Errorf("%s: key %v col %d: %g vs %g", label, got.Key(i), c, g, wrow[c])
				return
			}
		}
	}
}

// End-to-end application runs over the synthetic datasets (paper §4.2).
func TestEndToEndApplications(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := datagen.Config{Scale: 0.0002, Seed: 7}

	t.Run("linreg-favorita", func(t *testing.T) {
		ds, err := datagen.Favorita(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng := moo.NewEngineWithTree(ds.DB, ds.Tree, moo.DefaultOptions())
		spec := workloads.LinRegSpec(ds)
		m, err := lmfao.LearnLinearRegression(eng, spec)
		if err != nil {
			t.Fatal(err)
		}
		if m.Iterations == 0 {
			t.Fatal("no optimization steps")
		}
		// The model must beat the predict-the-mean baseline on the
		// training join.
		base := baseline.NewWithTree(ds.DB, ds.Tree)
		flat, err := base.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		rmse, err := m.RMSE(flat)
		if err != nil {
			t.Fatal(err)
		}
		meanRMSE := labelStdDev(flat, spec.Label)
		if rmse >= meanRMSE {
			t.Fatalf("RMSE %g not below mean-predictor %g", rmse, meanRMSE)
		}
	})

	t.Run("regtree-retailer", func(t *testing.T) {
		ds, err := datagen.Retailer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng := moo.NewEngineWithTree(ds.DB, ds.Tree, moo.DefaultOptions())
		spec := workloads.RTSpec(ds)
		spec.MinSplit = 100
		m, err := lmfao.LearnDecisionTree(eng, spec)
		if err != nil {
			t.Fatal(err)
		}
		if m.Nodes < 3 {
			t.Fatalf("tree did not grow: %d nodes", m.Nodes)
		}
	})

	t.Run("classtree-tpcds", func(t *testing.T) {
		ds, err := datagen.TPCDS(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng := moo.NewEngineWithTree(ds.DB, ds.Tree, moo.DefaultOptions())
		spec := workloads.CTSpec(ds)
		spec.MinSplit = 200
		m, err := lmfao.LearnDecisionTree(eng, spec)
		if err != nil {
			t.Fatal(err)
		}
		base := baseline.NewWithTree(ds.DB, ds.Tree)
		flat, err := base.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		acc, err := m.Accuracy(flat)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 0.5 {
			t.Fatalf("accuracy = %g", acc)
		}
	})

	t.Run("chowliu-favorita", func(t *testing.T) {
		ds, err := datagen.Favorita(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng := moo.NewEngineWithTree(ds.DB, ds.Tree, moo.DefaultOptions())
		attrs := ds.MIAttrs[:6]
		res, edges, err := lmfao.LearnChowLiuTree(eng, attrs)
		if err != nil {
			t.Fatal(err)
		}
		if len(edges) != len(attrs)-1 {
			t.Fatalf("edges = %d", len(edges))
		}
		if res.Total <= 0 {
			t.Fatal("empty join")
		}
	})

	t.Run("cube-yelp", func(t *testing.T) {
		ds, err := datagen.Yelp(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng := moo.NewEngineWithTree(ds.DB, ds.Tree, moo.DefaultOptions())
		res, _, err := lmfao.ComputeDataCube(eng, lmfao.CubeSpec{
			Dims: ds.CubeDims, Measures: ds.CubeMeasures,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Cuboids) != 8 {
			t.Fatalf("cuboids = %d", len(res.Cuboids))
		}
		apex, ok := res.Lookup(lmfao.CubeAll, lmfao.CubeAll, lmfao.CubeAll)
		if !ok || apex[0] <= 0 {
			t.Fatalf("apex = %v ok=%v", apex, ok)
		}
	})
}

func labelStdDev(flat *data.Relation, label data.AttrID) float64 {
	col, _ := flat.Col(label)
	n := float64(flat.Len())
	var s, ss float64
	for i := 0; i < flat.Len(); i++ {
		v := col.Float(i)
		s += v
		ss += v * v
	}
	return math.Sqrt(ss/n - (s/n)*(s/n))
}

// The Figure 5 ablation configurations must all produce identical covar
// matrices on a real dataset shape.
func TestAblationLevelsAgreeOnFavorita(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ds, err := datagen.Favorita(datagen.Config{Scale: 0.0001, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	batch := workloads.CovarMatrix(ds)
	variants := []moo.Options{
		{Threads: 1},
		{Compiled: true, Threads: 1},
		{Compiled: true, MultiOutput: true, Threads: 1},
		{Compiled: true, MultiOutput: true, MultiRoot: true, Threads: 1},
		{Compiled: true, MultiOutput: true, MultiRoot: true, Threads: 4, DomainParallelRows: 64},
	}
	var ref []*moo.ViewData
	for vi, opts := range variants {
		eng := moo.NewEngineWithTree(ds.DB, ds.Tree, opts)
		res, err := eng.Run(batch)
		if err != nil {
			t.Fatalf("variant %d: %v", vi, err)
		}
		if vi == 0 {
			ref = res.Results
			continue
		}
		for qi := range batch {
			a, b := ref[qi], res.Results[qi]
			if a.NumRows() != b.NumRows() {
				t.Fatalf("variant %d query %d: rows %d vs %d", vi, qi, a.NumRows(), b.NumRows())
			}
			for i := 0; i < a.NumRows(); i++ {
				j := b.Lookup(a.Key(i)...)
				if j < 0 {
					t.Fatalf("variant %d query %d: missing key %v", vi, qi, a.Key(i))
				}
				for c := 0; c < a.Stride; c++ {
					if d := math.Abs(a.Val(i, c) - b.Val(j, c)); d > 1e-6*(1+math.Abs(a.Val(i, c))) {
						t.Fatalf("variant %d query %d col %d: %g vs %g",
							vi, qi, c, a.Val(i, c), b.Val(j, c))
					}
				}
			}
		}
	}
}
