package lmfao_test

import (
	"errors"
	"runtime"
	"sync"
	"testing"

	lmfao "repro"
	"repro/internal/data"
)

// shardTestDB builds Sales(store, amount) ⋈ Stores(store, region) with the
// given per-row store keys and amounts; every store key maps to region
// regionOf(store). Amounts should be integral so comparisons are exact.
func shardTestDB(t *testing.T, stores []int64, amounts []float64, regionOf func(int64) int64) (*lmfao.Database, lmfao.AttrID, lmfao.AttrID, lmfao.AttrID) {
	t.Helper()
	db := lmfao.NewDatabase()
	store := db.Attr("store", lmfao.Key)
	amount := db.Attr("amount", lmfao.Numeric)
	region := db.Attr("region", lmfao.Categorical)
	if err := db.AddRelation(lmfao.NewRelation("Sales",
		[]lmfao.AttrID{store, amount},
		[]lmfao.Column{lmfao.IntColumn(stores), lmfao.FloatColumn(amounts)})); err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	var sk []int64
	var rk []int64
	for s := int64(0); s < 16; s++ { // all store keys deltas may ever use
		if !seen[s] {
			seen[s] = true
			sk = append(sk, s)
			rk = append(rk, regionOf(s))
		}
	}
	if err := db.AddRelation(lmfao.NewRelation("Stores",
		[]lmfao.AttrID{store, region},
		[]lmfao.Column{lmfao.IntColumn(sk), lmfao.IntColumn(rk)})); err != nil {
		t.Fatal(err)
	}
	return db, store, amount, region
}

// shardBatchQueries is the standard three-query batch: a scalar total, a
// group that can span shards (region) and a group that is always
// shard-local (store, the shard key).
func shardBatchQueries(store, amount, region lmfao.AttrID) []*lmfao.Query {
	return []*lmfao.Query{
		lmfao.NewQuery("total", nil, lmfao.Sum(amount), lmfao.Count()),
		lmfao.NewQuery("by_region", []lmfao.AttrID{region}, lmfao.Sum(amount), lmfao.Count()),
		lmfao.NewQuery("by_store", []lmfao.AttrID{store}, lmfao.Sum(amount)),
	}
}

// viewToRows flattens a result (every column, hidden count included) for
// exact comparison.
func viewToRows(v *lmfao.Result) map[string][]float64 {
	out := make(map[string][]float64, v.NumRows())
	for i := 0; i < v.NumRows(); i++ {
		row := make([]float64, v.Stride)
		for c := 0; c < v.Stride; c++ {
			row[c] = v.Val(i, c)
		}
		out[data.PackKey(v.Key(i)...)] = row
	}
	return out
}

// requireMergedEqual asserts every query's merged sharded output matches the
// unsharded session's bit-exactly, and that Lookup agrees with the merged
// rows.
func requireMergedEqual(t *testing.T, label string, sn *lmfao.ShardedSnapshot, single *lmfao.Session, queries []*lmfao.Query) {
	t.Helper()
	for qi := range queries {
		merged, err := sn.MergedResult(qi)
		if err != nil {
			t.Fatalf("%s: query %d: %v", label, qi, err)
		}
		got := viewToRows(merged)
		want := viewToRows(single.Result().Results[qi])
		if len(got) != len(want) {
			t.Fatalf("%s: query %d: merged has %d groups, unsharded %d\nmerged: %v\nwant:   %v",
				label, qi, len(got), len(want), got, want)
		}
		for key, wrow := range want {
			grow, ok := got[key]
			if !ok {
				t.Fatalf("%s: query %d: merged lacks group %v", label, qi, key)
			}
			for c := range wrow {
				if grow[c] != wrow[c] {
					t.Fatalf("%s: query %d group %x col %d: merged %v, unsharded %v",
						label, qi, key, c, grow[c], wrow[c])
				}
			}
			// Lookup must agree on the visible aggregate prefix.
			keyVals := make([]int64, data.KeyLen(key))
			data.UnpackKey(key, keyVals)
			lrow, ok := sn.Lookup(qi, keyVals...)
			if !ok {
				t.Fatalf("%s: query %d: Lookup misses group %v", label, qi, keyVals)
			}
			for c := range lrow {
				if lrow[c] != wrow[c] {
					t.Fatalf("%s: query %d group %v col %d: Lookup %v, want %v",
						label, qi, keyVals, c, lrow[c], wrow[c])
				}
			}
		}
	}
}

// newShardedPair builds an unsharded Session and a ShardedSession over
// clones of the same data and runs both.
func newShardedPair(t *testing.T, shards int, stores []int64, amounts []float64, regionOf func(int64) int64) (*lmfao.ShardedSession, *lmfao.Session, []*lmfao.Query) {
	t.Helper()
	db1, store, amount, region := shardTestDB(t, append([]int64{}, stores...), append([]float64{}, amounts...), regionOf)
	db2, _, _, _ := shardTestDB(t, append([]int64{}, stores...), append([]float64{}, amounts...), regionOf)
	queries := shardBatchQueries(store, amount, region)
	single, err := lmfao.NewSession(db1, queries, lmfao.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.Run(); err != nil {
		t.Fatal(err)
	}
	sharded, err := lmfao.NewShardedSession(db2, queries, lmfao.DefaultOptions(),
		lmfao.ShardOptions{Shards: shards, Relation: "Sales", Key: []lmfao.AttrID{store}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sharded.Close)
	if _, err := sharded.Run(); err != nil {
		t.Fatal(err)
	}
	return sharded, single, queries
}

// applyBoth applies the same updates to the sharded and unsharded sessions.
func applyBoth(t *testing.T, sharded *lmfao.ShardedSession, single *lmfao.Session, updates ...lmfao.Update) {
	t.Helper()
	if _, err := single.Apply(updates...); err != nil {
		t.Fatalf("unsharded apply: %v", err)
	}
	if _, err := sharded.Apply(updates...); err != nil {
		t.Fatalf("sharded apply: %v", err)
	}
}

func TestShardedSessionMergedEqualsUnsharded(t *testing.T) {
	stores := []int64{0, 1, 2, 3, 4, 5, 0, 1, 2}
	amounts := []float64{10, 5, 7, 3, 2, 8, 1, 4, 6}
	sharded, single, queries := newShardedPair(t, 3, stores, amounts, func(s int64) int64 { return s % 2 })
	requireMergedEqual(t, "initial", sharded.Head(), single, queries)

	// Fact insert (routes across shards) + dimension-less delete.
	applyBoth(t, sharded, single,
		lmfao.InsertRows("Sales", lmfao.IntColumn([]int64{3, 4, 6}), lmfao.FloatColumn([]float64{11, 12, 13})),
		lmfao.DeleteRows("Sales", lmfao.IntColumn([]int64{0}), lmfao.FloatColumn([]float64{10})),
	)
	requireMergedEqual(t, "after fact updates", sharded.Head(), single, queries)

	// Dimension update: broadcast to every shard. Store 7 gets its first
	// sales rows afterwards, so the new region assignment matters.
	applyBoth(t, sharded, single,
		lmfao.InsertRows("Sales", lmfao.IntColumn([]int64{7, 7}), lmfao.FloatColumn([]float64{20, 21})),
	)
	requireMergedEqual(t, "after broadcast + fact", sharded.Head(), single, queries)
}

func TestShardedSessionEmptyShard(t *testing.T) {
	// One distinct store key: with 4 shards, three are empty (and stay so).
	one := data.ShardOf([]int64{5}, 4)
	stores := []int64{5, 5, 5}
	amounts := []float64{1, 2, 3}
	sharded, single, queries := newShardedPair(t, 4, stores, amounts, func(s int64) int64 { return 0 })
	for i := 0; i < sharded.NumShards(); i++ {
		n := sharded.Shard(i).Engine().DB().Relation("Sales").Len()
		if i == one && n != 3 {
			t.Fatalf("shard %d should hold all 3 fact rows, has %d", i, n)
		}
		if i != one && n != 0 {
			t.Fatalf("shard %d should be empty, has %d fact rows", i, n)
		}
	}
	requireMergedEqual(t, "skewed initial", sharded.Head(), single, queries)

	// Updates against the loaded shard and against a previously empty one.
	applyBoth(t, sharded, single,
		lmfao.InsertRows("Sales", lmfao.IntColumn([]int64{5, 1}), lmfao.FloatColumn([]float64{4, 9})),
	)
	requireMergedEqual(t, "after filling an empty shard", sharded.Head(), single, queries)
}

func TestShardedSessionGroupInOneShardOnly(t *testing.T) {
	// regionOf(s) = s: every region group exists in exactly one shard.
	stores := []int64{0, 1, 2, 3}
	amounts := []float64{10, 20, 30, 40}
	sharded, single, queries := newShardedPair(t, 4, stores, amounts, func(s int64) int64 { return s })
	sn := sharded.Head()
	requireMergedEqual(t, "disjoint groups", sn, single, queries)
	// The per-region groups must come from exactly one shard each.
	for _, s := range stores {
		present := 0
		for i := 0; i < sn.NumShards(); i++ {
			if _, ok := sn.Shard(i).Lookup(1, s); ok {
				present++
			}
		}
		if present != 1 {
			t.Fatalf("region %d present in %d shards, want exactly 1", s, present)
		}
	}
}

func TestShardedSessionDeleteDrivenGroupDrop(t *testing.T) {
	// Store 3 is region 9's only support; deleting its rows must drop the
	// region 9 group from the merged snapshot, exactly as unsharded.
	regionOf := func(s int64) int64 {
		if s == 3 {
			return 9
		}
		return 0
	}
	stores := []int64{0, 1, 3, 3}
	amounts := []float64{1, 2, 30, 31}
	sharded, single, queries := newShardedPair(t, 3, stores, amounts, regionOf)
	if _, ok := sharded.Head().Lookup(1, 9); !ok {
		t.Fatal("region 9 group missing before the delete")
	}
	applyBoth(t, sharded, single,
		lmfao.DeleteRows("Sales", lmfao.IntColumn([]int64{3, 3}), lmfao.FloatColumn([]float64{30, 31})),
	)
	sn := sharded.Head()
	requireMergedEqual(t, "after group-dropping delete", sn, single, queries)
	if _, ok := sn.Lookup(1, 9); ok {
		t.Fatal("region 9 group still visible in the merged snapshot after its last rows were deleted")
	}
	if _, ok := sn.Lookup(2, 3); ok {
		t.Fatal("store 3 group still visible after its last rows were deleted")
	}
}

func TestShardedSessionAsyncPipelineAndStats(t *testing.T) {
	stores := []int64{0, 1, 2, 3}
	amounts := []float64{1, 2, 3, 4}
	sharded, single, queries := newShardedPair(t, 2, stores, amounts, func(s int64) int64 { return s % 2 })

	// Enqueue a burst of insert-only updates without waiting: the per-shard
	// workers may batch and coalesce them into fewer maintenance rounds.
	const rounds = 24
	chans := make([]<-chan lmfao.ApplyResult, 0, rounds)
	for r := 0; r < rounds; r++ {
		store := int64(r % 4)
		u := lmfao.InsertRows("Sales",
			lmfao.IntColumn([]int64{store}), lmfao.FloatColumn([]float64{float64(r)}))
		if _, err := single.Apply(u); err != nil {
			t.Fatal(err)
		}
		chans = append(chans, sharded.ApplyAsync(u))
	}
	for _, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	sharded.Wait()
	requireMergedEqual(t, "after async burst", sharded.Head(), single, queries)

	st := sharded.Stats()
	if st.Shards != 2 || st.Enqueued != rounds {
		t.Fatalf("stats = %+v, want Shards=2 Enqueued=%d", st, rounds)
	}
	if st.Applied > st.Enqueued || st.Rounds > st.Applied || st.Rounds == 0 {
		t.Fatalf("implausible coalescing counters: %+v", st)
	}
}

func TestShardedSessionCoalescingPreservesMixedOrder(t *testing.T) {
	// insert(x) then delete(x) in separate queued updates must not be folded
	// into one delta (whose deletes would apply first and fail). Stream many
	// such pairs asynchronously so workers get the chance to batch them.
	stores := []int64{0}
	amounts := []float64{1}
	sharded, single, queries := newShardedPair(t, 2, stores, amounts, func(s int64) int64 { return 0 })
	var chans []<-chan lmfao.ApplyResult
	for r := 0; r < 10; r++ {
		v := float64(100 + r)
		ins := lmfao.InsertRows("Sales", lmfao.IntColumn([]int64{2}), lmfao.FloatColumn([]float64{v}))
		del := lmfao.DeleteRows("Sales", lmfao.IntColumn([]int64{2}), lmfao.FloatColumn([]float64{v}))
		if _, err := single.Apply(ins, del); err != nil {
			t.Fatal(err)
		}
		chans = append(chans, sharded.ApplyAsync(ins), sharded.ApplyAsync(del))
	}
	for i, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatalf("async update %d: %v", i, res.Err)
		}
	}
	requireMergedEqual(t, "after insert/delete pairs", sharded.Head(), single, queries)
}

func TestShardedSessionErrorAttribution(t *testing.T) {
	// A bad update (delete of a missing tuple) must deliver its error to its
	// own ApplyAsync call only; valid calls enqueued before it — possibly
	// coalesced into the same maintenance round — must report success, since
	// their updates commit either way. The shard keeps serving and recovers.
	stores := []int64{0, 1, 2, 3}
	amounts := []float64{1, 2, 3, 4}
	sharded, single, queries := newShardedPair(t, 2, stores, amounts, func(s int64) int64 { return s % 2 })

	var goodChans []<-chan lmfao.ApplyResult
	for r := 0; r < 8; r++ {
		u := lmfao.InsertRows("Sales",
			lmfao.IntColumn([]int64{int64(r % 4)}), lmfao.FloatColumn([]float64{float64(10 + r)}))
		if _, err := single.Apply(u); err != nil {
			t.Fatal(err)
		}
		goodChans = append(goodChans, sharded.ApplyAsync(u))
	}
	bad := lmfao.DeleteRows("Sales",
		lmfao.IntColumn([]int64{9}), lmfao.FloatColumn([]float64{999}))
	badCh := sharded.ApplyAsync(bad)
	for i, ch := range goodChans {
		if res := <-ch; res.Err != nil {
			t.Fatalf("valid call %d contaminated by the bad update's error: %v", i, res.Err)
		}
	}
	if res := <-badCh; res.Err == nil {
		t.Fatal("bad delete must deliver an error to its own call")
	}
	sharded.Wait()
	requireMergedEqual(t, "after error round", sharded.Head(), single, queries)

	// The shard recovers: later updates apply normally.
	applyBoth(t, sharded, single,
		lmfao.InsertRows("Sales", lmfao.IntColumn([]int64{1}), lmfao.FloatColumn([]float64{50})))
	requireMergedEqual(t, "after recovery", sharded.Head(), single, queries)
}

func TestShardedSessionCloseAndErrors(t *testing.T) {
	stores := []int64{0, 1}
	amounts := []float64{1, 2}
	sharded, _, _ := newShardedPair(t, 2, stores, amounts, func(s int64) int64 { return 0 })
	sharded.Close()
	sharded.Close() // idempotent
	if _, err := sharded.Apply(lmfao.InsertRows("Sales",
		lmfao.IntColumn([]int64{1}), lmfao.FloatColumn([]float64{3}))); err == nil {
		t.Fatal("Apply after Close must fail")
	}

	db, store, amount, region := shardTestDB(t, []int64{0}, []float64{1}, func(int64) int64 { return 0 })
	queries := shardBatchQueries(store, amount, region)
	if _, err := lmfao.NewShardedSession(db, queries, lmfao.DefaultOptions(),
		lmfao.ShardOptions{Shards: 0}); err == nil {
		t.Fatal("0 shards must fail")
	}
	if _, err := lmfao.NewShardedSession(db, queries, lmfao.DefaultOptions(),
		lmfao.ShardOptions{Shards: 2, Relation: "nope"}); err == nil {
		t.Fatal("unknown fact relation must fail")
	}
	if _, err := lmfao.NewShardedSession(db, queries, lmfao.DefaultOptions(),
		lmfao.ShardOptions{Shards: 2, Relation: "Sales", Key: []lmfao.AttrID{amount}}); err == nil {
		t.Fatal("numeric shard key must fail")
	}
}

func TestShardedSessionDefaults(t *testing.T) {
	// Sales must out-size the 16-row Stores dimension for the default pick.
	stores := make([]int64, 21)
	amounts := make([]float64, 21)
	for i := range stores {
		stores[i] = int64(i % 4)
		amounts[i] = 1
	}
	db, store, amount, region := shardTestDB(t, stores, amounts, func(s int64) int64 { return s % 2 })
	queries := shardBatchQueries(store, amount, region)
	// No Relation, no Key: must pick Sales (largest) sharded on store (the
	// join key with Stores).
	sharded, err := lmfao.NewShardedSession(db, queries, lmfao.DefaultOptions(), lmfao.ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	if sharded.FactRelation() != "Sales" {
		t.Fatalf("default fact = %q, want Sales", sharded.FactRelation())
	}
	if k := sharded.ShardKey(); len(k) != 1 || k[0] != store {
		t.Fatalf("default shard key = %v, want [%d]", k, store)
	}
	if _, err := sharded.Run(); err != nil {
		t.Fatal(err)
	}
	sn := sharded.Head()
	if sn == nil || sn.NumQueries() != len(queries) {
		t.Fatal("snapshot missing after Run")
	}
	if vv := sn.Versions(); len(vv) != 2 {
		t.Fatalf("shard vector has %d components, want 2", len(vv))
	}
	if ep := sn.Epochs(); len(ep) != 2 || ep[0] == 0 || ep[1] == 0 {
		t.Fatalf("epochs = %v, want two nonzero", ep)
	}
	total, ok := sn.Lookup(0)
	if !ok || total[0] != 21 || total[1] != 21 {
		t.Fatalf("scalar lookup = %v ok=%v, want [21 21]", total, ok)
	}
}

// TestShardedSessionRunCloseRace is the regression test for Run racing
// Close: Run used to check the closed flag without taking the enqueue read
// lock (unlike ApplyAsync), so a concurrent Close could tear the session
// down while Run executed against the shard sessions. Run now holds
// closeMu.RLock for the duration; this test hammers the pair under the race
// detector and pins the post-Close contract.
func TestShardedSessionRunCloseRace(t *testing.T) {
	for round := 0; round < 8; round++ {
		db, _, amount, region := shardTestDB(t,
			[]int64{0, 1, 2, 3, 4, 5}, []float64{1, 2, 3, 4, 5, 6},
			func(s int64) int64 { return s % 2 })
		queries := []*lmfao.Query{
			lmfao.NewQuery("total", nil, lmfao.Sum(amount)),
			lmfao.NewQuery("by_region", []lmfao.AttrID{region}, lmfao.Count()),
		}
		s, err := lmfao.NewShardedSession(db, queries, lmfao.DefaultOptions(), lmfao.ShardOptions{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for {
				sn, err := s.Run()
				if err != nil {
					if !errors.Is(err, lmfao.ErrSessionClosed) {
						t.Errorf("Run failed with %v, want ErrSessionClosed", err)
					}
					return
				}
				if sn == nil {
					t.Error("successful Run returned a nil snapshot")
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			runtime.Gosched()
			s.Close()
		}()
		wg.Wait()
		if _, err := s.Run(); !errors.Is(err, lmfao.ErrSessionClosed) {
			t.Fatalf("Run after Close: err = %v, want ErrSessionClosed", err)
		}
		// The last published snapshot must survive the shutdown intact.
		sn := s.Head()
		if sn == nil {
			t.Fatal("snapshot gone after Close")
		}
		if _, ok := sn.Lookup(0); !ok {
			t.Fatal("scalar lookup failed on post-Close snapshot")
		}
	}
}
