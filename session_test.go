package lmfao

import (
	"testing"
)

// sessionFixture builds sales(store, amount) ⋈ stores(store, region).
func sessionFixture(t *testing.T) (*Database, AttrID, AttrID, AttrID) {
	t.Helper()
	db := NewDatabase()
	store := db.Attr("store", Key)
	amount := db.Attr("amount", Numeric)
	region := db.Attr("region", Categorical)
	if err := db.AddRelation(NewRelation("sales",
		[]AttrID{store, amount},
		[]Column{IntColumn([]int64{0, 0, 1, 1, 2}), FloatColumn([]float64{1, 2, 3, 4, 5})})); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(NewRelation("stores",
		[]AttrID{store, region},
		[]Column{IntColumn([]int64{0, 1, 2}), IntColumn([]int64{10, 10, 20})})); err != nil {
		t.Fatal(err)
	}
	return db, store, amount, region
}

func lookupRow(t *testing.T, r *Result, key ...int64) []float64 {
	t.Helper()
	i := r.Lookup(key...)
	if i < 0 {
		t.Fatalf("key %v not in result", key)
	}
	row := make([]float64, r.Stride)
	for c := range row {
		row[c] = r.Val(i, c)
	}
	return row
}

func TestSessionIncrementalMaintenance(t *testing.T) {
	db, _, amount, region := sessionFixture(t)
	queries := []*Query{
		NewQuery("byregion", []AttrID{region}, Count(), Sum(amount)),
		NewQuery("total", nil, Sum(amount)),
	}
	sess, err := NewSession(db, queries, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if got := lookupRow(t, sess.Result().Results[0], 10)[1]; got != 10 {
		t.Fatalf("initial SUM(amount) region 10 = %g, want 10", got)
	}

	// Insert two sales at store 0 (region 10), delete the store-2 sale
	// (region 20's only tuple).
	stats, err := sess.Apply(Update{
		Relation: "sales",
		Inserts:  []Column{IntColumn([]int64{0, 0}), FloatColumn([]float64{10, 20})},
		Deletes:  []Column{IntColumn([]int64{2}), FloatColumn([]float64{5})},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || !stats[0].Incremental {
		t.Fatalf("expected one incremental maintenance pass, got %+v", stats)
	}
	res := sess.Result()
	if got := lookupRow(t, res.Results[0], 10); got[0] != 6 || got[1] != 40 {
		t.Fatalf("region 10 after update = %v, want [6 40 ...]", got)
	}
	if res.Results[0].Lookup(20) >= 0 {
		t.Fatal("region 20 should vanish after its only tuple was deleted")
	}
	if got := lookupRow(t, res.Results[1])[0]; got != 40 {
		t.Fatalf("scalar total after update = %g, want 40", got)
	}

	// The base relation's delta log recorded both halves.
	if entries := db.Relation("sales").DeltaLog(0); len(entries) != 2 {
		t.Fatalf("delta log has %d entries, want 2 (delete + append)", len(entries))
	}
}

// TestSessionSnapshotIsolation pins the publication protocol: a snapshot
// acquired before a maintenance round keeps serving the old version,
// bit-exact, after the round commits a new one.
func TestSessionSnapshotIsolation(t *testing.T) {
	db, _, amount, region := sessionFixture(t)
	queries := []*Query{
		NewQuery("byregion", []AttrID{region}, Count(), Sum(amount)),
		NewQuery("total", nil, Sum(amount)),
	}
	sess, err := NewSession(db, queries, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sess.Head() != nil {
		t.Fatal("snapshot published before first Run")
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	old := sess.Head()
	if old == nil || old.Epoch() != 1 {
		t.Fatalf("first snapshot = %+v, want epoch 1", old)
	}
	oldVV := old.VersionVector()

	if _, err := sess.Apply(Update{
		Relation: "sales",
		Inserts:  []Column{IntColumn([]int64{0, 0}), FloatColumn([]float64{10, 20})},
		Deletes:  []Column{IntColumn([]int64{2}), FloatColumn([]float64{5})},
	}); err != nil {
		t.Fatal(err)
	}
	cur := sess.Head()
	if cur.Epoch() <= old.Epoch() {
		t.Fatalf("epoch did not advance: %d after %d", cur.Epoch(), old.Epoch())
	}
	if cur.VersionVector().Equal(oldVV) {
		t.Fatalf("version vector unchanged across a mutating round: %v", oldVV)
	}
	if got, want := cur.VersionVector()["sales"], oldVV["sales"]+2; got != want {
		t.Fatalf("sales version = %d, want %d (delete + append)", got, want)
	}

	// The old snapshot still serves the pre-update state.
	if row, ok := old.Lookup(0, 10); !ok || row[0] != 4 || row[1] != 10 {
		t.Fatalf("old snapshot region 10 = %v %v, want [4 10]", row, ok)
	}
	if row, ok := old.Lookup(0, 20); !ok || row[1] != 5 {
		t.Fatalf("old snapshot region 20 = %v %v, want [1 5]", row, ok)
	}
	if row, ok := old.Lookup(1); !ok || row[0] != 15 {
		t.Fatalf("old snapshot total = %v %v, want [15]", row, ok)
	}
	// The new snapshot serves the post-update state; region 20 vanished.
	if row, ok := cur.Lookup(0, 10); !ok || row[0] != 6 || row[1] != 40 {
		t.Fatalf("new snapshot region 10 = %v %v, want [6 40]", row, ok)
	}
	if _, ok := cur.Lookup(0, 20); ok {
		t.Fatal("region 20 still present after its only tuple was deleted")
	}
	// Lookup trims the hidden count column: rows have exactly the query's
	// aggregates.
	if row, _ := cur.Lookup(0, 10); len(row) != 2 {
		t.Fatalf("lookup row has %d cols, want 2 (hidden count trimmed)", len(row))
	}
}

func TestSessionApplyAsync(t *testing.T) {
	db, _, amount, _ := sessionFixture(t)
	sess, err := NewSession(db, []*Query{NewQuery("total", nil, Sum(amount))}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	before := sess.Head()
	res := <-sess.ApplyAsync(InsertRows("sales", IntColumn([]int64{1}), FloatColumn([]float64{85})))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Stats) != 1 || !res.Stats[0].Incremental {
		t.Fatalf("async stats = %+v, want one incremental pass", res.Stats)
	}
	after := sess.Head()
	if after.Epoch() <= before.Epoch() {
		t.Fatalf("async round did not publish: epoch %d after %d", after.Epoch(), before.Epoch())
	}
	if row, ok := after.Lookup(0); !ok || row[0] != 100 {
		t.Fatalf("total after async apply = %v %v, want [100]", row, ok)
	}
	if row, ok := before.Lookup(0); !ok || row[0] != 15 {
		t.Fatalf("pre-async snapshot total = %v %v, want [15]", row, ok)
	}
}

func TestSessionApplyBeforeRun(t *testing.T) {
	db, _, amount, _ := sessionFixture(t)
	sess, err := NewSession(db, []*Query{NewQuery("total", nil, Sum(amount))}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Applying before the first Run mutates the base and computes fresh.
	if _, err := sess.Apply(InsertRows("sales", IntColumn([]int64{0}), FloatColumn([]float64{100}))); err != nil {
		t.Fatal(err)
	}
	if got := lookupRow(t, sess.Result().Results[0])[0]; got != 115 {
		t.Fatalf("total = %g, want 115", got)
	}
}

func TestSessionDeleteMissingRowFails(t *testing.T) {
	db, _, amount, _ := sessionFixture(t)
	sess, err := NewSession(db, []*Query{NewQuery("total", nil, Sum(amount))}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Apply(DeleteRows("sales", IntColumn([]int64{9}), FloatColumn([]float64{9}))); err == nil {
		t.Fatal("deleting a non-existent tuple succeeded")
	}
	// The failed update must not have corrupted the maintained state.
	if got := lookupRow(t, sess.Result().Results[0])[0]; got != 15 {
		t.Fatalf("total after failed delete = %g, want 15", got)
	}
}
