// Package b is fsyncrename's clean cases: the full write/sync/rename
// idiom, sync via a helper, and a pure move with no write at all.
package b

import "os"

func writeSyncRename(dir string) error {
	tmp := dir + "/manifest.tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("v1")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, dir+"/manifest")
}

func viaHelper(dir string) error {
	tmp := dir + "/ckpt.tmp"
	if err := os.WriteFile(tmp, []byte("data"), 0o644); err != nil {
		return err
	}
	if err := fsyncPath(tmp); err != nil {
		return err
	}
	return os.Rename(tmp, dir+"/ckpt")
}

func fsyncPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

func pureMove(dir string) error {
	return os.Rename(dir+"/old", dir+"/new")
}
