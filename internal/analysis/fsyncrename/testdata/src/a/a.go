// Package a exercises fsyncrename's flagged cases: renames that publish
// unsynced content.
package a

import "os"

func writeFileThenRename(dir string) error {
	tmp := dir + "/manifest.tmp"
	if err := os.WriteFile(tmp, []byte("v1"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, dir+"/manifest") // want "no preceding Sync"
}

func createNoSync(dir string) error {
	tmp := dir + "/ckpt.tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("data")); err != nil {
		f.Close()
		return err
	}
	f.Close()
	return os.Rename(tmp, dir+"/ckpt") // want "no preceding Sync"
}
