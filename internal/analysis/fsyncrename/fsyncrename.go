// Package fsyncrename checks the atomic-publish idiom for checkpoint and
// manifest files: an os.Rename that publishes freshly written content must
// be preceded by a File.Sync on that content.
//
// The durability story (WAL checkpoints, shard manifests) leans on
// write-tmp / fsync / rename: the rename is atomic on POSIX filesystems,
// but only the fsync guarantees the bytes behind the new name survive a
// crash. os.WriteFile never syncs, so WriteFile+Rename publishes a file
// whose content may be lost or torn — recovery then reads an empty
// manifest and silently starts from scratch. The analyzer flags any
// os.Rename that is lexically preceded in its function by a file write
// (os.WriteFile, os.Create, os.CreateTemp, os.OpenFile) with no
// intervening Sync call.
package fsyncrename

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the fsyncrename analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "fsyncrename",
	Doc:  "os.Rename publishing fresh content must be preceded by File.Sync",
	Run:  run,
}

// writeFuncs are the os functions that produce file content. A rename with
// none of these before it is treated as a pure move and left alone.
var writeFuncs = map[string]bool{
	"WriteFile":  true,
	"Create":     true,
	"CreateTemp": true,
	"OpenFile":   true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// checkFunc orders the function's write, sync, and rename calls lexically
// and flags each rename that follows a write with no sync in between.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var writes, syncs []token.Pos
	var renames []*ast.CallExpr

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if isOSFunc(pass, fun) {
				switch {
				case name == "Rename":
					renames = append(renames, call)
				case writeFuncs[name]:
					writes = append(writes, call.Pos())
				}
				return true
			}
			// f.Sync() on any value, or a helper like dir.syncAll().
			if name == "Sync" || strings.Contains(strings.ToLower(name), "sync") {
				syncs = append(syncs, call.Pos())
			}
		case *ast.Ident:
			// Local helper such as syncDir(dir) or fsyncFile(path).
			if strings.Contains(strings.ToLower(fun.Name), "sync") {
				syncs = append(syncs, call.Pos())
			}
		}
		return true
	})

	for _, r := range renames {
		if before(writes, r.Pos()) && !before(syncs, r.Pos()) {
			pass.Reportf(r.Pos(), "os.Rename publishes freshly written content with no preceding Sync; a crash can publish an empty or torn file")
		}
	}
}

// before reports whether any position in ps lexically precedes p.
func before(ps []token.Pos, p token.Pos) bool {
	for _, q := range ps {
		if q < p {
			return true
		}
	}
	return false
}

// isOSFunc reports whether sel is a reference to a function in package os.
func isOSFunc(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "os"
}
