package fsyncrename_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/fsyncrename"
)

func TestFlagged(t *testing.T) {
	analyzertest.Run(t, fsyncrename.Analyzer, "testdata/src/a")
}

func TestClean(t *testing.T) {
	analyzertest.Run(t, fsyncrename.Analyzer, "testdata/src/b")
}
