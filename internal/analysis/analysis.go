// Package analysis is the engine's static-analysis suite: a minimal,
// dependency-free reimplementation of the go/analysis driver pattern plus
// the custom analyzers that machine-check this codebase's layer contracts
// (snapshot publication, lock protocols, delta-log pinning, checkpoint
// durability, sentinel errors, godoc coverage). cmd/lmfao-vet exposes the
// suite through the `go vet -vettool` protocol; the per-analyzer contracts
// live in the analyzer subpackages and the comment-directive grammar they
// consume in internal/analysis/annotations.
//
// The framework mirrors golang.org/x/tools/go/analysis — Analyzer, Pass,
// Diagnostic — but is built on the standard library only: the module
// vendors nothing and adds no dependencies, so the vet tool builds from a
// bare checkout with the Go toolchain alone. Cross-package facts are
// deliberately unsupported; every invariant here is checkable one package
// at a time (annotations travel in source, not in fact files).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/annotations"
)

// An Analyzer describes one analysis: a named, documented check over a
// single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, test expectations and
	// lmfao:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the analyzer's contract: the invariant it enforces and the
	// bug class that motivated it.
	Doc string
	// Run executes the check, reporting findings through pass.Report.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer run with a single type-checked package and
// a sink for diagnostics.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// ImportPath is the package's import path as the build system named
	// it — test variants keep their go list spelling, e.g.
	// "repro [repro.test]".
	ImportPath string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files is the package's parsed syntax, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries the type-checker's facts about Files.
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position and a message describing the
// violated invariant.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a diagnostic tagged with the analyzer that produced it,
// as returned by RunPackage.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// A Package is one loaded, type-checked compilation unit, ready for
// analyzer runs. Both the standalone loader (Load) and the vet-protocol
// unit runner (RunUnit) produce it.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// RunPackage executes the analyzers over one package, applies the
// lmfao:ignore suppressions and returns the surviving findings in source
// order (analyzer order breaks position ties). Analyzer run errors are
// returned after the findings collected so far.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	ignored := make(map[int]map[string]bool)
	for _, f := range pkg.Files {
		for line, names := range annotations.IgnoredLines(pkg.Fset, f) {
			if ignored[line] == nil {
				ignored[line] = names
				continue
			}
			for n := range names {
				ignored[line][n] = true
			}
		}
	}
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			ImportPath: pkg.ImportPath,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
		}
		pass.Report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if names := ignored[pos.Line]; names != nil && names[a.Name] {
				return
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return out, fmt.Errorf("%s: analyzer %s: %w", pkg.ImportPath, a.Name, err)
		}
	}
	sortFindings(out)
	return out, nil
}

func sortFindings(fs []Finding) {
	// Insertion sort keeps the dependency surface nil; finding lists are
	// tiny (they gate CI at zero).
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && lessFinding(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func lessFinding(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}
