package senterr_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/senterr"
)

func TestFlagged(t *testing.T) {
	analyzertest.Run(t, senterr.Analyzer, "testdata/src/a")
}

func TestClean(t *testing.T) {
	analyzertest.Run(t, senterr.Analyzer, "testdata/src/b")
}
