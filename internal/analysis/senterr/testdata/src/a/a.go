// Package a exercises senterr's flagged cases: == / != / switch-case
// comparisons against package-level sentinel errors.
package a

import "errors"

// ErrClosed is a sentinel error.
var ErrClosed = errors.New("closed")

// errInternal is an unexported sentinel.
var errInternal = errors.New("internal")

func check(err error) bool {
	return err == ErrClosed // want "sentinel error ErrClosed compared with =="
}

func checkNeq(err error) bool {
	return errInternal != err // want "sentinel error errInternal compared with =="
}

func checkSwitch(err error) int {
	switch err {
	case ErrClosed: // want "sentinel error ErrClosed compared with =="
		return 1
	case nil:
		return 0
	}
	return 2
}
