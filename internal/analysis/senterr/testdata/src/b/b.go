// Package b is senterr's clean case: errors.Is for sentinels, and == only
// where it is legitimate (nil checks, local error variables, non-error
// values that merely share the Err prefix).
package b

import "errors"

// ErrClosed is a sentinel error.
var ErrClosed = errors.New("closed")

// ErrCode is not an error value, just an unfortunately named constant.
var ErrCode = 503

func check(err error) bool {
	return errors.Is(err, ErrClosed)
}

func checkNil(err error) bool {
	return err == nil
}

func checkLocal(err error) bool {
	other := errors.New("local")
	return err == other
}

func checkCode(c int) bool {
	return c == ErrCode
}
