// Package senterr checks that sentinel errors are compared with errors.Is,
// never with == or !=.
//
// The engine wraps errors as it crosses layers (shard attribution wraps
// session errors, the serving tier wraps maintainer errors), so an ==
// against a sentinel like lmfao.ErrSessionClosed silently stops matching
// the moment a %w wrap is introduced anywhere below — the admission
// control's closed-maintainer 503 mapping is exactly such a comparison
// chain. The analyzer flags == / != and switch cases whose operand is a
// package-level error variable named Err*/err*.
package senterr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the senterr analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "senterr",
	Doc:  "compare sentinel errors with errors.Is, not == or !=",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if v := sentinel(pass, n.X); v != nil {
					report(pass, n.OpPos, v)
				} else if v := sentinel(pass, n.Y); v != nil {
					report(pass, n.OpPos, v)
				}
			case *ast.SwitchStmt:
				// switch err { case ErrFoo: } compares with ==.
				if n.Tag == nil {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if v := sentinel(pass, e); v != nil {
							report(pass, e.Pos(), v)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

func report(pass *analysis.Pass, pos token.Pos, v *types.Var) {
	pass.Reportf(pos, "sentinel error %s compared with ==; use errors.Is so wrapped errors keep matching", v.Name())
}

// sentinel resolves e to a package-level error variable whose name marks
// it as a sentinel (Err... / err...), or nil.
func sentinel(pass *analysis.Pass, e ast.Expr) *types.Var {
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	// Package-level: the variable's parent scope is its package scope.
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	name := v.Name()
	if !strings.HasPrefix(name, "Err") && !strings.HasPrefix(name, "err") {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorType)
}
