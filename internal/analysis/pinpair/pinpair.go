// Package pinpair checks that every PinDeltaLog acquisition is released by
// a matching UnpinDeltaLog on all paths through the acquiring function.
//
// Delta-log pins hold back garbage collection of versioned deltas so a
// checkpoint (or a lagging reader) can replay them; a leaked pin silently
// disables truncation and the log grows without bound — the failure shows
// up hours later as disk pressure, far from the leak. The analyzer flags a
// Pin when the function contains no later Unpin on the same receiver, or
// when a return statement sits between the Pin and its first later Unpin
// (a path that leaks). A deferred Unpin on the receiver covers every path
// and always satisfies the pair. Functions that transfer the pin
// deliberately (checkpoint publication retains pins until the next
// checkpoint) opt out with the lmfao:retains-pin annotation.
package pinpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/annotations"
)

// Analyzer is the pinpair analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "pinpair",
	Doc:  "PinDeltaLog must be paired with UnpinDeltaLog on all paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if annotations.Has(fd.Doc, annotations.RetainsPin) {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

// pinCall is one Pin or Unpin call: its position and the printed form of
// the receiver expression, used to pair calls on the same value.
type pinCall struct {
	pos  token.Pos
	recv string
}

// checkBody analyzes one function body. Nested function literals are
// separate scopes: a pin inside a literal must be released inside it, and
// the literal's returns do not leak the enclosing function's pins.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var pins, unpins []pinCall
	deferred := map[string]bool{} // receivers with a deferred Unpin
	deferredCalls := map[*ast.CallExpr]bool{}
	var returns []token.Pos
	var lits []*ast.FuncLit

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		case *ast.DeferStmt:
			if recv, kind := pinKind(n.Call); kind == "UnpinDeltaLog" {
				deferred[recv] = true
				deferredCalls[n.Call] = true
			}
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		case *ast.CallExpr:
			if deferredCalls[n] {
				return true
			}
			switch recv, kind := pinKind(n); kind {
			case "PinDeltaLog":
				pins = append(pins, pinCall{n.Pos(), recv})
			case "UnpinDeltaLog":
				unpins = append(unpins, pinCall{n.Pos(), recv})
			}
		}
		return true
	})

	for _, pin := range pins {
		if deferred[pin.recv] {
			continue
		}
		release := firstAfter(unpins, pin)
		if release == token.NoPos {
			pass.Reportf(pin.pos, "%s.PinDeltaLog has no matching UnpinDeltaLog in this function; pair it with a defer, or annotate the function lmfao:retains-pin if the pin is deliberately transferred", pin.recv)
			continue
		}
		for _, ret := range returns {
			if pin.pos < ret && ret < release {
				pass.Reportf(pin.pos, "a return between %s.PinDeltaLog and its UnpinDeltaLog leaks the pin on that path; release it with defer", pin.recv)
				break
			}
		}
	}

	for _, lit := range lits {
		checkBody(pass, lit.Body)
	}
}

// firstAfter returns the position of the first Unpin on pin's receiver
// that lexically follows the pin, or NoPos.
func firstAfter(unpins []pinCall, pin pinCall) token.Pos {
	best := token.NoPos
	for _, u := range unpins {
		if u.recv == pin.recv && u.pos > pin.pos && (best == token.NoPos || u.pos < best) {
			best = u.pos
		}
	}
	return best
}

// pinKind classifies call as a PinDeltaLog or UnpinDeltaLog method call
// and returns the printed receiver expression, or kind "".
func pinKind(call *ast.CallExpr) (recv, kind string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	if name != "PinDeltaLog" && name != "UnpinDeltaLog" {
		return "", ""
	}
	return types.ExprString(sel.X), name
}
