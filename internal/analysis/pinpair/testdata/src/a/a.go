// Package a exercises pinpair's flagged cases: unreleased pins and pins
// leaked by an early return.
package a

type rel struct{ pins int }

func (r *rel) PinDeltaLog(v uint64)   { r.pins++ }
func (r *rel) UnpinDeltaLog(v uint64) { r.pins-- }

func neverReleased(r *rel) {
	r.PinDeltaLog(1) // want "no matching UnpinDeltaLog"
	_ = r.pins
}

func leakOnError(r *rel, fail bool) error {
	r.PinDeltaLog(2) // want "a return between .* leaks the pin"
	if fail {
		return errFail
	}
	r.UnpinDeltaLog(2)
	return nil
}

func wrongReceiver(a, b *rel) {
	a.PinDeltaLog(3) // want "no matching UnpinDeltaLog"
	b.UnpinDeltaLog(3)
}

var errFail = errorString("fail")

type errorString string

func (e errorString) Error() string { return string(e) }
