// Package b is pinpair's clean cases: deferred release, straight-line
// pairing, an annotated pin transfer, and literal-scoped pairing.
package b

type rel struct{ pins int }

func (r *rel) PinDeltaLog(v uint64)   { r.pins++ }
func (r *rel) UnpinDeltaLog(v uint64) { r.pins-- }

func deferred(r *rel, fail bool) error {
	r.PinDeltaLog(1)
	defer r.UnpinDeltaLog(1)
	if fail {
		return errFail
	}
	return nil
}

func straightLine(r *rel) {
	r.PinDeltaLog(2)
	_ = r.pins
	r.UnpinDeltaLog(2)
}

// transfer hands the pin to the next checkpoint cycle on purpose.
//
// lmfao:retains-pin
func transfer(r *rel) {
	r.PinDeltaLog(3)
}

func inLiteral(r *rel) func() {
	return func() {
		r.PinDeltaLog(4)
		defer r.UnpinDeltaLog(4)
	}
}

var errFail = errorString("fail")

type errorString string

func (e errorString) Error() string { return string(e) }
