package pinpair_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/pinpair"
)

func TestFlagged(t *testing.T) {
	analyzertest.Run(t, pinpair.Analyzer, "testdata/src/a")
}

func TestClean(t *testing.T) {
	analyzertest.Run(t, pinpair.Analyzer, "testdata/src/b")
}
