package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// UnitConfig mirrors the JSON compilation-unit description `go vet` hands
// a -vettool for each package (the unitchecker protocol): source files,
// the import-path remapping, and the dependencies' compiled export data.
// Fields the suite has no use for (fact files, cgo inputs) are listed for
// compatibility and ignored.
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes the analyzers over the single compilation unit
// described by a vet .cfg file and returns its findings. The suite uses no
// cross-package facts, so fact-only invocations (VetxOnly — `go vet` runs
// those over every dependency, standard library included) skip analysis
// entirely; either way an (empty) facts file is written so the build
// system can cache the unit as processed.
func RunUnit(cfgPath string, analyzers []*Analyzer) ([]Finding, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, fmt.Errorf("writing facts output: %v", err)
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	if len(cfg.GoFiles) == 0 {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil // the compiler will report it
			}
			return nil, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		// path is already canonical here (post-ImportMap).
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	compilerImporter := importer.ForCompiler(fset, compiler, lookup)
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
	conf := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	pkg := &Package{
		ImportPath: cfg.ImportPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	return RunPackage(pkg, analyzers)
}
