// Package lockheld checks the suite's two mutex annotations:
//
//	lmfao:requires <mu>      — the function must only be called with <mu> held
//	lmfao:acquires <mu>[.R]  — the function body must lock and release <mu>
//
// The engine splits locked operations in two: an exported entry point that
// acquires a mutex, and *Locked helpers that assume it is held
// (publishLocked, runLocked, applyLocked under writerMu). Calling a
// *Locked helper without the lock corrupts shared state without tripping
// any runtime check, and removing a lock acquisition from an entry point
// reintroduces the sharded-session shutdown race fixed in the serving-tier
// PR (Run must hold closeMu.R across the whole staged recompute so Close
// cannot tear the engine down mid-run). This analyzer makes both
// directions machine-checked.
//
// The call-site rule is lexical, not control-flow based: a call to a
// requires-annotated function is considered guarded when the enclosing
// declared function either carries a matching requires/acquires annotation
// itself, or contains an earlier <recv>.<mu>.Lock()/RLock() with no
// intervening plain release of <mu>. Deferred releases never end the
// guard, and neither do bail-out releases — an Unlock immediately followed
// by a return/branch statement, the error-exit idiom. Mutexes are matched
// by field name, so distinctly named mutexes (writerMu, closeMu, mergeMu)
// are tracked independently; two locks that share a name are
// conservatively conflated.
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/annotations"
)

// Analyzer is the lockheld analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "enforce lmfao:requires and lmfao:acquires mutex annotations",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	requires := requiredMutexes(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAcquires(pass, fd)
			checkCalls(pass, requires, fd)
		}
	}
	return nil
}

// requiredMutexes maps each function annotated lmfao:requires to the name
// of the mutex it demands. Only same-package callees are visible: the
// engine keeps *Locked helpers unexported, so every caller is in scope.
func requiredMutexes(pass *analysis.Pass) map[*types.Func]string {
	req := map[*types.Func]string{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			mu, ok := annotations.Arg(fd.Doc, annotations.Requires)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				req[fn] = mu
			}
		}
	}
	return req
}

// checkAcquires verifies that a function annotated lmfao:acquires <mu>[.R]
// actually contains the matching acquire and release calls. This is the
// regression guard: deleting the closeMu.RLock from ShardedSession.Run
// fails here, not in a rare shutdown interleaving.
func checkAcquires(pass *analysis.Pass, fd *ast.FuncDecl) {
	for _, d := range annotations.Parse(fd.Doc) {
		if d.Name != annotations.Acquires {
			continue
		}
		mu, read := strings.CutSuffix(d.Args, ".R")
		lock, unlock := "Lock", "Unlock"
		if read {
			lock, unlock = "RLock", "RUnlock"
		}
		var haveLock, haveUnlock bool
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if name, op := mutexOp(call); name == mu {
					switch op {
					case lock:
						haveLock = true
					case unlock:
						haveUnlock = true
					}
				}
			}
			return true
		})
		if !haveLock {
			pass.Reportf(fd.Name.Pos(), "%s is annotated lmfao:acquires %s but never calls %s.%s", fd.Name.Name, d.Args, mu, lock)
		} else if !haveUnlock {
			pass.Reportf(fd.Name.Pos(), "%s is annotated lmfao:acquires %s but never calls %s.%s", fd.Name.Name, d.Args, mu, unlock)
		}
	}
}

// lockEvent is one lexical mutex operation inside a function body.
type lockEvent struct {
	pos     token.Pos
	mu      string
	op      string // Lock, RLock, Unlock, RUnlock
	defers  bool   // wrapped in a defer statement
	bailout bool   // release immediately followed by return/branch
}

// checkCalls flags calls to requires-annotated functions that are not
// lexically guarded by the demanded mutex.
func checkCalls(pass *analysis.Pass, requires map[*types.Func]string, fd *ast.FuncDecl) {
	held := heldMutexes(fd)

	var events []lockEvent
	deferredCalls := map[*ast.CallExpr]bool{}
	bailoutCalls := bailouts(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferredCalls[n.Call] = true
		case *ast.CallExpr:
			if name, op := mutexOp(n); op != "" {
				events = append(events, lockEvent{
					pos:     n.Pos(),
					mu:      name,
					op:      op,
					defers:  deferredCalls[n],
					bailout: bailoutCalls[n],
				})
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil {
			return true
		}
		mu, ok := requires[fn]
		if !ok || held[mu] {
			return true
		}
		if !guardedAt(events, mu, call.Pos()) {
			pass.Reportf(call.Pos(), "call to %s requires %s held (lmfao:requires %s), but no lock of %s is in effect here", fn.Name(), mu, mu, mu)
		}
		return true
	})
}

// heldMutexes returns the mutexes the function may assume held for its
// whole body, from its own requires/acquires annotations.
func heldMutexes(fd *ast.FuncDecl) map[string]bool {
	held := map[string]bool{}
	for _, d := range annotations.Parse(fd.Doc) {
		if d.Name == annotations.Requires || d.Name == annotations.Acquires {
			held[strings.TrimSuffix(d.Args, ".R")] = true
		}
	}
	return held
}

// guardedAt reports whether mutex mu is lexically held at pos: some
// earlier Lock/RLock of mu with no plain (non-deferred, non-bailout)
// release between it and pos.
func guardedAt(events []lockEvent, mu string, pos token.Pos) bool {
	lock := token.NoPos
	for _, e := range events {
		if e.mu != mu || e.pos >= pos {
			continue
		}
		switch e.op {
		case "Lock", "RLock":
			if e.pos > lock {
				lock = e.pos
			}
		}
	}
	if lock == token.NoPos {
		return false
	}
	for _, e := range events {
		if e.mu != mu || e.defers || e.bailout {
			continue
		}
		if (e.op == "Unlock" || e.op == "RUnlock") && e.pos > lock && e.pos < pos {
			return false
		}
	}
	return true
}

// bailouts marks release calls whose statement is immediately followed by
// a return or branch statement — the error-exit idiom, which never
// reaches the code below it.
func bailouts(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i := 0; i+1 < len(block.List); i++ {
			es, ok := block.List[i].(*ast.ExprStmt)
			if !ok {
				continue
			}
			switch block.List[i+1].(type) {
			case *ast.ReturnStmt, *ast.BranchStmt:
			default:
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok {
				if _, op := mutexOp(call); op == "Unlock" || op == "RUnlock" {
					out[call] = true
				}
			}
		}
		return true
	})
	return out
}

// mutexOp decomposes a call like s.writerMu.Lock() or mu.RUnlock() into
// the mutex name and the operation, or ("", "").
func mutexOp(call *ast.CallExpr) (mu, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		return x.Name, sel.Sel.Name
	case *ast.SelectorExpr:
		return x.Sel.Name, sel.Sel.Name
	}
	return "", ""
}

// calleeFunc resolves the called function's type object, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}
