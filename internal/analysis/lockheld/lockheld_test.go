package lockheld_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/lockheld"
)

func TestFlagged(t *testing.T) {
	analyzertest.Run(t, lockheld.Analyzer, "testdata/src/a")
}

func TestClean(t *testing.T) {
	analyzertest.Run(t, lockheld.Analyzer, "testdata/src/b")
}
