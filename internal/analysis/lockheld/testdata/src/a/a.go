// Package a exercises lockheld's flagged cases: unguarded calls to
// requires-annotated functions and acquires annotations with missing
// lock or release calls.
package a

import "sync"

type session struct {
	mu    sync.Mutex
	gate  sync.RWMutex
	state int
}

// applyLocked assumes mu is held.
//
// lmfao:requires mu
func (s *session) applyLocked(v int) {
	s.state = v
}

func (s *session) unguarded(v int) {
	s.applyLocked(v) // want "requires mu held"
}

func (s *session) releasedTooEarly(v int) {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
	s.applyLocked(v) // want "requires mu held"
}

// forgotLock claims to take gate for reading but never does: the
// shutdown-race regression shape.
//
// lmfao:acquires gate.R
func (s *session) forgotLock(v int) int { // want "never calls gate.RLock"
	return s.state + v
}

// wrongMode locks exclusively where the annotation demands a read lock.
//
// lmfao:acquires gate.R
func (s *session) wrongMode() int { // want "never calls gate.RLock"
	s.gate.Lock()
	defer s.gate.Unlock()
	return s.state
}

// forgotUnlock acquires but never releases.
//
// lmfao:acquires mu
func (s *session) forgotUnlock(v int) { // want "never calls mu.Unlock"
	s.mu.Lock()
	s.state = v
}
