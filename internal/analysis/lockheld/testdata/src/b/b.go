// Package b is lockheld's clean cases: properly guarded calls, annotated
// callers, bail-out releases, deferred releases, and guarded closures.
package b

import "sync"

type session struct {
	mu    sync.Mutex
	gate  sync.RWMutex
	state int
	err   error
}

// applyLocked assumes mu is held.
//
// lmfao:requires mu
func (s *session) applyLocked(v int) {
	s.state = v
}

// publishLocked assumes mu is held.
//
// lmfao:requires mu
func (s *session) publishLocked() int {
	return s.state
}

// Apply is the locked entry point.
//
// lmfao:acquires mu
func (s *session) Apply(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyLocked(v)
}

// chainLocked is itself annotated, so its calls are covered.
//
// lmfao:requires mu
func (s *session) chainLocked(v int) int {
	s.applyLocked(v)
	return s.publishLocked()
}

// bailout releases only on the error exit; the call below still runs
// under the lock on the surviving path.
//
// lmfao:acquires mu
func (s *session) bailout(v int) error {
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		return s.err
	}
	s.applyLocked(v)
	s.mu.Unlock()
	return nil
}

// readEntry holds gate for reading across the whole body.
//
// lmfao:acquires gate.R
func (s *session) readEntry() int {
	s.gate.RLock()
	defer s.gate.RUnlock()
	return s.state
}

// viaClosure stages work in a literal while the lock is held.
//
// lmfao:acquires mu
func (s *session) viaClosure(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stage := func() {
		s.applyLocked(v)
	}
	stage()
}
