package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// LoadOptions configure Load.
type LoadOptions struct {
	// Dir is the working directory for the `go list` invocation (the
	// module root or below). Empty means the current directory.
	Dir string
	// Tests additionally loads each matched package's test variants
	// (in-package and external test packages), so _test.go files are
	// analyzed too — the same coverage `go vet` gives.
	Tests bool
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	DepOnly    bool
	ForTest    string
}

// Load builds and type-checks the packages matched by patterns using the
// go toolchain itself for dependency resolution: one `go list -export
// -deps -json` run yields every package's source files and its
// dependencies' compiled export data, and each matched package is then
// parsed and type-checked from source against that export data. No
// network, no module downloads, no third-party loader — the build cache
// the toolchain already maintains is the only artifact store.
//
// Generated test-main packages (ImportPath ending in ".test") are
// skipped; test variants ("pkg [pkg.test]") are loaded when opts.Tests is
// set.
func Load(opts LoadOptions, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,ImportMap,DepOnly,ForTest"}
	if opts.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = opts.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	byPath := make(map[string]*listPackage)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		byPath[lp.ImportPath] = lp
		if !lp.DepOnly && !strings.HasSuffix(lp.ImportPath, ".test") {
			targets = append(targets, lp)
		}
	}

	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typecheck(lp, byPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one listed package from source,
// importing dependencies from their compiled export data.
func typecheck(lp *listPackage, byPath map[string]*listPackage) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range lp.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	// The export-data importer resolves a path in two steps: the source
	// import path maps through the package's ImportMap (vendoring, test
	// variants), then the canonical path's export file from the go list
	// output backs the actual read. A fresh importer per target keeps the
	// per-path cache correct across test variants, which reuse import
	// paths for different compilations.
	lookup := func(path string) (io.ReadCloser, error) {
		dep, ok := byPath[path]
		if !ok || dep.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(dep.Export)
	}
	compilerImporter := importer.ForCompiler(fset, "gc", lookup)
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path := importPath
		if mapped, ok := lp.ImportMap[importPath]; ok {
			path = mapped
		}
		return compilerImporter.Import(path)
	})
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(strings.TrimSuffix(lp.ImportPath, " ["+lp.ForTest+".test]"), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: typecheck: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
