// Package analyzertest runs one analyzer over a testdata package and
// checks its diagnostics against expectations embedded in the source — the
// analysistest pattern, self-hosted on the suite's own loader.
//
// Expectations are comments of the form
//
//	x := s.closed // want "plain access"
//
// where the quoted string is a regular expression that must match a
// diagnostic reported on that line. Every expectation must be matched by
// exactly one diagnostic and every diagnostic must match an expectation; a
// clean package simply contains no want comments.
//
// Testdata layout follows analysistest: <analyzer>/testdata/src/<pkg>,
// loaded by directory path so the packages stay invisible to ./...
// patterns (go build, go vet and the docs gate never see them), while
// still compiling against the real standard library via the toolchain's
// export data.
package analyzertest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe extracts the quoted expectation from a "// want ..." comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(".*")\s*$`)

// expectation is one "// want" comment: a position and a message pattern.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the package rooted at dir (a testdata source directory,
// relative to the calling test's working directory) and reports every
// mismatch between the analyzer's diagnostics and the package's want
// comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkgs, err := analysis.Load(analysis.LoadOptions{}, "./"+filepath.ToSlash(dir))
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loading %s: got %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				w := parseWant(t, pkg.Fset, c)
				if w != nil {
					wants = append(wants, w)
				}
			}
		}
	}

	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	for _, f := range findings {
		if !matchWant(wants, f) {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, w.file, w.line, w.re)
		}
	}
}

// parseWant parses one comment into an expectation, or nil. Malformed
// want comments (unparseable quote or regexp) fail the test loudly rather
// than silently expecting nothing.
func parseWant(t *testing.T, fset *token.FileSet, c *ast.Comment) *expectation {
	m := wantRe.FindStringSubmatch(c.Text)
	if m == nil {
		if strings.Contains(c.Text, "want ") && strings.Contains(c.Text, `"`) {
			t.Fatalf("%s: malformed want comment: %s", fset.Position(c.Pos()), c.Text)
		}
		return nil
	}
	pattern, err := strconv.Unquote(m[1])
	if err != nil {
		t.Fatalf("%s: malformed want pattern %s: %v", fset.Position(c.Pos()), m[1], err)
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), pattern, err)
	}
	pos := fset.Position(c.Pos())
	return &expectation{file: filepath.Base(pos.Filename), line: pos.Line, re: re}
}

// matchWant marks and reports the first unmatched expectation that covers
// finding f.
func matchWant(wants []*expectation, f analysis.Finding) bool {
	for _, w := range wants {
		if !w.matched && w.file == filepath.Base(f.Pos.Filename) && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
