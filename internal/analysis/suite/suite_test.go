package suite_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

// moduleRoot returns the repository root (this package sits three levels
// below it).
func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Clean(filepath.Join(wd, "..", "..", ".."))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	return root
}

// TestSuiteCleanOnHead runs every analyzer over the whole module (test
// files included) and demands zero findings: the invariants the suite
// encodes hold on the tree as committed. A failure here is either a real
// regression or a new true finding — fix the code or annotate the
// contract, never this test.
func TestSuiteCleanOnHead(t *testing.T) {
	pkgs, err := analysis.Load(analysis.LoadOptions{Dir: moduleRoot(t), Tests: true}, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern ./... no longer covers the module", len(pkgs))
	}
	for _, pkg := range pkgs {
		findings, err := analysis.RunPackage(pkg, suite.All)
		if err != nil {
			t.Fatalf("running suite on %s: %v", pkg.ImportPath, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}

// TestSelect covers the -run flag's analyzer subsetting.
func TestSelect(t *testing.T) {
	if got, _ := suite.Select(""); len(got) != len(suite.All) {
		t.Errorf("Select(\"\") returned %d analyzers, want all %d", len(got), len(suite.All))
	}
	got, unknown := suite.Select("docdrift,senterr")
	if unknown != "" || len(got) != 2 || got[0].Name != "docdrift" || got[1].Name != "senterr" {
		t.Errorf("Select(docdrift,senterr) = %v, %q", got, unknown)
	}
	if _, unknown := suite.Select("nosuch"); unknown != "nosuch" {
		t.Errorf("Select(nosuch) reported unknown=%q, want nosuch", unknown)
	}
}

// TestGoVetVettool builds cmd/lmfao-vet and drives it through the real
// go vet -vettool protocol over the whole module — the exact CI
// invocation, handshakes and .cfg unit runs included.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("building and running the vettool is slow; skipped with -short")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "lmfao-vet")

	build := exec.Command("go", "build", "-o", bin, "./cmd/lmfao-vet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building lmfao-vet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}
