// Package suite registers the full lmfao-vet analyzer set. It exists as
// its own package (rather than a list in internal/analysis) so the
// framework does not import the analyzers it runs; the multichecker, the
// clean-tree test, and any future tool share this one registry.
package suite

import (
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/docdrift"
	"repro/internal/analysis/fsyncrename"
	"repro/internal/analysis/lockheld"
	"repro/internal/analysis/pinpair"
	"repro/internal/analysis/publishedmut"
	"repro/internal/analysis/senterr"
)

// All is every analyzer lmfao-vet runs, in report order.
var All = []*analysis.Analyzer{
	atomicfield.Analyzer,
	docdrift.Analyzer,
	fsyncrename.Analyzer,
	lockheld.Analyzer,
	pinpair.Analyzer,
	publishedmut.Analyzer,
	senterr.Analyzer,
}

// Select returns the analyzers named in the comma-separated list, or All
// when the list is empty. Unknown names return nil and the name.
func Select(list string) ([]*analysis.Analyzer, string) {
	if list == "" {
		return All, ""
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range All {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, name
		}
		picked = append(picked, a)
	}
	return picked, ""
}
