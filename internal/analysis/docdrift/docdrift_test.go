package docdrift_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/docdrift"
)

// cover opts the fixture packages into phases 2 and 3, which are scoped
// to the public packages in normal runs.
func cover(path string) {
	docdrift.CoveragePaths[path] = true
	docdrift.InterfacePaths[path] = true
}

func TestFlagged(t *testing.T) {
	cover("repro/internal/analysis/docdrift/testdata/src/a")
	analyzertest.Run(t, docdrift.Analyzer, "testdata/src/a")
}

func TestClean(t *testing.T) {
	cover("repro/internal/analysis/docdrift/testdata/src/b")
	analyzertest.Run(t, docdrift.Analyzer, "testdata/src/b")
}
