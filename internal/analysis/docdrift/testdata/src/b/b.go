// Package b is docdrift's clean case: package comment present, exported
// symbols documented, interface docs matching their method sets.
package b

// Exported is a documented type.
type Exported struct{ n int }

// Bump increments the counter.
func (e *Exported) Bump() { e.n++ }

// DoThing does the thing.
func DoThing() {}

// Limits for the thing.
var (
	MaxSize = 10
	minSize = 1
)

// Store is the storage contract:
//
//	Get(key string) string
//	Put(key, val string)
type Store interface {
	Get(key string) string
	Put(key, val string)
}

var _ = minSize
