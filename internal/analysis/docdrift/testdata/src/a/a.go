package a // want "package a has no package comment"

type Exported struct{ n int } // want "exported type Exported has no doc comment"

func DoThing() {} // want "exported function DoThing has no doc comment"

func (e *Exported) Bump() { e.n++ } // want "exported method Bump has no doc comment"

func helper() {}

var (
	MaxSize = 10 // want "exported var MaxSize has no doc comment"
	minSize = 1
)

// Store is the storage contract. It documents one method:
//
//	Get(key string) string
type Store interface {
	Get(key string) string
	Put(key, val string) // want "documents no method Put"
}

var _ = helper
var _ = minSize
