// Package docdrift is the godoc coverage gate, ported from the CI shell
// script (scripts/check_package_comments.sh) into a typed analyzer. Three
// phases:
//
//  1. every package (commands included) must have a package comment;
//  2. every exported top-level symbol of the packages listed in
//     CoveragePaths — the public lmfao package and internal/monoid, the
//     contract new aggregate instances are written against — must carry a
//     doc comment: its own, or for grouped declarations either a comment
//     on the group or one on the member;
//  3. exported interfaces of the public package must embed their full
//     method list in their doc comment (the serving-API contract types
//     document their method sets; a method added or renamed without
//     updating the documented contract is drift).
//
// The analyzer sees resolved declarations instead of regex-matched lines,
// so grouped declarations, build-tagged files, and factored receivers are
// handled by the parser rather than awk heuristics. Test files are
// ignored throughout, and external test packages (no non-test files) are
// skipped entirely.
package docdrift

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the docdrift analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "docdrift",
	Doc:  "godoc coverage: package comments, exported-symbol docs, interface doc drift",
	Run:  run,
}

// CoveragePaths are the import paths held to phases 2 and 3 (full
// exported-symbol coverage and interface method-list drift). Phase 1
// applies everywhere. Tests may override this to point at fixtures.
var CoveragePaths = map[string]bool{
	"repro":                 true,
	"repro/internal/monoid": true,
}

// InterfacePaths are the import paths held to phase 3. Only the public
// package documents method sets in prose today.
var InterfacePaths = map[string]bool{
	"repro": true,
}

func run(pass *analysis.Pass) error {
	var files []*ast.File
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if !strings.HasSuffix(name, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil // external test package: nothing to document
	}

	checkPackageComment(pass, files)

	path := pass.ImportPath
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i] // test variant of the base package
	}
	if CoveragePaths[path] {
		for _, f := range files {
			checkSymbolDocs(pass, f)
		}
	}
	if InterfacePaths[path] {
		for _, f := range files {
			checkInterfaceDocs(pass, f)
		}
	}
	return nil
}

// checkPackageComment is phase 1: some non-test file must carry a package
// comment.
func checkPackageComment(pass *analysis.Pass, files []*ast.File) {
	for _, f := range files {
		if f.Doc != nil {
			return
		}
	}
	pass.Reportf(files[0].Name.Pos(), "package %s has no package comment; add a godoc comment above the package clause of one file", files[0].Name.Name)
}

// checkSymbolDocs is phase 2: exported top-level symbols need doc
// comments.
func checkSymbolDocs(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				pass.Reportf(d.Name.Pos(), "exported %s %s has no doc comment", funcKind(d), d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Tok == token.IMPORT {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
						pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || d.Doc != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							pass.Reportf(name.Pos(), "exported %s %s has no doc comment", d.Tok, name.Name)
						}
					}
				}
			}
		}
	}
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// checkInterfaceDocs is phase 3: an exported interface's doc comment must
// mention every explicit exported method as "Name(".
func checkInterfaceDocs(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		d, ok := decl.(*ast.GenDecl)
		if !ok || d.Tok != token.TYPE {
			continue
		}
		for _, spec := range d.Specs {
			s, ok := spec.(*ast.TypeSpec)
			if !ok || !s.Name.IsExported() {
				continue
			}
			iface, ok := s.Type.(*ast.InterfaceType)
			if !ok {
				continue
			}
			doc := s.Doc
			if doc == nil {
				doc = d.Doc
			}
			text := doc.Text() // empty for nil doc; phase 2 already flags that
			for _, m := range iface.Methods.List {
				for _, name := range m.Names {
					if !name.IsExported() {
						continue
					}
					if !strings.Contains(text, name.Name+"(") {
						pass.Reportf(name.Pos(), "interface doc drift: %s documents no method %s; embed the full method list in the doc comment", s.Name.Name, name.Name)
					}
				}
			}
		}
	}
}
