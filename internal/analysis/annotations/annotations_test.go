package annotations

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseDirectives(t *testing.T) {
	const src = `package x

// doSomething frobs.
//
// lmfao:requires writerMu
// lmfao:acquires closeMu.R
//lmfao:retains-pin
func doSomething() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	doc := f.Decls[0].(*ast.FuncDecl).Doc

	ds := Parse(doc)
	if len(ds) != 3 {
		t.Fatalf("Parse returned %d directives, want 3: %+v", len(ds), ds)
	}
	if ds[0].Name != Requires || ds[0].Args != "writerMu" {
		t.Errorf("directive 0 = %+v, want requires writerMu", ds[0])
	}
	if ds[1].Name != Acquires || ds[1].Args != "closeMu.R" {
		t.Errorf("directive 1 = %+v, want acquires closeMu.R", ds[1])
	}
	if ds[2].Name != RetainsPin || ds[2].Args != "" {
		t.Errorf("directive 2 = %+v, want retains-pin (pragma style)", ds[2])
	}

	if !Has(doc, Requires) || Has(doc, PrePublish) {
		t.Errorf("Has: requires=%v pre-publish=%v, want true/false", Has(doc, Requires), Has(doc, PrePublish))
	}
	if arg, ok := Arg(doc, Acquires); !ok || arg != "closeMu.R" {
		t.Errorf("Arg(acquires) = %q, %v; want closeMu.R, true", arg, ok)
	}
}

func TestParseRejectsNonDirectives(t *testing.T) {
	const src = `package x

/* lmfao:requires writerMu */
// the word lmfao: mid-sentence is prose, not a directive prefix match
// almost-lmfao:requires writerMu
func f() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if ds := Parse(f.Decls[0].(*ast.FuncDecl).Doc); len(ds) != 0 {
		t.Fatalf("Parse accepted %d bogus directives: %+v", len(ds), ds)
	}
}

func TestIgnoredLines(t *testing.T) {
	const src = `package x

func f() {
	a := 1 //lmfao:ignore pinpair atomicfield — reason words here
	_ = a
	// lmfao:ignore senterr
	b := 2
	_ = b
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ig := IgnoredLines(fset, f)
	if !ig[4]["pinpair"] || !ig[4]["atomicfield"] {
		t.Errorf("line 4 ignores = %v, want pinpair and atomicfield", ig[4])
	}
	if ig[4]["reason"] || ig[4]["—"] {
		t.Errorf("line 4 parsed prose after the reason separator as analyzer names: %v", ig[4])
	}
	if !ig[6]["senterr"] {
		t.Errorf("line 6 ignores = %v, want senterr", ig[6])
	}
	if len(ig[5]) != 0 {
		t.Errorf("line 5 unexpectedly ignores %v", ig[5])
	}
}
