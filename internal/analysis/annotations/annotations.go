// Package annotations defines the "lmfao:" comment directives through which
// the engine's source code declares the invariants that cmd/lmfao-vet
// machine-checks (see internal/analysis). A directive is one comment line of
// the form
//
//	// lmfao:<name> [args...]
//
// inside the doc comment of the declaration it governs (the space after //
// is optional: both "// lmfao:x" and the pragma-style "//lmfao:x" parse).
// Builders of new subsystems annotate their contracts instead of re-proving
// them with randomized oracles; the analyzer suite turns every annotation
// into a vet-time check.
//
// # Grammar
//
// On a type declaration:
//
//	// lmfao:immutable-after-publish
//	    The type's values are frozen once they become reachable from a
//	    published snapshot. The publishedmut analyzer flags every field
//	    write through the type unless the writing function is annotated
//	    lmfao:pre-publish (the builder/writer side).
//
// On a function or method declaration:
//
//	// lmfao:pre-publish
//	    The function runs on the writer side, before publication: it may
//	    mutate values of immutable-after-publish types it is constructing
//	    or maintaining. Exempts the function from publishedmut.
//
//	// lmfao:requires <mutexField>
//	    Callers must hold recv.<mutexField> (e.g. "writerMu"). The
//	    lockheld analyzer flags call sites that are not lexically
//	    dominated by a Lock/RLock of that mutex on the same receiver and
//	    whose enclosing function is not itself annotated with the same
//	    requirement.
//
//	// lmfao:acquires <mutexField>[.R]
//	    The function's body must acquire the named mutex itself —
//	    <mutexField>.Lock() (or .RLock() with the .R suffix) must appear
//	    in the body, paired with a matching Unlock/RUnlock. Encodes
//	    "this entry point is the lock's owner": deleting the lock
//	    acquisition without deleting the contract fails vet (the PR 8
//	    Run-vs-Close regression guard).
//
//	// lmfao:retains-pin
//	    The function calls PinDeltaLog and intentionally keeps the pin
//	    beyond its own return (ownership passes to a longer-lived
//	    protocol, e.g. a checkpoint cycle that re-pins). Exempts the
//	    function from pinpair's unpin-on-all-paths rule.
//
// On any source line (trailing or leading comment):
//
//	//lmfao:ignore <analyzer> [<analyzer>...] [— reason]
//	    Suppresses the named analyzers' diagnostics for that line. Use
//	    sparingly and give a reason; an ignore without one reads as a
//	    suppressed bug.
package annotations

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive names understood by the analyzer suite.
const (
	ImmutableAfterPublish = "immutable-after-publish"
	PrePublish            = "pre-publish"
	Requires              = "requires"
	Acquires              = "acquires"
	RetainsPin            = "retains-pin"
	Ignore                = "ignore"
)

// prefix is what every directive line starts with after comment markers.
const prefix = "lmfao:"

// Directive is one parsed "lmfao:" comment line.
type Directive struct {
	// Name is the directive keyword after "lmfao:" (e.g. "requires").
	Name string
	// Args is the remainder of the line after the name, space-trimmed.
	Args string
	// Pos locates the directive's comment line.
	Pos token.Pos
}

// parseLine parses one comment's text into a directive, or ok=false.
func parseLine(c *ast.Comment) (Directive, bool) {
	text := c.Text
	switch {
	case strings.HasPrefix(text, "//"):
		text = text[2:]
	case strings.HasPrefix(text, "/*"):
		// Block comments never carry directives.
		return Directive{}, false
	}
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, prefix) {
		return Directive{}, false
	}
	rest := text[len(prefix):]
	name := rest
	args := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, args = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Args: args, Pos: c.Pos()}, true
}

// Parse returns every directive in a doc comment group (nil-safe).
func Parse(doc *ast.CommentGroup) []Directive {
	if doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range doc.List {
		if d, ok := parseLine(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// Has reports whether the doc comment carries the named directive.
func Has(doc *ast.CommentGroup, name string) bool {
	_, ok := Arg(doc, name)
	return ok
}

// Arg returns the first occurrence's args of the named directive and
// whether it is present at all.
func Arg(doc *ast.CommentGroup, name string) (string, bool) {
	for _, d := range Parse(doc) {
		if d.Name == name {
			return d.Args, true
		}
	}
	return "", false
}

// IgnoredLines scans a parsed file's comments for "lmfao:ignore" directives
// and returns, per file line, the set of analyzer names suppressed on that
// line. The ignore applies to the line the comment sits on, so both
// trailing comments and dedicated comment lines work.
func IgnoredLines(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	var out map[int]map[string]bool
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parseLine(c)
			if !ok || d.Name != Ignore {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if out == nil {
				out = make(map[int]map[string]bool)
			}
			set := out[line]
			if set == nil {
				set = make(map[string]bool)
				out[line] = set
			}
			for _, name := range strings.Fields(d.Args) {
				// Stop at a reason separator: anything after "—" or "--"
				// is prose, not an analyzer name.
				if name == "—" || name == "--" || name == "-" {
					break
				}
				set[name] = true
			}
		}
	}
	return out
}
