// Package a exercises atomicfield's flagged cases: plain access to typed
// atomic fields and to old-style atomically-accessed fields.
package a

import (
	"sync/atomic"
)

type session struct {
	snap   atomic.Pointer[snapshot]
	closed atomic.Bool
	n      uint64 // old-style: accessed via atomic.AddUint64 below
}

type snapshot struct{ epoch uint64 }

func (s *session) publish(sn *snapshot) {
	s.snap.Store(sn) // method call: fine
	atomic.AddUint64(&s.n, 1)
}

func (s *session) read() *snapshot {
	return s.snap.Load() // method call: fine
}

func (s *session) badCopy() atomic.Bool {
	c := s.closed // want "field closed has atomic type atomic.Bool"
	return c
}

func (s *session) badReset() {
	s.snap = atomic.Pointer[snapshot]{} // want "field snap has atomic type"
}

func (s *session) badPlainRead() uint64 {
	return s.n // want "field n is accessed with sync/atomic elsewhere"
}

func (s *session) badPlainWrite() {
	s.n++ // want "field n is accessed with sync/atomic elsewhere"
}

func (s *session) okDelegate() *atomic.Bool {
	return &s.closed // address-taking: fine
}

func (s *session) okOldStyle() uint64 {
	return atomic.LoadUint64(&s.n) // atomic call argument: fine
}
