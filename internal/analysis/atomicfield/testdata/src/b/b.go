// Package b is atomicfield's clean case: typed atomic fields used only
// through their methods, old-style fields only through sync/atomic.
package b

import "sync/atomic"

type counter struct {
	hits  atomic.Int64
	total uint64
}

func (c *counter) hit() {
	c.hits.Add(1)
	atomic.AddUint64(&c.total, 1)
}

func (c *counter) snapshot() (int64, uint64) {
	return c.hits.Load(), atomic.LoadUint64(&c.total)
}

// plain is a plain field: unrestricted access stays unflagged.
type plain struct{ n int }

func (p *plain) bump() { p.n++ }
