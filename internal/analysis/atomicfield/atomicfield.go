// Package atomicfield checks that struct fields published through
// sync/atomic are never read or written plainly.
//
// The engine's snapshot publication protocol (Session.snap, ViewData's
// fullIdx, the durable session's wedge mirror) hinges on every cross-
// goroutine handoff going through an atomic operation: one plain load of a
// published pointer is a data race the randomized oracles only catch if a
// scheduler interleaving happens to trip it. The analyzer makes the
// protocol structural:
//
//   - A field whose type is one of sync/atomic's typed values (Bool,
//     Int32/64, Uint32/64, Uintptr, Pointer[T], Value) may only be used as
//     the receiver of a method call (Load/Store/Swap/...) or have its
//     address taken for delegation. Copying it, assigning to it or
//     comparing it bypasses the atomic protocol and is flagged.
//   - A field whose address is ever passed to a sync/atomic function
//     (atomic.LoadUint64(&s.n), ...) is an old-style atomic field: every
//     other access to it in the package must also be atomic; plain reads
//     and writes are flagged.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the atomicfield analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "forbid plain access to fields published through sync/atomic",
	Run:  run,
}

// atomicTypeNames are sync/atomic's typed atomic values.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

func run(pass *analysis.Pass) error {
	// Pass 1: find old-style atomic fields — fields whose address is an
	// argument to a sync/atomic function somewhere in this package.
	oldStyle := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if fld := addressedField(pass, arg); fld != nil {
					oldStyle[fld] = true
				}
			}
			return true
		})
	}

	// Pass 2: flag plain uses. For typed atomic fields every use except a
	// method call or address-taking is plain; for old-style fields every
	// use outside a sync/atomic call argument is plain.
	for _, f := range pass.Files {
		w := &fileWalker{pass: pass, oldStyle: oldStyle}
		w.walk(f)
	}
	return nil
}

// fileWalker walks one file keeping enough ancestry to classify each
// selector use of an atomic field.
type fileWalker struct {
	pass     *analysis.Pass
	oldStyle map[*types.Var]bool
	// stack holds the ancestors of the node being visited.
	stack []ast.Node
}

func (w *fileWalker) walk(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			w.stack = w.stack[:len(w.stack)-1]
			return true
		}
		w.stack = append(w.stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fld := w.fieldOf(sel)
		if fld == nil {
			return true
		}
		typed := isAtomicType(fld.Type())
		if !typed && !w.oldStyle[fld] {
			return true
		}
		if typed {
			if !w.typedUseOK() {
				w.pass.Reportf(sel.Pos(),
					"field %s has atomic type %s and must only be accessed through its methods (plain access bypasses the publication protocol)",
					fld.Name(), typeString(fld.Type()))
			}
			return true
		}
		if !w.oldStyleUseOK() {
			w.pass.Reportf(sel.Pos(),
				"field %s is accessed with sync/atomic elsewhere in this package; plain reads and writes race with those atomic accesses",
				fld.Name())
		}
		return true
	})
}

// fieldOf resolves a selector to the struct field it selects, or nil.
func (w *fileWalker) fieldOf(sel *ast.SelectorExpr) *types.Var {
	s, ok := w.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// parent returns the i-th ancestor of the current node (1 = immediate).
func (w *fileWalker) parent(i int) ast.Node {
	if len(w.stack) <= i {
		return nil
	}
	return w.stack[len(w.stack)-1-i]
}

// typedUseOK reports whether the current selector (a typed atomic field)
// is used legally: as the receiver of a method call or behind &.
func (w *fileWalker) typedUseOK() bool {
	switch p := w.parent(1).(type) {
	case *ast.SelectorExpr:
		// s.closed.Load(): the field selector is the X of a method
		// selector that must itself be called.
		if call, ok := w.parent(2).(*ast.CallExpr); ok && call.Fun == p {
			return true
		}
		return false
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}

// oldStyleUseOK reports whether the current selector (an old-style atomic
// field) is used as &field in a sync/atomic call argument.
func (w *fileWalker) oldStyleUseOK() bool {
	u, ok := w.parent(1).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return false
	}
	call, ok := w.parent(2).(*ast.CallExpr)
	return ok && isAtomicFuncCall(w.pass, call)
}

// addressedField returns the struct field behind an &x.f argument, or nil.
func addressedField(pass *analysis.Pass, arg ast.Expr) *types.Var {
	u, ok := arg.(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, ok := u.X.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// isAtomicFuncCall reports whether call invokes a function from
// sync/atomic (LoadUint64, StorePointer, AddInt64, ...).
func isAtomicFuncCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// isAtomicType reports whether t is one of sync/atomic's typed values.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		// Generic instances (atomic.Pointer[T]) are *types.Named too;
		// aliases resolve through Underlying only, so unalias first.
		if alias, okA := t.(*types.Alias); okA {
			return isAtomicType(types.Unalias(alias))
		}
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicTypeNames[obj.Name()]
}

func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
