package atomicfield_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/atomicfield"
)

func TestFlagged(t *testing.T) {
	analyzertest.Run(t, atomicfield.Analyzer, "testdata/src/a")
}

func TestClean(t *testing.T) {
	analyzertest.Run(t, atomicfield.Analyzer, "testdata/src/b")
}
