// Package publishedmut checks that values of types annotated
// lmfao:immutable-after-publish are never written through after
// construction.
//
// The engine's read path is lock-free: readers Load a snapshot pointer and
// walk the value without synchronization, which is only sound because the
// value is frozen before the pointer is published. A single in-place write
// after publication is a data race that the race detector catches only if
// a test happens to hit the interleaving; the annotation plus this
// analyzer make freezing a checked contract instead. Flagged writes are
// assignments, IncDec statements, and element writes (map/slice index)
// whose base resolves to a field of an annotated type. Construction code
// opts out by annotating the builder function lmfao:pre-publish.
//
// Annotated types are discovered from the doc comments of type
// declarations in the package under analysis, so the check is
// same-package: a cross-package mutation of an annotated type is not seen.
// The engine keeps builders in the defining package, which this analyzer
// in turn enforces de facto.
package publishedmut

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/annotations"
)

// Analyzer is the publishedmut analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "publishedmut",
	Doc:  "no writes through types annotated lmfao:immutable-after-publish",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	frozen := frozenTypes(pass)
	if len(frozen) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if annotations.Has(fd.Doc, annotations.PrePublish) {
				continue
			}
			checkFunc(pass, frozen, fd)
		}
	}
	return nil
}

// frozenTypes collects the type names in this package whose declarations
// carry the immutable-after-publish annotation.
func frozenTypes(pass *analysis.Pass) map[*types.TypeName]bool {
	frozen := map[*types.TypeName]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if !annotations.Has(doc, annotations.ImmutableAfterPublish) {
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					frozen[tn] = true
				}
			}
		}
	}
	return frozen
}

func checkFunc(pass *analysis.Pass, frozen map[*types.TypeName]bool, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkLValue(pass, frozen, lhs)
			}
		case *ast.IncDecStmt:
			checkLValue(pass, frozen, n.X)
		}
		return true
	})
}

// checkLValue unwraps an assignment target down its selector/index chain
// and reports if any link selects a field of a frozen type.
func checkLValue(pass *analysis.Pass, frozen map[*types.TypeName]bool, e ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if tn := frozenBase(pass, frozen, x.X); tn != nil {
				pass.Reportf(e.Pos(), "write to field %s of %s, which is annotated lmfao:immutable-after-publish; build the value fully before publishing (annotate constructors lmfao:pre-publish)", x.Sel.Name, tn.Name())
				return
			}
			e = x.X
		default:
			return
		}
	}
}

// frozenBase resolves e's type (through pointers) to an annotated type
// name, or nil.
func frozenBase(pass *analysis.Pass, frozen map[*types.TypeName]bool, e ast.Expr) *types.TypeName {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if frozen[named.Obj()] {
		return named.Obj()
	}
	return nil
}
