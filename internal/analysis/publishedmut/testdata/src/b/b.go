// Package b is publishedmut's clean cases: annotated builders, fresh-copy
// republish, reads, and unannotated types.
package b

// snapshot is the published read-side view.
//
// lmfao:immutable-after-publish
type snapshot struct {
	epoch uint64
	rows  map[string]int
}

// build constructs a snapshot before it is visible to any reader.
//
// lmfao:pre-publish
func build(epoch uint64) *snapshot {
	s := &snapshot{epoch: 0, rows: map[string]int{}}
	s.epoch = epoch
	s.rows["seed"] = 1
	return s
}

// republish derives a successor by copying, never mutating the original.
//
// lmfao:pre-publish
func republish(old *snapshot) *snapshot {
	next := &snapshot{epoch: old.epoch + 1, rows: map[string]int{}}
	for k, v := range old.rows {
		next.rows[k] = v
	}
	return next
}

func read(s *snapshot) uint64 {
	return s.epoch
}

// scratch is not annotated: writes are unrestricted.
type scratch struct{ n int }

func bump(sc *scratch) { sc.n++ }
