// Package a exercises publishedmut's flagged cases: post-construction
// writes through an annotated type.
package a

// snapshot is the published read-side view.
//
// lmfao:immutable-after-publish
type snapshot struct {
	epoch uint64
	rows  map[string]int
	names []string
}

func patchEpoch(s *snapshot) {
	s.epoch = 7 // want "write to field epoch of snapshot"
}

func bumpEpoch(s *snapshot) {
	s.epoch++ // want "write to field epoch of snapshot"
}

func patchRow(s *snapshot) {
	s.rows["k"] = 1 // want "write to field rows of snapshot"
}

func patchElem(s *snapshot) {
	s.names[0] = "x" // want "write to field names of snapshot"
}
