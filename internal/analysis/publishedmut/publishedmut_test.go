package publishedmut_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/publishedmut"
)

func TestFlagged(t *testing.T) {
	analyzertest.Run(t, publishedmut.Analyzer, "testdata/src/a")
}

func TestClean(t *testing.T) {
	analyzertest.Run(t, publishedmut.Analyzer, "testdata/src/b")
}
