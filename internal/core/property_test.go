package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/query"
)

// Property: planning is deterministic — building the same plan twice yields
// identical view structures, groups and statistics.
func TestPlanDeterminism(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		_, tree, attrs := chain(t, 4, 15, int64(300+trial))
		rng := rand.New(rand.NewSource(int64(trial)))
		var qs []*query.Query
		for qi := 0; qi < 1+rng.Intn(4); qi++ {
			var gb []data.AttrID
			for _, a := range attrs[1:] {
				if rng.Intn(2) == 0 {
					gb = append(gb, a)
				}
			}
			qs = append(qs, query.NewQuery(fmt.Sprintf("q%d", qi), gb,
				query.CountAgg(), query.SumProdAgg(attrs[1], attrs[3])))
		}
		p1, err := BuildPlan(tree, qs, PlanOptions{MultiRoot: true, MultiOutput: true})
		if err != nil {
			t.Fatal(err)
		}
		p2, err := BuildPlan(tree, qs, PlanOptions{MultiRoot: true, MultiOutput: true})
		if err != nil {
			t.Fatal(err)
		}
		if p1.Stats != p2.Stats {
			t.Fatalf("stats differ: %+v vs %+v", p1.Stats, p2.Stats)
		}
		if len(p1.Views) != len(p2.Views) {
			t.Fatalf("view counts differ")
		}
		for i := range p1.Views {
			a, b := p1.Views[i], p2.Views[i]
			if a.From != b.From || a.To != b.To || len(a.Aggs) != len(b.Aggs) ||
				groupBySig(a.GroupBy) != groupBySig(b.GroupBy) {
				t.Fatalf("view %d differs", i)
			}
			for j := range a.Aggs {
				if a.Aggs[j].Signature() != b.Aggs[j].Signature() {
					t.Fatalf("view %d agg %d differs", i, j)
				}
			}
		}
	}
}

// Property: every non-output view's group-by contains its edge's join
// attributes (the consumer key can never be empty on a connected tree), and
// carried attributes always belong to the originating query group-bys.
func TestViewGroupByInvariants(t *testing.T) {
	_, tree, attrs := chain(t, 5, 15, 23)
	qs := []*query.Query{
		query.NewQuery("span", []data.AttrID{attrs[1], attrs[5]}, query.CountAgg()),
		query.NewQuery("mid", []data.AttrID{attrs[3]}, query.CountAgg()),
		query.NewQuery("scalar", nil, query.CountAgg()),
	}
	p, err := BuildPlan(tree, qs, PlanOptions{MultiRoot: true, MultiOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	allGroupBys := map[data.AttrID]bool{}
	for _, q := range qs {
		for _, g := range q.GroupBy {
			allGroupBys[g] = true
		}
	}
	for _, v := range p.Views {
		if v.IsOutput() {
			continue
		}
		join := tree.PathAttrs(v.From, v.To)
		for _, a := range join {
			if !containsAttr(v.GroupBy, a) {
				t.Errorf("view %d missing join attribute %d", v.ID, a)
			}
		}
		// Every non-join group-by attribute must be a query group-by
		// (carried attribute).
		joinSet := map[data.AttrID]bool{}
		for _, a := range join {
			joinSet[a] = true
		}
		for _, g := range v.GroupBy {
			if !joinSet[g] && !allGroupBys[g] {
				t.Errorf("view %d carries non-query attribute %d", v.ID, g)
			}
		}
	}
}

// Property: merged views never contain two aggregates with the same
// structural signature.
func TestMergedAggregatesDistinct(t *testing.T) {
	_, tree, attrs := chain(t, 4, 15, 29)
	var qs []*query.Query
	// Deliberately redundant batch.
	for i := 0; i < 5; i++ {
		qs = append(qs, query.NewQuery(fmt.Sprintf("q%d", i),
			[]data.AttrID{attrs[2]}, query.CountAgg(), query.SumAgg(attrs[1])))
	}
	p, err := BuildPlan(tree, qs, PlanOptions{MultiRoot: true, MultiOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range p.Views {
		seen := map[string]bool{}
		for _, a := range v.Aggs {
			sig := a.Signature()
			if seen[sig] {
				t.Fatalf("view %d holds duplicate aggregate %q", v.ID, sig)
			}
			seen[sig] = true
		}
	}
	// Redundant queries add no views beyond the first query's.
	single, err := BuildPlan(tree, qs[:1], PlanOptions{MultiRoot: true, MultiOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.Views != single.Stats.Views {
		t.Fatalf("redundant queries grew views: %d vs %d", p.Stats.Views, single.Stats.Views)
	}
}
