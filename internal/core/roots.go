package core

import (
	"sort"

	"repro/internal/data"
	"repro/internal/jointree"
	"repro/internal/query"
)

// assignRoots picks a join-tree root node for every query in the batch using
// the paper's heuristic (§3.3): each query spreads a unit of weight over the
// relations containing its group-by attributes (or uniformly if it has none);
// relations are ranked by accumulated weight (ties: larger relation), and
// each query is assigned the best-ranked relation it considers a possible
// root. With multiRoot disabled, every query uses the single best-ranked
// relation (the one-pass bottom-up default, and the Figure 5 ablation).
func assignRoots(t *jointree.Tree, queries []*query.Query, multiRoot bool) []int {
	n := len(t.Nodes)
	weight := make([]float64, n)
	// frac[q][node] is the fraction of q's group-by attributes in the node.
	frac := make([][]float64, len(queries))
	for qi, q := range queries {
		frac[qi] = make([]float64, n)
		if len(q.GroupBy) == 0 {
			for i := range frac[qi] {
				frac[qi][i] = 1.0 / float64(n)
				weight[i] += frac[qi][i]
			}
			continue
		}
		for ni, node := range t.Nodes {
			c := 0
			for _, g := range q.GroupBy {
				if node.HasAttr(g) {
					c++
				}
			}
			f := float64(c) / float64(len(q.GroupBy))
			frac[qi][ni] = f
			weight[ni] += f
		}
	}

	// Rank nodes by (weight desc, relation size desc, id asc) for
	// determinism.
	rank := make([]int, n)
	for i := range rank {
		rank[i] = i
	}
	sort.SliceStable(rank, func(a, b int) bool {
		i, j := rank[a], rank[b]
		if weight[i] != weight[j] {
			return weight[i] > weight[j]
		}
		if t.Nodes[i].Rel.Len() != t.Nodes[j].Rel.Len() {
			return t.Nodes[i].Rel.Len() > t.Nodes[j].Rel.Len()
		}
		return i < j
	})

	roots := make([]int, len(queries))
	if !multiRoot {
		for qi := range roots {
			roots[qi] = rank[0]
		}
		return roots
	}
	for qi := range queries {
		roots[qi] = rank[0]
		for _, ni := range rank {
			if frac[qi][ni] > 0 {
				roots[qi] = ni
				break
			}
		}
	}
	return roots
}

// containsAttr reports whether sorted ids contains a.
func containsAttr(ids []data.AttrID, a data.AttrID) bool {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= a })
	return i < len(ids) && ids[i] == a
}
