package core

import (
	"fmt"
	"sort"
)

// Group is the engine's computational unit (paper §3.4–3.5): a set of views
// out of the same join-tree node with no dependencies among them, evaluated
// together by a single multi-output scan of the node's relation.
type Group struct {
	ID    int
	Node  int   // join-tree node whose relation the group scans
	Views []int // view IDs computed by this group
}

// groupViews clusters views into groups wave by wave: a view is ready once
// all of its input views belong to earlier waves; ready views out of the same
// node form one group. This realizes both grouping conditions of the paper
// ("no view in the group depends on another view" and "all views within the
// group go out of the same relation") and yields an acyclic group dependency
// graph by construction. With multiOutput disabled (the Figure 5 ablation),
// every view gets its own group — one relation scan per view.
func groupViews(views []*View, multiOutput bool) ([]*Group, [][]int, error) {
	done := make([]bool, len(views))
	groupOf := make([]int, len(views))
	var groups []*Group

	remaining := len(views)
	for remaining > 0 {
		var ready []int
		for _, v := range views {
			if done[v.ID] {
				continue
			}
			ok := true
			for _, in := range v.InputViews() {
				if !done[in] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, v.ID)
			}
		}
		if len(ready) == 0 {
			return nil, nil, fmt.Errorf("core: cyclic view dependencies among %d views", remaining)
		}
		sort.Ints(ready)
		if multiOutput {
			// Partition the wave by node.
			byNode := map[int][]int{}
			var nodes []int
			for _, id := range ready {
				n := views[id].From
				if _, seen := byNode[n]; !seen {
					nodes = append(nodes, n)
				}
				byNode[n] = append(byNode[n], id)
			}
			sort.Ints(nodes)
			for _, n := range nodes {
				g := &Group{ID: len(groups), Node: n, Views: byNode[n]}
				groups = append(groups, g)
				for _, id := range byNode[n] {
					groupOf[id] = g.ID
				}
			}
		} else {
			for _, id := range ready {
				g := &Group{ID: len(groups), Node: views[id].From, Views: []int{id}}
				groups = append(groups, g)
				groupOf[id] = g.ID
			}
		}
		for _, id := range ready {
			done[id] = true
			remaining--
		}
	}

	// Group dependency graph: deps[g] lists groups that must complete
	// before g runs (paper Figure 3 right).
	deps := make([][]int, len(groups))
	for _, g := range groups {
		set := map[int]struct{}{}
		for _, vid := range g.Views {
			for _, in := range views[vid].InputViews() {
				if groupOf[in] != g.ID {
					set[groupOf[in]] = struct{}{}
				}
			}
		}
		for d := range set {
			deps[g.ID] = append(deps[g.ID], d)
		}
		sort.Ints(deps[g.ID])
	}
	return groups, deps, nil
}
