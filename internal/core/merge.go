package core

import "fmt"

// mergeViews consolidates the raw directional views (paper §3.4, "Merge
// Views" layer). Views with the same edge, direction and group-by attributes
// merge into one view holding the union of their aggregates; structurally
// identical aggregates are kept once. In our representation this realizes all
// three merge cases of the paper at once:
//
//   - identical views for different aggregates collapse via aggregate
//     signature deduplication (case "same group-by, body and aggregates"),
//   - views with the same group-by and body but different aggregates
//     concatenate aggregate lists (case 2),
//   - views with the same group-by but different bodies become one view whose
//     aggregates reference different inputs — sound because all bodies are
//     joins of the same subtree, hence have identical group-by tuple sets
//     (case 1, the paper's W_T example).
//
// Raw views must be in topological order (inputs before consumers). Output
// views are rewritten in place to reference the merged views; they are not
// merged with each other (results are delivered per query) but are appended
// to the returned view list with fresh IDs.
func mergeViews(raw []*View, outputs []*View) []*View {
	type mergeTarget struct {
		view   *View
		sigIdx map[string]int
	}
	byKey := make(map[string]*mergeTarget)
	var merged []*View

	viewMap := make([]int, len(raw))  // raw ID → merged ID
	aggMap := make([][]int, len(raw)) // raw ID → agg index → merged agg index
	remap := func(pa ProdAgg) ProdAgg {
		ins := make([]InputRef, len(pa.Inputs))
		for i, in := range pa.Inputs {
			ins[i] = InputRef{View: viewMap[in.View], Agg: aggMap[in.View][in.Agg]}
		}
		return ProdAgg{Factors: pa.Factors, Inputs: ins}
	}

	for _, v := range raw {
		key := fmt.Sprintf("%d>%d|%s", v.From, v.To, groupBySig(v.GroupBy))
		tgt, ok := byKey[key]
		if !ok {
			nv := &View{
				ID:      len(merged),
				From:    v.From,
				To:      v.To,
				GroupBy: v.GroupBy,
				Query:   -1,
			}
			merged = append(merged, nv)
			tgt = &mergeTarget{view: nv, sigIdx: make(map[string]int)}
			byKey[key] = tgt
		}
		viewMap[v.ID] = tgt.view.ID
		aggMap[v.ID] = make([]int, len(v.Aggs))
		for ai, pa := range v.Aggs {
			aggMap[v.ID][ai] = addAgg(tgt.view, tgt.sigIdx, remap(pa))
		}
	}

	// Internal views expose one column per aggregate.
	for _, v := range merged {
		v.Cols = make([]OutputCol, len(v.Aggs))
		for i := range v.Aggs {
			v.Cols[i] = OutputCol{
				Name:  fmt.Sprintf("a%d", i),
				Aggs:  []int{i},
				Coefs: []float64{1},
			}
		}
	}

	// Rewrite outputs against merged IDs and append them.
	for _, out := range outputs {
		out.ID = len(merged)
		for ai := range out.Aggs {
			out.Aggs[ai] = remap(out.Aggs[ai])
		}
		merged = append(merged, out)
	}
	return merged
}
