package core

import (
	"fmt"
	"strings"

	"repro/internal/data"
	"repro/internal/monoid"
	"repro/internal/query"
)

// Generalized (monoid) aggregates compile to support views. A MIN, MAX,
// COUNT DISTINCT or top-k column over attribute x depends only on the
// SUPPORT of each group — the set of x values present among the group's
// joining tuples — because every shipped monoid instance is idempotent.
// The planner therefore rewrites each monoid aggregate into an internal
// support query
//
//	__support(GroupBy ∪ {x}; SUM 1)
//
// appended to the batch: a plain count query the whole existing stack
// (pushdown, view merging, hidden counts, semi-join-restricted delta
// maintenance, compiled kernels, sharded merging, WAL checkpoints)
// maintains with no new machinery. The evaluation layer (internal/moo)
// folds the monoid over each group's surviving support rows to assemble the
// user-visible columns; a delete that shrinks a group's support triggers a
// re-fold of exactly the affected groups.

// MonoidCol describes one generalized aggregate column group of a user
// query after planning: the resolved monoid instance plus the layout of its
// support view.
type MonoidCol struct {
	// Agg is the query-level aggregate this column group implements.
	Agg query.MonoidAgg
	// M is the resolved monoid instance.
	M monoid.Monoid
	// Support is the plan query index (>= Plan.UserQueries) of the support
	// query whose output view carries this column's per-(group, value)
	// counts.
	Support int
	// ValPos is the position of the folded attribute within the support
	// view's group-by key.
	ValPos int
	// KeyPos maps each position of the user query's output key to its
	// position within the support view's key (the group projection used
	// when scanning support rows).
	KeyPos []int
	// Width is the number of finalized output columns (M.Width()).
	Width int
}

// MonoidSpec is the per-user-query monoid plan: nil in Plan.Monoids for
// pure sum-product queries.
type MonoidSpec struct {
	// SumCols is the number of user-visible sum-aggregate columns preceding
	// the monoid columns (0 when Placeholder).
	SumCols int
	// Placeholder reports that the user query had no sum aggregates, so the
	// planner injected a hidden SUM 1 placeholder: a query must own at
	// least one semiring aggregate for its output view (and hidden count)
	// to exist. The placeholder column is dropped from the assembled
	// user-visible view.
	Placeholder bool
	// Cols lists the monoid column groups in declaration order; their
	// finalized columns follow the SumCols sum columns.
	Cols []MonoidCol
}

// expandMonoids rewrites a user batch for planning: queries with monoid
// aggregates are cloned (gaining a placeholder count aggregate when they
// have no sum aggregates), and one deduplicated support query per distinct
// (group-by set, attribute) pair is appended after all user queries.
// Support query names are deterministic, preserving the deterministic-plan
// contract WAL recovery relies on (see moo.Engine.PlanBatch).
func expandMonoids(queries []*query.Query) ([]*query.Query, []*MonoidSpec, error) {
	user := len(queries)
	out := make([]*query.Query, 0, user)
	specs := make([]*MonoidSpec, user)
	type skey struct {
		gb   string
		attr data.AttrID
	}
	supportIdx := make(map[skey]int)
	var supports []*query.Query
	for qi, q := range queries {
		if len(q.MonoidAggs) == 0 {
			out = append(out, q)
			continue
		}
		clone := *q
		spec := &MonoidSpec{SumCols: len(q.Aggs)}
		if len(q.Aggs) == 0 {
			clone.Aggs = []query.Aggregate{query.CountAgg()}
			spec.Placeholder = true
			spec.SumCols = 0
		}
		outKeys := sortAttrs(append([]data.AttrID(nil), q.GroupBy...))
		for _, m := range q.MonoidAggs {
			inst, err := m.Instance()
			if err != nil {
				return nil, nil, fmt.Errorf("core: query %q: %w", q.Name, err)
			}
			sq := query.NewQuery("", append(append([]data.AttrID(nil), q.GroupBy...), m.Attr), query.CountAgg())
			key := skey{gb: attrsKey(sq.GroupBy), attr: m.Attr}
			si, ok := supportIdx[key]
			if !ok {
				si = user + len(supports)
				sq.Name = supportName(sq.GroupBy, m.Attr)
				supports = append(supports, sq)
				supportIdx[key] = si
			}
			col := MonoidCol{
				Agg:     m,
				M:       inst,
				Support: si,
				ValPos:  attrPos(sq.GroupBy, m.Attr),
				KeyPos:  make([]int, len(outKeys)),
				Width:   m.Width(),
			}
			for i, a := range outKeys {
				col.KeyPos[i] = attrPos(sq.GroupBy, a)
			}
			spec.Cols = append(spec.Cols, col)
		}
		out = append(out, &clone)
		specs[qi] = spec
	}
	return append(out, supports...), specs, nil
}

func attrsKey(attrs []data.AttrID) string {
	var b strings.Builder
	for _, a := range attrs {
		fmt.Fprintf(&b, "%d,", a)
	}
	return b.String()
}

func supportName(groupBy []data.AttrID, attr data.AttrID) string {
	parts := make([]string, len(groupBy))
	for i, a := range groupBy {
		parts[i] = fmt.Sprint(a)
	}
	return fmt.Sprintf("__support_g%s_x%d", strings.Join(parts, "_"), attr)
}

func attrPos(attrs []data.AttrID, a data.AttrID) int {
	for i, x := range attrs {
		if x == a {
			return i
		}
	}
	return -1
}

// VisibleCols is the number of user-visible output columns of query qi:
// its sum-aggregate columns followed by its monoid columns' widths. For
// internal support queries it is the support view's single count column.
func (p *Plan) VisibleCols(qi int) int {
	if qi < 0 || qi >= len(p.Queries) {
		return 0
	}
	spec := p.Monoids[qi]
	if spec == nil {
		return len(p.Queries[qi].Aggs)
	}
	n := spec.SumCols
	for _, c := range spec.Cols {
		n += c.Width
	}
	return n
}

// HasMonoids reports whether any user query carries monoid aggregates (and
// hence whether the plan has support queries and needs result assembly).
func (p *Plan) HasMonoids() bool {
	for _, spec := range p.Monoids {
		if spec != nil {
			return true
		}
	}
	return false
}
