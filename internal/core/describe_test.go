package core

import (
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/query"
)

func TestDescribe(t *testing.T) {
	_, tree, attrs := chain(t, 4, 10, 21)
	qs := []*query.Query{
		query.NewQuery("per_x2", []data.AttrID{attrs[2]}, query.CountAgg()),
		query.NewQuery("total", nil, query.CountAgg()),
	}
	p, err := BuildPlan(tree, qs, PlanOptions{MultiRoot: true, MultiOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	out := p.Describe()
	for _, want := range []string{
		"batch: 2 queries",
		"roots:",
		"per_x2",
		"group-by (x2)",
		"directional views:",
		"groups (dependency order):",
		"Q[per_x2]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q in:\n%s", want, out)
		}
	}
	// Dependency annotations appear for non-leaf groups.
	if !strings.Contains(out, "after {") {
		t.Errorf("no group dependencies rendered:\n%s", out)
	}
}
