package core

import (
	"sort"

	"repro/internal/data"
	"repro/internal/jointree"
)

// Per-view provenance and the optional per-view tuple-count aggregate. Both
// exist for incremental view maintenance (internal/ivm): provenance tells the
// maintenance layer which base relations feed a view through the join tree
// (hence which views are dirtied by a delta), and the count column tells it
// when a group-by key's underlying join tuples have all been deleted, so the
// row can be dropped exactly (counts are integer-valued, so a float64
// comparison against zero is exact).

// CountColName names the hidden tuple-count column appended to output views
// when PlanOptions.TrackCounts is set. Applications should ignore it.
const CountColName = "__ivm_count"

// computeProvenance returns, per view, the sorted join-tree node IDs whose
// base relations feed the view: the component of View.From when the edge
// (From, To) is cut, or every node for output views.
func computeProvenance(t *jointree.Tree, views []*View) [][]int {
	memo := make(map[[2]int][]int)
	component := func(from, to int) []int {
		key := [2]int{from, to}
		if got, ok := memo[key]; ok {
			return got
		}
		var out []int
		var dfs func(u, block int)
		dfs = func(u, block int) {
			out = append(out, u)
			for _, v := range t.Adj[u] {
				if v != block {
					dfs(v, u)
				}
			}
		}
		dfs(from, to)
		sort.Ints(out)
		memo[key] = out
		return out
	}
	all := make([]int, len(t.Nodes))
	for i := range all {
		all[i] = i
	}
	prov := make([][]int, len(views))
	for i, v := range views {
		if v.IsOutput() {
			prov[i] = all
		} else {
			prov[i] = component(v.From, v.To)
		}
	}
	return prov
}

// computeConsumerKeys returns, per internal view, the group-by attributes
// that also appear in the consuming node's schema (ascending; View.GroupBy is
// already sorted). This is the consumer key the executor binds the view on,
// and the attribute list a semi-join-restricted maintenance scan indexes the
// consumer's base relation by. Output views have no consumer, hence nil.
func computeConsumerKeys(t *jointree.Tree, views []*View) [][]data.AttrID {
	out := make([][]data.AttrID, len(views))
	for i, v := range views {
		if v.IsOutput() {
			continue
		}
		node := t.Nodes[v.To]
		for _, g := range v.GroupBy {
			if node.HasAttr(g) {
				out[i] = append(out[i], g)
			}
		}
	}
	return out
}

// FeedsView reports whether node is in view v's provenance.
func (p *Plan) FeedsView(v, node int) bool {
	prov := p.Provenance[v]
	i := sort.SearchInts(prov, node)
	return i < len(prov) && prov[i] == node
}

// addCountAggs appends a pure tuple-count aggregate to every view, in
// topological (ID) order so child counts exist before their consumers, and
// returns the per-view column index holding the count. The count ProdAgg
// mirrors the pushdown invariant that every product has exactly one input
// per child edge: it references the count aggregate of one representative
// input view per edge (any is sound — summing a carried view's counts over
// its extra group-by attributes yields the same subtree tuple count).
func addCountAggs(t *jointree.Tree, views []*View) []int {
	countAgg := make([]int, len(views)) // per view: ProdAgg index of the count
	countCol := make([]int, len(views))
	for _, v := range views {
		node := t.Nodes[v.From]
		// One representative input per child edge, preferring views whose
		// group-by stays within the node schema (scalar lookups in the
		// executor) over carried ones; ties by smallest ID.
		repByEdge := map[int]int{} // child node → view ID
		flat := func(w *View) bool {
			for _, g := range w.GroupBy {
				if !node.HasAttr(g) {
					return false
				}
			}
			return true
		}
		for _, in := range v.InputViews() {
			w := views[in]
			cur, ok := repByEdge[w.From]
			if !ok {
				repByEdge[w.From] = in
				continue
			}
			curW := views[cur]
			if flat(w) != flat(curW) {
				if flat(w) {
					repByEdge[w.From] = in
				}
				continue
			}
			if in < cur {
				repByEdge[w.From] = in
			}
		}
		var edges []int
		for c := range repByEdge {
			edges = append(edges, c)
		}
		sort.Ints(edges)
		pa := ProdAgg{}
		for _, c := range edges {
			in := repByEdge[c]
			pa.Inputs = append(pa.Inputs, InputRef{View: in, Agg: countAgg[in]})
		}

		sigIdx := make(map[string]int, len(v.Aggs))
		for i, a := range v.Aggs {
			if _, dup := sigIdx[a.Signature()]; !dup {
				sigIdx[a.Signature()] = i
			}
		}
		before := len(v.Aggs)
		idx := addAgg(v, sigIdx, pa)
		countAgg[v.ID] = idx
		if v.IsOutput() {
			v.Cols = append(v.Cols, OutputCol{Name: CountColName, Aggs: []int{idx}, Coefs: []float64{1}})
			countCol[v.ID] = len(v.Cols) - 1
		} else {
			// Internal views expose one column per aggregate; keep parallel.
			if idx == before {
				v.Cols = append(v.Cols, OutputCol{Name: CountColName, Aggs: []int{idx}, Coefs: []float64{1}})
			}
			countCol[v.ID] = idx
		}
	}
	return countCol
}
