package core

import (
	"fmt"
	"sort"
	"strings"
)

// Describe renders the optimized plan in the style of the paper's Figure 3:
// the query roots, the directional views along each join-tree edge with
// their aggregate counts, the view groups, and the group dependency graph.
// It is the engine's EXPLAIN output.
func (p *Plan) Describe() string {
	db := p.Tree.DB
	var b strings.Builder

	fmt.Fprintf(&b, "batch: %d queries, %d application aggregates (+%d intermediates)\n",
		len(p.Queries), p.Stats.AppAggregates, p.Stats.IntermediateAggs)
	fmt.Fprintf(&b, "views: %d directional (from %d per-aggregate-per-edge), %d groups\n",
		p.Stats.Views, p.Stats.RawViews, p.Stats.Groups)

	b.WriteString("\nroots:\n")
	for qi, q := range p.Queries {
		fmt.Fprintf(&b, "  %-24s → %s", q.Name, p.Tree.Nodes[p.Roots[qi]].Rel.Name)
		if len(q.GroupBy) > 0 {
			fmt.Fprintf(&b, "  group-by (%s)", strings.Join(db.AttrNames(q.GroupBy), ", "))
		}
		b.WriteString("\n")
	}

	b.WriteString("\ndirectional views:\n")
	type edgeKey struct{ from, to int }
	byEdge := map[edgeKey][]*View{}
	var edges []edgeKey
	for _, v := range p.Views {
		if v.IsOutput() {
			continue
		}
		k := edgeKey{v.From, v.To}
		if _, ok := byEdge[k]; !ok {
			edges = append(edges, k)
		}
		byEdge[k] = append(byEdge[k], v)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		views := byEdge[e]
		aggs := 0
		for _, v := range views {
			aggs += len(v.Aggs)
		}
		fmt.Fprintf(&b, "  %s → %s: %d view(s), %d aggregates\n",
			p.Tree.Nodes[e.from].Rel.Name, p.Tree.Nodes[e.to].Rel.Name, len(views), aggs)
		for _, v := range views {
			fmt.Fprintf(&b, "    V%d(%s; %d aggs)\n",
				v.ID, strings.Join(db.AttrNames(v.GroupBy), ","), len(v.Aggs))
		}
	}

	b.WriteString("\ngroups (dependency order):\n")
	for _, g := range p.Groups {
		var members []string
		for _, vid := range g.Views {
			v := p.Views[vid]
			if v.IsOutput() {
				members = append(members, fmt.Sprintf("Q[%s]", p.Queries[v.Query].Name))
			} else {
				members = append(members, fmt.Sprintf("V%d", v.ID))
			}
		}
		fmt.Fprintf(&b, "  group %d @ %-16s {%s}", g.ID,
			p.Tree.Nodes[g.Node].Rel.Name, strings.Join(members, ", "))
		if len(p.GroupDeps[g.ID]) > 0 {
			deps := make([]string, len(p.GroupDeps[g.ID]))
			for i, d := range p.GroupDeps[g.ID] {
				deps[i] = fmt.Sprint(d)
			}
			fmt.Fprintf(&b, "  after {%s}", strings.Join(deps, ","))
		}
		b.WriteString("\n")
	}
	return b.String()
}
