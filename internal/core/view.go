// Package core implements the logical optimization layers of LMFAO
// (paper Figure 1): Find Roots, Aggregate Pushdown into directional views,
// Merge Views, and Group Views with their dependency graph. The output is a
// Plan consumed by the multi-output executor (internal/moo).
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/data"
	"repro/internal/query"
)

// InputRef references one aggregate (column) of an incoming view.
type InputRef struct {
	View int // view ID
	Agg  int // product-aggregate index within that view
}

// ProdAgg is a single product aggregate inside a directional view:
// Π local factors × Π referenced child-view aggregates. Aggregate pushdown
// decomposes every term of every application aggregate into a chain of
// ProdAggs along the join tree. Coefficients stay at the output layer so that
// structurally identical products from different terms share one ProdAgg.
type ProdAgg struct {
	Factors []query.Factor // factors over attributes of the view's node
	Inputs  []InputRef     // at most one per child edge
}

// Signature returns a structural identity used for aggregate deduplication
// (paper merge case: "identical views constructed for different aggregates").
// It is only meaningful after the referenced views have canonical IDs.
func (p ProdAgg) Signature() string {
	fs := make([]string, 0, len(p.Factors)+len(p.Inputs))
	for _, f := range p.Factors {
		fs = append(fs, f.Signature())
	}
	for _, in := range p.Inputs {
		fs = append(fs, fmt.Sprintf("v%d.%d", in.View, in.Agg))
	}
	sort.Strings(fs)
	return strings.Join(fs, "*")
}

// OutputCol describes one application-level aggregate column of an output
// view: the sum of its terms' ProdAggs weighted by the term coefficients.
type OutputCol struct {
	Name  string
	Aggs  []int // ProdAgg indices within the view
	Coefs []float64
}

// View is a directional view (paper §3.2) or, when To == QueryTarget, the
// output of an application query computed at its root node.
type View struct {
	ID      int
	From    int // join-tree node the view is computed at
	To      int // neighboring node it flows to, or QueryTarget
	GroupBy []data.AttrID
	Aggs    []ProdAgg
	Cols    []OutputCol // column map; for internal views, one col per agg

	// Query is the batch index of the originating query for output views
	// (To == QueryTarget); -1 otherwise.
	Query int
}

// QueryTarget marks output views: they flow to the application, not along an
// edge.
const QueryTarget = -1

// IsOutput reports whether the view is an application query output.
func (v *View) IsOutput() bool { return v.To == QueryTarget }

// NumCols returns the number of result columns of the view.
func (v *View) NumCols() int { return len(v.Cols) }

// InputViews returns the sorted set of distinct view IDs referenced by the
// view's aggregates.
func (v *View) InputViews() []int {
	set := map[int]struct{}{}
	for _, a := range v.Aggs {
		for _, in := range a.Inputs {
			set[in.View] = struct{}{}
		}
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// groupBySig returns a canonical string for the group-by attribute set.
func groupBySig(gb []data.AttrID) string {
	parts := make([]string, len(gb))
	for i, a := range gb {
		parts[i] = fmt.Sprint(a)
	}
	return strings.Join(parts, ",")
}

// sortAttrs sorts and deduplicates attribute IDs in place, returning the
// result.
func sortAttrs(ids []data.AttrID) []data.AttrID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}
