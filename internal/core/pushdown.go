package core

import (
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/jointree"
	"repro/internal/query"
)

// pushdown decomposes every query into directional views along the join tree
// toward its assigned root (paper §3.2, "Aggregate Pushdown" layer). For each
// term (a product of unary factors), factors over attributes inside a child
// subtree are pushed into the view flowing out of that child; group-by
// attributes inside the subtree are carried as extra group-by attributes of
// the child view; every child edge contributes a (possibly pure count)
// aggregate because tuple multiplicities multiply across the join.
//
// The returned views are in topological order (inputs before consumers);
// outputs[i] is the raw output view of queries[i].
func pushdown(t *jointree.Tree, queries []*query.Query, roots []int) (views, outputs []*View, rawCount int, err error) {
	b := &pushdownBuilder{
		t:        t,
		edgeView: make(map[edgeKey]int),
		adj:      sortedAdj(t),
	}
	for qi, q := range queries {
		out := &View{
			From:    roots[qi],
			To:      QueryTarget,
			GroupBy: sortAttrs(append([]data.AttrID(nil), q.GroupBy...)),
			Query:   qi,
		}
		sigIdx := make(map[string]int)
		for _, agg := range q.Aggs {
			col := OutputCol{Name: agg.Name}
			for _, term := range agg.Terms {
				pa, err := b.buildTerm(qi, roots[qi], -1, out.GroupBy, term.Factors)
				if err != nil {
					return nil, nil, 0, fmt.Errorf("query %q, aggregate %q: %w", q.Name, agg.Name, err)
				}
				idx := addAgg(out, sigIdx, pa)
				col.Aggs = append(col.Aggs, idx)
				col.Coefs = append(col.Coefs, term.Coef)
			}
			out.Cols = append(out.Cols, col)
		}
		outputs = append(outputs, out)
		// Paper accounting: one view per aggregate per edge (e.g. "814
		// aggregates × 4 edges = 3,256 views" before consolidation).
		rawCount += len(q.Aggs) * (len(t.Nodes) - 1)
	}
	return b.views, outputs, rawCount, nil
}

type edgeKey struct {
	query    int
	from, to int
}

type pushdownBuilder struct {
	t        *jointree.Tree
	adj      [][]int
	views    []*View
	edgeView map[edgeKey]int
	sigIdx   []map[string]int // per raw view: ProdAgg signature → index
}

// buildTerm constructs the ProdAgg computing Π factors restricted to the
// subtree rooted at node (with the edge to parent removed), grouped by fsub.
// It recursively creates the child views the product depends on.
func (b *pushdownBuilder) buildTerm(qi, node, parent int, fsub []data.AttrID, factors []query.Factor) (ProdAgg, error) {
	n := b.t.Nodes[node]
	var local, rest []query.Factor
	for _, f := range factors {
		if !f.HasAttr() || n.HasAttr(f.Attr) {
			local = append(local, f)
		} else {
			rest = append(rest, f)
		}
	}
	pa := ProdAgg{Factors: local}
	for _, c := range b.adj[node] {
		if c == parent {
			continue
		}
		below := b.t.AttrsBelow(c, node)

		// Factors whose attribute lives (exclusively) in this subtree.
		var sub []query.Factor
		var keep []query.Factor
		for _, f := range rest {
			if containsAttr(below, f.Attr) {
				sub = append(sub, f)
			} else {
				keep = append(keep, f)
			}
		}
		rest = keep

		// F_c = (F ∩ (ω_subtree \ ω_node)) ∪ (ω_node ∩ ω_child): carried
		// group-by attributes plus the join key with the child.
		var fc []data.AttrID
		for _, g := range fsub {
			if containsAttr(below, g) && !n.HasAttr(g) {
				fc = append(fc, g)
			}
		}
		for _, a := range b.t.PathAttrs(node, c) {
			fc = append(fc, a)
		}
		fc = sortAttrs(fc)

		childAgg, err := b.buildTerm(qi, c, node, fc, sub)
		if err != nil {
			return ProdAgg{}, err
		}
		vid := b.getView(qi, c, node, fc)
		aggIdx := addAgg(b.views[vid], b.sigIdx[vid], childAgg)
		pa.Inputs = append(pa.Inputs, InputRef{View: vid, Agg: aggIdx})
	}
	if len(rest) > 0 {
		return ProdAgg{}, fmt.Errorf("core: factor over attribute %d not reachable from node %d",
			rest[0].Attr, node)
	}
	return pa, nil
}

// getView returns the raw directional view for (query, from→to), creating it
// on first use. Creation happens after the child's subtree recursion, so raw
// view IDs are a topological order (inputs have smaller IDs).
func (b *pushdownBuilder) getView(qi, from, to int, groupBy []data.AttrID) int {
	k := edgeKey{qi, from, to}
	if id, ok := b.edgeView[k]; ok {
		return id
	}
	id := len(b.views)
	b.views = append(b.views, &View{
		ID:      id,
		From:    from,
		To:      to,
		GroupBy: groupBy,
		Query:   -1,
	})
	b.sigIdx = append(b.sigIdx, make(map[string]int))
	b.edgeView[k] = id
	return id
}

// addAgg registers pa in v, deduplicating by structural signature, and
// returns its index.
func addAgg(v *View, sigIdx map[string]int, pa ProdAgg) int {
	sig := pa.Signature()
	if i, ok := sigIdx[sig]; ok {
		return i
	}
	i := len(v.Aggs)
	v.Aggs = append(v.Aggs, pa)
	sigIdx[sig] = i
	return i
}

// sortedAdj returns adjacency lists with deterministic neighbor order.
func sortedAdj(t *jointree.Tree) [][]int {
	adj := make([][]int, len(t.Adj))
	for i, ns := range t.Adj {
		adj[i] = append([]int(nil), ns...)
		sort.Ints(adj[i])
	}
	return adj
}
