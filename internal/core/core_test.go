package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/jointree"
	"repro/internal/query"
)

// chain builds the paper's Example 3.3 schema: S1(x1,x2), ..., S{n-1}(x{n-1},xn).
func chain(t *testing.T, n, rows int, seed int64) (*data.Database, *jointree.Tree, []data.AttrID) {
	t.Helper()
	db := data.NewDatabase()
	attrs := make([]data.AttrID, n+1)
	for i := 1; i <= n; i++ {
		attrs[i] = db.Attr(fmt.Sprintf("x%d", i), data.Key)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 1; i < n; i++ {
		a := make([]int64, rows)
		b := make([]int64, rows)
		for r := 0; r < rows; r++ {
			a[r] = int64(rng.Intn(3))
			b[r] = int64(rng.Intn(3))
		}
		rel := data.NewRelation(fmt.Sprintf("S%d", i),
			[]data.AttrID{attrs[i], attrs[i+1]},
			[]data.Column{data.NewIntColumn(a), data.NewIntColumn(b)})
		if err := db.AddRelation(rel); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := jointree.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, tree, attrs
}

func countQueries(attrs []data.AttrID, n int) []*query.Query {
	var qs []*query.Query
	for i := 1; i <= n; i++ {
		qs = append(qs, query.NewQuery(fmt.Sprintf("Q%d", i),
			[]data.AttrID{attrs[i]}, query.CountAgg()))
	}
	return qs
}

func TestAssignRootsMultiRoot(t *testing.T) {
	_, tree, attrs := chain(t, 4, 10, 1)
	qs := countQueries(attrs, 4)
	roots := assignRoots(tree, qs, true)
	// Each query's root must contain its group-by attribute.
	for qi, q := range qs {
		if !tree.Nodes[roots[qi]].HasAttr(q.GroupBy[0]) {
			t.Errorf("query %d root %d lacks its group-by attribute", qi, roots[qi])
		}
	}
}

func TestAssignRootsSingleRoot(t *testing.T) {
	_, tree, attrs := chain(t, 4, 10, 1)
	qs := countQueries(attrs, 4)
	roots := assignRoots(tree, qs, false)
	for _, r := range roots[1:] {
		if r != roots[0] {
			t.Fatalf("single-root mode produced distinct roots %v", roots)
		}
	}
}

func TestAssignRootsNoGroupBy(t *testing.T) {
	_, tree, _ := chain(t, 4, 10, 1)
	qs := []*query.Query{query.NewQuery("q", nil, query.CountAgg())}
	roots := assignRoots(tree, qs, true)
	if roots[0] < 0 || roots[0] >= len(tree.Nodes) {
		t.Fatalf("root out of range: %d", roots[0])
	}
}

func TestBuildPlanChainStructure(t *testing.T) {
	_, tree, attrs := chain(t, 4, 10, 2)
	qs := countQueries(attrs, 4)
	p, err := BuildPlan(tree, qs, PlanOptions{MultiRoot: true, MultiOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.OutputView) != 4 {
		t.Fatalf("outputs = %d", len(p.OutputView))
	}
	for qi, vid := range p.OutputView {
		v := p.Views[vid]
		if !v.IsOutput() || v.Query != qi {
			t.Fatalf("output view %d malformed: %+v", vid, v)
		}
		if v.From != p.Roots[qi] {
			t.Fatalf("output view computed at %d, root is %d", v.From, p.Roots[qi])
		}
		if len(v.Cols) != 1 {
			t.Fatalf("output cols = %d", len(v.Cols))
		}
	}
	if p.Stats.AppAggregates != 4 {
		t.Fatalf("A = %d", p.Stats.AppAggregates)
	}
	if p.Stats.RawViews != 4*2 { // 4 queries × 2 edges
		t.Fatalf("raw views = %d", p.Stats.RawViews)
	}
	if p.Stats.Views <= 0 || p.Stats.Views > p.Stats.RawViews {
		t.Fatalf("merged views = %d (raw %d)", p.Stats.Views, p.Stats.RawViews)
	}
	if p.Stats.Groups != len(p.Groups) {
		t.Fatal("stats groups mismatch")
	}
}

func TestMultiRootSharesCountViews(t *testing.T) {
	// Example 3.3: with per-query roots, directional count views along the
	// chain are shared across queries, so the total view count must not
	// exceed 2 per edge (one per direction).
	_, tree, attrs := chain(t, 5, 10, 3)
	qs := countQueries(attrs, 5)
	p, err := BuildPlan(tree, qs, PlanOptions{MultiRoot: true, MultiOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	edges := len(tree.Nodes) - 1
	if p.Stats.Views > 2*edges {
		t.Fatalf("views = %d, want <= %d (2 per edge)", p.Stats.Views, 2*edges)
	}
}

func TestPushdownGroupByStructure(t *testing.T) {
	_, tree, attrs := chain(t, 4, 10, 4) // S1(x1,x2) S2(x2,x3) S3(x3,x4)
	// Q(x1, x4): group-by attributes at both ends forces carrying.
	q := query.NewQuery("span", []data.AttrID{attrs[1], attrs[4]}, query.CountAgg())
	p, err := BuildPlan(tree, []*query.Query{q}, PlanOptions{MultiRoot: true, MultiOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	root := p.Roots[0]
	rootNode := tree.Nodes[root]
	// Root must contain x1 or x4.
	if !rootNode.HasAttr(attrs[1]) && !rootNode.HasAttr(attrs[4]) {
		t.Fatalf("root %d contains neither group-by attribute", root)
	}
	// Some internal view must carry the far group-by attribute: its
	// group-by contains an attribute that is not a join attribute of its
	// edge.
	carried := false
	for _, v := range p.Views {
		if v.IsOutput() {
			continue
		}
		join := map[data.AttrID]bool{}
		for _, a := range tree.PathAttrs(v.From, v.To) {
			join[a] = true
		}
		for _, g := range v.GroupBy {
			if !join[g] {
				carried = true
			}
		}
	}
	if !carried {
		t.Fatal("no view carries the non-local group-by attribute")
	}
}

func TestGroupDependenciesAcyclic(t *testing.T) {
	_, tree, attrs := chain(t, 5, 10, 5)
	qs := countQueries(attrs, 5)
	for _, multiOutput := range []bool{true, false} {
		p, err := BuildPlan(tree, qs, PlanOptions{MultiRoot: true, MultiOutput: multiOutput})
		if err != nil {
			t.Fatal(err)
		}
		// Dependencies must reference earlier groups only (waves give a
		// topological numbering).
		for g, deps := range p.GroupDeps {
			for _, d := range deps {
				if d >= g {
					t.Fatalf("multiOutput=%v: group %d depends on later group %d", multiOutput, g, d)
				}
			}
		}
		// Every view appears in exactly one group.
		seen := map[int]int{}
		for _, g := range p.Groups {
			for _, vid := range g.Views {
				seen[vid]++
				if p.Views[vid].From != g.Node {
					t.Fatalf("view %d at node %d grouped under node %d",
						vid, p.Views[vid].From, g.Node)
				}
			}
		}
		for _, v := range p.Views {
			if seen[v.ID] != 1 {
				t.Fatalf("view %d appears in %d groups", v.ID, seen[v.ID])
			}
		}
	}
}

func TestSingleViewPerGroupWithoutMultiOutput(t *testing.T) {
	_, tree, attrs := chain(t, 4, 10, 6)
	qs := countQueries(attrs, 4)
	p, err := BuildPlan(tree, qs, PlanOptions{MultiRoot: true, MultiOutput: false})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range p.Groups {
		if len(g.Views) != 1 {
			t.Fatalf("group %d has %d views with multi-output disabled", g.ID, len(g.Views))
		}
	}
	if len(p.Groups) != len(p.Views) {
		t.Fatalf("groups = %d, views = %d", len(p.Groups), len(p.Views))
	}
}

func TestMergeSharesAcrossQueries(t *testing.T) {
	// Two scalar queries over the same join must share every internal
	// view (they decompose into identical count views).
	_, tree, attrs := chain(t, 4, 10, 7)
	q1 := query.NewQuery("c1", nil, query.CountAgg())
	q2 := query.NewQuery("c2", nil, query.CountAgg())
	single, err := BuildPlan(tree, []*query.Query{q1}, PlanOptions{MultiRoot: true, MultiOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	both, err := BuildPlan(tree, []*query.Query{q1, q2}, PlanOptions{MultiRoot: true, MultiOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if both.Stats.Views != single.Stats.Views {
		t.Fatalf("adding an identical query grew views: %d vs %d",
			both.Stats.Views, single.Stats.Views)
	}
	_ = attrs
}

func TestBuildPlanErrors(t *testing.T) {
	_, tree, attrs := chain(t, 3, 5, 8)
	if _, err := BuildPlan(tree, nil, PlanOptions{}); err == nil {
		t.Fatal("empty batch accepted")
	}
	bad := query.NewQuery("bad", nil, query.SumAgg(data.AttrID(99)))
	if _, err := BuildPlan(tree, []*query.Query{bad}, PlanOptions{}); err == nil {
		t.Fatal("invalid query accepted")
	}
	_ = attrs
}

func TestProdAggSignature(t *testing.T) {
	a := ProdAgg{
		Factors: []query.Factor{query.IdentF(1), query.PowF(2, 2)},
		Inputs:  []InputRef{{View: 3, Agg: 1}},
	}
	b := ProdAgg{
		Factors: []query.Factor{query.PowF(2, 2), query.IdentF(1)},
		Inputs:  []InputRef{{View: 3, Agg: 1}},
	}
	if a.Signature() != b.Signature() {
		t.Fatal("signature depends on factor order")
	}
	c := ProdAgg{Inputs: []InputRef{{View: 3, Agg: 2}}}
	if a.Signature() == c.Signature() {
		t.Fatal("distinct aggregates share signature")
	}
}

func TestViewInputViews(t *testing.T) {
	v := &View{Aggs: []ProdAgg{
		{Inputs: []InputRef{{View: 5, Agg: 0}, {View: 2, Agg: 1}}},
		{Inputs: []InputRef{{View: 5, Agg: 2}}},
	}}
	got := v.InputViews()
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("InputViews = %v", got)
	}
}

func TestStatsIntermediateAggregates(t *testing.T) {
	_, tree, attrs := chain(t, 4, 10, 9)
	q := query.NewQuery("sum", []data.AttrID{attrs[2]},
		query.CountAgg(), query.SumProdAgg(attrs[1], attrs[4]))
	p, err := BuildPlan(tree, []*query.Query{q}, PlanOptions{MultiRoot: true, MultiOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.AppAggregates != 2 {
		t.Fatalf("A = %d", p.Stats.AppAggregates)
	}
	if p.Stats.IntermediateAggs <= 0 {
		t.Fatalf("I = %d, expected intermediates", p.Stats.IntermediateAggs)
	}
}
