package core

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/jointree"
	"repro/internal/query"
)

// PlanOptions selects which logical optimizations apply; disabling them
// reproduces the ablation configurations of the paper's Figure 5.
type PlanOptions struct {
	// MultiRoot lets each query pick its own join-tree root (§3.3).
	MultiRoot bool
	// MultiOutput groups independent views out of the same node into one
	// shared scan (§3.5); disabled, each view is computed by its own scan.
	MultiOutput bool
	// TrackCounts appends a hidden tuple-count aggregate to every view
	// (output views gain a trailing CountColName column) so the incremental
	// maintenance layer can drop group-by keys whose join tuples have all
	// been deleted. See internal/ivm.
	TrackCounts bool
}

// Stats records the planner's consolidation numbers, matching the columns of
// the paper's Table 2.
type Stats struct {
	// RawViews is the pre-consolidation count: one view per aggregate per
	// join-tree edge (the paper's "814 aggregates × 4 edges = 3,256 views").
	RawViews int
	// Views is the number of merged directional views (paper column V).
	Views int
	// Groups is the number of view groups (paper column G).
	Groups int
	// AppAggregates is the number of application aggregates (paper A).
	AppAggregates int
	// IntermediateAggs counts additional product aggregates synthesized
	// across all views (paper I): total product aggregates minus A.
	IntermediateAggs int
}

// Plan is the fully optimized logical plan for a batch: the consolidated
// directional views, the query output views, and the grouped execution order.
type Plan struct {
	Tree *jointree.Tree
	// Queries is the planned batch: the first UserQueries entries are the
	// caller's queries (cloned with a hidden placeholder count aggregate
	// when a query has monoid aggregates but no sum aggregates), followed
	// by the internal support queries synthesized for monoid aggregates.
	Queries []*query.Query
	// UserQueries is the number of caller queries; Queries[UserQueries:]
	// are internal support queries.
	UserQueries int
	// Monoids[i] is user query i's monoid plan, nil for pure sum-product
	// queries (always nil for support-query indexes).
	Monoids []*MonoidSpec
	Roots   []int
	// Views lists merged internal views followed by one output view per
	// query; IDs equal slice positions.
	Views []*View
	// OutputView[i] is the view ID delivering queries[i]'s result.
	OutputView []int
	Groups     []*Group
	// GroupDeps[g] lists the group IDs that must finish before group g.
	GroupDeps [][]int
	// Provenance[v] holds the sorted join-tree node IDs whose base
	// relations feed view v (all nodes for output views). A delta against
	// node p's relation dirties exactly the views with p in Provenance.
	Provenance [][]int
	// CountCol[v] is the column of view v holding its hidden tuple count,
	// or nil when the plan was built without TrackCounts.
	CountCol []int
	// ConsumerKeys[v] lists, for internal view v, the group-by attributes
	// shared with its consuming node's schema (ascending) — the join key the
	// view binds on during the consumer's scans, and hence the indexable
	// attributes for semi-join-restricted maintenance (internal/ivm). Empty
	// for output views and for views binding on no attributes (scalar
	// inputs).
	ConsumerKeys [][]data.AttrID
	Stats        Stats
}

// BuildPlan runs the logical layers — Find Roots, Aggregate Pushdown, Merge
// Views, Group Views — over the batch.
func BuildPlan(t *jointree.Tree, queries []*query.Query, opts PlanOptions) (*Plan, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: empty query batch")
	}
	userCount := len(queries)
	queries, monoids, err := expandMonoids(queries)
	if err != nil {
		return nil, err
	}
	for _, q := range queries {
		if err := q.Validate(t.DB); err != nil {
			return nil, err
		}
	}
	roots := assignRoots(t, queries, opts.MultiRoot)
	raw, outputs, rawCount, err := pushdown(t, queries, roots)
	if err != nil {
		return nil, err
	}
	views := mergeViews(raw, outputs)
	var countCol []int
	if opts.TrackCounts {
		countCol = addCountAggs(t, views)
	}
	groups, deps, err := groupViews(views, opts.MultiOutput)
	if err != nil {
		return nil, err
	}

	p := &Plan{
		Tree:         t,
		Queries:      queries,
		UserQueries:  userCount,
		Monoids:      append(monoids, make([]*MonoidSpec, len(queries)-userCount)...),
		Roots:        roots,
		Views:        views,
		OutputView:   make([]int, len(queries)),
		Groups:       groups,
		GroupDeps:    deps,
		Provenance:   computeProvenance(t, views),
		CountCol:     countCol,
		ConsumerKeys: computeConsumerKeys(t, views),
	}
	totalAggs := 0
	for _, v := range views {
		totalAggs += len(v.Aggs)
		if v.IsOutput() {
			p.OutputView[v.Query] = v.ID
		} else {
			p.Stats.Views++
		}
	}
	for qi, q := range queries[:userCount] {
		n := len(q.Aggs)
		if p.Monoids[qi] != nil && p.Monoids[qi].Placeholder {
			n = 0
		}
		p.Stats.AppAggregates += n + len(q.MonoidAggs)
	}
	p.Stats.RawViews = rawCount
	p.Stats.Groups = len(groups)
	p.Stats.IntermediateAggs = totalAggs - p.Stats.AppAggregates
	if p.Stats.IntermediateAggs < 0 {
		p.Stats.IntermediateAggs = 0
	}
	return p, nil
}
