package tree

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/moo"
	"repro/internal/query"
)

// RunBatch evaluates one ad-hoc aggregate batch and returns one
// materialized view per query, batch order — the only capability tree
// learning needs from its backend. An engine, a session snapshot's requery
// hook, or a sharded snapshot's fan-out-and-merge all fit.
type RunBatch func(queries []*query.Query) ([]*moo.ViewData, error)

// Learn grows a CART tree using the LMFAO engine: every node evaluation is
// one aggregate batch over the input database; the training dataset is never
// materialized.
func Learn(eng *moo.Engine, spec Spec) (*Model, error) {
	return LearnWith(func(queries []*query.Query) ([]*moo.ViewData, error) {
		res, err := eng.Run(queries)
		if err != nil {
			return nil, err
		}
		return res.Results, nil
	}, eng.DB(), spec)
}

// LearnWith grows a CART tree over any batch evaluator: each node's
// candidate-split statistics are one batch handed to run, conditioned on
// the node's ancestor splits. db supplies attribute metadata and the base
// columns the split thresholds are bucketed from; it must be the database
// (or an identically loaded copy of the database) behind run.
func LearnWith(run RunBatch, db *data.Database, spec Spec) (*Model, error) {
	spec.normalize()
	if err := spec.Validate(db); err != nil {
		return nil, err
	}
	thresholds, err := Thresholds(db, spec)
	if err != nil {
		return nil, err
	}
	l := &engineLearner{run: run, spec: spec, thresholds: thresholds}
	root, classes, err := l.rootStats()
	if err != nil {
		return nil, err
	}
	l.classes = classes
	m := &Model{Spec: spec, Classes: classes}
	m.Root, err = l.grow(nil, root, 0)
	if err != nil {
		return nil, err
	}
	count := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		count++
		if !n.IsLeaf() {
			walk(n.Left)
			walk(n.Right)
		}
	}
	walk(m.Root)
	m.Nodes = count
	return m, nil
}

type engineLearner struct {
	run        RunBatch
	spec       Spec
	thresholds map[data.AttrID][]float64
	classes    []int64
	classIdx   map[int64]int
}

// rootStats evaluates the unconditioned node statistics and, for
// classification, discovers the label classes.
func (l *engineLearner) rootStats() (nodeStats, []int64, error) {
	if l.spec.Task == Regression {
		views, err := l.run([]*query.Query{query.NewQuery("rt_root", nil,
			query.CountAgg(),
			query.SumAgg(l.spec.Label),
			query.SumPowAgg(l.spec.Label, 2))})
		if err != nil {
			return nodeStats{}, nil, err
		}
		vd := views[0]
		return nodeStats{count: vd.Val(0, 0), sum: vd.Val(0, 1), sumSq: vd.Val(0, 2)}, nil, nil
	}
	views, err := l.run([]*query.Query{query.NewQuery("ct_root",
		[]data.AttrID{l.spec.Label}, query.CountAgg())})
	if err != nil {
		return nodeStats{}, nil, err
	}
	vd := views[0]
	codes := make([]int64, vd.NumRows())
	for i := range codes {
		codes[i] = vd.KeyAt(i, 0)
	}
	classes, idx := classIndex(codes)
	l.classIdx = idx
	st := nodeStats{classCounts: make([]float64, len(classes))}
	for i := 0; i < vd.NumRows(); i++ {
		c := vd.Val(i, 0)
		st.classCounts[idx[vd.KeyAt(i, 0)]] = c
		st.count += c
	}
	return st, classes, nil
}

// grow builds the subtree for the fragment defined by conds, whose
// statistics are already known.
func (l *engineLearner) grow(conds []Condition, stats nodeStats, depth int) (*Node, error) {
	node := &Node{
		Prediction: stats.prediction(l.spec, l.classes),
		Count:      stats.count,
		Cost:       stats.cost(l.spec),
		Depth:      depth,
	}
	if depth >= l.spec.MaxDepth || stats.count < float64(l.spec.MinSplit) || node.Cost <= 1e-12 {
		return node, nil
	}
	cands, err := l.candidates(conds)
	if err != nil {
		return nil, err
	}
	best, _ := chooseSplit(l.spec, stats, cands)
	if best == nil {
		return node, nil
	}
	cond := best.cond
	node.SplitCond = &cond
	left, err := l.grow(append(append([]Condition(nil), conds...), cond),
		best.left, depth+1)
	if err != nil {
		return nil, err
	}
	right, err := l.grow(append(append([]Condition(nil), conds...), cond.Negated()),
		stats.minus(best.left), depth+1)
	if err != nil {
		return nil, err
	}
	node.Left, node.Right = left, right
	return node, nil
}

// candidates runs the node batch and decodes every candidate's left-side
// statistics.
func (l *engineLearner) candidates(conds []Condition) ([]candidate, error) {
	batch := NodeBatch(l.spec, conds, l.thresholds)
	results, err := l.run(batch)
	if err != nil {
		return nil, err
	}
	var cands []candidate
	switch l.spec.Task {
	case Regression:
		vd := results[0]
		if vd.NumRows() != 1 {
			return nil, fmt.Errorf("tree: node query returned %d rows", vd.NumRows())
		}
		col := 3
		for _, attr := range l.spec.Continuous {
			if attr == l.spec.Label {
				continue
			}
			for _, t := range l.thresholds[attr] {
				cands = append(cands, candidate{
					cond: Condition{Attr: attr, Continuous: true, Op: query.LE, Threshold: t},
					left: nodeStats{count: vd.Val(0, col), sum: vd.Val(0, col+1), sumSq: vd.Val(0, col+2)},
				})
				col += 3
			}
		}
		for qi, attr := range l.spec.Categorical {
			cvd := results[1+qi]
			// Sort categories so the candidate order matches the
			// materialized learner exactly.
			rowOf := map[int64]int{}
			var order []int64
			for r := 0; r < cvd.NumRows(); r++ {
				c := cvd.KeyAt(r, 0)
				rowOf[c] = r
				order = append(order, c)
			}
			sortInt64s(order)
			for _, c := range order {
				r := rowOf[c]
				cands = append(cands, candidate{
					cond: Condition{Attr: attr, Op: query.EQ, Threshold: float64(c)},
					left: nodeStats{count: cvd.Val(r, 0), sum: cvd.Val(r, 1), sumSq: cvd.Val(r, 2)},
				})
			}
		}
	case Classification:
		nc := len(l.classes)
		vd := results[0] // group-by label
		col := 1
		for _, attr := range l.spec.Continuous {
			for _, t := range l.thresholds[attr] {
				left := nodeStats{classCounts: make([]float64, nc)}
				for r := 0; r < vd.NumRows(); r++ {
					ci, ok := l.classIdx[vd.KeyAt(r, 0)]
					if !ok {
						continue
					}
					v := vd.Val(r, col)
					left.classCounts[ci] += v
					left.count += v
				}
				cands = append(cands, candidate{
					cond: Condition{Attr: attr, Continuous: true, Op: query.LE, Threshold: t},
					left: left,
				})
				col++
			}
		}
		// Categorical: group-by (attr, label) counts; attr/label column
		// order follows sorted attribute IDs in the output view.
		qi := 2
		for _, attr := range l.spec.Categorical {
			if attr == l.spec.Label {
				continue
			}
			cvd := results[qi]
			qi++
			attrCol, labelCol := 0, 1
			if l.spec.Label < attr {
				attrCol, labelCol = 1, 0
			}
			byCat := map[int64]*nodeStats{}
			var order []int64
			for r := 0; r < cvd.NumRows(); r++ {
				cat := cvd.KeyAt(r, attrCol)
				st, ok := byCat[cat]
				if !ok {
					st = &nodeStats{classCounts: make([]float64, nc)}
					byCat[cat] = st
					order = append(order, cat)
				}
				ci, ok := l.classIdx[cvd.KeyAt(r, labelCol)]
				if !ok {
					continue
				}
				v := cvd.Val(r, 0)
				st.classCounts[ci] += v
				st.count += v
			}
			sortInt64s(order)
			for _, cat := range order {
				cands = append(cands, candidate{
					cond: Condition{Attr: attr, Op: query.EQ, Threshold: float64(cat)},
					left: *byCat[cat],
				})
			}
		}
	}
	return cands, nil
}

func sortInt64s(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
