package tree

import (
	"repro/internal/data"
	"repro/internal/query"
)

// LearnMaterialized is the structure-agnostic competitor (the MADlib /
// TensorFlow BoostedTrees proxy): CART over the materialized join result,
// computing every node's split statistics by scanning the node's row set.
// It uses the same thresholds, candidate order and tie-breaking as Learn, so
// on identical data both learners grow identical trees.
func LearnMaterialized(flat *data.Relation, db *data.Database, spec Spec) (*Model, error) {
	spec.normalize()
	if err := spec.Validate(db); err != nil {
		return nil, err
	}
	thresholds, err := Thresholds(db, spec)
	if err != nil {
		return nil, err
	}
	l := &flatLearner{flat: flat, spec: spec, thresholds: thresholds}
	if err := l.resolve(); err != nil {
		return nil, err
	}
	rows := make([]int32, flat.Len())
	for i := range rows {
		rows[i] = int32(i)
	}
	if spec.Task == Classification {
		codes := map[int64]bool{}
		for i := 0; i < flat.Len(); i++ {
			codes[l.labelCol.Int(i)] = true
		}
		list := make([]int64, 0, len(codes))
		for c := range codes {
			list = append(list, c)
		}
		l.classes, l.classIdx = classIndex(list)
	}
	m := &Model{Spec: spec, Classes: l.classes}
	m.Root = l.grow(rows, 0)
	count := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		count++
		if !n.IsLeaf() {
			walk(n.Left)
			walk(n.Right)
		}
	}
	walk(m.Root)
	m.Nodes = count
	return m, nil
}

type flatLearner struct {
	flat       *data.Relation
	spec       Spec
	thresholds map[data.AttrID][]float64
	labelCol   data.Column
	cols       map[data.AttrID]data.Column
	classes    []int64
	classIdx   map[int64]int
}

func (l *flatLearner) resolve() error {
	l.cols = map[data.AttrID]data.Column{}
	var ok bool
	l.labelCol, ok = l.flat.Col(l.spec.Label)
	if !ok {
		return errMissing(l.spec.Label)
	}
	for _, a := range append(append([]data.AttrID(nil), l.spec.Continuous...), l.spec.Categorical...) {
		c, ok := l.flat.Col(a)
		if !ok {
			return errMissing(a)
		}
		l.cols[a] = c
	}
	return nil
}

type missingAttrError data.AttrID

func (e missingAttrError) Error() string { return "tree: attribute missing from join result" }

func errMissing(a data.AttrID) error { return missingAttrError(a) }

func (l *flatLearner) stats(rows []int32) nodeStats {
	if l.spec.Task == Regression {
		st := nodeStats{}
		for _, r := range rows {
			y := l.labelCol.Float(int(r))
			st.count++
			st.sum += y
			st.sumSq += y * y
		}
		return st
	}
	st := nodeStats{classCounts: make([]float64, len(l.classes))}
	for _, r := range rows {
		st.classCounts[l.classIdx[l.labelCol.Int(int(r))]]++
	}
	st.count = float64(len(rows))
	return st
}

func (l *flatLearner) grow(rows []int32, depth int) *Node {
	stats := l.stats(rows)
	node := &Node{
		Prediction: stats.prediction(l.spec, l.classes),
		Count:      stats.count,
		Cost:       stats.cost(l.spec),
		Depth:      depth,
	}
	if depth >= l.spec.MaxDepth || stats.count < float64(l.spec.MinSplit) || node.Cost <= 1e-12 {
		return node
	}
	cands := l.candidates(rows)
	best, _ := chooseSplit(l.spec, stats, cands)
	if best == nil {
		return node
	}
	cond := best.cond
	node.SplitCond = &cond
	var left, right []int32
	col := l.cols[cond.Attr]
	for _, r := range rows {
		if cond.Op.Compare(col.Float(int(r)), cond.Threshold) {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	node.Left = l.grow(left, depth+1)
	node.Right = l.grow(right, depth+1)
	return node
}

// candidates computes the left-side statistics of every candidate split by
// scanning the node's rows — once per (attribute, threshold) pass structure
// equivalent to what a flat-data learner does.
func (l *flatLearner) candidates(rows []int32) []candidate {
	var cands []candidate
	nc := len(l.classes)
	newStats := func() nodeStats {
		if l.spec.Task == Regression {
			return nodeStats{}
		}
		return nodeStats{classCounts: make([]float64, nc)}
	}
	accum := func(st *nodeStats, r int32) {
		if l.spec.Task == Regression {
			y := l.labelCol.Float(int(r))
			st.count++
			st.sum += y
			st.sumSq += y * y
		} else {
			st.classCounts[l.classIdx[l.labelCol.Int(int(r))]]++
			st.count++
		}
	}
	for _, attr := range l.spec.Continuous {
		if l.spec.Task == Regression && attr == l.spec.Label {
			continue
		}
		col := l.cols[attr]
		for _, t := range l.thresholds[attr] {
			st := newStats()
			for _, r := range rows {
				if col.Float(int(r)) <= t {
					accum(&st, r)
				}
			}
			cands = append(cands, candidate{
				cond: Condition{Attr: attr, Continuous: true, Op: query.LE, Threshold: t},
				left: st,
			})
		}
	}
	for _, attr := range l.spec.Categorical {
		if attr == l.spec.Label {
			continue
		}
		col := l.cols[attr]
		byCat := map[int64]*nodeStats{}
		var order []int64
		for _, r := range rows {
			c := col.Int(int(r))
			st, ok := byCat[c]
			if !ok {
				s := newStats()
				st = &s
				byCat[c] = st
				order = append(order, c)
			}
			accum(st, r)
		}
		sortInt64s(order)
		for _, c := range order {
			cands = append(cands, candidate{
				cond: Condition{Attr: attr, Op: query.EQ, Threshold: float64(c)},
				left: *byCat[c],
			})
		}
	}
	return cands
}
