package tree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/data"
	"repro/internal/moo"
	"repro/internal/query"
)

// regressionDB: y is piecewise on x (split at 5) with a categorical shift,
// joined across two relations.
func regressionDB(t *testing.T, n int) (*data.Database, Spec) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	db := data.NewDatabase()
	k := db.Attr("k", data.Key)
	x := db.Attr("x", data.Numeric)
	c := db.Attr("c", data.Categorical)
	y := db.Attr("y", data.Numeric)
	z := db.Attr("z", data.Numeric)

	dom := 6
	dimZ := make([]float64, dom)
	for i := range dimZ {
		dimZ[i] = float64(i)
	}
	dim := data.NewRelation("Dim", []data.AttrID{k, z}, []data.Column{
		data.NewIntColumn(seqKeys(dom)), data.NewFloatColumn(dimZ)})
	if err := db.AddRelation(dim); err != nil {
		t.Fatal(err)
	}
	kv := make([]int64, n)
	xv := make([]float64, n)
	cv := make([]int64, n)
	yv := make([]float64, n)
	for i := 0; i < n; i++ {
		kv[i] = int64(rng.Intn(dom))
		xv[i] = rng.Float64() * 10
		cv[i] = int64(rng.Intn(3))
		if xv[i] <= 5 {
			yv[i] = 10
		} else {
			yv[i] = -10
		}
		if cv[i] == 2 {
			yv[i] += 6
		}
		yv[i] += 0.01 * rng.NormFloat64()
	}
	fact := data.NewRelation("Fact", []data.AttrID{k, x, c, y}, []data.Column{
		data.NewIntColumn(kv), data.NewFloatColumn(xv),
		data.NewIntColumn(cv), data.NewFloatColumn(yv)})
	if err := db.AddRelation(fact); err != nil {
		t.Fatal(err)
	}
	spec := DefaultSpec(Regression, y)
	spec.Continuous = []data.AttrID{x, z}
	spec.Categorical = []data.AttrID{c}
	spec.MinSplit = 20
	spec.MaxDepth = 3
	return db, spec
}

// classificationDB: label determined by a categorical attribute in a joined
// dimension plus a continuous threshold.
func classificationDB(t *testing.T, n int) (*data.Database, Spec) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	db := data.NewDatabase()
	k := db.Attr("k", data.Key)
	g := db.Attr("g", data.Categorical) // in dimension
	x := db.Attr("x", data.Numeric)
	label := db.Attr("label", data.Categorical)

	dom := 9
	gv := make([]int64, dom)
	for i := range gv {
		gv[i] = int64(i % 3)
	}
	dim := data.NewRelation("Dim", []data.AttrID{k, g}, []data.Column{
		data.NewIntColumn(seqKeys(dom)), data.NewIntColumn(gv)})
	if err := db.AddRelation(dim); err != nil {
		t.Fatal(err)
	}
	kv := make([]int64, n)
	xv := make([]float64, n)
	lv := make([]int64, n)
	for i := 0; i < n; i++ {
		kv[i] = int64(rng.Intn(dom))
		xv[i] = rng.Float64() * 10
		switch {
		case gv[kv[i]] == 0:
			lv[i] = 0
		case xv[i] <= 4:
			lv[i] = 1
		default:
			lv[i] = 2
		}
		// 2% label noise.
		if rng.Intn(50) == 0 {
			lv[i] = int64(rng.Intn(3))
		}
	}
	fact := data.NewRelation("Fact", []data.AttrID{k, x, label}, []data.Column{
		data.NewIntColumn(kv), data.NewFloatColumn(xv), data.NewIntColumn(lv)})
	if err := db.AddRelation(fact); err != nil {
		t.Fatal(err)
	}
	spec := DefaultSpec(Classification, label)
	spec.Continuous = []data.AttrID{x}
	spec.Categorical = []data.AttrID{g}
	spec.MinSplit = 20
	spec.MaxDepth = 3
	return db, spec
}

func seqKeys(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func flatten(t *testing.T, db *data.Database) *data.Relation {
	t.Helper()
	base, err := baseline.New(db)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := base.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return flat
}

func newEng(t *testing.T, db *data.Database) *moo.Engine {
	t.Helper()
	eng, err := moo.NewEngine(db, moo.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func sameTree(a, b *Node) bool {
	if a.IsLeaf() != b.IsLeaf() {
		return false
	}
	if math.Abs(a.Prediction-b.Prediction) > 1e-6 || math.Abs(a.Count-b.Count) > 1e-6 {
		return false
	}
	if a.IsLeaf() {
		return true
	}
	if a.SplitCond.Attr != b.SplitCond.Attr || a.SplitCond.Op != b.SplitCond.Op ||
		math.Abs(a.SplitCond.Threshold-b.SplitCond.Threshold) > 1e-12 {
		return false
	}
	return sameTree(a.Left, b.Left) && sameTree(a.Right, b.Right)
}

func TestRegressionTreeLearns(t *testing.T) {
	db, spec := regressionDB(t, 600)
	m, err := Learn(newEng(t, db), spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.Root.IsLeaf() {
		t.Fatal("no split found")
	}
	// The dominant split is x ≤ ~5.
	if m.Root.SplitCond.Attr != spec.Continuous[0] {
		t.Fatalf("root split on %d: %s", m.Root.SplitCond.Attr, m.String(db))
	}
	if m.Root.SplitCond.Threshold < 3.5 || m.Root.SplitCond.Threshold > 6.5 {
		t.Fatalf("root threshold %g", m.Root.SplitCond.Threshold)
	}
	flat := flatten(t, db)
	rmse, err := m.RMSE(flat)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 3.5 {
		t.Fatalf("RMSE = %g", rmse)
	}
}

func TestRegressionEngineMatchesMaterialized(t *testing.T) {
	db, spec := regressionDB(t, 500)
	mEng, err := Learn(newEng(t, db), spec)
	if err != nil {
		t.Fatal(err)
	}
	flat := flatten(t, db)
	mFlat, err := LearnMaterialized(flat, db, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !sameTree(mEng.Root, mFlat.Root) {
		t.Fatalf("trees differ:\nengine:\n%s\nmaterialized:\n%s",
			mEng.String(db), mFlat.String(db))
	}
	if mEng.Nodes != mFlat.Nodes {
		t.Fatalf("node counts differ: %d vs %d", mEng.Nodes, mFlat.Nodes)
	}
}

func TestClassificationTreeLearns(t *testing.T) {
	db, spec := classificationDB(t, 800)
	m, err := Learn(newEng(t, db), spec)
	if err != nil {
		t.Fatal(err)
	}
	flat := flatten(t, db)
	acc, err := m.Accuracy(flat)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("accuracy = %g\n%s", acc, m.String(db))
	}
	if len(m.Classes) != 3 {
		t.Fatalf("classes = %v", m.Classes)
	}
}

func TestClassificationEngineMatchesMaterialized(t *testing.T) {
	db, spec := classificationDB(t, 600)
	mEng, err := Learn(newEng(t, db), spec)
	if err != nil {
		t.Fatal(err)
	}
	flat := flatten(t, db)
	mFlat, err := LearnMaterialized(flat, db, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !sameTree(mEng.Root, mFlat.Root) {
		t.Fatalf("trees differ:\nengine:\n%s\nmaterialized:\n%s",
			mEng.String(db), mFlat.String(db))
	}
}

func TestEntropyCost(t *testing.T) {
	db, spec := classificationDB(t, 500)
	spec.Cost = Entropy
	m, err := Learn(newEng(t, db), spec)
	if err != nil {
		t.Fatal(err)
	}
	flat := flatten(t, db)
	acc, err := m.Accuracy(flat)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Fatalf("entropy accuracy = %g", acc)
	}
}

func TestMinSplitStopsGrowth(t *testing.T) {
	db, spec := regressionDB(t, 100)
	spec.MinSplit = 10_000 // larger than the dataset
	m, err := Learn(newEng(t, db), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Root.IsLeaf() {
		t.Fatal("tree split despite MinSplit")
	}
}

func TestMaxDepthRespected(t *testing.T) {
	db, spec := regressionDB(t, 600)
	spec.MaxDepth = 1
	m, err := Learn(newEng(t, db), spec)
	if err != nil {
		t.Fatal(err)
	}
	var maxDepth int
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Depth > maxDepth {
			maxDepth = n.Depth
		}
		if !n.IsLeaf() {
			walk(n.Left)
			walk(n.Right)
		}
	}
	walk(m.Root)
	if maxDepth > 1 {
		t.Fatalf("depth %d > 1", maxDepth)
	}
	if m.Nodes > 3 {
		t.Fatalf("nodes = %d", m.Nodes)
	}
}

func TestSpecValidation(t *testing.T) {
	db, spec := regressionDB(t, 20)
	bad := spec
	bad.Continuous = []data.AttrID{spec.Categorical[0]}
	if err := bad.Validate(db); err == nil {
		t.Fatal("categorical-as-continuous accepted")
	}
	bad2 := spec
	bad2.Task = Classification // numeric label
	if err := bad2.Validate(db); err == nil {
		t.Fatal("numeric classification label accepted")
	}
	bad3 := spec
	bad3.Categorical = []data.AttrID{spec.Continuous[0]}
	if err := bad3.Validate(db); err == nil {
		t.Fatal("numeric categorical accepted")
	}
}

func TestConditionHelpers(t *testing.T) {
	c := Condition{Attr: 1, Continuous: true, Op: query.LE, Threshold: 5}
	n := c.Negated()
	if n.Op != query.GT {
		t.Fatalf("negated LE = %v", n.Op)
	}
	if n.Negated().Op != query.LE {
		t.Fatal("double negation broken")
	}
	e := Condition{Attr: 1, Op: query.EQ, Threshold: 2}
	if e.Negated().Op != query.NE || e.Negated().Negated().Op != query.EQ {
		t.Fatal("EQ negation broken")
	}
	f := c.Factor()
	if f.Kind != query.Indicator {
		t.Fatal("Factor kind wrong")
	}
}

func TestVarianceAndImpurity(t *testing.T) {
	// variance of {2,4}: Σy²−(Σy)²/n = 20 − 36/2 = 2.
	if v := variance(2, 6, 20); math.Abs(v-2) > 1e-12 {
		t.Fatalf("variance = %g", v)
	}
	if v := variance(0, 0, 0); v != 0 {
		t.Fatal("variance of empty set")
	}
	// Gini of 50/50 over 2 classes: (1 − 0.5) × n = 0.5 × 4 = 2.
	if g := impurity(Gini, []float64{2, 2}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("gini = %g", g)
	}
	if g := impurity(Gini, []float64{4, 0}); g != 0 {
		t.Fatalf("pure gini = %g", g)
	}
	// Entropy of 50/50: ln 2 per tuple, weighted by n = 4.
	e := impurity(Entropy, []float64{2, 2})
	if math.Abs(e-4*math.Log(2)) > 1e-9 {
		t.Fatalf("entropy = %g", e)
	}
	if impurity(Gini, nil) != 0 {
		t.Fatal("empty impurity")
	}
}

func TestQuantileThresholds(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	ts := quantileThresholds(vals, 3)
	if len(ts) == 0 || len(ts) > 3 {
		t.Fatalf("thresholds = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i-1] >= ts[i] {
			t.Fatalf("not strictly increasing: %v", ts)
		}
	}
	if got := quantileThresholds(nil, 5); got != nil {
		t.Fatal("nil input should yield nil")
	}
	// Constant column: single threshold at most.
	if got := quantileThresholds([]float64{7, 7, 7, 7}, 5); len(got) > 1 {
		t.Fatalf("constant column thresholds = %v", got)
	}
}

func TestNodeBatchShape(t *testing.T) {
	db, spec := regressionDB(t, 30)
	_ = db
	th := map[data.AttrID][]float64{
		spec.Continuous[0]: {1, 2},
		spec.Continuous[1]: {3},
	}
	batch := NodeBatch(spec, nil, th)
	// 1 scalar + 1 categorical query.
	if len(batch) != 2 {
		t.Fatalf("batch = %d queries", len(batch))
	}
	// Scalar: 3 node aggs + 3 per threshold × 3 thresholds.
	if len(batch[0].Aggs) != 3+9 {
		t.Fatalf("scalar aggs = %d", len(batch[0].Aggs))
	}
	conds := []Condition{{Attr: spec.Continuous[0], Continuous: true, Op: query.LE, Threshold: 2}}
	batch2 := NodeBatch(spec, conds, th)
	// Condition factors appear in every aggregate term.
	if got := len(batch2[0].Aggs[0].Terms[0].Factors); got != 1 {
		t.Fatalf("condition factors = %d", got)
	}
}

func TestClassificationNodeBatchShape(t *testing.T) {
	db, spec := classificationDB(t, 30)
	_ = db
	th := map[data.AttrID][]float64{spec.Continuous[0]: {1, 2, 3}}
	batch := NodeBatch(spec, nil, th)
	// group-by-label + scalar total + 1 categorical.
	if len(batch) != 3 {
		t.Fatalf("batch = %d queries", len(batch))
	}
	if len(batch[0].GroupBy) != 1 || batch[0].GroupBy[0] != spec.Label {
		t.Fatalf("first query group-by = %v", batch[0].GroupBy)
	}
	if len(batch[2].GroupBy) != 2 {
		t.Fatalf("categorical query group-by = %v", batch[2].GroupBy)
	}
}
