package tree

import (
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/query"
)

// NodeBatch builds the aggregate batch that evaluates every candidate split
// of one tree node whose fragment is defined by conds (paper equations 8–10).
// For regression the batch is one scalar query carrying COUNT, SUM(Y),
// SUM(Y²) — each also multiplied by 1_{X≤t} for every continuous candidate —
// plus one group-by query per categorical attribute. For classification the
// statistics group by the label instead.
func NodeBatch(spec Spec, conds []Condition, thresholds map[data.AttrID][]float64) []*query.Query {
	alpha := make([]query.Factor, len(conds))
	for i, c := range conds {
		alpha[i] = c.Factor()
	}
	prod := func(extra ...query.Factor) query.Term {
		fs := append(append([]query.Factor(nil), alpha...), extra...)
		return query.NewTerm(fs...)
	}

	var queries []*query.Query
	switch spec.Task {
	case Regression:
		aggs := []query.Aggregate{
			query.NewAggregate("n", prod()),
			query.NewAggregate("sy", prod(query.IdentF(spec.Label))),
			query.NewAggregate("syy", prod(query.PowF(spec.Label, 2))),
		}
		for _, attr := range spec.Continuous {
			if attr == spec.Label {
				continue
			}
			for ti, t := range thresholds[attr] {
				ind := query.IndicatorF(attr, query.LE, t)
				aggs = append(aggs,
					query.NewAggregate(fmt.Sprintf("n_%d_%d", attr, ti), prod(ind)),
					query.NewAggregate(fmt.Sprintf("sy_%d_%d", attr, ti), prod(ind, query.IdentF(spec.Label))),
					query.NewAggregate(fmt.Sprintf("syy_%d_%d", attr, ti), prod(ind, query.PowF(spec.Label, 2))),
				)
			}
		}
		queries = append(queries, query.NewQuery("rt_node", nil, aggs...))
		for _, attr := range spec.Categorical {
			queries = append(queries, query.NewQuery(
				fmt.Sprintf("rt_cat_%d", attr), []data.AttrID{attr},
				query.NewAggregate("n", prod()),
				query.NewAggregate("sy", prod(query.IdentF(spec.Label))),
				query.NewAggregate("syy", prod(query.PowF(spec.Label, 2))),
			))
		}
	case Classification:
		aggs := []query.Aggregate{query.NewAggregate("n", prod())}
		for _, attr := range spec.Continuous {
			for ti, t := range thresholds[attr] {
				ind := query.IndicatorF(attr, query.LE, t)
				aggs = append(aggs, query.NewAggregate(
					fmt.Sprintf("n_%d_%d", attr, ti), prod(ind)))
			}
		}
		queries = append(queries, query.NewQuery("ct_node", []data.AttrID{spec.Label}, aggs...))
		// The paper's eq. (10): total counts without the label group-by.
		queries = append(queries, query.NewQuery("ct_total", nil,
			query.NewAggregate("n", prod())))
		for _, attr := range spec.Categorical {
			if attr == spec.Label {
				continue
			}
			queries = append(queries, query.NewQuery(
				fmt.Sprintf("ct_cat_%d", attr), []data.AttrID{attr, spec.Label},
				query.NewAggregate("n", prod())))
		}
	}
	return queries
}

// Thresholds computes the candidate split thresholds for every continuous
// attribute from its base relation column (equal-frequency buckets).
func Thresholds(db *data.Database, spec Spec) (map[data.AttrID][]float64, error) {
	out := make(map[data.AttrID][]float64, len(spec.Continuous))
	for _, attr := range spec.Continuous {
		var col data.Column
		found := false
		for _, rel := range db.Relations() {
			if c, ok := rel.Col(attr); ok {
				col = c
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("tree: attribute %q in no relation", db.Attribute(attr).Name)
		}
		out[attr] = quantileThresholds(col.Floats, spec.Buckets)
	}
	return out, nil
}

// nodeStats aggregates one fragment: regression moments or per-class counts.
type nodeStats struct {
	count, sum, sumSq float64
	classCounts       []float64
}

func (s nodeStats) minus(l nodeStats) nodeStats {
	r := nodeStats{count: s.count - l.count, sum: s.sum - l.sum, sumSq: s.sumSq - l.sumSq}
	if s.classCounts != nil {
		r.classCounts = make([]float64, len(s.classCounts))
		for i := range r.classCounts {
			r.classCounts[i] = s.classCounts[i] - l.classCounts[i]
		}
		r.count = 0
		for _, c := range r.classCounts {
			r.count += c
		}
	}
	return r
}

func (s nodeStats) cost(spec Spec) float64 {
	if spec.Task == Regression {
		return variance(s.count, s.sum, s.sumSq)
	}
	return impurity(spec.Cost, s.classCounts)
}

func (s nodeStats) prediction(spec Spec, classes []int64) float64 {
	if spec.Task == Regression {
		if s.count == 0 {
			return 0
		}
		return s.sum / s.count
	}
	best, bestCount := 0, -1.0
	for i, c := range s.classCounts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if len(classes) == 0 {
		return 0
	}
	return float64(classes[best])
}

// candidate couples a condition with its left-fragment statistics.
type candidate struct {
	cond Condition
	left nodeStats
}

// chooseSplit picks the candidate minimizing summed child cost, requiring
// both children non-empty and a strict improvement over the node cost. The
// deterministic candidate order makes the engine-based and materialized
// learners produce identical trees.
func chooseSplit(spec Spec, node nodeStats, cands []candidate) (best *candidate, bestCost float64) {
	nodeCost := node.cost(spec)
	bestCost = nodeCost - 1e-9
	for i := range cands {
		l := cands[i].left
		r := node.minus(l)
		if l.count < 1 || r.count < 1 {
			continue
		}
		c := l.cost(spec) + r.cost(spec)
		if c < bestCost {
			bestCost = c
			best = &cands[i]
		}
	}
	return best, bestCost
}

// classIndex builds a deterministic class list and code → index map.
func classIndex(codes []int64) ([]int64, map[int64]int) {
	sorted := append([]int64(nil), codes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := make(map[int64]int, len(sorted))
	for i, c := range sorted {
		idx[c] = i
	}
	return sorted, idx
}
