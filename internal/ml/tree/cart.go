// Package tree learns classification and regression trees with the CART
// algorithm (paper §2, Figure 2) over the natural join of a database. The
// data-intensive work of each node — variance or Gini/entropy statistics for
// every candidate split, filtered by the conjunction of ancestor conditions —
// is one aggregate batch handed to the LMFAO engine (the paper's "regression
// tree node" workload); the application layer only picks the best split.
//
// A materialize-then-scan learner (the MADlib / TensorFlow proxy) implements
// the same algorithm over the flat join result for comparison.
package tree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/query"
)

// Task selects the tree type.
type Task uint8

const (
	// Regression predicts a numeric label by the fragment mean; split cost
	// is the summed variance (paper's variance formula).
	Regression Task = iota
	// Classification predicts a categorical label by the fragment
	// majority; split cost is the Gini index by default.
	Classification
)

// Cost selects the classification impurity.
type Cost uint8

const (
	// Gini is 1 − Σ p².
	Gini Cost = iota
	// Entropy is −Σ p·log p.
	Entropy
)

// Spec configures tree learning. Defaults match the paper's experimental
// setup (§B): depth 4 (≤ 31 nodes), 20 buckets per continuous attribute,
// at least 1000 instances to split a node.
type Spec struct {
	Task        Task
	Continuous  []data.AttrID
	Categorical []data.AttrID
	Label       data.AttrID
	MaxDepth    int
	MinSplit    int
	Buckets     int
	Cost        Cost
}

// DefaultSpec fills the paper defaults.
func DefaultSpec(task Task, label data.AttrID) Spec {
	return Spec{Task: task, Label: label, MaxDepth: 4, MinSplit: 1000, Buckets: 20}
}

func (s *Spec) normalize() {
	if s.MaxDepth <= 0 {
		s.MaxDepth = 4
	}
	if s.MinSplit <= 0 {
		s.MinSplit = 1000
	}
	if s.Buckets <= 0 {
		s.Buckets = 20
	}
}

// Validate checks attribute kinds.
func (s Spec) Validate(db *data.Database) error {
	for _, a := range s.Continuous {
		if db.Attribute(a).Kind != data.Numeric {
			return fmt.Errorf("tree: continuous feature %q is not numeric", db.Attribute(a).Name)
		}
	}
	for _, a := range s.Categorical {
		if !db.Attribute(a).Kind.Discrete() {
			return fmt.Errorf("tree: categorical feature %q is numeric", db.Attribute(a).Name)
		}
	}
	lk := db.Attribute(s.Label).Kind
	if s.Task == Regression && lk != data.Numeric {
		return fmt.Errorf("tree: regression label %q is not numeric", db.Attribute(s.Label).Name)
	}
	if s.Task == Classification && !lk.Discrete() {
		return fmt.Errorf("tree: classification label %q is not discrete", db.Attribute(s.Label).Name)
	}
	return nil
}

// Condition is one decision-tree predicate X op t. Continuous conditions use
// LE/GT thresholds; categorical ones EQ/NE on a category code (the paper's
// per-category splits).
type Condition struct {
	Attr       data.AttrID
	Continuous bool
	Op         query.CmpOp
	Threshold  float64
}

// Factor renders the condition as the engine's Kronecker delta 1_{X op t}
// (paper eq. 8).
func (c Condition) Factor() query.Factor {
	return query.IndicatorF(c.Attr, c.Op, c.Threshold)
}

// Negated returns the complementary condition.
func (c Condition) Negated() Condition {
	switch c.Op {
	case query.LE:
		c.Op = query.GT
	case query.GT:
		c.Op = query.LE
	case query.EQ:
		c.Op = query.NE
	case query.NE:
		c.Op = query.EQ
	}
	return c
}

// String renders the condition for display.
func (c Condition) String(db *data.Database) string {
	return fmt.Sprintf("%s %s %g", db.Attribute(c.Attr).Name, c.Op, c.Threshold)
}

// Node is one tree node. Leaves have a nil SplitCond.
type Node struct {
	SplitCond   *Condition
	Left, Right *Node
	// Prediction is the label mean (regression) or majority class code
	// (classification) of the node's fragment.
	Prediction float64
	Count      float64
	Cost       float64
	Depth      int
}

// IsLeaf reports whether the node has no split.
func (n *Node) IsLeaf() bool { return n.SplitCond == nil }

// Model is a learned tree.
type Model struct {
	Spec Spec
	Root *Node
	// Nodes is the total node count.
	Nodes int
	// Classes lists the label categories (classification only).
	Classes []int64
}

// PredictRow evaluates the tree on row i of a materialized join result.
func (m *Model) PredictRow(flat *data.Relation, i int) (float64, error) {
	n := m.Root
	for !n.IsLeaf() {
		col, ok := flat.Col(n.SplitCond.Attr)
		if !ok {
			return 0, fmt.Errorf("tree: attribute %d missing from data", n.SplitCond.Attr)
		}
		if n.SplitCond.Op.Compare(col.Float(i), n.SplitCond.Threshold) {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Prediction, nil
}

// RMSE computes root-mean-square error over a materialized join (regression).
func (m *Model) RMSE(flat *data.Relation) (float64, error) {
	label, ok := flat.Col(m.Spec.Label)
	if !ok {
		return 0, fmt.Errorf("tree: label missing")
	}
	if flat.Len() == 0 {
		return 0, nil
	}
	var sse float64
	for i := 0; i < flat.Len(); i++ {
		p, err := m.PredictRow(flat, i)
		if err != nil {
			return 0, err
		}
		d := p - label.Float(i)
		sse += d * d
	}
	return math.Sqrt(sse / float64(flat.Len())), nil
}

// Accuracy computes classification accuracy over a materialized join.
func (m *Model) Accuracy(flat *data.Relation) (float64, error) {
	label, ok := flat.Col(m.Spec.Label)
	if !ok {
		return 0, fmt.Errorf("tree: label missing")
	}
	if flat.Len() == 0 {
		return 0, nil
	}
	hits := 0
	for i := 0; i < flat.Len(); i++ {
		p, err := m.PredictRow(flat, i)
		if err != nil {
			return 0, err
		}
		if int64(p) == label.Int(i) {
			hits++
		}
	}
	return float64(hits) / float64(flat.Len()), nil
}

// String renders the tree.
func (m *Model) String(db *data.Database) string {
	var b []byte
	var walk func(n *Node, indent string)
	walk = func(n *Node, indent string) {
		if n.IsLeaf() {
			b = append(b, fmt.Sprintf("%sleaf pred=%.4g n=%.0f\n", indent, n.Prediction, n.Count)...)
			return
		}
		b = append(b, fmt.Sprintf("%s%s (n=%.0f cost=%.4g)\n", indent, n.SplitCond.String(db), n.Count, n.Cost)...)
		walk(n.Left, indent+"  ")
		walk(n.Right, indent+"  ")
	}
	walk(m.Root, "")
	return string(b)
}

// impurity computes the classification impurity of class counts.
func impurity(cost Cost, counts []float64) float64 {
	n := 0.0
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return 0
	}
	v := 0.0
	switch cost {
	case Gini:
		v = 1
		for _, c := range counts {
			p := c / n
			v -= p * p
		}
	case Entropy:
		for _, c := range counts {
			if c > 0 {
				p := c / n
				v -= p * math.Log(p)
			}
		}
	}
	return v * n // weighted by fragment size
}

// variance computes the paper's regression cost Σy² − (Σy)²/n.
func variance(count, sum, sumSq float64) float64 {
	if count == 0 {
		return 0
	}
	return sumSq - sum*sum/count
}

// quantileThresholds returns up to k equal-frequency thresholds of a numeric
// column (the paper bucketizes continuous attributes into 20 buckets).
func quantileThresholds(vals []float64, k int) []float64 {
	if len(vals) == 0 || k <= 0 {
		return nil
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	var out []float64
	seen := map[float64]bool{}
	for i := 1; i <= k; i++ {
		idx := i * (len(sorted) - 1) / (k + 1)
		t := sorted[idx]
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Float64s(out)
	return out
}
