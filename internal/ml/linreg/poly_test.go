package linreg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/data"
	"repro/internal/moo"
)

// polyDB: y = 2 + 0.5·x1 − 0.25·x1² + x1·x2 with small noise, x2 joined in.
func polyDB(t *testing.T, n int) (*data.Database, PolySpec) {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	db := data.NewDatabase()
	k := db.Attr("k", data.Key)
	x1 := db.Attr("x1", data.Numeric)
	x2 := db.Attr("x2", data.Numeric)
	y := db.Attr("y", data.Numeric)

	dom := 6
	dimX2 := make([]float64, dom)
	for i := range dimX2 {
		dimX2[i] = float64(i)*0.4 - 1
	}
	dim := data.NewRelation("Dim", []data.AttrID{k, x2}, []data.Column{
		data.NewIntColumn(seq(dom)), data.NewFloatColumn(dimX2)})
	if err := db.AddRelation(dim); err != nil {
		t.Fatal(err)
	}
	kv := make([]int64, n)
	x1v := make([]float64, n)
	yv := make([]float64, n)
	for i := 0; i < n; i++ {
		kv[i] = int64(rng.Intn(dom))
		x1v[i] = rng.NormFloat64()
		x2i := dimX2[kv[i]]
		yv[i] = 2 + 0.5*x1v[i] - 0.25*x1v[i]*x1v[i] + x1v[i]*x2i + 0.01*rng.NormFloat64()
	}
	fact := data.NewRelation("Fact", []data.AttrID{k, x1, y}, []data.Column{
		data.NewIntColumn(kv), data.NewFloatColumn(x1v), data.NewFloatColumn(yv)})
	if err := db.AddRelation(fact); err != nil {
		t.Fatal(err)
	}
	return db, PolySpec{Continuous: []data.AttrID{x1, x2}, Label: y, Lambda: 1e-7}
}

func TestPolyMonomialCount(t *testing.T) {
	db, spec := polyDB(t, 10)
	ms := spec.Monomials(db)
	// 1 + n + n(n+1)/2 with n=2 → 1+2+3 = 6.
	if len(ms) != 6 {
		t.Fatalf("monomials = %d", len(ms))
	}
	batch, _ := PolyBatch(db, spec)
	if len(batch) != 1 {
		t.Fatalf("poly batch = %d queries", len(batch))
	}
	// d(d+1)/2 pairs + d label entries + label² = 21 + 6 + 1.
	if len(batch[0].Aggs) != 28 {
		t.Fatalf("aggs = %d", len(batch[0].Aggs))
	}
}

func TestPolynomialRecoversModel(t *testing.T) {
	db, spec := polyDB(t, 800)
	eng, err := moo.NewEngine(db, moo.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, err := LearnPolynomial(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Monomial order: [1, x1, x2, x1², x1·x2, x2²].
	want := map[string]float64{
		"intercept": 2,
		"x1":        0.5,
		"x1*x1":     -0.25,
		"x1*x2":     1,
		"x2":        0,
		"x2*x2":     0,
	}
	for i, mono := range m.Monomials {
		if w, ok := want[mono.Name]; ok {
			if math.Abs(m.Theta[i]-w) > 0.05 {
				t.Errorf("theta[%s] = %g, want %g", mono.Name, m.Theta[i], w)
			}
		}
	}
	base, err := baseline.New(db)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := base.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := m.RMSE(flat)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.05 {
		t.Fatalf("RMSE = %g", rmse)
	}
	// A purely linear model cannot fit this data as well.
	lin, err := LearnClosedForm(mustCovar(t, eng, FeatureSpec{
		Continuous: spec.Continuous, Label: spec.Label, Lambda: 1e-7,
	}), FeatureSpec{Continuous: spec.Continuous, Label: spec.Label, Lambda: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	linRMSE, err := lin.RMSE(flat)
	if err != nil {
		t.Fatal(err)
	}
	if linRMSE < 2*rmse {
		t.Fatalf("linear RMSE %g should be far above polynomial %g", linRMSE, rmse)
	}
}

func mustCovar(t *testing.T, eng *moo.Engine, spec FeatureSpec) *CovarMatrix {
	t.Helper()
	cm, _, err := BuildCovar(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func TestPolynomialValidation(t *testing.T) {
	db, spec := polyDB(t, 10)
	eng, err := moo.NewEngine(db, moo.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bad := spec
	bad.Label = spec.Continuous[0]
	bad.Continuous = []data.AttrID{0} // key attribute
	if _, err := LearnPolynomial(eng, bad); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
