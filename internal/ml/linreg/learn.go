package linreg

import (
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/linalg"
)

// Model is a trained ridge linear regression model over the expanded feature
// space of a CovarMatrix.
type Model struct {
	Spec     FeatureSpec
	Features []Feature
	// Theta holds one parameter per feature (the label position carries the
	// fixed −1 and is not part of the optimized parameters).
	Theta []float64
	// Iterations is the number of BGD steps taken (0 for closed form).
	Iterations int
	// FinalLoss is J(θ) at the returned parameters.
	FinalLoss float64
}

// OptimOptions configures batch gradient descent.
type OptimOptions struct {
	MaxIters  int
	Tolerance float64 // stop when ‖∇J‖ ≤ Tolerance
	// Step0 is the initial step size before Barzilai-Borwein kicks in.
	Step0 float64
}

// DefaultOptim matches the AC/DC setup: BGD with Armijo backtracking and
// Barzilai-Borwein step sizes.
func DefaultOptim() OptimOptions {
	return OptimOptions{MaxIters: 2000, Tolerance: 1e-8, Step0: 1}
}

// lossAndGrad evaluates J(θ) and ∇J(θ) purely from the covar matrix: the
// data is never touched again after the single aggregate batch (paper: "the
// computation of the covar matrix does not depend on the parameters θ, and
// can be done once for all BGD iterations").
func (cm *CovarMatrix) lossAndGrad(theta []float64, lambda float64, grad []float64) float64 {
	d := len(cm.Features)
	n := cm.Count
	if n == 0 {
		n = 1
	}
	// θ̃ is θ with −1 at the label position.
	full := make([]float64, d)
	copy(full, theta)
	full[cm.LabelIdx] = -1

	loss := 0.0
	for i := 0; i < d; i++ {
		si := 0.0
		row := cm.Sigma.Data[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			si += row[j] * full[j]
		}
		loss += full[i] * si
		if i != cm.LabelIdx && grad != nil {
			g := si / n
			if !cm.Features[i].Intercept {
				g += lambda * theta[i]
			}
			grad[i] = g
		}
	}
	if grad != nil {
		grad[cm.LabelIdx] = 0
	}
	loss /= 2 * n
	for i, t := range theta {
		if i != cm.LabelIdx && !cm.Features[i].Intercept {
			loss += lambda / 2 * t * t
		}
	}
	return loss
}

// LearnBGD optimizes the model by batch gradient descent over the covar
// matrix with Armijo backtracking line search and Barzilai-Borwein steps.
func LearnBGD(cm *CovarMatrix, spec FeatureSpec, opt OptimOptions) (*Model, error) {
	if opt.MaxIters <= 0 {
		opt = DefaultOptim()
	}
	d := len(cm.Features)
	theta := make([]float64, d)
	grad := make([]float64, d)
	prevTheta := make([]float64, d)
	prevGrad := make([]float64, d)
	trial := make([]float64, d)

	loss := cm.lossAndGrad(theta, spec.Lambda, grad)
	step := opt.Step0
	iters := 0
	for ; iters < opt.MaxIters; iters++ {
		gnorm := linalg.Norm2(grad)
		if gnorm <= opt.Tolerance {
			break
		}
		// Barzilai-Borwein step from the previous iterate.
		if iters > 0 {
			var sy, yy float64
			for i := range theta {
				s := theta[i] - prevTheta[i]
				y := grad[i] - prevGrad[i]
				sy += s * y
				yy += y * y
			}
			if yy > 0 && sy > 0 {
				step = sy / yy
			}
		}
		copy(prevTheta, theta)
		copy(prevGrad, grad)

		// Armijo backtracking: halve the step until sufficient decrease.
		accepted := false
		for bt := 0; bt < 60; bt++ {
			copy(trial, theta)
			linalg.AXPY(-step, grad, trial)
			trial[cm.LabelIdx] = 0
			newLoss := cm.lossAndGrad(trial, spec.Lambda, nil)
			if newLoss <= loss-1e-4*step*gnorm*gnorm {
				copy(theta, trial)
				loss = newLoss
				accepted = true
				break
			}
			step /= 2
		}
		if !accepted {
			break // no further progress at machine precision
		}
		loss = cm.lossAndGrad(theta, spec.Lambda, grad)
	}
	return &Model{Spec: spec, Features: cm.Features, Theta: theta,
		Iterations: iters, FinalLoss: loss}, nil
}

// LearnClosedForm solves the ridge normal equations directly (the MADlib OLS
// proxy): (Σ_ff + nλI)θ = Σ_fy with the intercept unpenalized.
func LearnClosedForm(cm *CovarMatrix, spec FeatureSpec) (*Model, error) {
	d := len(cm.Features)
	n := cm.Count
	if n == 0 {
		return nil, fmt.Errorf("linreg: empty training set")
	}
	a := linalg.NewMatrix(d-1, d-1)
	b := make([]float64, d-1)
	// Map full index → reduced (label removed).
	red := make([]int, 0, d-1)
	for i := 0; i < d; i++ {
		if i != cm.LabelIdx {
			red = append(red, i)
		}
	}
	for ri, i := range red {
		for rj, j := range red {
			v := cm.Sigma.At(i, j)
			if ri == rj && !cm.Features[i].Intercept {
				v += n * spec.Lambda
			}
			a.Set(ri, rj, v)
		}
		b[ri] = cm.Sigma.At(i, cm.LabelIdx)
	}
	x, err := linalg.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("linreg: normal equations: %w (try a larger Lambda)", err)
	}
	theta := make([]float64, d)
	for ri, i := range red {
		theta[i] = x[ri]
	}
	m := &Model{Spec: spec, Features: cm.Features, Theta: theta}
	m.FinalLoss = cm.lossAndGrad(theta, spec.Lambda, nil)
	return m, nil
}

// PredictRow evaluates the model on row i of a materialized join result.
func (m *Model) PredictRow(flat *data.Relation, i int) (float64, error) {
	pred := 0.0
	for fi, f := range m.Features {
		if f.Intercept {
			pred += m.Theta[fi]
			continue
		}
		if f.Attr == m.Spec.Label {
			continue
		}
		c, ok := flat.Col(f.Attr)
		if !ok {
			return 0, fmt.Errorf("linreg: attribute %d missing from data", f.Attr)
		}
		if f.Cat >= 0 {
			if c.Int(i) == f.Cat {
				pred += m.Theta[fi]
			}
		} else {
			pred += m.Theta[fi] * c.Float(i)
		}
	}
	return pred, nil
}

// RMSE computes the root-mean-square error of the model over a materialized
// join result.
func (m *Model) RMSE(flat *data.Relation) (float64, error) {
	label, ok := flat.Col(m.Spec.Label)
	if !ok {
		return 0, fmt.Errorf("linreg: label missing from data")
	}
	if flat.Len() == 0 {
		return 0, nil
	}
	var sse float64
	for i := 0; i < flat.Len(); i++ {
		p, err := m.PredictRow(flat, i)
		if err != nil {
			return 0, err
		}
		d := p - label.Float(i)
		sse += d * d
	}
	return math.Sqrt(sse / float64(flat.Len())), nil
}
