// Package linreg learns ridge linear regression models over the natural join
// of a database without materializing it (paper §2, §4.2): the engine
// computes the non-centered covariance matrix ("covar matrix") as one
// aggregate batch, and batch gradient descent with Armijo backtracking line
// search and Barzilai-Borwein step sizes optimizes the parameters over it —
// the AC/DC optimizer the paper uses. A closed-form ridge solver (the MADlib
// OLS proxy) and a materialize-then-iterate learner (the TensorFlow/scikit
// proxy) serve as competitors and accuracy references.
package linreg

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/moo"
	"repro/internal/query"
)

// FeatureSpec declares the model inputs over the joined database.
type FeatureSpec struct {
	// Continuous feature attributes (numeric).
	Continuous []data.AttrID
	// Categorical feature attributes, one-hot encoded (paper eq. 3–4: they
	// become group-by attributes of the covar queries).
	Categorical []data.AttrID
	// Label is the numeric regression target.
	Label data.AttrID
	// Lambda is the ridge penalty λ.
	Lambda float64
}

// Validate checks kinds against the database schema.
func (s FeatureSpec) Validate(db *data.Database) error {
	for _, a := range s.Continuous {
		if db.Attribute(a).Kind != data.Numeric {
			return fmt.Errorf("linreg: continuous feature %q is not numeric", db.Attribute(a).Name)
		}
	}
	for _, a := range s.Categorical {
		if !db.Attribute(a).Kind.Discrete() {
			return fmt.Errorf("linreg: categorical feature %q is numeric", db.Attribute(a).Name)
		}
	}
	if db.Attribute(s.Label).Kind != data.Numeric {
		return fmt.Errorf("linreg: label %q is not numeric", db.Attribute(s.Label).Name)
	}
	return nil
}

// conts returns the numeric attributes with the label appended: the label
// participates in the covar matrix like any other attribute (θ_label = −1).
func (s FeatureSpec) conts() []data.AttrID {
	return append(append([]data.AttrID(nil), s.Continuous...), s.Label)
}

// CovarBatch constructs the aggregate batch computing every entry of the
// covar matrix (paper equations 2–4):
//
//   - one scalar query with count, SUM(Xi) and SUM(Xi·Xj) for all numeric
//     pairs (including the label),
//   - per categorical attribute, a group-by query with count and SUM(Xk),
//   - per categorical pair, a group-by count query.
func CovarBatch(spec FeatureSpec) []*query.Query {
	conts := spec.conts()
	aggs := []query.Aggregate{query.CountAgg()}
	for _, c := range conts {
		aggs = append(aggs, query.SumAgg(c))
	}
	for i, ci := range conts {
		for _, cj := range conts[i:] {
			aggs = append(aggs, query.SumProdAgg(ci, cj))
		}
	}
	queries := []*query.Query{query.NewQuery("covar_cont", nil, aggs...)}

	for _, cat := range spec.Categorical {
		catAggs := []query.Aggregate{query.CountAgg()}
		for _, c := range conts {
			catAggs = append(catAggs, query.SumAgg(c))
		}
		queries = append(queries, query.NewQuery(
			fmt.Sprintf("covar_cat_%d", cat), []data.AttrID{cat}, catAggs...))
	}
	for i, a := range spec.Categorical {
		for _, b := range spec.Categorical[i+1:] {
			queries = append(queries, query.NewQuery(
				fmt.Sprintf("covar_catpair_%d_%d", a, b),
				[]data.AttrID{a, b}, query.CountAgg()))
		}
	}
	return queries
}

// Feature identifies one column of the expanded (one-hot) design matrix.
type Feature struct {
	Name string
	Attr data.AttrID
	// Cat is the category code for one-hot features; -1 for numeric ones
	// and the intercept.
	Cat int64
	// Intercept marks the constant-1 feature.
	Intercept bool
}

// CovarMatrix is the assembled Σ = Σ_D x·xᵀ over the expanded feature space
// [intercept, continuous..., one-hot..., label].
type CovarMatrix struct {
	Features []Feature
	LabelIdx int
	Count    float64
	Sigma    *linalg.Matrix
}

// BuildCovar runs the covar batch on the engine and assembles the matrix.
func BuildCovar(eng *moo.Engine, spec FeatureSpec) (*CovarMatrix, *moo.BatchResult, error) {
	if err := spec.Validate(eng.DB()); err != nil {
		return nil, nil, err
	}
	batch := CovarBatch(spec)
	res, err := eng.Run(batch)
	if err != nil {
		return nil, nil, err
	}
	cm, err := AssembleCovar(eng.DB(), spec, batch, res.Results)
	return cm, res, err
}

// BuildCovarFrom assembles the covar matrix from any Queryable serving the
// spec's canonical batch (CovarBatch order) — a session snapshot, a merged
// sharded snapshot, or a one-shot run. Nothing is recomputed: the matrix is
// read straight out of the served views, so re-fitting a model from a live
// session costs assembly plus optimization only. db supplies attribute
// metadata (names, kinds) and must share the vocabulary the batch was built
// against.
func BuildCovarFrom(q moo.Queryable, db *data.Database, spec FeatureSpec) (*CovarMatrix, error) {
	if err := spec.Validate(db); err != nil {
		return nil, err
	}
	batch := CovarBatch(spec)
	results, err := moo.GatherResults(q, batch)
	if err != nil {
		return nil, err
	}
	return AssembleCovar(db, spec, batch, results)
}

// AssembleCovar builds the covar matrix from batch results (exported
// separately so baseline engines can reuse the assembly in tests).
func AssembleCovar(db *data.Database, spec FeatureSpec, batch []*query.Query, results []*moo.ViewData) (*CovarMatrix, error) {
	conts := spec.conts()
	nc := len(conts)

	// Discover the category universe per categorical attribute from the
	// per-attribute group-by results (queries 1..len(Categorical)).
	catIdx := make(map[data.AttrID]map[int64]int, len(spec.Categorical))
	features := []Feature{{Name: "intercept", Attr: -1, Cat: -1, Intercept: true}}
	contIdx := make([]int, nc)
	for i, c := range conts[:nc-1] {
		contIdx[i] = len(features)
		features = append(features, Feature{Name: db.Attribute(c).Name, Attr: c, Cat: -1})
	}
	for qi, cat := range spec.Categorical {
		vd := results[1+qi]
		m := make(map[int64]int, vd.NumRows())
		for r := 0; r < vd.NumRows(); r++ {
			v := vd.KeyAt(r, 0)
			if _, ok := m[v]; !ok {
				m[v] = len(features)
				features = append(features, Feature{
					Name: fmt.Sprintf("%s=%d", db.Attribute(cat).Name, v),
					Attr: cat, Cat: v,
				})
			}
		}
		catIdx[cat] = m
	}
	labelIdx := len(features)
	contIdx[nc-1] = labelIdx
	features = append(features, Feature{Name: db.Attribute(spec.Label).Name, Attr: spec.Label, Cat: -1})

	d := len(features)
	sigma := linalg.NewMatrix(d, d)
	set := func(i, j int, v float64) {
		sigma.Set(i, j, v)
		sigma.Set(j, i, v)
	}

	// Scalar query: count, sums, pairwise sums.
	sc := results[0]
	if sc.NumRows() != 1 {
		return nil, fmt.Errorf("linreg: scalar covar query returned %d rows", sc.NumRows())
	}
	count := sc.Val(0, 0)
	set(0, 0, count)
	col := 1
	for i := range conts {
		set(0, contIdx[i], sc.Val(0, col))
		col++
	}
	for i := range conts {
		for j := i; j < nc; j++ {
			set(contIdx[i], contIdx[j], sc.Val(0, col))
			col++
		}
	}

	// Per-categorical queries: counts and sums per category.
	for qi, cat := range spec.Categorical {
		vd := results[1+qi]
		for r := 0; r < vd.NumRows(); r++ {
			f := catIdx[cat][vd.KeyAt(r, 0)]
			c := vd.Val(r, 0)
			set(0, f, c)
			set(f, f, c)
			for i := range conts {
				set(f, contIdx[i], vd.Val(r, 1+i))
			}
		}
	}

	// Categorical pair counts.
	qi := 1 + len(spec.Categorical)
	for i, a := range spec.Categorical {
		for _, b := range spec.Categorical[i+1:] {
			vd := results[qi]
			qi++
			// Group-by attrs are sorted in the output view.
			first, second := a, b
			if b < a {
				first, second = b, a
			}
			for r := 0; r < vd.NumRows(); r++ {
				fa := catIdx[first][vd.KeyAt(r, 0)]
				fb := catIdx[second][vd.KeyAt(r, 1)]
				set(fa, fb, vd.Val(r, 0))
			}
		}
	}
	_ = batch
	return &CovarMatrix{Features: features, LabelIdx: labelIdx, Count: count, Sigma: sigma}, nil
}

// NumAggregates returns the number of application aggregates in the covar
// batch for n numeric features (incl. label) and k categorical ones — the
// paper's (n+1)(n+2)/2 plus categorical terms.
func NumAggregates(spec FeatureSpec) int {
	n := len(spec.conts())
	k := len(spec.Categorical)
	return 1 + n + n*(n+1)/2 + k*(1+n) + k*(k-1)/2
}
