package linreg

import (
	"fmt"
	"sort"

	"repro/internal/data"
)

// LearnMaterialized is the structure-agnostic competitor (the paper's
// TensorFlow / scikit / R pipeline): it takes the materialized join result
// and runs full-batch gradient descent by iterating over the flat rows for a
// fixed number of epochs. Its cost is dominated by the per-epoch scan of the
// (often much larger than the input database) training dataset.
func LearnMaterialized(flat *data.Relation, db *data.Database, spec FeatureSpec, epochs int, step float64) (*Model, error) {
	if err := spec.Validate(db); err != nil {
		return nil, err
	}
	if flat.Len() == 0 {
		return nil, fmt.Errorf("linreg: empty training dataset")
	}

	// Discover the one-hot universe with a first scan (this is the
	// "one-hot encoding" step that exhausts memory in the paper's scikit
	// runs; we at least stream it).
	features := []Feature{{Name: "intercept", Attr: -1, Cat: -1, Intercept: true}}
	for _, c := range spec.Continuous {
		features = append(features, Feature{Name: db.Attribute(c).Name, Attr: c, Cat: -1})
	}
	catIdx := map[data.AttrID]map[int64]int{}
	for _, cat := range spec.Categorical {
		col, ok := flat.Col(cat)
		if !ok {
			return nil, fmt.Errorf("linreg: categorical %d missing from join", cat)
		}
		vals := map[int64]bool{}
		for i := 0; i < flat.Len(); i++ {
			vals[col.Int(i)] = true
		}
		sorted := make([]int64, 0, len(vals))
		for v := range vals {
			sorted = append(sorted, v)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		m := map[int64]int{}
		for _, v := range sorted {
			m[v] = len(features)
			features = append(features, Feature{
				Name: fmt.Sprintf("%s=%d", db.Attribute(cat).Name, v),
				Attr: cat, Cat: v,
			})
		}
		catIdx[cat] = m
	}
	labelIdx := len(features)
	features = append(features, Feature{Name: db.Attribute(spec.Label).Name, Attr: spec.Label, Cat: -1})

	contCols := make([]data.Column, len(spec.Continuous))
	for i, c := range spec.Continuous {
		col, ok := flat.Col(c)
		if !ok {
			return nil, fmt.Errorf("linreg: continuous %d missing from join", c)
		}
		contCols[i] = col
	}
	catCols := make([]data.Column, len(spec.Categorical))
	for i, c := range spec.Categorical {
		catCols[i], _ = flat.Col(c)
	}
	labelCol, ok := flat.Col(spec.Label)
	if !ok {
		return nil, fmt.Errorf("linreg: label missing from join")
	}

	d := len(features)
	theta := make([]float64, d)
	grad := make([]float64, d)
	n := float64(flat.Len())
	x := make([]float64, d) // dense row buffer

	for ep := 0; ep < epochs; ep++ {
		for i := range grad {
			grad[i] = 0
		}
		for r := 0; r < flat.Len(); r++ {
			// Materialize the one-hot encoded row.
			for i := range x {
				x[i] = 0
			}
			x[0] = 1
			for ci, col := range contCols {
				x[1+ci] = col.Float(r)
			}
			for ci, col := range catCols {
				if fi, okc := catIdx[spec.Categorical[ci]][col.Int(r)]; okc {
					x[fi] = 1
				}
			}
			pred := 0.0
			for i, xi := range x {
				if xi != 0 {
					pred += theta[i] * xi
				}
			}
			err := pred - labelCol.Float(r)
			for i, xi := range x {
				if xi != 0 {
					grad[i] += err * xi
				}
			}
		}
		for i := 1; i < d; i++ {
			if i != labelIdx {
				grad[i] = grad[i]/n + spec.Lambda*theta[i]
			}
		}
		grad[0] /= n
		grad[labelIdx] = 0
		for i := range theta {
			theta[i] -= step * grad[i]
		}
	}
	return &Model{Spec: spec, Features: features, Theta: theta, Iterations: epochs}, nil
}
