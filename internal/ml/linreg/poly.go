package linreg

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/moo"
	"repro/internal/query"
)

// Polynomial regression of degree 2 (paper §2, "Higher-degree Regression
// Models", eq. 5): the model is linear in the monomials of degree ≤ 2 over
// the continuous features, so its covar matrix needs aggregates
// SUM(X1^a1·…·Xn^an·Y^a) for all exponent vectors with Σa ≤ 2d = 4. The
// whole matrix is still one aggregate batch over the join.

// Monomial is one polynomial feature Π attrs (degree = len(Attrs); the empty
// monomial is the intercept). Attrs may repeat for squares.
type Monomial struct {
	Attrs []data.AttrID
	Name  string
}

// PolySpec declares a degree-2 polynomial regression model.
type PolySpec struct {
	Continuous []data.AttrID
	Label      data.AttrID
	Lambda     float64
}

// Validate checks attribute kinds.
func (s PolySpec) Validate(db *data.Database) error {
	base := FeatureSpec{Continuous: s.Continuous, Label: s.Label, Lambda: s.Lambda}
	return base.Validate(db)
}

// Monomials enumerates the model's features: 1, Xi, Xi·Xj (i ≤ j).
func (s PolySpec) Monomials(db *data.Database) []Monomial {
	out := []Monomial{{Name: "intercept"}}
	for _, a := range s.Continuous {
		out = append(out, Monomial{Attrs: []data.AttrID{a}, Name: db.Attribute(a).Name})
	}
	for i, a := range s.Continuous {
		for _, b := range s.Continuous[i:] {
			out = append(out, Monomial{
				Attrs: []data.AttrID{a, b},
				Name:  db.Attribute(a).Name + "*" + db.Attribute(b).Name,
			})
		}
	}
	return out
}

// PolyBatch builds the single scalar query holding every covar entry
// SUM(mi·mj) over monomial pairs plus the label interactions SUM(mi·Y) and
// SUM(Y²). Structurally identical aggregates (e.g. (X1)·(X1·X2) and
// (X1·X2)·(X1)) deduplicate in the engine's merge layer.
func PolyBatch(db *data.Database, s PolySpec) ([]*query.Query, []Monomial) {
	ms := s.Monomials(db)
	var aggs []query.Aggregate
	prod := func(a, b []data.AttrID) query.Aggregate {
		attrs := append(append([]data.AttrID{}, a...), b...)
		sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
		if len(attrs) == 0 {
			return query.CountAgg()
		}
		fs := make([]query.Factor, len(attrs))
		names := make([]string, len(attrs))
		for i, at := range attrs {
			fs[i] = query.IdentF(at)
			names[i] = fmt.Sprint(at)
		}
		return query.NewAggregate("m:"+fmt.Sprint(names), query.NewTerm(fs...))
	}
	for i := range ms {
		for j := i; j < len(ms); j++ {
			aggs = append(aggs, prod(ms[i].Attrs, ms[j].Attrs))
		}
	}
	label := []data.AttrID{s.Label}
	for i := range ms {
		aggs = append(aggs, prod(ms[i].Attrs, label))
	}
	aggs = append(aggs, prod(label, label))
	return []*query.Query{query.NewQuery("poly_covar", nil, aggs...)}, ms
}

// PolyModel is a trained degree-2 polynomial regression model.
type PolyModel struct {
	Spec      PolySpec
	Monomials []Monomial
	Theta     []float64
}

// LearnPolynomial computes the polynomial covar matrix with one batch and
// solves the ridge normal equations over the monomial feature space.
func LearnPolynomial(eng *moo.Engine, s PolySpec) (*PolyModel, error) {
	if err := s.Validate(eng.DB()); err != nil {
		return nil, err
	}
	batch, ms := PolyBatch(eng.DB(), s)
	res, err := eng.Run(batch)
	if err != nil {
		return nil, err
	}
	return solvePoly(res.Results[0], ms, s)
}

// LearnPolynomialFrom solves the polynomial model from any Queryable
// serving the spec's canonical batch (PolyBatch order): the covar entries
// are read out of the served scalar view, so nothing is recomputed. db
// supplies attribute metadata and must share the vocabulary the batch was
// built against.
func LearnPolynomialFrom(q moo.Queryable, db *data.Database, s PolySpec) (*PolyModel, error) {
	if err := s.Validate(db); err != nil {
		return nil, err
	}
	batch, ms := PolyBatch(db, s)
	results, err := moo.GatherResults(q, batch)
	if err != nil {
		return nil, err
	}
	return solvePoly(results[0], ms, s)
}

// solvePoly assembles the monomial normal equations from the scalar covar
// view and solves them (shared by the engine and Queryable paths).
func solvePoly(vd *moo.ViewData, ms []Monomial, s PolySpec) (*PolyModel, error) {
	if vd.NumRows() != 1 {
		return nil, fmt.Errorf("linreg: scalar polynomial covar query returned %d rows", vd.NumRows())
	}
	d := len(ms)
	a := linalg.NewMatrix(d, d)
	b := make([]float64, d)
	col := 0
	var count float64
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			v := vd.Val(0, col)
			a.Set(i, j, v)
			a.Set(j, i, v)
			col++
			if i == 0 && j == 0 {
				count = v
			}
		}
	}
	for i := 0; i < d; i++ {
		b[i] = vd.Val(0, col)
		col++
	}
	if count == 0 {
		return nil, fmt.Errorf("linreg: empty training set")
	}
	for i := 1; i < d; i++ { // intercept unpenalized
		a.Add(i, i, count*s.Lambda)
	}
	theta, err := linalg.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("linreg: polynomial normal equations: %w (try a larger Lambda)", err)
	}
	return &PolyModel{Spec: s, Monomials: ms, Theta: theta}, nil
}

// PredictRow evaluates the model on row i of a materialized join result.
func (m *PolyModel) PredictRow(flat *data.Relation, i int) (float64, error) {
	pred := 0.0
	for fi, mono := range m.Monomials {
		v := 1.0
		for _, a := range mono.Attrs {
			c, ok := flat.Col(a)
			if !ok {
				return 0, fmt.Errorf("linreg: attribute %d missing", a)
			}
			v *= c.Float(i)
		}
		pred += m.Theta[fi] * v
	}
	return pred, nil
}

// RMSE computes root-mean-square error over a materialized join result.
func (m *PolyModel) RMSE(flat *data.Relation) (float64, error) {
	label, ok := flat.Col(m.Spec.Label)
	if !ok {
		return 0, fmt.Errorf("linreg: label missing")
	}
	if flat.Len() == 0 {
		return 0, nil
	}
	var sse float64
	for i := 0; i < flat.Len(); i++ {
		p, err := m.PredictRow(flat, i)
		if err != nil {
			return 0, err
		}
		d := p - label.Float(i)
		sse += d * d
	}
	return math.Sqrt(sse / float64(flat.Len())), nil
}
