package linreg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/data"
	"repro/internal/moo"
)

// synthDB builds a two-relation database whose join satisfies
// y = 3 + 2*x1 - 1.5*x2 (+ optional categorical shift) with small noise.
func synthDB(t *testing.T, n int, withCat bool, noise float64) (*data.Database, FeatureSpec) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	db := data.NewDatabase()
	k := db.Attr("k", data.Key)
	x1 := db.Attr("x1", data.Numeric)
	c := db.Attr("c", data.Categorical)
	x2 := db.Attr("x2", data.Numeric)
	y := db.Attr("y", data.Numeric)

	// Dimension: k → x2 (8 join keys).
	dom := 8
	dimX2 := make([]float64, dom)
	for i := range dimX2 {
		dimX2[i] = float64(i) * 0.7
	}
	dim := data.NewRelation("Dim", []data.AttrID{k, x2}, []data.Column{
		data.NewIntColumn(seq(dom)), data.NewFloatColumn(dimX2)})
	if err := db.AddRelation(dim); err != nil {
		t.Fatal(err)
	}

	kv := make([]int64, n)
	x1v := make([]float64, n)
	cv := make([]int64, n)
	yv := make([]float64, n)
	catShift := []float64{0, 4, -2}
	for i := 0; i < n; i++ {
		kv[i] = int64(rng.Intn(dom))
		x1v[i] = rng.NormFloat64() * 2
		cv[i] = int64(rng.Intn(3))
		yv[i] = 3 + 2*x1v[i] - 1.5*dimX2[kv[i]] + noise*rng.NormFloat64()
		if withCat {
			yv[i] += catShift[cv[i]]
		}
	}
	fact := data.NewRelation("Fact", []data.AttrID{k, x1, c, y}, []data.Column{
		data.NewIntColumn(kv), data.NewFloatColumn(x1v),
		data.NewIntColumn(cv), data.NewFloatColumn(yv)})
	if err := db.AddRelation(fact); err != nil {
		t.Fatal(err)
	}
	spec := FeatureSpec{
		Continuous: []data.AttrID{x1, x2},
		Label:      y,
		Lambda:     1e-6,
	}
	if withCat {
		spec.Categorical = []data.AttrID{c}
	}
	return db, spec
}

func seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func newEng(t *testing.T, db *data.Database) *moo.Engine {
	t.Helper()
	eng, err := moo.NewEngine(db, moo.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestCovarBatchShape(t *testing.T) {
	db, spec := synthDB(t, 50, true, 0.1)
	_ = db
	batch := CovarBatch(spec)
	// 1 scalar + 1 categorical + 0 pairs.
	if len(batch) != 2 {
		t.Fatalf("batch size = %d", len(batch))
	}
	// Scalar query: count + 3 sums + 6 pairwise.
	if len(batch[0].Aggs) != 1+3+6 {
		t.Fatalf("scalar aggs = %d", len(batch[0].Aggs))
	}
	if got := NumAggregates(spec); got != 10+1*(1+3) {
		t.Fatalf("NumAggregates = %d", got)
	}
}

func TestCovarMatchesBruteForce(t *testing.T) {
	db, spec := synthDB(t, 60, true, 0.2)
	eng := newEng(t, db)
	cm, _, err := BuildCovar(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over the materialized join.
	base, err := baseline.New(db)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := base.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	d := len(cm.Features)
	want := make([][]float64, d)
	for i := range want {
		want[i] = make([]float64, d)
	}
	x := make([]float64, d)
	for r := 0; r < flat.Len(); r++ {
		for i, f := range cm.Features {
			switch {
			case f.Intercept:
				x[i] = 1
			case f.Cat >= 0:
				col, _ := flat.Col(f.Attr)
				if col.Int(r) == f.Cat {
					x[i] = 1
				} else {
					x[i] = 0
				}
			default:
				col, _ := flat.Col(f.Attr)
				x[i] = col.Float(r)
			}
		}
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				want[i][j] += x[i] * x[j]
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			got := cm.Sigma.At(i, j)
			if math.Abs(got-want[i][j]) > 1e-6*(1+math.Abs(want[i][j])) {
				t.Fatalf("Sigma[%d][%d] (%s,%s) = %g, want %g",
					i, j, cm.Features[i].Name, cm.Features[j].Name, got, want[i][j])
			}
		}
	}
	if cm.Count != float64(flat.Len()) {
		t.Fatalf("count = %g, want %d", cm.Count, flat.Len())
	}
}

func TestBGDRecoversKnownModel(t *testing.T) {
	db, spec := synthDB(t, 400, false, 0.01)
	eng := newEng(t, db)
	cm, _, err := BuildCovar(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := LearnBGD(cm, spec, DefaultOptim())
	if err != nil {
		t.Fatal(err)
	}
	// features: [intercept, x1, x2, label]
	wantTheta := []float64{3, 2, -1.5}
	for i, want := range wantTheta {
		if math.Abs(m.Theta[i]-want) > 0.05 {
			t.Fatalf("theta[%d] (%s) = %g, want %g", i, m.Features[i].Name, m.Theta[i], want)
		}
	}
	if m.Iterations == 0 {
		t.Fatal("BGD took no iterations")
	}
}

func TestBGDMatchesClosedForm(t *testing.T) {
	db, spec := synthDB(t, 300, true, 0.5)
	spec.Lambda = 1e-3
	eng := newEng(t, db)
	cm, _, err := BuildCovar(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	bgd, err := LearnBGD(cm, spec, OptimOptions{MaxIters: 5000, Tolerance: 1e-10, Step0: 1})
	if err != nil {
		t.Fatal(err)
	}
	cf, err := LearnClosedForm(cm, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Paper check: BGD converges to the closed-form accuracy. Compare the
	// loss values rather than raw parameters (one-hot collinearity).
	if math.Abs(bgd.FinalLoss-cf.FinalLoss) > 1e-3*(1+math.Abs(cf.FinalLoss)) {
		t.Fatalf("loss mismatch: BGD %g vs closed form %g", bgd.FinalLoss, cf.FinalLoss)
	}
}

func TestRMSEAndPredict(t *testing.T) {
	db, spec := synthDB(t, 300, false, 0.01)
	eng := newEng(t, db)
	cm, _, err := BuildCovar(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := LearnClosedForm(cm, spec)
	if err != nil {
		t.Fatal(err)
	}
	base, err := baseline.New(db)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := base.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := m.RMSE(flat)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.1 {
		t.Fatalf("RMSE = %g, want near noise floor", rmse)
	}
}

func TestMaterializedLearnerAgrees(t *testing.T) {
	db, spec := synthDB(t, 300, false, 0.01)
	base, err := baseline.New(db)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := base.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	m, err := LearnMaterialized(flat, db, spec, 800, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1.5}
	for i, w := range want {
		if math.Abs(m.Theta[i]-w) > 0.1 {
			t.Fatalf("materialized theta[%d] = %g, want %g", i, m.Theta[i], w)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	db, spec := synthDB(t, 10, true, 0.1)
	bad := spec
	bad.Continuous = []data.AttrID{spec.Categorical[0]} // categorical as continuous
	if err := bad.Validate(db); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	bad2 := spec
	bad2.Label = spec.Categorical[0]
	if err := bad2.Validate(db); err == nil {
		t.Fatal("categorical label accepted")
	}
	bad3 := spec
	bad3.Categorical = []data.AttrID{spec.Continuous[0]}
	if err := bad3.Validate(db); err == nil {
		t.Fatal("numeric categorical accepted")
	}
}

func TestClosedFormEmpty(t *testing.T) {
	cm := &CovarMatrix{
		Features: []Feature{{Intercept: true}, {}},
		LabelIdx: 1,
		Sigma:    nil,
	}
	cm.Count = 0
	if _, err := LearnClosedForm(cm, FeatureSpec{}); err == nil {
		t.Fatal("empty training set accepted")
	}
}
