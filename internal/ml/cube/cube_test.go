package cube

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/moo"
)

func cubeDB(t *testing.T, n int) (*data.Database, Spec) {
	t.Helper()
	rng := rand.New(rand.NewSource(51))
	db := data.NewDatabase()
	k := db.Attr("k", data.Key)
	d1 := db.Attr("d1", data.Categorical)
	d2 := db.Attr("d2", data.Categorical)
	m1 := db.Attr("m1", data.Numeric)
	m2 := db.Attr("m2", data.Numeric)

	dom := 5
	d2vals := make([]int64, dom)
	for i := range d2vals {
		d2vals[i] = int64(i % 2)
	}
	dim := data.NewRelation("Dim", []data.AttrID{k, d2}, []data.Column{
		data.NewIntColumn(seq(dom)), data.NewIntColumn(d2vals)})
	if err := db.AddRelation(dim); err != nil {
		t.Fatal(err)
	}
	kv := make([]int64, n)
	d1v := make([]int64, n)
	m1v := make([]float64, n)
	m2v := make([]float64, n)
	for i := 0; i < n; i++ {
		kv[i] = int64(rng.Intn(dom))
		d1v[i] = int64(rng.Intn(3))
		m1v[i] = float64(rng.Intn(10))
		m2v[i] = rng.Float64()
	}
	fact := data.NewRelation("Fact", []data.AttrID{k, d1, m1, m2}, []data.Column{
		data.NewIntColumn(kv), data.NewIntColumn(d1v),
		data.NewFloatColumn(m1v), data.NewFloatColumn(m2v)})
	if err := db.AddRelation(fact); err != nil {
		t.Fatal(err)
	}
	return db, Spec{Dims: []data.AttrID{d1, d2}, Measures: []data.AttrID{m1, m2}}
}

func seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func compute(t *testing.T, db *data.Database, spec Spec) *Result {
	t.Helper()
	eng, err := moo.NewEngine(db, moo.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := Compute(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBatchSize(t *testing.T) {
	_, spec := cubeDB(t, 10)
	batch := Batch(spec)
	if len(batch) != 4 { // 2^2 subsets
		t.Fatalf("batch = %d", len(batch))
	}
	// Apex query has no group-by; full cuboid has both dims.
	if len(batch[0].GroupBy) != 0 || len(batch[3].GroupBy) != 2 {
		t.Fatal("subset masks wrong")
	}
	// Each query: count + 2 measures.
	if len(batch[0].Aggs) != 3 {
		t.Fatalf("aggs = %d", len(batch[0].Aggs))
	}
}

func TestRollupConsistency(t *testing.T) {
	db, spec := cubeDB(t, 200)
	res := compute(t, db, spec)

	// The apex count equals the sum over the full cuboid, and each
	// 1-dimensional cuboid's counts sum to the apex too.
	apex, ok := res.Lookup(All, All)
	if !ok {
		t.Fatal("apex missing")
	}
	for _, c := range res.Cuboids {
		var sum float64
		for i := 0; i < c.Data.NumRows(); i++ {
			sum += c.Data.Val(i, 0)
		}
		if math.Abs(sum-apex[0]) > 1e-6 {
			t.Fatalf("cuboid %b counts sum to %g, apex %g", c.Mask, sum, apex[0])
		}
	}
	// Measures roll up as well.
	for m := 1; m <= len(spec.Measures); m++ {
		full := res.Cuboids[3]
		var sum float64
		for i := 0; i < full.Data.NumRows(); i++ {
			sum += full.Data.Val(i, m)
		}
		if math.Abs(sum-apex[m]) > 1e-6 {
			t.Fatalf("measure %d rolls to %g, apex %g", m, sum, apex[m])
		}
	}
}

func TestLookupCells(t *testing.T) {
	db, spec := cubeDB(t, 150)
	res := compute(t, db, spec)
	// Σ over d1 of cell (d1, All) = apex.
	apex, _ := res.Lookup(All, All)
	var total float64
	for v := int64(0); v < 3; v++ {
		if vals, ok := res.Lookup(v, All); ok {
			total += vals[0]
		}
	}
	if math.Abs(total-apex[0]) > 1e-6 {
		t.Fatalf("d1 marginals = %g, apex = %g", total, apex[0])
	}
	if _, ok := res.Lookup(99, All); ok {
		t.Fatal("absent cell found")
	}
	if _, ok := res.Lookup(All); ok {
		t.Fatal("wrong arity accepted")
	}
}

func TestFlatten(t *testing.T) {
	db, spec := cubeDB(t, 100)
	res := compute(t, db, spec)
	rows := res.Flatten()
	want := 0
	for _, c := range res.Cuboids {
		want += c.Data.NumRows()
	}
	if len(rows) != want {
		t.Fatalf("flatten rows = %d, want %d", len(rows), want)
	}
	// Exactly one row is (All, All).
	apexCount := 0
	for _, r := range rows {
		if r.Dims[0] == All && r.Dims[1] == All {
			apexCount++
		}
		if len(r.Values) != 3 {
			t.Fatalf("row values = %d", len(r.Values))
		}
	}
	if apexCount != 1 {
		t.Fatalf("apex rows = %d", apexCount)
	}
}

func TestSpecValidation(t *testing.T) {
	db, spec := cubeDB(t, 10)
	bad := spec
	bad.Dims = nil
	if err := bad.Validate(db); err == nil {
		t.Fatal("no dims accepted")
	}
	bad2 := spec
	bad2.Dims = []data.AttrID{spec.Measures[0]}
	if err := bad2.Validate(db); err == nil {
		t.Fatal("numeric dim accepted")
	}
	bad3 := spec
	bad3.Measures = []data.AttrID{spec.Dims[0]}
	if err := bad3.Validate(db); err == nil {
		t.Fatal("discrete measure accepted")
	}
	bad4 := spec
	bad4.Dims = make([]data.AttrID, 20)
	if err := bad4.Validate(db); err == nil {
		t.Fatal("17+ dims accepted")
	}
}
