// Package cube computes k-dimensional data cubes over the natural join of a
// database (paper §2, eq. 6): the union of 2^k group-by aggregates, one per
// subset of the dimension attributes, each summing the same measures. The
// result is also exposed in the 1NF representation with the special ALL
// value of Gray et al.
package cube

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/moo"
	"repro/internal/query"
)

// All is the sentinel dimension value standing for "all values" in the 1NF
// cube representation.
const All int64 = math.MinInt64

// Spec configures a data cube.
type Spec struct {
	Dims     []data.AttrID
	Measures []data.AttrID
}

// Validate checks attribute kinds.
func (s Spec) Validate(db *data.Database) error {
	if len(s.Dims) == 0 {
		return fmt.Errorf("cube: no dimensions")
	}
	if len(s.Dims) > 16 {
		return fmt.Errorf("cube: %d dimensions would need %d queries", len(s.Dims), 1<<len(s.Dims))
	}
	for _, d := range s.Dims {
		if !db.Attribute(d).Kind.Discrete() {
			return fmt.Errorf("cube: dimension %q is numeric", db.Attribute(d).Name)
		}
	}
	for _, m := range s.Measures {
		if db.Attribute(m).Kind != data.Numeric {
			return fmt.Errorf("cube: measure %q is not numeric", db.Attribute(m).Name)
		}
	}
	return nil
}

// Batch builds the 2^k cube queries; query i groups by the dimension subset
// whose bitmask is i, with a count plus one SUM per measure.
func Batch(spec Spec) []*query.Query {
	k := len(spec.Dims)
	queries := make([]*query.Query, 0, 1<<k)
	for mask := 0; mask < 1<<k; mask++ {
		var gb []data.AttrID
		for b := 0; b < k; b++ {
			if mask&(1<<b) != 0 {
				gb = append(gb, spec.Dims[b])
			}
		}
		aggs := []query.Aggregate{query.CountAgg()}
		for _, m := range spec.Measures {
			aggs = append(aggs, query.SumAgg(m))
		}
		queries = append(queries, query.NewQuery(fmt.Sprintf("cube_%b", mask), gb, aggs...))
	}
	return queries
}

// Cuboid is one of the 2^k group-by results.
type Cuboid struct {
	Mask int
	Dims []data.AttrID
	Data *moo.ViewData
}

// Result is a computed data cube.
type Result struct {
	Spec    Spec
	Cuboids []Cuboid
}

// Compute runs the cube batch on the engine.
func Compute(eng *moo.Engine, spec Spec) (*Result, *moo.BatchResult, error) {
	if err := spec.Validate(eng.DB()); err != nil {
		return nil, nil, err
	}
	batch := Batch(spec)
	res, err := eng.Run(batch)
	if err != nil {
		return nil, nil, err
	}
	return assemble(spec, batch, res.Results), res, nil
}

// ComputeFrom assembles the cube from any Queryable serving the spec's
// canonical batch (Batch order, cuboid mask = query index): the cuboids are
// the served views themselves, so a cube over a maintained session is
// always fresh at zero recomputation cost. db supplies attribute metadata
// and must share the vocabulary the batch was built against.
func ComputeFrom(q moo.Queryable, db *data.Database, spec Spec) (*Result, error) {
	if err := spec.Validate(db); err != nil {
		return nil, err
	}
	batch := Batch(spec)
	results, err := moo.GatherResults(q, batch)
	if err != nil {
		return nil, err
	}
	return assemble(spec, batch, results), nil
}

// assemble wraps per-query views as cuboids (shared by both entry paths).
func assemble(spec Spec, batch []*query.Query, results []*moo.ViewData) *Result {
	out := &Result{Spec: spec}
	for mask, q := range batch {
		out.Cuboids = append(out.Cuboids, Cuboid{
			Mask: mask,
			Dims: q.GroupBy,
			Data: results[mask],
		})
	}
	return out
}

// Row is one 1NF cube row: dimension values (All where aggregated away) and
// the measure sums (count first).
type Row struct {
	Dims   []int64
	Values []float64
}

// Flatten renders the cube in 1NF with the ALL sentinel, rows ordered by
// cuboid mask then key.
func (r *Result) Flatten() []Row {
	k := len(r.Spec.Dims)
	nv := r.numValues()
	// Position of each dimension in the spec order.
	pos := make(map[data.AttrID]int, k)
	for i, d := range r.Spec.Dims {
		pos[d] = i
	}
	var rows []Row
	for _, c := range r.Cuboids {
		for i := 0; i < c.Data.NumRows(); i++ {
			dims := make([]int64, k)
			for j := range dims {
				dims[j] = All
			}
			for gi, attr := range c.Data.GroupBy {
				dims[pos[attr]] = c.Data.KeyAt(i, gi)
			}
			vals := make([]float64, nv)
			for v := 0; v < nv; v++ {
				vals[v] = c.Data.Val(i, v)
			}
			rows = append(rows, Row{Dims: dims, Values: vals})
		}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for j := range rows[a].Dims {
			if rows[a].Dims[j] != rows[b].Dims[j] {
				return rows[a].Dims[j] < rows[b].Dims[j]
			}
		}
		return false
	})
	return rows
}

// Lookup returns the measures for one cell; pass All for aggregated-away
// dimensions. The bool reports whether the cell exists.
func (r *Result) Lookup(dims ...int64) ([]float64, bool) {
	if len(dims) != len(r.Spec.Dims) {
		return nil, false
	}
	mask := 0
	for i, v := range dims {
		if v != All {
			mask |= 1 << i
		}
	}
	c := r.Cuboids[mask]
	var key []int64
	for _, attr := range c.Data.GroupBy {
		for i, d := range r.Spec.Dims {
			if d == attr {
				key = append(key, dims[i])
			}
		}
	}
	row := c.Data.Lookup(key...)
	if row < 0 {
		return nil, false
	}
	vals := make([]float64, r.numValues())
	for v := range vals {
		vals[v] = c.Data.Val(row, v)
	}
	return vals, true
}

// numValues is the visible value width of every cuboid: the count plus one
// sum per measure. Cuboids served by a maintained session carry an extra
// hidden tuple-count column after these (Options.TrackCounts); sizing rows
// by the spec instead of the view stride keeps both sources identical.
func (r *Result) numValues() int { return 1 + len(r.Spec.Measures) }
