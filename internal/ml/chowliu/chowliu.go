// Package chowliu computes pairwise mutual information over the natural join
// of a database and learns the structure of a tree-shaped Bayesian network
// with the Chow-Liu algorithm (paper §2, eq. 7). The count statistics — the
// 2-dimensional count data cubes over every attribute pair — form one
// aggregate batch (the paper's "mutual information" workload); the
// application layer evaluates the 4-ary MI function over the query results
// and runs a maximum spanning tree.
package chowliu

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/moo"
	"repro/internal/query"
)

// MIBatch builds the count-query batch of eq. 7: the empty marginal, one
// query per attribute and one per attribute pair.
func MIBatch(attrs []data.AttrID) []*query.Query {
	queries := []*query.Query{query.NewQuery("mi_total", nil, query.CountAgg())}
	for _, a := range attrs {
		queries = append(queries, query.NewQuery(
			fmt.Sprintf("mi_%d", a), []data.AttrID{a}, query.CountAgg()))
	}
	for i, a := range attrs {
		for _, b := range attrs[i+1:] {
			queries = append(queries, query.NewQuery(
				fmt.Sprintf("mi_%d_%d", a, b), []data.AttrID{a, b}, query.CountAgg()))
		}
	}
	return queries
}

// Result holds the pairwise mutual-information matrix over Attrs.
type Result struct {
	Attrs []data.AttrID
	// MI[i][j] is the mutual information of Attrs[i] and Attrs[j].
	MI *linalg.Matrix
	// Total is the join cardinality.
	Total float64
}

// Compute runs the MI batch on the engine and evaluates the MI function
// f(α,β,γ,δ) = δ/α · log(α·δ / (β·γ)) summed over all value pairs.
func Compute(eng *moo.Engine, attrs []data.AttrID) (*Result, *moo.BatchResult, error) {
	if len(attrs) < 2 {
		return nil, nil, fmt.Errorf("chowliu: need at least 2 attributes, got %d", len(attrs))
	}
	for _, a := range attrs {
		if !eng.DB().Attribute(a).Kind.Discrete() {
			return nil, nil, fmt.Errorf("chowliu: attribute %q is numeric", eng.DB().Attribute(a).Name)
		}
	}
	batch := MIBatch(attrs)
	res, err := eng.Run(batch)
	if err != nil {
		return nil, nil, err
	}
	out, err := Assemble(attrs, res.Results)
	return out, res, err
}

// ComputeFrom evaluates the MI matrix from any Queryable serving the
// attributes' canonical batch (MIBatch order): the counts are read out of
// the served views, so keeping a Chow-Liu structure fresh over a maintained
// session costs assembly plus the spanning tree only. db supplies attribute
// metadata and must share the vocabulary the batch was built against.
func ComputeFrom(q moo.Queryable, db *data.Database, attrs []data.AttrID) (*Result, error) {
	if len(attrs) < 2 {
		return nil, fmt.Errorf("chowliu: need at least 2 attributes, got %d", len(attrs))
	}
	for _, a := range attrs {
		if !db.Attribute(a).Kind.Discrete() {
			return nil, fmt.Errorf("chowliu: attribute %q is numeric", db.Attribute(a).Name)
		}
	}
	results, err := moo.GatherResults(q, MIBatch(attrs))
	if err != nil {
		return nil, err
	}
	return Assemble(attrs, results)
}

// Assemble computes the MI matrix from the batch results (total, marginals,
// pair counts — in MIBatch order).
func Assemble(attrs []data.AttrID, results []*moo.ViewData) (*Result, error) {
	n := len(attrs)
	total := results[0].Val(0, 0)
	r := &Result{Attrs: attrs, MI: linalg.NewMatrix(n, n), Total: total}
	if total == 0 {
		return r, nil
	}

	// Marginals: value → count per attribute.
	marginals := make([]map[int64]float64, n)
	for i := 0; i < n; i++ {
		vd := results[1+i]
		m := make(map[int64]float64, vd.NumRows())
		for row := 0; row < vd.NumRows(); row++ {
			m[vd.KeyAt(row, 0)] = vd.Val(row, 0)
		}
		marginals[i] = m
	}

	qi := 1 + n
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			vd := results[qi]
			qi++
			// The output view sorts group-by attributes by ID.
			iCol, jCol := 0, 1
			if attrs[j] < attrs[i] {
				iCol, jCol = 1, 0
			}
			mi := 0.0
			for row := 0; row < vd.NumRows(); row++ {
				delta := vd.Val(row, 0)
				if delta <= 0 {
					continue
				}
				beta := marginals[i][vd.KeyAt(row, iCol)]
				gamma := marginals[j][vd.KeyAt(row, jCol)]
				mi += delta / total * math.Log(total*delta/(beta*gamma))
			}
			if mi < 0 {
				mi = 0 // numerical noise on independent attributes
			}
			r.MI.Set(i, j, mi)
			r.MI.Set(j, i, mi)
		}
	}
	return r, nil
}

// Edge is one Chow-Liu tree edge between attribute indices (I < J).
type Edge struct {
	I, J   int
	Weight float64
}

// ChowLiu computes the maximum spanning tree of the MI matrix (Prim), the
// optimal tree-shaped Bayesian network approximation [Chow & Liu]. Edges are
// returned in insertion order; ties break toward smaller indices for
// determinism.
func ChowLiu(r *Result) []Edge {
	n := len(r.Attrs)
	if n == 0 {
		return nil
	}
	inTree := make([]bool, n)
	inTree[0] = true
	var edges []Edge
	for len(edges) < n-1 {
		bestI, bestJ, bestW := -1, -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if !inTree[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if inTree[j] {
					continue
				}
				if w := r.MI.At(i, j); w > bestW {
					bestI, bestJ, bestW = i, j, w
				}
			}
		}
		if bestJ < 0 {
			break
		}
		inTree[bestJ] = true
		i, j := bestI, bestJ
		if j < i {
			i, j = j, i
		}
		edges = append(edges, Edge{I: i, J: j, Weight: bestW})
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].I != edges[b].I {
			return edges[a].I < edges[b].I
		}
		return edges[a].J < edges[b].J
	})
	return edges
}
