package chowliu

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/data"
	"repro/internal/moo"
)

// markovDB builds a single relation where x1 → x2 → x3 form a Markov chain
// and x4 is independent noise.
func markovDB(t *testing.T, n int) (*data.Database, []data.AttrID) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	db := data.NewDatabase()
	attrs := []data.AttrID{
		db.Attr("x1", data.Categorical),
		db.Attr("x2", data.Categorical),
		db.Attr("x3", data.Categorical),
		db.Attr("x4", data.Categorical),
	}
	cols := make([][]int64, 4)
	for i := range cols {
		cols[i] = make([]int64, n)
	}
	for r := 0; r < n; r++ {
		x1 := int64(rng.Intn(3))
		x2 := x1
		if rng.Intn(10) == 0 { // 10% transition noise
			x2 = int64(rng.Intn(3))
		}
		x3 := x2
		if rng.Intn(10) == 0 {
			x3 = int64(rng.Intn(3))
		}
		cols[0][r], cols[1][r], cols[2][r] = x1, x2, x3
		cols[3][r] = int64(rng.Intn(3))
	}
	rel := data.NewRelation("R", attrs, []data.Column{
		data.NewIntColumn(cols[0]), data.NewIntColumn(cols[1]),
		data.NewIntColumn(cols[2]), data.NewIntColumn(cols[3])})
	if err := db.AddRelation(rel); err != nil {
		t.Fatal(err)
	}
	return db, attrs
}

func newEng(t *testing.T, db *data.Database) *moo.Engine {
	t.Helper()
	eng, err := moo.NewEngine(db, moo.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestMIBatchShape(t *testing.T) {
	batch := MIBatch([]data.AttrID{1, 2, 3})
	// 1 total + 3 marginals + 3 pairs.
	if len(batch) != 7 {
		t.Fatalf("batch = %d queries", len(batch))
	}
}

func TestMIDetectsDependence(t *testing.T) {
	db, attrs := markovDB(t, 3000)
	res, _, err := Compute(newEng(t, db), attrs)
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent chain pairs carry high MI; the independent attribute low MI.
	if res.MI.At(0, 1) < 0.5 {
		t.Fatalf("MI(x1,x2) = %g, expected high", res.MI.At(0, 1))
	}
	if res.MI.At(0, 3) > 0.05 {
		t.Fatalf("MI(x1,x4) = %g, expected near zero", res.MI.At(0, 3))
	}
	// Data-processing inequality: MI(x1,x3) < MI(x1,x2).
	if res.MI.At(0, 2) >= res.MI.At(0, 1) {
		t.Fatalf("MI(x1,x3)=%g not below MI(x1,x2)=%g", res.MI.At(0, 2), res.MI.At(0, 1))
	}
	// Symmetry and non-negativity.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if res.MI.At(i, j) != res.MI.At(j, i) {
				t.Fatal("MI not symmetric")
			}
			if res.MI.At(i, j) < 0 {
				t.Fatal("negative MI")
			}
		}
	}
}

func TestMIMatchesBruteForce(t *testing.T) {
	db, attrs := markovDB(t, 800)
	res, _, err := Compute(newEng(t, db), attrs)
	if err != nil {
		t.Fatal(err)
	}
	base, err := baseline.New(db)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := base.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force MI(x1, x2) from the flat data.
	c1, _ := flat.Col(attrs[0])
	c2, _ := flat.Col(attrs[1])
	joint := map[[2]int64]float64{}
	m1 := map[int64]float64{}
	m2 := map[int64]float64{}
	n := float64(flat.Len())
	for i := 0; i < flat.Len(); i++ {
		a, b := c1.Int(i), c2.Int(i)
		joint[[2]int64{a, b}]++
		m1[a]++
		m2[b]++
	}
	want := 0.0
	for k, d := range joint {
		want += d / n * math.Log(n*d/(m1[k[0]]*m2[k[1]]))
	}
	if math.Abs(res.MI.At(0, 1)-want) > 1e-9 {
		t.Fatalf("MI = %g, brute force %g", res.MI.At(0, 1), want)
	}
}

func TestChowLiuRecoversChain(t *testing.T) {
	db, attrs := markovDB(t, 4000)
	res, _, err := Compute(newEng(t, db), attrs)
	if err != nil {
		t.Fatal(err)
	}
	edges := ChowLiu(res)
	if len(edges) != 3 {
		t.Fatalf("edges = %v", edges)
	}
	// The chain edges (0,1) and (1,2) must be present; x4 attaches weakly
	// anywhere.
	has := map[[2]int]bool{}
	for _, e := range edges {
		has[[2]int{e.I, e.J}] = true
	}
	if !has[[2]int{0, 1}] || !has[[2]int{1, 2}] {
		t.Fatalf("chain edges missing: %v", edges)
	}
}

func TestComputeValidation(t *testing.T) {
	db, attrs := markovDB(t, 50)
	eng := newEng(t, db)
	if _, _, err := Compute(eng, attrs[:1]); err == nil {
		t.Fatal("single attribute accepted")
	}
	num := db.Attr("numeric", data.Numeric)
	if _, _, err := Compute(eng, []data.AttrID{attrs[0], num}); err == nil {
		t.Fatal("numeric attribute accepted")
	}
}

func TestChowLiuEmptyAndTiny(t *testing.T) {
	if got := ChowLiu(&Result{}); got != nil {
		t.Fatal("empty result should give no edges")
	}
}
