package jointree

import (
	"fmt"
	"testing"

	"repro/internal/data"
)

// FuzzJoinTreeBuild drives GYO decomposition and bag merging with random
// hypergraphs: up to 6 relations whose schemas are bitmasks over up to 8
// attributes. Build must never panic; when it succeeds, the tree must hold
// the running-intersection property, route every base relation to exactly
// one node through the member metadata (the bag-delta maintenance path
// depends on it), and fold bags exactly when the input hypergraph is
// cyclic.
func FuzzJoinTreeBuild(f *testing.F) {
	f.Add(byte(3), []byte{0b111})                          // single relation
	f.Add(byte(4), []byte{0b0011, 0b0110, 0b1100})         // chain
	f.Add(byte(4), []byte{0b1111, 0b0001, 0b0010})         // star with contained dims
	f.Add(byte(3), []byte{0b011, 0b110, 0b101})            // triangle (cyclic)
	f.Add(byte(4), []byte{0b0011, 0b0110, 0b1100, 0b1001}) // 4-ring (cyclic)
	f.Add(byte(2), []byte{0b00, 0b11})                     // empty-schema relation
	f.Add(byte(5), []byte{0b00011, 0b00011})               // duplicate schemas
	f.Fuzz(func(t *testing.T, nAttrs byte, masks []byte) {
		na := int(nAttrs)%8 + 1
		if len(masks) == 0 {
			return
		}
		if len(masks) > 6 {
			masks = masks[:6]
		}
		db := data.NewDatabase()
		attrs := make([]data.AttrID, na)
		for i := range attrs {
			attrs[i] = db.Attr(fmt.Sprintf("a%d", i), data.Key)
		}
		var names []string
		var edges [][]data.AttrID
		for ri, m := range masks {
			var schema []data.AttrID
			for b := 0; b < na; b++ {
				if m&(1<<b) != 0 {
					schema = append(schema, attrs[b])
				}
			}
			// A few rows over a tiny domain so bag materialization (the
			// natural join of cyclic members) has real tuples to merge.
			const rows = 3
			cols := make([]data.Column, len(schema))
			for ci := range cols {
				vals := make([]int64, rows)
				for r := range vals {
					vals[r] = int64((ri + ci + r) % 3)
				}
				cols[ci] = data.NewIntColumn(vals)
			}
			name := fmt.Sprintf("R%d", ri)
			if err := db.AddRelation(data.NewRelation(name, schema, cols)); err != nil {
				t.Fatalf("adding %s: %v", name, err)
			}
			names = append(names, name)
			edges = append(edges, schema)
		}
		acyclic := Acyclic(edges)

		tree, err := Build(db)
		if err != nil {
			// Legitimate rejections: undecomposable cyclic schemas (no
			// overlapping pair to merge), bag size cap. They must not
			// happen on acyclic inputs.
			if acyclic {
				t.Fatalf("Build rejected an acyclic schema: %v", err)
			}
			return
		}
		if err := tree.VerifyRunningIntersection(); err != nil {
			t.Fatalf("running intersection violated: %v", err)
		}

		// Member metadata partitions the base relations: every relation
		// lives in exactly one node's member set, and NodeByMember routes
		// to it.
		memberCount := make(map[string]int)
		for _, n := range tree.Nodes {
			for _, m := range n.Members {
				memberCount[m]++
			}
		}
		for _, name := range names {
			if memberCount[name] != 1 {
				t.Fatalf("relation %s appears in %d member sets, want 1", name, memberCount[name])
			}
			node := tree.NodeByMember(name)
			if node == nil {
				t.Fatalf("NodeByMember(%s) = nil", name)
			}
			routed := false
			for _, m := range node.Members {
				if m == name {
					routed = true
					break
				}
			}
			if !routed {
				t.Fatalf("NodeByMember(%s) routed to node %q which does not list it", name, node.Rel.Name)
			}
		}
		if extra := len(memberCount) - len(names); extra != 0 {
			t.Fatalf("member sets name %d unknown relations", extra)
		}

		// Bags appear exactly when the hypergraph was cyclic.
		bags := 0
		for _, n := range tree.Nodes {
			if n.IsBag() {
				bags++
			}
		}
		if acyclic && bags > 0 {
			t.Fatalf("acyclic schema produced %d bags", bags)
		}
		if !acyclic && bags == 0 {
			t.Fatal("cyclic schema decomposed without a bag")
		}

		// No attribute is lost: every input attribute appears in some node
		// schema (views grouped on it must have a home).
		present := make(map[data.AttrID]bool)
		for _, n := range tree.Nodes {
			for _, a := range n.Attrs {
				present[a] = true
			}
		}
		for _, e := range edges {
			for _, a := range e {
				if !present[a] {
					t.Fatalf("attribute %d vanished from the tree", a)
				}
			}
		}
	})
}
