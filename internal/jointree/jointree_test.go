package jointree

import (
	"math/rand"
	"testing"

	"repro/internal/data"
)

// chainDB builds S1(x1,x2), S2(x2,x3), ..., S{n-1}(x{n-1},xn) with rows.
func chainDB(t *testing.T, n, rows int, seed int64) *data.Database {
	t.Helper()
	db := data.NewDatabase()
	attrs := make([]data.AttrID, n+1)
	for i := 1; i <= n; i++ {
		attrs[i] = db.Attr(attrName(i), data.Key)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 1; i < n; i++ {
		a := make([]int64, rows)
		b := make([]int64, rows)
		for r := 0; r < rows; r++ {
			a[r] = int64(rng.Intn(4))
			b[r] = int64(rng.Intn(4))
		}
		rel := data.NewRelation(relName(i), []data.AttrID{attrs[i], attrs[i+1]},
			[]data.Column{data.NewIntColumn(a), data.NewIntColumn(b)})
		if err := db.AddRelation(rel); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func attrName(i int) string { return "x" + string(rune('0'+i)) }
func relName(i int) string  { return "S" + string(rune('0'+i)) }

func TestAcyclicGYO(t *testing.T) {
	a, b, c, d := data.AttrID(0), data.AttrID(1), data.AttrID(2), data.AttrID(3)
	cases := []struct {
		name  string
		edges [][]data.AttrID
		want  bool
	}{
		{"single", [][]data.AttrID{{a, b}}, true},
		{"chain", [][]data.AttrID{{a, b}, {b, c}, {c, d}}, true},
		{"star", [][]data.AttrID{{a, b, c}, {a}, {b}, {c}}, true},
		{"triangle", [][]data.AttrID{{a, b}, {b, c}, {a, c}}, false},
		{"square", [][]data.AttrID{{a, b}, {b, c}, {c, d}, {d, a}}, false},
		{"triangle+cover", [][]data.AttrID{{a, b}, {b, c}, {a, c}, {a, b, c}}, true},
		{"duplicate edges", [][]data.AttrID{{a, b}, {a, b}}, true},
		{"disconnected", [][]data.AttrID{{a, b}, {c, d}}, true},
		{"empty", nil, true},
	}
	for _, tc := range cases {
		if got := Acyclic(tc.edges); got != tc.want {
			t.Errorf("%s: Acyclic = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestBuildChain(t *testing.T) {
	db := chainDB(t, 5, 10, 1)
	tree, err := Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(tree.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(tree.Nodes))
	}
	if len(tree.Edges()) != 3 {
		t.Fatalf("edges = %v", tree.Edges())
	}
	if err := tree.VerifyRunningIntersection(); err != nil {
		t.Fatalf("running intersection: %v", err)
	}
	if tree.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestBuildTriangleDecomposes(t *testing.T) {
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	b := db.Attr("b", data.Key)
	c := db.Attr("c", data.Key)
	mk := func(name string, x, y data.AttrID) {
		rel := data.NewRelation(name, []data.AttrID{x, y}, []data.Column{
			data.NewIntColumn([]int64{1, 1, 2}),
			data.NewIntColumn([]int64{1, 2, 2}),
		})
		if err := db.AddRelation(rel); err != nil {
			t.Fatal(err)
		}
	}
	mk("R", a, b)
	mk("S", b, c)
	mk("T", a, c)
	tree, err := Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(tree.Nodes) != 2 {
		t.Fatalf("expected bag + remaining relation, got %d nodes", len(tree.Nodes))
	}
	if err := tree.VerifyRunningIntersection(); err != nil {
		t.Fatal(err)
	}
	// The bag must contain all three attributes.
	found := false
	for _, n := range tree.Nodes {
		if len(n.Attrs) == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("no 3-attribute bag materialized")
	}
}

// TestNodeMembers pins the member metadata: plain nodes carry their own
// relation name, bags the merged names, and NodeByMember routes members to
// their bag while NodeByRelation does not.
func TestNodeMembers(t *testing.T) {
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	b := db.Attr("b", data.Key)
	c := db.Attr("c", data.Key)
	mk := func(name string, x, y data.AttrID) {
		rel := data.NewRelation(name, []data.AttrID{x, y}, []data.Column{
			data.NewIntColumn([]int64{1, 1, 2}),
			data.NewIntColumn([]int64{1, 2, 2}),
		})
		if err := db.AddRelation(rel); err != nil {
			t.Fatal(err)
		}
	}
	mk("R", a, b)
	mk("S", b, c)
	mk("T", a, c)
	tree, err := Build(db)
	if err != nil {
		t.Fatal(err)
	}
	var bag, plain *Node
	for _, n := range tree.Nodes {
		if n.IsBag() {
			bag = n
		} else {
			plain = n
		}
	}
	if bag == nil || plain == nil {
		t.Fatalf("expected one bag and one plain node")
	}
	if len(bag.Members) != 2 {
		t.Fatalf("bag members = %v", bag.Members)
	}
	if len(plain.Members) != 1 || plain.Members[0] != plain.Rel.Name {
		t.Fatalf("plain node members = %v", plain.Members)
	}
	for _, m := range bag.Members {
		if tree.NodeByMember(m) != bag {
			t.Fatalf("NodeByMember(%q) did not return the bag", m)
		}
		if tree.NodeByRelation(m) != nil {
			t.Fatalf("NodeByRelation(%q) found a folded member", m)
		}
	}
	if tree.NodeByMember(plain.Rel.Name) != plain {
		t.Fatal("NodeByMember must fall back to the node relation name")
	}
	if tree.NodeByMember("nope") != nil {
		t.Fatal("NodeByMember of unknown name must be nil")
	}
}

func TestBuildErrors(t *testing.T) {
	db := data.NewDatabase()
	if _, err := Build(db); err == nil {
		t.Fatal("empty database accepted")
	}
}

func TestBagSizeCap(t *testing.T) {
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	b := db.Attr("b", data.Key)
	c := db.Attr("c", data.Key)
	n := 40
	mk := func(name string, x, y data.AttrID) {
		xs := make([]int64, n)
		ys := make([]int64, n)
		for i := range xs {
			xs[i], ys[i] = 1, 1 // all rows join: bag gets n*n rows
		}
		rel := data.NewRelation(name, []data.AttrID{x, y}, []data.Column{
			data.NewIntColumn(xs), data.NewIntColumn(ys)})
		if err := db.AddRelation(rel); err != nil {
			t.Fatal(err)
		}
	}
	mk("R", a, b)
	mk("S", b, c)
	mk("T", a, c)
	if _, err := Build(db, WithMaxBagRows(100)); err == nil {
		t.Fatal("oversized bag accepted")
	}
}

func TestNaturalJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	b := db.Attr("b", data.Key)
	c := db.Attr("c", data.Key)
	x := db.Attr("x", data.Numeric)

	nl, nr := 30, 40
	la := make([]int64, nl)
	lb := make([]int64, nl)
	lx := make([]float64, nl)
	for i := range la {
		la[i] = int64(rng.Intn(5))
		lb[i] = int64(rng.Intn(5))
		lx[i] = rng.Float64()
	}
	rb := make([]int64, nr)
	rc := make([]int64, nr)
	for i := range rb {
		rb[i] = int64(rng.Intn(5))
		rc[i] = int64(rng.Intn(5))
	}
	left := data.NewRelation("L", []data.AttrID{a, b, x}, []data.Column{
		data.NewIntColumn(la), data.NewIntColumn(lb), data.NewFloatColumn(lx)})
	right := data.NewRelation("R", []data.AttrID{b, c}, []data.Column{
		data.NewIntColumn(rb), data.NewIntColumn(rc)})

	out, err := NaturalJoin(db, left, right, "J")
	if err != nil {
		t.Fatalf("NaturalJoin: %v", err)
	}

	// Brute force count of join pairs and a checksum over (a,b,c,x).
	wantCount := 0
	var wantSum float64
	for i := 0; i < nl; i++ {
		for j := 0; j < nr; j++ {
			if lb[i] == rb[j] {
				wantCount++
				wantSum += float64(la[i]) + float64(lb[i])*10 + float64(rc[j])*100 + lx[i]
			}
		}
	}
	if out.Len() != wantCount {
		t.Fatalf("join count = %d, want %d", out.Len(), wantCount)
	}
	ca := out.MustCol(a)
	cb := out.MustCol(b)
	cc := out.MustCol(c)
	cx := out.MustCol(x)
	var gotSum float64
	for i := 0; i < out.Len(); i++ {
		gotSum += ca.Float(i) + cb.Float(i)*10 + cc.Float(i)*100 + cx.Float(i)
	}
	if diff := gotSum - wantSum; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("join checksum = %v, want %v", gotSum, wantSum)
	}
	// Schema: each attribute exactly once.
	if len(out.Attrs) != 4 {
		t.Fatalf("join schema = %v", out.Attrs)
	}
}

func TestNaturalJoinNumericKeyRejected(t *testing.T) {
	db := data.NewDatabase()
	x := db.Attr("x", data.Numeric)
	l := data.NewRelation("L", []data.AttrID{x}, []data.Column{data.NewFloatColumn([]float64{1})})
	r := data.NewRelation("R", []data.AttrID{x}, []data.Column{data.NewFloatColumn([]float64{1})})
	if _, err := NaturalJoin(db, l, r, "J"); err == nil {
		t.Fatal("numeric join key accepted")
	}
}

func TestAttrsBelow(t *testing.T) {
	db := chainDB(t, 4, 5, 2) // S1(x1,x2), S2(x2,x3), S3(x3,x4)
	tree, err := Build(db)
	if err != nil {
		t.Fatal(err)
	}
	s1 := tree.NodeByRelation("S1")
	s2 := tree.NodeByRelation("S2")
	s3 := tree.NodeByRelation("S3")
	if s1 == nil || s2 == nil || s3 == nil {
		t.Fatal("missing nodes")
	}
	below := tree.AttrsBelow(s1.ID, s2.ID)
	if len(below) != 2 { // x1, x2
		t.Fatalf("AttrsBelow(S1→S2) = %v", below)
	}
	below = tree.AttrsBelow(s3.ID, s2.ID)
	if len(below) != 2 { // x3, x4
		t.Fatalf("AttrsBelow(S3→S2) = %v", below)
	}
	below = tree.AttrsBelow(s2.ID, s3.ID)
	if len(below) != 3 { // x1,x2,x3
		t.Fatalf("AttrsBelow(S2→S3) = %v", below)
	}
	// Memoized second call returns same content.
	again := tree.AttrsBelow(s2.ID, s3.ID)
	if len(again) != 3 {
		t.Fatal("memoized AttrsBelow differs")
	}
}

func TestMaterializeAllChain(t *testing.T) {
	db := chainDB(t, 4, 20, 5)
	tree, err := Build(db)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := tree.MaterializeAll("flat")
	if err != nil {
		t.Fatal(err)
	}
	// Brute force count of the 3-way join.
	rels := db.Relations()
	c1a := rels[0].Cols[0].Ints
	c1b := rels[0].Cols[1].Ints
	c2a := rels[1].Cols[0].Ints
	c2b := rels[1].Cols[1].Ints
	c3a := rels[2].Cols[0].Ints
	c3b := rels[2].Cols[1].Ints
	want := 0
	for i := range c1a {
		for j := range c2a {
			if c1b[i] != c2a[j] {
				continue
			}
			for k := range c3a {
				if c2b[j] == c3a[k] {
					want++
					_ = c3b
				}
			}
		}
	}
	if flat.Len() != want {
		t.Fatalf("materialized join = %d rows, want %d", flat.Len(), want)
	}
	if len(flat.Attrs) != 4 {
		t.Fatalf("flat schema = %v", flat.Attrs)
	}
}

func TestMaterializeSingleNode(t *testing.T) {
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	rel := data.NewRelation("R", []data.AttrID{a}, []data.Column{data.NewIntColumn([]int64{1, 2})})
	if err := db.AddRelation(rel); err != nil {
		t.Fatal(err)
	}
	tree, err := Build(db)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := tree.MaterializeAll("flat")
	if err != nil {
		t.Fatal(err)
	}
	if flat.Len() != 2 || flat.Name != "flat" {
		t.Fatalf("flat = %q len %d", flat.Name, flat.Len())
	}
}

func TestPathAttrs(t *testing.T) {
	db := chainDB(t, 3, 5, 9)
	tree, err := Build(db)
	if err != nil {
		t.Fatal(err)
	}
	e := tree.Edges()[0]
	shared := tree.PathAttrs(e.Lo, e.Hi)
	if len(shared) != 1 {
		t.Fatalf("PathAttrs = %v", shared)
	}
}

func TestBuildFromRelations(t *testing.T) {
	db := chainDB(t, 5, 5, 11)
	rels := db.Relations()[:2]
	tree, err := BuildFromRelations(db, rels)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(tree.Nodes))
	}
	if tree.DB != db {
		t.Fatal("tree not rebound to original database")
	}
}

// Property: random star schemas are acyclic and build valid trees.
func TestRandomStarSchemas(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		db := data.NewDatabase()
		nDims := 2 + rng.Intn(4)
		keys := make([]data.AttrID, nDims)
		factCols := make([]data.Column, nDims)
		factAttrs := make([]data.AttrID, nDims)
		rows := 20
		for d := 0; d < nDims; d++ {
			keys[d] = db.Attr("k"+string(rune('a'+d)), data.Key)
			vals := make([]int64, rows)
			for i := range vals {
				vals[i] = int64(rng.Intn(5))
			}
			factCols[d] = data.NewIntColumn(vals)
			factAttrs[d] = keys[d]
		}
		fact := data.NewRelation("fact", factAttrs, factCols)
		if err := db.AddRelation(fact); err != nil {
			t.Fatal(err)
		}
		for d := 0; d < nDims; d++ {
			payload := db.Attr("p"+string(rune('a'+d)), data.Numeric)
			kv := make([]int64, 5)
			pv := make([]float64, 5)
			for i := range kv {
				kv[i] = int64(i)
				pv[i] = rng.Float64()
			}
			dim := data.NewRelation("dim"+string(rune('a'+d)),
				[]data.AttrID{keys[d], payload},
				[]data.Column{data.NewIntColumn(kv), data.NewFloatColumn(pv)})
			if err := db.AddRelation(dim); err != nil {
				t.Fatal(err)
			}
		}
		tree, err := Build(db)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := tree.VerifyRunningIntersection(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
