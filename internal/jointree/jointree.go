// Package jointree builds join trees over database schemas (paper §3.1).
//
// An acyclic schema admits a join tree: an undirected tree over the relations
// such that for every pair of nodes, their shared attributes appear in every
// node on the path between them (the running-intersection property). Cyclic
// schemas are handled as in the paper: "we first compute a hypertree
// decomposition and materialize its bags (cycles) to obtain a join tree".
package jointree

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/data"
)

// Node is one join-tree node: a base relation or a materialized bag.
type Node struct {
	ID    int
	Rel   *data.Relation
	Attrs []data.AttrID // sorted schema of Rel
	// Members lists the base-relation names folded into this node: the
	// relation's own name for plain nodes, the merged relations for
	// materialized hypertree bags. The maintenance layer uses it to route a
	// delta against a bag member to the bag node (see Tree.NodeByMember).
	Members []string
}

// IsBag reports whether the node is a materialized hypertree bag (holds the
// join of two or more base relations).
func (n *Node) IsBag() bool { return len(n.Members) > 1 }

// HasAttr reports whether the node's schema contains id.
func (n *Node) HasAttr(id data.AttrID) bool {
	i := sort.Search(len(n.Attrs), func(i int) bool { return n.Attrs[i] >= id })
	return i < len(n.Attrs) && n.Attrs[i] == id
}

// Tree is a join tree over a database.
type Tree struct {
	DB    *data.Database
	Nodes []*Node
	// Adj[u] lists the neighbor node IDs of u.
	Adj [][]int

	// below memoizes, per directed edge (from→to), the union of schemas of
	// all nodes on the `from` side when the edge is removed.
	below map[[2]int][]data.AttrID
}

// Edge is an undirected join-tree edge (Lo < Hi).
type Edge struct{ Lo, Hi int }

// Option configures tree construction.
type Option func(*config)

type config struct {
	maxBagRows int
}

// WithMaxBagRows caps the size of materialized hypertree bags; exceeding it
// is an error rather than an OOM. Default 50M rows.
func WithMaxBagRows(n int) Option { return func(c *config) { c.maxBagRows = n } }

// Build constructs a join tree over all relations of db. If the schema
// hypergraph is cyclic, overlapping relations are greedily merged and
// materialized into bags until the schema becomes acyclic.
func Build(db *data.Database, opts ...Option) (*Tree, error) {
	cfg := config{maxBagRows: 50_000_000}
	for _, o := range opts {
		o(&cfg)
	}
	rels := append([]*data.Relation(nil), db.Relations()...)
	if len(rels) == 0 {
		return nil, fmt.Errorf("jointree: database has no relations")
	}
	members := make([][]string, len(rels))
	for i, r := range rels {
		members[i] = []string{r.Name}
	}

	// Merge bags until the hypergraph is acyclic.
	for !Acyclic(schemas(rels)) {
		i, j := bestMergePair(rels)
		if i < 0 {
			return nil, fmt.Errorf("jointree: cannot decompose cyclic schema")
		}
		bag, err := NaturalJoin(db, rels[i], rels[j], fmt.Sprintf("bag(%s,%s)", rels[i].Name, rels[j].Name))
		if err != nil {
			return nil, fmt.Errorf("jointree: materializing bag: %w", err)
		}
		if bag.Len() > cfg.maxBagRows {
			return nil, fmt.Errorf("jointree: bag %q has %d rows, exceeding cap %d",
				bag.Name, bag.Len(), cfg.maxBagRows)
		}
		rels[i] = bag
		members[i] = append(members[i], members[j]...)
		rels = append(rels[:j], rels[j+1:]...)
		members = append(members[:j], members[j+1:]...)
	}

	// A relation whose schema is contained in another contributes no join
	// structure of its own but must still be a tree node (it filters and
	// aggregates); containment only matters for the GYO test above.
	t := &Tree{DB: db, below: make(map[[2]int][]data.AttrID)}
	for i, r := range rels {
		t.Nodes = append(t.Nodes, &Node{ID: i, Rel: r, Attrs: sortedSchema(r), Members: members[i]})
	}
	t.Adj = make([][]int, len(t.Nodes))
	if err := t.spanningTree(); err != nil {
		return nil, err
	}
	if err := t.VerifyRunningIntersection(); err != nil {
		return nil, fmt.Errorf("jointree: constructed tree invalid: %w", err)
	}
	return t, nil
}

// BuildFromRelations is Build restricted to a subset of db's relations.
func BuildFromRelations(db *data.Database, rels []*data.Relation, opts ...Option) (*Tree, error) {
	sub := data.NewDatabase()
	// Reuse db's attribute registry by re-registering in ID order; AttrIDs
	// are database-global so the IDs carry over verbatim.
	for i := 0; i < db.NumAttrs(); i++ {
		a := db.Attribute(data.AttrID(i))
		sub.Attr(a.Name, a.Kind)
	}
	for _, r := range rels {
		if err := sub.AddRelation(r); err != nil {
			return nil, err
		}
	}
	t, err := Build(sub, opts...)
	if err != nil {
		return nil, err
	}
	t.DB = db
	return t, nil
}

// spanningTree connects nodes via a maximum-weight spanning tree where the
// weight of an edge is the number of shared attributes. For acyclic schemas
// this yields a valid join tree (Bernstein–Goodman). Disconnected schemas
// (cross products) are connected by zero-weight edges.
func (t *Tree) spanningTree() error {
	n := len(t.Nodes)
	if n == 1 {
		return nil
	}
	type cand struct {
		w    int
		u, v int
	}
	var cands []cand
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			w := len(intersect(t.Nodes[u].Attrs, t.Nodes[v].Attrs))
			cands = append(cands, cand{w, u, v})
		}
	}
	// Stable max-weight order; ties broken by smaller node IDs for
	// deterministic trees.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].w > cands[j].w })
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	added := 0
	for _, c := range cands {
		ru, rv := find(c.u), find(c.v)
		if ru == rv {
			continue
		}
		parent[ru] = rv
		t.Adj[c.u] = append(t.Adj[c.u], c.v)
		t.Adj[c.v] = append(t.Adj[c.v], c.u)
		added++
		if added == n-1 {
			break
		}
	}
	if added != n-1 {
		return fmt.Errorf("jointree: failed to connect %d nodes", n)
	}
	return nil
}

// Edges returns the undirected edges (Lo < Hi), sorted.
func (t *Tree) Edges() []Edge {
	var out []Edge
	for u, ns := range t.Adj {
		for _, v := range ns {
			if u < v {
				out = append(out, Edge{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lo != out[j].Lo {
			return out[i].Lo < out[j].Lo
		}
		return out[i].Hi < out[j].Hi
	})
	return out
}

// NodeByRelation returns the node holding the named relation, or nil.
func (t *Tree) NodeByRelation(name string) *Node {
	for _, n := range t.Nodes {
		if n.Rel.Name == name {
			return n
		}
	}
	return nil
}

// NodeByMember returns the node whose member set contains the named base
// relation: the relation's own node, or the materialized bag it was folded
// into. Nil when the name is neither a node relation nor a bag member (trees
// whose nodes were constructed without member metadata fall back to
// NodeByRelation semantics).
func (t *Tree) NodeByMember(name string) *Node {
	for _, n := range t.Nodes {
		if n.Rel.Name == name {
			return n
		}
		for _, m := range n.Members {
			if m == name {
				return n
			}
		}
	}
	return nil
}

// AttrsBelow returns the union of node schemas in the component containing
// `from` when edge (from,to) is removed — ω_T in the paper's view
// definitions. Results are memoized; the returned slice must not be mutated.
func (t *Tree) AttrsBelow(from, to int) []data.AttrID {
	key := [2]int{from, to}
	if got, ok := t.below[key]; ok {
		return got
	}
	set := make(map[data.AttrID]struct{})
	var dfs func(u, block int)
	dfs = func(u, block int) {
		for _, a := range t.Nodes[u].Attrs {
			set[a] = struct{}{}
		}
		for _, v := range t.Adj[u] {
			if v != block {
				dfs(v, u)
			}
		}
	}
	dfs(from, to)
	out := make([]data.AttrID, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	t.below[key] = out
	return out
}

// PathAttrs returns the shared attributes ω_u ∩ ω_v for an edge.
func (t *Tree) PathAttrs(u, v int) []data.AttrID {
	return intersect(t.Nodes[u].Attrs, t.Nodes[v].Attrs)
}

// VerifyRunningIntersection checks the join-tree property: for every pair of
// nodes, shared attributes appear on every node along the connecting path.
func (t *Tree) VerifyRunningIntersection() error {
	n := len(t.Nodes)
	// parentOf computes the BFS parents from a root.
	parentOf := func(root int) []int {
		par := make([]int, n)
		for i := range par {
			par[i] = -1
		}
		par[root] = root
		queue := []int{root}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range t.Adj[u] {
				if par[v] == -1 {
					par[v] = u
					queue = append(queue, v)
				}
			}
		}
		return par
	}
	for u := 0; u < n; u++ {
		par := parentOf(u)
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if par[v] == -1 {
				return fmt.Errorf("nodes %d and %d disconnected", u, v)
			}
			shared := intersect(t.Nodes[u].Attrs, t.Nodes[v].Attrs)
			for w := par[v]; w != u; w = par[w] {
				for _, a := range shared {
					if !t.Nodes[w].HasAttr(a) {
						return fmt.Errorf("attribute %d shared by nodes %d,%d missing from path node %d",
							a, u, v, w)
					}
				}
			}
		}
	}
	return nil
}

// String renders the tree in indented form for debugging, rooted at node 0.
func (t *Tree) String() string {
	var b strings.Builder
	var dfs func(u, from, depth int)
	dfs = func(u, from, depth int) {
		fmt.Fprintf(&b, "%s%s(%s)\n", strings.Repeat("  ", depth),
			t.Nodes[u].Rel.Name, strings.Join(t.DB.AttrNames(t.Nodes[u].Attrs), ","))
		for _, v := range t.Adj[u] {
			if v != from {
				dfs(v, u, depth+1)
			}
		}
	}
	if len(t.Nodes) > 0 {
		dfs(0, -1, 0)
	}
	return b.String()
}

func schemas(rels []*data.Relation) [][]data.AttrID {
	out := make([][]data.AttrID, len(rels))
	for i, r := range rels {
		out[i] = sortedSchema(r)
	}
	return out
}

func sortedSchema(r *data.Relation) []data.AttrID {
	s := append([]data.AttrID(nil), r.Attrs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func intersect(a, b []data.AttrID) []data.AttrID {
	var out []data.AttrID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// bestMergePair picks the pair of relations with maximal schema overlap (≥1)
// to merge into a bag; (-1,-1) if no relations overlap.
func bestMergePair(rels []*data.Relation) (int, int) {
	bi, bj, best := -1, -1, 0
	ss := schemas(rels)
	for i := 0; i < len(rels); i++ {
		for j := i + 1; j < len(rels); j++ {
			w := len(intersect(ss[i], ss[j]))
			if w > best {
				best, bi, bj = w, i, j
			}
		}
	}
	return bi, bj
}
