package jointree

import "repro/internal/data"

// Acyclic reports whether the schema hypergraph is α-acyclic, using the
// GYO (Graham–Yu–Özsoyoğlu) ear-removal algorithm: repeatedly
//
//  1. delete attributes that occur in exactly one hyperedge, and
//  2. delete hyperedges that are contained in another hyperedge,
//
// until no rule applies. The hypergraph is acyclic iff at most one (empty)
// hyperedge remains.
func Acyclic(edges [][]data.AttrID) bool {
	// Work on attribute sets.
	sets := make([]map[data.AttrID]bool, 0, len(edges))
	for _, e := range edges {
		s := make(map[data.AttrID]bool, len(e))
		for _, a := range e {
			s[a] = true
		}
		sets = append(sets, s)
	}

	for {
		changed := false

		// Rule 1: remove attributes unique to one edge.
		count := make(map[data.AttrID]int)
		for _, s := range sets {
			for a := range s {
				count[a]++
			}
		}
		for _, s := range sets {
			for a := range s {
				if count[a] == 1 {
					delete(s, a)
					changed = true
				}
			}
		}

		// Rule 2: remove edges contained in another edge.
		for i := 0; i < len(sets); i++ {
			for j := 0; j < len(sets); j++ {
				if i == j {
					continue
				}
				if contains(sets[j], sets[i]) {
					sets = append(sets[:i], sets[i+1:]...)
					changed = true
					i--
					break
				}
			}
		}

		if len(sets) <= 1 {
			return true
		}
		if !changed {
			return false
		}
	}
}

// contains reports whether sub ⊆ super. An edge equal to another counts as
// contained (GYO removes duplicates).
func contains(super, sub map[data.AttrID]bool) bool {
	if len(sub) > len(super) {
		return false
	}
	for a := range sub {
		if !super[a] {
			return false
		}
	}
	return true
}
