package jointree

import (
	"fmt"

	"repro/internal/data"
)

// NaturalJoin materializes the natural join of two relations as a new
// relation named name. Join attributes are the schema intersection and must
// be discrete; with an empty intersection the result is the cross product.
// It is used to materialize hypertree bags and by the baseline engine to
// materialize full join results.
func NaturalJoin(db *data.Database, left, right *data.Relation, name string) (*data.Relation, error) {
	shared := intersect(sortedSchema(left), sortedSchema(right))
	for _, a := range shared {
		if !db.Attribute(a).Kind.Discrete() {
			return nil, fmt.Errorf("join on numeric attribute %q", db.Attribute(a).Name)
		}
	}

	// Build side: hash the smaller relation on the shared key.
	build, probe := left, right
	if right.Len() < left.Len() {
		build, probe = right, left
	}
	buildKeyCols := make([][]int64, len(shared))
	probeKeyCols := make([][]int64, len(shared))
	for i, a := range shared {
		buildKeyCols[i] = build.MustCol(a).Ints
		probeKeyCols[i] = probe.MustCol(a).Ints
	}
	ht := make(map[string][]int32, build.Len())
	buf := make([]byte, 0, 8*len(shared))
	for i := 0; i < build.Len(); i++ {
		buf = buf[:0]
		for _, kc := range buildKeyCols {
			buf = data.AppendKey(buf, kc[i])
		}
		k := string(buf)
		ht[k] = append(ht[k], int32(i))
	}

	// Output schema: probe attrs then build-only attrs (stable, join keys
	// appear once).
	outAttrs := append([]data.AttrID(nil), probe.Attrs...)
	var buildOnly []data.AttrID
	for _, a := range build.Attrs {
		if !hasAttr(shared, a) {
			buildOnly = append(buildOnly, a)
			outAttrs = append(outAttrs, a)
		}
	}

	// Probe and emit row index pairs.
	var probeIdx, buildIdx []int32
	for i := 0; i < probe.Len(); i++ {
		buf = buf[:0]
		for _, kc := range probeKeyCols {
			buf = data.AppendKey(buf, kc[i])
		}
		for _, bi := range ht[string(buf)] {
			probeIdx = append(probeIdx, int32(i))
			buildIdx = append(buildIdx, bi)
		}
	}

	cols := make([]data.Column, 0, len(outAttrs))
	for _, a := range probe.Attrs {
		cols = append(cols, gatherCol(probe.MustCol(a), probeIdx))
	}
	for _, a := range buildOnly {
		cols = append(cols, gatherCol(build.MustCol(a), buildIdx))
	}
	return data.NewRelation(name, outAttrs, cols), nil
}

// MaterializeAll joins every relation of the tree into one flat relation,
// following tree edges so every intermediate join has shared keys. This is
// the "training dataset materialization" step of the structure-agnostic
// competitors (paper §4.2 and Table 1's "tuples in join result").
func (t *Tree) MaterializeAll(name string) (*data.Relation, error) {
	if len(t.Nodes) == 0 {
		return nil, fmt.Errorf("jointree: empty tree")
	}
	// Join in BFS order from node 0 so each new relation shares keys with
	// the accumulated result.
	visited := make([]bool, len(t.Nodes))
	order := []int{0}
	visited[0] = true
	for qi := 0; qi < len(order); qi++ {
		for _, v := range t.Adj[order[qi]] {
			if !visited[v] {
				visited[v] = true
				order = append(order, v)
			}
		}
	}
	acc := t.Nodes[order[0]].Rel
	for _, id := range order[1:] {
		var err error
		acc, err = NaturalJoin(t.DB, acc, t.Nodes[id].Rel, name)
		if err != nil {
			return nil, err
		}
	}
	if acc == t.Nodes[order[0]].Rel {
		// Single-node tree: return a shallow copy with the new name so
		// callers can mutate sort order safely.
		acc = data.NewRelation(name, acc.Attrs, acc.Cols)
	}
	return acc, nil
}

func hasAttr(set []data.AttrID, a data.AttrID) bool {
	for _, s := range set {
		if s == a {
			return true
		}
	}
	return false
}

func gatherCol(c data.Column, idx []int32) data.Column {
	if c.IsInt() {
		out := make([]int64, len(idx))
		for i, p := range idx {
			out[i] = c.Ints[p]
		}
		return data.NewIntColumn(out)
	}
	out := make([]float64, len(idx))
	for i, p := range idx {
		out[i] = c.Floats[p]
	}
	return data.NewFloatColumn(out)
}
