package moo

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/baseline"
	"repro/internal/data"
	"repro/internal/jointree"
	"repro/internal/query"
)

// starQueries is a small mixed batch over the starDB fixture touching every
// relation: scalar count, dimension-grouped sums, and a cross-relation
// product.
func starQueries(ids map[string]data.AttrID) []*query.Query {
	return []*query.Query{
		query.NewQuery("count", nil, query.CountAgg()),
		query.NewQuery("byc1", []data.AttrID{ids["c1"]}, query.SumAgg(ids["m"]), query.SumAgg(ids["p1"])),
		query.NewQuery("byk2", []data.AttrID{ids["k2"]}, query.SumProdAgg(ids["m"], ids["p0"])),
	}
}

// dimensionDelta updates dimension D1: re-prices two keys (delete the old
// tuples, insert replacements) — the classic dimension-table update.
func dimensionDelta(t *testing.T, db *data.Database) data.Delta {
	t.Helper()
	rel := db.Relation("D1")
	pick := []int{2, 5}
	old := make([][]int64, 2)
	oldP := make([]float64, len(pick))
	for c := 0; c < 2; c++ {
		old[c] = make([]int64, len(pick))
		for i, r := range pick {
			old[c][i] = rel.Cols[c].Ints[r]
		}
	}
	for i, r := range pick {
		oldP[i] = rel.Cols[2].Floats[r]
	}
	newP := make([]float64, len(pick))
	for i, p := range oldP {
		newP[i] = p + 1.5
	}
	return data.Delta{
		Relation: "D1",
		Deletes:  []data.Column{data.NewIntColumn(old[0]), data.NewIntColumn(old[1]), data.NewFloatColumn(oldP)},
		Inserts:  []data.Column{data.NewIntColumn(old[0]), data.NewIntColumn(old[1]), data.NewFloatColumn(newP)},
	}
}

// TestApplySemiJoinMatchesFullScan applies the same dimension-table delta
// under semi-join-restricted and full-scan maintenance and demands
// bit-identical view DAGs: the restriction drops only rows that cannot
// contribute, so even the float accumulation order of the retained rows is
// unchanged.
func TestApplySemiJoinMatchesFullScan(t *testing.T) {
	db, ids := starDB(t, 2000, 11)
	tree, err := jointree.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	queries := starQueries(ids)
	opts := Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 1, TrackCounts: true}
	optsSemi := opts
	optsSemi.SemiJoin = true
	semi := NewEngineWithTree(db, tree, optsSemi)
	full := NewEngineWithTree(db, tree, opts)
	semiRes, err := semi.Run(queries)
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := full.Run(queries)
	if err != nil {
		t.Fatal(err)
	}

	for step := 0; step < 3; step++ {
		d := dimensionDelta(t, db)
		if err := db.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
		var semiStats, fullStats *ApplyStats
		semiRes, semiStats, err = semi.Apply(semiRes, d)
		if err != nil {
			t.Fatal(err)
		}
		fullRes, fullStats, err = full.Apply(fullRes, d)
		if err != nil {
			t.Fatal(err)
		}

		if semiStats.SemiJoinGroups == 0 {
			t.Fatalf("step %d: no semi-join-restricted groups (stats %+v)", step, semiStats)
		}
		if semiStats.ScannedRows >= semiStats.BaseRows {
			t.Fatalf("step %d: semi-join scanned %d of %d base rows", step, semiStats.ScannedRows, semiStats.BaseRows)
		}
		if fullStats.SemiJoinGroups != 0 || fullStats.ScannedRows != fullStats.BaseRows {
			t.Fatalf("step %d: full-scan engine restricted its scans (stats %+v)", step, fullStats)
		}
		if semiStats.DirtyGroups != fullStats.DirtyGroups || semiStats.DirtyViews != fullStats.DirtyViews {
			t.Fatalf("step %d: schedules diverge: %+v vs %+v", step, semiStats, fullStats)
		}

		for vid := range semiRes.Materialized {
			sm := viewToMap(semiRes.Materialized[vid])
			fm := viewToMap(fullRes.Materialized[vid])
			if !reflect.DeepEqual(sm, fm) {
				t.Fatalf("step %d: view %d differs between semi-join and full-scan maintenance", step, vid)
			}
		}
	}

	// The maintained outputs must also match the baseline over the final state.
	base, err := baseline.New(db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run(queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		compareResults(t, "semi/"+queries[qi].Name, semiRes.Results[qi], want[qi])
	}
}

// triangleDB builds the cyclic R(a,b,w) ⋈ S(b,c) ⋈ T(a,c) schema whose join
// tree folds R and S into a materialized bag.
func triangleDB(t *testing.T, seed int64) (*data.Database, []data.AttrID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	b := db.Attr("b", data.Key)
	c := db.Attr("c", data.Key)
	w := db.Attr("w", data.Numeric)
	mk := func(name string, x, y data.AttrID, withW bool) {
		n := 25
		xv := make([]int64, n)
		yv := make([]int64, n)
		wv := make([]float64, n)
		for i := 0; i < n; i++ {
			xv[i] = int64(rng.Intn(4))
			yv[i] = int64(rng.Intn(4))
			wv[i] = float64(rng.Intn(5)) + 0.5
		}
		attrs := []data.AttrID{x, y}
		cols := []data.Column{data.NewIntColumn(xv), data.NewIntColumn(yv)}
		if withW {
			attrs = append(attrs, w)
			cols = append(cols, data.NewFloatColumn(wv))
		}
		if err := db.AddRelation(data.NewRelation(name, attrs, cols)); err != nil {
			t.Fatal(err)
		}
	}
	mk("R", a, b, true)
	mk("S", b, c, false)
	mk("T", a, c, false)
	return db, []data.AttrID{a, b, c, w}
}

// TestApplyBagMemberDelta maintains a session through updates against a
// relation folded into a materialized hypertree bag: the delta must be
// expanded over the bag's sibling members, the bag relation kept in sync,
// and the maintained outputs must match both the brute-force baseline and a
// from-scratch recompute over the same tree.
func TestApplyBagMemberDelta(t *testing.T) {
	db, attrs := triangleDB(t, 5)
	a, w := attrs[0], attrs[3]
	queries := []*query.Query{
		query.NewQuery("count", nil, query.CountAgg()),
		query.NewQuery("bya", []data.AttrID{a}, query.SumAgg(w)),
	}
	opts := Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 1, TrackCounts: true, SemiJoin: true}
	eng, err := NewEngine(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	bagNode := eng.Tree().NodeByMember("R")
	if bagNode == nil || !bagNode.IsBag() {
		t.Fatalf("expected R folded into a bag; tree:\n%s", eng.Tree())
	}
	res, err := eng.Run(queries)
	if err != nil {
		t.Fatal(err)
	}

	// Step 1: insert two fresh R tuples and delete one existing one.
	rel := db.Relation("R")
	del := []data.Column{
		data.NewIntColumn([]int64{rel.Cols[0].Ints[0]}),
		data.NewIntColumn([]int64{rel.Cols[1].Ints[0]}),
		data.NewFloatColumn([]float64{rel.Cols[2].Floats[0]}),
	}
	ins := []data.Column{
		data.NewIntColumn([]int64{1, 3}),
		data.NewIntColumn([]int64{2, 0}),
		data.NewFloatColumn([]float64{9.5, 0.25}),
	}
	steps := []data.Delta{
		{Relation: "R", Inserts: ins, Deletes: del},
		// Step 2: delete one of the rows inserted in step 1.
		{Relation: "R", Deletes: []data.Column{
			data.NewIntColumn([]int64{1}), data.NewIntColumn([]int64{2}), data.NewFloatColumn([]float64{9.5}),
		}},
	}
	for si, d := range steps {
		if err := db.ApplyDelta(d); err != nil {
			t.Fatalf("step %d: %v", si, err)
		}
		var stats *ApplyStats
		res, stats, err = eng.Apply(res, d)
		if err != nil {
			t.Fatalf("step %d: %v", si, err)
		}
		if stats.Bag != bagNode.Rel.Name {
			t.Fatalf("step %d: stats.Bag = %q, want %q", si, stats.Bag, bagNode.Rel.Name)
		}
		if stats.Relation != "R" {
			t.Fatalf("step %d: stats.Relation = %q", si, stats.Relation)
		}

		base, err := baseline.New(db)
		if err != nil {
			t.Fatal(err)
		}
		want, err := base.Run(queries)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range queries {
			compareResults(t, queries[qi].Name, res.Results[qi], want[qi])
		}

		// The bag relation must mirror its members: a from-scratch run over
		// the same tree agrees on every materialized view.
		fresh := NewEngineWithTree(db, eng.Tree(), opts)
		full, err := fresh.RunPlan(res.Plan)
		if err != nil {
			t.Fatalf("step %d: %v", si, err)
		}
		for vid := range full.Materialized {
			gm := viewToMap(res.Materialized[vid])
			wm := viewToMap(full.Materialized[vid])
			if len(gm) != len(wm) {
				t.Fatalf("step %d: view %d has %d rows maintained, %d recomputed", si, vid, len(gm), len(wm))
			}
			for key, wrow := range wm {
				grow, ok := gm[key]
				if !ok {
					t.Fatalf("step %d: view %d missing key", si, vid)
				}
				for col := range wrow {
					if !closeEnough(grow[col], wrow[col]) {
						t.Fatalf("step %d: view %d col %d: got %g want %g", si, vid, col, grow[col], wrow[col])
					}
				}
			}
		}
	}
}

// TestApplyBagDeltaJoinsNothing: a member insert whose keys join no sibling
// rows expands to an empty bag delta — the cached result must be returned
// unchanged and stay consistent with a recompute.
func TestApplyBagDeltaJoinsNothing(t *testing.T) {
	db, attrs := triangleDB(t, 9)
	a, w := attrs[0], attrs[3]
	queries := []*query.Query{query.NewQuery("bya", []data.AttrID{a}, query.SumAgg(w))}
	opts := Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 1, TrackCounts: true, SemiJoin: true}
	eng, err := NewEngine(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(queries)
	if err != nil {
		t.Fatal(err)
	}
	d := data.Delta{Relation: "R", Inserts: []data.Column{
		data.NewIntColumn([]int64{77}), data.NewIntColumn([]int64{88}), data.NewFloatColumn([]float64{1.5}),
	}}
	if err := db.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	res2, stats, err := eng.Apply(res, d)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res {
		t.Fatal("empty expanded delta must return the cached result")
	}
	if stats.Bag == "" || stats.DirtyGroups != 0 {
		t.Fatalf("stats %+v", stats)
	}
	base, err := baseline.New(db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run(queries)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, "bya", res2.Results[0], want[0])
}
