package moo

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/ivm"
)

// ErrNotIncremental marks deltas the maintenance layer cannot handle
// incrementally (e.g. relations folded into a materialized hypertree bag);
// callers should fall back to a full recompute.
var ErrNotIncremental = errors.New("moo: delta not incrementally maintainable")

// ApplyStats reports what one incremental maintenance pass did.
type ApplyStats struct {
	Relation string
	Inserted int
	Deleted  int
	// DirtyGroups of TotalGroups were re-evaluated (over delta tuples at
	// the changed node, over the base relation with substituted delta
	// inputs elsewhere); DirtyViews of TotalViews were re-merged.
	DirtyGroups int
	TotalGroups int
	DirtyViews  int
	TotalViews  int
	Elapsed     time.Duration
}

// Apply incrementally maintains a previous batch result against a delta that
// has ALREADY been applied to the base relation (use lmfao.Session for the
// combined mutate-and-maintain path). It re-evaluates only the dirty subset
// of the view DAG per internal/ivm's schedule and merges the deltas into the
// cached views, returning a new BatchResult; prev is left untouched.
//
// The result must have been produced by an engine with Options.TrackCounts:
// the hidden per-view tuple counts are what make row deletion exact.
func (e *Engine) Apply(prev *BatchResult, d data.Delta) (*BatchResult, *ApplyStats, error) {
	start := time.Now()
	if prev == nil || prev.Plan == nil || prev.Materialized == nil {
		return nil, nil, fmt.Errorf("moo: Apply needs a cached BatchResult from Run")
	}
	plan := prev.Plan
	if plan.CountCol == nil {
		return nil, nil, fmt.Errorf("moo: Apply needs a plan built with TrackCounts (set Options.TrackCounts)")
	}
	node := e.tree.NodeByRelation(d.Relation)
	if node == nil {
		return nil, nil, fmt.Errorf("%w: relation %q is not a join-tree node (materialized bag member?)", ErrNotIncremental, d.Relation)
	}
	if err := d.Validate(node.Rel); err != nil {
		return nil, nil, err
	}
	stats := &ApplyStats{
		Relation:    d.Relation,
		Inserted:    d.InsertRows(),
		Deleted:     d.DeleteRows(),
		TotalGroups: len(plan.Groups),
		TotalViews:  len(plan.Views),
	}
	if d.Empty() {
		stats.Elapsed = time.Since(start)
		return prev, stats, nil
	}
	sched, err := ivm.Analyze(plan, node.ID)
	if err != nil {
		return nil, nil, err
	}
	stats.DirtyGroups = len(sched.Steps)
	stats.DirtyViews = len(sched.DirtyViews)

	var insRel, delRel *data.Relation
	if d.InsertRows() > 0 {
		insRel = data.NewRelation(d.Relation, node.Rel.Attrs, d.Inserts)
	}
	if d.DeleteRows() > 0 {
		delRel = data.NewRelation(d.Relation, node.Rel.Attrs, d.Deletes)
	}

	// work starts as the cached state; as steps complete, dirty views are
	// replaced by their deltas so later steps bind the delta views. Clean
	// inputs keep reading the cache (they are never dirty).
	work := append([]*ViewData(nil), prev.Materialized...)
	deltas := make([]*ViewData, len(plan.Views))
	for _, st := range sched.Steps {
		sub := &core.Group{ID: st.Group, Node: st.Node, Views: st.Dirty}
		if st.AtDelta {
			ins, del, err := e.runDeltaScans(plan, sub, work, insRel, delRel)
			if err != nil {
				return nil, nil, err
			}
			for _, vid := range st.Dirty {
				v := plan.Views[vid]
				deltas[vid] = diffViews(v, pickView(ins, vid), pickView(del, vid), viewTarget(plan, v))
			}
		} else {
			empty := true
			for _, in := range st.DeltaInputs {
				if deltas[in].NumRows() > 0 {
					empty = false
					break
				}
			}
			if empty {
				// Nothing flows in; the step's deltas are empty views.
				for _, vid := range st.Dirty {
					v := plan.Views[vid]
					deltas[vid] = newViewBuilder(v.GroupBy, len(v.Cols), false).finalize(viewTarget(plan, v))
				}
			} else {
				scratch := append([]*ViewData(nil), work...)
				gp, err := e.compileGroupCached(plan, sub)
				if err != nil {
					return nil, nil, err
				}
				if err := e.execGroup(gp, scratch, nil, false); err != nil {
					return nil, nil, err
				}
				for _, vid := range st.Dirty {
					deltas[vid] = scratch[vid]
				}
			}
		}
		for _, vid := range st.Dirty {
			work[vid] = deltas[vid]
		}
	}

	// Merge the deltas into a fresh materialized state.
	mat := append([]*ViewData(nil), prev.Materialized...)
	for _, vid := range sched.DirtyViews {
		v := plan.Views[vid]
		keepScalar := v.IsOutput() && len(v.GroupBy) == 0
		mat[vid] = mergeDelta(prev.Materialized[vid], deltas[vid], plan.CountCol[vid], viewTarget(plan, v), keepScalar)
	}
	res := &BatchResult{
		Plan:         plan,
		Results:      make([]*ViewData, len(plan.Queries)),
		Materialized: mat,
	}
	for qi, vid := range plan.OutputView {
		res.Results[qi] = mat[vid]
		res.OutputBytes += mat[vid].SizeBytes()
	}
	for _, v := range plan.Views {
		if !v.IsOutput() && mat[v.ID] != nil {
			res.ViewBytes += mat[v.ID].SizeBytes()
		}
	}
	res.Elapsed = time.Since(start)
	stats.Elapsed = res.Elapsed
	return res, stats, nil
}

// compileGroupCached memoizes compiled group plans per (plan, view subset)
// for the Apply path. The cached plan's statistics-driven attribute order
// freezes at first compile; later deltas shift statistics but never
// correctness (the order is a performance heuristic).
func (e *Engine) compileGroupCached(plan *core.Plan, g *core.Group) (*groupPlan, error) {
	key := fmt.Sprintf("%p|%d|%v", plan, g.ID, g.Views)
	e.mu.Lock()
	gp, ok := e.gpCache[key]
	e.mu.Unlock()
	if ok {
		return gp, nil
	}
	gp, err := compileGroup(plan, g, e.opts.Compiled)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.gpCache[key] = gp
	e.mu.Unlock()
	return gp, nil
}

// runDeltaScans evaluates the group once over the inserted tuples and once
// over the deleted tuples (either may be nil), against cached input views.
// The group compiles once and scans both blocks.
func (e *Engine) runDeltaScans(plan *core.Plan, g *core.Group, work []*ViewData, insRel, delRel *data.Relation) (ins, del []*ViewData, err error) {
	gp, err := e.compileGroupCached(plan, g)
	if err != nil {
		return nil, nil, err
	}
	if insRel != nil {
		ins = append([]*ViewData(nil), work...)
		if err := e.execGroup(gp, ins, insRel, false); err != nil {
			return nil, nil, err
		}
	}
	if delRel != nil {
		del = append([]*ViewData(nil), work...)
		if err := e.execGroup(gp, del, delRel, false); err != nil {
			return nil, nil, err
		}
	}
	return ins, del, nil
}

func pickView(vs []*ViewData, vid int) *ViewData {
	if vs == nil {
		return nil
	}
	return vs[vid]
}

// viewTarget returns the consumer node schema finalize needs (nil for
// application outputs).
func viewTarget(plan *core.Plan, v *core.View) []data.AttrID {
	if v.IsOutput() {
		return nil
	}
	return plan.Tree.Nodes[v.To].Attrs
}

// addViewInto folds src's rows into b, scaling every aggregate by sign.
func addViewInto(b *viewBuilder, src *ViewData, sign float64) {
	if src == nil {
		return
	}
	key := make([]int64, len(src.GroupBy))
	for i := 0; i < src.rows; i++ {
		for c := range key {
			key[c] = src.Keys[c][i]
		}
		r := b.row(key)
		for col := 0; col < src.Stride; col++ {
			b.add(r, col, sign*src.Val(i, col))
		}
	}
}

// diffViews combines the insert-scan and delete-scan results of one view
// into its delta: deletes are negative-weight inserts in the sum-product
// semiring.
func diffViews(v *core.View, ins, del *ViewData, target []data.AttrID) *ViewData {
	b := newViewBuilder(v.GroupBy, len(v.Cols), false)
	addViewInto(b, ins, 1)
	addViewInto(b, del, -1)
	return b.finalize(target)
}

// mergeDelta folds a view's delta into its cached data and re-finalizes.
// Rows whose tuple count reaches zero are dropped: every join tuple behind
// the key was deleted, so a full recompute would not emit it. Counts are
// integer-valued, so the float64 zero test is exact. Scalar application
// outputs always keep their single row (SQL semantics).
func mergeDelta(old, delta *ViewData, countCol int, target []data.AttrID, keepScalar bool) *ViewData {
	if delta == nil || delta.NumRows() == 0 {
		return old
	}
	// Finalized internal views merge by a sorted two-pointer walk (no
	// hashing); application outputs (unsorted) patch values in place via a
	// hash index when the row set is unchanged, else rebuild.
	if merged := mergeSorted(old, delta, countCol); merged != nil {
		return merged
	}
	if fast := mergeFast(old, delta, countCol); fast != nil {
		return fast
	}
	b := newViewBuilder(old.GroupBy, old.Stride, false)
	addViewInto(b, old, 1)
	addViewInto(b, delta, 1)
	merged := b.vd
	if !keepScalar {
		merged = dropZeroCountRows(merged, countCol)
	}
	return (&viewBuilder{vd: merged}).finalize(target)
}

// mergeSorted merges a finalized internal view with its (identically
// finalized, hence identically sorted) delta by a two-pointer walk: no
// hashing, no re-sort. Rows whose merged tuple count is zero are dropped;
// the consumer range index is rebuilt in the same pass. Returns nil for
// application outputs (not sorted; the builder path handles them).
func mergeSorted(old, delta *ViewData, countCol int) *ViewData {
	if old.index == nil || delta.index == nil {
		return nil
	}
	cmpPos := append(append([]int(nil), old.skeyPos...), old.extraPos...)
	cmp := func(i, j int) int { // old row i vs delta row j
		for _, c := range cmpPos {
			a, b := old.Keys[c][i], delta.Keys[c][j]
			if a != b {
				if a < b {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	out := &ViewData{
		GroupBy:  old.GroupBy,
		Keys:     make([][]int64, len(old.GroupBy)),
		Vals:     make([]float64, 0, len(old.Vals)+len(delta.Vals)),
		Stride:   old.Stride,
		skeyPos:  old.skeyPos,
		extraPos: old.extraPos,
	}
	for c := range out.Keys {
		out.Keys[c] = make([]int64, 0, old.rows+delta.rows)
	}
	appendRow := func(src *ViewData, i int, add *ViewData, j int) {
		for c := range out.Keys {
			out.Keys[c] = append(out.Keys[c], src.Keys[c][i])
		}
		base := len(out.Vals)
		out.Vals = append(out.Vals, src.Vals[i*src.Stride:(i+1)*src.Stride]...)
		if add != nil {
			dst := out.Vals[base:]
			src2 := add.Vals[j*add.Stride : (j+1)*add.Stride]
			for c := range dst {
				dst[c] += src2[c]
			}
		}
		out.rows++
	}
	i, j := 0, 0
	for i < old.rows || j < delta.rows {
		switch {
		case j == delta.rows:
			appendRow(old, i, nil, 0)
			i++
		case i == old.rows:
			if delta.Val(j, countCol) != 0 {
				appendRow(delta, j, nil, 0)
			}
			j++
		default:
			switch cmp(i, j) {
			case -1:
				appendRow(old, i, nil, 0)
				i++
			case 1:
				if delta.Val(j, countCol) != 0 {
					appendRow(delta, j, nil, 0)
				}
				j++
			default:
				if old.Val(i, countCol)+delta.Val(j, countCol) != 0 {
					appendRow(old, i, delta, j)
				}
				i++
				j++
			}
		}
	}
	// Rebuild the consumer-key range index over the (still sorted) rows.
	out.index = make(map[string][2]int32, out.rows)
	buf := make([]byte, 0, 8*len(out.skeyPos))
	start := 0
	for i := 1; i <= out.rows; i++ {
		if i < out.rows && sameSKey(out, i-1, i) {
			continue
		}
		buf = buf[:0]
		for _, c := range out.skeyPos {
			buf = data.AppendKey(buf, out.Keys[c][start])
		}
		out.index[string(buf)] = [2]int32{int32(start), int32(i)}
		start = i
	}
	return out
}

// mergeFast is the common-case merge: every delta key already exists in the
// cached view and no tuple count reaches zero, so the row set is unchanged.
// The result shares the cached view's key columns, range index and full-key
// index; only the aggregate values are copied and patched — skipping the
// re-hash, re-sort and re-index of the general path. Returns nil when the
// preconditions fail.
func mergeFast(old, delta *ViewData, countCol int) *ViewData {
	if old.rows == 0 || delta.rows > old.rows {
		return nil
	}
	idx := old.fullKeyIndex()
	rows := make([]int32, delta.rows)
	buf := make([]byte, 0, 8*len(delta.GroupBy))
	for i := 0; i < delta.rows; i++ {
		buf = buf[:0]
		for c := range delta.GroupBy {
			buf = data.AppendKey(buf, delta.Keys[c][i])
		}
		r, ok := idx[string(buf)]
		if !ok {
			return nil // new group-by key: general path inserts it
		}
		if old.Val(int(r), countCol)+delta.Val(i, countCol) == 0 {
			return nil // key vanishes: general path drops it
		}
		rows[i] = r
	}
	out := &ViewData{
		GroupBy:  old.GroupBy,
		Keys:     old.Keys,
		Vals:     append([]float64(nil), old.Vals...),
		Stride:   old.Stride,
		rows:     old.rows,
		skeyPos:  old.skeyPos,
		extraPos: old.extraPos,
		index:    old.index,
		fullIdx:  idx,
	}
	for i, r := range rows {
		dst := out.Vals[int(r)*out.Stride : (int(r)+1)*out.Stride]
		src := delta.Vals[i*delta.Stride : (i+1)*delta.Stride]
		for c := range dst {
			dst[c] += src[c]
		}
	}
	return out
}

// dropZeroCountRows filters rows whose tuple count is exactly zero.
func dropZeroCountRows(v *ViewData, countCol int) *ViewData {
	keep := make([]int, 0, v.rows)
	for i := 0; i < v.rows; i++ {
		if v.Val(i, countCol) != 0 {
			keep = append(keep, i)
		}
	}
	if len(keep) == v.rows {
		return v
	}
	out := &ViewData{
		GroupBy: v.GroupBy,
		Keys:    make([][]int64, len(v.GroupBy)),
		Vals:    make([]float64, 0, len(keep)*v.Stride),
		Stride:  v.Stride,
		rows:    len(keep),
	}
	for c := range out.Keys {
		col := make([]int64, len(keep))
		for j, i := range keep {
			col[j] = v.Keys[c][i]
		}
		out.Keys[c] = col
	}
	for _, i := range keep {
		out.Vals = append(out.Vals, v.Vals[i*v.Stride:(i+1)*v.Stride]...)
	}
	return out
}
