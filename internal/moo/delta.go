package moo

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/ivm"
	"repro/internal/jointree"
)

// ErrNotIncremental marks deltas the maintenance layer cannot handle
// incrementally (e.g. relations absent from the join tree); callers should
// fall back to a full recompute.
var ErrNotIncremental = errors.New("moo: delta not incrementally maintainable")

// ApplyStats reports what one incremental maintenance pass did.
type ApplyStats struct {
	Relation string
	Inserted int
	Deleted  int
	// Bag names the materialized hypertree bag maintained in place of
	// Relation when the delta targeted a base relation folded into one ("");
	// the delta was expanded by joining it with the bag's other members.
	Bag string
	// DirtyGroups of TotalGroups were re-evaluated (over delta tuples at
	// the changed node, over the base relation with substituted delta
	// inputs elsewhere); DirtyViews of TotalViews were re-merged.
	DirtyGroups int
	TotalGroups int
	DirtyViews  int
	TotalViews  int
	// SemiJoinGroups of the dirty groups at unchanged nodes were evaluated
	// over an index-restricted row subset (Options.SemiJoin); FullScanGroups
	// scanned their full base relation. At-delta groups are in neither.
	SemiJoinGroups int
	FullScanGroups int
	// KernelGroups counts dirty groups executed through compiled maintenance
	// kernels (Options.CompiledKernels); IDScanGroups of those ran a
	// restricted scan driven by a row-id batch — semi-join probes resolved
	// against the engine's persistent sorted copy of the base, the matched
	// positions walked through id indirection — instead of gathering and
	// re-sorting a subset copy per group.
	KernelGroups int
	IDScanGroups int
	// ScannedRows totals the base rows actually scanned at unchanged dirty
	// nodes; BaseRows what a full-scan maintenance pass would have scanned.
	ScannedRows int
	BaseRows    int
	// ScanElapsed covers delta evaluation (the per-step scans), MergeElapsed
	// folding the deltas into the cached views; Elapsed is the whole pass.
	ScanElapsed  time.Duration
	MergeElapsed time.Duration
	Elapsed      time.Duration
}

// Apply incrementally maintains a previous batch result against a delta that
// has ALREADY been applied to the base relation (use lmfao.Session for the
// combined mutate-and-maintain path). It re-evaluates only the dirty subset
// of the view DAG per internal/ivm's schedule and merges the deltas into the
// cached views, returning a new BatchResult; prev is left untouched.
//
// With Options.SemiJoin, scans at unchanged nodes cover only the base rows
// that join the delta's keys (gathered through lazily built data.KeyIndex
// indexes) instead of the full relation.
//
// A delta against a base relation folded into a materialized hypertree bag
// is expanded into the bag's delta (joined with the bag's other members) and
// maintained at the bag node; as a side effect the bag's materialized
// relation is brought in sync with its already-mutated member.
//
// The result must have been produced by an engine with Options.TrackCounts:
// the hidden per-view tuple counts are what make row deletion exact.
func (e *Engine) Apply(prev *BatchResult, d data.Delta) (*BatchResult, *ApplyStats, error) {
	start := time.Now()
	if prev == nil || prev.Plan == nil || prev.Materialized == nil {
		return nil, nil, fmt.Errorf("moo: Apply needs a cached BatchResult from Run")
	}
	plan := prev.Plan
	if plan.CountCol == nil {
		return nil, nil, fmt.Errorf("moo: Apply needs a plan built with TrackCounts (set Options.TrackCounts)")
	}
	stats := &ApplyStats{
		Relation:    d.Relation,
		Inserted:    d.InsertRows(),
		Deleted:     d.DeleteRows(),
		TotalGroups: len(plan.Groups),
		TotalViews:  len(plan.Views),
	}
	node := e.tree.NodeByRelation(d.Relation)
	if node == nil {
		bag := e.tree.NodeByMember(d.Relation)
		if bag == nil {
			return nil, nil, fmt.Errorf("%w: relation %q is not in the join tree", ErrNotIncremental, d.Relation)
		}
		expanded, err := e.foldBagDelta(bag, d)
		if err != nil {
			return nil, nil, err
		}
		node, d = bag, expanded
		stats.Bag = bag.Rel.Name
	} else if err := d.Validate(node.Rel); err != nil {
		return nil, nil, err
	}
	if d.Empty() {
		stats.Elapsed = time.Since(start)
		return prev, stats, nil
	}
	sched, err := ivm.Analyze(plan, node.ID)
	if err != nil {
		return nil, nil, err
	}
	stats.DirtyGroups = len(sched.Steps)
	stats.DirtyViews = len(sched.DirtyViews)

	var insRel, delRel *data.Relation
	if d.InsertRows() > 0 {
		insRel = data.NewRelation(d.Relation, node.Rel.Attrs, d.Inserts)
	}
	if d.DeleteRows() > 0 {
		delRel = data.NewRelation(d.Relation, node.Rel.Attrs, d.Deletes)
	}

	// work starts as the cached state; as steps complete, dirty views are
	// replaced by their deltas so later steps bind the delta views. Clean
	// inputs keep reading the cache (they are never dirty).
	scanStart := time.Now()
	work := append([]*ViewData(nil), prev.Materialized...)
	deltas := make([]*ViewData, len(plan.Views))
	var sc *scanCache
	if e.opts.CompiledKernels {
		// Shared across every kernel of this Apply round: sorted delta blocks
		// and semi-join row-id batches. Never outlives the round.
		sc = newScanCache()
	}
	for _, st := range sched.Steps {
		sub := &core.Group{ID: st.Group, Node: st.Node, Views: st.Dirty}
		var kn *maintKernel
		if e.opts.CompiledKernels {
			if kn, err = e.kernelFor(plan, d.Relation, st); err != nil {
				return nil, nil, err
			}
		}
		if st.AtDelta {
			var ins, del []*ViewData
			if kn != nil {
				stats.KernelGroups++
				ins, del, err = kn.runDeltaScans(sc, work, insRel, delRel)
			} else {
				ins, del, err = e.runDeltaScans(plan, sub, work, insRel, delRel)
			}
			if err != nil {
				return nil, nil, err
			}
			for _, vid := range st.Dirty {
				v := plan.Views[vid]
				deltas[vid] = diffViews(v, pickView(ins, vid), pickView(del, vid), viewTarget(plan, v))
			}
		} else {
			empty := true
			for _, in := range st.DeltaInputs {
				if deltas[in].NumRows() > 0 {
					empty = false
					break
				}
			}
			if empty {
				// Nothing flows in; the step's deltas are empty views.
				for _, vid := range st.Dirty {
					v := plan.Views[vid]
					deltas[vid] = newViewBuilder(v.GroupBy, len(v.Cols), false).finalize(viewTarget(plan, v))
				}
			} else {
				scratch := append([]*ViewData(nil), work...)
				stepRel := e.tree.Nodes[st.Node].Rel
				stats.BaseRows += stepRel.Len()
				if kn != nil {
					// Kernel path: row-id-batched restricted scan when the
					// semi-join plan applies, full scan of the cached sorted
					// base otherwise — same row order as the interpreted path.
					// The row-id batch is shared across kernels via sc.
					stats.KernelGroups++
					var se *subsetEntry
					if e.opts.SemiJoin && st.SemiJoinAttrs != nil {
						se, err = sc.subsetFor(kn, stepRel, deltas)
						if err != nil {
							return nil, nil, err
						}
					}
					if se != nil && !se.fallback {
						stats.SemiJoinGroups++
						stats.IDScanGroups++
						stats.ScannedRows += se.total
						err = kn.runIDBatch(e, sc, scratch, stepRel, se)
					} else {
						stats.FullScanGroups++
						stats.ScannedRows += stepRel.Len()
						err = kn.runFull(e, scratch, stepRel)
					}
					if err != nil {
						return nil, nil, err
					}
				} else {
					gp, err := e.compileGroupCached(plan, sub)
					if err != nil {
						return nil, nil, err
					}
					// Semi-join restriction: scan only the base rows joining
					// the delta's keys (nil override = full base scan).
					var relOverride *data.Relation
					if e.opts.SemiJoin && st.SemiJoinAttrs != nil {
						relOverride, err = e.semiJoinSubset(stepRel, st, deltas)
						if err != nil {
							return nil, nil, err
						}
					}
					if relOverride != nil {
						stats.SemiJoinGroups++
						stats.ScannedRows += relOverride.Len()
					} else {
						stats.FullScanGroups++
						stats.ScannedRows += stepRel.Len()
					}
					if err := e.execGroup(gp, scratch, relOverride, false); err != nil {
						return nil, nil, err
					}
				}
				for _, vid := range st.Dirty {
					deltas[vid] = scratch[vid]
				}
			}
		}
		for _, vid := range st.Dirty {
			work[vid] = deltas[vid]
		}
	}
	stats.ScanElapsed = time.Since(scanStart)

	// Merge the deltas into a fresh materialized state.
	mergeStart := time.Now()
	mat := append([]*ViewData(nil), prev.Materialized...)
	for _, vid := range sched.DirtyViews {
		v := plan.Views[vid]
		keepScalar := v.IsOutput() && len(v.GroupBy) == 0
		mat[vid] = mergeDelta(prev.Materialized[vid], deltas[vid], plan.CountCol[vid], viewTarget(plan, v), keepScalar)
	}
	stats.MergeElapsed = time.Since(mergeStart)
	res := &BatchResult{
		Plan:         plan,
		Materialized: mat,
		Versions:     sched.Commits,
	}
	if err := fillResults(plan, mat, res, prev.Results, deltas); err != nil {
		return nil, nil, err
	}
	for _, v := range plan.Views {
		if !v.IsOutput() && mat[v.ID] != nil {
			res.ViewBytes += mat[v.ID].SizeBytes()
		}
	}
	res.Elapsed = time.Since(start)
	stats.Elapsed = res.Elapsed
	return res, stats, nil
}

// compileGroupCached memoizes compiled group plans per (plan, view subset)
// for the Apply path. The cached plan's statistics-driven attribute order
// freezes at first compile; later deltas shift statistics but never
// correctness (the order is a performance heuristic).
func (e *Engine) compileGroupCached(plan *core.Plan, g *core.Group) (*groupPlan, error) {
	key := fmt.Sprintf("%p|%d|%v", plan, g.ID, g.Views)
	e.mu.Lock()
	gp, ok := e.gpCache[key]
	e.mu.Unlock()
	if ok {
		return gp, nil
	}
	gp, err := compileGroup(plan, g, e.opts.Compiled)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.gpCache[key] = gp
	e.mu.Unlock()
	return gp, nil
}

// runDeltaScans evaluates the group once over the inserted tuples and once
// over the deleted tuples (either may be nil), against cached input views.
// The group compiles once and scans both blocks.
func (e *Engine) runDeltaScans(plan *core.Plan, g *core.Group, work []*ViewData, insRel, delRel *data.Relation) (ins, del []*ViewData, err error) {
	gp, err := e.compileGroupCached(plan, g)
	if err != nil {
		return nil, nil, err
	}
	if insRel != nil {
		ins = append([]*ViewData(nil), work...)
		if err := e.execGroup(gp, ins, insRel, false); err != nil {
			return nil, nil, err
		}
	}
	if delRel != nil {
		del = append([]*ViewData(nil), work...)
		if err := e.execGroup(gp, del, delRel, false); err != nil {
			return nil, nil, err
		}
	}
	return ins, del, nil
}

// semiJoinSubset gathers the rows of rel that join at least one delta
// input's key set, per the step's semi-join plan (ivm.Step.SemiJoinAttrs):
// dropped rows bind no delta input, and every product aggregate of a dirty
// view here contains exactly one delta-input factor, so they cannot
// contribute to any view delta. Returns nil (meaning: full scan) when the
// subset would cover most of the relation, where the cached full-scan sort
// is cheaper than gathering and re-sorting the subset.
func (e *Engine) semiJoinSubset(rel *data.Relation, st ivm.Step, deltas []*ViewData) (*data.Relation, error) {
	var rows []int32
	for i, in := range st.DeltaInputs {
		dv := deltas[in]
		if dv == nil || dv.NumRows() == 0 {
			continue
		}
		attrs := st.SemiJoinAttrs[i]
		ix, err := rel.KeyIndex(attrs)
		if err != nil {
			return nil, err
		}
		// Positions of the semi-join attributes in the delta view's group-by.
		pos := make([]int, len(attrs))
		for j, a := range attrs {
			p := -1
			for gi, g := range dv.GroupBy {
				if g == a {
					p = gi
					break
				}
			}
			if p < 0 {
				return nil, fmt.Errorf("moo: delta view %d lacks semi-join attribute %d", in, a)
			}
			pos[j] = p
		}
		seen := make(map[string]struct{}, dv.NumRows())
		buf := make([]byte, 0, 8*len(attrs))
		for r := 0; r < dv.NumRows(); r++ {
			buf = buf[:0]
			for _, p := range pos {
				buf = data.AppendKey(buf, dv.KeyAt(r, p))
			}
			if _, dup := seen[string(buf)]; dup {
				continue
			}
			seen[string(buf)] = struct{}{}
			rows = append(rows, ix.Rows(string(buf))...)
		}
	}
	if len(rows) == 0 {
		return rel.GatherRows(nil), nil
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	uniq := rows[:1]
	for _, r := range rows[1:] {
		if r != uniq[len(uniq)-1] {
			uniq = append(uniq, r)
		}
	}
	if 2*len(uniq) > rel.Len() {
		return nil, nil
	}
	return rel.GatherRows(uniq), nil
}

// SyncBagMember brings the engine's materialized hypertree bag in sync with
// a delta ALREADY applied to one of its member base relations; a no-op for
// relations that are join-tree nodes themselves (or absent from the tree).
// Engine.Apply folds bags as part of maintenance — this entry point exists
// for callers that mutate base data without maintaining a cached result
// (e.g. lmfao.Session before its first Run), where skipping the fold would
// leave the bag stale and later full runs silently wrong.
func (e *Engine) SyncBagMember(d data.Delta) error {
	if d.Empty() || e.tree.NodeByRelation(d.Relation) != nil {
		return nil
	}
	bag := e.tree.NodeByMember(d.Relation)
	if bag == nil {
		return nil
	}
	_, err := e.foldBagDelta(bag, d)
	return err
}

// foldBagDelta expands a member delta into the bag's delta and folds it into
// the bag's materialized relation, keeping it mirroring the natural join of
// its (already-mutated) members. Returns the expanded delta for maintenance.
func (e *Engine) foldBagDelta(bag *jointree.Node, d data.Delta) (data.Delta, error) {
	expanded, err := e.expandBagDelta(bag, d)
	if err != nil {
		return data.Delta{}, err
	}
	if expanded.DeleteRows() > 0 {
		if err := bag.Rel.DeleteRows(expanded.Deletes); err != nil {
			return data.Delta{}, fmt.Errorf("moo: bag %q out of sync with member %q: %w",
				bag.Rel.Name, d.Relation, err)
		}
	}
	if expanded.InsertRows() > 0 {
		if err := bag.Rel.Append(expanded.Inserts); err != nil {
			return data.Delta{}, err
		}
	}
	// The bag relation lives only in the join tree — no consumer ever reads
	// its delta log — so reclaim the expanded tuple snapshots the mutations
	// above just logged instead of pinning up to a full retention cap of
	// join blocks per bag.
	bag.Rel.TruncateDeltaLog(bag.Rel.Version())
	return expanded, nil
}

// expandBagDelta translates a delta against a base relation folded into a
// materialized bag into the bag's own delta: with only Ri changed (one
// relation per Delta by contract), Δ(R1 ⋈ … ⋈ Rk) = ΔRi ⋈ Π_{j≠i} Rj, for
// inserts and deletes alike (deletes are negative-weight inserts). The
// sibling members are read at their current state; ΔRi itself was already
// applied to Ri by the caller, and Ri does not participate in the join.
func (e *Engine) expandBagDelta(bag *jointree.Node, d data.Delta) (data.Delta, error) {
	member := e.db.Relation(d.Relation)
	if member == nil {
		return data.Delta{}, fmt.Errorf("moo: delta against unknown relation %q", d.Relation)
	}
	if err := d.Validate(member); err != nil {
		return data.Delta{}, err
	}
	var siblings []*data.Relation
	for _, name := range bag.Members {
		if name == d.Relation {
			continue
		}
		rel := e.db.Relation(name)
		if rel == nil {
			return data.Delta{}, fmt.Errorf("moo: bag %q member %q not in database", bag.Rel.Name, name)
		}
		siblings = append(siblings, rel)
	}
	out := data.Delta{Relation: bag.Rel.Name}
	var err error
	if d.InsertRows() > 0 {
		if out.Inserts, err = e.joinBlock(bag, member, d.Inserts, siblings); err != nil {
			return data.Delta{}, err
		}
	}
	if d.DeleteRows() > 0 {
		if out.Deletes, err = e.joinBlock(bag, member, d.Deletes, siblings); err != nil {
			return data.Delta{}, err
		}
	}
	return out, nil
}

// joinBlock natural-joins one member's tuple block with the bag's other
// members and projects the result into the bag relation's schema order.
// Members are joined greedily by shared-attribute count, mirroring how the
// bag itself was merged, so every intermediate join has a key whenever one
// exists (an empty intersection degrades to the cross product, which is the
// natural-join semantics for disjoint schemas).
func (e *Engine) joinBlock(bag *jointree.Node, member *data.Relation, block []data.Column, siblings []*data.Relation) ([]data.Column, error) {
	acc := data.NewRelation(member.Name, member.Attrs, block)
	remaining := append([]*data.Relation(nil), siblings...)
	for len(remaining) > 0 {
		best, overlap := 0, -1
		for i, r := range remaining {
			w := countSharedAttrs(acc.Attrs, r.Attrs)
			if w > overlap {
				best, overlap = i, w
			}
		}
		next := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		var err error
		acc, err = jointree.NaturalJoin(e.db, acc, next, "Δ"+bag.Rel.Name)
		if err != nil {
			return nil, err
		}
	}
	cols := make([]data.Column, len(bag.Rel.Attrs))
	for i, a := range bag.Rel.Attrs {
		c, ok := acc.Col(a)
		if !ok {
			return nil, fmt.Errorf("moo: bag %q attribute %d missing from expanded delta", bag.Rel.Name, a)
		}
		cols[i] = c
	}
	return cols, nil
}

func countSharedAttrs(a, b []data.AttrID) int {
	n := 0
	for _, x := range a {
		for _, y := range b {
			if x == y {
				n++
				break
			}
		}
	}
	return n
}

func pickView(vs []*ViewData, vid int) *ViewData {
	if vs == nil {
		return nil
	}
	return vs[vid]
}

// viewTarget returns the consumer node schema finalize needs (nil for
// application outputs).
func viewTarget(plan *core.Plan, v *core.View) []data.AttrID {
	if v.IsOutput() {
		return nil
	}
	return plan.Tree.Nodes[v.To].Attrs
}

// addViewInto folds src's rows into b, scaling every aggregate by sign.
func addViewInto(b *viewBuilder, src *ViewData, sign float64) {
	if src == nil {
		return
	}
	key := make([]int64, len(src.GroupBy))
	for i := 0; i < src.rows; i++ {
		for c := range key {
			key[c] = src.Keys[c][i]
		}
		r := b.row(key)
		for col := 0; col < src.Stride; col++ {
			b.add(r, col, sign*src.Val(i, col))
		}
	}
}

// diffViews combines the insert-scan and delete-scan results of one view
// into its delta: deletes are negative-weight inserts in the sum-product
// semiring.
func diffViews(v *core.View, ins, del *ViewData, target []data.AttrID) *ViewData {
	b := newViewBuilder(v.GroupBy, len(v.Cols), false)
	addViewInto(b, ins, 1)
	addViewInto(b, del, -1)
	return b.finalize(target)
}

// mergeDelta folds a view's delta into its cached data and re-finalizes.
// Rows whose tuple count reaches zero are dropped: every join tuple behind
// the key was deleted, so a full recompute would not emit it. Counts are
// integer-valued, so the float64 zero test is exact. Scalar application
// outputs always keep their single row (SQL semantics).
func mergeDelta(old, delta *ViewData, countCol int, target []data.AttrID, keepScalar bool) *ViewData {
	if delta == nil || delta.NumRows() == 0 {
		return old
	}
	// Common case first: every delta key exists and none vanishes, so the
	// aggregate values are patched in place, sharing the cached key columns
	// and indexes. Row-set changes fall to the sorted splice-merge (internal
	// views) or the hash-and-rebuild path (application outputs).
	if fast := mergeFast(old, delta, countCol); fast != nil {
		return fast
	}
	if merged := mergeSorted(old, delta, countCol); merged != nil {
		return merged
	}
	b := newViewBuilder(old.GroupBy, old.Stride, false)
	addViewInto(b, old, 1)
	addViewInto(b, delta, 1)
	merged := b.vd
	if !keepScalar {
		merged = dropZeroCountRows(merged, countCol)
	}
	return (&viewBuilder{vd: merged}).finalize(target)
}

// mergeSorted merges a finalized internal view with its (identically
// finalized, hence identically sorted) delta by a two-pointer walk: no
// hashing, no re-sort. Rows whose merged tuple count is zero are dropped;
// the consumer range index is rebuilt in the same pass. Returns nil for
// application outputs (not sorted; the builder path handles them).
//
// lmfao:pre-publish — every write lands in the fresh out view; old and
// delta are only read.
func mergeSorted(old, delta *ViewData, countCol int) *ViewData {
	if old.index == nil || delta.index == nil {
		return nil
	}
	cmpPos := append(append([]int(nil), old.skeyPos...), old.extraPos...)
	cmp := func(i, j int) int { // old row i vs delta row j
		for _, c := range cmpPos {
			a, b := old.Keys[c][i], delta.Keys[c][j]
			if a != b {
				if a < b {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	out := &ViewData{
		GroupBy:  old.GroupBy,
		Keys:     make([][]int64, len(old.GroupBy)),
		Vals:     make([]float64, 0, len(old.Vals)+len(delta.Vals)),
		Stride:   old.Stride,
		skeyPos:  old.skeyPos,
		extraPos: old.extraPos,
	}
	for c := range out.Keys {
		out.Keys[c] = make([]int64, 0, old.rows+delta.rows)
	}
	appendRow := func(src *ViewData, i int, add *ViewData, j int) {
		for c := range out.Keys {
			out.Keys[c] = append(out.Keys[c], src.Keys[c][i])
		}
		base := len(out.Vals)
		out.Vals = append(out.Vals, src.Vals[i*src.Stride:(i+1)*src.Stride]...)
		if add != nil {
			dst := out.Vals[base:]
			src2 := add.Vals[j*add.Stride : (j+1)*add.Stride]
			for c := range dst {
				dst[c] += src2[c]
			}
		}
		out.rows++
	}
	// The delta has few rows relative to the cached view, so the merge walks
	// the delta and bulk-copies the untouched old-row runs between splice
	// points (binary-searched) instead of appending row by row — the
	// dominant cost is moving the old view's arrays, which this leaves to
	// memmove.
	copyRun := func(lo, hi int) {
		if lo >= hi {
			return
		}
		for c := range out.Keys {
			out.Keys[c] = append(out.Keys[c], old.Keys[c][lo:hi]...)
		}
		out.Vals = append(out.Vals, old.Vals[lo*old.Stride:hi*old.Stride]...)
		out.rows += hi - lo
	}
	i := 0
	for j := 0; j < delta.rows; j++ {
		// First old row not before delta row j. Group-by keys are unique per
		// view, so at most one old row matches.
		k := i + sort.Search(old.rows-i, func(m int) bool { return cmp(i+m, j) >= 0 })
		copyRun(i, k)
		i = k
		if i < old.rows && cmp(i, j) == 0 {
			if old.Val(i, countCol)+delta.Val(j, countCol) != 0 {
				appendRow(old, i, delta, j)
			}
			i++
		} else if delta.Val(j, countCol) != 0 {
			appendRow(delta, j, nil, 0)
		}
	}
	copyRun(i, old.rows)
	// Rebuild the consumer-key range index over the (still sorted) rows.
	// Sized by the old range count, not the row count: pre-sizing a map by
	// rows costs more than the merge itself on wide-keyed views.
	out.index = make(map[string][2]int32, len(old.index)+delta.rows)
	buf := make([]byte, 0, 8*len(out.skeyPos))
	start := 0
	for i := 1; i <= out.rows; i++ {
		if i < out.rows && sameSKey(out, i-1, i) {
			continue
		}
		buf = buf[:0]
		for _, c := range out.skeyPos {
			buf = data.AppendKey(buf, out.Keys[c][start])
		}
		out.index[string(buf)] = [2]int32{int32(start), int32(i)}
		start = i
	}
	return out
}

// mergeFast is the common-case merge: every delta key already exists in the
// cached view and no tuple count reaches zero, so the row set is unchanged.
// The result shares the cached view's key columns, range index and full-key
// index; only the aggregate values are copied and patched — skipping the
// re-hash, re-sort and re-index of the general path. Finalized internal
// views are probed through their consumer-key range index plus a binary
// search over the extras (no per-row hash map to build); unsorted
// application outputs fall back to the lazily built full-key index. Returns
// nil when the preconditions fail.
func mergeFast(old, delta *ViewData, countCol int) *ViewData {
	if old.rows == 0 || delta.rows > old.rows {
		return nil
	}
	rows := make([]int32, delta.rows)
	if old.index != nil {
		if !locateSorted(old, delta, rows) {
			return nil // new group-by key: general path inserts it
		}
	} else if !locateHashed(old, delta, rows) {
		return nil
	}
	for i, r := range rows {
		if old.Val(int(r), countCol)+delta.Val(i, countCol) == 0 {
			return nil // key vanishes: general path drops it
		}
	}
	out := &ViewData{
		GroupBy:  old.GroupBy,
		Keys:     old.Keys,
		Vals:     append([]float64(nil), old.Vals...),
		Stride:   old.Stride,
		rows:     old.rows,
		skeyPos:  old.skeyPos,
		extraPos: old.extraPos,
		index:    old.index,
	}
	// The row set is unchanged, so the cached full-key index (an immutable
	// map once built) carries over to the successor view.
	out.fullIdx.Store(old.fullIdx.Load())
	for i, r := range rows {
		dst := out.Vals[int(r)*out.Stride : (int(r)+1)*out.Stride]
		src := delta.Vals[i*delta.Stride : (i+1)*delta.Stride]
		for c := range dst {
			dst[c] += src[c]
		}
	}
	return out
}

// locateSorted resolves each delta row to its row in a finalized view via
// the consumer-key range index and a binary search over the extras (the
// rows of a range are sorted by them). The delta is finalized identically,
// so key positions line up. Returns false if any delta key is absent.
func locateSorted(old, delta *ViewData, rows []int32) bool {
	buf := make([]byte, 0, 8*len(old.skeyPos))
	for i := 0; i < delta.rows; i++ {
		buf = buf[:0]
		for _, c := range old.skeyPos {
			buf = data.AppendKey(buf, delta.Keys[c][i])
		}
		rng, ok := old.index[string(buf)]
		if !ok {
			return false
		}
		lo, hi := int(rng[0]), int(rng[1])
		k := sort.Search(hi-lo, func(m int) bool {
			r := lo + m
			for _, c := range old.extraPos {
				if old.Keys[c][r] != delta.Keys[c][i] {
					return old.Keys[c][r] > delta.Keys[c][i]
				}
			}
			return true
		})
		r := lo + k
		if r == hi {
			return false
		}
		for _, c := range old.extraPos {
			if old.Keys[c][r] != delta.Keys[c][i] {
				return false
			}
		}
		rows[i] = int32(r)
	}
	return true
}

// locateHashed resolves delta rows through the full-key hash index (built
// lazily, cached on the view) — the path for unsorted application outputs.
func locateHashed(old, delta *ViewData, rows []int32) bool {
	idx := old.fullKeyIndex()
	buf := make([]byte, 0, 8*len(delta.GroupBy))
	for i := 0; i < delta.rows; i++ {
		buf = buf[:0]
		for c := range delta.GroupBy {
			buf = data.AppendKey(buf, delta.Keys[c][i])
		}
		r, ok := idx[string(buf)]
		if !ok {
			return false
		}
		rows[i] = r
	}
	return true
}

// dropZeroCountRows filters rows whose tuple count is exactly zero.
//
// lmfao:pre-publish — writes build the fresh out view; v is only read.
func dropZeroCountRows(v *ViewData, countCol int) *ViewData {
	keep := make([]int, 0, v.rows)
	for i := 0; i < v.rows; i++ {
		if v.Val(i, countCol) != 0 {
			keep = append(keep, i)
		}
	}
	if len(keep) == v.rows {
		return v
	}
	out := &ViewData{
		GroupBy: v.GroupBy,
		Keys:    make([][]int64, len(v.GroupBy)),
		Vals:    make([]float64, 0, len(keep)*v.Stride),
		Stride:  v.Stride,
		rows:    len(keep),
	}
	for c := range out.Keys {
		col := make([]int64, len(keep))
		for j, i := range keep {
			col[j] = v.Keys[c][i]
		}
		out.Keys[c] = col
	}
	for _, i := range keep {
		out.Vals = append(out.Vals, v.Vals[i*v.Stride:(i+1)*v.Stride]...)
	}
	return out
}
