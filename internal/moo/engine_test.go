package moo

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/data"
	"repro/internal/query"
)

// ---------------------------------------------------------------------------
// Test databases
// ---------------------------------------------------------------------------

// chainDB: S1(x1,x2,u1), S2(x2,x3,u2), S3(x3,x4,u3) — keys xi, numeric ui.
func chainDB(t testing.TB, rows int, seed int64, dom int) (*data.Database, []data.AttrID, []data.AttrID) {
	t.Helper()
	db := data.NewDatabase()
	keys := make([]data.AttrID, 5)
	for i := 1; i <= 4; i++ {
		keys[i] = db.Attr(fmt.Sprintf("x%d", i), data.Key)
	}
	var nums []data.AttrID
	rng := rand.New(rand.NewSource(seed))
	for i := 1; i <= 3; i++ {
		u := db.Attr(fmt.Sprintf("u%d", i), data.Numeric)
		nums = append(nums, u)
		a := make([]int64, rows)
		b := make([]int64, rows)
		x := make([]float64, rows)
		for r := 0; r < rows; r++ {
			a[r] = int64(rng.Intn(dom))
			b[r] = int64(rng.Intn(dom))
			x[r] = float64(rng.Intn(10)) + 0.5
		}
		rel := data.NewRelation(fmt.Sprintf("S%d", i),
			[]data.AttrID{keys[i], keys[i+1], u},
			[]data.Column{data.NewIntColumn(a), data.NewIntColumn(b), data.NewFloatColumn(x)})
		if err := db.AddRelation(rel); err != nil {
			t.Fatal(err)
		}
	}
	return db, keys, nums
}

// starDB: fact F(k1,k2,k3,m) with three dimensions Di(ki, ci, pi) where ci is
// categorical-ish (small key) and pi numeric.
func starDB(t testing.TB, factRows int, seed int64) (*data.Database, map[string]data.AttrID) {
	t.Helper()
	db := data.NewDatabase()
	ids := map[string]data.AttrID{}
	rng := rand.New(rand.NewSource(seed))
	dims := 3
	dimSize := 8
	factAttrs := make([]data.AttrID, 0, dims+1)
	factCols := make([]data.Column, 0, dims+1)
	for d := 0; d < dims; d++ {
		k := db.Attr(fmt.Sprintf("k%d", d), data.Key)
		ids[fmt.Sprintf("k%d", d)] = k
		vals := make([]int64, factRows)
		for i := range vals {
			vals[i] = int64(rng.Intn(dimSize))
		}
		factAttrs = append(factAttrs, k)
		factCols = append(factCols, data.NewIntColumn(vals))
	}
	m := db.Attr("m", data.Numeric)
	ids["m"] = m
	mv := make([]float64, factRows)
	for i := range mv {
		mv[i] = float64(rng.Intn(20)) + 0.25
	}
	factAttrs = append(factAttrs, m)
	factCols = append(factCols, data.NewFloatColumn(mv))
	if err := db.AddRelation(data.NewRelation("F", factAttrs, factCols)); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < dims; d++ {
		k := ids[fmt.Sprintf("k%d", d)]
		c := db.Attr(fmt.Sprintf("c%d", d), data.Key)
		p := db.Attr(fmt.Sprintf("p%d", d), data.Numeric)
		ids[fmt.Sprintf("c%d", d)] = c
		ids[fmt.Sprintf("p%d", d)] = p
		kv := make([]int64, dimSize)
		cv := make([]int64, dimSize)
		pv := make([]float64, dimSize)
		for i := 0; i < dimSize; i++ {
			kv[i] = int64(i)
			cv[i] = int64(rng.Intn(3))
			pv[i] = float64(rng.Intn(7)) + 0.5
		}
		rel := data.NewRelation(fmt.Sprintf("D%d", d),
			[]data.AttrID{k, c, p},
			[]data.Column{data.NewIntColumn(kv), data.NewIntColumn(cv), data.NewFloatColumn(pv)})
		if err := db.AddRelation(rel); err != nil {
			t.Fatal(err)
		}
	}
	return db, ids
}

// ---------------------------------------------------------------------------
// Equivalence helpers
// ---------------------------------------------------------------------------

func viewToMap(v *ViewData) map[string][]float64 {
	out := make(map[string][]float64, v.NumRows())
	for i := 0; i < v.NumRows(); i++ {
		key := data.PackKey(v.Key(i)...)
		row := make([]float64, v.Stride)
		for c := 0; c < v.Stride; c++ {
			row[c] = v.Val(i, c)
		}
		out[key] = row
	}
	return out
}

func compareResults(t *testing.T, label string, got *ViewData, want *baseline.Result) {
	t.Helper()
	gm := viewToMap(got)
	if len(gm) != len(want.Rows) {
		t.Errorf("%s: got %d rows, want %d", label, len(gm), len(want.Rows))
	}
	for key, wrow := range want.Rows {
		grow, ok := gm[key]
		if !ok {
			t.Errorf("%s: missing key %v", label, unpack(key))
			continue
		}
		for c := range wrow {
			if !closeEnough(grow[c], wrow[c]) {
				t.Errorf("%s: key %v col %d: got %g want %g", label, unpack(key), c, grow[c], wrow[c])
			}
		}
	}
	for key := range gm {
		if _, ok := want.Rows[key]; !ok {
			t.Errorf("%s: spurious key %v", label, unpack(key))
		}
	}
}

func unpack(key string) []int64 {
	out := make([]int64, data.KeyLen(key))
	data.UnpackKey(key, out)
	return out
}

func closeEnough(a, b float64) bool {
	d := math.Abs(a - b)
	if d <= 1e-6 {
		return true
	}
	return d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

var optionVariants = []struct {
	name string
	opts Options
}{
	{"acdc", Options{Threads: 1}},
	{"compiled", Options{Compiled: true, Threads: 1}},
	{"multiout", Options{Compiled: true, MultiOutput: true, Threads: 1}},
	{"multiroot", Options{Compiled: true, MultiOutput: true, MultiRoot: true, Threads: 1}},
	{"parallel", Options{Compiled: true, MultiOutput: true, MultiRoot: true, Threads: 3, DomainParallelRows: 4}},
	{"interp-full", Options{MultiOutput: true, MultiRoot: true, Threads: 2, DomainParallelRows: 4}},
}

// checkBatch runs the batch under every option variant and compares each
// against the brute-force baseline.
func checkBatch(t *testing.T, db *data.Database, queries []*query.Query) {
	t.Helper()
	base, err := baseline.New(db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run(queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range optionVariants {
		eng, err := NewEngine(db, variant.opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(queries)
		if err != nil {
			t.Fatalf("%s: %v", variant.name, err)
		}
		for qi := range queries {
			compareResults(t, fmt.Sprintf("%s/%s", variant.name, queries[qi].Name),
				res.Results[qi], want[qi])
		}
	}
}

// ---------------------------------------------------------------------------
// Equivalence tests
// ---------------------------------------------------------------------------

func TestScalarCountChain(t *testing.T) {
	db, _, _ := chainDB(t, 40, 1, 4)
	checkBatch(t, db, []*query.Query{query.NewQuery("count", nil, query.CountAgg())})
}

func TestScalarSumsChain(t *testing.T) {
	db, keys, nums := chainDB(t, 40, 2, 4)
	checkBatch(t, db, []*query.Query{
		query.NewQuery("sums", nil,
			query.SumAgg(nums[0]),
			query.SumAgg(nums[2]),
			query.SumProdAgg(nums[0], nums[2]),
			query.SumPowAgg(nums[1], 2),
			query.SumProdAgg(keys[1], keys[4]),
		),
	})
}

func TestGroupByLocalKey(t *testing.T) {
	db, keys, nums := chainDB(t, 50, 3, 3)
	checkBatch(t, db, []*query.Query{
		query.NewQuery("g2", []data.AttrID{keys[2]}, query.CountAgg(), query.SumAgg(nums[1])),
	})
}

func TestGroupBySpanningRelations(t *testing.T) {
	db, keys, nums := chainDB(t, 45, 4, 3)
	checkBatch(t, db, []*query.Query{
		query.NewQuery("span", []data.AttrID{keys[1], keys[4]},
			query.CountAgg(), query.SumAgg(nums[1])),
	})
}

func TestGroupByThreeWaySpan(t *testing.T) {
	db, keys, _ := chainDB(t, 30, 5, 3)
	checkBatch(t, db, []*query.Query{
		query.NewQuery("span3", []data.AttrID{keys[1], keys[3], keys[4]}, query.CountAgg()),
	})
}

func TestIndicatorsAndPowers(t *testing.T) {
	db, keys, nums := chainDB(t, 60, 6, 4)
	cond := query.NewAggregate("cond",
		query.NewTerm(
			query.IndicatorF(nums[0], query.LE, 5),
			query.IndicatorF(nums[2], query.GT, 3),
			query.IdentF(nums[1]),
		))
	multi := query.NewAggregate("multi",
		query.NewTerm(query.PowF(nums[0], 2)).Scaled(2.5),
		query.NewTerm(query.IdentF(nums[0]), query.IdentF(nums[1])).Scaled(-1),
	)
	checkBatch(t, db, []*query.Query{
		query.NewQuery("ind", []data.AttrID{keys[3]}, cond, multi),
	})
}

func TestMixedBatchManyQueries(t *testing.T) {
	db, keys, nums := chainDB(t, 50, 7, 3)
	var qs []*query.Query
	for i := 1; i <= 4; i++ {
		qs = append(qs, query.NewQuery(fmt.Sprintf("q%d", i),
			[]data.AttrID{keys[i]}, query.CountAgg(), query.SumAgg(nums[0])))
	}
	qs = append(qs, query.NewQuery("pairs", []data.AttrID{keys[1], keys[2]},
		query.SumProdAgg(nums[0], nums[1])))
	qs = append(qs, query.NewQuery("scalar", nil, query.SumPowAgg(nums[2], 3)))
	checkBatch(t, db, qs)
}

func TestStarSchemaBatch(t *testing.T) {
	db, ids := starDB(t, 80, 8)
	checkBatch(t, db, []*query.Query{
		query.NewQuery("bydim", []data.AttrID{ids["c0"]},
			query.CountAgg(), query.SumAgg(ids["m"]), query.SumProdAgg(ids["m"], ids["p1"])),
		query.NewQuery("crossdims", []data.AttrID{ids["c0"], ids["c2"]},
			query.SumAgg(ids["p1"])),
		query.NewQuery("factgb", []data.AttrID{ids["k1"]},
			query.SumProdAgg(ids["p0"], ids["p2"])),
		query.NewQuery("total", nil, query.CountAgg()),
	})
}

func TestEmptyJoin(t *testing.T) {
	// Keys never match across S1 and S2: the join is empty.
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	b := db.Attr("b", data.Key)
	c := db.Attr("c", data.Key)
	r1 := data.NewRelation("R1", []data.AttrID{a, b}, []data.Column{
		data.NewIntColumn([]int64{1, 2}), data.NewIntColumn([]int64{10, 11})})
	r2 := data.NewRelation("R2", []data.AttrID{b, c}, []data.Column{
		data.NewIntColumn([]int64{20, 21}), data.NewIntColumn([]int64{1, 2})})
	if err := db.AddRelation(r1); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(r2); err != nil {
		t.Fatal(err)
	}
	checkBatch(t, db, []*query.Query{
		query.NewQuery("count", nil, query.CountAgg()),
		query.NewQuery("bya", []data.AttrID{a}, query.CountAgg()),
	})
}

func TestPartialJoinPresence(t *testing.T) {
	// Some keys of R1 have no partner in R2: group-by rows must appear only
	// for joining keys, and indicator aggregates that evaluate to zero must
	// still yield (zero-valued) rows for joining keys.
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	b := db.Attr("b", data.Key)
	x := db.Attr("x", data.Numeric)
	r1 := data.NewRelation("R1", []data.AttrID{a, b}, []data.Column{
		data.NewIntColumn([]int64{1, 2, 3}), data.NewIntColumn([]int64{5, 6, 7})})
	r2 := data.NewRelation("R2", []data.AttrID{b, x}, []data.Column{
		data.NewIntColumn([]int64{5, 5, 6}), data.NewFloatColumn([]float64{100, 200, 300})})
	if err := db.AddRelation(r1); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(r2); err != nil {
		t.Fatal(err)
	}
	zero := query.NewAggregate("neverTrue",
		query.NewTerm(query.IndicatorF(x, query.GT, 1e9)))
	checkBatch(t, db, []*query.Query{
		query.NewQuery("bya", []data.AttrID{a}, query.CountAgg(), zero),
	})
}

func TestDuplicateRows(t *testing.T) {
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	b := db.Attr("b", data.Key)
	x := db.Attr("x", data.Numeric)
	r1 := data.NewRelation("R1", []data.AttrID{a, b}, []data.Column{
		data.NewIntColumn([]int64{1, 1, 1, 2}), data.NewIntColumn([]int64{5, 5, 5, 5})})
	r2 := data.NewRelation("R2", []data.AttrID{b, x}, []data.Column{
		data.NewIntColumn([]int64{5, 5}), data.NewFloatColumn([]float64{2, 3})})
	if err := db.AddRelation(r1); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(r2); err != nil {
		t.Fatal(err)
	}
	checkBatch(t, db, []*query.Query{
		query.NewQuery("q", []data.AttrID{a}, query.CountAgg(), query.SumAgg(x)),
	})
}

func TestSingleRelation(t *testing.T) {
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	x := db.Attr("x", data.Numeric)
	rel := data.NewRelation("R", []data.AttrID{a, x}, []data.Column{
		data.NewIntColumn([]int64{1, 1, 2, 3}),
		data.NewFloatColumn([]float64{1.5, 2.5, 3.5, 4.5})})
	if err := db.AddRelation(rel); err != nil {
		t.Fatal(err)
	}
	checkBatch(t, db, []*query.Query{
		query.NewQuery("bya", []data.AttrID{a}, query.SumAgg(x), query.CountAgg()),
		query.NewQuery("all", nil, query.SumPowAgg(x, 2)),
	})
}

func TestCustomAndDynamicFactors(t *testing.T) {
	db, keys, nums := chainDB(t, 40, 9, 3)
	sq := query.CustomF("sq", nums[1], func(v float64) float64 { return v * v })
	dyn := query.DynamicF("thr", nums[0], func(v float64) float64 {
		if v <= 4 {
			return 1
		}
		return 0
	})
	checkBatch(t, db, []*query.Query{
		query.NewQuery("udf", []data.AttrID{keys[2]},
			query.NewAggregate("a", query.NewTerm(sq, dyn))),
	})
}

// Randomized property test: random chain databases, random batches, all
// option variants must agree with brute force.
func TestRandomBatchesEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	for trial := 0; trial < 12; trial++ {
		seed := int64(100 + trial)
		rng := rand.New(rand.NewSource(seed))
		db, keys, nums := chainDB(t, 20+rng.Intn(40), seed, 2+rng.Intn(3))
		var qs []*query.Query
		nq := 1 + rng.Intn(4)
		for qi := 0; qi < nq; qi++ {
			var gb []data.AttrID
			for _, k := range keys[1:] {
				if rng.Intn(3) == 0 {
					gb = append(gb, k)
				}
			}
			var aggs []query.Aggregate
			na := 1 + rng.Intn(3)
			for ai := 0; ai < na; ai++ {
				var fs []query.Factor
				nf := rng.Intn(3)
				for fi := 0; fi < nf; fi++ {
					attr := nums[rng.Intn(len(nums))]
					switch rng.Intn(4) {
					case 0:
						fs = append(fs, query.IdentF(attr))
					case 1:
						fs = append(fs, query.PowF(attr, 2))
					case 2:
						fs = append(fs, query.IndicatorF(attr, query.LE, float64(rng.Intn(10))))
					case 3:
						fs = append(fs, query.IdentF(keys[1+rng.Intn(4)]))
					}
				}
				aggs = append(aggs, query.NewAggregate(fmt.Sprintf("a%d", ai), query.NewTerm(fs...)))
			}
			qs = append(qs, query.NewQuery(fmt.Sprintf("q%d", qi), gb, aggs...))
		}
		checkBatch(t, db, qs)
	}
}

// ---------------------------------------------------------------------------
// Unit tests for ViewData and engine plumbing
// ---------------------------------------------------------------------------

func TestViewDataAccessors(t *testing.T) {
	b := newViewBuilder([]data.AttrID{3, 7}, 2, false)
	r := b.row([]int64{1, 2})
	b.add(r, 0, 5)
	b.add(r, 1, 7)
	r2 := b.row([]int64{1, 3})
	b.add(r2, 0, 9)
	// Same key returns same row.
	if b.row([]int64{1, 2}) != r {
		t.Fatal("row not deduplicated")
	}
	vd := b.finalize([]data.AttrID{3}) // attr 3 is the consumer key; 7 is extra
	if vd.NumRows() != 2 {
		t.Fatalf("rows = %d", vd.NumRows())
	}
	if got := vd.Extras(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("extras = %v", got)
	}
	if got := vd.SKeyAttrs(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("skey = %v", got)
	}
	lo, hi, ok := vd.bind(data.PackKey(1))
	if !ok || hi-lo != 2 {
		t.Fatalf("bind = %d..%d ok=%v", lo, hi, ok)
	}
	if _, _, ok := vd.bind(data.PackKey(9)); ok {
		t.Fatal("bind found absent key")
	}
	if i := vd.Lookup(1, 2); i < 0 || vd.Val(i, 0) != 5 || vd.Val(i, 1) != 7 {
		t.Fatalf("Lookup(1,2) = %d", i)
	}
	if vd.Lookup(1) != -1 {
		t.Fatal("Lookup with wrong arity should return -1")
	}
	if vd.Lookup(8, 8) != -1 {
		t.Fatal("Lookup of absent key should return -1")
	}
	if vd.SizeBytes() <= 0 {
		t.Fatal("SizeBytes = 0")
	}
	if vd.String() == "" {
		t.Fatal("String empty")
	}
	if vd.KeyAt(0, 0) != 1 {
		t.Fatalf("KeyAt = %d", vd.KeyAt(0, 0))
	}
}

func TestViewBuilderMerge(t *testing.T) {
	a := newViewBuilder([]data.AttrID{1}, 1, false)
	b := newViewBuilder([]data.AttrID{1}, 1, false)
	a.add(a.row([]int64{1}), 0, 2)
	b.add(b.row([]int64{1}), 0, 3)
	b.add(b.row([]int64{2}), 0, 5)
	a.merge(b)
	vd := a.finalize(nil)
	if vd.NumRows() != 2 {
		t.Fatalf("rows = %d", vd.NumRows())
	}
	if i := vd.Lookup(1); vd.Val(i, 0) != 5 {
		t.Fatalf("merged value = %g", vd.Val(i, 0))
	}
}

func TestEngineAccessors(t *testing.T) {
	db, _, _ := chainDB(t, 10, 11, 3)
	eng, err := NewEngine(db, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if eng.DB() != db || eng.Tree() == nil {
		t.Fatal("accessors broken")
	}
	if eng.Options().Threads < 1 {
		t.Fatal("threads not normalized")
	}
}

func TestEngineRejectsBadQuery(t *testing.T) {
	db, _, _ := chainDB(t, 10, 12, 3)
	eng, err := NewEngine(db, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	bad := query.NewQuery("bad", nil, query.SumAgg(data.AttrID(99)))
	if _, err := eng.Run([]*query.Query{bad}); err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestRunReportsStats(t *testing.T) {
	db, keys, _ := chainDB(t, 30, 13, 3)
	eng, err := NewEngine(db, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run([]*query.Query{
		query.NewQuery("q", []data.AttrID{keys[2]}, query.CountAgg()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.OutputBytes <= 0 || res.Elapsed <= 0 {
		t.Fatalf("stats not populated: %+v", res)
	}
}

func TestRepeatedRunsReuseSortCache(t *testing.T) {
	db, keys, _ := chainDB(t, 30, 14, 3)
	eng, err := NewEngine(db, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := []*query.Query{query.NewQuery("q", []data.AttrID{keys[2]}, query.CountAgg())}
	r1, err := eng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if viewToMap(r1.Results[0])[data.PackKey(r1.Results[0].Key(0)...)][0] !=
		viewToMap(r2.Results[0])[data.PackKey(r2.Results[0].Key(0)...)][0] {
		t.Fatal("repeated runs disagree")
	}
}
