package moo

import (
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/ivm"
	"repro/internal/query"
)

// Queryable is the uniform read-side contract over a computed batch of
// group-by aggregates — the internal twin of the public lmfao.Queryable.
// Implementations serve immutable, committed states: a one-shot engine run,
// a session snapshot, or a merged sharded snapshot all answer the same way,
// so application-layer consumers (internal/ml) learn from any of them
// without knowing how the batch was computed or maintained.
type Queryable interface {
	// NumQueries returns the number of queries in the served batch.
	NumQueries() int
	// Result returns query queryIdx's materialized output (batch order),
	// or nil when the implementation holds no state for it. The view may
	// carry a trailing hidden tuple-count column after the query's
	// aggregates and must be treated as read-only.
	Result(queryIdx int) *ViewData
	// Lookup returns the aggregate values for one group of query queryIdx
	// (key values in the output's group-by order, which sorts attributes by
	// ID), or ok=false if the group is absent. The returned row has exactly
	// the query's aggregates in query order — hidden columns trimmed.
	Lookup(queryIdx int, key ...int64) ([]float64, bool)
	// Versions returns the base-relation version metadata of the served
	// state: one VersionVector per independent writer (length 1 for
	// unsharded states). Read-only.
	Versions() ivm.ShardVector
}

// Requerier is the optional re-query hook refinement-style applications
// need: evaluating a fresh ad-hoc aggregate batch over the database behind
// the Queryable (the decision-tree learner issues one such batch per tree
// node, conditioned on the node's ancestor splits). Implementations
// serialize with their writer, so a requery never races maintenance — but
// it reflects the writer's current base data, which may be newer than the
// Queryable's pinned versions; quiesce updates when exact agreement with
// the snapshot matters.
type Requerier interface {
	// Requery evaluates the batch and returns one materialized view per
	// query, batch order.
	Requery(queries []*query.Query) ([]*ViewData, error)
}

// GatherResults collects the materialized outputs of q for a canonical
// application batch, validating that q actually serves that batch: the
// query counts must match and every output view's group-by attribute set
// must equal the corresponding query's. It is the guard application
// assemblers call before decoding results positionally — a clear error here
// beats silently mis-assembled statistics from a session built over a
// different batch.
func GatherResults(q Queryable, batch []*query.Query) ([]*ViewData, error) {
	if got, want := q.NumQueries(), len(batch); got != want {
		return nil, fmt.Errorf("moo: queryable serves %d queries, the application batch has %d (was the session built over this application's batch?)", got, want)
	}
	out := make([]*ViewData, len(batch))
	for i, bq := range batch {
		vd := q.Result(i)
		if vd == nil {
			return nil, fmt.Errorf("moo: queryable has no result for query %d (%s)", i, bq.Name)
		}
		if !sameAttrSet(vd.GroupBy, bq.GroupBy) {
			return nil, fmt.Errorf("moo: query %d (%s): queryable groups by %v, the application batch wants %v", i, bq.Name, vd.GroupBy, bq.GroupBy)
		}
		if vd.Stride < bq.NumCols() {
			return nil, fmt.Errorf("moo: query %d (%s): queryable carries %d aggregate columns, the application batch wants %d", i, bq.Name, vd.Stride, bq.NumCols())
		}
		out[i] = vd
	}
	return out, nil
}

// sameAttrSet reports whether two attribute lists contain the same set
// (output views sort group-by attributes by ID; queries keep user order).
func sameAttrSet(a, b []data.AttrID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]data.AttrID(nil), a...)
	bs := append([]data.AttrID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
