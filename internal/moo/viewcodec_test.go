package moo

import (
	"reflect"
	"testing"

	"repro/internal/data"
	"repro/internal/query"
)

// codecViews runs a grouped batch and returns every materialized view: the
// mix includes finalized internal views (range index, carried extras) and
// non-finalized application outputs.
func codecViews(t *testing.T) []*ViewData {
	t.Helper()
	db, keys, nums := chainDB(t, 60, 11, 4)
	queries := []*query.Query{
		query.NewQuery("span", []data.AttrID{keys[1], keys[4]},
			query.CountAgg(), query.SumAgg(nums[1])),
		query.NewQuery("local", []data.AttrID{keys[2]}, query.SumAgg(nums[0])),
		query.NewQuery("scalar", nil, query.CountAgg()),
	}
	eng, err := NewEngine(db, Options{Compiled: true, MultiOutput: true, MultiRoot: true, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Materialized) == 0 {
		t.Fatal("no materialized views")
	}
	return res.Materialized
}

func viewLabel(i int) string { return "view#" + string(rune('0'+i)) }

// posEqual treats nil and empty position lists as the same layout.
func posEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameView(t *testing.T, label string, got, want *ViewData) {
	t.Helper()
	if got.rows != want.rows || got.Stride != want.Stride {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.rows, got.Stride, want.rows, want.Stride)
	}
	if len(got.GroupBy) != len(want.GroupBy) {
		t.Fatalf("%s: GroupBy %v, want %v", label, got.GroupBy, want.GroupBy)
	}
	for i := range want.GroupBy {
		if got.GroupBy[i] != want.GroupBy[i] {
			t.Fatalf("%s: GroupBy %v, want %v", label, got.GroupBy, want.GroupBy)
		}
	}
	if !posEqual(got.skeyPos, want.skeyPos) || !posEqual(got.extraPos, want.extraPos) {
		t.Fatalf("%s: positions (%v,%v), want (%v,%v)", label, got.skeyPos, got.extraPos, want.skeyPos, want.extraPos)
	}
	if len(got.Keys) != len(want.Keys) {
		t.Fatalf("%s: %d key columns, want %d", label, len(got.Keys), len(want.Keys))
	}
	for c := range want.Keys {
		if !reflect.DeepEqual(got.Keys[c][:got.rows], want.Keys[c][:want.rows]) {
			t.Fatalf("%s: key column %d differs", label, c)
		}
	}
	for i := 0; i < want.rows*want.Stride; i++ {
		if got.Vals[i] != want.Vals[i] {
			t.Fatalf("%s: value %d differs: %g vs %g", label, i, got.Vals[i], want.Vals[i])
		}
	}
	if (got.index == nil) != (want.index == nil) {
		t.Fatalf("%s: index presence %v, want %v", label, got.index != nil, want.index != nil)
	}
	if want.index != nil && !reflect.DeepEqual(got.index, want.index) {
		t.Fatalf("%s: rebuilt range index differs: %v vs %v", label, got.index, want.index)
	}
}

func TestViewCodecRoundTrip(t *testing.T) {
	for i, v := range codecViews(t) {
		buf := v.AppendBinary(nil)
		got, n, err := DecodeViewData(buf)
		if err != nil {
			t.Fatalf("view %d: decode: %v", i, err)
		}
		if n != len(buf) {
			t.Fatalf("view %d: consumed %d of %d bytes", i, n, len(buf))
		}
		sameView(t, viewLabel(i), got, v)
		// Lookup must work on the decoded copy (exercises the lazily built
		// full-key index on top of the rebuilt range index).
		for r := 0; r < v.NumRows(); r++ {
			if got.Lookup(v.Key(r)...) < 0 {
				t.Fatalf("view %d (%s): decoded copy cannot find row %d", i, viewLabel(i), r)
			}
		}
	}
}

func TestViewCodecAppendsInPlace(t *testing.T) {
	views := codecViews(t)
	// Concatenated frames decode back one at a time.
	var buf []byte
	for _, v := range views {
		buf = v.AppendBinary(buf)
	}
	rest := buf
	for i, v := range views {
		got, n, err := DecodeViewData(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		sameView(t, viewLabel(i), got, v)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestViewCodecRejectsCorrupt(t *testing.T) {
	v := codecViews(t)[0]
	buf := v.AppendBinary(nil)
	if _, _, err := DecodeViewData(nil); err == nil {
		t.Fatal("decoded empty input")
	}
	for cut := 1; cut < len(buf); cut += 1 + len(buf)/23 {
		if _, _, err := DecodeViewData(buf[:cut]); err == nil {
			t.Fatalf("decoded %d-byte prefix", cut)
		}
	}
	// Absurd row counts must be rejected by the byte-bound check rather than
	// attempting the allocation.
	huge := append([]byte(nil), buf...)
	for i := 0; i < len(huge) && i < 12; i++ {
		huge[i] = 0xff
	}
	if _, _, err := DecodeViewData(huge); err == nil {
		t.Fatal("decoded frame with corrupted header")
	}
}
