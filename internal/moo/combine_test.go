package moo

import (
	"testing"

	"repro/internal/data"
)

func buildView(t *testing.T, groupBy []data.AttrID, stride int, rows map[[2]int64][]float64) *ViewData {
	t.Helper()
	b := newViewBuilder(groupBy, stride, false)
	for key, vals := range rows {
		r := b.row(key[:len(groupBy)])
		for c, v := range vals {
			b.add(r, c, v)
		}
	}
	return b.finalize(nil)
}

func TestCombineViewsUnionAndSum(t *testing.T) {
	gb := []data.AttrID{0, 1}
	a := buildView(t, gb, 2, map[[2]int64][]float64{
		{1, 1}: {10, 1},
		{2, 1}: {5, 2},
	})
	b := buildView(t, gb, 2, map[[2]int64][]float64{
		{2, 1}: {7, 3}, // shared group: adds
		{3, 9}: {1, 1}, // only in b: unions in
	})
	merged, err := CombineViews([]*ViewData{a, nil, b})
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumRows() != 3 {
		t.Fatalf("merged has %d rows, want 3", merged.NumRows())
	}
	want := map[[2]int64][]float64{
		{1, 1}: {10, 1},
		{2, 1}: {12, 5},
		{3, 9}: {1, 1},
	}
	for i := 0; i < merged.NumRows(); i++ {
		key := [2]int64{merged.KeyAt(i, 0), merged.KeyAt(i, 1)}
		w, ok := want[key]
		if !ok {
			t.Fatalf("unexpected merged group %v", key)
		}
		for c := range w {
			if got := merged.Val(i, c); got != w[c] {
				t.Fatalf("group %v col %d: got %v want %v", key, c, got, w[c])
			}
		}
		delete(want, key)
	}
	if len(want) != 0 {
		t.Fatalf("groups missing from merge: %v", want)
	}
	// Inputs untouched.
	if a.NumRows() != 2 || b.NumRows() != 2 {
		t.Fatal("CombineViews mutated an input")
	}
}

func TestCombineViewsScalar(t *testing.T) {
	a := buildView(t, nil, 1, map[[2]int64][]float64{{}: {4}})
	b := buildView(t, nil, 1, map[[2]int64][]float64{{}: {-1.5}})
	merged, err := CombineViews([]*ViewData{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumRows() != 1 || merged.Val(0, 0) != 2.5 {
		t.Fatalf("scalar merge = %d rows, val %v", merged.NumRows(), merged.Val(0, 0))
	}
}

func TestCombineViewsErrors(t *testing.T) {
	if _, err := CombineViews(nil); err == nil {
		t.Fatal("no views must error")
	}
	if _, err := CombineViews([]*ViewData{nil, nil}); err == nil {
		t.Fatal("all-nil views must error")
	}
	a := buildView(t, []data.AttrID{0}, 1, map[[2]int64][]float64{{1}: {1}})
	b := buildView(t, []data.AttrID{1}, 1, map[[2]int64][]float64{{1}: {1}})
	if _, err := CombineViews([]*ViewData{a, b}); err == nil {
		t.Fatal("group-by mismatch must error")
	}
	c := buildView(t, []data.AttrID{0}, 2, map[[2]int64][]float64{{1}: {1, 2}})
	if _, err := CombineViews([]*ViewData{a, c}); err == nil {
		t.Fatal("stride mismatch must error")
	}
}
