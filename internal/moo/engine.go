package moo

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/ivm"
	"repro/internal/jointree"
	"repro/internal/kernel"
	"repro/internal/query"
)

// Options selects the engine's optimization levels. The default enables
// everything; disabling individual options reproduces the ablation
// configurations of the paper's Figure 5 (the all-off configuration is the
// AC/DC proxy).
type Options struct {
	// MultiRoot lets each query use its own join-tree root (§3.3).
	MultiRoot bool
	// MultiOutput computes groups of views in one shared scan (§3.5).
	MultiOutput bool
	// Compiled specializes factor evaluation into monomorphic closures at
	// plan time (the Go analogue of the paper's code generation layer);
	// disabled, factors are interpreted per call.
	Compiled bool
	// Threads bounds task parallelism across view groups and domain
	// parallelism within large scans. 1 disables parallelism.
	Threads int
	// DomainParallelRows is the minimum relation size for splitting one
	// group scan across threads.
	DomainParallelRows int
	// TrackCounts adds a hidden tuple-count aggregate to every view so the
	// result can be incrementally maintained via Apply (see internal/ivm).
	// Output views gain a trailing core.CountColName column.
	TrackCounts bool
	// SemiJoin restricts Apply's maintenance scans at unchanged join-tree
	// nodes to the base rows that join the delta's keys, using lazily built
	// join-key indexes (data.KeyIndex) instead of full base scans. Run is
	// unaffected. Off, Apply reproduces the full-scan maintenance of the
	// pre-semi-join engine — the ablation baseline for the -update bench.
	SemiJoin bool
	// CompiledKernels routes Apply's maintenance steps through compiled
	// per-(node, delta-relation) kernels: each step's group loop is
	// specialized once — attribute offsets, semi-join probe positions and
	// aggregate combine closures resolved at plan time — cached by plan
	// shape (internal/kernel) and reused with its scan state across deltas.
	// Restricted scans run row-id-batched against the unsorted base relation
	// (no subset materialization). Off, every step re-resolves its scan
	// state per Apply. Single-threaded scans are bit-exact across the two
	// modes — both visit rows in the same stably-sorted order (restricted
	// subsets large enough for domain parallelism may reassociate float
	// sums, like any Threads > 1 configuration). Run is unaffected.
	CompiledKernels bool
}

// DefaultOptions enables all optimizations with the paper's four threads
// (capped by the host CPU count).
func DefaultOptions() Options {
	t := runtime.NumCPU()
	if t > 4 {
		t = 4
	}
	return Options{
		MultiRoot:          true,
		MultiOutput:        true,
		Compiled:           true,
		Threads:            t,
		DomainParallelRows: 65536,
		SemiJoin:           true,
		CompiledKernels:    true,
	}
}

// ACDCOptions is the all-optimizations-off configuration, the paper's proxy
// for the AC/DC predecessor system.
func ACDCOptions() Options {
	return Options{Threads: 1, DomainParallelRows: 1 << 30}
}

// Engine evaluates batches of group-by aggregate queries over a database's
// natural join using the layered LMFAO architecture.
type Engine struct {
	db   *data.Database
	tree *jointree.Tree
	opts Options

	mu        sync.Mutex
	sortCache map[string]sortEntry
	// gpCache caches compiled group plans for the maintenance path, which
	// recompiles the same (sub)groups on every Apply. Run's own scans stay
	// uncached: a compiled plan carries per-execution state (the bound scan
	// relation), so sharing is only safe on the single-threaded Apply path.
	gpCache map[string]*groupPlan
	// kernels caches compiled maintenance kernels (Options.CompiledKernels)
	// keyed by plan identity plus kernel.Shape — the same single-writer
	// Apply-path contract as gpCache, since each kernel carries bound scan
	// state and a reusable execution context.
	kernels *kernel.Cache
}

// sortEntry is a cached sorted copy of a base relation; version pins the
// relation content it was built from, so in-place base mutations (deltas)
// invalidate it. The copy's own caches (join-key indexes, distinct counts)
// persist with it — compiled kernels lean on that to resolve semi-join
// probes against the sorted copy across Apply calls.
type sortEntry struct {
	version int64
	rel     *data.Relation
}

// NewEngine builds the join tree for db (decomposing cyclic schemas) and
// returns an engine.
func NewEngine(db *data.Database, opts Options) (*Engine, error) {
	tree, err := jointree.Build(db)
	if err != nil {
		return nil, err
	}
	return NewEngineWithTree(db, tree, opts), nil
}

// NewEngineWithTree wraps an existing join tree (e.g. a hand-picked one
// matching the paper's Figure 6).
func NewEngineWithTree(db *data.Database, tree *jointree.Tree, opts Options) *Engine {
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	if opts.DomainParallelRows <= 0 {
		opts.DomainParallelRows = 65536
	}
	return &Engine{db: db, tree: tree, opts: opts,
		sortCache: map[string]sortEntry{}, gpCache: map[string]*groupPlan{},
		kernels: kernel.NewCache()}
}

// KernelCacheStats reports the compiled-maintenance-kernel cache's hit/miss
// counters and size (zero-valued while Options.CompiledKernels is off or no
// Apply has run).
func (e *Engine) KernelCacheStats() kernel.CacheStats { return e.kernels.Stats() }

// DB returns the engine's database.
func (e *Engine) DB() *data.Database { return e.db }

// Tree returns the engine's join tree.
func (e *Engine) Tree() *jointree.Tree { return e.tree }

// Options returns the engine's option set.
func (e *Engine) Options() Options { return e.opts }

// BatchResult carries the outputs of a batch run plus planning statistics.
type BatchResult struct {
	Plan *core.Plan
	// Results holds one user-visible output per USER query, batch order
	// (len == Plan.UserQueries). For queries with monoid aggregates this is
	// the assembled view — sum columns, finalized monoid columns, hidden
	// count — not the raw output view; the plan's internal support queries
	// never surface here (their views live in Materialized).
	Results []*ViewData
	// OutputBytes is the total size of the application outputs (paper
	// Table 2's "Size" column).
	OutputBytes int64
	// ViewBytes is the total size of all intermediate directional views.
	ViewBytes int64
	Elapsed   time.Duration
	// Materialized holds every materialized view (internal and output)
	// indexed by view ID — the cached state Apply maintains incrementally.
	Materialized []*ViewData
	// Versions pins the base-relation version vector the result was
	// computed over: RunPlan captures it before executing, Apply records
	// the vector its maintenance round commits (ivm.Schedule.Commits). A
	// snapshot served to concurrent readers is identified by this vector.
	Versions ivm.VersionVector
}

// PlanBatch builds the logical plan Run would execute for queries, without
// executing it. Plan construction is deterministic for a given join tree,
// query batch, option set and base-relation statistics; WAL recovery
// (lmfao.RecoverSession) relies on this to rebuild, over the pristine
// initial database, the exact plan a checkpoint's views were materialized
// under before restoring those views onto it.
func (e *Engine) PlanBatch(queries []*query.Query) (*core.Plan, error) {
	return core.BuildPlan(e.tree, queries, core.PlanOptions{
		MultiRoot:   e.opts.MultiRoot,
		MultiOutput: e.opts.MultiOutput,
		TrackCounts: e.opts.TrackCounts,
	})
}

// Run plans and executes a batch of aggregate queries.
func (e *Engine) Run(queries []*query.Query) (*BatchResult, error) {
	start := time.Now()
	plan, err := e.PlanBatch(queries)
	if err != nil {
		return nil, err
	}
	res, err := e.RunPlan(plan)
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunPlan executes an existing logical plan from scratch over the current
// base data. Plans stay valid across base-relation deltas (only statistics
// drift), so this recomputes exactly the view DAG a maintained session
// serves — the comparison target for incremental maintenance.
func (e *Engine) RunPlan(plan *core.Plan) (*BatchResult, error) {
	start := time.Now()
	versions := ivm.CaptureVersions(e.db)
	produced, err := e.execute(plan)
	if err != nil {
		return nil, err
	}
	res := &BatchResult{
		Plan:         plan,
		Elapsed:      time.Since(start),
		Materialized: produced,
		Versions:     versions,
	}
	if err := fillResults(plan, produced, res, nil, nil); err != nil {
		return nil, err
	}
	for _, v := range plan.Views {
		if !v.IsOutput() && produced[v.ID] != nil {
			res.ViewBytes += produced[v.ID].SizeBytes()
		}
	}
	return res, nil
}

// execute runs the plan's groups respecting the dependency graph, in
// parallel when Threads > 1.
func (e *Engine) execute(plan *core.Plan) ([]*ViewData, error) {
	produced := make([]*ViewData, len(plan.Views))
	if e.opts.Threads <= 1 {
		for _, g := range plan.Groups {
			if err := e.runGroup(plan, g, produced); err != nil {
				return nil, err
			}
		}
		return produced, nil
	}

	// Task parallelism: a worker pool over the group DAG.
	n := len(plan.Groups)
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for g, deps := range plan.GroupDeps {
		indeg[g] = len(deps)
		for _, d := range deps {
			dependents[d] = append(dependents[d], g)
		}
	}
	ready := make(chan int, n)
	scheduled := 0
	for g := 0; g < n; g++ {
		if indeg[g] == 0 {
			ready <- g
			scheduled++
		}
	}
	if scheduled == 0 {
		return nil, fmt.Errorf("moo: no runnable groups among %d (cyclic dependency graph)", n)
	}
	var (
		mu        sync.Mutex
		firstErr  error
		doneCount int
		closed    bool
		wg        sync.WaitGroup
	)
	workers := e.opts.Threads
	if workers > n {
		workers = n
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for g := range ready {
				err := e.runGroup(plan, plan.Groups[g], produced)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				doneCount++
				// Enqueue dependents only while the channel is open: another
				// worker's error may have closed it while this group was
				// still running, and a send would panic.
				if err == nil && !closed {
					for _, d := range dependents[g] {
						indeg[d]--
						if indeg[d] == 0 {
							ready <- d
							scheduled++
						}
					}
				}
				// Close when finished or wedged: an error skips the failed
				// group's dependents, and a malformed dependency graph can
				// strand groups — in both cases every scheduled group being
				// done means no further progress is possible, and leaving
				// the channel open would park the workers forever.
				if (doneCount == n || doneCount == scheduled || firstErr != nil) && !closed {
					closed = true
					close(ready)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if doneCount != n {
		return nil, fmt.Errorf("moo: executed %d of %d groups (stalled dependency graph)", doneCount, n)
	}
	return produced, nil
}

// runGroup compiles and executes one view group, finalizing its outputs into
// produced.
func (e *Engine) runGroup(plan *core.Plan, g *core.Group, produced []*ViewData) error {
	return e.runGroupOn(plan, g, produced, nil, true)
}

// runGroupOn is runGroup with two knobs for delta evaluation (Apply): scan an
// override relation (a delta block) instead of the group node's base
// relation, and suppress the forced scalar output row (a delta must stay
// empty when nothing was emitted).
func (e *Engine) runGroupOn(plan *core.Plan, g *core.Group, produced []*ViewData, relOverride *data.Relation, scalarInit bool) error {
	gp, err := compileGroup(plan, g, e.opts.Compiled)
	if err != nil {
		return err
	}
	return e.execGroup(gp, produced, relOverride, scalarInit)
}

// execGroup binds the (possibly overridden) scan relation to a compiled
// group plan and runs it; gp is reusable across calls with different
// relations.
func (e *Engine) execGroup(gp *groupPlan, produced []*ViewData, relOverride *data.Relation, scalarInit bool) error {
	var err error
	if relOverride != nil {
		gp.rel, err = relOverride.SortedCopy(gp.order)
	} else {
		gp.rel, err = e.sortedRel(gp.node.Rel, gp.order)
	}
	if err != nil {
		return err
	}
	gp.resolveLeafCols()

	n := gp.rel.Len()
	var builders []*viewBuilder
	if e.opts.Threads > 1 && gp.L > 0 && n >= e.opts.DomainParallelRows {
		builders, err = e.runDomainParallel(gp, produced, n, scalarInit)
		if err != nil {
			return err
		}
	} else {
		ctx, err := newExecCtx(gp, produced, scalarInit)
		if err != nil {
			return err
		}
		ctx.run(0, n)
		builders = ctx.builders
	}
	for i, v := range gp.views {
		produced[v.ID] = builders[i].finalize(gp.targets[i])
	}
	return nil
}

// runDomainParallel splits the scan at top-attribute value boundaries across
// threads and merges the per-thread partial outputs (paper: "LMFAO
// partitions the largest input relations and allocates a thread per
// partition").
func (e *Engine) runDomainParallel(gp *groupPlan, produced []*ViewData, n int, scalarInit bool) ([]*viewBuilder, error) {
	col := gp.rel.MustCol(gp.order[0]).Ints
	var bounds []int
	data.ForEachRange(col, 0, n, func(_ int64, l, _ int) {
		bounds = append(bounds, l)
	})
	bounds = append(bounds, n)
	threads := e.opts.Threads
	if threads > len(bounds)-1 {
		threads = len(bounds) - 1
	}
	// Assign contiguous top-level ranges to chunks, balancing rows.
	chunkStarts := make([]int, 0, threads+1)
	target := n / threads
	next := 0
	for t := 0; t < threads; t++ {
		chunkStarts = append(chunkStarts, bounds[next])
		want := bounds[next] + target
		for next < len(bounds)-1 && bounds[next] < want {
			next++
		}
	}
	chunkStarts = append(chunkStarts, n)

	ctxs := make([]*execCtx, 0, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		lo, hi := chunkStarts[t], chunkStarts[t+1]
		if lo >= hi {
			continue
		}
		ctx, err := newExecCtx(gp, produced, scalarInit && t == 0)
		if err != nil {
			return nil, err
		}
		ctxs = append(ctxs, ctx)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx.run(lo, hi)
		}()
	}
	wg.Wait()
	out := ctxs[0].builders
	for _, ctx := range ctxs[1:] {
		for i := range out {
			out[i].merge(ctx.builders[i])
		}
	}
	return out, nil
}

// sortedRel returns rel sorted by order, using the base relation when
// already compatible and caching sorted copies otherwise. The entry persists
// across Apply calls until the base relation's version changes.
func (e *Engine) sortedRel(rel *data.Relation, order []data.AttrID) (*data.Relation, error) {
	if len(order) == 0 || rel.SortedBy(order) {
		return rel, nil
	}
	parts := make([]string, len(order))
	for i, a := range order {
		parts[i] = fmt.Sprint(a)
	}
	key := rel.Name + "|" + strings.Join(parts, ",")
	version := rel.Version()
	e.mu.Lock()
	cached, ok := e.sortCache[key]
	e.mu.Unlock()
	if ok && cached.version == version {
		return cached.rel, nil
	}
	cp, err := rel.SortedCopy(order)
	if err != nil {
		return nil, err
	}
	// Carry over distinct counts (identical row multiset).
	for _, a := range order {
		cp.DistinctCount(a)
	}
	e.mu.Lock()
	e.sortCache[key] = sortEntry{version: version, rel: cp}
	e.mu.Unlock()
	return cp, nil
}

// SortAttrIDs is a helper for deterministic attribute ordering in callers.
func SortAttrIDs(ids []data.AttrID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
