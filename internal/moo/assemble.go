package moo

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/ivm"
)

// Monoid result assembly. A query with generalized (monoid) aggregates is
// planned as its sum-product clone plus internal support queries — plain
// count queries over (group-by ∪ {folded attribute}) that the whole
// engine maintains like any other view (see internal/core's monoid
// support synthesis). This file folds those maintained support views into
// the user-visible result: for every group, each monoid column is the fold
// of the monoid over the group's surviving support values.
//
// The incremental path re-folds only the AFFECTED groups — the group
// projections of the maintenance round's support-view and output-view
// delta rows — and copies every other group's finalized columns from the
// previous assembled view. A delete that shrinks a group's support (the
// case invertible aggregates handle as negative inserts) therefore costs
// one re-fold of that group, driven by the same semi-join-restricted
// delta machinery that found it.

// assembleQuery builds user query qi's visible view from its raw output
// view and the support views in mat (indexed by view ID). prev is the
// previous assembled view and affected the set of packed group keys whose
// monoid columns must be re-folded; prev == nil (or affected == nil with
// prev == nil) means fold everything. Groups absent from prev are always
// re-folded regardless of affected.
//
// Layout of the assembled view: the query's sum-aggregate columns
// (verbatim from the raw output view, absent for placeholder-only
// queries), then each monoid aggregate's finalized columns in declaration
// order, then the hidden tuple-count column when the plan tracks counts.
func assembleQuery(plan *core.Plan, qi int, raw *ViewData, mat []*ViewData, prev *ViewData, affected map[string]struct{}) (*ViewData, error) {
	spec := plan.Monoids[qi]
	if spec == nil {
		return raw, nil
	}
	totalW := 0
	for _, c := range spec.Cols {
		totalW += c.Width
	}
	rawCountCol := -1
	countCols := 0
	if plan.CountCol != nil {
		rawCountCol = plan.CountCol[plan.OutputView[qi]]
		countCols = 1
	}
	rows := raw.NumRows()
	stride := spec.SumCols + totalW + countCols
	out := &ViewData{
		GroupBy: raw.GroupBy,
		Keys:    raw.Keys,
		Vals:    make([]float64, rows*stride),
		Stride:  stride,
		rows:    rows,
	}
	for i := 0; i < rows; i++ {
		dst := out.Vals[i*stride:]
		for c := 0; c < spec.SumCols; c++ {
			dst[c] = raw.Val(i, c)
		}
		if countCols == 1 {
			dst[stride-1] = raw.Val(i, rawCountCol)
		}
	}

	rawIdx := raw.fullKeyIndex()
	var prevIdx map[string]int32
	if prev != nil {
		prevIdx = prev.fullKeyIndex()
	}
	// refold[i] reports row i's monoid columns must be folded from support;
	// otherwise they copy from prev. With no prev everything re-folds.
	refold := make([]bool, rows)
	prevRow := make([]int32, rows)
	buf := make([]byte, 0, 8*len(raw.GroupBy))
	for i := 0; i < rows; i++ {
		if prevIdx == nil {
			refold[i] = true
			continue
		}
		buf = buf[:0]
		for c := range raw.GroupBy {
			buf = data.AppendKey(buf, raw.Keys[c][i])
		}
		r, ok := prevIdx[string(buf)]
		if !ok {
			refold[i] = true // new group: nothing to copy from
			continue
		}
		prevRow[i] = r
		if affected == nil {
			refold[i] = true
		} else if _, hit := affected[string(buf)]; hit {
			refold[i] = true
		}
	}

	// Fold states for the re-folded rows, one scan per distinct support
	// view (monoid columns sharing a support share its scan).
	states := make([][]state, len(spec.Cols))
	for ci := range spec.Cols {
		states[ci] = make([]state, rows)
	}
	done := make(map[int]bool, len(spec.Cols))
	for ci := range spec.Cols {
		si := spec.Cols[ci].Support
		if done[si] {
			continue
		}
		done[si] = true
		var cols []int
		for cj := range spec.Cols {
			if spec.Cols[cj].Support == si {
				cols = append(cols, cj)
			}
		}
		sv := mat[plan.OutputView[si]]
		if sv == nil {
			return nil, fmt.Errorf("moo: support view for query %d not materialized", qi)
		}
		lead := spec.Cols[cols[0]]
		kbuf := make([]byte, 0, 8*len(lead.KeyPos))
		for j := 0; j < sv.NumRows(); j++ {
			if sv.Val(j, 0) == 0 {
				continue
			}
			kbuf = kbuf[:0]
			for _, kp := range lead.KeyPos {
				kbuf = data.AppendKey(kbuf, sv.KeyAt(j, kp))
			}
			r, ok := rawIdx[string(kbuf)]
			if !ok || !refold[r] {
				continue
			}
			val := sv.KeyAt(j, lead.ValPos)
			for _, cj := range cols {
				m := spec.Cols[cj].M
				s := states[cj][r]
				if s == nil {
					s = m.Lift(val)
				} else {
					s = m.Combine(s, m.Lift(val))
				}
				states[cj][r] = s
			}
		}
	}

	// Finalize per row: folded states for re-folded rows, verbatim copies
	// from prev otherwise.
	off := spec.SumCols
	for ci, col := range spec.Cols {
		m := col.M
		for i := 0; i < rows; i++ {
			dst := out.Vals[i*stride+off : i*stride+off+col.Width]
			if refold[i] {
				s := states[ci][i]
				if s == nil {
					s = m.Identity()
				}
				m.Finalize(s, dst)
			} else {
				p := int(prevRow[i])
				copy(dst, prev.Vals[p*prev.Stride+off:p*prev.Stride+off+col.Width])
			}
		}
		off += col.Width
	}
	return out, nil
}

// state aliases the monoid state type locally (keeps the fold loop tidy).
type state = interface{}

// affectedGroups collects the packed group keys query qi's maintenance
// round touched: the group projections of every support-delta row plus
// every raw-output delta row (zero- and negative-count delta rows
// included — a net-zero support change can still swing a fold). Returns
// an empty set when no relevant view produced a delta row, in which case
// the previous assembled view is still exact.
func affectedGroups(plan *core.Plan, qi int, deltas []*ViewData) map[string]struct{} {
	spec := plan.Monoids[qi]
	affected := make(map[string]struct{})
	if dv := deltas[plan.OutputView[qi]]; dv != nil {
		buf := make([]byte, 0, 8*len(dv.GroupBy))
		for i := 0; i < dv.NumRows(); i++ {
			buf = buf[:0]
			for c := range dv.GroupBy {
				buf = data.AppendKey(buf, dv.KeyAt(i, c))
			}
			affected[string(buf)] = struct{}{}
		}
	}
	seen := make(map[int]bool, len(spec.Cols))
	for _, col := range spec.Cols {
		if seen[col.Support] {
			continue
		}
		seen[col.Support] = true
		dv := deltas[plan.OutputView[col.Support]]
		if dv == nil {
			continue
		}
		buf := make([]byte, 0, 8*len(col.KeyPos))
		for i := 0; i < dv.NumRows(); i++ {
			buf = buf[:0]
			for _, kp := range col.KeyPos {
				buf = data.AppendKey(buf, dv.KeyAt(i, kp))
			}
			affected[string(buf)] = struct{}{}
		}
	}
	return affected
}

// fillResults populates res.Results (one user-visible view per USER query
// — support queries never surface) plus the output/support byte counters
// from the materialized state. prevResults/deltas enable the incremental
// path: monoid queries whose raw output and support views produced no
// delta rows reuse the previous assembled view, and the rest re-fold only
// affected groups. Pass nil/nil for a from-scratch assembly (Run, WAL
// restore, sharded merges).
func fillResults(plan *core.Plan, mat []*ViewData, res *BatchResult, prevResults []*ViewData, deltas []*ViewData) error {
	res.Results = make([]*ViewData, plan.UserQueries)
	for qi := 0; qi < plan.UserQueries; qi++ {
		raw := mat[plan.OutputView[qi]]
		if plan.Monoids[qi] == nil {
			res.Results[qi] = raw
			res.OutputBytes += raw.SizeBytes()
			continue
		}
		var prev *ViewData
		var affected map[string]struct{}
		if deltas != nil && prevResults != nil {
			prev = prevResults[qi]
			affected = affectedGroups(plan, qi, deltas)
			if prev != nil && len(affected) == 0 {
				res.Results[qi] = prev
				res.OutputBytes += prev.SizeBytes()
				continue
			}
		}
		av, err := assembleQuery(plan, qi, raw, mat, prev, affected)
		if err != nil {
			return err
		}
		res.Results[qi] = av
		res.OutputBytes += av.SizeBytes()
	}
	for qi := plan.UserQueries; qi < len(plan.Queries); qi++ {
		if v := mat[plan.OutputView[qi]]; v != nil {
			res.ViewBytes += v.SizeBytes()
		}
	}
	return nil
}

// AssembleQuery builds user query qi's visible view from scratch out of
// materialized views indexed by view ID (the raw output view and every
// support view must be present). It is the merge hook for sharded reads:
// per-shard raw output and support views combine correctly under
// CombineViews (they are all plain count/sum views), after which this
// fold produces the merged user-visible view — monoid columns must never
// be summed across shards.
func AssembleQuery(plan *core.Plan, qi int, mat []*ViewData) (*ViewData, error) {
	if qi < 0 || qi >= plan.UserQueries {
		return nil, fmt.Errorf("moo: AssembleQuery: query index %d out of range", qi)
	}
	raw := mat[plan.OutputView[qi]]
	if raw == nil {
		return nil, fmt.Errorf("moo: AssembleQuery: output view for query %d not materialized", qi)
	}
	return assembleQuery(plan, qi, raw, mat, nil, nil)
}

// NewBatchFromMaterialized rebuilds a BatchResult from a plan plus its
// materialized view DAG (the WAL checkpoint restore path): user-visible
// results are re-assembled from the raw output and support views, which
// are exactly what checkpoints persist.
func NewBatchFromMaterialized(plan *core.Plan, mat []*ViewData, versions ivm.VersionVector) (*BatchResult, error) {
	res := &BatchResult{Plan: plan, Materialized: mat, Versions: versions}
	if err := fillResults(plan, mat, res, nil, nil); err != nil {
		return nil, err
	}
	for _, v := range plan.Views {
		if !v.IsOutput() && mat[v.ID] != nil {
			res.ViewBytes += mat[v.ID].SizeBytes()
		}
	}
	return res, nil
}
