package moo

import (
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/ivm"
	"repro/internal/kernel"
)

// Compiled maintenance kernels (Options.CompiledKernels). Each kernel
// specializes one ivm schedule step for one (join-tree node, delta relation)
// pair: the step's multi-output group loop is compiled once, its semi-join
// probe positions are resolved once against the plan's view metadata, and a
// reusable execution context keeps the scan's slot/running-sum arrays and
// the composed leaf closures alive across Apply calls — the interpreted path
// re-derives all of that per delta. Kernels are cached per engine, keyed by
// plan identity plus the injective kernel.Shape encoding, so a cache hit can
// never return a kernel compiled for a different plan shape.
//
// Restricted scans run row-id-batched: the semi-join candidate row ids are
// gathered once per (relation, semi-join signature) and shared across every
// kernel of the Apply round through a scanCache — the interpreted path
// re-probes, re-gathers and re-sorts the same subset once per group. The
// batch is kept as its defining probe set; each kernel resolves it against
// the join-key index of the engine's persistent per-order sorted copy of the
// base and walks the matched positions ascending through the id indirection
// (execCtx.ids): a restricted scan over an unchanged base costs one integer
// sort, never a gather, stable sort or subset copy. Sorted
// copies of large at-delta tuple blocks are shared per scan order the same
// way; small blocks run the indirection against the unsorted block directly.
//
// Every strategy visits rows in the same stable order as the interpreted
// path — selecting a subset of a stably sorted sequence, like stably sorting
// the ascending ids directly, preserves the ascending-id order within equal
// keys — so aggregate accumulation, and therefore every output bit, is
// identical; the differential oracle (internal/oracletest) enforces this
// with kernels on and off.

// maintKernel is the compiled kernel for one maintenance step. It carries
// mutable scan state (bound relation, execution context, id buffer) and is
// therefore bound to the engine's single-writer Apply path, like gpCache.
type maintKernel struct {
	gp *groupPlan
	st ivm.Step
	// probePos[i] holds, for delta input st.DeltaInputs[i], the positions of
	// the semi-join probe attributes in that view's group-by — resolved at
	// compile time from the logical plan instead of per Apply.
	probePos [][]int

	// boundRel/boundVer pin the relation the leaf closures were composed
	// against; rebinding only happens when the scan target changes. For
	// unchanged-node steps over a stable base relation the composition
	// happens exactly once across the whole delta stream.
	boundRel *data.Relation
	boundVer int64
	ctx      *execCtx
	idbuf    []int32
}

// kernelFor returns the compiled kernel for step st of the given plan and
// delta relation, compiling and caching it on first use.
func (e *Engine) kernelFor(plan *core.Plan, relation string, st ivm.Step) (*maintKernel, error) {
	shape := kernel.Shape{
		Relation:    relation,
		Node:        st.Node,
		Group:       st.Group,
		AtDelta:     st.AtDelta,
		Compiled:    e.opts.Compiled,
		Dirty:       st.Dirty,
		DeltaInputs: st.DeltaInputs,
	}
	if st.SemiJoinAttrs != nil {
		shape.SemiJoin = make([][]int64, len(st.SemiJoinAttrs))
		for i, attrs := range st.SemiJoinAttrs {
			if attrs == nil {
				continue
			}
			inner := make([]int64, len(attrs))
			for j, a := range attrs {
				inner[j] = int64(a)
			}
			shape.SemiJoin[i] = inner
		}
	}
	key := fmt.Sprintf("%p|", plan) + shape.Key()
	if v, ok := e.kernels.Get(key); ok {
		return v.(*maintKernel), nil
	}
	sub := &core.Group{ID: st.Group, Node: st.Node, Views: st.Dirty}
	gp, err := compileGroup(plan, sub, e.opts.Compiled)
	if err != nil {
		return nil, err
	}
	k := &maintKernel{gp: gp, st: st}
	if st.SemiJoinAttrs != nil {
		k.probePos = make([][]int, len(st.DeltaInputs))
		for i, in := range st.DeltaInputs {
			attrs := st.SemiJoinAttrs[i]
			groupBy := plan.Views[in].GroupBy
			pos := make([]int, len(attrs))
			for j, a := range attrs {
				p := -1
				for gi, g := range groupBy {
					if g == a {
						p = gi
						break
					}
				}
				if p < 0 {
					return nil, fmt.Errorf("moo: delta view %d lacks semi-join attribute %d", in, a)
				}
				pos[j] = p
			}
			k.probePos[i] = pos
		}
	}
	e.kernels.Put(key, k)
	return k, nil
}

// bind points the kernel at a scan relation, recomposing the leaf closures
// only when the target (or its content version) changed since the last run.
func (k *maintKernel) bind(rel *data.Relation) {
	ver := rel.Version()
	if k.boundRel == rel && k.boundVer == ver {
		return
	}
	k.gp.rel = rel
	k.gp.resolveLeafCols()
	k.boundRel, k.boundVer = rel, ver
}

// runBound executes the bound kernel over n rows (or over ids, when
// non-nil), finalizing the dirty views into produced. The execution context
// is reused across calls; builders start fresh each run.
func (k *maintKernel) runBound(produced []*ViewData, ids []int32, n int) error {
	if k.ctx == nil || k.ctx.gp != k.gp {
		ctx, err := newExecCtx(k.gp, produced, false)
		if err != nil {
			return err
		}
		k.ctx = ctx
	} else if err := k.ctx.reset(produced, false); err != nil {
		return err
	}
	k.ctx.ids = ids
	if ids != nil {
		n = len(ids)
	}
	k.ctx.run(0, n)
	for i, v := range k.gp.views {
		produced[v.ID] = k.ctx.builders[i].finalize(k.gp.targets[i])
	}
	return nil
}

// idScanMaxRows bounds the pure-indirection scan of at-delta tuple blocks:
// blocks up to this size are walked through execCtx.ids against the unsorted
// block (no copies); larger blocks take a per-order sorted copy shared
// through the scanCache. Both strategies visit rows in the same order, so
// the cutoff is purely a performance trade: indirection saves the copy,
// sequential access wins once the aggregate-heavy inner loops re-read
// columns many times.
const idScanMaxRows = 256

// scanCache shares scan materializations across the kernels of one Apply
// round: sorted copies of delta tuple blocks (per scan order) and semi-join
// row-id batches (per semi-join signature). The interpreted path redoes this
// work once per group; sharing it is where kernel compilation pays on
// multi-group plans. The cache lives for a single Apply call on the engine's
// single-writer path — entries never survive a base-relation mutation.
type scanCache struct {
	sorted  map[string]*data.Relation
	subsets map[string]*subsetEntry
	// positions memoizes a subset's sorted scan positions per (subset,
	// sorted copy): kernels at the same node share one scan order, so the
	// probe resolution and integer sort run once, not per group.
	positions map[string][]int32
}

func newScanCache() *scanCache {
	return &scanCache{
		sorted:    map[string]*data.Relation{},
		subsets:   map[string]*subsetEntry{},
		positions: map[string][]int32{},
	}
}

// sortedBlock memoizes rel.SortedCopy(order) per (relation, order) so kernels
// with the same scan order share one stable sort.
func (sc *scanCache) sortedBlock(rel *data.Relation, order []data.AttrID) (*data.Relation, error) {
	key := fmt.Sprintf("%p|%v", rel, order)
	if s, ok := sc.sorted[key]; ok {
		return s, nil
	}
	s, err := rel.SortedCopy(order)
	if err != nil {
		return nil, err
	}
	sc.sorted[key] = s
	return s, nil
}

// subsetEntry is one shared semi-join row-id batch, kept in probe form: the
// unique (attrs, key) lookups that select the subset, plus the matched row
// total. Consumers resolve the probes against the join-key index of whichever
// sorted copy they scan, so the entry itself is scan-order agnostic.
type subsetEntry struct {
	probes   []probeReq
	total    int  // matched rows across probes (before cross-signature dedup)
	fallback bool // subset covers most of the relation: callers full-scan
}

// probeReq is one unique (semi-join attrs, delta key) pair to look up in the
// scanned relation's join-key index. tag is the canonical form used for
// dedup and cache keying; key is the raw index lookup key.
type probeReq struct {
	attrs []data.AttrID
	tag   string
	key   string
}

// probeSet collects the unique probe pairs of k's step against the current
// delta views, sorted canonically, plus an unambiguous joined cache key
// (length-prefixed — raw key bytes may contain any delimiter). The subset a
// step scans is fully determined by (relation, probe set), so steps whose
// delta views carry the same join keys — the common case, since every dirty
// view at a node derives from the same base delta — share one gathered
// subset regardless of which views they consume.
func (k *maintKernel) probeSet(deltas []*ViewData) ([]probeReq, string) {
	var probes []probeReq
	seen := make(map[string]struct{})
	var buf []byte
	for i, in := range k.st.DeltaInputs {
		dv := deltas[in]
		if dv == nil || dv.NumRows() == 0 {
			continue
		}
		attrs := k.st.SemiJoinAttrs[i]
		attrsTag := fmt.Sprintf("%v\x00", attrs)
		pos := k.probePos[i]
		for r := 0; r < dv.NumRows(); r++ {
			buf = buf[:0]
			for _, p := range pos {
				buf = data.AppendKey(buf, dv.KeyAt(r, p))
			}
			tag := attrsTag + string(buf)
			if _, dup := seen[tag]; dup {
				continue
			}
			seen[tag] = struct{}{}
			probes = append(probes, probeReq{attrs: attrs, tag: tag, key: string(buf)})
		}
	}
	slices.SortFunc(probes, func(a, b probeReq) int {
		switch {
		case a.tag < b.tag:
			return -1
		case a.tag > b.tag:
			return 1
		}
		return 0
	})
	var ck []byte
	for _, p := range probes {
		ck = append(ck, fmt.Sprintf("%d:", len(p.tag))...)
		ck = append(ck, p.tag...)
	}
	return probes, string(ck)
}

// subsetFor resolves the shared row-id batch for k's step against rel,
// probing the join-key index only on the first request per probe set.
func (sc *scanCache) subsetFor(k *maintKernel, rel *data.Relation, deltas []*ViewData) (*subsetEntry, error) {
	probes, ckey := k.probeSet(deltas)
	key := fmt.Sprintf("%p|", rel) + ckey
	if se, ok := sc.subsets[key]; ok {
		return se, nil
	}
	se, err := gatherIDs(rel, probes)
	if err != nil {
		return nil, err
	}
	sc.subsets[key] = se
	return se, nil
}

// runIDs is the indirect row-id scan: ids (already arranged in the group's
// scan order for rel) are walked trie-style through execCtx.ids — no subset
// is gathered or copied.
func (k *maintKernel) runIDs(produced []*ViewData, rel *data.Relation, ids []int32) error {
	k.bind(rel)
	return k.runBound(produced, ids, 0)
}

// runIDBatch executes the restricted scan over a shared row-id batch against
// the engine's persistent sorted copy of the base: the batch's probes
// resolve against the sorted copy's own join-key index (persistent, like the
// copy) to scan positions, which one integer sort plus a dedup pass put in
// scan order — no per-delta gather, stable sort or subset copy. Selecting a
// subset of a stably sorted sequence preserves the relative order stable
// id-sorting would produce, so the row visit order (and every accumulated
// bit) matches the interpreted gather-and-sort path exactly.
func (k *maintKernel) runIDBatch(e *Engine, sc *scanCache, produced []*ViewData, rel *data.Relation, se *subsetEntry) error {
	sorted, err := e.sortedRel(rel, k.gp.order)
	if err != nil {
		return err
	}
	key := fmt.Sprintf("%p|%p", se, sorted)
	pos, ok := sc.positions[key]
	if !ok {
		pos = make([]int32, 0, se.total)
		for _, p := range se.probes {
			ix, err := sorted.KeyIndex(p.attrs)
			if err != nil {
				return err
			}
			pos = append(pos, ix.Rows(p.key)...)
		}
		slices.Sort(pos)
		// Probes with distinct attr signatures can match the same row; the
		// scan must visit it once, like the interpreted path's id dedup.
		uniq := pos[:0]
		for i, r := range pos {
			if i == 0 || r != uniq[len(uniq)-1] {
				uniq = append(uniq, r)
			}
		}
		pos = uniq
		sc.positions[key] = pos
	}
	return k.runIDs(produced, sorted, pos)
}

// runFull is the unrestricted fallback, scanning the engine's cached sorted
// copy of the base relation — domain-parallel for large relations, exactly
// like the interpreted full-scan path.
func (k *maintKernel) runFull(e *Engine, produced []*ViewData, base *data.Relation) error {
	sorted, err := e.sortedRel(base, k.gp.order)
	if err != nil {
		return err
	}
	k.bind(sorted)
	n := sorted.Len()
	if e.opts.Threads > 1 && k.gp.L > 0 && n >= e.opts.DomainParallelRows {
		builders, err := e.runDomainParallel(k.gp, produced, n, false)
		if err != nil {
			return err
		}
		for i, v := range k.gp.views {
			produced[v.ID] = builders[i].finalize(k.gp.targets[i])
		}
		return nil
	}
	return k.runBound(produced, nil, n)
}

// runDeltaScans evaluates the at-delta kernel over the inserted and deleted
// tuple blocks (either may be nil) against cached input views.
func (k *maintKernel) runDeltaScans(sc *scanCache, work []*ViewData, insRel, delRel *data.Relation) (ins, del []*ViewData, err error) {
	if insRel != nil {
		ins = append([]*ViewData(nil), work...)
		if err := k.runDeltaBlock(sc, ins, insRel); err != nil {
			return nil, nil, err
		}
	}
	if delRel != nil {
		del = append([]*ViewData(nil), work...)
		if err := k.runDeltaBlock(sc, del, delRel); err != nil {
			return nil, nil, err
		}
	}
	return ins, del, nil
}

// runDeltaBlock scans one delta tuple block. Small blocks run through an
// identity id permutation stably sorted by the attribute order — the same
// row sequence a sorted copy would yield, without the copy; larger blocks
// share a per-order sorted copy with every other kernel at the changed node.
func (k *maintKernel) runDeltaBlock(sc *scanCache, produced []*ViewData, rel *data.Relation) error {
	n := rel.Len()
	if n <= idScanMaxRows {
		ids := k.idbuf[:0]
		for i := 0; i < n; i++ {
			ids = append(ids, int32(i))
		}
		k.idbuf = ids
		if err := rel.SortIDsBy(k.gp.order, ids); err != nil {
			return err
		}
		return k.runIDs(produced, rel, ids)
	}
	sorted, err := sc.sortedBlock(rel, k.gp.order)
	if err != nil {
		return err
	}
	k.bind(sorted)
	return k.runBound(produced, nil, sorted.Len())
}

// gatherIDs sizes the probe set against rel's join-key index and decides
// between the restricted and full-scan strategy. No row ids are materialized
// here: consumers re-resolve the probes against the sorted copy they scan
// (runIDBatch), whose own key index persists across Apply calls. fallback is
// set when the subset would cover most of the relation (same threshold as
// the interpreted path, counting pre-dedup matches): callers should
// full-scan instead.
func gatherIDs(rel *data.Relation, probes []probeReq) (*subsetEntry, error) {
	total := 0
	for _, p := range probes {
		ix, err := rel.KeyIndex(p.attrs)
		if err != nil {
			return nil, err
		}
		total += len(ix.Rows(p.key))
	}
	if 2*total > rel.Len() {
		return &subsetEntry{fallback: true}, nil
	}
	return &subsetEntry{probes: probes, total: total}, nil
}
