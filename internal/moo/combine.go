package moo

import "fmt"

// CombineViews merges the materialized views of disjoint data partitions
// into one: the group sets union and the aggregate values of shared groups
// add, column by column — hidden tuple-count columns included, so the merged
// view carries exactly the counts a single evaluation over the union of the
// partitions would have produced. This is the read-side merge behind sharded
// maintenance (lmfao.ShardedSession): each shard evaluates the same query
// over its partition of the fact data, and because every join tuple of the
// full database lives in exactly one shard, summing per-shard aggregates
// over the unioned group set reconstructs the unsharded result.
//
// All parts must share one schema (same group-by attributes in the same
// order, same stride); nil or empty parts are skipped. The inputs are not
// mutated and share no storage with the result. Groups are emitted in
// first-seen order across parts (part order, then row order) — like any
// freshly built ViewData, row order is not part of the result contract.
//
// Correctness note for partitioned aggregation: per-part tuple counts are
// non-negative, so a group's merged count is zero only when every part
// reports it zero — a group can never vanish by cross-part cancellation, and
// zero-count rows never arise here (parts drop them before publication).
// Scalar (empty group-by) views stay single-row by construction: every part
// contributes the same empty key.
func CombineViews(parts []*ViewData) (*ViewData, error) {
	var ref *ViewData
	for _, p := range parts {
		if p == nil {
			continue
		}
		if ref == nil {
			ref = p
			continue
		}
		if err := sameViewSchema(ref, p); err != nil {
			return nil, err
		}
	}
	if ref == nil {
		return nil, fmt.Errorf("moo: CombineViews over no views")
	}
	b := newViewBuilder(ref.GroupBy, ref.Stride, false)
	for _, p := range parts {
		addViewInto(b, p, 1)
	}
	return b.finalize(nil), nil
}

// sameViewSchema checks two views agree on group-by attributes and stride.
func sameViewSchema(a, b *ViewData) error {
	if a.Stride != b.Stride || len(a.GroupBy) != len(b.GroupBy) {
		return fmt.Errorf("moo: CombineViews schema mismatch: %v vs %v", a, b)
	}
	for i := range a.GroupBy {
		if a.GroupBy[i] != b.GroupBy[i] {
			return fmt.Errorf("moo: CombineViews group-by mismatch: %v vs %v", a.GroupBy, b.GroupBy)
		}
	}
	return nil
}
