package moo

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/jointree"
	"repro/internal/query"
)

// The multi-output plan for one view group (paper §3.5). Compilation follows
// the paper's three steps: (1) pick a join-attribute order for the group's
// relation (increasing domain size); (2) register incoming views at the
// lowest depth where their consumer key is bound and outgoing views at the
// depth of their deepest group-by attribute; (3) register every product
// aggregate as per-depth partial products. Partial products shared across
// aggregates become interned "slots"; the sums over deeper depths become
// interned suffix chains — the paper's running sums r_d; the products above
// the registration depth are multiplied at emission time — the paper's
// intermediate aggregates a_d.

type slotKind uint8

const (
	localSlot  slotKind = iota // product of factors over the depth's attribute
	lookupSlot                 // aggregate fetched from a bound incoming view
)

type slotSpec struct {
	kind slotKind
	// localSlot:
	factors []query.Factor
	fn      func(float64) float64 // composed product, non-nil in compiled mode
	// lookupSlot:
	input int // index into groupPlan.inputs
	col   int // aggregate column in the input view
}

// slotRef addresses a slot: depth == -1 refers to the global slots (inputs
// whose consumer key is empty, bound once per scan).
type slotRef struct {
	depth int
	idx   int
}

type leafSlot struct {
	factors []query.Factor
	cols    []data.Column // resolved columns, parallel to factors
	// rowFn is the composed per-row product reading columns directly
	// (compiled mode; rebuilt by resolveLeafCols).
	rowFn    func(r int) float64
	compiled bool
}

// suffixSpec is one node of a running-sum chain at some depth d:
// R_d[this] += Π slotVals(slots) × R_{d+1}[next]. After compilation the
// per-depth tables are flattened into suffixTab for tight scanning.
type suffixSpec struct {
	slots []int
	next  int
}

// suffixTab is the flattened (structure-of-arrays) suffix table of one
// depth: chain i multiplies slots[slotOff[i]:slotOff[i+1]] into R[next[i]].
type suffixTab struct {
	next    []int32
	slotOff []int32
	slots   []int32
}

func flattenSuffixes(specs []suffixSpec) suffixTab {
	t := suffixTab{
		next:    make([]int32, len(specs)),
		slotOff: make([]int32, len(specs)+1),
	}
	for i, sp := range specs {
		t.next[i] = int32(sp.next)
		for _, s := range sp.slots {
			t.slots = append(t.slots, int32(s))
		}
		t.slotOff[i+1] = int32(len(t.slots))
	}
	return t
}

type carriedRef struct {
	input int // index into groupPlan.inputs (a view with extras)
	col   int // aggregate column supplying the value factor
}

// keySource says where one output group-by value comes from: an order depth
// (carried == -1) or a carried view entry column.
type keySource struct {
	carried  int // index into emitSpec.carried, or -1
	depth    int // order depth when carried == -1
	extraCol int // key-column index in the carried view
}

type emitSpec struct {
	view     int // index into groupPlan.views
	col      int
	coef     float64
	regDepth int
	prefix   []slotRef
	carried  []carriedRef
	suffix   int // suffix id at depth regDepth+1 (leaf id when regDepth+1 == L)
	keySrc   []keySource
}

// emitGroup batches the emissions of one output view that share a
// registration depth, key sources and carried views: the output row is
// resolved once per context and every aggregate column is written
// sequentially — the paper's contiguous aggregate-array organization.
type emitGroup struct {
	view     int
	regDepth int
	keySrc   []keySource
	// carriedInputs lists the carried views (by input index) whose entries
	// are enumerated; per-emission value columns live in groupEmit.
	carriedInputs []int
	emits         []groupEmit
}

// groupEmit is the per-aggregate value recipe within an emitGroup.
type groupEmit struct {
	col         int
	coef        float64
	prefix      []slotRef
	suffix      int
	carriedCols []int // one value column per carriedInputs entry
}

type inputSpec struct {
	id int // view ID in the logical plan
	// keyAttrs is the consumer key (group-by ∩ node schema, ID order) and
	// extraAttrs the carried remainder — both derived logically so plans
	// compile without materialized data.
	keyAttrs   []data.AttrID
	extraAttrs []data.AttrID
	keyDepths  []int // order depth per consumer-key attribute
	bindDepth  int   // max(keyDepths); -1 when the consumer key is empty
	carried    bool  // has extras
}

type groupPlan struct {
	group *core.Group
	node  *jointree.Node
	rel   *data.Relation // sorted by order
	order []data.AttrID
	L     int

	inputs     []inputSpec
	globalBind []int // inputs with bindDepth == -1

	globalSlots []slotSpec
	depthSlots  [][]slotSpec // [d]
	bindAt      [][]int      // [d] → input indices bound at depth d
	leafSlots   []leafSlot
	suffixes    [][]suffixSpec // [d], d in 0..L-1
	sfxTabs     []suffixTab    // flattened suffixes per depth

	emits       []emitSpec
	emitGroups  []emitGroup
	emitsAt     [][]int // [d] → emitGroup indices with regDepth == d
	emitsScalar []int   // emitGroup indices with regDepth == -1

	views []*core.View
	// targets[i] is the consumer node schema for finalize (nil for outputs).
	targets [][]data.AttrID
}

type planCompiler struct {
	gp        *groupPlan
	compiled  bool
	depthIdx  map[data.AttrID]int
	slotSigs  []map[string]int // per depth
	globalSig map[string]int
	leafSig   map[string]int
	sfxSigs   []map[string]int
	inputIdx  map[int]int // view ID → inputs index
}

// compileGroup builds the multi-output plan for group g from the logical
// plan alone; materialized input views are bound later at execution time.
func compileGroup(p *core.Plan, g *core.Group, compiled bool) (*groupPlan, error) {
	node := p.Tree.Nodes[g.Node]
	gp := &groupPlan{group: g, node: node}
	pc := &planCompiler{
		gp:        gp,
		compiled:  compiled,
		globalSig: map[string]int{},
		leafSig:   map[string]int{},
		inputIdx:  map[int]int{},
	}

	// Collect the distinct input views and the order attribute set.
	orderSet := map[data.AttrID]struct{}{}
	var inputIDs []int
	for _, vid := range g.Views {
		v := p.Views[vid]
		gp.views = append(gp.views, v)
		if v.IsOutput() {
			gp.targets = append(gp.targets, nil)
		} else {
			gp.targets = append(gp.targets, p.Tree.Nodes[v.To].Attrs)
		}
		for _, gb := range v.GroupBy {
			if node.HasAttr(gb) {
				orderSet[gb] = struct{}{}
			}
		}
		for _, in := range v.InputViews() {
			if _, ok := pc.inputIdx[in]; !ok {
				pc.inputIdx[in] = len(inputIDs)
				inputIDs = append(inputIDs, in)
			}
		}
	}
	inKeys := make([][]data.AttrID, len(inputIDs))
	inExtras := make([][]data.AttrID, len(inputIDs))
	for i, id := range inputIDs {
		for _, a := range p.Views[id].GroupBy {
			if node.HasAttr(a) {
				inKeys[i] = append(inKeys[i], a)
				orderSet[a] = struct{}{}
			} else {
				inExtras[i] = append(inExtras[i], a)
			}
		}
	}

	// Join-attribute order: increasing domain size (paper §3.5), ties by ID.
	for a := range orderSet {
		gp.order = append(gp.order, a)
	}
	sort.Slice(gp.order, func(i, j int) bool {
		di := node.Rel.DistinctCount(gp.order[i])
		dj := node.Rel.DistinctCount(gp.order[j])
		if di != dj {
			return di < dj
		}
		return gp.order[i] < gp.order[j]
	})
	gp.L = len(gp.order)
	pc.depthIdx = make(map[data.AttrID]int, gp.L)
	for d, a := range gp.order {
		pc.depthIdx[a] = d
	}
	gp.depthSlots = make([][]slotSpec, gp.L)
	gp.bindAt = make([][]int, gp.L)
	gp.suffixes = make([][]suffixSpec, gp.L)
	gp.emitsAt = make([][]int, gp.L)
	pc.slotSigs = make([]map[string]int, gp.L)
	pc.sfxSigs = make([]map[string]int, gp.L)
	for d := 0; d < gp.L; d++ {
		pc.slotSigs[d] = map[string]int{}
		pc.sfxSigs[d] = map[string]int{}
	}

	// Input registration (paper: "each view is registered at the lowest
	// attribute in the order that is a group-by attribute of V").
	for i, id := range inputIDs {
		in := inputSpec{
			id:         id,
			keyAttrs:   inKeys[i],
			extraAttrs: inExtras[i],
			bindDepth:  -1,
			carried:    len(inExtras[i]) > 0,
		}
		for _, a := range in.keyAttrs {
			d := pc.depthIdx[a]
			in.keyDepths = append(in.keyDepths, d)
			if d > in.bindDepth {
				in.bindDepth = d
			}
		}
		idx := len(gp.inputs)
		gp.inputs = append(gp.inputs, in)
		if in.bindDepth == -1 {
			gp.globalBind = append(gp.globalBind, idx)
		} else {
			gp.bindAt[in.bindDepth] = append(gp.bindAt[in.bindDepth], idx)
		}
	}

	// Aggregate registration per view column term.
	for vi, v := range gp.views {
		for ci, col := range v.Cols {
			for ti, aggIdx := range col.Aggs {
				if err := pc.registerTerm(p, vi, v, ci, col.Coefs[ti], v.Aggs[aggIdx]); err != nil {
					return nil, err
				}
			}
		}
	}
	gp.sfxTabs = make([]suffixTab, gp.L)
	for d := 0; d < gp.L; d++ {
		gp.sfxTabs[d] = flattenSuffixes(gp.suffixes[d])
	}
	gp.buildEmitGroups()
	return gp, nil
}

// buildEmitGroups batches emissions sharing (view, regDepth, key sources,
// carried views) and registers the groups at their depths.
func (gp *groupPlan) buildEmitGroups() {
	sig := func(e *emitSpec) string {
		var b strings.Builder
		fmt.Fprintf(&b, "v%d@%d|", e.view, e.regDepth)
		for _, ks := range e.keySrc {
			fmt.Fprintf(&b, "k%d.%d.%d,", ks.carried, ks.depth, ks.extraCol)
		}
		b.WriteString("|")
		for _, cr := range e.carried {
			fmt.Fprintf(&b, "c%d,", cr.input)
		}
		return b.String()
	}
	idx := map[string]int{}
	for ei := range gp.emits {
		e := &gp.emits[ei]
		k := sig(e)
		gi, ok := idx[k]
		if !ok {
			gi = len(gp.emitGroups)
			g := emitGroup{view: e.view, regDepth: e.regDepth, keySrc: e.keySrc}
			for _, cr := range e.carried {
				g.carriedInputs = append(g.carriedInputs, cr.input)
			}
			gp.emitGroups = append(gp.emitGroups, g)
			idx[k] = gi
			if e.regDepth == -1 {
				gp.emitsScalar = append(gp.emitsScalar, gi)
			} else {
				gp.emitsAt[e.regDepth] = append(gp.emitsAt[e.regDepth], gi)
			}
		}
		ge := groupEmit{col: e.col, coef: e.coef, prefix: e.prefix, suffix: e.suffix}
		for _, cr := range e.carried {
			ge.carriedCols = append(ge.carriedCols, cr.col)
		}
		gp.emitGroups[gi].emits = append(gp.emitGroups[gi].emits, ge)
	}
}

// registerTerm decomposes one product aggregate into slots, a suffix chain
// and an emission.
func (pc *planCompiler) registerTerm(p *core.Plan, vi int, v *core.View, col int, coef float64, pa core.ProdAgg) error {
	gp := pc.gp
	e := emitSpec{view: vi, col: col, coef: coef, regDepth: -1}

	// Partition local factors by depth; fold constants into the coefficient.
	localByDepth := make(map[int][]query.Factor)
	var leafFactors []query.Factor
	for _, f := range pa.Factors {
		switch {
		case !f.HasAttr():
			e.coef *= f.Value
		default:
			if d, ok := pc.depthIdx[f.Attr]; ok {
				localByDepth[d] = append(localByDepth[d], f)
			} else {
				if !gp.node.HasAttr(f.Attr) {
					return fmt.Errorf("moo: factor attribute %d not in node %q", f.Attr, gp.node.Rel.Name)
				}
				leafFactors = append(leafFactors, f)
			}
		}
	}

	// Registration depth: deepest order-resident group-by attribute and
	// deepest carried-view binding.
	for _, g := range v.GroupBy {
		if d, ok := pc.depthIdx[g]; ok && gp.node.HasAttr(g) {
			if d > e.regDepth {
				e.regDepth = d
			}
		}
	}
	type carriedIn struct {
		inputIdx int
		ref      core.InputRef
	}
	var carriedIns []carriedIn
	var scalarIns []carriedIn
	for _, in := range pa.Inputs {
		ii, ok := pc.inputIdx[in.View]
		if !ok {
			return fmt.Errorf("moo: unregistered input view %d", in.View)
		}
		if gp.inputs[ii].carried {
			carriedIns = append(carriedIns, carriedIn{ii, in})
			if bd := gp.inputs[ii].bindDepth; bd > e.regDepth {
				e.regDepth = bd
			}
		} else {
			scalarIns = append(scalarIns, carriedIn{ii, in})
		}
	}
	for _, c := range carriedIns {
		e.carried = append(e.carried, carriedRef{input: c.inputIdx, col: c.ref.Agg})
	}

	// Assemble per-depth slot lists.
	suffixSlots := make([][]int, gp.L) // depth → slot indices (depth > regDepth)
	addSlot := func(depth int, spec slotSpec, sig string) {
		var idx int
		if depth == -1 {
			idx = pc.internGlobal(spec, sig)
		} else {
			idx = pc.internDepth(depth, spec, sig)
		}
		if depth <= e.regDepth {
			e.prefix = append(e.prefix, slotRef{depth: depth, idx: idx})
		} else {
			suffixSlots[depth] = append(suffixSlots[depth], idx)
		}
	}
	var depths []int
	for d := range localByDepth {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	for _, d := range depths {
		fs := localByDepth[d]
		sortFactors(fs)
		addSlot(d, pc.makeLocalSlot(fs), localSig(fs))
	}
	for _, s := range scalarIns {
		spec := slotSpec{kind: lookupSlot, input: s.inputIdx, col: s.ref.Agg}
		addSlot(gp.inputs[s.inputIdx].bindDepth, spec, fmt.Sprintf("lk%d.%d", s.inputIdx, s.ref.Agg))
	}

	// Leaf slot terminates every chain (the row-level count/row-factor sum).
	sortFactors(leafFactors)
	leafID := pc.internLeaf(leafFactors)

	// Build the suffix chain bottom-up from the leaf.
	next := leafID
	for d := gp.L - 1; d > e.regDepth; d-- {
		slots := suffixSlots[d]
		sort.Ints(slots)
		next = pc.internSuffix(d, slots, next)
	}
	e.suffix = next

	// Key sources: order-resident attributes, then carried extras, in
	// view.GroupBy order.
	for _, g := range v.GroupBy {
		if d, ok := pc.depthIdx[g]; ok && gp.node.HasAttr(g) {
			e.keySrc = append(e.keySrc, keySource{carried: -1, depth: d})
			continue
		}
		found := false
		for ci, c := range e.carried {
			in := &gp.inputs[c.input]
			gbAttrs := p.Views[in.id].GroupBy
			for _, ea := range in.extraAttrs {
				if ea != g {
					continue
				}
				for ep, ga := range gbAttrs {
					if ga == g {
						e.keySrc = append(e.keySrc, keySource{carried: ci, extraCol: ep})
						found = true
						break
					}
				}
				break
			}
			if found {
				break
			}
		}
		if !found {
			return fmt.Errorf("moo: group-by attribute %d of view %d has no source", g, v.ID)
		}
	}

	gp.emits = append(gp.emits, e)
	return nil
}

func (pc *planCompiler) makeLocalSlot(fs []query.Factor) slotSpec {
	spec := slotSpec{kind: localSlot, factors: fs}
	if pc.compiled {
		spec.fn = composeFactors(fs)
	}
	return spec
}

// composeFactors folds a factor product into one closure — the closure
// analogue of the paper's inlined function calls.
func composeFactors(fs []query.Factor) func(float64) float64 {
	switch len(fs) {
	case 0:
		return func(float64) float64 { return 1 }
	case 1:
		return fs[0].Compile()
	case 2:
		a, b := fs[0].Compile(), fs[1].Compile()
		return func(x float64) float64 { return a(x) * b(x) }
	default:
		compiled := make([]func(float64) float64, len(fs))
		for i, f := range fs {
			compiled[i] = f.Compile()
		}
		return func(x float64) float64 {
			p := 1.0
			for _, fn := range compiled {
				p *= fn(x)
			}
			return p
		}
	}
}

// composeRow builds the per-row product closure over resolved columns.
func composeRow(fs []query.Factor, cols []data.Column) func(int) float64 {
	acc := make([]func(int) float64, len(fs))
	for i, f := range fs {
		fn := f.Compile()
		if cols[i].IsInt() {
			ints := cols[i].Ints
			acc[i] = func(r int) float64 { return fn(float64(ints[r])) }
		} else {
			flts := cols[i].Floats
			acc[i] = func(r int) float64 { return fn(flts[r]) }
		}
	}
	switch len(acc) {
	case 1:
		return acc[0]
	case 2:
		a, b := acc[0], acc[1]
		return func(r int) float64 { return a(r) * b(r) }
	default:
		return func(r int) float64 {
			p := 1.0
			for _, fn := range acc {
				p *= fn(r)
			}
			return p
		}
	}
}

// Interning note: sharing partial products, lookups and running-sum chains
// across aggregates via local variables is part of the paper's Compilation
// layer ("introduction of local variables [to] maximize the computation
// sharing across many aggregates", "reuse of arithmetic operations"). The
// interpreted AC/DC proxy therefore skips deduplication and recomputes each
// aggregate's partials independently.

func (pc *planCompiler) internDepth(d int, spec slotSpec, sig string) int {
	if i, ok := pc.slotSigs[d][sig]; ok && pc.compiled {
		return i
	}
	i := len(pc.gp.depthSlots[d])
	pc.gp.depthSlots[d] = append(pc.gp.depthSlots[d], spec)
	pc.slotSigs[d][sig] = i
	return i
}

func (pc *planCompiler) internGlobal(spec slotSpec, sig string) int {
	if i, ok := pc.globalSig[sig]; ok && pc.compiled {
		return i
	}
	i := len(pc.gp.globalSlots)
	pc.gp.globalSlots = append(pc.gp.globalSlots, spec)
	pc.globalSig[sig] = i
	return i
}

func (pc *planCompiler) internLeaf(fs []query.Factor) int {
	sig := localSig(fs)
	if i, ok := pc.leafSig[sig]; ok && pc.compiled {
		return i
	}
	ls := leafSlot{factors: fs, compiled: pc.compiled}
	for _, f := range fs {
		ls.cols = append(ls.cols, pc.gp.node.Rel.MustCol(f.Attr))
	}
	i := len(pc.gp.leafSlots)
	pc.gp.leafSlots = append(pc.gp.leafSlots, ls)
	pc.leafSig[sig] = i
	return i
}

func (pc *planCompiler) internSuffix(d int, slots []int, next int) int {
	parts := make([]string, len(slots))
	for i, s := range slots {
		parts[i] = fmt.Sprint(s)
	}
	sig := strings.Join(parts, ",") + "|" + fmt.Sprint(next)
	if i, ok := pc.sfxSigs[d][sig]; ok && pc.compiled {
		return i
	}
	i := len(pc.gp.suffixes[d])
	pc.gp.suffixes[d] = append(pc.gp.suffixes[d], suffixSpec{slots: slots, next: next})
	pc.sfxSigs[d][sig] = i
	return i
}

func sortFactors(fs []query.Factor) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Attr != fs[j].Attr {
			return fs[i].Attr < fs[j].Attr
		}
		return fs[i].Signature() < fs[j].Signature()
	})
}

func localSig(fs []query.Factor) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.Signature()
	}
	return strings.Join(parts, "*")
}

// numSuffix returns the number of running-sum entries at depth d, where
// depth L aliases the leaf slots.
func (gp *groupPlan) numSuffix(d int) int {
	if d == gp.L {
		return len(gp.leafSlots)
	}
	return len(gp.suffixes[d])
}

// resolveLeafCols rebinds leaf slot columns against rel (the sorted copy may
// differ from the relation used at compile time) and composes the per-row
// closures in compiled mode.
func (gp *groupPlan) resolveLeafCols() {
	for i := range gp.leafSlots {
		ls := &gp.leafSlots[i]
		for j, f := range ls.factors {
			ls.cols[j] = gp.rel.MustCol(f.Attr)
		}
		if ls.compiled && len(ls.factors) > 0 {
			ls.rowFn = composeRow(ls.factors, ls.cols)
		}
	}
}
