package moo

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/data"
	"repro/internal/query"
)

// TestDoubleCarriedGroupBy forces a single query whose two group-by
// attributes are carried from two different child views of the same root —
// the nested carried-entry enumeration (paper's multi-relation group-bys).
func TestDoubleCarriedGroupBy(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	db := data.NewDatabase()
	k1 := db.Attr("k1", data.Key)
	k2 := db.Attr("k2", data.Key)
	c1 := db.Attr("c1", data.Key)
	c2 := db.Attr("c2", data.Key)
	m := db.Attr("m", data.Numeric)

	dom := 5
	n := 60
	f1 := make([]int64, n)
	f2 := make([]int64, n)
	mv := make([]float64, n)
	for i := range f1 {
		f1[i] = int64(rng.Intn(dom))
		f2[i] = int64(rng.Intn(dom))
		mv[i] = float64(rng.Intn(9)) + 0.5
	}
	fact := data.NewRelation("F", []data.AttrID{k1, k2, m}, []data.Column{
		data.NewIntColumn(f1), data.NewIntColumn(f2), data.NewFloatColumn(mv)})
	if err := db.AddRelation(fact); err != nil {
		t.Fatal(err)
	}
	mkDim := func(name string, k, c data.AttrID) {
		kv := make([]int64, dom)
		cv := make([]int64, dom)
		for i := 0; i < dom; i++ {
			kv[i] = int64(i)
			cv[i] = int64(i % 2)
		}
		if err := db.AddRelation(data.NewRelation(name, []data.AttrID{k, c},
			[]data.Column{data.NewIntColumn(kv), data.NewIntColumn(cv)})); err != nil {
			t.Fatal(err)
		}
	}
	mkDim("D1", k1, c1)
	mkDim("D2", k2, c2)

	// Many fact-anchored queries pull the shared single root to F; the
	// (c1,c2) query must then carry both attributes from the two dimension
	// views at once.
	batch := []*query.Query{
		query.NewQuery("f1", []data.AttrID{k1}, query.SumAgg(m)),
		query.NewQuery("f2", []data.AttrID{k2}, query.SumAgg(m)),
		query.NewQuery("cross", []data.AttrID{c1, c2},
			query.CountAgg(), query.SumAgg(m)),
	}
	base, err := baseline.New(db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, multiRoot := range []bool{false, true} {
		eng, err := NewEngine(db, Options{Compiled: true, MultiOutput: true,
			MultiRoot: multiRoot, Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(batch)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range batch {
			compareResults(t, fmt.Sprintf("multiRoot=%v/%s", multiRoot, batch[qi].Name),
				res.Results[qi], want[qi])
		}
		// Sanity: with a single root at F, the cross query really uses two
		// carried views (its root cannot contain c1 or c2).
		if !multiRoot {
			root := res.Plan.Roots[2]
			node := eng.Tree().Nodes[root]
			if node.HasAttr(c1) && node.HasAttr(c2) {
				t.Fatal("test is vacuous: root contains both group-by attributes")
			}
		}
	}
}

// TestCrossProductSchema joins two relations with no shared attributes: the
// tree gets a zero-weight edge and child views have empty consumer keys
// (global binds).
func TestCrossProductSchema(t *testing.T) {
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	x := db.Attr("x", data.Numeric)
	b := db.Attr("b", data.Key)
	y := db.Attr("y", data.Numeric)
	r1 := data.NewRelation("R1", []data.AttrID{a, x}, []data.Column{
		data.NewIntColumn([]int64{1, 1, 2}),
		data.NewFloatColumn([]float64{1, 2, 3})})
	r2 := data.NewRelation("R2", []data.AttrID{b, y}, []data.Column{
		data.NewIntColumn([]int64{7, 8}),
		data.NewFloatColumn([]float64{10, 20})})
	if err := db.AddRelation(r1); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(r2); err != nil {
		t.Fatal(err)
	}
	batch := []*query.Query{
		query.NewQuery("count", nil, query.CountAgg()),
		query.NewQuery("bya", []data.AttrID{a}, query.SumAgg(y)),
		query.NewQuery("cross", []data.AttrID{a, b}, query.SumProdAgg(x, y)),
	}
	base, err := baseline.New(db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	if want[0].Rows[""][0] != 6 { // 3 × 2 cross product
		t.Fatalf("baseline cross count = %g", want[0].Rows[""][0])
	}
	for _, v := range optionVariants {
		eng, err := NewEngine(db, v.opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(batch)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		for qi := range batch {
			compareResults(t, v.name+"/"+batch[qi].Name, res.Results[qi], want[qi])
		}
	}
}

// TestCyclicSchemaEndToEnd runs aggregates over a triangle query: the join
// tree materializes a hypertree bag first (paper footnote 1).
func TestCyclicSchemaEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	b := db.Attr("b", data.Key)
	c := db.Attr("c", data.Key)
	w := db.Attr("w", data.Numeric)
	mk := func(name string, x, y data.AttrID, withW bool) {
		n := 25
		xv := make([]int64, n)
		yv := make([]int64, n)
		wv := make([]float64, n)
		for i := 0; i < n; i++ {
			xv[i] = int64(rng.Intn(4))
			yv[i] = int64(rng.Intn(4))
			wv[i] = float64(rng.Intn(5)) + 0.5
		}
		attrs := []data.AttrID{x, y}
		cols := []data.Column{data.NewIntColumn(xv), data.NewIntColumn(yv)}
		if withW {
			attrs = append(attrs, w)
			cols = append(cols, data.NewFloatColumn(wv))
		}
		if err := db.AddRelation(data.NewRelation(name, attrs, cols)); err != nil {
			t.Fatal(err)
		}
	}
	mk("R", a, b, true)
	mk("S", b, c, false)
	mk("T", a, c, false)

	batch := []*query.Query{
		query.NewQuery("count", nil, query.CountAgg()),
		query.NewQuery("bya", []data.AttrID{a}, query.SumAgg(w)),
	}
	base, err := baseline.New(db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(db, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.Tree().Nodes) >= 3 {
		t.Fatalf("triangle not decomposed: %d nodes", len(eng.Tree().Nodes))
	}
	res, err := eng.Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range batch {
		compareResults(t, batch[qi].Name, res.Results[qi], want[qi])
	}
}

// TestEmptyRelation: one relation has zero tuples, so every join result is
// empty.
func TestEmptyRelation(t *testing.T) {
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	b := db.Attr("b", data.Key)
	r1 := data.NewRelation("R1", []data.AttrID{a, b}, []data.Column{
		data.NewIntColumn([]int64{1, 2}), data.NewIntColumn([]int64{1, 2})})
	r2 := data.NewRelation("R2", []data.AttrID{b}, []data.Column{
		data.NewIntColumn(nil)})
	if err := db.AddRelation(r1); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(r2); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(db, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run([]*query.Query{
		query.NewQuery("count", nil, query.CountAgg()),
		query.NewQuery("bya", []data.AttrID{a}, query.CountAgg()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].NumRows() != 1 || res.Results[0].Val(0, 0) != 0 {
		t.Fatalf("scalar over empty join: %v rows, %g",
			res.Results[0].NumRows(), res.Results[0].Val(0, 0))
	}
	if res.Results[1].NumRows() != 0 {
		t.Fatalf("group-by over empty join has %d rows", res.Results[1].NumRows())
	}
}

// TestExample33Execution executes the paper's Example 3.3: per-attribute
// count queries over a key chain, with per-query roots.
func TestExample33Execution(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	db := data.NewDatabase()
	nAttrs := 5
	attrs := make([]data.AttrID, nAttrs+1)
	for i := 1; i <= nAttrs; i++ {
		attrs[i] = db.Attr(fmt.Sprintf("x%d", i), data.Key)
	}
	for i := 1; i < nAttrs; i++ {
		n := 40
		av := make([]int64, n)
		bv := make([]int64, n)
		for r := 0; r < n; r++ {
			av[r] = int64(rng.Intn(3))
			bv[r] = int64(rng.Intn(3))
		}
		if err := db.AddRelation(data.NewRelation(fmt.Sprintf("S%d", i),
			[]data.AttrID{attrs[i], attrs[i+1]},
			[]data.Column{data.NewIntColumn(av), data.NewIntColumn(bv)})); err != nil {
			t.Fatal(err)
		}
	}
	var batch []*query.Query
	for i := 1; i <= nAttrs; i++ {
		batch = append(batch, query.NewQuery(fmt.Sprintf("Q%d", i),
			[]data.AttrID{attrs[i]}, query.CountAgg()))
	}
	base, err := baseline.New(db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(db, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range batch {
		compareResults(t, batch[qi].Name, res.Results[qi], want[qi])
	}
	// The multi-root plan shares directional count views: at most 2 per
	// edge (Example 3.3's L_i / R_i views).
	edges := len(eng.Tree().Nodes) - 1
	if res.Plan.Stats.Views > 2*edges {
		t.Fatalf("views = %d, want <= %d", res.Plan.Stats.Views, 2*edges)
	}
	// And every query root contains its group-by attribute.
	for qi, q := range batch {
		if !eng.Tree().Nodes[res.Plan.Roots[qi]].HasAttr(q.GroupBy[0]) {
			t.Fatalf("query %d rooted away from its group-by", qi)
		}
	}
}

// TestDeepSnowflakeCarriedTwoHops: census-style attribute two joins away
// from the fact relation, grouped together with a fact attribute.
func TestDeepSnowflakeCarriedTwoHops(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	db := data.NewDatabase()
	locn := db.Attr("locn", data.Key)
	zip := db.Attr("zip", data.Key)
	pop := db.Attr("pop", data.Key) // discrete so it can be grouped
	item := db.Attr("item", data.Key)
	units := db.Attr("units", data.Numeric)

	nZip, nLoc, nFact := 4, 8, 70
	zv := make([]int64, nZip)
	pv := make([]int64, nZip)
	for i := range zv {
		zv[i] = int64(i)
		pv[i] = int64(i % 2)
	}
	if err := db.AddRelation(data.NewRelation("Census",
		[]data.AttrID{zip, pop},
		[]data.Column{data.NewIntColumn(zv), data.NewIntColumn(pv)})); err != nil {
		t.Fatal(err)
	}
	lv := make([]int64, nLoc)
	lz := make([]int64, nLoc)
	for i := range lv {
		lv[i] = int64(i)
		lz[i] = int64(rng.Intn(nZip))
	}
	if err := db.AddRelation(data.NewRelation("Location",
		[]data.AttrID{locn, zip},
		[]data.Column{data.NewIntColumn(lv), data.NewIntColumn(lz)})); err != nil {
		t.Fatal(err)
	}
	fl := make([]int64, nFact)
	fi := make([]int64, nFact)
	fu := make([]float64, nFact)
	for i := range fl {
		fl[i] = int64(rng.Intn(nLoc))
		fi[i] = int64(rng.Intn(5))
		fu[i] = float64(rng.Intn(10))
	}
	if err := db.AddRelation(data.NewRelation("Inventory",
		[]data.AttrID{locn, item, units},
		[]data.Column{data.NewIntColumn(fl), data.NewIntColumn(fi), data.NewFloatColumn(fu)})); err != nil {
		t.Fatal(err)
	}

	batch := []*query.Query{
		// pop is two hops from Inventory; item is local to it.
		query.NewQuery("span", []data.AttrID{pop, item},
			query.CountAgg(), query.SumAgg(units)),
		query.NewQuery("anchor", []data.AttrID{item}, query.SumAgg(units)),
	}
	checkBatch(t, db, batch)
}
