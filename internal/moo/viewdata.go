// Package moo implements LMFAO's physical layer: multi-output execution
// plans (paper §3.5) evaluated by a single trie-style scan over each view
// group's relation, the materialized view representation, and task/domain
// parallelism. It consumes the logical plans of internal/core.
package moo

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/data"
)

// ViewData is a materialized view: group-by key columns plus row-major
// aggregate values. After finalization against its target node's schema it
// carries an index from the "consumer key" (group-by attributes shared with
// the target) to the contiguous range of entries for that key; the remaining
// group-by attributes are the view's extras, carried into consumer outputs.
//
// Published views are frozen: snapshot readers walk them with no locking,
// so every in-place mutation happens in builder/maintenance code that runs
// before the view is reachable from a snapshot (annotated
// lmfao:pre-publish); the sole post-publication write is the fullIdx
// atomic, which publishes a whole immutable map.
//
// lmfao:immutable-after-publish
type ViewData struct {
	GroupBy []data.AttrID
	// Keys holds one column per group-by attribute (parallel to GroupBy).
	Keys [][]int64
	// Vals holds aggregate values row-major with stride Stride.
	Vals   []float64
	Stride int

	rows int

	// Consumer-side layout (set by finalize):
	skeyPos  []int // positions in GroupBy of the consumer-key attributes
	extraPos []int // positions in GroupBy of the carried attributes
	index    map[string][2]int32

	// fullIdx lazily maps packed full group-by keys to row indices; built by
	// the maintenance fast path (and by EnsureIndex before snapshot
	// publication) and shared across merges while the key columns are
	// shared. The pointer is atomic because the single writer may build the
	// index on a view concurrent readers already hold through a published
	// snapshot: a reader's Lookup observes either nil (and scans linearly)
	// or a fully built, immutable map. Only the writer ever builds.
	fullIdx atomic.Pointer[map[string]int32]
}

// fullKeyIndex returns (building on first use) the packed-full-key → row map.
// Building is writer-side only; a duplicate build is wasted work, never a
// torn read, because the map is published whole via the atomic pointer and
// never mutated afterwards.
func (v *ViewData) fullKeyIndex() map[string]int32 {
	if p := v.fullIdx.Load(); p != nil {
		return *p
	}
	idx := make(map[string]int32, v.rows)
	buf := make([]byte, 0, 8*len(v.GroupBy))
	for i := 0; i < v.rows; i++ {
		buf = buf[:0]
		for c := range v.GroupBy {
			buf = data.AppendKey(buf, v.Keys[c][i])
		}
		idx[string(buf)] = int32(i)
	}
	v.fullIdx.Store(&idx)
	return idx
}

// EnsureIndex pre-builds the full-key lookup index so subsequent Lookup
// calls are O(1) map probes. Sessions call it on every output view before
// publishing a snapshot: concurrent snapshot readers then share the
// immutable index and never build (or mutate) anything on the read path.
func (v *ViewData) EnsureIndex() { v.fullKeyIndex() }

// NumRows returns the number of result tuples.
func (v *ViewData) NumRows() int { return v.rows }

// Val returns the aggregate in column col of row i.
func (v *ViewData) Val(i, col int) float64 { return v.Vals[i*v.Stride+col] }

// Key returns the group-by values of row i, in GroupBy order.
func (v *ViewData) Key(i int) []int64 {
	out := make([]int64, len(v.GroupBy))
	for c := range v.GroupBy {
		out[c] = v.Keys[c][i]
	}
	return out
}

// KeyAt returns the value of group-by column c in row i.
func (v *ViewData) KeyAt(i, c int) int64 { return v.Keys[c][i] }

// Extras returns the carried group-by attributes (set after finalize).
func (v *ViewData) Extras() []data.AttrID {
	out := make([]data.AttrID, len(v.extraPos))
	for i, p := range v.extraPos {
		out[i] = v.GroupBy[p]
	}
	return out
}

// SizeBytes returns the in-memory payload size (keys + aggregates).
func (v *ViewData) SizeBytes() int64 {
	return int64(v.rows)*int64(len(v.GroupBy))*8 + int64(len(v.Vals))*8
}

// Lookup returns the row index for an exact full group-by key, or -1. It
// probes the full-key index when one has been built (EnsureIndex, or the
// maintenance fast path) and falls back to a linear scan otherwise — never
// building on the lookup path, so it is safe for concurrent readers of a
// published snapshot.
func (v *ViewData) Lookup(key ...int64) int {
	if len(key) != len(v.GroupBy) {
		return -1
	}
	if p := v.fullIdx.Load(); p != nil {
		buf := data.AppendKey(make([]byte, 0, 8*len(key)), key...)
		if r, ok := (*p)[string(buf)]; ok {
			return int(r)
		}
		return -1
	}
	for i := 0; i < v.rows; i++ {
		match := true
		for c := range key {
			if v.Keys[c][i] != key[c] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// viewBuilder accumulates rows during group execution. Emission keys arrive
// clustered by the scan order, so the last key/row pair is cached to skip
// the hash lookup on runs of equal keys.
type viewBuilder struct {
	vd      *ViewData
	lookup  map[string]int32
	keybuf  []byte
	lastKey string
	lastRow int32
}

func newViewBuilder(groupBy []data.AttrID, stride int, scalarInit bool) *viewBuilder {
	b := &viewBuilder{
		vd: &ViewData{
			GroupBy: groupBy,
			Keys:    make([][]int64, len(groupBy)),
			Stride:  stride,
		},
		lookup: make(map[string]int32),
		keybuf: make([]byte, 0, 8*len(groupBy)),
	}
	b.lastRow = -1
	if scalarInit && len(groupBy) == 0 {
		// Scalar application outputs always deliver one row (zero-valued
		// over an empty join), matching SQL aggregate semantics.
		b.row(nil)
	}
	return b
}

// row returns the row index for key, creating a zero-initialized row on
// first sight.
//
// lmfao:pre-publish
func (b *viewBuilder) row(key []int64) int32 {
	b.keybuf = data.AppendKey(b.keybuf[:0], key...)
	if b.lastRow >= 0 && string(b.keybuf) == b.lastKey {
		return b.lastRow
	}
	if r, ok := b.lookup[string(b.keybuf)]; ok {
		b.lastKey, b.lastRow = string(b.keybuf), r
		return r
	}
	r := int32(b.vd.rows)
	k := string(b.keybuf)
	b.lookup[k] = r
	for c := range key {
		b.vd.Keys[c] = append(b.vd.Keys[c], key[c])
	}
	for i := 0; i < b.vd.Stride; i++ {
		b.vd.Vals = append(b.vd.Vals, 0)
	}
	b.vd.rows++
	b.lastKey, b.lastRow = k, r
	return r
}

// add accumulates val into (row, col).
//
// lmfao:pre-publish
func (b *viewBuilder) add(row int32, col int, val float64) {
	b.vd.Vals[int(row)*b.vd.Stride+col] += val
}

// merge folds other into b by key, summing aggregates. Used to combine
// per-thread partial outputs of domain-parallel scans.
func (b *viewBuilder) merge(other *viewBuilder) {
	key := make([]int64, len(b.vd.GroupBy))
	for i := 0; i < other.vd.rows; i++ {
		for c := range key {
			key[c] = other.vd.Keys[c][i]
		}
		r := b.row(key)
		for col := 0; col < b.vd.Stride; col++ {
			b.add(r, col, other.vd.Val(i, col))
		}
	}
}

// finalize sorts the rows by (consumer key, extras) relative to the target
// node's schema and builds the consumer-key range index. Pass nil targetAttrs
// for application outputs (no consumer).
//
// lmfao:pre-publish
func (b *viewBuilder) finalize(targetAttrs []data.AttrID) *ViewData {
	v := b.vd
	if targetAttrs == nil {
		return v
	}
	inTarget := func(a data.AttrID) bool {
		for _, t := range targetAttrs {
			if t == a {
				return true
			}
		}
		return false
	}
	for p, a := range v.GroupBy {
		if inTarget(a) {
			v.skeyPos = append(v.skeyPos, p)
		} else {
			v.extraPos = append(v.extraPos, p)
		}
	}

	// Sort rows by (skey, extras).
	perm := make([]int32, v.rows)
	for i := range perm {
		perm[i] = int32(i)
	}
	cmpPos := append(append([]int(nil), v.skeyPos...), v.extraPos...)
	sort.SliceStable(perm, func(x, y int) bool {
		px, py := perm[x], perm[y]
		for _, c := range cmpPos {
			if v.Keys[c][px] != v.Keys[c][py] {
				return v.Keys[c][px] < v.Keys[c][py]
			}
		}
		return false
	})
	newKeys := make([][]int64, len(v.Keys))
	for c := range v.Keys {
		col := make([]int64, v.rows)
		for i, p := range perm {
			col[i] = v.Keys[c][p]
		}
		newKeys[c] = col
	}
	newVals := make([]float64, len(v.Vals))
	for i, p := range perm {
		copy(newVals[i*v.Stride:(i+1)*v.Stride], v.Vals[int(p)*v.Stride:(int(p)+1)*v.Stride])
	}
	v.Keys = newKeys
	v.Vals = newVals

	// Build the skey → entry-range index.
	v.index = make(map[string][2]int32, v.rows)
	buf := make([]byte, 0, 8*len(v.skeyPos))
	start := 0
	for i := 1; i <= v.rows; i++ {
		if i < v.rows && sameSKey(v, i-1, i) {
			continue
		}
		buf = buf[:0]
		for _, c := range v.skeyPos {
			buf = data.AppendKey(buf, v.Keys[c][start])
		}
		v.index[string(buf)] = [2]int32{int32(start), int32(i)}
		start = i
	}
	return v
}

func sameSKey(v *ViewData, i, j int) bool {
	for _, c := range v.skeyPos {
		if v.Keys[c][i] != v.Keys[c][j] {
			return false
		}
	}
	return true
}

// bind returns the entry range for a packed consumer key.
func (v *ViewData) bind(packed string) (lo, hi int32, ok bool) {
	r, ok := v.index[packed]
	return r[0], r[1], ok
}

// SKeyAttrs returns the consumer-key attributes in index order.
func (v *ViewData) SKeyAttrs() []data.AttrID {
	out := make([]data.AttrID, len(v.skeyPos))
	for i, p := range v.skeyPos {
		out[i] = v.GroupBy[p]
	}
	return out
}

// String summarizes the view for debugging.
func (v *ViewData) String() string {
	return fmt.Sprintf("view[groupby=%v rows=%d cols=%d]", v.GroupBy, v.rows, v.Stride)
}
