package moo

import (
	"encoding/binary"
	"errors"
	"math"

	"repro/internal/data"
)

// Binary codec for ViewData, used by the WAL checkpoint format
// (internal/wal). The encoding captures everything a recovered session
// needs to resume maintenance bit-exactly: group-by schema, the consumer
// layout established by finalize (skey/extra positions), and the sorted
// keys and aggregates verbatim (float64 bits, so no value is perturbed).
// The consumer-key range index is rebuilt on decode rather than stored; the
// lazy full-key index starts empty and is rebuilt on demand, exactly as
// after a fresh evaluation.

// ErrViewCorrupt is returned by DecodeViewData for structurally invalid
// encodings.
var ErrViewCorrupt = errors.New("moo: corrupt view encoding")

// maxViewDim bounds decoded column counts so a corrupt header cannot drive
// a huge allocation.
const maxViewDim = 1 << 16

// AppendBinary appends a self-delimiting binary encoding of the view to buf
// and returns the extended slice.
func (v *ViewData) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(v.GroupBy)))
	for _, a := range v.GroupBy {
		buf = binary.AppendUvarint(buf, uint64(uint32(a)))
	}
	if v.index == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(v.skeyPos)))
		for _, p := range v.skeyPos {
			buf = binary.AppendUvarint(buf, uint64(p))
		}
		buf = binary.AppendUvarint(buf, uint64(len(v.extraPos)))
		for _, p := range v.extraPos {
			buf = binary.AppendUvarint(buf, uint64(p))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(v.rows))
	buf = binary.AppendUvarint(buf, uint64(v.Stride))
	for _, col := range v.Keys {
		for _, k := range col[:v.rows] {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
		}
	}
	for _, val := range v.Vals[:v.rows*v.Stride] {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(val))
	}
	return buf
}

// DecodeViewData decodes one AppendBinary encoding from the front of b,
// returning the view and the number of bytes consumed. Finalized views get
// their consumer-key range index rebuilt; the lazy full-key index is left
// unbuilt (EnsureIndex re-creates it before snapshot publication).
//
// lmfao:pre-publish — recovery-side construction of a view no reader holds
// yet.
func DecodeViewData(b []byte) (*ViewData, int, error) {
	d := viewDecoder{b: b}
	ncols := d.uvarint()
	if ncols > maxViewDim {
		return nil, 0, ErrViewCorrupt
	}
	v := &ViewData{GroupBy: make([]data.AttrID, ncols)}
	for i := range v.GroupBy {
		v.GroupBy[i] = data.AttrID(int32(d.uvarint()))
	}
	finalized := d.byte() == 1
	if finalized {
		v.skeyPos = d.posList(int(ncols))
		v.extraPos = d.posList(int(ncols))
	}
	rows := d.uvarint()
	stride := d.uvarint()
	if rows > math.MaxInt32 || stride > maxViewDim || d.err != nil {
		return nil, 0, ErrViewCorrupt
	}
	v.rows = int(rows)
	v.Stride = int(stride)
	need := (ncols*rows + rows*stride) * 8
	if uint64(len(d.b)) < need {
		return nil, 0, ErrViewCorrupt
	}
	v.Keys = make([][]int64, ncols)
	for c := range v.Keys {
		col := make([]int64, rows)
		for i := range col {
			col[i] = int64(d.u64())
		}
		v.Keys[c] = col
	}
	v.Vals = make([]float64, rows*stride)
	for i := range v.Vals {
		v.Vals[i] = math.Float64frombits(d.u64())
	}
	if d.err != nil {
		return nil, 0, ErrViewCorrupt
	}
	if finalized {
		if len(v.skeyPos)+len(v.extraPos) != int(ncols) {
			return nil, 0, ErrViewCorrupt
		}
		v.buildRangeIndex()
	}
	return v, len(b) - len(d.b), nil
}

// buildRangeIndex (re)builds the consumer-key → entry-range index from the
// already-sorted rows, mirroring the index construction in finalize.
//
// lmfao:pre-publish — called only on views under construction (decode).
func (v *ViewData) buildRangeIndex() {
	v.index = make(map[string][2]int32, v.rows)
	buf := make([]byte, 0, 8*len(v.skeyPos))
	start := 0
	for i := 1; i <= v.rows; i++ {
		if i < v.rows && sameSKey(v, i-1, i) {
			continue
		}
		buf = buf[:0]
		for _, c := range v.skeyPos {
			buf = data.AppendKey(buf, v.Keys[c][start])
		}
		v.index[string(buf)] = [2]int32{int32(start), int32(i)}
		start = i
	}
}

// viewDecoder is a cursor over an encoded view; the first malformed read
// sets err and poisons all later reads.
type viewDecoder struct {
	b   []byte
	err error
}

func (d *viewDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = ErrViewCorrupt
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *viewDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.err = ErrViewCorrupt
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *viewDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.err = ErrViewCorrupt
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *viewDecoder) posList(ncols int) []int {
	n := d.uvarint()
	if d.err != nil || n > uint64(ncols) {
		d.err = ErrViewCorrupt
		return nil
	}
	out := make([]int, n)
	for i := range out {
		p := d.uvarint()
		if d.err != nil || p >= uint64(ncols) {
			d.err = ErrViewCorrupt
			return nil
		}
		out[i] = int(p)
	}
	return out
}
