package moo

import (
	"testing"

	"repro/internal/data"
	"repro/internal/query"
)

// TestDynamicFunctionIteration exercises the paper's dynamic-function
// workflow (§1.2): an application re-runs a structurally identical batch
// between iterations with changed dynamic predicates (decision-tree node
// conditions), without rebuilding the database or engine.
func TestDynamicFunctionIteration(t *testing.T) {
	db := data.NewDatabase()
	k := db.Attr("k", data.Key)
	x := db.Attr("x", data.Numeric)
	rel := data.NewRelation("R", []data.AttrID{k, x}, []data.Column{
		data.NewIntColumn([]int64{0, 0, 1, 1, 2}),
		data.NewFloatColumn([]float64{1, 2, 3, 4, 5}),
	})
	if err := db.AddRelation(rel); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(db, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	for iter, tc := range []struct {
		threshold float64
		want      float64 // Σ x·1_{x≤t}
	}{
		{2.5, 3}, {4.5, 10}, {0.5, 0},
	} {
		th := tc.threshold
		cond := query.DynamicF("node-cond", x, func(v float64) float64 {
			if v <= th {
				return 1
			}
			return 0
		})
		batch := []*query.Query{query.NewQuery("dyn", nil,
			query.NewAggregate("sum", query.NewTerm(query.IdentF(x), cond)))}
		res, err := eng.Run(batch)
		if err != nil {
			t.Fatalf("iteration %d: %v", iter, err)
		}
		if got := res.Results[0].Val(0, 0); got != tc.want {
			t.Fatalf("iteration %d: sum = %g, want %g", iter, got, tc.want)
		}
	}
}

// Dynamic factors must never be merged across distinct closures, even under
// the same name within one batch rebuild cycle.
func TestDynamicFactorsNotMergedWithStatic(t *testing.T) {
	f1 := query.DynamicF("cond", 0, nil)
	f2 := query.CustomF("cond", 0, nil)
	if f1.Signature() == f2.Signature() {
		t.Fatal("dynamic and static factors share a signature")
	}
}
