package moo

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/ivm"
)

// GenerateMaintenanceSource emits self-contained, compilable Go source
// covering both evaluation and maintenance of the plan: the computeGroup
// functions of GenerateSource plus, per join-tree relation, the specialized
// maintenance kernels the runtime engine compiles on demand
// (Options.CompiledKernels). For every relation the ivm schedule is resolved
// at generation time and each step becomes a maintainGroup function — the
// step's group scan restricted to its dirty views — stitched together by a
// maintain_<Rel> driver that runs the steps in dependency order, combines the
// insert and delete scans into signed delta views (deletes are
// negative-weight inserts), and folds the deltas into the cached views.
//
// Unchanged-node steps are emitted as full rescans: whether a semi-join
// row-id restriction pays off depends on the delta's key spread, a
// data-dependent choice the source kernels leave to the runtime engine.
// The plan should be built with TrackCounts so deletions carry the hidden
// tuple-count column; keys whose tuples were all deleted remain as explicit
// zero rows in the generated merge (the runtime compacts them away).
func GenerateMaintenanceSource(plan *core.Plan, w io.Writer) error {
	g := &sourceGen{plan: plan, w: &strings.Builder{}, udfs: map[string]bool{}}
	var parts []string
	for _, grp := range plan.Groups {
		fn, err := g.group(grp, fmt.Sprintf("computeGroup%d", grp.ID))
		if err != nil {
			return err
		}
		parts = append(parts, fn)
	}
	for nid := range plan.Tree.Nodes {
		fns, err := g.maintenance(nid)
		if err != nil {
			return err
		}
		parts = append(parts, fns...)
	}
	if _, err := io.WriteString(w, g.prelude(true)); err != nil {
		return err
	}
	for _, fn := range parts {
		if _, err := io.WriteString(w, fn); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, g.epilogue())
	return err
}

// maintStep pairs one ivm schedule step with its compiled sub-group and the
// name of the emitted kernel function.
type maintStep struct {
	st ivm.Step
	gp *groupPlan
	fn string
}

// maintenance emits the maintenance kernels and driver for deltas against
// the relation at join-tree node nid. For hypertree bag nodes the driver
// maintains deltas against the materialized bag relation (the runtime syncs
// bag members into it before maintenance).
func (g *sourceGen) maintenance(nid int) ([]string, error) {
	sched, err := ivm.Analyze(g.plan, nid)
	if err != nil {
		return nil, err
	}
	rel := sanitizeIdent(g.plan.Tree.Nodes[nid].Rel.Name)
	var out []string
	steps := make([]maintStep, 0, len(sched.Steps))
	for _, st := range sched.Steps {
		sub := &core.Group{ID: st.Group, Node: st.Node, Views: st.Dirty}
		name := fmt.Sprintf("maintainGroup%d_%s", st.Group, rel)
		fn, err := g.group(sub, name)
		if err != nil {
			return nil, err
		}
		gp, err := compileGroup(g.plan, sub, true)
		if err != nil {
			return nil, err
		}
		out = append(out, fn)
		steps = append(steps, maintStep{st: st, gp: gp, fn: name})
	}
	driver, err := g.maintenanceDriver(rel, sched, steps)
	if err != nil {
		return nil, err
	}
	return append(out, driver), nil
}

// maintenanceDriver emits maintain_<Rel>: the dependency-ordered execution of
// the relation's maintenance kernels plus the final signed-delta merge.
func (g *sourceGen) maintenanceDriver(rel string, sched *ivm.Schedule, steps []maintStep) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "\n// maintain_%s maintains every view dirtied by a delta against %s:\n", rel, rel)
	b.WriteString(`// ins holds the inserted tuples, del the deleted ones (either may be nil).
// views maps view IDs to the cached results of the computeGroup functions
// and is updated in place with the maintained versions. rels holds the base
// relations for unchanged-node rescans. Deletes are handled as
// negative-weight inserts: each changed-node kernel scans the insert and
// delete blocks separately and the two outputs combine into one signed
// delta view.
`)
	fmt.Fprintf(&b, "func maintain_%s(ins, del *Relation, rels map[string]*Relation, views map[int]*View) {\n", rel)
	b.WriteString("\tdeltas := map[int]*View{}\n")
	usedDelta, usedRels := false, false
	for _, ms := range steps {
		st, gp := ms.st, ms.gp
		orderNames := make([]string, len(gp.order))
		for d, a := range gp.order {
			orderNames[d] = fmt.Sprintf("%q", g.attrName(a))
		}
		orderLit := "[]string{" + strings.Join(orderNames, ", ") + "}"
		deltaIn := map[int]bool{}
		for _, in := range st.DeltaInputs {
			deltaIn[in] = true
		}
		var args []string
		for _, in := range gp.inputs {
			if deltaIn[in.id] {
				args = append(args, fmt.Sprintf("deltas[%d]", in.id))
			} else {
				args = append(args, fmt.Sprintf("views[%d]", in.id))
			}
		}
		if st.AtDelta {
			usedDelta = true
			fmt.Fprintf(&b, "\t// Group %d at the changed node: rescan only the delta tuples.\n", st.Group)
			var insVars, delVars []string
			for _, vid := range st.Dirty {
				insVars = append(insVars, fmt.Sprintf("ins%d", vid))
				delVars = append(delVars, fmt.Sprintf("del%d", vid))
			}
			fmt.Fprintf(&b, "\tvar %s *View\n", strings.Join(append(append([]string{}, insVars...), delVars...), ", "))
			fmt.Fprintf(&b, "\tif ins != nil {\n\t\t%s = %s(sortRelBy(ins, %s)%s)\n\t}\n",
				strings.Join(insVars, ", "), ms.fn, orderLit, prefixJoin(", ", args))
			fmt.Fprintf(&b, "\tif del != nil {\n\t\t%s = %s(sortRelBy(del, %s)%s)\n\t}\n",
				strings.Join(delVars, ", "), ms.fn, orderLit, prefixJoin(", ", args))
			for i, vid := range st.Dirty {
				v := g.plan.Views[vid]
				fmt.Fprintf(&b, "\tdeltas[%d] = combineDelta(%s, %s, %d, %d, %s)\n",
					vid, insVars[i], delVars[i], len(v.GroupBy), len(v.Cols), intsLit(g.skeyPos(v)))
			}
		} else {
			usedRels = true
			nodeRel := g.plan.Tree.Nodes[st.Node].Rel.Name
			fmt.Fprintf(&b, "\t// Group %d at %s: full rescan reading dirty inputs from their\n", st.Group, nodeRel)
			b.WriteString("\t// deltas (the runtime narrows this scan to a semi-join row-id batch\n\t// when the delta's key spread makes that profitable).\n")
			lhs := make([]string, len(st.Dirty))
			for i, vid := range st.Dirty {
				lhs[i] = fmt.Sprintf("deltas[%d]", vid)
			}
			fmt.Fprintf(&b, "\t%s = %s(sortRelBy(rels[%q], %s)%s)\n",
				strings.Join(lhs, ", "), ms.fn, nodeRel, orderLit, prefixJoin(", ", args))
		}
	}
	if !usedDelta {
		b.WriteString("\t_, _ = ins, del\n")
	}
	if !usedRels {
		b.WriteString("\t_ = rels\n")
	}
	b.WriteString("\t// Fold the signed deltas into the cache, re-finalizing each view.\n")
	for _, vid := range sched.DirtyViews {
		fmt.Fprintf(&b, "\tviews[%d] = mergeDelta(views[%d], deltas[%d], %s)\n",
			vid, vid, vid, intsLit(g.skeyPos(g.plan.Views[vid])))
	}
	b.WriteString("}\n")
	return b.String(), nil
}

// sanitizeIdent makes a relation or attribute name usable as a Go identifier
// fragment.
func sanitizeIdent(name string) string {
	clean := make([]rune, 0, len(name))
	for _, r := range name {
		if r == ' ' || r == '-' || r == '.' {
			r = '_'
		}
		clean = append(clean, r)
	}
	return string(clean)
}

// maintenancePrelude holds the runtime helpers shared by all emitted
// maintenance drivers: stable re-sorting of delta blocks, signed delta
// combination, and the cache merge.
const maintenancePrelude = `
// sortRelBy returns a copy of rel with every column stably reordered by the
// given int key columns — the scan-order contract the group kernels assume.
// The stable sort keeps row visit order (and so float accumulation order)
// deterministic.
func sortRelBy(rel *Relation, keys []string) *Relation {
	perm := make([]int, rel.N)
	for i := range perm {
		perm[i] = i
	}
	cols := make([][]int64, len(keys))
	for i, k := range keys {
		cols[i] = rel.Ints[k]
	}
	sort.SliceStable(perm, func(x, y int) bool {
		for _, c := range cols {
			if c[perm[x]] != c[perm[y]] {
				return c[perm[x]] < c[perm[y]]
			}
		}
		return false
	})
	out := &Relation{N: rel.N, Ints: map[string][]int64{}, Flts: map[string][]float64{}}
	for name, c := range rel.Ints {
		nc := make([]int64, len(c))
		for i, p := range perm {
			nc[i] = c[p]
		}
		out.Ints[name] = nc
	}
	for name, c := range rel.Flts {
		nc := make([]float64, len(c))
		for i, p := range perm {
			nc[i] = c[p]
		}
		out.Flts[name] = nc
	}
	return out
}

// addView folds src's entries into dst, scaling every aggregate by sign.
func addView(dst, src *View, sign float64) {
	if src == nil || src.Stride == 0 {
		return
	}
	key := make([]int64, len(src.Keys))
	for i := 0; i < len(src.Vals)/src.Stride; i++ {
		for c := range src.Keys {
			key[c] = src.Keys[c][i]
		}
		r := dst.row(key...)
		for j := 0; j < dst.Stride; j++ {
			dst.Vals[r*dst.Stride+j] += sign * src.Vals[i*src.Stride+j]
		}
	}
}

// combineDelta merges the insert- and delete-scan outputs of one dirty view
// into a single signed delta view (deletes contribute with weight -1) and
// finalizes its consumer-key index so downstream kernels can bind into it.
func combineDelta(ins, del *View, keyCols, stride int, skeyPos []int) *View {
	out := newView(keyCols, stride)
	addView(out, ins, 1)
	addView(out, del, -1)
	buildIndex(out, skeyPos)
	return out
}

// mergeDelta folds a signed delta into a cached view, returning the
// re-finalized replacement (the runtime engine swaps maintained views the
// same way). Keys whose tuples were all deleted remain as zero rows.
func mergeDelta(base, delta *View, skeyPos []int) *View {
	out := newView(len(base.Keys), base.Stride)
	addView(out, base, 1)
	addView(out, delta, 1)
	buildIndex(out, skeyPos)
	return out
}
`
