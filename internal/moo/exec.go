package moo

import (
	"fmt"

	"repro/internal/data"
)

// execCtx holds the per-thread mutable state of one multi-output scan.
type execCtx struct {
	gp        *groupPlan
	inViews   []*ViewData // materialized inputs, parallel to gp.inputs
	orderCols [][]int64
	// ids, when non-nil, indirects the scan: position i reads physical row
	// ids[i] of gp.rel, and [lo, hi) ranges index into ids. The ids must be
	// sorted by the order-attribute values (data.Relation.SortIDsBy), which
	// makes the trie-style range walk valid against an unsorted relation —
	// the row-id-batched restricted scan of compiled maintenance kernels.
	ids []int32

	curVals    []int64     // bound order-attribute values
	slotVals   [][]float64 // [d][slot]
	slotOK     [][]bool
	globalVals []float64
	globalOK   []bool
	binds      [][2]int32 // per input: current entry range
	bindOK     []bool

	// R[d][sid] are the running sums (paper's r_d); R[L] aliases the leaf
	// slot values. P is the parallel join-presence flag: a group-by key
	// exists in an output only if a join tuple exists for it, even when
	// every aggregate value is zero.
	R [][]float64
	P [][]bool

	builders   []*viewBuilder
	keybuf     []byte
	keyvals    []int64
	carriedRow []int32 // current entry row per carried input during emission
}

func newExecCtx(gp *groupPlan, produced []*ViewData, scalarInit bool) (*execCtx, error) {
	c := &execCtx{gp: gp}
	c.inViews = make([]*ViewData, len(gp.inputs))
	for i, in := range gp.inputs {
		vd := produced[in.id]
		if vd == nil {
			return nil, fmt.Errorf("moo: input view %d of group %d not yet produced", in.id, gp.group.ID)
		}
		c.inViews[i] = vd
	}
	c.orderCols = make([][]int64, gp.L)
	for d, a := range gp.order {
		c.orderCols[d] = gp.rel.MustCol(a).Ints
	}
	c.curVals = make([]int64, gp.L)
	c.slotVals = make([][]float64, gp.L)
	c.slotOK = make([][]bool, gp.L)
	for d := 0; d < gp.L; d++ {
		c.slotVals[d] = make([]float64, len(gp.depthSlots[d]))
		c.slotOK[d] = make([]bool, len(gp.depthSlots[d]))
	}
	c.globalVals = make([]float64, len(gp.globalSlots))
	c.globalOK = make([]bool, len(gp.globalSlots))
	c.binds = make([][2]int32, len(gp.inputs))
	c.bindOK = make([]bool, len(gp.inputs))
	c.R = make([][]float64, gp.L+1)
	c.P = make([][]bool, gp.L+1)
	for d := 0; d <= gp.L; d++ {
		c.R[d] = make([]float64, gp.numSuffix(d))
		c.P[d] = make([]bool, gp.numSuffix(d))
	}
	for i := range c.P[gp.L] {
		c.P[gp.L][i] = true // leaf presence: reached ⇒ rows exist
	}
	maxKey := 0
	for _, v := range gp.views {
		if len(v.GroupBy) > maxKey {
			maxKey = len(v.GroupBy)
		}
	}
	c.keyvals = make([]int64, maxKey)
	c.keybuf = make([]byte, 0, 8*(gp.L+maxKey))
	c.carriedRow = make([]int32, len(gp.inputs))
	c.builders = make([]*viewBuilder, len(gp.views))
	for i, v := range gp.views {
		c.builders[i] = newViewBuilder(v.GroupBy, len(v.Cols), scalarInit && v.IsOutput())
	}
	return c, nil
}

// reset rebinds the context for another execution of the same group plan —
// the kernel path's alternative to reallocating a context per Apply. Input
// views and order columns are re-resolved (the plan-shape-dependent slot,
// running-sum and bind arrays keep their storage: scan re-zeroes R/P levels
// on entry and rebinds inputs before any read), builders start fresh, and
// the id indirection is cleared until the caller installs one.
func (c *execCtx) reset(produced []*ViewData, scalarInit bool) error {
	gp := c.gp
	for i, in := range gp.inputs {
		vd := produced[in.id]
		if vd == nil {
			return fmt.Errorf("moo: input view %d of group %d not yet produced", in.id, gp.group.ID)
		}
		c.inViews[i] = vd
	}
	for d, a := range gp.order {
		c.orderCols[d] = gp.rel.MustCol(a).Ints
	}
	c.ids = nil
	for i, v := range gp.views {
		c.builders[i] = newViewBuilder(v.GroupBy, len(v.Cols), scalarInit && v.IsOutput())
	}
	return nil
}

// run executes the scan over rows [lo, hi) of the group relation and then
// performs the scalar (no group-by) emissions.
func (c *execCtx) run(lo, hi int) {
	// Bind inputs with empty consumer keys once.
	for _, ii := range c.gp.globalBind {
		c.bindInput(ii)
	}
	c.computeSlots(-1)
	c.scan(0, lo, hi)
	for _, ei := range c.gp.emitsScalar {
		c.emit(ei)
	}
}

// scan is the trie-style nested-loops join over the attribute order.
func (c *execCtx) scan(d, lo, hi int) {
	gp := c.gp
	if d == gp.L {
		c.computeLeaf(lo, hi)
		return
	}
	rd, pd := c.R[d], c.P[d]
	for i := range rd {
		rd[i] = 0
		pd[i] = false
	}
	col := c.orderCols[d]
	for lo < hi {
		var end int
		if c.ids == nil {
			end = data.RangeEnd(col, lo, hi)
			c.curVals[d] = col[lo]
		} else {
			end = data.RangeEndIDs(col, c.ids, lo, hi)
			c.curVals[d] = col[c.ids[lo]]
		}
		for _, ii := range gp.bindAt[d] {
			c.bindInput(ii)
		}
		c.computeSlots(d)
		c.scan(d+1, lo, end)
		for _, ei := range gp.emitsAt[d] {
			c.emit(ei)
		}
		// Accumulate running sums (paper's r_d updates). The suffix table
		// is scanned as one tight loop over contiguous arrays — the
		// aggregate-array organization of the paper's generated code.
		rn, pn := c.R[d+1], c.P[d+1]
		sv, so := c.slotVals[d], c.slotOK[d]
		tab := &gp.sfxTabs[d]
		for sid := range tab.next {
			nx := tab.next[sid]
			if !pn[nx] {
				continue
			}
			lo2, hi2 := tab.slotOff[sid], tab.slotOff[sid+1]
			prod := 1.0
			ok := true
			for _, s := range tab.slots[lo2:hi2] {
				if !so[s] {
					ok = false
					break
				}
				prod *= sv[s]
			}
			if ok {
				rd[sid] += prod * rn[nx]
				pd[sid] = true
			}
		}
		lo = end
	}
}

// bindInput resolves the entry range of input ii for the currently bound
// consumer-key values.
func (c *execCtx) bindInput(ii int) {
	in := &c.gp.inputs[ii]
	c.keybuf = c.keybuf[:0]
	for _, d := range in.keyDepths {
		c.keybuf = data.AppendKey(c.keybuf, c.curVals[d])
	}
	lo, hi, ok := c.inViews[ii].bind(string(c.keybuf))
	c.binds[ii] = [2]int32{lo, hi}
	c.bindOK[ii] = ok
}

// computeSlots evaluates the slot values at depth d (or the global slots for
// d == -1).
func (c *execCtx) computeSlots(d int) {
	var specs []slotSpec
	var vals []float64
	var oks []bool
	if d == -1 {
		specs, vals, oks = c.gp.globalSlots, c.globalVals, c.globalOK
	} else {
		specs, vals, oks = c.gp.depthSlots[d], c.slotVals[d], c.slotOK[d]
	}
	for i := range specs {
		s := &specs[i]
		switch s.kind {
		case localSlot:
			x := float64(c.curVals[d])
			var p float64
			if s.fn != nil {
				p = s.fn(x)
			} else {
				p = 1.0
				for _, f := range s.factors {
					p *= f.Eval(x)
				}
			}
			vals[i], oks[i] = p, true
		case lookupSlot:
			if !c.bindOK[s.input] {
				oks[i] = false
				continue
			}
			vd := c.inViews[s.input]
			vals[i] = vd.Vals[int(c.binds[s.input][0])*vd.Stride+s.col]
			oks[i] = true
		}
	}
}

// computeLeaf fills R[L] with the row-level sums over [lo, hi): counts for
// empty leaf slots and Σ_rows Π f(row) otherwise.
func (c *execCtx) computeLeaf(lo, hi int) {
	rl := c.R[c.gp.L]
	for i := range c.gp.leafSlots {
		ls := &c.gp.leafSlots[i]
		if len(ls.factors) == 0 {
			rl[i] = float64(hi - lo)
			continue
		}
		sum := 0.0
		switch {
		case ls.rowFn != nil && c.ids == nil:
			fn := ls.rowFn
			for r := lo; r < hi; r++ {
				sum += fn(r)
			}
		case ls.rowFn != nil:
			fn := ls.rowFn
			for r := lo; r < hi; r++ {
				sum += fn(int(c.ids[r]))
			}
		case c.ids == nil:
			for r := lo; r < hi; r++ {
				p := 1.0
				for j := range ls.factors {
					p *= ls.factors[j].Eval(ls.cols[j].Float(r))
				}
				sum += p
			}
		default:
			for r := lo; r < hi; r++ {
				p := 1.0
				for j := range ls.factors {
					p *= ls.factors[j].Eval(ls.cols[j].Float(int(c.ids[r])))
				}
				sum += p
			}
		}
		rl[i] = sum
	}
}

// emitValue computes one aggregate contribution (coef × prefix slots ×
// running sum); ok is false when a referenced view is absent for this
// context.
func (c *execCtx) emitValue(e *groupEmit, regDepth int) (float64, bool) {
	if !c.P[regDepth+1][e.suffix] {
		return 0, false
	}
	val := e.coef * c.R[regDepth+1][e.suffix]
	for _, pr := range e.prefix {
		if pr.depth == -1 {
			if !c.globalOK[pr.idx] {
				return 0, false
			}
			val *= c.globalVals[pr.idx]
		} else {
			if !c.slotOK[pr.depth][pr.idx] {
				return 0, false
			}
			val *= c.slotVals[pr.depth][pr.idx]
		}
	}
	return val, true
}

// emit flushes one emission group: the output row is resolved once per
// group-by context (lazily, so contexts where every aggregate's views are
// absent add no row) and all aggregate columns are written sequentially.
func (c *execCtx) emit(gi int) {
	gp := c.gp
	g := &gp.emitGroups[gi]
	b := c.builders[g.view]
	key := c.keyvals[:len(g.keySrc)]
	for i, ks := range g.keySrc {
		if ks.carried == -1 {
			key[i] = c.curVals[ks.depth]
		}
	}
	if len(g.carriedInputs) == 0 {
		row := int32(-1)
		for i := range g.emits {
			e := &g.emits[i]
			val, ok := c.emitValue(e, g.regDepth)
			if !ok {
				continue
			}
			if row < 0 {
				row = b.row(key)
			}
			b.add(row, e.col, val)
		}
		return
	}
	for _, in := range g.carriedInputs {
		if !c.bindOK[in] {
			return
		}
	}
	c.emitCarried(g, 0, key, b)
}

// emitCarried enumerates entry combinations of the group's carried views
// (nested loops), filling carried key parts; at each combination every
// aggregate multiplies its own carried value columns.
func (c *execCtx) emitCarried(g *emitGroup, ci int, key []int64, b *viewBuilder) {
	if ci == len(g.carriedInputs) {
		row := int32(-1)
		for i := range g.emits {
			e := &g.emits[i]
			val, ok := c.emitValue(e, g.regDepth)
			if !ok {
				continue
			}
			for cj, in := range g.carriedInputs {
				vd := c.inViews[in]
				val *= vd.Vals[int(c.carriedRow[cj])*vd.Stride+e.carriedCols[cj]]
			}
			if row < 0 {
				row = b.row(key)
			}
			b.add(row, e.col, val)
		}
		return
	}
	in := g.carriedInputs[ci]
	vd := c.inViews[in]
	lo, hi := c.binds[in][0], c.binds[in][1]
	for r := lo; r < hi; r++ {
		c.carriedRow[ci] = r
		for i, ks := range g.keySrc {
			if ks.carried == ci {
				key[i] = vd.Keys[ks.extraCol][r]
			}
		}
		c.emitCarried(g, ci+1, key, b)
	}
}
