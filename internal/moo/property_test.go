package moo

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/data"
	"repro/internal/query"
)

// randomSnowflake builds fact F(k1..kd, m) with dims Di(ki, ci, pi) and an
// optional second-level dim behind D0 (Census-style).
func randomSnowflake(t *testing.T, rng *rand.Rand) (*data.Database, []data.AttrID, []data.AttrID, []data.AttrID) {
	t.Helper()
	db := data.NewDatabase()
	dims := 2 + rng.Intn(2)
	dom := 4 + rng.Intn(4)
	factRows := 30 + rng.Intn(60)

	var keys, cats, nums []data.AttrID
	factAttrs := []data.AttrID{}
	factCols := []data.Column{}
	for d := 0; d < dims; d++ {
		k := db.Attr(fmt.Sprintf("k%d", d), data.Key)
		keys = append(keys, k)
		factAttrs = append(factAttrs, k)
		factCols = append(factCols, data.NewIntColumn(uniform(rng, factRows, dom)))
	}
	m := db.Attr("m", data.Numeric)
	nums = append(nums, m)
	factAttrs = append(factAttrs, m)
	factCols = append(factCols, data.NewFloatColumn(floats(rng, factRows)))
	if err := db.AddRelation(data.NewRelation("F", factAttrs, factCols)); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < dims; d++ {
		c := db.Attr(fmt.Sprintf("c%d", d), data.Key)
		p := db.Attr(fmt.Sprintf("p%d", d), data.Numeric)
		cats = append(cats, c)
		nums = append(nums, p)
		kv := make([]int64, dom)
		for i := range kv {
			kv[i] = int64(i)
		}
		if err := db.AddRelation(data.NewRelation(fmt.Sprintf("D%d", d),
			[]data.AttrID{keys[d], c, p},
			[]data.Column{data.NewIntColumn(kv),
				data.NewIntColumn(uniform(rng, dom, 3)),
				data.NewFloatColumn(floats(rng, dom))})); err != nil {
			t.Fatal(err)
		}
	}
	// Second-level dimension behind D0's category attribute.
	deep := db.Attr("deep", data.Key)
	dv := make([]int64, 3)
	pv := make([]float64, 3)
	for i := range dv {
		dv[i] = int64(i)
		pv[i] = float64(i) + 0.25
	}
	deepP := db.Attr("deep_p", data.Numeric)
	nums = append(nums, deepP)
	cats = append(cats, deep)
	if err := db.AddRelation(data.NewRelation("Deep",
		[]data.AttrID{cats[0], deep, deepP},
		[]data.Column{
			data.NewIntColumn([]int64{0, 1, 2}),
			data.NewIntColumn(dv),
			data.NewFloatColumn(pv)})); err != nil {
		t.Fatal(err)
	}
	return db, keys, cats, nums
}

func uniform(rng *rand.Rand, n, dom int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rng.Intn(dom))
	}
	return out
}

func floats(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(rng.Intn(8)) + 0.5
	}
	return out
}

// Property: random snowflake schemas with random batches agree with brute
// force under the default (fully optimized) and AC/DC configurations.
func TestRandomSnowflakeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		db, _, cats, nums := randomSnowflake(t, rng)
		var qs []*query.Query
		for qi := 0; qi < 1+rng.Intn(3); qi++ {
			var gb []data.AttrID
			for _, c := range cats {
				if rng.Intn(3) == 0 {
					gb = append(gb, c)
				}
			}
			var aggs []query.Aggregate
			aggs = append(aggs, query.CountAgg())
			for ai := 0; ai < rng.Intn(3); ai++ {
				a := nums[rng.Intn(len(nums))]
				b := nums[rng.Intn(len(nums))]
				aggs = append(aggs, query.SumProdAgg(a, b))
			}
			qs = append(qs, query.NewQuery(fmt.Sprintf("q%d", qi), gb, aggs...))
		}
		base, err := baseline.New(db)
		if err != nil {
			t.Fatal(err)
		}
		want, err := base.Run(qs)
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []Options{DefaultOptions(), ACDCOptions()} {
			eng, err := NewEngine(db, opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(qs)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for qi := range qs {
				compareResults(t, fmt.Sprintf("trial%d/%s", trial, qs[qi].Name),
					res.Results[qi], want[qi])
			}
		}
	}
}

// Property: results are identical across repeated runs of the same engine
// (the sort cache and emission-group machinery must be stateless w.r.t.
// results).
func TestRunDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	db, _, cats, nums := randomSnowflake(t, rng)
	qs := []*query.Query{
		query.NewQuery("a", []data.AttrID{cats[0]}, query.CountAgg(), query.SumAgg(nums[0])),
		query.NewQuery("b", nil, query.SumProdAgg(nums[0], nums[1])),
	}
	eng, err := NewEngine(db, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := eng.Run(qs)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		r2, err := eng.Run(qs)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range qs {
			a, b := r1.Results[qi], r2.Results[qi]
			if a.NumRows() != b.NumRows() {
				t.Fatalf("rep %d query %d: row counts differ", rep, qi)
			}
			for i := 0; i < a.NumRows(); i++ {
				j := b.Lookup(a.Key(i)...)
				if j < 0 {
					t.Fatalf("rep %d: key %v lost", rep, a.Key(i))
				}
				for col := 0; col < a.Stride; col++ {
					if a.Val(i, col) != b.Val(j, col) {
						t.Fatalf("rep %d: value drift at %v col %d", rep, a.Key(i), col)
					}
				}
			}
		}
	}
}
