package moo

import (
	"strings"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/jointree"
	"repro/internal/query"
)

// schedDB builds a three-relation chain whose plans have several groups with
// real dependencies: R0(j0,j1,v0) ⋈ R1(j1,j2,v1) ⋈ R2(j2,j3,v2).
func schedDB(t *testing.T) (*data.Database, []data.AttrID, []data.AttrID) {
	t.Helper()
	db := data.NewDatabase()
	var js []data.AttrID
	for _, n := range []string{"j0", "j1", "j2", "j3"} {
		js = append(js, db.Attr(n, data.Key))
	}
	var vs []data.AttrID
	for i, n := range []string{"v0", "v1", "v2"} {
		v := db.Attr(n, data.Numeric)
		vs = append(vs, v)
		rows := 12 + 3*i
		ints := func(mod int) []int64 {
			out := make([]int64, rows)
			for r := range out {
				out[r] = int64(r % mod)
			}
			return out
		}
		floats := make([]float64, rows)
		for r := range floats {
			floats[r] = float64(r%5) + 0.5
		}
		if err := db.AddRelation(data.NewRelation("R"+string(rune('0'+i)),
			[]data.AttrID{js[i], js[i+1], v},
			[]data.Column{data.NewIntColumn(ints(3)), data.NewIntColumn(ints(4)),
				data.NewFloatColumn(floats)})); err != nil {
			t.Fatal(err)
		}
	}
	return db, js, vs
}

// schedQueries spreads group-bys across the chain so every node hosts views.
func schedQueries(js, vs []data.AttrID) []*query.Query {
	return []*query.Query{
		query.NewQuery("q0", []data.AttrID{js[0]}, query.SumAgg(vs[2])),
		query.NewQuery("q1", []data.AttrID{js[3]}, query.SumAgg(vs[0])),
		query.NewQuery("q2", nil, query.CountAgg(), query.SumProdAgg(vs[0], vs[2])),
	}
}

// runExecuteWithTimeout guards against the historical failure mode: a failing
// group must surface an error, never park the worker pool forever.
func runExecuteWithTimeout(t *testing.T, e *Engine, plan *core.Plan) error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, err := e.execute(plan)
		done <- err
	}()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("execute deadlocked on a failing group")
		return nil
	}
}

// TestExecuteFailingGroupNoDeadlock sabotages one view so its group fails to
// compile, and checks the parallel scheduler drains cleanly with the error
// under several thread counts.
func TestExecuteFailingGroupNoDeadlock(t *testing.T) {
	db, js, vs := schedDB(t)
	queries := schedQueries(js, vs)
	for _, threads := range []int{2, 3, 8} {
		eng, err := NewEngine(db, Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := core.BuildPlan(eng.Tree(), queries, core.PlanOptions{MultiRoot: true, MultiOutput: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Groups) < 3 {
			t.Fatalf("want ≥3 groups for a meaningful DAG, got %d", len(plan.Groups))
		}
		// Sabotage a mid-DAG view: a factor over an attribute its node's
		// relation does not carry makes compileGroup fail.
		victim := plan.Views[plan.Groups[1].Views[0]]
		node := plan.Tree.Nodes[victim.From]
		var alien data.AttrID = -1
		for id := 0; id < db.NumAttrs(); id++ {
			if !node.HasAttr(data.AttrID(id)) {
				alien = data.AttrID(id)
				break
			}
		}
		if alien < 0 {
			t.Fatal("no alien attribute found")
		}
		victim.Aggs[0].Factors = append(victim.Aggs[0].Factors, query.IdentF(alien))

		err = runExecuteWithTimeout(t, eng, plan)
		if err == nil {
			t.Fatalf("threads=%d: sabotaged plan executed without error", threads)
		}
		if !strings.Contains(err.Error(), "not in node") {
			t.Fatalf("threads=%d: unexpected error: %v", threads, err)
		}
	}
}

// TestExecuteFailFastWhileGroupInFlight pins the race where one group fails
// (closing the ready channel) while a slow group is still scanning: the slow
// group's completion used to enqueue its dependents into the closed channel
// and panic. The big relation keeps its group in flight well past the
// sabotaged group's instant compile failure.
func TestExecuteFailFastWhileGroupInFlight(t *testing.T) {
	db := data.NewDatabase()
	j0 := db.Attr("j0", data.Key)
	j1 := db.Attr("j1", data.Key)
	j2 := db.Attr("j2", data.Key)
	v0 := db.Attr("v0", data.Numeric)
	v1 := db.Attr("v1", data.Numeric)
	big := 300_000
	bi := make([]int64, big)
	bj := make([]int64, big)
	bv := make([]float64, big)
	for i := range bi {
		bi[i], bj[i], bv[i] = int64(i%7), int64(i%11), float64(i%5)
	}
	if err := db.AddRelation(data.NewRelation("Big",
		[]data.AttrID{j0, j1, v0},
		[]data.Column{data.NewIntColumn(bi), data.NewIntColumn(bj), data.NewFloatColumn(bv)})); err != nil {
		t.Fatal(err)
	}
	si := []int64{0, 1, 2}
	sv := []float64{1, 2, 3}
	if err := db.AddRelation(data.NewRelation("Small",
		[]data.AttrID{j1, j2, v1},
		[]data.Column{data.NewIntColumn(si), data.NewIntColumn(si), data.NewFloatColumn(sv)})); err != nil {
		t.Fatal(err)
	}
	queries := []*query.Query{
		query.NewQuery("a", []data.AttrID{j2}, query.SumAgg(v0)),
		query.NewQuery("b", []data.AttrID{j0}, query.SumAgg(v1)),
	}
	eng, err := NewEngine(db, Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.BuildPlan(eng.Tree(), queries, core.PlanOptions{MultiRoot: true, MultiOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage a first-wave view NOT computed over Big, so its group fails
	// while Big's group is mid-scan; Big's group must have a dependent.
	var sabotaged bool
	for _, g := range plan.Groups {
		node := plan.Tree.Nodes[g.Node]
		if node.Rel.Name != "Small" {
			continue
		}
		v := plan.Views[g.Views[0]]
		if len(v.InputViews()) > 0 {
			continue // want a first-wave group
		}
		v.Aggs[0].Factors = append(v.Aggs[0].Factors, query.IdentF(v0))
		sabotaged = true
		break
	}
	if !sabotaged {
		t.Skip("plan shape has no first-wave group at Small")
	}
	for i := 0; i < 3; i++ {
		if err := runExecuteWithTimeout(t, eng, plan); err == nil {
			t.Fatal("sabotaged plan executed without error")
		}
	}
}

// TestExecuteCyclicDepsNoDeadlock feeds execute a dependency graph with a
// cycle (unreachable from groupViews, but execute must not hang on it).
func TestExecuteCyclicDepsNoDeadlock(t *testing.T) {
	db, js, vs := schedDB(t)
	queries := schedQueries(js, vs)
	eng, err := NewEngine(db, Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.BuildPlan(eng.Tree(), queries, core.PlanOptions{MultiRoot: true, MultiOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	n := len(plan.Groups)
	if n < 3 {
		t.Fatalf("want ≥3 groups, got %d", n)
	}

	// Full cycle: no group can start.
	full := make([][]int, n)
	for g := range full {
		full[g] = []int{(g + 1) % n}
	}
	orig := plan.GroupDeps
	plan.GroupDeps = full
	if err := runExecuteWithTimeout(t, eng, plan); err == nil {
		t.Fatal("fully cyclic dependency graph executed without error")
	}

	// Partial cycle: some progress, then a wedge.
	partial := make([][]int, n)
	for g := 1; g < n; g++ {
		partial[g] = append([]int(nil), orig[g]...)
	}
	partial[n-1] = append(partial[n-1], n-1) // self-dependency wedges the tail
	plan.GroupDeps = partial
	err = runExecuteWithTimeout(t, eng, plan)
	if err == nil {
		t.Fatal("partially cyclic dependency graph executed without error")
	}
	if !strings.Contains(err.Error(), "stalled") && !strings.Contains(err.Error(), "cyclic") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestDomainParallelRowsBoundaries pins the normalization of the option's
// degenerate values and checks correctness when the threshold sits exactly
// at, below, and above the relation size — including the one-row and
// single-top-value extremes of the range splitter.
func TestDomainParallelRowsBoundaries(t *testing.T) {
	db, js, vs := schedDB(t)
	queries := schedQueries(js, vs)

	// Normalization: non-positive thresholds fall back to the default.
	for _, dpr := range []int{0, -5} {
		eng := NewEngineWithTree(db, mustTree(t, db), Options{Threads: 2, DomainParallelRows: dpr})
		if got := eng.Options().DomainParallelRows; got != 65536 {
			t.Fatalf("DomainParallelRows %d normalized to %d, want 65536", dpr, got)
		}
	}

	base, err := baseline.New(db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run(queries)
	if err != nil {
		t.Fatal(err)
	}
	n := db.Relation("R0").Len()
	for _, dpr := range []int{1, n - 1, n, n + 1, 1 << 30} {
		eng := NewEngineWithTree(db, mustTree(t, db),
			Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 4, DomainParallelRows: dpr})
		res, err := eng.Run(queries)
		if err != nil {
			t.Fatalf("DomainParallelRows=%d: %v", dpr, err)
		}
		for qi := range queries {
			compareResults(t, queries[qi].Name, res.Results[qi], want[qi])
		}
	}
}

// TestDomainParallelTinyRelations forces domain parallelism onto relations
// with 0 and 1 rows: the splitter must handle empty ranges and a single
// top-level run.
func TestDomainParallelTinyRelations(t *testing.T) {
	for _, rows := range []int{0, 1} {
		db := data.NewDatabase()
		a := db.Attr("a", data.Key)
		b := db.Attr("b", data.Key)
		m := db.Attr("m", data.Numeric)
		av := make([]int64, rows)
		bv := make([]int64, rows)
		mv := make([]float64, rows)
		for i := range av {
			av[i], bv[i], mv[i] = int64(i), 0, 1.5
		}
		if err := db.AddRelation(data.NewRelation("T",
			[]data.AttrID{a, b, m},
			[]data.Column{data.NewIntColumn(av), data.NewIntColumn(bv), data.NewFloatColumn(mv)})); err != nil {
			t.Fatal(err)
		}
		queries := []*query.Query{
			query.NewQuery("g", []data.AttrID{a}, query.CountAgg(), query.SumAgg(m)),
			query.NewQuery("s", nil, query.SumAgg(m)),
		}
		eng := NewEngineWithTree(db, mustTree(t, db),
			Options{MultiOutput: true, Compiled: true, Threads: 4, DomainParallelRows: 1})
		res, err := eng.Run(queries)
		if err != nil {
			t.Fatalf("rows=%d: %v", rows, err)
		}
		base, err := baseline.New(db)
		if err != nil {
			t.Fatal(err)
		}
		want, err := base.Run(queries)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range queries {
			compareResults(t, queries[qi].Name, res.Results[qi], want[qi])
		}
	}
}

func mustTree(t *testing.T, db *data.Database) *jointree.Tree {
	t.Helper()
	tree, err := jointree.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}
