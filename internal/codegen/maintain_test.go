package codegen

import (
	"bytes"
	"flag"
	"go/format"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// golden compares src against testdata/<name>, rewriting the file under
// -update. The emitted source is deterministic, so goldens pin the exact
// kernel shapes (scan orders, semi-join metadata, driver step order).
func golden(t *testing.T, name string, src []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, src, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(src, want) {
		t.Fatalf("emitted source deviates from %s (re-run with -update after reviewing)\n"+
			"got %d bytes, want %d bytes", path, len(src), len(want))
	}
}

func TestGenerateMaintenanceGolden(t *testing.T) {
	_, tree, ids := starDB(t)
	src, err := GenerateMaintenance(tree, testBatch(ids), DefaultOptions())
	if err != nil {
		t.Fatalf("GenerateMaintenance: %v\n%s", err, src)
	}
	for _, marker := range []string{
		"func maintain_F(", "func maintain_D1(", "func maintain_D2(",
		"func maintainGroup", "combineDelta(", "mergeDelta(", "sortRelBy(",
	} {
		if !bytes.Contains(src, []byte(marker)) {
			t.Errorf("emitted source lacks %q", marker)
		}
	}
	golden(t, "maintain_star.golden", src)
}

func TestGenerateComputeGolden(t *testing.T) {
	_, tree, ids := starDB(t)
	src, err := Generate(tree, testBatch(ids), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "compute_star.golden", src)
}

// TestGenerateMaintenanceDeterministic re-emits from a freshly built schema
// and demands byte equality: kernel emission must not depend on map
// iteration or other incidental order.
func TestGenerateMaintenanceDeterministic(t *testing.T) {
	emit := func() []byte {
		_, tree, ids := starDB(t)
		src, err := GenerateMaintenance(tree, testBatch(ids), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	if !bytes.Equal(emit(), emit()) {
		t.Fatal("maintenance emission is not deterministic")
	}
}

// TestGenerateMaintenanceFormatStable demands the emitted source is a gofmt
// fixed point, so goldens never churn under formatting.
func TestGenerateMaintenanceFormatStable(t *testing.T) {
	_, tree, ids := starDB(t)
	src, err := GenerateMaintenance(tree, testBatch(ids), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fmted, err := format.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, fmted) {
		t.Fatal("emitted maintenance source is not gofmt-stable")
	}
}

func TestGeneratedMaintenanceCompiles(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	_, tree, ids := starDB(t)
	src, err := GenerateMaintenance(tree, testBatch(ids), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "main.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module generated\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "build", "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GO111MODULE=on")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generated maintenance source failed to compile: %v\n%s\n----\n%s", err, out, src)
	}
}
