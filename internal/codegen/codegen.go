// Package codegen turns optimized LMFAO plans into specialized Go source
// code — the repository's rendition of the paper's Compilation layer, which
// emits C++ per view group and compiles it out of process. The emitted file
// is self-contained (stdlib only), gofmt-formatted and compilable; custom
// UDAFs become stub functions to be supplied at link time, mirroring the
// paper's dynamically compiled function file.
package codegen

import (
	"bytes"
	"fmt"
	"go/format"
	"go/parser"
	"go/token"

	"repro/internal/core"
	"repro/internal/jointree"
	"repro/internal/moo"
	"repro/internal/query"
)

// Options mirror the engine's logical plan options.
type Options struct {
	MultiRoot   bool
	MultiOutput bool
}

// DefaultOptions enables all logical optimizations.
func DefaultOptions() Options { return Options{MultiRoot: true, MultiOutput: true} }

// Generate plans the batch over the tree and emits formatted Go source
// implementing every view group as a specialized multi-output scan.
func Generate(tree *jointree.Tree, queries []*query.Query, opts Options) ([]byte, error) {
	plan, err := core.BuildPlan(tree, queries, core.PlanOptions{
		MultiRoot:   opts.MultiRoot,
		MultiOutput: opts.MultiOutput,
	})
	if err != nil {
		return nil, err
	}
	return GenerateFromPlan(plan)
}

// GenerateFromPlan emits formatted Go source for an existing plan.
func GenerateFromPlan(plan *core.Plan) ([]byte, error) {
	var buf bytes.Buffer
	if err := moo.GenerateSource(plan, &buf); err != nil {
		return nil, err
	}
	return finish(buf.Bytes())
}

// GenerateMaintenance plans the batch with hidden tuple counts (deletion
// support) and emits formatted Go source covering both evaluation and
// incremental maintenance: the computeGroup scans plus, per join-tree
// relation, the specialized maintenance kernels and a maintain_<Rel> driver —
// the source form of the runtime's compiled maintenance kernels
// (moo.Options.CompiledKernels).
func GenerateMaintenance(tree *jointree.Tree, queries []*query.Query, opts Options) ([]byte, error) {
	plan, err := core.BuildPlan(tree, queries, core.PlanOptions{
		MultiRoot:   opts.MultiRoot,
		MultiOutput: opts.MultiOutput,
		TrackCounts: true,
	})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := moo.GenerateMaintenanceSource(plan, &buf); err != nil {
		return nil, err
	}
	return finish(buf.Bytes())
}

// finish formats and validates emitted source, returning the raw bytes in
// the error path to aid debugging.
func finish(raw []byte) ([]byte, error) {
	src, err := format.Source(raw)
	if err != nil {
		return raw, fmt.Errorf("codegen: emitted source does not format: %w", err)
	}
	if err := Validate(src); err != nil {
		return src, err
	}
	return src, nil
}

// Validate parses the generated source, rejecting syntactically invalid
// output.
func Validate(src []byte) error {
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "generated.go", src, parser.AllErrors); err != nil {
		return fmt.Errorf("codegen: generated source does not parse: %w", err)
	}
	return nil
}
