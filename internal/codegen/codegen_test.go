package codegen

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/jointree"
	"repro/internal/query"
)

// starDB builds a small star schema exercising lookups, carried group-bys,
// indicators and leaf factors.
func starDB(t *testing.T) (*data.Database, *jointree.Tree, map[string]data.AttrID) {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	db := data.NewDatabase()
	ids := map[string]data.AttrID{}
	k1 := db.Attr("k1", data.Key)
	k2 := db.Attr("k2", data.Key)
	c1 := db.Attr("c1", data.Categorical)
	c2 := db.Attr("c2", data.Categorical)
	m := db.Attr("m", data.Numeric)
	p := db.Attr("p", data.Numeric)
	ids["k1"], ids["k2"], ids["c1"], ids["c2"], ids["m"], ids["p"] = k1, k2, c1, c2, m, p

	n, dom := 60, 6
	f1 := make([]int64, n)
	f2 := make([]int64, n)
	mv := make([]float64, n)
	for i := 0; i < n; i++ {
		f1[i] = int64(rng.Intn(dom))
		f2[i] = int64(rng.Intn(dom))
		mv[i] = rng.Float64() * 10
	}
	fact := data.NewRelation("F", []data.AttrID{k1, k2, m}, []data.Column{
		data.NewIntColumn(f1), data.NewIntColumn(f2), data.NewFloatColumn(mv)})
	if err := db.AddRelation(fact); err != nil {
		t.Fatal(err)
	}
	mk := func(name string, k, c data.AttrID, withP bool) {
		kv := make([]int64, dom)
		cv := make([]int64, dom)
		pv := make([]float64, dom)
		for i := 0; i < dom; i++ {
			kv[i] = int64(i)
			cv[i] = int64(i % 3)
			pv[i] = float64(i) + 0.5
		}
		attrs := []data.AttrID{k, c}
		cols := []data.Column{data.NewIntColumn(kv), data.NewIntColumn(cv)}
		if withP {
			attrs = append(attrs, p)
			cols = append(cols, data.NewFloatColumn(pv))
		}
		if err := db.AddRelation(data.NewRelation(name, attrs, cols)); err != nil {
			t.Fatal(err)
		}
	}
	mk("D1", k1, c1, true)
	mk("D2", k2, c2, false)
	tree, err := jointree.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, tree, ids
}

func testBatch(ids map[string]data.AttrID) []*query.Query {
	return []*query.Query{
		query.NewQuery("count", nil, query.CountAgg()),
		query.NewQuery("stats", []data.AttrID{ids["c1"]},
			query.SumAgg(ids["m"]),
			query.SumProdAgg(ids["m"], ids["p"]),
			query.NewAggregate("cond", query.NewTerm(
				query.IndicatorF(ids["m"], query.LE, 5),
				query.IdentF(ids["p"]))),
		),
		// Group-by spanning two dimensions: exercises carried views.
		query.NewQuery("span", []data.AttrID{ids["c1"], ids["c2"]}, query.CountAgg()),
	}
}

func TestGenerateParsesAndFormats(t *testing.T) {
	_, tree, ids := starDB(t)
	src, err := Generate(tree, testBatch(ids), DefaultOptions())
	if err != nil {
		t.Fatalf("Generate: %v\n%s", err, src)
	}
	if !bytes.Contains(src, []byte("computeGroup0")) {
		t.Fatal("no group functions emitted")
	}
	if !bytes.Contains(src, []byte("rangeEnd")) {
		t.Fatal("no trie scan emitted")
	}
	// The indicator factor must be inlined.
	if !bytes.Contains(src, []byte("b2f(")) {
		t.Fatal("indicator not inlined")
	}
	if err := Validate(src); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedSourceCompiles(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	_, tree, ids := starDB(t)
	src, err := Generate(tree, testBatch(ids), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "main.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module generated\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "build", "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GO111MODULE=on")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generated source failed to compile: %v\n%s\n----\n%s", err, out, src)
	}
}

func TestGenerateWithUDFStubs(t *testing.T) {
	_, tree, ids := starDB(t)
	batch := []*query.Query{
		query.NewQuery("udf", nil, query.NewAggregate("u",
			query.NewTerm(query.CustomF("sigmoid", ids["m"], func(x float64) float64 { return x })))),
	}
	src, err := Generate(tree, batch, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(src, []byte("func udf_sigmoid(")) {
		t.Fatal("UDF stub not emitted")
	}
}

func TestGenerateSingleScanPerGroup(t *testing.T) {
	_, tree, ids := starDB(t)
	src, err := Generate(tree, testBatch(ids), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Count group functions vs queries: with multi-output sharing there
	// must be fewer scans than views.
	groups := strings.Count(string(src), "func computeGroup")
	if groups == 0 {
		t.Fatal("no groups")
	}
	srcNoOpt, err := Generate(tree, testBatch(ids), Options{})
	if err != nil {
		t.Fatal(err)
	}
	groupsNoOpt := strings.Count(string(srcNoOpt), "func computeGroup")
	if groups > groupsNoOpt {
		t.Fatalf("multi-output produced more groups (%d) than without (%d)", groups, groupsNoOpt)
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	if err := Validate([]byte("package main\nfunc {")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestGenerateErrorPropagation(t *testing.T) {
	_, tree, _ := starDB(t)
	bad := []*query.Query{query.NewQuery("bad", nil, query.SumAgg(data.AttrID(99)))}
	if _, err := Generate(tree, bad, DefaultOptions()); err == nil {
		t.Fatal("invalid batch accepted")
	}
}

func ExampleGenerate() {
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	x := db.Attr("x", data.Numeric)
	rel := data.NewRelation("R", []data.AttrID{a, x}, []data.Column{
		data.NewIntColumn([]int64{1, 2}), data.NewFloatColumn([]float64{1, 2})})
	if err := db.AddRelation(rel); err != nil {
		panic(err)
	}
	tree, err := jointree.Build(db)
	if err != nil {
		panic(err)
	}
	src, err := Generate(tree, []*query.Query{
		query.NewQuery("sum", []data.AttrID{a}, query.SumAgg(x)),
	}, DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println(strings.Contains(string(src), "package main"))
	// Output: true
}
