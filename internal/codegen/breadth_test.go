package codegen

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/workloads"
)

// Every paper workload over every dataset must generate valid (parse-clean,
// gofmt-clean) specialized source — the codegen analogue of the engine's
// integration matrix.
func TestGenerateAllWorkloadsAllDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("breadth test")
	}
	cfg := datagen.Config{Scale: 0.0002, Seed: 13}
	for _, name := range datagen.All() {
		build, err := datagen.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, wl := range workloads.Names() {
			t.Run(name+"/"+wl, func(t *testing.T) {
				batch, err := workloads.ByName(wl, ds)
				if err != nil {
					t.Fatal(err)
				}
				src, err := Generate(ds.Tree, batch, DefaultOptions())
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				if len(src) < 1000 {
					t.Fatalf("suspiciously small output: %d bytes", len(src))
				}
			})
		}
	}
}
