package datagen

import (
	"math/rand"

	"repro/internal/data"
	"repro/internal/jointree"
)

// Retailer generates the US-retailer forecasting dataset (paper Appendix A):
// a snowflake around the Inventory fact table.
//
//	Inventory(locn, dateid, ksn, inventoryunits)            ~84M @ scale 1
//	Location(locn, zip, rgn_cd, clim_zn_nbr, 12 distances)  ~1.3k
//	Census(zip, 14 demographic attributes)                  ~1.3k
//	Items(ksn, subcategory, category, categoryCluster, prices) ~5.6k
//	Weather(locn, dateid, rain, snow, maxtemp, mintemp, meanwind, thunder) ~1.2M
//
// Join tree (paper Figure 6a): Inventory—{Items, Weather, Location—Census}.
// The regression label is inventoryunits (paper §4.2 predicts the number of
// inventory units).
func Retailer(cfg Config) (*Dataset, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := data.NewDatabase()

	nLocations := dimScaled(1317, cfg.Scale, 24)
	nZips := nLocations // one zip per location, several locations may share
	nItems := dimScaled(5618, cfg.Scale, 120)
	nDates := dimScaled(1680, cfg.Scale, 90)
	nInventory := scaled(84_000_000, cfg.Scale, 4000)
	nWeather := nLocations * nDates / 2 // weather recorded for half the pairs

	ds := &Dataset{Name: "retailer", DB: db}

	// Location ---------------------------------------------------------
	loc := newBuilder(db, "Location", nLocations)
	locnID := loc.key("locn", seqKeys(nLocations))
	zipVals := make([]int64, nLocations)
	for i := range zipVals {
		zipVals[i] = int64(rng.Intn(nZips))
	}
	zipID := loc.key("zip", zipVals)
	loc.cat("rgn_cd", smallInts(rng, nLocations, 6))
	loc.cat("clim_zn_nbr", smallInts(rng, nLocations, 8))
	totArea := gaussian(rng, nLocations, 120_000, 30_000, true)
	ds.Continuous = append(ds.Continuous,
		loc.num("total_area_sq_ft", totArea),
		loc.num("sell_area_sq_ft", gaussian(rng, nLocations, 90_000, 20_000, true)),
		loc.num("avghhi", gaussian(rng, nLocations, 65_000, 18_000, true)),
		loc.num("supertargetdistance", gaussian(rng, nLocations, 18, 9, true)),
		loc.num("supertargetdrivetime", gaussian(rng, nLocations, 26, 12, true)),
		loc.num("targetdistance", gaussian(rng, nLocations, 9, 5, true)),
		loc.num("targetdrivetime", gaussian(rng, nLocations, 15, 7, true)),
		loc.num("walmartdistance", gaussian(rng, nLocations, 6, 4, true)),
		loc.num("walmartdrivetime", gaussian(rng, nLocations, 11, 6, true)),
		loc.num("walmartsupercenterdistance", gaussian(rng, nLocations, 10, 6, true)),
		loc.num("walmartsupercenterdrivetime", gaussian(rng, nLocations, 16, 8, true)),
	)
	if _, err := loc.add(); err != nil {
		return nil, err
	}

	// Census ------------------------------------------------------------
	cen := newBuilder(db, "Census", nZips)
	cen.key("zip", seqKeys(nZips))
	population := gaussian(rng, nZips, 32_000, 12_000, true)
	ds.Continuous = append(ds.Continuous,
		cen.num("population", population),
		cen.num("white", gaussian(rng, nZips, 20_000, 9_000, true)),
		cen.num("asian", gaussian(rng, nZips, 2_500, 1_800, true)),
		cen.num("pacific", gaussian(rng, nZips, 150, 120, true)),
		cen.num("blackafrican", gaussian(rng, nZips, 4_200, 3_000, true)),
		cen.num("medianage", gaussian(rng, nZips, 38, 7, true)),
		cen.num("occupiedhouseunits", gaussian(rng, nZips, 12_000, 4_000, true)),
		cen.num("houseunits", gaussian(rng, nZips, 13_500, 4_500, true)),
		cen.num("families", gaussian(rng, nZips, 8_200, 2_800, true)),
		cen.num("households", gaussian(rng, nZips, 11_900, 4_100, true)),
		cen.num("husbwife", gaussian(rng, nZips, 6_100, 2_100, true)),
		cen.num("males", gaussian(rng, nZips, 15_800, 6_000, true)),
		cen.num("females", gaussian(rng, nZips, 16_200, 6_100, true)),
		cen.num("householdschildren", gaussian(rng, nZips, 4_100, 1_500, true)),
		cen.num("hispanic", gaussian(rng, nZips, 5_300, 4_000, true)),
	)
	if _, err := cen.add(); err != nil {
		return nil, err
	}

	// Items --------------------------------------------------------------
	itm := newBuilder(db, "Items", nItems)
	ksnID := itm.key("ksn", seqKeys(nItems))
	subcat := itm.cat("subcategory", smallInts(rng, nItems, 40))
	category := itm.cat("category", smallInts(rng, nItems, 12))
	cluster := itm.cat("categoryCluster", smallInts(rng, nItems, 5))
	prices := gaussian(rng, nItems, 24, 14, true)
	priceID := itm.num("prices", prices)
	ds.Continuous = append(ds.Continuous, priceID)
	ds.Categorical = append(ds.Categorical, subcat, category, cluster)
	if _, err := itm.add(); err != nil {
		return nil, err
	}

	// Weather -------------------------------------------------------------
	wea := newBuilder(db, "Weather", nWeather)
	wLocn := make([]int64, nWeather)
	wDate := make([]int64, nWeather)
	for i := 0; i < nWeather; i++ {
		wLocn[i] = int64(i % nLocations)
		wDate[i] = int64((i / nLocations) * 2 % nDates)
	}
	wea.key("locn", wLocn)
	dateID := wea.key("dateid", wDate)
	rain := wea.cat("rain", smallInts(rng, nWeather, 2))
	snow := wea.cat("snow", smallInts(rng, nWeather, 2))
	maxTemp := gaussian(rng, nWeather, 66, 18, false)
	ds.Continuous = append(ds.Continuous,
		wea.num("maxtemp", maxTemp),
		wea.num("mintemp", gaussian(rng, nWeather, 46, 16, false)),
		wea.num("meanwind", gaussian(rng, nWeather, 8, 4, true)),
	)
	thunder := wea.cat("thunder", smallInts(rng, nWeather, 2))
	ds.Categorical = append(ds.Categorical, rain, snow, thunder)
	if _, err := wea.add(); err != nil {
		return nil, err
	}

	// Inventory (fact) ------------------------------------------------------
	// Inventory only records (locn, date) pairs with a weather observation,
	// so the join result stays ≈ the fact table (paper Table 1: 86M joined
	// tuples from an 84M-row Inventory).
	inv := newBuilder(db, "Inventory", nInventory)
	iLocn := make([]int64, nInventory)
	iDate := make([]int64, nInventory)
	for i := 0; i < nInventory; i++ {
		r := rng.Intn(nWeather)
		iLocn[i] = wLocn[r]
		iDate[i] = wDate[r]
	}
	iKsn := zipfKeys(rng, nInventory, nItems, 1.2)
	inv.key("locn", iLocn)
	inv.key("dateid", iDate)
	inv.key("ksn", iKsn)
	// inventoryunits correlates with item price and store size so the
	// regression model has signal.
	units := make([]float64, nInventory)
	for i := range units {
		units[i] = 0.4*prices[iKsn[i]] + totArea[iLocn[i]]/20_000 +
			3*rng.NormFloat64() + 8
		if units[i] < 0 {
			units[i] = 0
		}
	}
	unitsID := inv.num("inventoryunits", units)
	if _, err := inv.add(); err != nil {
		return nil, err
	}

	tree, err := jointree.Build(db)
	if err != nil {
		return nil, err
	}
	ds.Tree = tree
	ds.Label = unitsID
	ds.JoinKeys = []data.AttrID{locnID, zipID, ksnID, dateID}
	// Paper setup: MI over 9 attributes (categorical + discrete continuous).
	ds.MIAttrs = []data.AttrID{subcat, category, cluster, rain, snow, thunder,
		mustAttr(db, "rgn_cd"), mustAttr(db, "clim_zn_nbr"), zipID}
	ds.CubeDims = []data.AttrID{category, mustAttr(db, "rgn_cd"), rain}
	ds.CubeMeasures = []data.AttrID{unitsID, priceID,
		mustAttr(db, "maxtemp"), mustAttr(db, "avghhi"), mustAttr(db, "population")}
	ds.Categorical = append(ds.Categorical,
		mustAttr(db, "rgn_cd"), mustAttr(db, "clim_zn_nbr"))
	return ds, nil
}

func mustAttr(db *data.Database, name string) data.AttrID {
	id, ok := db.AttrByName(name)
	if !ok {
		panic("datagen: missing attribute " + name)
	}
	return id
}
