package datagen

import (
	"math/rand"

	"repro/internal/data"
	"repro/internal/jointree"
)

// Yelp generates the Yelp Dataset Challenge schema (paper Appendix A): a star
// around Review with many-to-many joins through Category and Attribute, which
// is why the join result (360M tuples @ scale 1) vastly exceeds the database
// (8.7M tuples) — the property that makes factorized evaluation shine.
//
//	Review(user, business, review_stars, review_year, useful)
//	User(user, user_review_count, user_avg_stars, user_years, fans)
//	Business(business, b_city, b_state, b_stars, b_review_count, b_open)
//	Category(business, category)   — several per business
//	Attribute(business, attribute) — several per business
//
// The prediction target is review_stars (paper: "review ratings that users
// give to businesses").
func Yelp(cfg Config) (*Dataset, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	db := data.NewDatabase()

	nUsers := dimScaled(252_000, cfg.Scale, 150)
	nBusinesses := dimScaled(80_000, cfg.Scale, 60)
	nReviews := scaled(4_700_000, cfg.Scale, 3000)
	avgCats := 4
	avgAttrs := 8

	ds := &Dataset{Name: "yelp", DB: db}

	// User -----------------------------------------------------------------
	us := newBuilder(db, "User", nUsers)
	userID := us.key("user", seqKeys(nUsers))
	userStars := gaussian(rng, nUsers, 3.7, 0.7, true)
	ds.Continuous = append(ds.Continuous,
		us.num("user_review_count", counts(rng, nUsers, 18)),
		us.num("user_avg_stars", userStars),
		us.num("user_years", counts(rng, nUsers, 5)),
		us.num("fans", counts(rng, nUsers, 2)),
	)
	if _, err := us.add(); err != nil {
		return nil, err
	}

	// Business ----------------------------------------------------------------
	bs := newBuilder(db, "Business", nBusinesses)
	businessID := bs.key("business", seqKeys(nBusinesses))
	bCity := bs.cat("b_city", smallInts(rng, nBusinesses, 30))
	bState := bs.cat("b_state", smallInts(rng, nBusinesses, 12))
	bStars := gaussian(rng, nBusinesses, 3.5, 0.8, true)
	bStarsID := bs.num("b_stars", bStars)
	bCountID := bs.num("b_review_count", counts(rng, nBusinesses, 40))
	bOpen := bs.cat("b_open", smallInts(rng, nBusinesses, 2))
	ds.Continuous = append(ds.Continuous, bStarsID, bCountID)
	ds.Categorical = append(ds.Categorical, bCity, bState, bOpen)
	if _, err := bs.add(); err != nil {
		return nil, err
	}

	// Category (many-to-many) -----------------------------------------------
	nCat := nBusinesses * avgCats
	ct := newBuilder(db, "Category", nCat)
	catBus := make([]int64, nCat)
	for i := range catBus {
		catBus[i] = int64(i % nBusinesses)
	}
	ct.key("business", catBus)
	category := ct.cat("category", smallInts(rng, nCat, 25))
	if _, err := ct.add(); err != nil {
		return nil, err
	}

	// Attribute (many-to-many) ------------------------------------------------
	nAttr := nBusinesses * avgAttrs
	at := newBuilder(db, "Attribute", nAttr)
	attrBus := make([]int64, nAttr)
	for i := range attrBus {
		attrBus[i] = int64(i % nBusinesses)
	}
	at.key("business", attrBus)
	attribute := at.cat("attribute", smallInts(rng, nAttr, 40))
	if _, err := at.add(); err != nil {
		return nil, err
	}

	// Review (fact) -----------------------------------------------------------
	rv := newBuilder(db, "Review", nReviews)
	rUser := zipfKeys(rng, nReviews, nUsers, 1.1)
	rBus := zipfKeys(rng, nReviews, nBusinesses, 1.1)
	rv.key("user", rUser)
	rv.key("business", rBus)
	stars := make([]float64, nReviews)
	for i := range stars {
		s := 0.5*bStars[rBus[i]] + 0.4*userStars[rUser[i]] + 0.8*rng.NormFloat64() + 1.4
		if s < 1 {
			s = 1
		}
		if s > 5 {
			s = 5
		}
		stars[i] = float64(int(s + 0.5))
	}
	starsID := rv.num("review_stars", stars)
	yearID := rv.cat("review_year", smallInts(rng, nReviews, 13))
	usefulID := rv.num("useful", counts(rng, nReviews, 1.4))
	ds.Continuous = append(ds.Continuous, usefulID)
	if _, err := rv.add(); err != nil {
		return nil, err
	}

	tree, err := jointree.Build(db)
	if err != nil {
		return nil, err
	}
	ds.Tree = tree
	ds.Label = starsID
	ds.JoinKeys = []data.AttrID{userID, businessID}
	ds.Categorical = append(ds.Categorical, category, attribute, yearID)
	// Paper setup: MI over 11 attributes for Yelp.
	ds.MIAttrs = []data.AttrID{bCity, bState, bOpen, category, attribute, yearID}
	ds.CubeDims = []data.AttrID{bCity, category, yearID}
	ds.CubeMeasures = []data.AttrID{starsID, usefulID, bStarsID, bCountID,
		mustAttr(db, "user_avg_stars")}
	return ds, nil
}
