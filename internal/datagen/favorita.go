package datagen

import (
	"math/rand"

	"repro/internal/data"
	"repro/internal/jointree"
)

// Favorita generates the Corporación Favorita grocery-forecasting dataset
// (paper Figure 3 / Appendix A): a star around the Sales fact table.
//
//	Sales(date, store, item, unit_sales, onpromotion)   ~125M @ scale 1
//	Items(item, family, class, perishable)              ~4.1k
//	Stores(store, city, state, stype, cluster)          ~54
//	Transactions(date, store, txns)                     ~83k
//	Oil(date, price)                                    ~1.2k
//	Holidays(date, htype, locale, transferred)          ~350
//
// The regression label is unit_sales (paper §4.2 predicts units sold).
func Favorita(cfg Config) (*Dataset, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	db := data.NewDatabase()

	nDates := dimScaled(1684, cfg.Scale, 80)
	nStores := dimScaled(54, cfg.Scale, 18)
	nItems := dimScaled(4100, cfg.Scale, 100)
	nSales := scaled(125_000_000, cfg.Scale, 5000)

	ds := &Dataset{Name: "favorita", DB: db}

	// Items ---------------------------------------------------------------
	itm := newBuilder(db, "Items", nItems)
	itemID := itm.key("item", seqKeys(nItems))
	family := itm.cat("family", smallInts(rng, nItems, 33))
	class := itm.cat("class", smallInts(rng, nItems, 60))
	perishable := itm.cat("perishable", smallInts(rng, nItems, 2))
	if _, err := itm.add(); err != nil {
		return nil, err
	}

	// Stores ----------------------------------------------------------------
	st := newBuilder(db, "Stores", nStores)
	storeID := st.key("store", seqKeys(nStores))
	city := st.cat("city", smallInts(rng, nStores, 22))
	state := st.cat("state", smallInts(rng, nStores, 16))
	stype := st.cat("stype", smallInts(rng, nStores, 5))
	cluster := st.cat("cluster", smallInts(rng, nStores, 17))
	if _, err := st.add(); err != nil {
		return nil, err
	}

	// Oil ------------------------------------------------------------------
	oil := newBuilder(db, "Oil", nDates)
	dateID := oil.key("date", seqKeys(nDates))
	oilPrices := gaussian(rng, nDates, 62, 18, true)
	priceID := oil.num("oil_price", oilPrices)
	// 7-day moving average: a standard engineered forecasting feature.
	ma := make([]float64, nDates)
	for i := range ma {
		lo := i - 6
		if lo < 0 {
			lo = 0
		}
		s := 0.0
		for j := lo; j <= i; j++ {
			s += oilPrices[j]
		}
		ma[i] = s / float64(i-lo+1)
	}
	priceMaID := oil.num("oil_price_ma7", ma)
	if _, err := oil.add(); err != nil {
		return nil, err
	}

	// Holidays (one row per date; htype 0 means "no holiday") ---------------
	hol := newBuilder(db, "Holidays", nDates)
	hol.key("date", seqKeys(nDates))
	htype := hol.cat("htype", smallInts(rng, nDates, 6))
	locale := hol.cat("locale", smallInts(rng, nDates, 3))
	transferred := hol.cat("transferred", smallInts(rng, nDates, 2))
	if _, err := hol.add(); err != nil {
		return nil, err
	}

	// Transactions (one row per date×store) --------------------------------
	nTx := nDates * nStores
	tx := newBuilder(db, "Transactions", nTx)
	tDate := make([]int64, nTx)
	tStore := make([]int64, nTx)
	for i := 0; i < nTx; i++ {
		tDate[i] = int64(i / nStores)
		tStore[i] = int64(i % nStores)
	}
	tx.key("date", tDate)
	tx.key("store", tStore)
	txnsVals := gaussian(rng, nTx, 1700, 600, true)
	txnsID := tx.num("txns", txnsVals)
	txnsLag := make([]float64, nTx)
	for i := range txnsLag {
		if i >= nStores {
			txnsLag[i] = txnsVals[i-nStores] // same store, previous date
		} else {
			txnsLag[i] = txnsVals[i]
		}
	}
	txnsLagID := tx.num("txns_lag1", txnsLag)
	if _, err := tx.add(); err != nil {
		return nil, err
	}

	// Sales (fact) -----------------------------------------------------------
	sl := newBuilder(db, "Sales", nSales)
	sDate := uniformKeys(rng, nSales, nDates)
	sStore := uniformKeys(rng, nSales, nStores)
	sItem := zipfKeys(rng, nSales, nItems, 1.1)
	sl.key("date", sDate)
	sl.key("store", sStore)
	sl.key("item", sItem)
	promo := smallInts(rng, nSales, 2)
	promoID := sl.cat("onpromotion", promo)
	units := make([]float64, nSales)
	for i := range units {
		units[i] = 2 + 0.003*txnsVals[sDate[i]*int64(nStores)+sStore[i]] +
			3*float64(promo[i]) + 1.5*rng.NormFloat64()
		if units[i] < 0 {
			units[i] = 0
		}
	}
	unitsID := sl.num("unit_sales", units)
	if _, err := sl.add(); err != nil {
		return nil, err
	}

	tree, err := jointree.Build(db)
	if err != nil {
		return nil, err
	}
	ds.Tree = tree
	ds.Label = unitsID
	ds.JoinKeys = []data.AttrID{dateID, storeID, itemID}
	ds.Continuous = []data.AttrID{priceID, priceMaID, txnsID, txnsLagID}
	ds.Categorical = []data.AttrID{family, class, perishable, city, state,
		stype, cluster, htype, locale, transferred, promoID}
	// Paper setup: MI over 15 attributes for Favorita (all categorical plus
	// some discrete keys).
	ds.MIAttrs = append([]data.AttrID{}, ds.Categorical...)
	ds.MIAttrs = append(ds.MIAttrs, storeID, dateID, itemID)
	ds.MIAttrs = sortAttrsUnique(ds.MIAttrs)
	ds.CubeDims = []data.AttrID{family, city, htype}
	ds.CubeMeasures = []data.AttrID{unitsID, priceID, priceMaID, txnsID, txnsLagID}
	return ds, nil
}

func sortAttrsUnique(ids []data.AttrID) []data.AttrID {
	seen := map[data.AttrID]bool{}
	var out []data.AttrID
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
