package datagen

import (
	"testing"

	"repro/internal/data"
	"repro/internal/query"
)

var tinyCfg = Config{Scale: 0.0002, Seed: 7}

func allTiny(t *testing.T) []*Dataset {
	t.Helper()
	var out []*Dataset
	for _, name := range All() {
		build, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := build(tinyCfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out = append(out, ds)
	}
	return out
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestAllNames(t *testing.T) {
	names := All()
	if len(names) != 4 {
		t.Fatalf("All() = %v", names)
	}
}

func TestDatasetsWellFormed(t *testing.T) {
	for _, ds := range allTiny(t) {
		t.Run(ds.Name, func(t *testing.T) {
			if ds.DB == nil || ds.Tree == nil {
				t.Fatal("missing DB or Tree")
			}
			if err := ds.Tree.VerifyRunningIntersection(); err != nil {
				t.Fatalf("join tree invalid: %v", err)
			}
			if len(ds.Continuous) == 0 {
				t.Fatal("no continuous features")
			}
			if len(ds.Categorical) == 0 {
				t.Fatal("no categorical features")
			}
			if len(ds.MIAttrs) < 5 {
				t.Fatalf("MI attrs = %d", len(ds.MIAttrs))
			}
			if len(ds.CubeDims) != 3 || len(ds.CubeMeasures) != 5 {
				t.Fatalf("cube config %d dims %d measures",
					len(ds.CubeDims), len(ds.CubeMeasures))
			}
			// Feature attrs must exist in some relation with the right kind.
			for _, a := range ds.Continuous {
				if ds.DB.Attribute(a).Kind != data.Numeric {
					t.Errorf("continuous attr %q is %v",
						ds.DB.Attribute(a).Name, ds.DB.Attribute(a).Kind)
				}
			}
			for _, a := range ds.Categorical {
				if !ds.DB.Attribute(a).Kind.Discrete() {
					t.Errorf("categorical attr %q is numeric", ds.DB.Attribute(a).Name)
				}
			}
			for _, a := range ds.MIAttrs {
				if !ds.DB.Attribute(a).Kind.Discrete() {
					t.Errorf("MI attr %q is numeric", ds.DB.Attribute(a).Name)
				}
			}
		})
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a, err := Favorita(tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Favorita(tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	ra := a.DB.Relation("Sales")
	rb := b.DB.Relation("Sales")
	if ra.Len() != rb.Len() {
		t.Fatalf("non-deterministic sizes: %d vs %d", ra.Len(), rb.Len())
	}
	for c := range ra.Cols {
		for i := 0; i < ra.Len(); i++ {
			if ra.Cols[c].Float(i) != rb.Cols[c].Float(i) {
				t.Fatalf("non-deterministic value at col %d row %d", c, i)
			}
		}
	}
}

func TestForeignKeyIntegrity(t *testing.T) {
	ds, err := Retailer(tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	inv := ds.DB.Relation("Inventory")
	items := ds.DB.Relation("Items")
	ksn, _ := ds.DB.AttrByName("ksn")
	domain := map[int64]bool{}
	for _, v := range items.MustCol(ksn).Ints {
		domain[v] = true
	}
	for _, v := range inv.MustCol(ksn).Ints {
		if !domain[v] {
			t.Fatalf("dangling ksn %d", v)
		}
	}
}

func TestScaleGrowsFacts(t *testing.T) {
	small, err := Favorita(Config{Scale: 0.0002, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Favorita(Config{Scale: 0.001, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if big.DB.Relation("Sales").Len() <= small.DB.Relation("Sales").Len() {
		t.Fatal("scale did not grow the fact table")
	}
}

// The generated datasets must be consumable by the query layer: a count
// query over each validates schema wiring end to end.
func TestDatasetsValidateQueries(t *testing.T) {
	for _, ds := range allTiny(t) {
		q := query.NewQuery("count", nil, query.CountAgg())
		if err := q.Validate(ds.DB); err != nil {
			t.Errorf("%s: %v", ds.Name, err)
		}
		ql := query.NewQuery("label", nil, query.SumAgg(ds.Label))
		if ds.DB.Attribute(ds.Label).Kind == data.Numeric {
			if err := ql.Validate(ds.DB); err != nil {
				t.Errorf("%s label: %v", ds.Name, err)
			}
		}
	}
}

func TestYelpManyToManyBlowup(t *testing.T) {
	// Yelp's Category/Attribute many-to-many joins must blow up the join
	// result relative to the database (Table 1: 360M join vs 8.7M input).
	ds, err := Yelp(tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := ds.Tree.MaterializeAll("flat")
	if err != nil {
		t.Fatal(err)
	}
	if flat.Len() <= ds.DB.TotalTuples() {
		t.Fatalf("join result %d not larger than database %d",
			flat.Len(), ds.DB.TotalTuples())
	}
}
