// Package datagen builds seeded synthetic databases with the schemas, join
// trees, key/foreign-key structure and cardinality ratios of the paper's four
// evaluation datasets (Table 1, Appendix A): Retailer and TPC-DS (snowflake),
// Favorita (star) and Yelp (star with many-to-many joins). The real datasets
// are partly proprietary; per DESIGN.md the generators preserve what the
// experiments measure — aggregate-batch sharing, factorization gains over
// join materialization, and Yelp's join blow-up.
//
// Fact tables scale linearly with Config.Scale; dimension tables scale with
// its square root (bounded below), which keeps key domains realistic at small
// scales.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/data"
	"repro/internal/jointree"
)

// Config controls dataset size and reproducibility.
type Config struct {
	// Scale is the linear scale factor: 1.0 reproduces the paper's
	// cardinalities (tens of millions of fact rows). Typical bench values
	// are 0.001–0.01.
	Scale float64
	// Seed drives all value generation.
	Seed int64
}

// DefaultConfig is a laptop-friendly scale.
func DefaultConfig() Config { return Config{Scale: 0.001, Seed: 2019} }

// Dataset bundles a generated database with its join tree and the workload
// attribute sets used by the paper's experiments.
type Dataset struct {
	Name string
	DB   *data.Database
	Tree *jointree.Tree

	// Continuous holds the numeric feature attributes (covar matrix
	// inputs), Categorical the discrete feature attributes.
	Continuous  []data.AttrID
	Categorical []data.AttrID
	// MIAttrs are the attributes used for the pairwise mutual-information
	// batch (paper: 9 for Retailer, 15 Favorita, 11 Yelp, 19 TPC-DS).
	MIAttrs []data.AttrID
	// Label is the regression target (classification for TPC-DS).
	Label data.AttrID
	// CubeDims (3) and CubeMeasures (5) configure the data-cube batch.
	CubeDims     []data.AttrID
	CubeMeasures []data.AttrID
	// JoinKeys are excluded from feature sets.
	JoinKeys []data.AttrID
}

// ByName returns the builder for a dataset name ("retailer", "favorita",
// "yelp", "tpcds").
func ByName(name string) (func(Config) (*Dataset, error), error) {
	switch name {
	case "retailer":
		return Retailer, nil
	case "favorita":
		return Favorita, nil
	case "yelp":
		return Yelp, nil
	case "tpcds":
		return TPCDS, nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q (want retailer|favorita|yelp|tpcds)", name)
	}
}

// All returns the four dataset names in paper order.
func All() []string { return []string{"retailer", "favorita", "yelp", "tpcds"} }

// ---------------------------------------------------------------------------
// generation helpers
// ---------------------------------------------------------------------------

// scaled returns base×scale bounded below by min.
func scaled(base float64, scale float64, min int) int {
	n := int(base * scale)
	if n < min {
		return min
	}
	return n
}

// dimScaled returns base×sqrt(scale) bounded below by min (dimension tables
// shrink more slowly than facts so key domains stay realistic).
func dimScaled(base float64, scale float64, min int) int {
	n := int(base * math.Sqrt(scale))
	if n < min {
		return min
	}
	return n
}

// builder assembles one relation column by column.
type builder struct {
	db    *data.Database
	name  string
	attrs []data.AttrID
	cols  []data.Column
	n     int
}

func newBuilder(db *data.Database, name string, rows int) *builder {
	return &builder{db: db, name: name, n: rows}
}

func (b *builder) key(name string, vals []int64) data.AttrID {
	id := b.db.Attr(name, data.Key)
	b.attrs = append(b.attrs, id)
	b.cols = append(b.cols, data.NewIntColumn(vals))
	return id
}

func (b *builder) cat(name string, vals []int64) data.AttrID {
	id := b.db.Attr(name, data.Categorical)
	b.attrs = append(b.attrs, id)
	b.cols = append(b.cols, data.NewIntColumn(vals))
	return id
}

func (b *builder) num(name string, vals []float64) data.AttrID {
	id := b.db.Attr(name, data.Numeric)
	b.attrs = append(b.attrs, id)
	b.cols = append(b.cols, data.NewFloatColumn(vals))
	return id
}

func (b *builder) add() (*data.Relation, error) {
	rel := data.NewRelation(b.name, b.attrs, b.cols)
	if err := b.db.AddRelation(rel); err != nil {
		return nil, err
	}
	return rel, nil
}

// value generators ----------------------------------------------------------

// uniformKeys draws n foreign keys uniformly from [0, dom).
func uniformKeys(rng *rand.Rand, n, dom int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rng.Intn(dom))
	}
	return out
}

// zipfKeys draws n foreign keys with Zipfian skew over [0, dom) — realistic
// for retail fact tables where few items dominate sales.
func zipfKeys(rng *rand.Rand, n, dom int, s float64) []int64 {
	if dom <= 1 {
		return make([]int64, n)
	}
	z := rand.NewZipf(rng, s, 1, uint64(dom-1))
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(z.Uint64())
	}
	return out
}

// seqKeys returns 0..n-1 (dimension primary keys).
func seqKeys(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// smallInts draws n categorical codes from [0, k).
func smallInts(rng *rand.Rand, n, k int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rng.Intn(k))
	}
	return out
}

// gaussian draws n values from N(mean, sd), truncated at zero when pos.
func gaussian(rng *rand.Rand, n int, mean, sd float64, pos bool) []float64 {
	out := make([]float64, n)
	for i := range out {
		v := mean + sd*rng.NormFloat64()
		if pos && v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// counts draws n small non-negative integers with mean lambda (approximate
// Poisson via geometric mixture; exact distribution is irrelevant here).
func counts(rng *rand.Rand, n int, lambda float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		v := 0
		p := math.Exp(-lambda)
		f := rng.Float64()
		cum := p
		for f > cum && v < int(lambda*8+10) {
			v++
			p *= lambda / float64(v)
			cum += p
		}
		out[i] = float64(v)
	}
	return out
}

// linearLabel builds a label column as a noisy linear combination of feature
// columns, so regression learners have signal to find.
func linearLabel(rng *rand.Rand, cols [][]float64, coefs []float64, noise float64) []float64 {
	n := len(cols[0])
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		v := 0.0
		for c := range cols {
			v += coefs[c] * cols[c][i]
		}
		out[i] = v + noise*rng.NormFloat64()
	}
	return out
}
