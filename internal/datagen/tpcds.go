package datagen

import (
	"math"
	"math/rand"

	"repro/internal/data"
	"repro/internal/jointree"
)

// TPCDS generates the paper's TPC-DS excerpt (scale factor 10 in the paper):
// the Store_Sales snowflake of Figure 6d with ten relations. String columns
// are dictionary-coded integers and irrelevant attributes are dropped, as in
// the paper's own preprocessing. The classification label is c_preferred
// ("predict whether a customer is a preferred customer", §4.2).
func TPCDS(cfg Config) (*Dataset, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	db := data.NewDatabase()

	nCustomers := dimScaled(500_000, cfg.Scale, 200)
	nAddresses := dimScaled(250_000, cfg.Scale, 120)
	nCDemo := dimScaled(480_000, cfg.Scale, 160)
	nHDemo := dimScaled(7_200, cfg.Scale, 40)
	nBands := 20
	nDates := dimScaled(36_000, cfg.Scale, 80)
	nTimes := dimScaled(43_000, cfg.Scale, 60)
	nItems := dimScaled(102_000, cfg.Scale, 150)
	nStores := dimScaled(502, cfg.Scale, 12)
	nSales := scaled(28_800_000, cfg.Scale, 4000)

	ds := &Dataset{Name: "tpcds", DB: db}

	// Income_Band -----------------------------------------------------------
	ib := newBuilder(db, "Income_Band", nBands)
	ibID := ib.key("ib_key", seqKeys(nBands))
	lower := make([]float64, nBands)
	upper := make([]float64, nBands)
	for i := range lower {
		lower[i] = float64(i) * 10_000
		upper[i] = lower[i] + 9_999
	}
	ds.Continuous = append(ds.Continuous,
		ib.num("ib_lower_bound", lower), ib.num("ib_upper_bound", upper))
	if _, err := ib.add(); err != nil {
		return nil, err
	}

	// Household_Demographics --------------------------------------------------
	hd := newBuilder(db, "Household_Demographics", nHDemo)
	hdID := hd.key("hd_key", seqKeys(nHDemo))
	hd.key("ib_key", uniformKeys(rng, nHDemo, nBands))
	hdBuy := hd.cat("hd_buy_potential", smallInts(rng, nHDemo, 6))
	ds.Continuous = append(ds.Continuous,
		hd.num("hd_dep_count", counts(rng, nHDemo, 2.5)),
		hd.num("hd_vehicle_count", counts(rng, nHDemo, 1.8)))
	ds.Categorical = append(ds.Categorical, hdBuy)
	if _, err := hd.add(); err != nil {
		return nil, err
	}

	// Customer_Address ---------------------------------------------------------
	ca := newBuilder(db, "Customer_Address", nAddresses)
	caID := ca.key("ca_key", seqKeys(nAddresses))
	caCity := ca.cat("ca_city", smallInts(rng, nAddresses, 40))
	caState := ca.cat("ca_state", smallInts(rng, nAddresses, 25))
	caLoc := ca.cat("ca_location_type", smallInts(rng, nAddresses, 3))
	ds.Continuous = append(ds.Continuous,
		ca.num("ca_gmt_offset", gaussian(rng, nAddresses, -6, 2, false)))
	ds.Categorical = append(ds.Categorical, caCity, caState, caLoc)
	if _, err := ca.add(); err != nil {
		return nil, err
	}

	// Customer_Demographics -----------------------------------------------------
	cd := newBuilder(db, "Customer_Demographics", nCDemo)
	cdID := cd.key("cd_key", seqKeys(nCDemo))
	cdGender := cd.cat("cd_gender", smallInts(rng, nCDemo, 2))
	cdMarital := cd.cat("cd_marital_status", smallInts(rng, nCDemo, 5))
	cdEdu := cd.cat("cd_education", smallInts(rng, nCDemo, 7))
	cdCredit := cd.cat("cd_credit_rating", smallInts(rng, nCDemo, 4))
	purchaseEst := gaussian(rng, nCDemo, 5_000, 2_800, true)
	ds.Continuous = append(ds.Continuous,
		cd.num("cd_purchase_estimate", purchaseEst),
		cd.num("cd_dep_count", counts(rng, nCDemo, 2)))
	ds.Categorical = append(ds.Categorical, cdGender, cdMarital, cdEdu, cdCredit)
	if _, err := cd.add(); err != nil {
		return nil, err
	}

	// Customer -------------------------------------------------------------------
	cu := newBuilder(db, "Customer", nCustomers)
	custID := cu.key("c_key", seqKeys(nCustomers))
	custCd := uniformKeys(rng, nCustomers, nCDemo)
	cu.key("cd_key", custCd)
	cu.key("ca_key", uniformKeys(rng, nCustomers, nAddresses))
	birthYear := gaussian(rng, nCustomers, 1972, 14, true)
	byID := cu.num("c_birth_year", birthYear)
	ds.Continuous = append(ds.Continuous, byID)
	// Preferred flag correlates with purchase estimate so classifiers can
	// learn it from joined demographics.
	pref := make([]int64, nCustomers)
	for i := range pref {
		p := 1.0 / (1.0 + math.Exp(-(purchaseEst[custCd[i]]-5_000)/1_500))
		if rng.Float64() < p {
			pref[i] = 1
		}
	}
	prefID := cu.cat("c_preferred", pref)
	if _, err := cu.add(); err != nil {
		return nil, err
	}

	// Date_dim ----------------------------------------------------------------
	dd := newBuilder(db, "Date_dim", nDates)
	dateID := dd.key("d_key", seqKeys(nDates))
	dYear := dd.cat("d_year", smallInts(rng, nDates, 6))
	dMoy := dd.cat("d_moy", smallInts(rng, nDates, 12))
	dDow := dd.cat("d_dow", smallInts(rng, nDates, 7))
	dHol := dd.cat("d_holiday", smallInts(rng, nDates, 2))
	ds.Categorical = append(ds.Categorical, dYear, dMoy, dDow, dHol)
	if _, err := dd.add(); err != nil {
		return nil, err
	}

	// Time_dim -----------------------------------------------------------------
	td := newBuilder(db, "Time_dim", nTimes)
	timeID := td.key("t_key", seqKeys(nTimes))
	tHour := td.cat("t_hour", smallInts(rng, nTimes, 24))
	tShift := td.cat("t_shift", smallInts(rng, nTimes, 3))
	ds.Categorical = append(ds.Categorical, tHour, tShift)
	if _, err := td.add(); err != nil {
		return nil, err
	}

	// Item ------------------------------------------------------------------------
	it := newBuilder(db, "Item", nItems)
	itemID := it.key("i_key", seqKeys(nItems))
	iCat := it.cat("i_category", smallInts(rng, nItems, 10))
	iClass := it.cat("i_class", smallInts(rng, nItems, 16))
	iBrand := it.cat("i_brand", smallInts(rng, nItems, 50))
	itemPrice := gaussian(rng, nItems, 55, 30, true)
	ds.Continuous = append(ds.Continuous,
		it.num("i_current_price", itemPrice),
		it.num("i_wholesale_cost", gaussian(rng, nItems, 32, 18, true)))
	ds.Categorical = append(ds.Categorical, iCat, iClass, iBrand)
	if _, err := it.add(); err != nil {
		return nil, err
	}

	// Store --------------------------------------------------------------------------
	st := newBuilder(db, "Store", nStores)
	storeID := st.key("s_key", seqKeys(nStores))
	sState := st.cat("s_state", smallInts(rng, nStores, 15))
	ds.Continuous = append(ds.Continuous,
		st.num("s_floor_space", gaussian(rng, nStores, 7_500_000, 2_000_000, true)),
		st.num("s_number_employees", gaussian(rng, nStores, 250, 60, true)),
		st.num("s_tax_percentage", gaussian(rng, nStores, 0.06, 0.02, true)))
	ds.Categorical = append(ds.Categorical, sState)
	if _, err := st.add(); err != nil {
		return nil, err
	}

	// Store_Sales (fact) ---------------------------------------------------------------
	ss := newBuilder(db, "Store_Sales", nSales)
	sCust := zipfKeys(rng, nSales, nCustomers, 1.05)
	sItem := zipfKeys(rng, nSales, nItems, 1.1)
	ss.key("c_key", sCust)
	ss.key("d_key", uniformKeys(rng, nSales, nDates))
	ss.key("t_key", uniformKeys(rng, nSales, nTimes))
	ss.key("i_key", sItem)
	ss.key("s_key", uniformKeys(rng, nSales, nStores))
	ss.key("hd_key", uniformKeys(rng, nSales, nHDemo))
	qty := counts(rng, nSales, 3)
	for i := range qty {
		qty[i]++
	}
	qtyID := ss.num("ss_quantity", qty)
	salesPrice := make([]float64, nSales)
	netProfit := make([]float64, nSales)
	for i := range salesPrice {
		salesPrice[i] = itemPrice[sItem[i]] * (0.8 + 0.4*rng.Float64())
		netProfit[i] = salesPrice[i]*qty[i]*0.2 + 5*rng.NormFloat64()
	}
	spID := ss.num("ss_sales_price", salesPrice)
	npID := ss.num("ss_net_profit", netProfit)
	ds.Continuous = append(ds.Continuous, qtyID, spID, npID,
		ss.num("ss_ext_discount_amt", gaussian(rng, nSales, 8, 6, true)))
	if _, err := ss.add(); err != nil {
		return nil, err
	}

	tree, err := jointree.Build(db)
	if err != nil {
		return nil, err
	}
	ds.Tree = tree
	ds.Label = prefID
	ds.JoinKeys = []data.AttrID{custID, caID, cdID, hdID, ibID, dateID, timeID,
		itemID, storeID}
	// Paper setup: MI over 19 attributes for TPC-DS.
	ds.MIAttrs = []data.AttrID{hdBuy, caCity, caState, caLoc, cdGender,
		cdMarital, cdEdu, cdCredit, dYear, dMoy, dDow, dHol, tHour, tShift,
		iCat, iClass, iBrand, sState, prefID}
	ds.CubeDims = []data.AttrID{iCat, sState, dYear}
	ds.CubeMeasures = []data.AttrID{qtyID, spID, npID,
		mustAttr(db, "ss_ext_discount_amt"), mustAttr(db, "i_current_price")}
	ds.Categorical = append(ds.Categorical, prefID)
	return ds, nil
}
