package data

import (
	"math/rand"
	"testing"
)

func partitionTestDB(t *testing.T) (*Database, AttrID, AttrID) {
	t.Helper()
	db := NewDatabase()
	k := db.Attr("k", Key)
	m := db.Attr("m", Numeric)
	c := db.Attr("c", Categorical)
	if err := db.AddRelation(NewRelation("F",
		[]AttrID{k, m},
		[]Column{
			NewIntColumn([]int64{0, 1, 2, 3, 4, 5, 6, 7, 0, 1}),
			NewFloatColumn([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}),
		})); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(NewRelation("D",
		[]AttrID{k, c},
		[]Column{
			NewIntColumn([]int64{0, 1, 2, 3, 4, 5, 6, 7}),
			NewIntColumn([]int64{0, 1, 0, 1, 0, 1, 0, 1}),
		})); err != nil {
		t.Fatal(err)
	}
	return db, k, m
}

func TestShardOfDeterministicAndInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		key := []int64{rng.Int63n(100) - 50, rng.Int63n(1000)}
		n := 1 + rng.Intn(8)
		s := ShardOf(key, n)
		if s < 0 || s >= n {
			t.Fatalf("ShardOf(%v, %d) = %d out of range", key, n, s)
		}
		if again := ShardOf(key, n); again != s {
			t.Fatalf("ShardOf(%v, %d) not deterministic: %d then %d", key, n, s, again)
		}
	}
	if got := ShardOf([]int64{123, 456}, 1); got != 0 {
		t.Fatalf("single shard must route to 0, got %d", got)
	}
}

func TestShardOfSpreads(t *testing.T) {
	// Sequential keys must not pile onto one shard; demand every shard of 4
	// gets a decent share of 1000 sequential single-attribute keys.
	counts := make([]int, 4)
	for k := int64(0); k < 1000; k++ {
		counts[ShardOf([]int64{k}, 4)]++
	}
	for s, c := range counts {
		if c < 100 {
			t.Fatalf("shard %d got only %d of 1000 sequential keys: %v", s, c, counts)
		}
	}
}

func TestPartitionByRoundTrip(t *testing.T) {
	db, k, _ := partitionTestDB(t)
	f := db.Relation("F")
	for _, n := range []int{1, 2, 3, 5} {
		parts, err := f.PartitionBy([]AttrID{k}, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != n {
			t.Fatalf("got %d parts, want %d", len(parts), n)
		}
		total := 0
		seen := map[[2]int64]int{}
		for s, p := range parts {
			total += p.Len()
			kc := p.MustCol(k)
			for i := 0; i < p.Len(); i++ {
				if want := ShardOf([]int64{kc.Ints[i]}, n); want != s {
					t.Fatalf("n=%d: key %d landed on shard %d, ShardOf says %d", n, kc.Ints[i], s, want)
				}
				seen[[2]int64{kc.Ints[i], int64(p.Cols[1].Floats[i])}]++
			}
		}
		if total != f.Len() {
			t.Fatalf("n=%d: shards hold %d rows, source has %d", n, total, f.Len())
		}
		for i := 0; i < f.Len(); i++ {
			key := [2]int64{f.Cols[0].Ints[i], int64(f.Cols[1].Floats[i])}
			if seen[key] == 0 {
				t.Fatalf("n=%d: source row %v missing from shards", n, key)
			}
			seen[key]--
		}
	}
}

func TestPartitionByErrors(t *testing.T) {
	db, _, m := partitionTestDB(t)
	f := db.Relation("F")
	if _, err := f.PartitionBy([]AttrID{m}, 2); err == nil {
		t.Fatal("partition on a numeric attribute must fail")
	}
	if _, err := f.PartitionBy([]AttrID{99}, 2); err == nil {
		t.Fatal("partition on a missing attribute must fail")
	}
	if _, err := f.PartitionBy([]AttrID{0}, 0); err == nil {
		t.Fatal("partition into 0 shards must fail")
	}
}

func TestPartitionDatabase(t *testing.T) {
	db, k, _ := partitionTestDB(t)
	shards, err := PartitionDatabase(db, "F", []AttrID{k}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 {
		t.Fatalf("got %d shards", len(shards))
	}
	factTotal := 0
	for s, sh := range shards {
		if sh.NumAttrs() != db.NumAttrs() {
			t.Fatalf("shard %d has %d attrs, want %d", s, sh.NumAttrs(), db.NumAttrs())
		}
		for i := 0; i < db.NumAttrs(); i++ {
			want, got := db.Attribute(AttrID(i)), sh.Attribute(AttrID(i))
			if want.Name != got.Name || want.Kind != got.Kind {
				t.Fatalf("shard %d attr %d: got %v/%v want %v/%v", s, i, got.Name, got.Kind, want.Name, want.Kind)
			}
		}
		d := sh.Relation("D")
		if d == nil || d.Len() != db.Relation("D").Len() {
			t.Fatalf("shard %d: dimension D not fully replicated", s)
		}
		factTotal += sh.Relation("F").Len()
	}
	if factTotal != db.Relation("F").Len() {
		t.Fatalf("fact rows across shards = %d, want %d", factTotal, db.Relation("F").Len())
	}

	// Shard mutations must not leak into the source or the other shards.
	beforeSrc := db.Relation("D").Len()
	before1 := shards[1].Relation("D").Len()
	if err := shards[0].Relation("D").Append([]Column{
		NewIntColumn([]int64{100}), NewIntColumn([]int64{0}),
	}); err != nil {
		t.Fatal(err)
	}
	if db.Relation("D").Len() != beforeSrc || shards[1].Relation("D").Len() != before1 {
		t.Fatal("shard mutation leaked into source or sibling shard")
	}

	if _, err := PartitionDatabase(db, "nope", []AttrID{k}, 2); err == nil {
		t.Fatal("unknown fact relation must fail")
	}
	if _, err := PartitionDatabase(db, "F", nil, 2); err == nil {
		t.Fatal("empty shard key must fail")
	}
}

func TestRouteDelta(t *testing.T) {
	db, k, _ := partitionTestDB(t)
	f := db.Relation("F")
	d := Delta{
		Relation: "F",
		Inserts: []Column{
			NewIntColumn([]int64{2, 3, 4, 2}),
			NewFloatColumn([]float64{20, 30, 40, 21}),
		},
		Deletes: []Column{
			NewIntColumn([]int64{0, 1}),
			NewFloatColumn([]float64{1, 2}),
		},
	}
	const n = 3
	routed, err := RouteDelta(f, d, []AttrID{k}, n)
	if err != nil {
		t.Fatal(err)
	}
	ins, del := 0, 0
	for s, rd := range routed {
		if rd.Relation != "F" {
			t.Fatalf("shard %d delta names %q", s, rd.Relation)
		}
		ins += rd.InsertRows()
		del += rd.DeleteRows()
		for i := 0; i < rd.InsertRows(); i++ {
			if want := ShardOf([]int64{rd.Inserts[0].Ints[i]}, n); want != s {
				t.Fatalf("insert key %d routed to shard %d, want %d", rd.Inserts[0].Ints[i], s, want)
			}
		}
		for i := 0; i < rd.DeleteRows(); i++ {
			if want := ShardOf([]int64{rd.Deletes[0].Ints[i]}, n); want != s {
				t.Fatalf("delete key %d routed to shard %d, want %d", rd.Deletes[0].Ints[i], s, want)
			}
		}
	}
	if ins != d.InsertRows() || del != d.DeleteRows() {
		t.Fatalf("routed %d/%d rows, want %d/%d", ins, del, d.InsertRows(), d.DeleteRows())
	}

	// A delete routes to the same shard as the insert that created its tuple.
	sIns := ShardOf([]int64{2}, n)
	found := false
	for i := 0; i < routed[sIns].InsertRows(); i++ {
		if routed[sIns].Inserts[0].Ints[i] == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("insert with key 2 not on its hash shard")
	}

	if _, err := RouteDelta(f, Delta{Relation: "F", Inserts: []Column{NewIntColumn([]int64{1})}}, []AttrID{k}, n); err == nil {
		t.Fatal("malformed block must fail routing")
	}
}
