package data

import "encoding/binary"

// Key packing: group-by tuples of discrete values are encoded as compact
// byte strings for use as Go map keys. Encoding is fixed-width little-endian
// int64 per component, so packing round-trips losslessly and lexicographic
// questions are left to the caller (hash maps do not need order).

// AppendKey appends the packed encoding of vals to buf and returns it.
func AppendKey(buf []byte, vals ...int64) []byte {
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

// PackKey returns the packed encoding of vals as a string (a fresh
// allocation; use AppendKey with a reused buffer plus an explicit
// string conversion on the hot path).
func PackKey(vals ...int64) string {
	return string(AppendKey(make([]byte, 0, 8*len(vals)), vals...))
}

// UnpackKey decodes a packed key into dst, which must have length
// len(key)/8.
func UnpackKey(key string, dst []int64) {
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64([]byte(key[i*8 : i*8+8])))
	}
}

// KeyLen returns the number of components in a packed key.
func KeyLen(key string) int { return len(key) / 8 }
