package data

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// FuzzLoadTSV feeds arbitrary bytes to the TSV loader: it must never panic,
// and accepted inputs must produce a relation that validates against its
// database and reloads deterministically.
func FuzzLoadTSV(f *testing.F) {
	f.Add([]byte("id\tcat\tval\n1\t2\t3.5\n2\tred\t-1\n"))
	f.Add([]byte("id\tcat\tval\n"))
	f.Add([]byte(""))
	f.Add([]byte("id\tcat\tval\n1\t2\n"))
	f.Add([]byte("id\tcat\tval\nx\t2\t3\n"))
	f.Add([]byte("id\tcat\tval\n9\t2\t3.5\n\n"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		specs := []ColumnSpec{
			{Name: "id", Kind: Key},
			{Name: "cat", Kind: Categorical},
			{Name: "val", Kind: Numeric},
		}
		db := NewDatabase()
		rel, err := LoadTSV(db, "fuzz", bytes.NewReader(raw), specs)
		if err != nil {
			return
		}
		if got := db.Relation("fuzz"); got != rel {
			t.Fatal("loaded relation not registered")
		}
		if len(rel.Attrs) != len(specs) || len(rel.Cols) != len(specs) {
			t.Fatalf("loaded %d attrs / %d cols, want %d", len(rel.Attrs), len(rel.Cols), len(specs))
		}
		for i, c := range rel.Cols {
			if c.Len() != rel.Len() {
				t.Fatalf("column %d has %d rows, relation has %d", i, c.Len(), rel.Len())
			}
		}
		// Reload into a fresh database: same shape, same values.
		db2 := NewDatabase()
		rel2, err := LoadTSV(db2, "fuzz", bytes.NewReader(raw), specs)
		if err != nil {
			t.Fatalf("reload of accepted input failed: %v", err)
		}
		if rel2.Len() != rel.Len() {
			t.Fatalf("reload changed row count %d to %d", rel.Len(), rel2.Len())
		}
		for i := range rel.Cols {
			a, b := rel.Cols[i], rel2.Cols[i]
			for r := 0; r < rel.Len(); r++ {
				if a.Float(r) != b.Float(r) && !(a.Float(r) != a.Float(r) && b.Float(r) != b.Float(r)) {
					t.Fatalf("reload changed row %d col %d: %v vs %v", r, i, a.Float(r), b.Float(r))
				}
			}
		}
	})
}

// FuzzTSVDict fuzzes the categorical dictionary path of the TSV loader: a
// one-column Categorical load where every non-integer value is dictionary-
// encoded. For accepted inputs the dictionary must round-trip every value
// (Code/Lookup/Value inverses, dense codes in first-seen order), integers
// must pass through verbatim, and a reload must assign identical codes.
func FuzzTSVDict(f *testing.F) {
	f.Add([]byte("red\ngreen\nred\nblue"))
	f.Add([]byte("7\n007\n-3\nseven\n7"))
	f.Add([]byte("a\n\nb\r\nc\r"))
	f.Add([]byte("só\n☃\n\x00weird\n "))
	f.Add([]byte(""))
	f.Add([]byte("has\ttab"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		specs := []ColumnSpec{{Name: "c", Kind: Categorical}}
		db := NewDatabase()
		rel, err := LoadTSV(db, "t", strings.NewReader("c\n"+string(raw)), specs)
		if err != nil {
			return
		}
		attr, ok := db.AttrByName("c")
		if !ok {
			t.Fatal("attribute not registered")
		}
		dict := db.Dict(attr)
		if dict == nil {
			t.Fatal("categorical attribute has no dictionary")
		}

		// Mirror the loader's line handling: newline-separated, trailing
		// \r stripped, blank lines skipped. Lines containing tabs split
		// into 2 fields and were rejected, so err == nil rules them out.
		var fields []string
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSuffix(line, "\r")
			if line == "" {
				continue
			}
			fields = append(fields, line)
		}
		if rel.Len() != len(fields) {
			t.Fatalf("loaded %d rows, want %d", rel.Len(), len(fields))
		}

		col := rel.Cols[0]
		distinct := make(map[string]bool)
		for i, v := range fields {
			code := col.Ints[i]
			if iv, perr := strconv.ParseInt(v, 10, 64); perr == nil {
				// Integer passthrough: never dictionary-encoded.
				if code != iv {
					t.Fatalf("row %d: integer %q stored as %d", i, v, code)
				}
				continue
			}
			distinct[v] = true
			got, ok := dict.Lookup(v)
			if !ok {
				t.Fatalf("row %d: value %q missing from dictionary", i, v)
			}
			if got != code {
				t.Fatalf("row %d: column code %d, dictionary code %d for %q", i, code, got, v)
			}
			if back := dict.Value(code); back != v {
				t.Fatalf("row %d: code %d decodes to %q, want %q", i, code, back, v)
			}
		}
		if dict.Len() != len(distinct) {
			t.Fatalf("dictionary has %d entries, want %d distinct non-integer values", dict.Len(), len(distinct))
		}
		// Codes are dense and invertible.
		for c := int64(0); c < int64(dict.Len()); c++ {
			v := dict.Value(c)
			rc, ok := dict.Lookup(v)
			if !ok || rc != c {
				t.Fatalf("code %d (%q) not invertible: lookup %d %v", c, v, rc, ok)
			}
		}
		// First-seen order is deterministic: a reload assigns identical
		// codes row for row.
		db2 := NewDatabase()
		rel2, err := LoadTSV(db2, "t", strings.NewReader("c\n"+string(raw)), specs)
		if err != nil {
			t.Fatalf("reload of accepted input failed: %v", err)
		}
		for i := 0; i < rel.Len(); i++ {
			if rel2.Cols[0].Ints[i] != col.Ints[i] {
				t.Fatalf("reload changed row %d code: %d vs %d", i, rel2.Cols[0].Ints[i], col.Ints[i])
			}
		}
	})
}

// FuzzSplitRelation checks that splitting by an arbitrary predicate-driven
// tape always partitions the rows: no panic, train+test = whole, schema
// preserved.
func FuzzSplitRelation(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, byte(2))
	f.Add([]byte{}, byte(1))
	f.Add([]byte{0, 0, 0}, byte(0))
	f.Fuzz(func(t *testing.T, vals []byte, mod byte) {
		db := NewDatabase()
		k := db.Attr("k", Key)
		m := db.Attr("m", Numeric)
		ints := make([]int64, len(vals))
		floats := make([]float64, len(vals))
		for i, v := range vals {
			ints[i] = int64(v)
			floats[i] = float64(v) / 2
		}
		rel := NewRelation("r", []AttrID{k, m},
			[]Column{NewIntColumn(ints), NewFloatColumn(floats)})
		if err := db.AddRelation(rel); err != nil {
			t.Fatal(err)
		}
		div := int64(mod)%5 + 1
		train, test, err := SplitRelation(rel, k, func(v int64) bool { return v%div == 0 })
		if err != nil {
			t.Fatal(err)
		}
		if train.Len()+test.Len() != rel.Len() {
			t.Fatalf("split lost rows: %d + %d != %d", train.Len(), test.Len(), rel.Len())
		}
		if len(train.Attrs) != len(rel.Attrs) || len(test.Attrs) != len(rel.Attrs) {
			t.Fatal("split changed schema")
		}
		for _, half := range []*Relation{train, test} {
			kc, _ := half.Col(k)
			held := half == test
			for i := 0; i < half.Len(); i++ {
				if (kc.Ints[i]%div == 0) != held {
					t.Fatalf("row %d landed in the wrong half", i)
				}
			}
		}
		// Splitting the database must keep the other relation count intact
		// and hand back the held-out rows.
		trainDB, heldOut, err := SplitDatabase(db, "r", k, func(v int64) bool { return v%div == 0 })
		if err != nil {
			t.Fatal(err)
		}
		if got := trainDB.Relation("r").Len() + heldOut.Len(); got != rel.Len() {
			t.Fatalf("database split lost rows: %d != %d", got, rel.Len())
		}
	})
}

// FuzzRelationDelta drives the delta log with arbitrary tapes: append and
// delete batches must keep the relation consistent (length bookkeeping,
// version monotonicity) and failed deletes must leave it untouched.
func FuzzRelationDelta(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{1, 9})
	f.Add([]byte{}, []byte{4})
	f.Add([]byte{7, 7, 7}, []byte{7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, ins []byte, del []byte) {
		db := NewDatabase()
		k := db.Attr("k", Key)
		m := db.Attr("m", Numeric)
		rel := NewRelation("r", []AttrID{k, m},
			[]Column{NewIntColumn([]int64{1, 2, 3}), NewFloatColumn([]float64{0.5, 1, 1.5})})
		if err := db.AddRelation(rel); err != nil {
			t.Fatal(err)
		}
		insInts := make([]int64, len(ins))
		insFloats := make([]float64, len(ins))
		for i, v := range ins {
			insInts[i] = int64(v % 8)
			insFloats[i] = float64(v%4) / 2
		}
		before := rel.Len()
		v0 := rel.Version()
		if err := rel.Append([]Column{NewIntColumn(insInts), NewFloatColumn(insFloats)}); err != nil {
			t.Fatal(err)
		}
		if rel.Len() != before+len(ins) {
			t.Fatalf("append: len %d, want %d", rel.Len(), before+len(ins))
		}
		if len(ins) > 0 && rel.Version() <= v0 {
			t.Fatal("append did not bump version")
		}

		delInts := make([]int64, len(del))
		delFloats := make([]float64, len(del))
		for i, v := range del {
			delInts[i] = int64(v % 8)
			delFloats[i] = float64(v%4) / 2
		}
		before = rel.Len()
		err := rel.DeleteRows([]Column{NewIntColumn(delInts), NewFloatColumn(delFloats)})
		if err != nil {
			if rel.Len() != before {
				t.Fatalf("failed delete mutated the relation: %d -> %d", before, rel.Len())
			}
			return
		}
		if rel.Len() != before-len(del) {
			t.Fatalf("delete: len %d, want %d", rel.Len(), before-len(del))
		}
		for _, c := range rel.Cols {
			if c.Len() != rel.Len() {
				t.Fatal("delete left ragged columns")
			}
		}
	})
}
