package data

import (
	"fmt"
	"strings"
)

// Join-key indexing for semi-join-restricted incremental maintenance
// (internal/ivm, moo.Engine.Apply): when a delta at one join-tree node
// propagates to a view at an unchanged node, only the base rows whose
// join-key values appear among the delta's keys can contribute to the
// view's delta. A KeyIndex answers "which rows hold this key tuple?" in
// O(1), turning the maintenance scan at an unchanged node from O(|R|)
// into O(|delta keys| + |matching rows|).

// KeyIndex is a hash index from packed key tuples over a fixed attribute
// list (see AppendKey) to the ascending row ids of a relation holding them.
// It is immutable once built; Relation.KeyIndex caches one per attribute
// list and rebuilds lazily when the relation's Version moves.
type KeyIndex struct {
	attrs []AttrID
	rows  map[string][]int32
}

// Attrs returns the attribute list the index keys are packed over, in
// packing order.
func (ix *KeyIndex) Attrs() []AttrID { return ix.attrs }

// Rows returns the ascending row ids holding the packed key tuple, or nil.
// The returned slice is shared with the index and must not be mutated.
func (ix *KeyIndex) Rows(packed string) []int32 { return ix.rows[packed] }

// NumKeys returns the number of distinct key tuples.
func (ix *KeyIndex) NumKeys() int { return len(ix.rows) }

// keyIndexEntry pins the relation content an index was built from.
type keyIndexEntry struct {
	version int64
	ix      *KeyIndex
}

// KeyIndex returns the relation's join-key index over attrs (in the given
// order), building it on first use and rebuilding when the relation has
// mutated since (Version mismatch). All attrs must be discrete columns of
// the relation. Safe for concurrent use.
func (r *Relation) KeyIndex(attrs []AttrID) (*KeyIndex, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("data: relation %q: key index over no attributes", r.Name)
	}
	key := keyIndexCacheKey(attrs)
	version := r.Version()
	r.keyIdxMu.Lock()
	if e, ok := r.keyIdx[key]; ok && e.version == version {
		r.keyIdxMu.Unlock()
		return e.ix, nil
	}
	r.keyIdxMu.Unlock()

	cols := make([][]int64, len(attrs))
	for i, a := range attrs {
		c, ok := r.Col(a)
		if !ok {
			return nil, fmt.Errorf("data: relation %q: key index over missing attribute %d", r.Name, a)
		}
		if !c.IsInt() {
			return nil, fmt.Errorf("data: relation %q: key index over numeric attribute %d", r.Name, a)
		}
		cols[i] = c.Ints
	}
	ix := &KeyIndex{
		attrs: append([]AttrID(nil), attrs...),
		rows:  make(map[string][]int32, r.n),
	}
	buf := make([]byte, 0, 8*len(attrs))
	for i := 0; i < r.n; i++ {
		buf = buf[:0]
		for _, col := range cols {
			buf = AppendKey(buf, col[i])
		}
		ix.rows[string(buf)] = append(ix.rows[string(buf)], int32(i))
	}
	r.keyIdxMu.Lock()
	if r.keyIdx == nil {
		r.keyIdx = make(map[string]keyIndexEntry)
	}
	r.keyIdx[key] = keyIndexEntry{version: version, ix: ix}
	r.keyIdxMu.Unlock()
	return ix, nil
}

func keyIndexCacheKey(attrs []AttrID) string {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = fmt.Sprint(a)
	}
	return strings.Join(parts, ",")
}

// GatherRows returns a new relation holding exactly the given rows of r (in
// the order of idx), sharing no row storage with the receiver. Used by the
// maintenance layer to materialize the semi-join-restricted row subset of an
// unchanged relation.
func (r *Relation) GatherRows(idx []int32) *Relation {
	out := &Relation{Name: r.Name, Attrs: append([]AttrID(nil), r.Attrs...), n: len(idx)}
	out.Cols = make([]Column, len(r.Cols))
	for i, c := range r.Cols {
		out.Cols[i] = c.gather(idx)
	}
	return out
}
