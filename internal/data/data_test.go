package data

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func testDB(t *testing.T) (*Database, *Relation) {
	t.Helper()
	db := NewDatabase()
	a := db.Attr("a", Key)
	b := db.Attr("b", Key)
	x := db.Attr("x", Numeric)
	rel := NewRelation("R",
		[]AttrID{a, b, x},
		[]Column{
			NewIntColumn([]int64{2, 1, 2, 1, 2}),
			NewIntColumn([]int64{7, 5, 6, 5, 6}),
			NewFloatColumn([]float64{1.5, 2.5, 3.5, 4.5, 5.5}),
		})
	if err := db.AddRelation(rel); err != nil {
		t.Fatalf("AddRelation: %v", err)
	}
	return db, rel
}

func TestAttrRegistry(t *testing.T) {
	db := NewDatabase()
	a := db.Attr("store", Key)
	a2 := db.Attr("store", Key)
	if a != a2 {
		t.Fatalf("re-registration returned different id: %d vs %d", a, a2)
	}
	if db.Attribute(a).Name != "store" {
		t.Fatalf("bad name %q", db.Attribute(a).Name)
	}
	if got, ok := db.AttrByName("store"); !ok || got != a {
		t.Fatalf("AttrByName = %d, %v", got, ok)
	}
	if _, ok := db.AttrByName("missing"); ok {
		t.Fatal("AttrByName found missing attribute")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("redeclaring with different kind should panic")
		}
	}()
	db.Attr("store", Numeric)
}

func TestAttrKindString(t *testing.T) {
	cases := map[Kind]string{Key: "key", Categorical: "categorical", Numeric: "numeric", Kind(9): "kind(9)"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if !Key.Discrete() || !Categorical.Discrete() || Numeric.Discrete() {
		t.Error("Discrete misclassified a kind")
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	if c := d.Code("red"); c != 0 {
		t.Fatalf("first code = %d", c)
	}
	if c := d.Code("green"); c != 1 {
		t.Fatalf("second code = %d", c)
	}
	if c := d.Code("red"); c != 0 {
		t.Fatalf("repeat code = %d", c)
	}
	if v := d.Value(1); v != "green" {
		t.Fatalf("Value(1) = %q", v)
	}
	if v := d.Value(5); v != "" {
		t.Fatalf("Value(5) = %q, want empty", v)
	}
	if _, ok := d.Lookup("blue"); ok {
		t.Fatal("Lookup found absent value")
	}
	if c, ok := d.Lookup("green"); !ok || c != 1 {
		t.Fatalf("Lookup(green) = %d, %v", c, ok)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestColumnAccessors(t *testing.T) {
	ic := NewIntColumn([]int64{3, 4})
	fc := NewFloatColumn([]float64{1.5, 2.5})
	if !ic.IsInt() || fc.IsInt() {
		t.Fatal("IsInt misreported")
	}
	if ic.Len() != 2 || fc.Len() != 2 {
		t.Fatal("Len wrong")
	}
	if ic.Float(1) != 4.0 || fc.Float(0) != 1.5 {
		t.Fatal("Float accessor wrong")
	}
	if ic.Int(0) != 3 {
		t.Fatal("Int accessor wrong")
	}
}

func TestColumnValidation(t *testing.T) {
	db := NewDatabase()
	a := db.Attr("a", Key)
	x := db.Attr("x", Numeric)

	cases := []struct {
		name string
		rel  *Relation
	}{
		{"length mismatch", NewRelation("R", []AttrID{a, x}, []Column{
			NewIntColumn([]int64{1, 2}), NewFloatColumn([]float64{1}),
		})},
		{"kind mismatch", NewRelation("R", []AttrID{a}, []Column{
			NewFloatColumn([]float64{1, 2}),
		})},
		{"empty column struct", NewRelation("R", []AttrID{a}, []Column{{}})},
		{"both storages", NewRelation("R", []AttrID{a}, []Column{
			{Ints: []int64{1}, Floats: []float64{1}},
		})},
		{"duplicate attr", NewRelation("R", []AttrID{a, a}, []Column{
			NewIntColumn([]int64{1}), NewIntColumn([]int64{1}),
		})},
		{"unknown attr", NewRelation("R", []AttrID{99}, []Column{
			NewIntColumn([]int64{1}),
		})},
		{"attrs/cols mismatch", NewRelation("R", []AttrID{a}, nil)},
	}
	for _, tc := range cases {
		// Column length for "length mismatch" case: NewRelation takes n
		// from the first column, so the second column mismatches.
		if err := db.AddRelation(tc.rel); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestDuplicateRelation(t *testing.T) {
	db, _ := testDB(t)
	rel2 := NewRelation("R", nil, nil)
	if err := db.AddRelation(rel2); err == nil {
		t.Fatal("duplicate relation name accepted")
	}
	if db.Relation("R") == nil {
		t.Fatal("lookup of registered relation failed")
	}
	if db.Relation("missing") != nil {
		t.Fatal("lookup of missing relation succeeded")
	}
}

func TestSortBy(t *testing.T) {
	_, rel := testDB(t)
	if err := rel.SortBy([]AttrID{0, 1}); err != nil {
		t.Fatalf("SortBy: %v", err)
	}
	a := rel.Cols[0].Ints
	b := rel.Cols[1].Ints
	for i := 1; i < rel.Len(); i++ {
		if a[i-1] > a[i] || (a[i-1] == a[i] && b[i-1] > b[i]) {
			t.Fatalf("not sorted at %d: (%d,%d) > (%d,%d)", i, a[i-1], b[i-1], a[i], b[i])
		}
	}
	// Numeric column must have moved with its row.
	x := rel.Cols[2].Floats
	want := map[[2]int64]float64{
		{1, 5}: 0, {2, 6}: 0, {2, 7}: 1.5,
	}
	_ = want
	// Row (2,7) carried x=1.5.
	last := rel.Len() - 1
	if a[last] != 2 || b[last] != 7 || x[last] != 1.5 {
		t.Fatalf("row payload not carried: got (%d,%d,%v)", a[last], b[last], x[last])
	}
	if !rel.SortedBy([]AttrID{0}) || !rel.SortedBy([]AttrID{0, 1}) {
		t.Fatal("SortedBy prefix check failed")
	}
	if rel.SortedBy([]AttrID{1}) {
		t.Fatal("SortedBy accepted wrong order")
	}
	// Sorting again by the same order is a no-op (no error).
	if err := rel.SortBy([]AttrID{0}); err != nil {
		t.Fatalf("prefix re-sort: %v", err)
	}
}

func TestSortByErrors(t *testing.T) {
	_, rel := testDB(t)
	if err := rel.SortBy([]AttrID{2}); err == nil {
		t.Fatal("sorting by numeric attribute should fail")
	}
	if err := rel.SortBy([]AttrID{42}); err == nil {
		t.Fatal("sorting by absent attribute should fail")
	}
}

func TestSortedCopy(t *testing.T) {
	_, rel := testDB(t)
	orig := append([]int64(nil), rel.Cols[0].Ints...)
	cp, err := rel.SortedCopy([]AttrID{1, 0})
	if err != nil {
		t.Fatalf("SortedCopy: %v", err)
	}
	if !cp.SortedBy([]AttrID{1, 0}) {
		t.Fatal("copy not sorted")
	}
	for i, v := range rel.Cols[0].Ints {
		if v != orig[i] {
			t.Fatal("SortedCopy mutated the original")
		}
	}
}

func TestDistinctCount(t *testing.T) {
	_, rel := testDB(t)
	if n := rel.DistinctCount(0); n != 2 {
		t.Fatalf("distinct(a) = %d, want 2", n)
	}
	if n := rel.DistinctCount(1); n != 3 {
		t.Fatalf("distinct(b) = %d, want 3", n)
	}
	// Cached path.
	if n := rel.DistinctCount(0); n != 2 {
		t.Fatalf("cached distinct(a) = %d", n)
	}
	if n := rel.DistinctCount(2); n != 0 {
		t.Fatalf("distinct(numeric) = %d, want 0", n)
	}
}

func TestRowFloats(t *testing.T) {
	_, rel := testDB(t)
	row := make([]float64, 3)
	rel.RowFloats(0, row)
	if row[0] != 2 || row[1] != 7 || row[2] != 1.5 {
		t.Fatalf("RowFloats = %v", row)
	}
}

func TestForEachRange(t *testing.T) {
	vals := []int64{1, 1, 1, 3, 3, 7}
	var got [][3]int64
	ForEachRange(vals, 0, len(vals), func(v int64, l, h int) {
		got = append(got, [3]int64{v, int64(l), int64(h)})
	})
	want := [][3]int64{{1, 0, 3}, {3, 3, 5}, {7, 5, 6}}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range %d: got %v want %v", i, got[i], want[i])
		}
	}
	if n := CountRanges(vals, 0, len(vals)); n != 3 {
		t.Fatalf("CountRanges = %d", n)
	}
}

// Property: ForEachRange partitions [0, n) exactly, with constant values
// within each range and different adjacent values across ranges.
func TestRangesPartitionProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v % 5)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		if len(vals) == 0 {
			return true
		}
		prev := 0
		ok := true
		var lastV int64 = -1
		ForEachRange(vals, 0, len(vals), func(v int64, l, h int) {
			if l != prev || h <= l {
				ok = false
			}
			if v == lastV {
				ok = false // adjacent ranges must differ
			}
			for i := l; i < h; i++ {
				if vals[i] != v {
					ok = false
				}
			}
			prev = h
			lastV = v
		})
		return ok && prev == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: key packing round-trips.
func TestPackKeyRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		key := PackKey(vals...)
		if KeyLen(key) != len(vals) {
			return false
		}
		out := make([]int64, len(vals))
		UnpackKey(key, out)
		for i := range vals {
			if out[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPackKeyDistinct(t *testing.T) {
	// Different tuples must pack to different keys.
	seen := map[string][2]int64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b := rng.Int63n(50)-25, rng.Int63n(50)-25
		k := PackKey(a, b)
		if prev, ok := seen[k]; ok && (prev[0] != a || prev[1] != b) {
			t.Fatalf("collision: %v vs (%d,%d)", prev, a, b)
		}
		seen[k] = [2]int64{a, b}
	}
}

func TestAppendKeyReuse(t *testing.T) {
	buf := make([]byte, 0, 16)
	buf = AppendKey(buf[:0], 1, 2)
	k1 := string(buf)
	buf = AppendKey(buf[:0], 3, 4)
	k2 := string(buf)
	if k1 == k2 {
		t.Fatal("reused buffer produced equal keys for different tuples")
	}
	if k1 != PackKey(1, 2) || k2 != PackKey(3, 4) {
		t.Fatal("AppendKey disagrees with PackKey")
	}
}

// Property: sorting then scanning ranges over the first key visits every row
// exactly once, and galloping RangeEnd agrees with a linear scan.
func TestRangeEndMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(4))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for lo := 0; lo < n; {
			end := RangeEnd(vals, lo, n)
			linEnd := lo + 1
			for linEnd < n && vals[linEnd] == vals[lo] {
				linEnd++
			}
			if end != linEnd {
				t.Fatalf("RangeEnd(%v, %d) = %d, want %d", vals, lo, end, linEnd)
			}
			lo = end
		}
	}
}

func TestDatabaseStats(t *testing.T) {
	db, rel := testDB(t)
	if db.TotalTuples() != rel.Len() {
		t.Fatalf("TotalTuples = %d", db.TotalTuples())
	}
	if db.SizeBytes() != int64(rel.Len()*3*8) {
		t.Fatalf("SizeBytes = %d", db.SizeBytes())
	}
	names := db.AttrNames([]AttrID{0, 2})
	if names[0] != "a" || names[1] != "x" {
		t.Fatalf("AttrNames = %v", names)
	}
	if db.NumAttrs() != 3 {
		t.Fatalf("NumAttrs = %d", db.NumAttrs())
	}
}

func TestMustColPanics(t *testing.T) {
	_, rel := testDB(t)
	defer func() {
		if recover() == nil {
			t.Fatal("MustCol on missing attribute should panic")
		}
	}()
	rel.MustCol(99)
}
