package data

import "fmt"

// Hash partitioning for sharded maintenance (lmfao.ShardedSession): the fact
// relation of a schema is split into N shards on a join key, every other
// relation is replicated, and each shard database is maintained by an
// independent writer. The helpers here are the single source of truth for
// the routing function — the loader (PartitionDatabase), the delta router
// (RouteDelta) and any consumer re-deriving a tuple's shard must all agree,
// so they all go through ShardOf.

// ShardOf returns the shard in [0, n) a key tuple routes to: a deterministic
// 64-bit mix (splitmix64 over each component, chained) reduced mod n. The
// mapping depends only on the key values and n — never on insertion order or
// process state — so a tuple and the deltas that later delete it always land
// on the same shard.
func ShardOf(key []int64, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range key {
		x := uint64(v) + 0x9e3779b97f4a7c15 + h
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		h = x
	}
	return int(h % uint64(n))
}

// keyPositions resolves attrs to their column positions in rel's schema,
// checking every one is discrete (hashable).
func (r *Relation) keyPositions(attrs []AttrID) ([]int, error) {
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		p := r.colIndex(a)
		if p < 0 {
			return nil, fmt.Errorf("data: relation %q: shard key attribute %d not in schema", r.Name, a)
		}
		if !r.Cols[p].IsInt() {
			return nil, fmt.Errorf("data: relation %q: shard key attribute %d is numeric", r.Name, a)
		}
		pos[i] = p
	}
	return pos, nil
}

// PartitionBlock routes a tuple block (one column per attribute of the
// owning relation, schema order) into n per-shard blocks by hashing the key
// columns at keyPos. Shards that receive no rows get a nil block, so callers
// can skip them without length checks. Row order is preserved within each
// shard. The returned blocks hold fresh storage.
func PartitionBlock(cols []Column, keyPos []int, n int) [][]Column {
	rows := blockLen(cols)
	out := make([][]Column, n)
	if rows == 0 {
		return out
	}
	perShard := make([][]int32, n)
	key := make([]int64, len(keyPos))
	for i := 0; i < rows; i++ {
		for j, p := range keyPos {
			key[j] = cols[p].Ints[i]
		}
		s := ShardOf(key, n)
		perShard[s] = append(perShard[s], int32(i))
	}
	for s, idx := range perShard {
		if len(idx) == 0 {
			continue
		}
		block := make([]Column, len(cols))
		for ci, c := range cols {
			block[ci] = c.gather(idx)
		}
		out[s] = block
	}
	return out
}

// PartitionBy splits the relation into n new relations by hashing the given
// discrete key attributes, preserving row order within each shard. Every
// shard relation has fresh column storage (shard s may be empty but is never
// nil) and carries the receiver's name, so shard databases keep the original
// schema vocabulary.
func (r *Relation) PartitionBy(attrs []AttrID, n int) ([]*Relation, error) {
	if n < 1 {
		return nil, fmt.Errorf("data: relation %q: partition into %d shards", r.Name, n)
	}
	keyPos, err := r.keyPositions(attrs)
	if err != nil {
		return nil, err
	}
	blocks := PartitionBlock(r.Cols, keyPos, n)
	out := make([]*Relation, n)
	for s := range out {
		if blocks[s] == nil {
			// An empty shard still needs typed columns so kind checks pass.
			empty := make([]Column, len(r.Cols))
			for ci, c := range r.Cols {
				if c.IsInt() {
					empty[ci] = Column{Ints: []int64{}}
				} else {
					empty[ci] = Column{Floats: []float64{}}
				}
			}
			blocks[s] = empty
		}
		out[s] = NewRelation(r.Name, append([]AttrID(nil), r.Attrs...), blocks[s])
	}
	return out, nil
}

// clone returns a deep copy of the relation (fresh column storage, no delta
// log, no caches).
func (r *Relation) clone() *Relation {
	return NewRelation(r.Name, append([]AttrID(nil), r.Attrs...), copyBlock(r.Cols))
}

// PartitionDatabase splits db into n shard databases for sharded
// maintenance: the relation named fact is hash-partitioned on the key
// attributes via ShardOf, every other relation is replicated (deep-copied,
// so shard writers can mutate independently), and the attribute registry is
// re-registered in ID order — AttrIDs, names and kinds carry over verbatim,
// so queries and join trees built against db's vocabulary are valid against
// every shard. Categorical dictionaries are NOT copied: shard databases hold
// already-encoded codes, and decoding stays with the source database.
//
// The source database is left untouched and shares no row storage with the
// shards.
func PartitionDatabase(db *Database, fact string, key []AttrID, n int) ([]*Database, error) {
	if n < 1 {
		return nil, fmt.Errorf("data: partition into %d shards", n)
	}
	factRel := db.Relation(fact)
	if factRel == nil {
		return nil, fmt.Errorf("data: partition: unknown fact relation %q", fact)
	}
	if len(key) == 0 {
		return nil, fmt.Errorf("data: partition of %q: empty shard key", fact)
	}
	parts, err := factRel.PartitionBy(key, n)
	if err != nil {
		return nil, err
	}
	out := make([]*Database, n)
	for s := range out {
		shard := NewDatabase()
		for i := 0; i < db.NumAttrs(); i++ {
			a := db.attrs[i]
			shard.Attr(a.Name, a.Kind)
		}
		if db.deltaLogCap > 0 {
			shard.deltaLogCap = db.deltaLogCap
		}
		for _, r := range db.relations {
			rel := parts[s]
			if r.Name != fact {
				rel = r.clone()
			}
			if err := shard.AddRelation(rel); err != nil {
				return nil, fmt.Errorf("data: partition shard %d: %w", s, err)
			}
			// Carry an explicitly configured per-relation retention cap onto
			// the shard, after AddRelation has applied the database-wide
			// default — the per-relation setting overrides it, as on the
			// source.
			r.logMu.Lock()
			relCap := r.logCap
			r.logMu.Unlock()
			if relCap > 0 {
				rel.SetDeltaLogCap(relCap)
			}
		}
		out[s] = shard
	}
	return out, nil
}

// RouteDelta splits a delta against the partitioned fact relation into n
// per-shard deltas by hashing each tuple's key values — inserts and deletes
// route independently, and a delete reaches exactly the shard its matching
// tuple was routed to (ShardOf is value-deterministic). Shards the delta
// does not touch get an empty delta (d.Empty() reports true), so callers can
// skip them. rel must be the fact relation's schema carrier (any shard's or
// the source's instance works; only the schema is read).
func RouteDelta(rel *Relation, d Delta, key []AttrID, n int) ([]Delta, error) {
	keyPos, err := rel.keyPositions(key)
	if err != nil {
		return nil, err
	}
	if d.Inserts != nil {
		if _, err := rel.checkBlock(d.Inserts); err != nil {
			return nil, err
		}
	}
	if d.Deletes != nil {
		if _, err := rel.checkBlock(d.Deletes); err != nil {
			return nil, err
		}
	}
	out := make([]Delta, n)
	for s := range out {
		out[s].Relation = d.Relation
	}
	if d.InsertRows() > 0 {
		for s, block := range PartitionBlock(d.Inserts, keyPos, n) {
			out[s].Inserts = block
		}
	}
	if d.DeleteRows() > 0 {
		for s, block := range PartitionBlock(d.Deletes, keyPos, n) {
			out[s].Deletes = block
		}
	}
	return out, nil
}
