package data

import (
	"fmt"
	"math"
)

// Delta describes one batch of changes against a named base relation:
// inserted and deleted tuples in the relation's schema order. Deletes are
// matched against existing tuples by full-row value equality; aggregates over
// the sum-product semiring are self-inverting, so the incremental-maintenance
// layer treats a delete as a negative-weight insert.
type Delta struct {
	Relation string
	// Inserts and Deletes hold one column per relation attribute (schema
	// order); either may be nil/empty.
	Inserts []Column
	Deletes []Column
}

// InsertRows returns the number of inserted tuples.
func (d Delta) InsertRows() int { return blockLen(d.Inserts) }

// DeleteRows returns the number of deleted tuples.
func (d Delta) DeleteRows() int { return blockLen(d.Deletes) }

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool { return d.InsertRows() == 0 && d.DeleteRows() == 0 }

func blockLen(cols []Column) int {
	if len(cols) == 0 {
		return 0
	}
	return cols[0].Len()
}

// Validate checks both column blocks against the relation's schema.
func (d Delta) Validate(rel *Relation) error {
	if d.Inserts != nil {
		if _, err := rel.checkBlock(d.Inserts); err != nil {
			return err
		}
	}
	if d.Deletes != nil {
		if _, err := rel.checkBlock(d.Deletes); err != nil {
			return err
		}
	}
	return nil
}

// DeltaEntry is one applied change in a relation's delta log. Seq increases
// monotonically per relation; entry columns are snapshots owned by the log.
type DeltaEntry struct {
	Seq     int64
	Inserts []Column
	Deletes []Column
}

// Version returns the relation's mutation counter: 0 for a freshly built
// relation, incremented by every Append/DeleteRows. Caches keyed by relation
// content (sorted copies, statistics) must include the version. Safe to call
// concurrently with the single writer's mutations.
func (r *Relation) Version() int64 {
	r.logMu.Lock()
	defer r.logMu.Unlock()
	return r.version
}

// DefaultDeltaLogCap is the per-relation delta-log retention bound used when
// none is configured (see SetDeltaLogCap): a long-lived relation under steady
// updates must not grow memory without bound. The oldest entries are dropped
// first; DeltaLogTruncatedThrough records the eviction high-water mark so
// consumers can detect the gap.
const DefaultDeltaLogCap = 1024

// SetDeltaLogCap bounds the relation's retained delta-log entries to n
// (clamped to at least 1). It overrides both DefaultDeltaLogCap and any
// database-wide default (Database.SetDeltaLogCap). Shrinking the cap takes
// effect on the next logged delta, not retroactively.
func (r *Relation) SetDeltaLogCap(n int) {
	if n < 1 {
		n = 1
	}
	r.logMu.Lock()
	r.logCap = n
	r.logMu.Unlock()
}

// DeltaLogCap returns the effective delta-log retention cap.
func (r *Relation) DeltaLogCap() int {
	r.logMu.Lock()
	defer r.logMu.Unlock()
	return r.effectiveLogCap()
}

func (r *Relation) effectiveLogCap() int {
	if r.logCap > 0 {
		return r.logCap
	}
	return DefaultDeltaLogCap
}

// DeltaLog returns the applied delta entries with Seq > since, oldest first.
// Pass since = 0 for the full retained log. Safe to call concurrently with
// the single writer's mutations; entry tuple blocks are immutable snapshots.
//
// The log keeps at most DeltaLogCap recent entries (older ones are also
// reclaimed by TruncateDeltaLog), so the result can silently omit evicted
// changes: after truncation, DeltaLog(since) returns only the retained
// suffix, NOT an error or a sentinel. A consumer resuming from `since` must
// treat the result as complete only when
// since >= DeltaLogTruncatedThrough(); otherwise entries in
// (since, truncatedThrough] were evicted and the consumer's view of the
// relation can no longer be caught up from the log alone — it must fall
// back to a full re-read (e.g. a Session recompute).
func (r *Relation) DeltaLog(since int64) []DeltaEntry {
	r.logMu.Lock()
	defer r.logMu.Unlock()
	var out []DeltaEntry
	for _, e := range r.log {
		if e.Seq > since {
			out = append(out, e)
		}
	}
	return out
}

// DeltaLogTruncatedThrough returns the highest Seq ever evicted from the
// delta log (0 when nothing has been evicted). DeltaLog(since) is a
// complete record of the relation's changes after `since` if and only if
// since >= DeltaLogTruncatedThrough(). Safe to call concurrently with the
// single writer's mutations.
func (r *Relation) DeltaLogTruncatedThrough() int64 {
	r.logMu.Lock()
	defer r.logMu.Unlock()
	return r.logDropped
}

// PinDeltaLog marks entries with Seq > seq as required: neither the
// retention cap nor TruncateDeltaLog will evict them until the pin moves
// forward or is removed. A WAL-backed session pins each relation at the
// version its newest durable checkpoint covers, so the log always retains
// the exact suffix a consumer resuming from that checkpoint must replay —
// without the cap silently punching a hole in it under steady updates.
// Repinning at a later seq releases the older range. Safe to call
// concurrently with the single writer's mutations.
func (r *Relation) PinDeltaLog(seq int64) {
	r.logMu.Lock()
	r.logPin = seq
	r.logPinned = true
	r.logMu.Unlock()
}

// UnpinDeltaLog removes the retention pin; eviction reverts to the plain
// cap policy.
func (r *Relation) UnpinDeltaLog() {
	r.logMu.Lock()
	r.logPinned = false
	r.logMu.Unlock()
}

// DeltaLogPin returns the current retention pin and whether one is set.
func (r *Relation) DeltaLogPin() (int64, bool) {
	r.logMu.Lock()
	defer r.logMu.Unlock()
	return r.logPin, r.logPinned
}

// TruncateDeltaLog drops log entries with Seq <= upTo, reclaiming their
// tuple snapshots. Pass the last Seq a consumer has durably processed. The
// dropped range is recorded in DeltaLogTruncatedThrough. A retention pin
// (PinDeltaLog) clamps the truncation: pinned entries survive.
func (r *Relation) TruncateDeltaLog(upTo int64) {
	r.logMu.Lock()
	defer r.logMu.Unlock()
	if r.logPinned && upTo > r.logPin {
		upTo = r.logPin
	}
	keep := r.log[:0]
	for _, e := range r.log {
		if e.Seq > upTo {
			keep = append(keep, e)
		} else if e.Seq > r.logDropped {
			r.logDropped = e.Seq
		}
	}
	for i := len(keep); i < len(r.log); i++ {
		r.log[i] = DeltaEntry{}
	}
	r.log = keep
}

// logDeltaLocked appends an entry, enforcing the retention cap. Caller holds
// logMu. A cap shrunk below the current length (SetDeltaLogCap) evicts the
// whole overhang here, so `over` may exceed 1. A retention pin
// (PinDeltaLog) limits eviction to entries at or below the pin: the log may
// then exceed the cap, trading memory for the replayability of the pinned
// suffix.
func (r *Relation) logDeltaLocked(e DeltaEntry) {
	r.log = append(r.log, e)
	max := r.effectiveLogCap()
	if len(r.log) > max {
		over := len(r.log) - max
		if r.logPinned {
			allowed := 0
			for allowed < over && r.log[allowed].Seq <= r.logPin {
				allowed++
			}
			over = allowed
		}
		if over == 0 {
			return
		}
		if dropped := r.log[over-1].Seq; dropped > r.logDropped {
			r.logDropped = dropped
		}
		copy(r.log, r.log[over:])
		for i := len(r.log) - over; i < len(r.log); i++ {
			r.log[i] = DeltaEntry{}
		}
		r.log = r.log[:len(r.log)-over]
	}
}

// mutated invalidates row-content-derived caches after an in-place change
// (the sort order no longer holds, distinct counts may have shifted) and
// commits the version bump plus log entry in one critical section, so a
// concurrent log reader never observes a version whose entry is missing.
// makeEntry builds the entry for the already-bumped version (nil for
// unlogged mutations).
func (r *Relation) mutated(makeEntry func(seq int64) DeltaEntry) {
	r.sortOrder = nil
	r.distinctMu.Lock()
	r.distinct = nil
	r.distinctMu.Unlock()
	r.logMu.Lock()
	r.version++
	if makeEntry != nil {
		r.logDeltaLocked(makeEntry(r.version))
	}
	r.logMu.Unlock()
}

// checkBlock validates a column block against the relation's schema: one
// column per attribute, kinds matching, equal lengths.
func (r *Relation) checkBlock(cols []Column) (int, error) {
	if len(cols) != len(r.Cols) {
		return 0, fmt.Errorf("data: relation %q: block has %d columns, want %d", r.Name, len(cols), len(r.Cols))
	}
	n := -1
	for i, c := range cols {
		if c.IsInt() != r.Cols[i].IsInt() {
			return 0, fmt.Errorf("data: relation %q column %d: kind mismatch", r.Name, i)
		}
		if n == -1 {
			n = c.Len()
		} else if c.Len() != n {
			return 0, fmt.Errorf("data: relation %q column %d: length %d, want %d", r.Name, i, c.Len(), n)
		}
	}
	if n < 0 {
		n = 0
	}
	return n, nil
}

// Append appends a block of tuples to the relation and records the change in
// its delta log. The appended rows break any previous sort order.
func (r *Relation) Append(cols []Column) error {
	n, err := r.checkBlock(cols)
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	for i := range r.Cols {
		if r.Cols[i].IsInt() {
			r.Cols[i].Ints = append(r.Cols[i].Ints, cols[i].Ints...)
		} else {
			r.Cols[i].Floats = append(r.Cols[i].Floats, cols[i].Floats...)
		}
	}
	r.n += n
	ins := copyBlock(cols)
	r.mutated(func(seq int64) DeltaEntry { return DeltaEntry{Seq: seq, Inserts: ins} })
	return nil
}

// DeleteRows removes one matching tuple per row of the block, matching by
// full-row value equality. If any tuple has no remaining match the relation
// is left untouched and an error is returned, so a failed delete cannot leave
// base data and maintained views inconsistent.
func (r *Relation) DeleteRows(cols []Column) error {
	n, err := r.checkBlock(cols)
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	// Hash the (small) delete block, then stream the base rows against it —
	// indexing the full relation would dominate small-delta maintenance.
	want := make(map[string]int, n)
	buf := make([]byte, 0, 8*len(r.Cols))
	for i := 0; i < n; i++ {
		buf = packRow(buf[:0], cols, i)
		want[string(buf)]++
	}
	drop := make([]bool, r.n)
	remaining := n
	for i := 0; i < r.n && remaining > 0; i++ {
		buf = packRow(buf[:0], r.Cols, i)
		if c := want[string(buf)]; c > 0 {
			want[string(buf)] = c - 1
			drop[i] = true
			remaining--
		}
	}
	if remaining > 0 {
		return fmt.Errorf("data: relation %q: %d delete tuples have no matching row", r.Name, remaining)
	}
	keep := make([]int32, 0, r.n-n)
	for i := 0; i < r.n; i++ {
		if !drop[i] {
			keep = append(keep, int32(i))
		}
	}
	for i := range r.Cols {
		r.Cols[i] = r.Cols[i].gather(keep)
	}
	r.n = len(keep)
	del := copyBlock(cols)
	r.mutated(func(seq int64) DeltaEntry { return DeltaEntry{Seq: seq, Deletes: del} })
	return nil
}

// packRow appends the packed encoding of row i across cols: int64 values
// verbatim, floats by their IEEE bits (exact-match semantics).
func packRow(buf []byte, cols []Column, i int) []byte {
	for _, c := range cols {
		if c.IsInt() {
			buf = AppendKey(buf, c.Ints[i])
		} else {
			buf = AppendKey(buf, int64(math.Float64bits(c.Floats[i])))
		}
	}
	return buf
}

func copyBlock(cols []Column) []Column {
	out := make([]Column, len(cols))
	for i, c := range cols {
		if c.IsInt() {
			out[i] = Column{Ints: append([]int64{}, c.Ints...)}
		} else {
			out[i] = Column{Floats: append([]float64{}, c.Floats...)}
		}
	}
	return out
}

// ApplyDelta applies d to its base relation: deletes are validated and
// removed first, then inserts are appended. Both halves land in the
// relation's delta log.
func (db *Database) ApplyDelta(d Delta) error {
	rel := db.Relation(d.Relation)
	if rel == nil {
		return fmt.Errorf("data: delta against unknown relation %q", d.Relation)
	}
	if d.DeleteRows() > 0 {
		if err := rel.DeleteRows(d.Deletes); err != nil {
			return err
		}
	}
	if d.InsertRows() > 0 {
		if err := rel.Append(d.Inserts); err != nil {
			return err
		}
	}
	return nil
}
