package data

import "testing"

func splitFixture(t *testing.T) (*Database, AttrID, AttrID) {
	t.Helper()
	db := NewDatabase()
	date := db.Attr("date", Key)
	x := db.Attr("x", Numeric)
	rel := NewRelation("Sales", []AttrID{date, x}, []Column{
		NewIntColumn([]int64{1, 2, 3, 4, 5, 6}),
		NewFloatColumn([]float64{10, 20, 30, 40, 50, 60}),
	})
	if err := db.AddRelation(rel); err != nil {
		t.Fatal(err)
	}
	dim := NewRelation("Dates", []AttrID{date}, []Column{
		NewIntColumn([]int64{1, 2, 3, 4, 5, 6}),
	})
	if err := db.AddRelation(dim); err != nil {
		t.Fatal(err)
	}
	return db, date, x
}

func TestSplitRelation(t *testing.T) {
	db, date, _ := splitFixture(t)
	rel := db.Relation("Sales")
	train, test, err := SplitRelation(rel, date, func(v int64) bool { return v > 4 })
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 4 || test.Len() != 2 {
		t.Fatalf("split = %d/%d", train.Len(), test.Len())
	}
	// Payload moves with the rows.
	c, _ := test.Col(1)
	if c.Float(0) != 50 || c.Float(1) != 60 {
		t.Fatalf("test payload = %v", c.Floats)
	}
	if test.Name != "Sales_test" {
		t.Fatalf("test name = %q", test.Name)
	}
}

func TestSplitRelationErrors(t *testing.T) {
	db, _, x := splitFixture(t)
	rel := db.Relation("Sales")
	if _, _, err := SplitRelation(rel, x, func(int64) bool { return false }); err == nil {
		t.Fatal("numeric split attribute accepted")
	}
	if _, _, err := SplitRelation(rel, AttrID(99), func(int64) bool { return false }); err == nil {
		t.Fatal("missing attribute accepted")
	}
}

func TestSplitDatabase(t *testing.T) {
	db, date, _ := splitFixture(t)
	train, test, err := SplitDatabase(db, "Sales", date, func(v int64) bool { return v >= 6 })
	if err != nil {
		t.Fatal(err)
	}
	if train.Relation("Sales").Len() != 5 {
		t.Fatalf("train rows = %d", train.Relation("Sales").Len())
	}
	if test.Len() != 1 {
		t.Fatalf("test rows = %d", test.Len())
	}
	// Untouched relations carry over.
	if train.Relation("Dates").Len() != 6 {
		t.Fatal("dimension relation modified")
	}
	// Attribute registry preserved.
	if train.NumAttrs() != db.NumAttrs() {
		t.Fatal("attribute registry lost")
	}
	if _, _, err := SplitDatabase(db, "Nope", date, func(int64) bool { return false }); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

func TestSplitEmptySides(t *testing.T) {
	db, date, _ := splitFixture(t)
	rel := db.Relation("Sales")
	train, test, err := SplitRelation(rel, date, func(int64) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 0 || test.Len() != 6 {
		t.Fatalf("split = %d/%d", train.Len(), test.Len())
	}
}
