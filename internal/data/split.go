package data

import "fmt"

// SplitRelation partitions a relation's rows by a predicate over one
// discrete attribute, returning the (kept, held-out) halves. The learning
// experiments use it to carve a test period off the fact table, as the paper
// does ("the test data constitutes the sales in the last month", Appendix A).
func SplitRelation(rel *Relation, attr AttrID, holdOut func(int64) bool) (train, test *Relation, err error) {
	col, ok := rel.Col(attr)
	if !ok {
		return nil, nil, fmt.Errorf("data: split of %q: missing attribute %d", rel.Name, attr)
	}
	if !col.IsInt() {
		return nil, nil, fmt.Errorf("data: split of %q: attribute %d is numeric", rel.Name, attr)
	}
	var trainIdx, testIdx []int32
	for i, v := range col.Ints {
		if holdOut(v) {
			testIdx = append(testIdx, int32(i))
		} else {
			trainIdx = append(trainIdx, int32(i))
		}
	}
	pick := func(name string, idx []int32) *Relation {
		cols := make([]Column, len(rel.Cols))
		for c, src := range rel.Cols {
			cols[c] = src.gather(idx)
		}
		return NewRelation(name, append([]AttrID(nil), rel.Attrs...), cols)
	}
	return pick(rel.Name, trainIdx), pick(rel.Name+"_test", testIdx), nil
}

// SplitDatabase rebuilds db with relation splitName's rows partitioned by the
// predicate: the returned train database replaces the relation with its kept
// rows; the held-out rows are returned as a standalone relation for
// evaluation.
func SplitDatabase(db *Database, splitName string, attr AttrID, holdOut func(int64) bool) (*Database, *Relation, error) {
	target := db.Relation(splitName)
	if target == nil {
		return nil, nil, fmt.Errorf("data: split: unknown relation %q", splitName)
	}
	train, test, err := SplitRelation(target, attr, holdOut)
	if err != nil {
		return nil, nil, err
	}
	out := NewDatabase()
	for i := 0; i < db.NumAttrs(); i++ {
		a := db.Attribute(AttrID(i))
		out.Attr(a.Name, a.Kind)
	}
	for _, rel := range db.Relations() {
		r := rel
		if rel.Name == splitName {
			r = train
		}
		if err := out.AddRelation(r); err != nil {
			return nil, nil, err
		}
	}
	return out, test, nil
}
