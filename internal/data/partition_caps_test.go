package data

import "testing"

func TestPartitionDatabasePropagatesDeltaLogCaps(t *testing.T) {
	db, k, _ := partitionTestDB(t)
	db.SetDeltaLogCap(500)             // database-wide default
	db.Relation("F").SetDeltaLogCap(7) // explicit per-relation override
	shards, err := PartitionDatabase(db, "F", []AttrID{k}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for s, sh := range shards {
		if got := sh.Relation("F").DeltaLogCap(); got != 7 {
			t.Fatalf("shard %d: fact cap = %d, want the explicit 7", s, got)
		}
		if got := sh.Relation("D").DeltaLogCap(); got != 500 {
			t.Fatalf("shard %d: dimension cap = %d, want the database default 500", s, got)
		}
	}
	// Without any configuration, shards stay on the built-in default.
	db2, k2, _ := partitionTestDB(t)
	shards2, err := PartitionDatabase(db2, "F", []AttrID{k2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := shards2[0].Relation("F").DeltaLogCap(); got != DefaultDeltaLogCap {
		t.Fatalf("unconfigured shard cap = %d, want DefaultDeltaLogCap", got)
	}
}
