package data

import (
	"strings"
	"testing"
)

func TestLoadTSV(t *testing.T) {
	db := NewDatabase()
	input := "store\tcity\tsales\n" +
		"1\tBoston\t10.5\n" +
		"2\tBoston\t20\n" +
		"3\tAustin\t30.25\n"
	rel, err := LoadTSV(db, "Sales", strings.NewReader(input), []ColumnSpec{
		{Name: "store", Kind: Key},
		{Name: "city", Kind: Categorical},
		{Name: "sales", Kind: Numeric},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("rows = %d", rel.Len())
	}
	city, _ := db.AttrByName("city")
	c := rel.MustCol(city)
	if c.Int(0) != c.Int(1) || c.Int(0) == c.Int(2) {
		t.Fatalf("dictionary codes wrong: %v", c.Ints)
	}
	if db.Dict(city).Value(c.Int(2)) != "Austin" {
		t.Fatal("dictionary round-trip failed")
	}
	sales, _ := db.AttrByName("sales")
	if rel.MustCol(sales).Float(2) != 30.25 {
		t.Fatal("numeric parse wrong")
	}
	// Registered with the database.
	if db.Relation("Sales") != rel {
		t.Fatal("relation not registered")
	}
}

func TestLoadTSVIntegerCategorical(t *testing.T) {
	db := NewDatabase()
	input := "c\n5\n7\n5\n"
	rel, err := LoadTSV(db, "R", strings.NewReader(input), []ColumnSpec{
		{Name: "c", Kind: Categorical},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cols[0].Int(0) != 5 || rel.Cols[0].Int(1) != 7 {
		t.Fatalf("integer categorical codes = %v", rel.Cols[0].Ints)
	}
}

func TestLoadTSVRoundTripWithExport(t *testing.T) {
	// A file with a trailing newline loads cleanly.
	db := NewDatabase()
	input := "k\tx\n1\t1.5\n2\t2.5\n\n"
	rel, err := LoadTSV(db, "R", strings.NewReader(input), []ColumnSpec{
		{Name: "k", Kind: Key}, {Name: "x", Kind: Numeric},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
}

func TestLoadTSVErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
		specs []ColumnSpec
	}{
		{"empty", "", []ColumnSpec{{Name: "a", Kind: Key}}},
		{"header mismatch", "b\n1\n", []ColumnSpec{{Name: "a", Kind: Key}}},
		{"arity mismatch", "a\tb\n1\n", []ColumnSpec{{Name: "a", Kind: Key}, {Name: "b", Kind: Key}}},
		{"bad int", "a\nxyz\n", []ColumnSpec{{Name: "a", Kind: Key}}},
		{"bad float", "a\nxyz\n", []ColumnSpec{{Name: "a", Kind: Numeric}}},
		{"header count", "a\n1\n", []ColumnSpec{{Name: "a", Kind: Key}, {Name: "b", Kind: Key}}},
	}
	for _, tc := range cases {
		db := NewDatabase()
		if _, err := LoadTSV(db, "R", strings.NewReader(tc.input), tc.specs); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
