// Package data implements the in-memory columnar storage substrate used by
// the LMFAO engine: typed attributes with per-database identity, dictionary
// encoding for categorical values, sorted relations with trie-style grouped
// scans, and key packing for group-by hash tables.
//
// The value model follows the paper's usage: attributes that can appear in
// group-by clauses or as join keys are discrete (int64; keys and
// dictionary-encoded categoricals), while continuous attributes (float64)
// appear only inside aggregate functions.
package data

import "fmt"

// AttrID identifies an attribute within a Database. Attribute identity is
// global to the database, not per-relation: the natural join semantics of the
// engine equate columns of the same AttrID across relations.
type AttrID int32

// Kind classifies an attribute.
type Kind uint8

const (
	// Key marks a discrete join-key attribute (int64 values).
	Key Kind = iota
	// Categorical marks a discrete, dictionary-encoded attribute (int64
	// codes into the database dictionary).
	Categorical
	// Numeric marks a continuous attribute (float64 values). Numeric
	// attributes cannot be join keys or group-by attributes.
	Numeric
)

// String returns the lower-case kind name.
func (k Kind) String() string {
	switch k {
	case Key:
		return "key"
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Discrete reports whether attributes of this kind hold int64 values and may
// serve as join keys or group-by attributes.
func (k Kind) Discrete() bool { return k != Numeric }

// Attribute describes one attribute of the database schema.
type Attribute struct {
	ID   AttrID
	Name string
	Kind Kind
}
