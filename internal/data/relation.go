package data

import (
	"fmt"
	"sort"
	"sync"
)

// Relation is an in-memory columnar relation. Columns are parallel to Attrs.
// A relation may be sorted by a prefix order of discrete attributes
// (SortOrder); the MOO executor relies on sortedness for trie-style scans.
type Relation struct {
	Name  string
	Attrs []AttrID
	Cols  []Column

	n int

	// sortOrder is the attribute order the rows are currently sorted by
	// (lexicographically); nil if unsorted.
	sortOrder []AttrID

	// distinct caches per-attribute distinct-value counts; distinctMu
	// guards it because group plans compile concurrently.
	distinctMu sync.Mutex
	distinct   map[AttrID]int

	// logMu guards version, log, logDropped and logCap: the snapshot
	// publication protocol (lmfao.Session) reads versions and delta-log
	// suffixes concurrently with the single writer's mutations, so the
	// version bump and log append commit under one critical section.
	// Column data itself stays single-writer: mutating rows must not race
	// with row reads.
	logMu sync.Mutex
	// version counts in-place mutations (see Version); log records the
	// applied deltas (see DeltaLog).
	version int64
	log     []DeltaEntry
	// logDropped is the highest Seq ever evicted from the log, by the
	// retention cap or TruncateDeltaLog (see DeltaLogTruncatedThrough).
	logDropped int64
	// logCap bounds the retained log entries; 0 means DefaultDeltaLogCap
	// (see SetDeltaLogCap).
	logCap int
	// logPin, when logPinned, is the highest Seq eviction may drop: entries
	// after it are needed by a durable consumer (see PinDeltaLog).
	logPin    int64
	logPinned bool

	// keyIdx caches join-key indexes per attribute list (see KeyIndex);
	// keyIdxMu guards it because maintenance passes may overlap with
	// concurrent plan compilation reads.
	keyIdxMu sync.Mutex
	keyIdx   map[string]keyIndexEntry
}

// NewRelation constructs a relation over the given attributes and columns.
// All columns must have equal length and match their attribute kinds; this is
// checked when the relation is added to a Database.
func NewRelation(name string, attrs []AttrID, cols []Column) *Relation {
	n := 0
	if len(cols) > 0 {
		n = cols[0].Len()
	}
	return &Relation{Name: name, Attrs: attrs, Cols: cols, n: n}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return r.n }

// HasAttr reports whether the relation's schema contains id.
func (r *Relation) HasAttr(id AttrID) bool { return r.colIndex(id) >= 0 }

// Col returns the column for attribute id; ok is false if absent.
func (r *Relation) Col(id AttrID) (Column, bool) {
	i := r.colIndex(id)
	if i < 0 {
		return Column{}, false
	}
	return r.Cols[i], true
}

// MustCol returns the column for attribute id, panicking if absent. Intended
// for engine-internal use after schema validation.
func (r *Relation) MustCol(id AttrID) Column {
	c, ok := r.Col(id)
	if !ok {
		panic(fmt.Sprintf("data: relation %q has no attribute %d", r.Name, id))
	}
	return c
}

func (r *Relation) colIndex(id AttrID) int {
	for i, a := range r.Attrs {
		if a == id {
			return i
		}
	}
	return -1
}

func (r *Relation) validate(db *Database) error {
	if len(r.Attrs) != len(r.Cols) {
		return fmt.Errorf("%d attributes but %d columns", len(r.Attrs), len(r.Cols))
	}
	seen := make(map[AttrID]bool, len(r.Attrs))
	for i, a := range r.Attrs {
		if int(a) < 0 || int(a) >= len(db.attrs) {
			return fmt.Errorf("unknown attribute id %d", a)
		}
		if seen[a] {
			return fmt.Errorf("duplicate attribute %q", db.attrs[a].Name)
		}
		seen[a] = true
		if err := r.Cols[i].check(r.n, db.attrs[a].Kind); err != nil {
			return fmt.Errorf("column %q: %w", db.attrs[a].Name, err)
		}
	}
	return nil
}

// SortOrder returns the attribute order the relation is sorted by, or nil.
func (r *Relation) SortOrder() []AttrID { return r.sortOrder }

// SortedBy reports whether the relation is sorted lexicographically by a
// sequence of attributes beginning with order (i.e. order is a prefix of the
// current sort order).
func (r *Relation) SortedBy(order []AttrID) bool {
	if len(order) > len(r.sortOrder) {
		return false
	}
	for i, a := range order {
		if r.sortOrder[i] != a {
			return false
		}
	}
	return true
}

// SortBy sorts the relation in place lexicographically by the given discrete
// attributes. It is a no-op if the relation is already sorted by a
// compatible prefix. Numeric attributes cannot be sort keys.
func (r *Relation) SortBy(order []AttrID) error {
	if r.SortedBy(order) {
		return nil
	}
	perm, err := r.SortPerm(order)
	if err != nil {
		return err
	}
	for i := range r.Cols {
		r.Cols[i] = r.Cols[i].gather(perm)
	}
	r.sortOrder = append([]AttrID(nil), order...)
	return nil
}

// sortKeys resolves the discrete key columns for a sort order.
func (r *Relation) sortKeys(order []AttrID) ([][]int64, error) {
	keys := make([][]int64, len(order))
	for i, a := range order {
		c, ok := r.Col(a)
		if !ok {
			return nil, fmt.Errorf("data: sort of %q: missing attribute %d", r.Name, a)
		}
		if !c.IsInt() {
			return nil, fmt.Errorf("data: sort of %q: attribute %d is numeric", r.Name, a)
		}
		keys[i] = c.Ints
	}
	return keys, nil
}

// SortPerm returns the stable permutation SortBy would apply: perm[i] is the
// receiver row that lands at position i when the relation is sorted
// lexicographically by order. Rows with equal keys keep their relative order
// (ascending row ids), so the permutation is unique. The receiver is left
// untouched.
func (r *Relation) SortPerm(order []AttrID) ([]int32, error) {
	keys, err := r.sortKeys(order)
	if err != nil {
		return nil, err
	}
	perm := make([]int32, r.n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(x, y int) bool {
		px, py := perm[x], perm[y]
		for _, k := range keys {
			if k[px] != k[py] {
				return k[px] < k[py]
			}
		}
		return false
	})
	return perm, nil
}

// SortIDsBy stably sorts row ids in place, lexicographically by the given
// discrete attributes. Starting from ascending ids this applies exactly the
// permutation SortBy would, restricted to the id subset — a scan visiting
// rows through the sorted ids sees them in the sequence a SortedCopy of the
// gathered subset would produce, which keeps float accumulation orders (and
// thus bit-exact results) identical between the two scan strategies.
func (r *Relation) SortIDsBy(order []AttrID, ids []int32) error {
	keys := make([][]int64, len(order))
	for i, a := range order {
		c, ok := r.Col(a)
		if !ok {
			return fmt.Errorf("data: id sort of %q: missing attribute %d", r.Name, a)
		}
		if !c.IsInt() {
			return fmt.Errorf("data: id sort of %q: attribute %d is numeric", r.Name, a)
		}
		keys[i] = c.Ints
	}
	sort.SliceStable(ids, func(x, y int) bool {
		px, py := ids[x], ids[y]
		for _, k := range keys {
			if k[px] != k[py] {
				return k[px] < k[py]
			}
		}
		return false
	})
	return nil
}

// SortedCopy returns a copy of the relation sorted by order, sharing no row
// storage with the receiver. The receiver is left untouched.
func (r *Relation) SortedCopy(order []AttrID) (*Relation, error) {
	cp := &Relation{Name: r.Name, Attrs: append([]AttrID(nil), r.Attrs...), n: r.n}
	cp.Cols = make([]Column, len(r.Cols))
	for i, c := range r.Cols {
		// Non-nil empty bases keep the column kind detectable when empty.
		if c.IsInt() {
			cp.Cols[i] = Column{Ints: append([]int64{}, c.Ints...)}
		} else {
			cp.Cols[i] = Column{Floats: append([]float64{}, c.Floats...)}
		}
	}
	if err := cp.SortBy(order); err != nil {
		return nil, err
	}
	return cp, nil
}

// Restore replaces the relation's contents and mutation counter with a
// recovered state: cols becomes the row storage (ownership transfers to the
// relation) and version the mutation counter, as captured by a WAL
// checkpoint. All derived caches — sort order, distinct counts, key
// indexes — are dropped, and the delta log resets to empty with
// DeltaLogTruncatedThrough = version, since the pre-restore entries are not
// reconstructible from a checkpoint. Single-writer: must not race with row
// reads.
func (r *Relation) Restore(cols []Column, version int64) error {
	n, err := r.checkBlock(cols)
	if err != nil {
		return err
	}
	r.Cols = cols
	r.n = n
	r.sortOrder = nil
	r.distinctMu.Lock()
	r.distinct = nil
	r.distinctMu.Unlock()
	r.keyIdxMu.Lock()
	r.keyIdx = nil
	r.keyIdxMu.Unlock()
	r.logMu.Lock()
	r.version = version
	for i := range r.log {
		r.log[i] = DeltaEntry{}
	}
	r.log = r.log[:0]
	r.logDropped = version
	r.logPinned = false
	r.logMu.Unlock()
	return nil
}

// DistinctCount returns the number of distinct values of a discrete
// attribute, caching the result. It is the cardinality statistic behind the
// MOO join-attribute order (paper §3.5: "increasing order in the domain
// sizes").
func (r *Relation) DistinctCount(id AttrID) int {
	r.distinctMu.Lock()
	if r.distinct == nil {
		r.distinct = make(map[AttrID]int)
	}
	if n, ok := r.distinct[id]; ok {
		r.distinctMu.Unlock()
		return n
	}
	r.distinctMu.Unlock()

	c, ok := r.Col(id)
	if !ok || !c.IsInt() {
		return 0
	}
	seen := make(map[int64]struct{}, 1024)
	for _, v := range c.Ints {
		seen[v] = struct{}{}
	}
	r.distinctMu.Lock()
	r.distinct[id] = len(seen)
	r.distinctMu.Unlock()
	return len(seen)
}

// RowFloats copies row i into dst as float64s in schema order.
func (r *Relation) RowFloats(i int, dst []float64) {
	for j, c := range r.Cols {
		dst[j] = c.Float(i)
	}
}
