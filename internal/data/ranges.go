package data

// RangeEnd returns the end (exclusive) of the run of rows in vals[lo:hi)
// equal to vals[lo]. vals must be sorted within [lo, hi). This is the
// primitive behind the trie-style grouped scan of sorted relations: the MOO
// executor sees the relation "organized logically as a trie: first grouped by
// one attribute, then by the next in the context of values for the first"
// (paper §1.2).
func RangeEnd(vals []int64, lo, hi int) int {
	v := vals[lo]
	// Galloping search: runs are often long in fact tables sorted by a
	// low-cardinality leading attribute, so probe exponentially before
	// falling back to binary search within the final bracket.
	step := 1
	i := lo + 1
	for i < hi && vals[i] == v {
		i += step
		step <<= 1
	}
	// The run ends somewhere in (i-step, min(i, hi)].
	lo2 := i - step
	hi2 := i
	if hi2 > hi {
		hi2 = hi
	}
	for lo2 < hi2 {
		mid := int(uint(lo2+hi2) >> 1)
		if vals[mid] == v {
			lo2 = mid + 1
		} else {
			hi2 = mid
		}
	}
	return lo2
}

// RangeEndIDs is RangeEnd over an id-indirected column: it returns the end
// (exclusive) of the run of positions in ids[lo:hi) whose rows carry the same
// vals value as ids[lo]. The ids slice must be ordered so that vals[ids[i]]
// is sorted within [lo, hi) — the row-id-batched restricted scan sorts
// candidate ids by the scan's attribute order and then walks them trie-style
// against the unsorted base relation, never materializing a row subset.
func RangeEndIDs(vals []int64, ids []int32, lo, hi int) int {
	v := vals[ids[lo]]
	// Same galloping shape as RangeEnd; runs of a low-cardinality leading
	// attribute stay long even after semi-join restriction.
	step := 1
	i := lo + 1
	for i < hi && vals[ids[i]] == v {
		i += step
		step <<= 1
	}
	lo2 := i - step
	hi2 := i
	if hi2 > hi {
		hi2 = hi
	}
	for lo2 < hi2 {
		mid := int(uint(lo2+hi2) >> 1)
		if vals[ids[mid]] == v {
			lo2 = mid + 1
		} else {
			hi2 = mid
		}
	}
	return lo2
}

// ForEachRange invokes fn(value, lo, hi) for each maximal run of equal values
// in vals[lo:hi). vals must be sorted within the range.
func ForEachRange(vals []int64, lo, hi int, fn func(v int64, l, h int)) {
	for lo < hi {
		end := RangeEnd(vals, lo, hi)
		fn(vals[lo], lo, end)
		lo = end
	}
}

// CountRanges returns the number of maximal equal-value runs in vals[lo:hi).
func CountRanges(vals []int64, lo, hi int) int {
	n := 0
	for lo < hi {
		lo = RangeEnd(vals, lo, hi)
		n++
	}
	return n
}
