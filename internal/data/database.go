package data

import "fmt"

// Database holds the attribute registry, dictionaries for categorical
// attributes, and the set of base relations. Natural-join semantics across
// relations are defined by shared AttrIDs.
type Database struct {
	attrs     []Attribute
	byName    map[string]AttrID
	dicts     map[AttrID]*Dictionary
	relations []*Relation
	relByName map[string]*Relation
	// deltaLogCap is the database-wide delta-log retention default applied
	// to relations as they are added (see SetDeltaLogCap); 0 leaves
	// relations on DefaultDeltaLogCap.
	deltaLogCap int
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{
		byName:    make(map[string]AttrID),
		dicts:     make(map[AttrID]*Dictionary),
		relByName: make(map[string]*Relation),
	}
}

// Attr registers (or returns the existing) attribute with the given name and
// kind. Registering the same name with a different kind is an error surfaced
// via panic, since it indicates a programming mistake in schema construction.
func (db *Database) Attr(name string, kind Kind) AttrID {
	if id, ok := db.byName[name]; ok {
		if db.attrs[id].Kind != kind {
			panic(fmt.Sprintf("data: attribute %q redeclared with kind %v (was %v)",
				name, kind, db.attrs[id].Kind))
		}
		return id
	}
	id := AttrID(len(db.attrs))
	db.attrs = append(db.attrs, Attribute{ID: id, Name: name, Kind: kind})
	db.byName[name] = id
	if kind == Categorical {
		db.dicts[id] = NewDictionary()
	}
	return id
}

// AttrByName returns the AttrID for name.
func (db *Database) AttrByName(name string) (AttrID, bool) {
	id, ok := db.byName[name]
	return id, ok
}

// Attribute returns the attribute metadata for id.
func (db *Database) Attribute(id AttrID) Attribute { return db.attrs[id] }

// NumAttrs returns the number of registered attributes.
func (db *Database) NumAttrs() int { return len(db.attrs) }

// Dict returns the dictionary for a categorical attribute (nil otherwise).
func (db *Database) Dict(id AttrID) *Dictionary { return db.dicts[id] }

// SetDeltaLogCap sets the delta-log retention cap (clamped to at least 1)
// on every registered relation and records it as the default for relations
// added later. A later Relation.SetDeltaLogCap overrides it per relation.
func (db *Database) SetDeltaLogCap(n int) {
	if n < 1 {
		n = 1
	}
	db.deltaLogCap = n
	for _, r := range db.relations {
		r.SetDeltaLogCap(n)
	}
}

// AddRelation registers rel with the database after validating it.
func (db *Database) AddRelation(rel *Relation) error {
	if _, dup := db.relByName[rel.Name]; dup {
		return fmt.Errorf("data: duplicate relation %q", rel.Name)
	}
	if err := rel.validate(db); err != nil {
		return fmt.Errorf("data: relation %q: %w", rel.Name, err)
	}
	if db.deltaLogCap > 0 {
		rel.SetDeltaLogCap(db.deltaLogCap)
	}
	db.relations = append(db.relations, rel)
	db.relByName[rel.Name] = rel
	return nil
}

// Relations returns the registered relations in registration order.
func (db *Database) Relations() []*Relation { return db.relations }

// Relation returns the relation with the given name, or nil.
func (db *Database) Relation(name string) *Relation { return db.relByName[name] }

// AttrNames formats a list of attribute IDs as their names.
func (db *Database) AttrNames(ids []AttrID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = db.attrs[id].Name
	}
	return out
}

// TotalTuples returns the sum of relation cardinalities.
func (db *Database) TotalTuples() int {
	n := 0
	for _, r := range db.relations {
		n += r.Len()
	}
	return n
}

// SizeBytes returns the in-memory payload size of all relations.
func (db *Database) SizeBytes() int64 {
	var n int64
	for _, r := range db.relations {
		n += int64(r.Len()) * int64(len(r.Attrs)) * 8
	}
	return n
}
