package data

import (
	"reflect"
	"testing"
)

func keyIndexFixture(t *testing.T) *Relation {
	t.Helper()
	db := NewDatabase()
	a := db.Attr("a", Key)
	b := db.Attr("b", Key)
	x := db.Attr("x", Numeric)
	rel := NewRelation("R", []AttrID{a, b, x}, []Column{
		NewIntColumn([]int64{1, 2, 1, 3, 2, 1}),
		NewIntColumn([]int64{10, 20, 10, 30, 21, 11}),
		NewFloatColumn([]float64{0.5, 1.5, 2.5, 3.5, 4.5, 5.5}),
	})
	if err := db.AddRelation(rel); err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestKeyIndexLookup(t *testing.T) {
	rel := keyIndexFixture(t)
	a, b := rel.Attrs[0], rel.Attrs[1]

	ix, err := rel.KeyIndex([]AttrID{a})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Rows(PackKey(1)); !reflect.DeepEqual(got, []int32{0, 2, 5}) {
		t.Fatalf("rows for a=1: got %v", got)
	}
	if got := ix.Rows(PackKey(3)); !reflect.DeepEqual(got, []int32{3}) {
		t.Fatalf("rows for a=3: got %v", got)
	}
	if got := ix.Rows(PackKey(99)); got != nil {
		t.Fatalf("rows for absent key: got %v", got)
	}
	if ix.NumKeys() != 3 {
		t.Fatalf("NumKeys = %d, want 3", ix.NumKeys())
	}

	// Composite key follows the attr order given.
	ix2, err := rel.KeyIndex([]AttrID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix2.Rows(PackKey(1, 10)); !reflect.DeepEqual(got, []int32{0, 2}) {
		t.Fatalf("rows for (1,10): got %v", got)
	}
	if got := ix2.Rows(PackKey(10, 1)); got != nil {
		t.Fatalf("reversed key order must miss: got %v", got)
	}
}

func TestKeyIndexCacheAndInvalidation(t *testing.T) {
	rel := keyIndexFixture(t)
	a := rel.Attrs[0]

	ix1, err := rel.KeyIndex([]AttrID{a})
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := rel.KeyIndex([]AttrID{a})
	if err != nil {
		t.Fatal(err)
	}
	if ix1 != ix2 {
		t.Fatal("unchanged relation must reuse the cached index")
	}

	// Mutate: the next fetch must rebuild and see the new row.
	if err := rel.Append([]Column{
		NewIntColumn([]int64{7}), NewIntColumn([]int64{70}), NewFloatColumn([]float64{7.5}),
	}); err != nil {
		t.Fatal(err)
	}
	ix3, err := rel.KeyIndex([]AttrID{a})
	if err != nil {
		t.Fatal(err)
	}
	if ix3 == ix1 {
		t.Fatal("mutation must invalidate the cached index")
	}
	if got := ix3.Rows(PackKey(7)); !reflect.DeepEqual(got, []int32{6}) {
		t.Fatalf("rows for appended key: got %v", got)
	}
}

func TestKeyIndexErrors(t *testing.T) {
	rel := keyIndexFixture(t)
	x := rel.Attrs[2] // numeric
	if _, err := rel.KeyIndex(nil); err == nil {
		t.Fatal("empty attr list must error")
	}
	if _, err := rel.KeyIndex([]AttrID{x}); err == nil {
		t.Fatal("numeric attribute must error")
	}
	if _, err := rel.KeyIndex([]AttrID{AttrID(99)}); err == nil {
		t.Fatal("missing attribute must error")
	}
}

func TestGatherRows(t *testing.T) {
	rel := keyIndexFixture(t)
	sub := rel.GatherRows([]int32{1, 3, 4})
	if sub.Len() != 3 {
		t.Fatalf("Len = %d, want 3", sub.Len())
	}
	if got := sub.Cols[0].Ints; !reflect.DeepEqual(got, []int64{2, 3, 2}) {
		t.Fatalf("gathered a column: got %v", got)
	}
	if got := sub.Cols[2].Floats; !reflect.DeepEqual(got, []float64{1.5, 3.5, 4.5}) {
		t.Fatalf("gathered x column: got %v", got)
	}
	// Storage must be independent of the source.
	sub.Cols[0].Ints[0] = 42
	if rel.Cols[0].Ints[1] == 42 {
		t.Fatal("GatherRows must not share storage")
	}
	if empty := rel.GatherRows(nil); empty.Len() != 0 {
		t.Fatalf("empty gather: Len = %d", empty.Len())
	}
}
