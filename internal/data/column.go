package data

import "fmt"

// Column stores the values of one attribute of a relation. Exactly one of
// Ints or Floats is non-nil, matching the attribute's Kind: discrete
// attributes use Ints, numeric attributes use Floats. The two-slice layout
// (instead of an interface) keeps inner-loop access monomorphic.
type Column struct {
	Ints   []int64
	Floats []float64
}

// NewIntColumn returns a discrete column over vals (not copied). A nil slice
// yields a valid empty column.
func NewIntColumn(vals []int64) Column {
	if vals == nil {
		vals = []int64{}
	}
	return Column{Ints: vals}
}

// NewFloatColumn returns a numeric column over vals (not copied). A nil
// slice yields a valid empty column.
func NewFloatColumn(vals []float64) Column {
	if vals == nil {
		vals = []float64{}
	}
	return Column{Floats: vals}
}

// IsInt reports whether the column holds discrete int64 values. Empty
// columns may carry nil storage after copies, so the float side decides.
func (c Column) IsInt() bool { return c.Floats == nil }

// Len returns the number of values.
func (c Column) Len() int {
	if c.Floats != nil {
		return len(c.Floats)
	}
	return len(c.Ints)
}

// Float returns row i as a float64 regardless of the underlying type. It is
// the accessor used by aggregate functions, which operate in the sum-product
// semiring over float64.
func (c Column) Float(i int) float64 {
	if c.Floats != nil {
		return c.Floats[i]
	}
	return float64(c.Ints[i])
}

// Int returns row i of a discrete column. It panics on numeric columns;
// callers must only use Int on group-by/join-key attributes, which the schema
// layer guarantees are discrete.
func (c Column) Int(i int) int64 { return c.Ints[i] }

// slice returns the sub-column for rows [lo, hi).
func (c Column) slice(lo, hi int) Column {
	if c.Ints != nil {
		return Column{Ints: c.Ints[lo:hi]}
	}
	return Column{Floats: c.Floats[lo:hi]}
}

// gather returns a new column with rows taken from perm order.
func (c Column) gather(perm []int32) Column {
	if c.Ints != nil {
		out := make([]int64, len(perm))
		for i, p := range perm {
			out[i] = c.Ints[p]
		}
		return Column{Ints: out}
	}
	out := make([]float64, len(perm))
	for i, p := range perm {
		out[i] = c.Floats[p]
	}
	return Column{Floats: out}
}

func (c Column) check(n int, kind Kind) error {
	if c.Ints == nil && c.Floats == nil {
		return fmt.Errorf("data: column has neither int nor float storage")
	}
	if c.Ints != nil && c.Floats != nil {
		return fmt.Errorf("data: column has both int and float storage")
	}
	if c.Len() != n {
		return fmt.Errorf("data: column length %d != relation length %d", c.Len(), n)
	}
	if kind.Discrete() != c.IsInt() {
		return fmt.Errorf("data: column storage does not match attribute kind %v", kind)
	}
	return nil
}
