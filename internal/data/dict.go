package data

// Dictionary maps categorical string values to dense int64 codes and back.
// Codes are assigned in first-seen order starting at 0. The zero value is not
// usable; construct with NewDictionary.
type Dictionary struct {
	values []string
	index  map[string]int64
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{index: make(map[string]int64)}
}

// Code returns the code for v, assigning a fresh code if v is new.
func (d *Dictionary) Code(v string) int64 {
	if c, ok := d.index[v]; ok {
		return c
	}
	c := int64(len(d.values))
	d.values = append(d.values, v)
	d.index[v] = c
	return c
}

// Lookup returns the code for v and whether it is present, without assigning.
func (d *Dictionary) Lookup(v string) (int64, bool) {
	c, ok := d.index[v]
	return c, ok
}

// Value returns the string for code c, or "" if c is out of range.
func (d *Dictionary) Value(c int64) string {
	if c < 0 || c >= int64(len(d.values)) {
		return ""
	}
	return d.values[c]
}

// Len returns the number of distinct values.
func (d *Dictionary) Len() int { return len(d.values) }
