package data

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ColumnSpec declares one column of a TSV file being loaded.
type ColumnSpec struct {
	Name string
	Kind Kind
}

// LoadTSV reads a tab-separated file with a header row into a relation,
// registering attributes in db as needed. Discrete columns parse as int64
// (Categorical columns may also hold arbitrary strings, which are
// dictionary-encoded); numeric columns parse as float64. The header must
// match the specs by name and order.
func LoadTSV(db *Database, name string, r io.Reader, specs []ColumnSpec) (*Relation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("data: load %q: empty input", name)
	}
	header := strings.Split(sc.Text(), "\t")
	if len(header) != len(specs) {
		return nil, fmt.Errorf("data: load %q: header has %d columns, want %d", name, len(header), len(specs))
	}
	attrs := make([]AttrID, len(specs))
	for i, spec := range specs {
		if header[i] != spec.Name {
			return nil, fmt.Errorf("data: load %q: column %d is %q, want %q", name, i, header[i], spec.Name)
		}
		attrs[i] = db.Attr(spec.Name, spec.Kind)
	}

	ints := make([][]int64, len(specs))
	floats := make([][]float64, len(specs))
	for i, spec := range specs {
		if spec.Kind.Discrete() {
			ints[i] = []int64{}
		} else {
			floats[i] = []float64{}
		}
	}
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) == 1 && fields[0] == "" {
			continue // trailing blank line
		}
		if len(fields) != len(specs) {
			return nil, fmt.Errorf("data: load %q line %d: %d fields, want %d", name, line, len(fields), len(specs))
		}
		for i, spec := range specs {
			f := fields[i]
			switch {
			case spec.Kind == Numeric:
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("data: load %q line %d column %q: %v", name, line, spec.Name, err)
				}
				floats[i] = append(floats[i], v)
			case spec.Kind == Categorical:
				// Integers pass through; other strings dictionary-encode.
				if v, err := strconv.ParseInt(f, 10, 64); err == nil {
					ints[i] = append(ints[i], v)
				} else {
					ints[i] = append(ints[i], db.Dict(attrs[i]).Code(f))
				}
			default: // Key
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("data: load %q line %d column %q: %v", name, line, spec.Name, err)
				}
				ints[i] = append(ints[i], v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: load %q: %w", name, err)
	}
	cols := make([]Column, len(specs))
	for i, spec := range specs {
		if spec.Kind.Discrete() {
			cols[i] = NewIntColumn(ints[i])
		} else {
			cols[i] = NewFloatColumn(floats[i])
		}
	}
	rel := NewRelation(name, attrs, cols)
	if err := db.AddRelation(rel); err != nil {
		return nil, err
	}
	return rel, nil
}
