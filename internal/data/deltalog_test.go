package data

import "testing"

func deltaLogFixture(t *testing.T) *Relation {
	t.Helper()
	db := NewDatabase()
	k := db.Attr("k", Key)
	rel := NewRelation("R", []AttrID{k}, []Column{NewIntColumn([]int64{0})})
	if err := db.AddRelation(rel); err != nil {
		t.Fatal(err)
	}
	return rel
}

func appendOne(t *testing.T, rel *Relation, v int64) {
	t.Helper()
	if err := rel.Append([]Column{NewIntColumn([]int64{v})}); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaLogGapDetection pins the documented contract: DeltaLog(since) is
// complete iff since >= DeltaLogTruncatedThrough(), both under explicit
// TruncateDeltaLog and under the retention cap.
func TestDeltaLogGapDetection(t *testing.T) {
	rel := deltaLogFixture(t)
	for i := int64(1); i <= 5; i++ {
		appendOne(t, rel, i)
	}
	if got := rel.DeltaLogTruncatedThrough(); got != 0 {
		t.Fatalf("fresh log: truncatedThrough = %d, want 0", got)
	}
	if got := len(rel.DeltaLog(0)); got != 5 {
		t.Fatalf("full log: %d entries, want 5", got)
	}

	// Explicit truncation: entries Seq <= 3 evicted.
	rel.TruncateDeltaLog(3)
	if got := rel.DeltaLogTruncatedThrough(); got != 3 {
		t.Fatalf("after truncate(3): truncatedThrough = %d, want 3", got)
	}
	// A consumer resumed from since=1 gets a silently gapped log (entries
	// 2,3 are gone) and must detect it via the high-water mark.
	gapped := rel.DeltaLog(1)
	if len(gapped) != 2 || gapped[0].Seq != 4 {
		t.Fatalf("DeltaLog(1) after truncation: got %d entries, first seq %d", len(gapped), gapped[0].Seq)
	}
	if since := int64(1); since >= rel.DeltaLogTruncatedThrough() {
		t.Fatal("since=1 must be detected as gapped")
	}
	// A consumer resumed from since=3 (or later) is complete.
	if since := int64(3); since < rel.DeltaLogTruncatedThrough() {
		t.Fatal("since=3 must be complete")
	}
	if got := rel.DeltaLog(3); len(got) != 2 || got[0].Seq != 4 || got[1].Seq != 5 {
		t.Fatalf("DeltaLog(3): got %v entries", len(got))
	}

	// Idempotent / non-regressing high-water mark.
	rel.TruncateDeltaLog(2)
	if got := rel.DeltaLogTruncatedThrough(); got != 3 {
		t.Fatalf("truncate(2) after truncate(3): truncatedThrough = %d, want 3", got)
	}
}

// TestDeltaLogRetentionCap verifies the cap evicts oldest-first and records
// the eviction in DeltaLogTruncatedThrough.
func TestDeltaLogRetentionCap(t *testing.T) {
	rel := deltaLogFixture(t)
	total := maxDeltaLogEntries + 7
	for i := 0; i < total; i++ {
		appendOne(t, rel, int64(i))
	}
	log := rel.DeltaLog(0)
	if len(log) != maxDeltaLogEntries {
		t.Fatalf("retained %d entries, want %d", len(log), maxDeltaLogEntries)
	}
	wantFirst := int64(total - maxDeltaLogEntries + 1)
	if log[0].Seq != wantFirst {
		t.Fatalf("oldest retained Seq = %d, want %d", log[0].Seq, wantFirst)
	}
	if got, want := rel.DeltaLogTruncatedThrough(), wantFirst-1; got != want {
		t.Fatalf("truncatedThrough = %d, want %d", got, want)
	}
	// Seqs are consecutive: DeltaLog(truncatedThrough) is exactly the
	// retained suffix with no gap.
	resumed := rel.DeltaLog(rel.DeltaLogTruncatedThrough())
	if len(resumed) != maxDeltaLogEntries || resumed[0].Seq != wantFirst {
		t.Fatalf("resume at high-water mark: %d entries, first %d", len(resumed), resumed[0].Seq)
	}
	for i := 1; i < len(resumed); i++ {
		if resumed[i].Seq != resumed[i-1].Seq+1 {
			t.Fatalf("non-consecutive Seq at %d: %d after %d", i, resumed[i].Seq, resumed[i-1].Seq)
		}
	}
}
