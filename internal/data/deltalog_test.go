package data

import "testing"

func deltaLogFixture(t *testing.T) *Relation {
	t.Helper()
	db := NewDatabase()
	k := db.Attr("k", Key)
	rel := NewRelation("R", []AttrID{k}, []Column{NewIntColumn([]int64{0})})
	if err := db.AddRelation(rel); err != nil {
		t.Fatal(err)
	}
	return rel
}

func appendOne(t *testing.T, rel *Relation, v int64) {
	t.Helper()
	if err := rel.Append([]Column{NewIntColumn([]int64{v})}); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaLogGapDetection pins the documented contract: DeltaLog(since) is
// complete iff since >= DeltaLogTruncatedThrough(), both under explicit
// TruncateDeltaLog and under the retention cap.
func TestDeltaLogGapDetection(t *testing.T) {
	rel := deltaLogFixture(t)
	for i := int64(1); i <= 5; i++ {
		appendOne(t, rel, i)
	}
	if got := rel.DeltaLogTruncatedThrough(); got != 0 {
		t.Fatalf("fresh log: truncatedThrough = %d, want 0", got)
	}
	if got := len(rel.DeltaLog(0)); got != 5 {
		t.Fatalf("full log: %d entries, want 5", got)
	}

	// Explicit truncation: entries Seq <= 3 evicted.
	rel.TruncateDeltaLog(3)
	if got := rel.DeltaLogTruncatedThrough(); got != 3 {
		t.Fatalf("after truncate(3): truncatedThrough = %d, want 3", got)
	}
	// A consumer resumed from since=1 gets a silently gapped log (entries
	// 2,3 are gone) and must detect it via the high-water mark.
	gapped := rel.DeltaLog(1)
	if len(gapped) != 2 || gapped[0].Seq != 4 {
		t.Fatalf("DeltaLog(1) after truncation: got %d entries, first seq %d", len(gapped), gapped[0].Seq)
	}
	if since := int64(1); since >= rel.DeltaLogTruncatedThrough() {
		t.Fatal("since=1 must be detected as gapped")
	}
	// A consumer resumed from since=3 (or later) is complete.
	if since := int64(3); since < rel.DeltaLogTruncatedThrough() {
		t.Fatal("since=3 must be complete")
	}
	if got := rel.DeltaLog(3); len(got) != 2 || got[0].Seq != 4 || got[1].Seq != 5 {
		t.Fatalf("DeltaLog(3): got %v entries", len(got))
	}

	// Idempotent / non-regressing high-water mark.
	rel.TruncateDeltaLog(2)
	if got := rel.DeltaLogTruncatedThrough(); got != 3 {
		t.Fatalf("truncate(2) after truncate(3): truncatedThrough = %d, want 3", got)
	}
}

// TestDeltaLogRetentionCap verifies the default cap evicts oldest-first and
// records the eviction in DeltaLogTruncatedThrough.
func TestDeltaLogRetentionCap(t *testing.T) {
	rel := deltaLogFixture(t)
	if got := rel.DeltaLogCap(); got != DefaultDeltaLogCap {
		t.Fatalf("unconfigured cap = %d, want DefaultDeltaLogCap %d", got, DefaultDeltaLogCap)
	}
	total := DefaultDeltaLogCap + 7
	for i := 0; i < total; i++ {
		appendOne(t, rel, int64(i))
	}
	log := rel.DeltaLog(0)
	if len(log) != DefaultDeltaLogCap {
		t.Fatalf("retained %d entries, want %d", len(log), DefaultDeltaLogCap)
	}
	wantFirst := int64(total - DefaultDeltaLogCap + 1)
	if log[0].Seq != wantFirst {
		t.Fatalf("oldest retained Seq = %d, want %d", log[0].Seq, wantFirst)
	}
	if got, want := rel.DeltaLogTruncatedThrough(), wantFirst-1; got != want {
		t.Fatalf("truncatedThrough = %d, want %d", got, want)
	}
	// Seqs are consecutive: DeltaLog(truncatedThrough) is exactly the
	// retained suffix with no gap.
	resumed := rel.DeltaLog(rel.DeltaLogTruncatedThrough())
	if len(resumed) != DefaultDeltaLogCap || resumed[0].Seq != wantFirst {
		t.Fatalf("resume at high-water mark: %d entries, first %d", len(resumed), resumed[0].Seq)
	}
	for i := 1; i < len(resumed); i++ {
		if resumed[i].Seq != resumed[i-1].Seq+1 {
			t.Fatalf("non-consecutive Seq at %d: %d after %d", i, resumed[i].Seq, resumed[i-1].Seq)
		}
	}
}

// TestDeltaLogConfiguredCap pins the gap-detection contract across a
// configured (small) cap boundary: before the cap is hit the log is
// complete from 0; the first eviction moves DeltaLogTruncatedThrough in
// lockstep with the oldest retained entry.
func TestDeltaLogConfiguredCap(t *testing.T) {
	rel := deltaLogFixture(t)
	rel.SetDeltaLogCap(4)
	if got := rel.DeltaLogCap(); got != 4 {
		t.Fatalf("cap = %d, want 4", got)
	}

	// Below the cap: complete, nothing evicted.
	for i := int64(1); i <= 4; i++ {
		appendOne(t, rel, i)
		if got := rel.DeltaLogTruncatedThrough(); got != 0 {
			t.Fatalf("after %d entries (cap 4): truncatedThrough = %d, want 0", i, got)
		}
		if got := len(rel.DeltaLog(0)); got != int(i) {
			t.Fatalf("after %d entries: %d retained, want %d", i, got, i)
		}
	}

	// Crossing the boundary: each append evicts exactly the oldest entry
	// and advances the high-water mark by one.
	for i := int64(5); i <= 9; i++ {
		appendOne(t, rel, i)
		log := rel.DeltaLog(0)
		if len(log) != 4 {
			t.Fatalf("after %d entries: %d retained, want 4", i, len(log))
		}
		if want := i - 4; rel.DeltaLogTruncatedThrough() != want {
			t.Fatalf("after %d entries: truncatedThrough = %d, want %d",
				i, rel.DeltaLogTruncatedThrough(), want)
		}
		if log[0].Seq != rel.DeltaLogTruncatedThrough()+1 {
			t.Fatalf("gap between truncatedThrough %d and oldest retained %d",
				rel.DeltaLogTruncatedThrough(), log[0].Seq)
		}
		// Resume exactly at the high-water mark: complete suffix.
		if got := len(rel.DeltaLog(rel.DeltaLogTruncatedThrough())); got != 4 {
			t.Fatalf("resume at mark after %d entries: %d, want 4", i, got)
		}
	}

	// Shrinking the cap takes effect on the next logged delta.
	rel.SetDeltaLogCap(2)
	appendOne(t, rel, 10)
	if got := len(rel.DeltaLog(0)); got != 2 {
		t.Fatalf("after shrink to 2: %d retained, want 2", got)
	}
	if got := rel.DeltaLogTruncatedThrough(); got != 8 {
		t.Fatalf("after shrink to 2: truncatedThrough = %d, want 8", got)
	}
}

// TestDatabaseDeltaLogCapDefault verifies the database-wide default reaches
// existing and future relations, and per-relation overrides win.
func TestDatabaseDeltaLogCapDefault(t *testing.T) {
	db := NewDatabase()
	k := db.Attr("k", Key)
	before := NewRelation("before", []AttrID{k}, []Column{NewIntColumn(nil)})
	if err := db.AddRelation(before); err != nil {
		t.Fatal(err)
	}
	db.SetDeltaLogCap(3)
	after := NewRelation("after", []AttrID{k}, []Column{NewIntColumn(nil)})
	if err := db.AddRelation(after); err != nil {
		t.Fatal(err)
	}
	if got := before.DeltaLogCap(); got != 3 {
		t.Fatalf("existing relation cap = %d, want 3", got)
	}
	if got := after.DeltaLogCap(); got != 3 {
		t.Fatalf("new relation cap = %d, want 3", got)
	}
	after.SetDeltaLogCap(7)
	if got := after.DeltaLogCap(); got != 7 {
		t.Fatalf("per-relation override = %d, want 7", got)
	}
}

// TestDeltaLogPin is the regression test for truncation racing a pinned
// snapshot: while a pin is set (a durable checkpoint still references the
// suffix after it), neither the retention cap nor explicit truncation may
// evict entries with Seq > pin.
func TestDeltaLogPin(t *testing.T) {
	rel := deltaLogFixture(t)
	rel.SetDeltaLogCap(4)
	for i := int64(1); i <= 4; i++ {
		appendOne(t, rel, i)
	}

	// Pin at 2: entries 3.. must survive any pressure.
	rel.PinDeltaLog(2)
	if pin, ok := rel.DeltaLogPin(); !ok || pin != 2 {
		t.Fatalf("pin = %d,%v, want 2,true", pin, ok)
	}

	// Explicit truncation beyond the pin is clamped to it.
	rel.TruncateDeltaLog(4)
	if got := rel.DeltaLogTruncatedThrough(); got != 2 {
		t.Fatalf("truncate(4) under pin 2: truncatedThrough = %d, want 2", got)
	}
	if log := rel.DeltaLog(2); len(log) != 2 || log[0].Seq != 3 {
		t.Fatalf("suffix after pin: %d entries, first %d", len(log), log[0].Seq)
	}

	// Cap pressure cannot evict past the pin either: the log grows beyond
	// the configured cap rather than dropping pinned entries.
	for i := int64(5); i <= 9; i++ {
		appendOne(t, rel, i)
	}
	if got := rel.DeltaLogTruncatedThrough(); got != 2 {
		t.Fatalf("cap pressure under pin 2: truncatedThrough = %d, want 2", got)
	}
	if log := rel.DeltaLog(2); len(log) != 7 || log[0].Seq != 3 {
		t.Fatalf("pinned log: %d entries, first %d, want 7 from 3", len(log), log[0].Seq)
	}

	// Moving the pin forward releases the older suffix on the next append.
	rel.PinDeltaLog(7)
	appendOne(t, rel, 10)
	if got := rel.DeltaLogTruncatedThrough(); got < 3 {
		t.Fatalf("after advancing pin: truncatedThrough = %d, want >= 3", got)
	}
	if log := rel.DeltaLog(7); len(log) != 3 || log[0].Seq != 8 {
		t.Fatalf("after advancing pin: %d entries, first %d", len(log), log[0].Seq)
	}

	// Unpinning restores plain cap behavior.
	rel.UnpinDeltaLog()
	if _, ok := rel.DeltaLogPin(); ok {
		t.Fatal("pin still set after UnpinDeltaLog")
	}
	appendOne(t, rel, 11)
	if got := len(rel.DeltaLog(0)); got > 4 {
		t.Fatalf("after unpin: %d retained, want <= cap 4", got)
	}
}

// TestRelationRestore verifies checkpoint restoration: contents and version
// replaced wholesale, the delta log emptied with its high-water mark moved to
// the restored version, and any pin cleared.
func TestRelationRestore(t *testing.T) {
	rel := deltaLogFixture(t)
	for i := int64(1); i <= 3; i++ {
		appendOne(t, rel, i)
	}
	rel.PinDeltaLog(1) //lmfao:ignore pinpair — Restore below clears the pin wholesale; that is the behavior under test

	if err := rel.Restore([]Column{NewIntColumn([]int64{7, 8})}, 42); err != nil {
		t.Fatal(err)
	}
	if got := rel.Len(); got != 2 {
		t.Fatalf("restored rows = %d, want 2", got)
	}
	if got := rel.Version(); got != 42 {
		t.Fatalf("restored version = %d, want 42", got)
	}
	if got := rel.DeltaLog(0); len(got) != 0 {
		t.Fatalf("restored log has %d entries, want 0", len(got))
	}
	if got := rel.DeltaLogTruncatedThrough(); got != 42 {
		t.Fatalf("restored truncatedThrough = %d, want 42", got)
	}
	if _, ok := rel.DeltaLogPin(); ok {
		t.Fatal("pin survived Restore")
	}

	// Post-restore appends continue from the restored version.
	appendOne(t, rel, 9)
	if log := rel.DeltaLog(42); len(log) != 1 || log[0].Seq != 43 {
		t.Fatalf("post-restore log: %d entries, first %v", len(log), log)
	}

	// Mismatched block shape is rejected and leaves state untouched.
	if err := rel.Restore([]Column{NewIntColumn(nil), NewIntColumn(nil)}, 50); err == nil {
		t.Fatal("Restore accepted wrong column count")
	}
	if got := rel.Version(); got != 43 {
		t.Fatalf("failed Restore changed version to %d", got)
	}
}
