package oracletest

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/data"
	"repro/internal/moo"
	"repro/internal/query"
)

// Tolerance selects the comparison mode: Exact demands bit-identical
// float64s (sound for dyadic-valued generated data, where every evaluation
// order yields the same exact result), Approx allows the relative drift
// inherent to reordered float sums over arbitrary real data.
type Tolerance int

const (
	Exact Tolerance = iota
	Approx
)

func (tol Tolerance) equal(a, b float64) bool {
	if a == b {
		return true
	}
	if tol == Exact {
		return false
	}
	d := math.Abs(a - b)
	return d <= 1e-6 || d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// EngineVariants are the engine configurations the oracle cross-checks:
// single-threaded and parallel, compiled and interpreted, with and without
// the logical optimizations.
func EngineVariants() map[string]moo.Options {
	return map[string]moo.Options{
		"1thread-compiled": {MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 1},
		"1thread-interp":   {MultiRoot: true, MultiOutput: true, Threads: 1},
		"nthread-compiled": {MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 4, DomainParallelRows: 4},
		"nthread-interp":   {MultiRoot: true, MultiOutput: true, Threads: 3, DomainParallelRows: 2},
		"acdc":             {Threads: 1},
	}
}

// viewRows flattens a materialized view into packed-key → aggregate rows,
// keeping only the first ncols columns (pass -1 for all: hidden tuple-count
// columns included).
func viewRows(v *moo.ViewData, ncols int) map[string][]float64 {
	if ncols < 0 || ncols > v.Stride {
		ncols = v.Stride
	}
	out := make(map[string][]float64, v.NumRows())
	for i := 0; i < v.NumRows(); i++ {
		row := make([]float64, ncols)
		for c := 0; c < ncols; c++ {
			row[c] = v.Val(i, c)
		}
		out[data.PackKey(v.Key(i)...)] = row
	}
	return out
}

func diffRows(label string, got, want map[string][]float64, tol Tolerance) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for key, wrow := range want {
		grow, ok := got[key]
		if !ok {
			return fmt.Errorf("%s: missing key %v", label, unpack(key))
		}
		if len(grow) != len(wrow) {
			return fmt.Errorf("%s: key %v has %d cols, want %d", label, unpack(key), len(grow), len(wrow))
		}
		for c := range wrow {
			if !tol.equal(grow[c], wrow[c]) {
				return fmt.Errorf("%s: key %v col %d: got %v want %v", label, unpack(key), c, grow[c], wrow[c])
			}
		}
	}
	return nil
}

func unpack(key string) []int64 {
	out := make([]int64, data.KeyLen(key))
	data.UnpackKey(key, out)
	return out
}

// CheckBatch runs the batch under every engine variant and compares each
// query's output against the brute-force baseline.
func CheckBatch(db *data.Database, queries []*query.Query, tol Tolerance) error {
	base, err := baseline.New(db)
	if err != nil {
		return err
	}
	want, err := base.Run(queries)
	if err != nil {
		return err
	}
	for name, opts := range EngineVariants() {
		eng, err := moo.NewEngine(db, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		res, err := eng.Run(queries)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := compareToBaseline(name, res, queries, want, tol); err != nil {
			return err
		}
	}
	return nil
}

func compareToBaseline(name string, res *moo.BatchResult, queries []*query.Query, want []*baseline.Result, tol Tolerance) error {
	for qi, q := range queries {
		got := viewRows(res.Results[qi], q.NumCols())
		if err := diffRows(fmt.Sprintf("%s/%s", name, q.Name), got, want[qi].Rows, tol); err != nil {
			return err
		}
	}
	return nil
}

// CheckMaintained compares a maintained batch result against (a) the
// baseline over the database's current state and (b) a from-scratch run of
// an identically configured engine — the latter checks every internal view
// of the DAG, not just the outputs.
func CheckMaintained(eng *moo.Engine, res *moo.BatchResult, queries []*query.Query, tol Tolerance) error {
	base, err := baseline.New(eng.DB())
	if err != nil {
		return err
	}
	want, err := base.Run(queries)
	if err != nil {
		return err
	}
	if err := compareToBaseline("maintained", res, queries, want, tol); err != nil {
		return err
	}

	// Recompute the SAME plan from scratch: replanning could pick different
	// roots (statistics drifted with the deltas), which would make view IDs
	// incomparable.
	fresh := moo.NewEngineWithTree(eng.DB(), eng.Tree(), eng.Options())
	full, err := fresh.RunPlan(res.Plan)
	if err != nil {
		return err
	}
	for vid := range full.Materialized {
		got := viewRows(res.Materialized[vid], -1)
		wantv := viewRows(full.Materialized[vid], -1)
		if err := diffRows(fmt.Sprintf("view %d", vid), got, wantv, tol); err != nil {
			return err
		}
	}
	return nil
}
