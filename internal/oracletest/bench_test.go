package oracletest

import (
	"math/rand"
	"testing"

	lmfao "repro"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/moo"
	"repro/internal/workloads"
)

func BenchmarkApplyRetailer(b *testing.B) {
	ds, err := datagen.Retailer(datagen.Config{Scale: 0.001, Seed: 2019})
	if err != nil {
		b.Fatal(err)
	}
	queries := workloads.CovarMatrix(ds)
	opts := moo.DefaultOptions()
	opts.TrackCounts = true
	eng := moo.NewEngineWithTree(ds.DB, ds.Tree, opts)
	sess, err := lmfao.NewSessionWithEngine(eng, queries)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rel := ds.DB.Relation("Inventory")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := benchDelta(rng, rel, 0.01)
		if _, err := sess.Apply(d); err != nil {
			b.Fatal(err)
		}
	}
}

// benchApplyDim measures dimension-table maintenance (the semi-join
// restriction's target case) with the restriction on or off.
func benchApplyDim(b *testing.B, semiJoin bool) {
	ds, err := datagen.Retailer(datagen.Config{Scale: 0.001, Seed: 2019})
	if err != nil {
		b.Fatal(err)
	}
	queries := workloads.CovarMatrix(ds)
	opts := moo.DefaultOptions()
	opts.TrackCounts = true
	opts.SemiJoin = semiJoin
	eng := moo.NewEngineWithTree(ds.DB, ds.Tree, opts)
	sess, err := lmfao.NewSessionWithEngine(eng, queries)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rel := ds.DB.Relation("Location")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := benchDelta(rng, rel, 0.01)
		if _, err := sess.Apply(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyRetailerDimSemiJoin(b *testing.B) { benchApplyDim(b, true) }

func BenchmarkApplyRetailerDimFullScan(b *testing.B) { benchApplyDim(b, false) }

func benchDelta(rng *rand.Rand, rel *data.Relation, frac float64) lmfao.Update {
	n := int(frac * float64(rel.Len()))
	if n < 2 {
		n = 2 // small relations still get a non-empty delta
	}
	nIns, nDel := n/2, n-n/2
	ins := make([]data.Column, len(rel.Cols))
	del := make([]data.Column, len(rel.Cols))
	rows := make([]int, nIns)
	for i := range rows {
		rows[i] = rng.Intn(rel.Len())
	}
	idx := rng.Perm(rel.Len())[:nDel]
	for ci, c := range rel.Cols {
		if c.IsInt() {
			iv := make([]int64, nIns)
			for i, r := range rows {
				iv[i] = c.Ints[r]
			}
			dv := make([]int64, nDel)
			for i, r := range idx {
				dv[i] = c.Ints[r]
			}
			ins[ci], del[ci] = data.NewIntColumn(iv), data.NewIntColumn(dv)
		} else {
			iv := make([]float64, nIns)
			for i, r := range rows {
				iv[i] = c.Floats[r]
			}
			dv := make([]float64, nDel)
			for i, r := range idx {
				dv[i] = c.Floats[r]
			}
			ins[ci], del[ci] = data.NewFloatColumn(iv), data.NewFloatColumn(dv)
		}
	}
	return lmfao.Update{Relation: rel.Name, Inserts: ins, Deletes: del}
}
