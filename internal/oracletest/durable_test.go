package oracletest

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	lmfao "repro"
	"repro/internal/data"
	"repro/internal/moo"
	"repro/internal/query"
)

// Kill-and-recover differential oracle (the durability acceptance test): a
// WAL-backed DurableSession and an uninterrupted twin Session consume the
// same recorded update stream; the durable side is killed at an injected
// crash point (mid-batch torn append, checkpoint that dies before fsync, a
// torn or bit-flipped log tail, or a plain Kill with no final checkpoint),
// recovered from disk, re-fed exactly the updates its log proves it lost,
// and must then be bit-exact with the twin: every materialized view
// (internal and output, hidden tuple counts included), and the relation
// version vector. The stream then continues through both sides and they
// must stay bit-exact. Generated values are dyadic so replayed float sums
// reproduce exactly; any disagreement is a durability bug, not drift.

// durableHarness owns one durable/twin pair over clones of one generated
// database plus the recorded update stream that drove them.
type durableHarness struct {
	t        *testing.T
	rng      *rand.Rand
	schema   *Schema
	queries  []*query.Query
	opts     moo.Options
	dopts    lmfao.DurableOptions
	dir      string
	pristine *data.Database // untouched clone recovery starts from
	twinDB   *data.Database
	twin     *lmfao.Session
	dur      *lmfao.DurableSession
	updates  []lmfao.Update
}

func newDurableHarness(t *testing.T, seed int64, dopts lmfao.DurableOptions) *durableHarness {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s, err := GenSchema(rng)
	if err != nil {
		t.Fatal(err)
	}
	queries := GenQueries(rng, s)
	pristine, err := cloneDatabase(s.DB)
	if err != nil {
		t.Fatal(err)
	}
	twinDB, err := cloneDatabase(s.DB)
	if err != nil {
		t.Fatal(err)
	}
	opts := moo.Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 1}
	twin, err := lmfao.NewSession(twinDB, queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := twin.Run(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dur, err := lmfao.NewDurableSession(s.DB, queries, opts, dopts, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dur.Run(); err != nil {
		t.Fatal(err)
	}
	return &durableHarness{t: t, rng: rng, schema: s, queries: queries, opts: opts,
		dopts: dopts, dir: dir, pristine: pristine, twinDB: twinDB, twin: twin, dur: dur}
}

// drive streams n fresh randomized updates through the twin and (best
// effort) the durable session, recording each. Durable-side errors are
// expected once a crash point triggers: the log stops accepting work and
// the on-disk prefix is what recovery gets.
func (h *durableHarness) drive(n int) {
	h.t.Helper()
	for i := 0; i < n; i++ {
		u := GenDelta(h.rng, h.twinDB, 3)
		h.updates = append(h.updates, u)
		if _, err := h.twin.Apply(u); err != nil {
			h.t.Fatalf("twin apply %d: %v", len(h.updates)-1, err)
		}
		_, _ = h.dur.Apply(u)
	}
}

// recoverAndResync recovers from h.dir over the pristine clone, re-applies
// the suffix of the recorded stream the log lost, and returns the recovered
// session. The caller owns Close.
func (h *durableHarness) recoverAndResync() *lmfao.DurableSession {
	h.t.Helper()
	rec, err := lmfao.RecoverSession(h.dir, h.pristine, h.queries, h.opts, h.dopts)
	if err != nil {
		h.t.Fatalf("RecoverSession: %v", err)
	}
	applied := rec.LastLSN()
	if applied > uint64(len(h.updates)) {
		h.t.Fatalf("recovered LSN %d beyond the %d-update stream", applied, len(h.updates))
	}
	if rest := h.updates[applied:]; len(rest) > 0 {
		if _, err := rec.Apply(rest...); err != nil {
			h.t.Fatalf("re-applying %d lost updates: %v", len(rest), err)
		}
	}
	return rec
}

// requireBitExact compares the recovered session against the twin: version
// vector and the complete materialized view DAG, all columns.
func requireBitExact(t *testing.T, label string, got, want *lmfao.Snapshot) {
	t.Helper()
	if !got.VersionVector().Equal(want.VersionVector()) {
		t.Fatalf("%s: version vector %v, want %v", label, got.VersionVector(), want.VersionVector())
	}
	gm, wm := got.Batch().Materialized, want.Batch().Materialized
	if len(gm) != len(wm) {
		t.Fatalf("%s: %d materialized views, want %d", label, len(gm), len(wm))
	}
	for i := range wm {
		if (gm[i] == nil) != (wm[i] == nil) {
			t.Fatalf("%s: view %d present=%v, want %v", label, i, gm[i] != nil, wm[i] != nil)
		}
		if wm[i] == nil {
			continue
		}
		if err := diffRows(fmt.Sprintf("%s/view %d", label, i),
			viewRows(gm[i], -1), viewRows(wm[i], -1), Exact); err != nil {
			t.Fatal(err)
		}
	}
}

// finish re-checks agreement, streams more updates through both sides, and
// re-checks again; recovery must leave a fully live session behind.
func (h *durableHarness) finish(rec *lmfao.DurableSession, label string) {
	h.t.Helper()
	requireBitExact(h.t, label+"/recovered", rec.Head(), h.twin.Head())
	for i := 0; i < 8; i++ {
		u := GenDelta(h.rng, h.twinDB, 3)
		if _, err := h.twin.Apply(u); err != nil {
			h.t.Fatalf("%s: twin continue %d: %v", label, i, err)
		}
		if _, err := rec.Apply(u); err != nil {
			h.t.Fatalf("%s: recovered continue %d: %v", label, i, err)
		}
	}
	requireBitExact(h.t, label+"/continued", rec.Head(), h.twin.Head())
	rec.Close()
	h.twin.Close()
}

// lastSegment returns the newest WAL segment file under the durable dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments under %s (err=%v)", dir, err)
	}
	return segs[len(segs)-1]
}

func TestDurableKillRecover(t *testing.T) {
	t.Run("midbatch", func(t *testing.T) {
		// Torn append mid-stream: the 14th log write dies halfway through
		// the frame. Recovery must land exactly on the 13-update prefix.
		h := newDurableHarness(t, 501, lmfao.DurableOptions{CheckpointEvery: 5, SyncEvery: 1})
		h.dur.CrashAfterAppends(13)
		h.drive(30)
		h.dur.Kill()
		rec := h.recoverAndResync()
		if got := rec.LastLSN(); got < 13 {
			t.Fatalf("recovered LSN %d, want >= 13 (crash point plus resync)", got)
		}
		h.finish(rec, "midbatch")
	})

	t.Run("precheckpoint", func(t *testing.T) {
		// The first automatic checkpoint dies before fsync: recovery must
		// ignore its .tmp litter and replay the whole log from scratch.
		h := newDurableHarness(t, 502, lmfao.DurableOptions{CheckpointEvery: 6, SyncEvery: 1})
		h.dur.CrashNextCheckpoint()
		h.drive(20)
		h.dur.Kill()
		rec := h.recoverAndResync()
		h.finish(rec, "precheckpoint")
	})

	t.Run("postcheckpoint", func(t *testing.T) {
		// Plain kill with live checkpoints: recovery restores the newest
		// checkpoint and replays only the log suffix after it.
		h := newDurableHarness(t, 503, lmfao.DurableOptions{CheckpointEvery: 4, SyncEvery: 1})
		h.drive(11)
		h.dur.Kill()
		rec := h.recoverAndResync()
		if got := rec.LastLSN(); got != 11 {
			t.Fatalf("nothing was torn, so the full 11-update log must replay; got LSN %d", got)
		}
		h.finish(rec, "postcheckpoint")
	})

	t.Run("torntail", func(t *testing.T) {
		// The tail of the last segment is cut mid-frame after the kill
		// (a torn write the file system half-persisted).
		h := newDurableHarness(t, 504, lmfao.DurableOptions{CheckpointEvery: 4, SyncEvery: 1})
		h.drive(11)
		h.dur.Kill()
		seg := lastSegment(t, h.dir)
		st, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, st.Size()-5); err != nil {
			t.Fatal(err)
		}
		rec := h.recoverAndResync()
		h.finish(rec, "torntail")
	})

	t.Run("corrupt", func(t *testing.T) {
		// A bit flip near the tail of the last segment: the checksum cuts
		// the log at the damaged record and recovery resumes from there.
		h := newDurableHarness(t, 505, lmfao.DurableOptions{CheckpointEvery: 4, SyncEvery: 1})
		h.drive(11)
		h.dur.Kill()
		seg := lastSegment(t, h.dir)
		b, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)-10] ^= 0x10
		if err := os.WriteFile(seg, b, 0o644); err != nil {
			t.Fatal(err)
		}
		rec := h.recoverAndResync()
		h.finish(rec, "corrupt")
	})

	t.Run("cleanclose", func(t *testing.T) {
		// Close writes a final checkpoint; recovery must not need the log.
		h := newDurableHarness(t, 506, lmfao.DurableOptions{CheckpointEvery: 64, SyncEvery: 1})
		h.drive(11)
		h.dur.Close()
		rec := h.recoverAndResync()
		if got := rec.LastLSN(); got != 11 {
			t.Fatalf("clean close lost work: LSN %d, want 11", got)
		}
		h.finish(rec, "cleanclose")
	})

	t.Run("smalldeltalogcap", func(t *testing.T) {
		// Regression for delta-log truncation racing pinned checkpoints: a
		// tiny retention cap would evict the suffix recovery replays were
		// checkpoints not pinning it.
		h := newDurableHarness(t, 507, lmfao.DurableOptions{CheckpointEvery: 3, SyncEvery: 1})
		h.schema.DB.SetDeltaLogCap(2)
		h.drive(17)
		h.dur.Kill()
		rec := h.recoverAndResync()
		h.finish(rec, "smalldeltalogcap")
	})
}

// TestDurableSessionRejectsReuse pins the constructor contract: a directory
// already holding durable state must be recovered, never re-initialized.
func TestDurableSessionRejectsReuse(t *testing.T) {
	h := newDurableHarness(t, 508, lmfao.DurableOptions{CheckpointEvery: 4, SyncEvery: 1})
	h.drive(5)
	h.dur.Close()
	if _, err := lmfao.NewDurableSession(h.pristine, h.queries, h.opts, h.dopts, h.dir); err == nil {
		t.Fatal("NewDurableSession re-initialized a directory holding state")
	}
	rec := h.recoverAndResync()
	h.finish(rec, "reuse")
}

// shardedDurableFixture builds a DurableShardedSession plus an unsharded
// twin over clones of one generated database.
type shardedDurableFixture struct {
	t        *testing.T
	rng      *rand.Rand
	schema   *Schema
	queries  []*query.Query
	opts     moo.Options
	dopts    lmfao.DurableOptions
	dir      string
	pristine *data.Database
	twinDB   *data.Database
	twin     *lmfao.Session
	dur      *lmfao.DurableShardedSession
	updates  []lmfao.Update
}

func newShardedDurableFixture(t *testing.T, seed int64, dopts lmfao.DurableOptions) *shardedDurableFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s, err := GenSchema(rng)
	if err != nil {
		t.Fatal(err)
	}
	queries := GenQueries(rng, s)
	pristine, err := cloneDatabase(s.DB)
	if err != nil {
		t.Fatal(err)
	}
	twinDB, err := cloneDatabase(s.DB)
	if err != nil {
		t.Fatal(err)
	}
	opts := moo.Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 1}
	twin, err := lmfao.NewSession(twinDB, queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := twin.Run(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dur, err := lmfao.NewDurableShardedSession(s.DB, queries, opts, lmfao.ShardOptions{Shards: 2}, dopts, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dur.Run(); err != nil {
		t.Fatal(err)
	}
	return &shardedDurableFixture{t: t, rng: rng, schema: s, queries: queries, opts: opts,
		dopts: dopts, dir: dir, pristine: pristine, twinDB: twinDB, twin: twin, dur: dur}
}

func TestDurableShardedKillRecover(t *testing.T) {
	t.Run("cleanclose", func(t *testing.T) {
		f := newShardedDurableFixture(t, 601, lmfao.DurableOptions{CheckpointEvery: 4, SyncEvery: 1})
		for i := 0; i < 15; i++ {
			u := GenDelta(f.rng, f.twinDB, 3)
			f.updates = append(f.updates, u)
			if _, err := f.twin.Apply(u); err != nil {
				t.Fatal(err)
			}
			if _, err := f.dur.Apply(u); err != nil {
				t.Fatal(err)
			}
		}
		requireShardedAgreement(t, "preclose", f.dur.Head(), f.twin, len(f.queries))
		wantVV := f.dur.Head().Versions()
		f.dur.Close()

		// The coordinated checkpoint log records the final merged vector.
		recs, err := lmfao.ReadShardCheckpoints(f.dir)
		if err != nil || len(recs) == 0 {
			t.Fatalf("ReadShardCheckpoints: %d records, err=%v", len(recs), err)
		}
		last := recs[len(recs)-1]
		if len(last.LSNs) != 2 || !last.Vector.Equal(wantVV) {
			t.Fatalf("final checkpoint record %+v does not match pre-close vector %v", last, wantVV)
		}

		rec, err := lmfao.RecoverShardedSession(f.dir, f.pristine, f.queries, f.opts, f.dopts)
		if err != nil {
			t.Fatal(err)
		}
		requireShardedAgreement(t, "recovered", rec.Head(), f.twin, len(f.queries))
		// Keep streaming through both sides after recovery.
		for i := 0; i < 6; i++ {
			u := GenDelta(f.rng, f.twinDB, 3)
			if _, err := f.twin.Apply(u); err != nil {
				t.Fatal(err)
			}
			if _, err := rec.Apply(u); err != nil {
				t.Fatal(err)
			}
		}
		requireShardedAgreement(t, "continued", rec.Head(), f.twin, len(f.queries))
		rec.Close()
		f.twin.Close()
	})

	t.Run("killandtorntail", func(t *testing.T) {
		f := newShardedDurableFixture(t, 602, lmfao.DurableOptions{CheckpointEvery: 64, SyncEvery: 1})
		// Fact-only updates with a constant shard key: every row routes to
		// one shard, so that shard's LSN counts the stream 1:1 and the lost
		// suffix can be re-fed through it after recovery.
		fact := f.schema.DB.Relation(f.dur.FactRelation())
		if fact == nil {
			t.Fatalf("fact relation %q missing", f.dur.FactRelation())
		}
		keyPos := map[int]bool{}
		for ci, a := range fact.Attrs {
			for _, k := range f.dur.ShardKey() {
				if a == k {
					keyPos[ci] = true
				}
			}
		}
		// Every update inserts fresh rows with shard key 1 and sometimes
		// deletes one existing key-1 row, so the whole stream routes to one
		// shard and is never empty: the shard's LSN counts the stream 1:1,
		// which the post-recovery resync relies on.
		gen := func() lmfao.Update {
			rel := f.twinDB.Relation(fact.Name)
			u := lmfao.Update{Relation: rel.Name}
			nIns := 1 + f.rng.Intn(3)
			cols := make([]data.Column, len(rel.Cols))
			for ci, c := range rel.Cols {
				if c.IsInt() {
					vals := make([]int64, nIns)
					for i := range vals {
						if keyPos[ci] {
							vals[i] = 1
						} else {
							vals[i] = int64(f.rng.Intn(8))
						}
					}
					cols[ci] = data.NewIntColumn(vals)
				} else {
					cols[ci] = data.NewFloatColumn(dyadic(f.rng, nIns, 8))
				}
			}
			u.Inserts = cols
			if f.rng.Intn(2) == 0 {
				var cand []int
				for r := 0; r < rel.Len(); r++ {
					ok := true
					for ci := range rel.Cols {
						if keyPos[ci] && rel.Cols[ci].Ints[r] != 1 {
							ok = false
							break
						}
					}
					if ok {
						cand = append(cand, r)
					}
				}
				if len(cand) > 0 {
					r := cand[f.rng.Intn(len(cand))]
					dcols := make([]data.Column, len(rel.Cols))
					for ci, c := range rel.Cols {
						if c.IsInt() {
							dcols[ci] = data.NewIntColumn([]int64{c.Ints[r]})
						} else {
							dcols[ci] = data.NewFloatColumn([]float64{c.Floats[r]})
						}
					}
					u.Deletes = dcols
				}
			}
			return u
		}
		const n = 12
		for i := 0; i < n; i++ {
			u := gen()
			f.updates = append(f.updates, u)
			if _, err := f.twin.Apply(u); err != nil {
				t.Fatal(err)
			}
			if _, err := f.dur.Apply(u); err != nil {
				t.Fatal(err)
			}
		}
		// Find the shard the constant key routes to.
		target := -1
		for i := 0; i < f.dur.NumShards(); i++ {
			if f.dur.Shard(i).LastLSN() > 0 {
				if target >= 0 {
					t.Fatalf("constant-key stream reached shards %d and %d", target, i)
				}
				target = i
			}
		}
		if target < 0 {
			t.Fatal("no shard logged the stream")
		}
		requireShardedAgreement(t, "prekill", f.dur.Head(), f.twin, len(f.queries))
		f.dur.Kill()

		// Tear the tail of the loaded shard's log.
		seg := lastSegment(t, filepath.Join(f.dir, fmt.Sprintf("shard-%d", target)))
		st, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, st.Size()-4); err != nil {
			t.Fatal(err)
		}

		rec, err := lmfao.RecoverShardedSession(f.dir, f.pristine, f.queries, f.opts, f.dopts)
		if err != nil {
			t.Fatal(err)
		}
		applied := rec.Shard(target).LastLSN()
		if applied >= n {
			t.Fatalf("torn tail survived: shard LSN %d of %d", applied, n)
		}
		if rest := f.updates[applied:]; len(rest) > 0 {
			if _, err := rec.Shard(target).Apply(rest...); err != nil {
				t.Fatalf("re-feeding %d lost updates: %v", len(rest), err)
			}
		}
		requireShardedAgreement(t, "recovered", rec.Head(), f.twin, len(f.queries))
		rec.Close()
		f.twin.Close()
	})
}
