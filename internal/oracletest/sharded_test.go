package oracletest

import (
	"fmt"
	"math/rand"
	"testing"

	lmfao "repro"
	"repro/internal/baseline"
	"repro/internal/moo"
)

// Sharded maintenance oracle: the same randomized update stream drives an
// unsharded lmfao.Session and a sharded lmfao.ShardedSession built over a
// clone of the same database, and after every streamed round the merged
// sharded snapshot must agree bit-exactly — every query, every group, every
// column including the hidden tuple counts — with the unsharded session
// (and, periodically, with the brute-force baseline). Generated values are
// dyadic, so per-shard partial sums recombine exactly regardless of shard
// count or summation order; any disagreement is a real partitioning, routing
// or merge bug, not float drift.

// shardedScale returns the streamed round count: the full configuration
// (≥50 Apply rounds, the acceptance target) by default, a lighter one under
// -short for PR CI.
func shardedScale() int {
	if testing.Short() {
		return 12
	}
	return 55
}

// requireShardedAgreement compares every query output of the merged sharded
// snapshot against the unsharded session, all columns (-1: hidden counts
// included), bit-exactly.
func requireShardedAgreement(t *testing.T, label string, sn *lmfao.ShardedSnapshot, single *lmfao.Session, nq int) {
	t.Helper()
	for qi := 0; qi < nq; qi++ {
		merged, err := sn.MergedResult(qi)
		if err != nil {
			t.Fatalf("%s: query %d: %v", label, qi, err)
		}
		got := viewRows(merged, -1)
		want := viewRows(single.Result().Results[qi], -1)
		if err := diffRows(fmt.Sprintf("%s/query %d", label, qi), got, want, Exact); err != nil {
			t.Fatal(err)
		}
	}
}

func TestShardedSessionOracle(t *testing.T) {
	rounds := shardedScale()
	seeds := int64(3)
	if testing.Short() {
		seeds = 1
	}
	for seed := int64(0); seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(900 + seed))
			s, err := GenSchema(rng)
			if err != nil {
				t.Fatal(err)
			}
			queries := GenQueries(rng, s)
			opts := moo.Options{MultiRoot: true, MultiOutput: true, Compiled: true,
				Threads: 1 + int(seed%3), DomainParallelRows: 8, SemiJoin: seed%2 == 0,
				TrackCounts: true, CompiledKernels: seed%2 == 1}

			clone, err := cloneDatabase(s.DB)
			if err != nil {
				t.Fatal(err)
			}
			single, err := lmfao.NewSession(s.DB, queries, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := single.Run(); err != nil {
				t.Fatal(err)
			}
			shards := 2 + int(seed%3)
			// Default fact/key selection: the largest relation, sharded on
			// its first shared discrete attribute.
			sharded, err := lmfao.NewShardedSession(clone, queries, opts, lmfao.ShardOptions{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			defer sharded.Close()
			if _, err := sharded.Run(); err != nil {
				t.Fatal(err)
			}
			requireShardedAgreement(t, "initial", sharded.Head(), single, len(queries))

			applied := 0
			for r := 0; r < rounds; r++ {
				// 1-3 updates per round, fanned through ApplyAsync so the
				// per-shard queues get real batching/coalescing pressure;
				// Wait drains the fan-out before the lockstep comparison.
				nu := 1 + rng.Intn(3)
				var chans []<-chan lmfao.ApplyResult
				for u := 0; u < nu; u++ {
					// Generate from the unsharded database's CURRENT state
					// (deletes sample live rows), then apply to both sides.
					d := GenDelta(rng, s.DB, 6)
					if _, err := single.Apply(d); err != nil {
						t.Fatalf("round %d: unsharded: %v", r, err)
					}
					chans = append(chans, sharded.ApplyAsync(d))
					applied++
				}
				for _, ch := range chans {
					if res := <-ch; res.Err != nil {
						t.Fatalf("round %d: sharded: %v", r, res.Err)
					}
				}
				sharded.Wait()
				requireShardedAgreement(t, fmt.Sprintf("round %d", r), sharded.Head(), single, len(queries))

				if r%10 == 9 {
					// Belt and braces: the merged outputs against a fresh
					// brute-force evaluation of the mutated database.
					base, err := baseline.New(s.DB)
					if err != nil {
						t.Fatal(err)
					}
					want, err := base.Run(queries)
					if err != nil {
						t.Fatal(err)
					}
					sn := sharded.Head()
					for qi, q := range queries {
						merged, err := sn.MergedResult(qi)
						if err != nil {
							t.Fatal(err)
						}
						got := viewRows(merged, q.NumCols())
						if err := diffRows(fmt.Sprintf("round %d baseline/query %s", r, q.Name), got, want[qi].Rows, Exact); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			st := sharded.Stats()
			if st.Rounds == 0 || st.Enqueued == 0 {
				t.Fatalf("fan-out counters never moved: %+v", st)
			}
			t.Logf("verified %d rounds (%d updates) across %d shards: %d shard-updates enqueued, %d applied in %d rounds",
				rounds, applied, shards, st.Enqueued, st.Applied, st.Rounds)
		})
	}
}

// TestShardedSessionOracleFactStream pins the pure fan-out path: a star
// schema with a fact-only update stream, where every update partitions
// across shards and no broadcast ever happens — the configuration the
// sharded bench measures, replayed here for exactness at ≥50 rounds.
func TestShardedSessionOracleFactStream(t *testing.T) {
	rounds := shardedScale()
	rng := rand.New(rand.NewSource(901))
	s, err := genStar(rng, false)
	if err != nil {
		t.Fatal(err)
	}
	queries := GenQueries(rng, s)
	opts := moo.Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 2,
		SemiJoin: true, TrackCounts: true, CompiledKernels: true}
	clone, err := cloneDatabase(s.DB)
	if err != nil {
		t.Fatal(err)
	}
	single, err := lmfao.NewSession(s.DB, queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.Run(); err != nil {
		t.Fatal(err)
	}
	sharded, err := lmfao.NewShardedSession(clone, queries, opts,
		lmfao.ShardOptions{Shards: 4, Relation: "F"})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	if _, err := sharded.Run(); err != nil {
		t.Fatal(err)
	}
	fact := s.DB.Relation("F")
	for r := 0; r < rounds; r++ {
		d := GenDeltaOn(rng, fact, 6)
		if _, err := single.Apply(d); err != nil {
			t.Fatalf("round %d: unsharded: %v", r, err)
		}
		if _, err := sharded.Apply(d); err != nil {
			t.Fatalf("round %d: sharded: %v", r, err)
		}
		requireShardedAgreement(t, fmt.Sprintf("fact round %d", r), sharded.Head(), single, len(queries))
	}
}
