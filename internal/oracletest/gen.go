// Package oracletest is a differential test harness: it generates small
// randomized databases (stars, chains, snowflakes, and cyclic schemas that
// decompose into materialized hypertree bags), query batches and update
// streams, and asserts that every engine configuration (single- and
// multi-threaded, compiled and interpreted, semi-join-restricted and
// full-scan maintenance) agrees with the brute-force baseline, and that
// incremental maintenance (lmfao.Session.Apply) — including dimension-table
// streams and bag-member updates — agrees with full recomputation.
//
// The race-hardened half (concurrent_harness_test.go) verifies snapshot-isolated
// serving: reader goroutines hammer lmfao.Session snapshots while a writer
// streams deltas, and every observed snapshot must be bit-exact with a
// single-threaded baseline replayed to that snapshot's version vector. The
// ML differential half (ml_test.go) checks linreg/chowliu statistics over
// maintained sessions against from-scratch recomputes.
//
// Generated numeric values are small dyadic rationals (k/4) and coefficients
// are small integers, so every aggregate — a sum of products of such values —
// is exactly representable in float64 regardless of summation order. The
// harness can therefore demand bit-exact agreement across engines whose
// floating-point evaluation orders differ.
package oracletest

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
	"repro/internal/query"
)

// Schema carries the generated database plus the attribute pools queries
// draw from.
type Schema struct {
	DB       *data.Database
	Discrete []data.AttrID // group-by / indicator candidates
	Numeric  []data.AttrID // sum / product candidates
}

// dyadic returns n random values of the form k/4 with k in [0, 4*span).
func dyadic(rng *rand.Rand, n, span int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(rng.Intn(4*span)) / 4
	}
	return out
}

func uniformInts(rng *rand.Rand, n, dom int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rng.Intn(dom))
	}
	return out
}

func seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// GenSchema builds one of four randomized shapes: a star (fact plus
// dimension tables), a chain (path join), a snowflake (star with a
// second-level dimension), or a cyclic schema (triangle or 4-ring) whose
// join tree folds relations into a materialized hypertree bag. Every
// attribute pool stays small so randomized deltas collide with existing keys
// often.
func GenSchema(rng *rand.Rand) (*Schema, error) {
	switch rng.Intn(4) {
	case 0:
		return genStar(rng, false)
	case 1:
		return genChain(rng)
	case 2:
		return genStar(rng, true)
	default:
		return genCyclic(rng)
	}
}

func genStar(rng *rand.Rand, snowflake bool) (*Schema, error) {
	db := data.NewDatabase()
	s := &Schema{DB: db}
	dims := 2 + rng.Intn(2)
	dom := 3 + rng.Intn(4)
	factRows := 20 + rng.Intn(60)

	var keys []data.AttrID
	factAttrs := []data.AttrID{}
	factCols := []data.Column{}
	for d := 0; d < dims; d++ {
		k := db.Attr(fmt.Sprintf("k%d", d), data.Key)
		keys = append(keys, k)
		s.Discrete = append(s.Discrete, k)
		factAttrs = append(factAttrs, k)
		factCols = append(factCols, data.NewIntColumn(uniformInts(rng, factRows, dom)))
	}
	m := db.Attr("m", data.Numeric)
	s.Numeric = append(s.Numeric, m)
	factAttrs = append(factAttrs, m)
	factCols = append(factCols, data.NewFloatColumn(dyadic(rng, factRows, 8)))
	if err := db.AddRelation(data.NewRelation("F", factAttrs, factCols)); err != nil {
		return nil, err
	}
	for d := 0; d < dims; d++ {
		c := db.Attr(fmt.Sprintf("c%d", d), data.Categorical)
		p := db.Attr(fmt.Sprintf("p%d", d), data.Numeric)
		s.Discrete = append(s.Discrete, c)
		s.Numeric = append(s.Numeric, p)
		if err := db.AddRelation(data.NewRelation(fmt.Sprintf("D%d", d),
			[]data.AttrID{keys[d], c, p},
			[]data.Column{
				data.NewIntColumn(seq(dom)),
				data.NewIntColumn(uniformInts(rng, dom, 3)),
				data.NewFloatColumn(dyadic(rng, dom, 8)),
			})); err != nil {
			return nil, err
		}
	}
	if snowflake {
		// Second-level dimension hanging off D0's category attribute.
		deep := db.Attr("deep", data.Key)
		dp := db.Attr("deep_p", data.Numeric)
		s.Discrete = append(s.Discrete, deep)
		s.Numeric = append(s.Numeric, dp)
		if err := db.AddRelation(data.NewRelation("Deep",
			[]data.AttrID{s.Discrete[dims], deep, dp}, // c0
			[]data.Column{
				data.NewIntColumn(seq(3)),
				data.NewIntColumn(uniformInts(rng, 3, 4)),
				data.NewFloatColumn(dyadic(rng, 3, 8)),
			})); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// genCyclic builds a ring of 3 (triangle) or 4 relations over join keys
// a0..a{n-1}, each with a numeric attribute. Rings are cyclic, so
// jointree.Build folds overlapping relations into a materialized hypertree
// bag (two members for the triangle, three for the 4-ring) — the schema
// shape that exercises bag-member delta maintenance. A dangling dimension
// off a0 keeps part of the tree outside the bag.
func genCyclic(rng *rand.Rand) (*Schema, error) {
	db := data.NewDatabase()
	s := &Schema{DB: db}
	ring := 3 + rng.Intn(2)
	dom := 3 + rng.Intn(2)
	var keys []data.AttrID
	for i := 0; i < ring; i++ {
		k := db.Attr(fmt.Sprintf("a%d", i), data.Key)
		keys = append(keys, k)
		s.Discrete = append(s.Discrete, k)
	}
	for i := 0; i < ring; i++ {
		rows := 12 + rng.Intn(16)
		x := db.Attr(fmt.Sprintf("x%d", i), data.Numeric)
		s.Numeric = append(s.Numeric, x)
		if err := db.AddRelation(data.NewRelation(fmt.Sprintf("C%d", i),
			[]data.AttrID{keys[i], keys[(i+1)%ring], x},
			[]data.Column{
				data.NewIntColumn(uniformInts(rng, rows, dom)),
				data.NewIntColumn(uniformInts(rng, rows, dom)),
				data.NewFloatColumn(dyadic(rng, rows, 8)),
			})); err != nil {
			return nil, err
		}
	}
	// Dangling dimension joined on a0: a tree node outside the bag.
	tc := db.Attr("tc", data.Categorical)
	tp := db.Attr("tp", data.Numeric)
	s.Discrete = append(s.Discrete, tc)
	s.Numeric = append(s.Numeric, tp)
	if err := db.AddRelation(data.NewRelation("TDim",
		[]data.AttrID{keys[0], tc, tp},
		[]data.Column{
			data.NewIntColumn(seq(dom)),
			data.NewIntColumn(uniformInts(rng, dom, 3)),
			data.NewFloatColumn(dyadic(rng, dom, 8)),
		})); err != nil {
		return nil, err
	}
	return s, nil
}

func genChain(rng *rand.Rand) (*Schema, error) {
	db := data.NewDatabase()
	s := &Schema{DB: db}
	links := 3 + rng.Intn(2)
	dom := 3 + rng.Intn(3)
	var joins []data.AttrID
	for i := 0; i <= links; i++ {
		joins = append(joins, db.Attr(fmt.Sprintf("j%d", i), data.Key))
		s.Discrete = append(s.Discrete, joins[i])
	}
	for i := 0; i < links; i++ {
		rows := 8 + rng.Intn(25)
		v := db.Attr(fmt.Sprintf("v%d", i), data.Numeric)
		s.Numeric = append(s.Numeric, v)
		if err := db.AddRelation(data.NewRelation(fmt.Sprintf("R%d", i),
			[]data.AttrID{joins[i], joins[i+1], v},
			[]data.Column{
				data.NewIntColumn(uniformInts(rng, rows, dom)),
				data.NewIntColumn(uniformInts(rng, rows, dom)),
				data.NewFloatColumn(dyadic(rng, rows, 8)),
			})); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// GenQueries builds a random batch of 2–5 queries over the schema: scalar
// and grouped, counts, sums, sums of products, powers, indicator and
// set-membership factors — all with exactly representable arithmetic —
// plus randomly mixed-in monoid aggregates (MIN/MAX, COUNT DISTINCT, top-k
// per group), occasionally as a pure-monoid query with no sum aggregates
// (the planner's hidden placeholder-count path).
func GenQueries(rng *rand.Rand, s *Schema) []*query.Query {
	n := 2 + rng.Intn(4)
	out := make([]*query.Query, n)
	for qi := range out {
		var groupBy []data.AttrID
		for _, a := range s.Discrete {
			if rng.Intn(4) == 0 && len(groupBy) < 2 {
				groupBy = append(groupBy, a)
			}
		}
		mons := genMonoidAggs(rng, s)
		na := 1 + rng.Intn(3)
		if len(mons) > 0 && rng.Intn(4) == 0 {
			na = 0
		}
		aggs := make([]query.Aggregate, na)
		for ai := range aggs {
			aggs[ai] = genAggregate(rng, s, fmt.Sprintf("a%d", ai))
		}
		q := query.NewQuery(fmt.Sprintf("q%d", qi), groupBy, aggs...)
		q.MonoidAggs = mons
		out[qi] = q
	}
	return out
}

// genMonoidAggs draws 0–2 monoid aggregates over discrete attributes.
func genMonoidAggs(rng *rand.Rand, s *Schema) []query.MonoidAgg {
	n := rng.Intn(3)
	out := make([]query.MonoidAgg, 0, n)
	for i := 0; i < n; i++ {
		a := s.Discrete[rng.Intn(len(s.Discrete))]
		switch rng.Intn(4) {
		case 0:
			out = append(out, query.MinOf(a))
		case 1:
			out = append(out, query.MaxOf(a))
		case 2:
			out = append(out, query.DistinctOf(a))
		default:
			out = append(out, query.TopKOf(a, 1+rng.Intn(3)))
		}
	}
	return out
}

func genAggregate(rng *rand.Rand, s *Schema, name string) query.Aggregate {
	nt := 1 + rng.Intn(2)
	terms := make([]query.Term, nt)
	for ti := range terms {
		nf := rng.Intn(3)
		var fs []query.Factor
		for fi := 0; fi < nf; fi++ {
			fs = append(fs, genFactor(rng, s))
		}
		t := query.NewTerm(fs...)
		t.Coef = float64(1 + rng.Intn(3))
		if rng.Intn(4) == 0 {
			t.Coef = -t.Coef
		}
		terms[ti] = t
	}
	return query.NewAggregate(name, terms...)
}

func genFactor(rng *rand.Rand, s *Schema) query.Factor {
	switch rng.Intn(5) {
	case 0:
		return query.IdentF(s.Numeric[rng.Intn(len(s.Numeric))])
	case 1:
		return query.PowF(s.Numeric[rng.Intn(len(s.Numeric))], 2+rng.Intn(2))
	case 2:
		ops := []query.CmpOp{query.LE, query.LT, query.GE, query.GT, query.EQ, query.NE}
		return query.IndicatorF(s.Numeric[rng.Intn(len(s.Numeric))],
			ops[rng.Intn(len(ops))], float64(rng.Intn(16))/4)
	case 3:
		set := make([]int64, 1+rng.Intn(3))
		for i := range set {
			set[i] = int64(rng.Intn(6))
		}
		return query.InSetF(s.Discrete[rng.Intn(len(s.Discrete))], set)
	default:
		return query.IdentF(s.Numeric[rng.Intn(len(s.Numeric))])
	}
}

// GenDelta builds a randomized update against one random relation of db: up
// to maxRows inserted tuples (keys drawn from small domains so they hit
// existing join partners) and up to maxRows deletions of existing tuples.
func GenDelta(rng *rand.Rand, db *data.Database, maxRows int) data.Delta {
	rels := db.Relations()
	return GenDeltaOn(rng, rels[rng.Intn(len(rels))], maxRows)
}

// GenDeltaOn is GenDelta against a specific relation — e.g. a dimension
// table, to exercise the semi-join-restricted maintenance path.
func GenDeltaOn(rng *rand.Rand, rel *data.Relation, maxRows int) data.Delta {
	d := data.Delta{Relation: rel.Name}

	nIns := rng.Intn(maxRows + 1)
	if nIns > 0 {
		cols := make([]data.Column, len(rel.Cols))
		for ci, c := range rel.Cols {
			if c.IsInt() {
				// Mix of existing values and fresh small keys.
				vals := make([]int64, nIns)
				for i := range vals {
					if len(c.Ints) > 0 && rng.Intn(2) == 0 {
						vals[i] = c.Ints[rng.Intn(len(c.Ints))]
					} else {
						vals[i] = int64(rng.Intn(8))
					}
				}
				cols[ci] = data.NewIntColumn(vals)
			} else {
				cols[ci] = data.NewFloatColumn(dyadic(rng, nIns, 8))
			}
		}
		d.Inserts = cols
	}

	nDel := rng.Intn(maxRows + 1)
	if nDel > rel.Len() {
		nDel = rel.Len()
	}
	if nDel > 0 {
		idx := rng.Perm(rel.Len())[:nDel]
		cols := make([]data.Column, len(rel.Cols))
		for ci, c := range rel.Cols {
			if c.IsInt() {
				vals := make([]int64, nDel)
				for i, r := range idx {
					vals[i] = c.Ints[r]
				}
				cols[ci] = data.NewIntColumn(vals)
			} else {
				vals := make([]float64, nDel)
				for i, r := range idx {
					vals[i] = c.Floats[r]
				}
				cols[ci] = data.NewFloatColumn(vals)
			}
		}
		d.Deletes = cols
	}
	return d
}
