package oracletest

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/moo"
	"repro/internal/query"
)

// Favorita monoid-aggregate oracle: the generated Favorita star (Sales fact
// joined with Items, Stores, Oil, Holidays, Transactions) runs a batch that
// mixes sum-semiring aggregates with MIN/MAX, COUNT DISTINCT and top-k under
// a randomized insert+delete stream, checked after every Apply against the
// brute-force baseline and a from-scratch recompute of the full view DAG.
// Sum columns drift under reordered real-valued addition (Approx); the
// monoid columns are integer-derived, so any disagreement there within the
// tolerance is still a real maintenance bug.

// favoritaMonoidQueries builds the measured batch over Favorita's schema:
// per-family MIN/MAX item alongside live sum aggregates, distinct item
// classes per city, top-3 stores per holiday type (pure monoid: exercises
// the hidden placeholder count), and a scalar query folding the whole join.
func favoritaMonoidQueries(ds *datagen.Dataset) []*query.Query {
	family, city, htype := ds.CubeDims[0], ds.CubeDims[1], ds.CubeDims[2]
	store, item := ds.JoinKeys[1], ds.JoinKeys[2]
	class := ds.Categorical[1]

	mmx := query.NewQuery("family_minmax", []data.AttrID{family},
		query.CountAgg(), query.SumAgg(ds.CubeMeasures[0]))
	mmx.MonoidAggs = []query.MonoidAgg{query.MinOf(item), query.MaxOf(item)}

	dst := query.NewQuery("city_distinct", []data.AttrID{city}, query.CountAgg())
	dst.MonoidAggs = []query.MonoidAgg{query.DistinctOf(class)}

	top := query.NewQuery("holiday_top3", []data.AttrID{htype})
	top.MonoidAggs = []query.MonoidAgg{query.TopKOf(store, 3)}

	all := query.NewQuery("global", nil, query.CountAgg())
	all.MonoidAggs = []query.MonoidAgg{query.MaxOf(item), query.DistinctOf(family)}

	return []*query.Query{mmx, dst, top, all}
}

// TestFavoritaMonoidOracle runs the Favorita monoid workload through the
// maintenance oracle: a reduced stream under -short for the PR-fast CI pass,
// the full configuration (larger dataset, 10 Apply rounds, bigger deltas) in
// the dedicated race job.
func TestFavoritaMonoidOracle(t *testing.T) {
	scale, steps, maxRows := 0.0, 3, 12
	if !testing.Short() {
		scale, steps, maxRows = 0.0002, 10, 32
	}
	build, err := datagen.ByName("favorita")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := build(datagen.Config{Scale: scale, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	opts := moo.DefaultOptions()
	opts.Threads = 2
	opts.TrackCounts = true
	sessionSteps(t, rng, ds.DB, favoritaMonoidQueries(ds), opts, steps, maxRows, Approx)
}
