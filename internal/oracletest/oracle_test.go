package oracletest

import (
	"fmt"
	"math/rand"
	"testing"

	lmfao "repro"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/moo"
	"repro/internal/query"
)

// TestBatchOracle cross-checks every engine variant against the baseline on
// randomized schemas and query batches, demanding bit-exact agreement.
func TestBatchOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s, err := GenSchema(rng)
			if err != nil {
				t.Fatal(err)
			}
			queries := GenQueries(rng, s)
			if err := CheckBatch(s.DB, queries, Exact); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// sessionSteps runs a maintenance session over the database: after each
// randomized update batch it checks the maintained result against the
// baseline and against a from-scratch recompute of the full view DAG.
func sessionSteps(t *testing.T, rng *rand.Rand, db *lmfao.Database, queries []*query.Query, opts moo.Options, steps, maxRows int, tol Tolerance) {
	t.Helper()
	sess, err := lmfao.NewSession(db, queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < steps; step++ {
		d := GenDelta(rng, db, maxRows)
		stats, err := sess.Apply(d)
		if err != nil {
			t.Fatalf("step %d (%s +%d -%d): %v", step, d.Relation, d.InsertRows(), d.DeleteRows(), err)
		}
		for _, st := range stats {
			if !st.Incremental {
				t.Logf("step %d: fell back to full recompute for %s", step, st.Relation)
			}
		}
		if err := CheckMaintained(sess.Engine(), sess.Result(), queries, tol); err != nil {
			t.Fatalf("step %d (%s +%d -%d): %v", step, d.Relation, d.InsertRows(), d.DeleteRows(), err)
		}
	}
}

// TestIVMSynthetic exercises incremental maintenance on randomized synthetic
// schemas with bit-exact comparison.
func TestIVMSynthetic(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(100 + seed))
			s, err := GenSchema(rng)
			if err != nil {
				t.Fatal(err)
			}
			queries := GenQueries(rng, s)
			opts := moo.Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 1,
				SemiJoin: seed%2 == 0, CompiledKernels: seed%3 != 1}
			if seed%2 == 1 {
				opts.Threads = 3
				opts.DomainParallelRows = 4
			}
			sessionSteps(t, rng, s.DB, queries, opts, 5, 12, Exact)
		})
	}
}

// datasetQueries builds a modest mixed batch (scalar count, grouped sums)
// over a generated paper dataset.
func datasetQueries(ds *datagen.Dataset) []*query.Query {
	qs := []*query.Query{
		query.NewQuery("count", nil, query.CountAgg()),
		query.NewQuery("sum", nil, query.SumAgg(ds.CubeMeasures[0])),
	}
	qs = append(qs, query.NewQuery("cube1", ds.CubeDims[:1],
		query.CountAgg(), query.SumAgg(ds.CubeMeasures[0])))
	qs = append(qs, query.NewQuery("cube2", ds.CubeDims[:2],
		query.SumAgg(ds.CubeMeasures[1])))
	return qs
}

// testIVMDataset runs the maintenance oracle over a generated paper dataset.
// Real-valued data means reordered float sums drift, so comparison is
// tolerance-based.
func testIVMDataset(t *testing.T, name string) {
	build, err := datagen.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := build(datagen.Config{Scale: 0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	opts := moo.DefaultOptions()
	opts.Threads = 2
	sessionSteps(t, rng, ds.DB, datasetQueries(ds), opts, 4, 20, Approx)
}

func TestIVMRetailer(t *testing.T) { testIVMDataset(t, "retailer") }

func TestIVMFavorita(t *testing.T) { testIVMDataset(t, "favorita") }

// TestIVMSemiJoinDimensionStream drives dimension-table-only update streams
// through semi-join-restricted maintenance on star/snowflake schemas,
// demanding bit-exact agreement with the baseline and the full recompute,
// and asserting the restriction actually fires. Even seeds run the compiled
// maintenance kernels, whose restricted scans must go through the
// row-id-batched path (IDScanGroups) whenever the restriction applies.
func TestIVMSemiJoinDimensionStream(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(200 + seed))
			s, err := genStar(rng, seed%2 == 1)
			if err != nil {
				t.Fatal(err)
			}
			queries := GenQueries(rng, s)
			opts := moo.Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 1,
				SemiJoin: true, CompiledKernels: seed%2 == 0}
			sess, err := lmfao.NewSession(s.DB, queries, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Run(); err != nil {
				t.Fatal(err)
			}
			var dims []*data.Relation
			for _, r := range s.DB.Relations() {
				if r.Name != "F" {
					dims = append(dims, r)
				}
			}
			semiSeen, idScanSeen := false, false
			for step := 0; step < 8; step++ {
				d := GenDeltaOn(rng, dims[rng.Intn(len(dims))], 10)
				stats, err := sess.Apply(d)
				if err != nil {
					t.Fatalf("step %d (%s): %v", step, d.Relation, err)
				}
				for _, st := range stats {
					if !st.Incremental {
						t.Fatalf("step %d: fell back to full recompute for %s", step, st.Relation)
					}
					if st.SemiJoinGroups > 0 {
						semiSeen = true
						if st.ScannedRows > st.BaseRows {
							t.Fatalf("step %d: scanned %d > base %d", step, st.ScannedRows, st.BaseRows)
						}
					}
					if st.IDScanGroups > 0 {
						idScanSeen = true
						if !opts.CompiledKernels {
							t.Fatalf("step %d: id-batched scans reported with kernels off", step)
						}
						if st.IDScanGroups > st.KernelGroups {
							t.Fatalf("step %d: %d id scans exceed %d kernel groups",
								step, st.IDScanGroups, st.KernelGroups)
						}
					}
					if opts.CompiledKernels && st.SemiJoinGroups != st.IDScanGroups {
						t.Fatalf("step %d: %d restricted kernel scans but %d id-batched",
							step, st.SemiJoinGroups, st.IDScanGroups)
					}
				}
				if err := CheckMaintained(sess.Engine(), sess.Result(), queries, Exact); err != nil {
					t.Fatalf("step %d (%s +%d -%d): %v", step, d.Relation, d.InsertRows(), d.DeleteRows(), err)
				}
			}
			if !semiSeen {
				t.Error("semi-join restriction never fired across the stream")
			}
			if opts.CompiledKernels && !idScanSeen {
				t.Error("row-id-batched restricted scan never fired with kernels on")
			}
			if opts.CompiledKernels {
				if cs := sess.Engine().KernelCacheStats(); cs.Size == 0 || cs.Hits == 0 {
					t.Errorf("kernel cache never reused a kernel: %+v", cs)
				}
			}
		})
	}
}

// TestIVMSemiJoinOnOffParity maintains the same schema and update stream
// twice — semi-join restriction on and off — and demands the two sessions
// end bit-identical (the restriction drops only non-contributing rows, so
// even float accumulation order is preserved).
func TestIVMSemiJoinOnOffParity(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			build := func(semi bool) (*lmfao.Session, []*query.Query, *rand.Rand) {
				rng := rand.New(rand.NewSource(400 + seed))
				s, err := GenSchema(rng)
				if err != nil {
					t.Fatal(err)
				}
				queries := GenQueries(rng, s)
				opts := moo.Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 1,
					SemiJoin: semi, CompiledKernels: seed%2 == 0}
				sess, err := lmfao.NewSession(s.DB, queries, opts)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sess.Run(); err != nil {
					t.Fatal(err)
				}
				return sess, queries, rng
			}
			on, queries, rngOn := build(true)
			off, _, rngOff := build(false)
			for step := 0; step < 5; step++ {
				dOn := GenDelta(rngOn, on.Engine().DB(), 10)
				dOff := GenDelta(rngOff, off.Engine().DB(), 10)
				if dOn.Relation != dOff.Relation {
					t.Fatalf("step %d: streams diverged (%s vs %s)", step, dOn.Relation, dOff.Relation)
				}
				if _, err := on.Apply(dOn); err != nil {
					t.Fatalf("step %d on: %v", step, err)
				}
				if _, err := off.Apply(dOff); err != nil {
					t.Fatalf("step %d off: %v", step, err)
				}
			}
			for qi := range queries {
				got := viewRows(on.Result().Results[qi], -1)
				want := viewRows(off.Result().Results[qi], -1)
				if err := diffRows(fmt.Sprintf("query %d", qi), got, want, Exact); err != nil {
					t.Fatal(err)
				}
			}
			if err := CheckMaintained(on.Engine(), on.Result(), queries, Exact); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestIVMKernelOnOffParity maintains the same schema and update stream twice —
// compiled maintenance kernels on and off — and demands the two sessions end
// bit-identical across every output view, hidden tuple-count columns included.
// Single-threaded, both modes visit rows in the same stably-sorted order (the
// kernel path sorts row ids where the interpreted path sorts a gathered copy),
// so even float accumulation order matches bit for bit. Kernels must actually
// fire (KernelGroups) and be reused across steps (cache hits).
func TestIVMKernelOnOffParity(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			build := func(kernels bool) (*lmfao.Session, []*query.Query, *rand.Rand) {
				rng := rand.New(rand.NewSource(600 + seed))
				s, err := GenSchema(rng)
				if err != nil {
					t.Fatal(err)
				}
				queries := GenQueries(rng, s)
				opts := moo.Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 1,
					SemiJoin: seed%2 == 0, CompiledKernels: kernels}
				sess, err := lmfao.NewSession(s.DB, queries, opts)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sess.Run(); err != nil {
					t.Fatal(err)
				}
				return sess, queries, rng
			}
			on, queries, rngOn := build(true)
			off, _, rngOff := build(false)
			kernelSeen := false
			for step := 0; step < 5; step++ {
				dOn := GenDelta(rngOn, on.Engine().DB(), 10)
				dOff := GenDelta(rngOff, off.Engine().DB(), 10)
				if dOn.Relation != dOff.Relation {
					t.Fatalf("step %d: streams diverged (%s vs %s)", step, dOn.Relation, dOff.Relation)
				}
				statsOn, err := on.Apply(dOn)
				if err != nil {
					t.Fatalf("step %d on: %v", step, err)
				}
				statsOff, err := off.Apply(dOff)
				if err != nil {
					t.Fatalf("step %d off: %v", step, err)
				}
				for _, st := range statsOn {
					if st.Incremental && st.KernelGroups == 0 && st.SemiJoinGroups+st.FullScanGroups > 0 {
						t.Fatalf("step %d: incremental maintenance for %s bypassed the kernels", step, st.Relation)
					}
					if st.KernelGroups > 0 {
						kernelSeen = true
					}
				}
				for _, st := range statsOff {
					if st.KernelGroups > 0 || st.IDScanGroups > 0 {
						t.Fatalf("step %d: kernel stats reported with kernels off: %+v", step, st)
					}
				}
			}
			if !kernelSeen {
				t.Error("compiled kernels never fired across the stream")
			}
			if cs := on.Engine().KernelCacheStats(); cs.Size == 0 || cs.Hits == 0 {
				t.Errorf("kernel cache never reused a kernel: %+v", cs)
			}
			if cs := off.Engine().KernelCacheStats(); cs.Size != 0 {
				t.Errorf("kernels-off session populated the kernel cache: %+v", cs)
			}
			for qi := range queries {
				got := viewRows(on.Result().Results[qi], -1)
				want := viewRows(off.Result().Results[qi], -1)
				if err := diffRows(fmt.Sprintf("query %d", qi), got, want, Exact); err != nil {
					t.Fatal(err)
				}
			}
			if err := CheckMaintained(on.Engine(), on.Result(), queries, Exact); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestIVMBagPreRunMutation mutates a bag member through a session BEFORE its
// first Run: the materialized bag (built at session creation) must be synced
// even though there is no cached result to maintain, or the deferred first
// Run silently serves the stale bag.
func TestIVMBagPreRunMutation(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(500 + seed))
			s, err := genCyclic(rng)
			if err != nil {
				t.Fatal(err)
			}
			queries := GenQueries(rng, s)
			opts := moo.Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 1,
				SemiJoin: true, CompiledKernels: seed%2 == 1}
			sess, err := lmfao.NewSession(s.DB, queries, opts)
			if err != nil {
				t.Fatal(err)
			}
			var member *data.Relation
			for _, n := range sess.Engine().Tree().Nodes {
				if n.IsBag() {
					member = s.DB.Relation(n.Members[0])
					break
				}
			}
			if member == nil {
				t.Fatal("cyclic schema produced no bag")
			}
			d := GenDeltaOn(rng, member, 6)
			for d.Empty() {
				d = GenDeltaOn(rng, member, 6)
			}
			// No Run yet: Apply mutates the base, syncs the bag, and runs the
			// deferred first compute.
			if _, err := sess.Apply(d); err != nil {
				t.Fatalf("pre-Run apply (%s +%d -%d): %v", d.Relation, d.InsertRows(), d.DeleteRows(), err)
			}
			if err := CheckMaintained(sess.Engine(), sess.Result(), queries, Exact); err != nil {
				t.Fatalf("after pre-Run apply (%s +%d -%d): %v", d.Relation, d.InsertRows(), d.DeleteRows(), err)
			}
		})
	}
}

// TestIVMBagUpdateStream drives update streams through cyclic schemas whose
// join trees fold relations into materialized hypertree bags: bag-member
// updates must be maintained incrementally (no full-recompute fallback),
// reported via ApplyStats.Bag, and stay bit-exact against the baseline and a
// fresh recompute (which also proves the bag relation is kept in sync).
func TestIVMBagUpdateStream(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(300 + seed))
			s, err := genCyclic(rng)
			if err != nil {
				t.Fatal(err)
			}
			queries := GenQueries(rng, s)
			opts := moo.Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 1,
				SemiJoin: seed%2 == 0, CompiledKernels: seed%2 == 1}
			if seed%3 == 2 {
				opts.Threads = 3
				opts.DomainParallelRows = 4
			}
			sess, err := lmfao.NewSession(s.DB, queries, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Run(); err != nil {
				t.Fatal(err)
			}
			tree := sess.Engine().Tree()
			var bagMembers []*data.Relation
			for _, n := range tree.Nodes {
				if n.IsBag() {
					for _, m := range n.Members {
						bagMembers = append(bagMembers, s.DB.Relation(m))
					}
				}
			}
			if len(bagMembers) < 2 {
				t.Fatalf("cyclic schema produced no bag; tree:\n%s", tree)
			}
			bagSeen := false
			for step := 0; step < 6; step++ {
				var d data.Delta
				if step%2 == 0 {
					d = GenDeltaOn(rng, bagMembers[rng.Intn(len(bagMembers))], 8)
				} else {
					d = GenDelta(rng, s.DB, 8)
				}
				stats, err := sess.Apply(d)
				if err != nil {
					t.Fatalf("step %d (%s +%d -%d): %v", step, d.Relation, d.InsertRows(), d.DeleteRows(), err)
				}
				folded := tree.NodeByRelation(d.Relation) == nil
				for _, st := range stats {
					if !st.Incremental {
						t.Fatalf("step %d: bag-member update for %s fell back to full recompute", step, st.Relation)
					}
					if folded && st.Bag == "" {
						t.Fatalf("step %d: folded member %s maintained without Bag stat", step, d.Relation)
					}
					if st.Bag != "" {
						bagSeen = true
					}
				}
				if err := CheckMaintained(sess.Engine(), sess.Result(), queries, Exact); err != nil {
					t.Fatalf("step %d (%s +%d -%d): %v", step, d.Relation, d.InsertRows(), d.DeleteRows(), err)
				}
			}
			if !bagSeen {
				t.Error("no bag-member update exercised")
			}
		})
	}
}
