package oracletest

import (
	"fmt"
	"math/rand"
	"testing"

	lmfao "repro"
	"repro/internal/datagen"
	"repro/internal/moo"
	"repro/internal/query"
)

// TestBatchOracle cross-checks every engine variant against the baseline on
// randomized schemas and query batches, demanding bit-exact agreement.
func TestBatchOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s, err := GenSchema(rng)
			if err != nil {
				t.Fatal(err)
			}
			queries := GenQueries(rng, s)
			if err := CheckBatch(s.DB, queries, Exact); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// sessionSteps runs a maintenance session over the database: after each
// randomized update batch it checks the maintained result against the
// baseline and against a from-scratch recompute of the full view DAG.
func sessionSteps(t *testing.T, rng *rand.Rand, db *lmfao.Database, queries []*query.Query, opts moo.Options, steps, maxRows int, tol Tolerance) {
	t.Helper()
	sess, err := lmfao.NewSession(db, queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < steps; step++ {
		d := GenDelta(rng, db, maxRows)
		stats, err := sess.Apply(d)
		if err != nil {
			t.Fatalf("step %d (%s +%d -%d): %v", step, d.Relation, d.InsertRows(), d.DeleteRows(), err)
		}
		for _, st := range stats {
			if !st.Incremental {
				t.Logf("step %d: fell back to full recompute for %s", step, st.Relation)
			}
		}
		if err := CheckMaintained(sess.Engine(), sess.Result(), queries, tol); err != nil {
			t.Fatalf("step %d (%s +%d -%d): %v", step, d.Relation, d.InsertRows(), d.DeleteRows(), err)
		}
	}
}

// TestIVMSynthetic exercises incremental maintenance on randomized synthetic
// schemas with bit-exact comparison.
func TestIVMSynthetic(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(100 + seed))
			s, err := GenSchema(rng)
			if err != nil {
				t.Fatal(err)
			}
			queries := GenQueries(rng, s)
			opts := moo.Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 1}
			if seed%2 == 1 {
				opts.Threads = 3
				opts.DomainParallelRows = 4
			}
			sessionSteps(t, rng, s.DB, queries, opts, 5, 12, Exact)
		})
	}
}

// datasetQueries builds a modest mixed batch (scalar count, grouped sums)
// over a generated paper dataset.
func datasetQueries(ds *datagen.Dataset) []*query.Query {
	qs := []*query.Query{
		query.NewQuery("count", nil, query.CountAgg()),
		query.NewQuery("sum", nil, query.SumAgg(ds.CubeMeasures[0])),
	}
	qs = append(qs, query.NewQuery("cube1", ds.CubeDims[:1],
		query.CountAgg(), query.SumAgg(ds.CubeMeasures[0])))
	qs = append(qs, query.NewQuery("cube2", ds.CubeDims[:2],
		query.SumAgg(ds.CubeMeasures[1])))
	return qs
}

// testIVMDataset runs the maintenance oracle over a generated paper dataset.
// Real-valued data means reordered float sums drift, so comparison is
// tolerance-based.
func testIVMDataset(t *testing.T, name string) {
	build, err := datagen.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := build(datagen.Config{Scale: 0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	opts := moo.DefaultOptions()
	opts.Threads = 2
	sessionSteps(t, rng, ds.DB, datasetQueries(ds), opts, 4, 20, Approx)
}

func TestIVMRetailer(t *testing.T) { testIVMDataset(t, "retailer") }

func TestIVMFavorita(t *testing.T) { testIVMDataset(t, "favorita") }
