package oracletest

import (
	"fmt"
	"math/rand"
	"testing"

	lmfao "repro"
	"repro/internal/ml/chowliu"
	"repro/internal/ml/linreg"
	"repro/internal/moo"
)

// Differential coverage for the ML applications over maintained sessions:
// the application-layer statistics (linreg's covar matrix, chowliu's
// mutual-information matrix) assembled from an incrementally maintained
// session must match the same statistics recomputed from scratch on the
// mutated database. Comparison is tolerance-based (Tolerance.Approx):
// the assembly and MI evaluation reorder float sums and apply logs, so
// bit-exactness is not guaranteed even on dyadic base data.

// freshOpts is the recompute engine configuration: single-threaded, so the
// from-scratch reference is deterministic.
var freshOpts = moo.Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 1}

// covarByName flattens a covar matrix into feature-name-keyed entries; the
// maintained and fresh assemblies may discover one-hot categories in
// different row orders, so positional comparison would be spurious.
func covarByName(cm *linreg.CovarMatrix) map[string]float64 {
	out := make(map[string]float64, len(cm.Features)*len(cm.Features))
	for i, fi := range cm.Features {
		for j, fj := range cm.Features {
			out[fi.Name+"|"+fj.Name] = cm.Sigma.At(i, j)
		}
	}
	return out
}

func diffCovar(label string, got, want *linreg.CovarMatrix, tol Tolerance) error {
	if !tol.equal(got.Count, want.Count) {
		return fmt.Errorf("%s: count %v, want %v", label, got.Count, want.Count)
	}
	g, w := covarByName(got), covarByName(want)
	if len(g) != len(w) {
		return fmt.Errorf("%s: %d sigma entries, want %d (feature sets differ)", label, len(g), len(w))
	}
	for k, wv := range w {
		gv, ok := g[k]
		if !ok {
			return fmt.Errorf("%s: feature pair %s missing from maintained covar", label, k)
		}
		if !tol.equal(gv, wv) {
			return fmt.Errorf("%s: sigma[%s] = %v, want %v", label, k, gv, wv)
		}
	}
	return nil
}

// TestMLLinRegMaintained streams updates through a session serving the
// covar-matrix batch and checks the assembled matrix against a from-scratch
// recompute after every round.
func TestMLLinRegMaintained(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(900 + seed))
			s, err := GenSchema(rng)
			if err != nil {
				t.Fatal(err)
			}
			spec := linreg.FeatureSpec{
				Continuous:  s.Numeric[:1],
				Categorical: s.Discrete[:1],
				Label:       s.Numeric[len(s.Numeric)-1],
				Lambda:      0.5,
			}
			batch := linreg.CovarBatch(spec)
			opts := moo.Options{MultiRoot: true, MultiOutput: true, Compiled: true,
				Threads: 1 + int(seed%2), DomainParallelRows: 8, SemiJoin: seed%2 == 0}
			sess, err := lmfao.NewSession(s.DB, batch, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Run(); err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 4; step++ {
				d := GenDelta(rng, s.DB, 10)
				if _, err := sess.Apply(d); err != nil {
					t.Fatalf("step %d (%s): %v", step, d.Relation, err)
				}
				maintained, err := linreg.AssembleCovar(s.DB, spec, batch, sess.Result().Results)
				if err != nil {
					t.Fatalf("step %d: assembling maintained covar: %v", step, err)
				}
				eng, err := moo.NewEngine(s.DB, freshOpts)
				if err != nil {
					t.Fatal(err)
				}
				fresh, _, err := linreg.BuildCovar(eng, spec)
				if err != nil {
					t.Fatalf("step %d: recomputing covar: %v", step, err)
				}
				if err := diffCovar(fmt.Sprintf("step %d", step), maintained, fresh, Approx); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestMLChowLiuMaintained does the same for the mutual-information batch:
// the MI matrix over a maintained session must track the recomputed one.
func TestMLChowLiuMaintained(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(950 + seed))
			s, err := GenSchema(rng)
			if err != nil {
				t.Fatal(err)
			}
			nAttrs := 2 + int(seed%2)
			if nAttrs > len(s.Discrete) {
				nAttrs = len(s.Discrete)
			}
			attrs := s.Discrete[:nAttrs]
			batch := chowliu.MIBatch(attrs)
			opts := moo.Options{MultiRoot: true, MultiOutput: true, Compiled: true,
				Threads: 1 + int(seed%3), DomainParallelRows: 8, SemiJoin: seed%2 == 1}
			sess, err := lmfao.NewSession(s.DB, batch, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Run(); err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 4; step++ {
				d := GenDelta(rng, s.DB, 10)
				if _, err := sess.Apply(d); err != nil {
					t.Fatalf("step %d (%s): %v", step, d.Relation, err)
				}
				maintained, err := chowliu.Assemble(attrs, sess.Result().Results)
				if err != nil {
					t.Fatalf("step %d: assembling maintained MI: %v", step, err)
				}
				eng, err := moo.NewEngine(s.DB, freshOpts)
				if err != nil {
					t.Fatal(err)
				}
				fresh, _, err := chowliu.Compute(eng, attrs)
				if err != nil {
					t.Fatalf("step %d: recomputing MI: %v", step, err)
				}
				if !Approx.equal(maintained.Total, fresh.Total) {
					t.Fatalf("step %d: total %v, want %v", step, maintained.Total, fresh.Total)
				}
				for i := range attrs {
					for j := range attrs {
						if g, w := maintained.MI.At(i, j), fresh.MI.At(i, j); !Approx.equal(g, w) {
							t.Fatalf("step %d: MI[%d][%d] = %v, want %v", step, i, j, g, w)
						}
					}
				}
			}
		})
	}
}
