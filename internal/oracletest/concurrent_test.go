package oracletest

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/moo"
)

// concurrentScale returns the reader/round counts for the concurrent oracle:
// the full configuration (the race job's target: ≥4 readers, ≥50 streamed
// Apply rounds) by default, a lighter one under -short for PR CI.
func concurrentScale() (readers, rounds int) {
	if testing.Short() {
		return 2, 12
	}
	return 4, 60
}

// TestConcurrentSnapshotOracle is the race-hardened differential harness:
// reader goroutines hammer session snapshots while the writer streams
// randomized deltas (inserts and deletes, fact and dimension tables, bag
// members on cyclic schemas) through Apply/ApplyAsync. Every observed
// snapshot must be bit-exact with the single-threaded baseline replayed to
// that snapshot's version vector, all readers of an epoch must agree, and
// readers must make progress while maintenance is in flight.
func TestConcurrentSnapshotOracle(t *testing.T) {
	readers, rounds := concurrentScale()
	seeds := int64(3)
	if testing.Short() {
		seeds = 1
	}
	for seed := int64(0); seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(700 + seed))
			s, err := GenSchema(rng)
			if err != nil {
				t.Fatal(err)
			}
			queries := GenQueries(rng, s)
			opts := moo.Options{MultiRoot: true, MultiOutput: true, Compiled: true,
				Threads: 1 + int(seed%3), DomainParallelRows: 8, SemiJoin: seed%2 == 0,
				CompiledKernels: seed%2 == 1}
			runConcurrentOracle(t, rng, s, queries, opts, readers, rounds, 6, nil)
		})
	}
}

// TestConcurrentSnapshotOracleDimensionStream pins the semi-join-restricted
// maintenance path under concurrency: a star schema with a dimension-only
// update stream, the configuration where restricted scans fire on almost
// every round.
func TestConcurrentSnapshotOracleDimensionStream(t *testing.T) {
	readers, rounds := concurrentScale()
	rng := rand.New(rand.NewSource(800))
	s, err := genStar(rng, true)
	if err != nil {
		t.Fatal(err)
	}
	queries := GenQueries(rng, s)
	opts := moo.Options{MultiRoot: true, MultiOutput: true, Compiled: true, Threads: 2,
		SemiJoin: true, CompiledKernels: true}
	var dims []*data.Relation
	for _, r := range s.DB.Relations() {
		if r.Name != "F" {
			dims = append(dims, r)
		}
	}
	runConcurrentOracle(t, rng, s, queries, opts, readers, rounds, 6,
		func(rng *rand.Rand) data.Delta {
			return GenDeltaOn(rng, dims[rng.Intn(len(dims))], 6)
		})
}
