package oracletest

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	lmfao "repro"
	"repro/internal/moo"
)

// Application-layer parity over the serving API: every application entry
// point (linreg covar, polynomial regression, decision tree, Chow-Liu MI,
// data cube) must learn the same model from a Queryable backed by each of
// the three serving implementations — a one-shot Engine run (RunQueryable),
// a live Session snapshot, and a merged multi-shard ShardedSnapshot — while
// an update stream mutates the base data between rounds. One session
// maintains the CONCATENATION of all application batches and each
// application reads its window through SubQueryable, which is exactly the
// combined-batch serving pattern the API is designed for. The decision tree
// exercises the Requerier refinement hook on every backing.

// appsSpecs derives one specification per application from a generated
// schema's attribute pools.
type appsSpecs struct {
	covar lmfao.LinRegSpec
	poly  lmfao.PolySpec
	tree  lmfao.TreeSpec
	mi    []lmfao.AttrID
	cube  lmfao.CubeSpec
}

func genAppsSpecs(s *Schema) appsSpecs {
	label := s.Numeric[len(s.Numeric)-1]
	cont := s.Numeric[0]
	sp := appsSpecs{
		covar: lmfao.LinRegSpec{Continuous: []lmfao.AttrID{cont},
			Categorical: s.Discrete[:1], Label: label, Lambda: 0.5},
		poly: lmfao.PolySpec{Continuous: []lmfao.AttrID{cont}, Label: label, Lambda: 0.5},
		mi:   s.Discrete[:2],
		cube: lmfao.CubeSpec{Dims: s.Discrete[:2], Measures: []lmfao.AttrID{cont}},
	}
	sp.tree = lmfao.TreeSpec{Task: lmfao.RegressionTree, Continuous: []lmfao.AttrID{cont},
		Categorical: s.Discrete[:1], Label: label, MaxDepth: 3, MinSplit: 2, Buckets: 4}
	return sp
}

// combinedBatch concatenates the canonical application batches and returns
// the window boundaries: [0,c) covar, [c,p) poly, [p,m) MI, [m,d) cube.
func combinedBatch(db *lmfao.Database, sp appsSpecs) (batch []*lmfao.Query, c, p, m, d int) {
	batch = append(batch, lmfao.CovarBatch(sp.covar)...)
	c = len(batch)
	batch = append(batch, lmfao.PolynomialBatch(db, sp.poly)...)
	p = len(batch)
	batch = append(batch, lmfao.MIBatch(sp.mi)...)
	m = len(batch)
	batch = append(batch, lmfao.CubeBatch(sp.cube)...)
	d = len(batch)
	return batch, c, p, m, d
}

// renderTree canonicalizes a learned tree for comparison: split conditions,
// counts and predictions in pre-order. Dyadic base data makes the candidate
// statistics exact on every backing, so the trees must match verbatim.
func renderTree(m *lmfao.TreeModel) string {
	var b strings.Builder
	var walk func(n *lmfao.TreeNode, indent string)
	walk = func(n *lmfao.TreeNode, indent string) {
		if n == nil {
			return
		}
		if n.SplitCond != nil {
			fmt.Fprintf(&b, "%ssplit attr=%d cont=%v op=%v thr=%v n=%v\n",
				indent, n.SplitCond.Attr, n.SplitCond.Continuous, n.SplitCond.Op, n.SplitCond.Threshold, n.Count)
		} else {
			fmt.Fprintf(&b, "%sleaf pred=%v n=%v\n", indent, n.Prediction, n.Count)
		}
		walk(n.Left, indent+"  ")
		walk(n.Right, indent+"  ")
	}
	walk(m.Root, "")
	return b.String()
}

// appsWindow carves a sub-batch window or fails the test.
func appsWindow(t *testing.T, q lmfao.Queryable, lo, hi int) lmfao.Queryable {
	t.Helper()
	sub, err := lmfao.SubQueryable(q, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

// learnAll fits every application from one Queryable serving the combined
// batch and returns comparable renderings of the five models.
func learnAll(t *testing.T, label string, q lmfao.Queryable, db *lmfao.Database, sp appsSpecs, c, p, m, d int) (cm map[string]float64, poly []float64, tree string, mi [][]float64, cube []string) {
	t.Helper()
	covarQ := appsWindow(t, q, 0, c)
	covar, err := lmfao.BuildCovarMatrixFrom(covarQ, db, sp.covar)
	if err != nil {
		t.Fatalf("%s: covar: %v", label, err)
	}
	cm = covarByName(covar)
	cm["count"] = covar.Count

	pm, err := lmfao.LearnPolynomialRegressionFrom(appsWindow(t, q, c, p), db, sp.poly)
	if err != nil {
		t.Fatalf("%s: poly: %v", label, err)
	}
	poly = pm.Theta

	// The tree consults only the Requerier hook; hand it the covar window to
	// prove windows keep the hook.
	tm, err := lmfao.LearnDecisionTreeFrom(covarQ, db, sp.tree)
	if err != nil {
		t.Fatalf("%s: tree: %v", label, err)
	}
	tree = renderTree(tm)

	mir, err := lmfao.MutualInformationFrom(appsWindow(t, q, p, m), db, sp.mi)
	if err != nil {
		t.Fatalf("%s: mi: %v", label, err)
	}
	mi = make([][]float64, len(sp.mi))
	for i := range sp.mi {
		mi[i] = make([]float64, len(sp.mi))
		for j := range sp.mi {
			mi[i][j] = mir.MI.At(i, j)
		}
	}

	cr, err := lmfao.ComputeDataCubeFrom(appsWindow(t, q, m, d), db, sp.cube)
	if err != nil {
		t.Fatalf("%s: cube: %v", label, err)
	}
	for _, row := range cr.Flatten() {
		cube = append(cube, fmt.Sprintf("%v|%v", row.Dims, row.Values))
	}
	return cm, poly, tree, mi, cube
}

// diffApps compares two backings' renderings of all five models.
func diffApps(t *testing.T, label string, got, want struct {
	cm   map[string]float64
	poly []float64
	tree string
	mi   [][]float64
	cube []string
}) {
	t.Helper()
	if len(got.cm) != len(want.cm) {
		t.Fatalf("%s: covar has %d entries, want %d", label, len(got.cm), len(want.cm))
	}
	for k, wv := range want.cm {
		if gv, ok := got.cm[k]; !ok || !Approx.equal(gv, wv) {
			t.Fatalf("%s: covar[%s] = %v (present %v), want %v", label, k, gv, ok, wv)
		}
	}
	if len(got.poly) != len(want.poly) {
		t.Fatalf("%s: poly has %d coefficients, want %d", label, len(got.poly), len(want.poly))
	}
	for i := range want.poly {
		if !Approx.equal(got.poly[i], want.poly[i]) {
			t.Fatalf("%s: poly theta[%d] = %v, want %v", label, i, got.poly[i], want.poly[i])
		}
	}
	if got.tree != want.tree {
		t.Fatalf("%s: trees differ:\n--- got ---\n%s--- want ---\n%s", label, got.tree, want.tree)
	}
	for i := range want.mi {
		for j := range want.mi[i] {
			if !Approx.equal(got.mi[i][j], want.mi[i][j]) {
				t.Fatalf("%s: MI[%d][%d] = %v, want %v", label, i, j, got.mi[i][j], want.mi[i][j])
			}
		}
	}
	if len(got.cube) != len(want.cube) {
		t.Fatalf("%s: cube has %d rows, want %d", label, len(got.cube), len(want.cube))
	}
	for i := range want.cube {
		if got.cube[i] != want.cube[i] {
			t.Fatalf("%s: cube row %d = %s, want %s", label, i, got.cube[i], want.cube[i])
		}
	}
}

type appsModels = struct {
	cm   map[string]float64
	poly []float64
	tree string
	mi   [][]float64
	cube []string
}

// TestAppsQueryableParity is the acceptance oracle for the serving API:
// mid-update-stream, all five applications learned from a Session snapshot
// and from a 4-shard merged ShardedSnapshot must match the models learned
// from a from-scratch Engine recompute (RunQueryable) on the mutated
// database.
func TestAppsQueryableParity(t *testing.T) {
	seeds, rounds := int64(3), 3
	if testing.Short() {
		seeds, rounds = 1, 2
	}
	for seed := int64(0); seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1100 + seed))
			s, err := GenSchema(rng)
			if err != nil {
				t.Fatal(err)
			}
			sp := genAppsSpecs(s)
			batch, c, p, m, d := combinedBatch(s.DB, sp)

			opts := moo.Options{MultiRoot: true, MultiOutput: true, Compiled: true,
				Threads: 1 + int(seed%2), DomainParallelRows: 8, SemiJoin: true}
			sess, err := lmfao.NewSession(s.DB, batch, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Run(); err != nil {
				t.Fatal(err)
			}
			sharded, err := lmfao.NewShardedSession(s.DB, batch, opts, lmfao.ShardOptions{Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer sharded.Close()
			if _, err := sharded.Run(); err != nil {
				t.Fatal(err)
			}

			for round := 0; round < rounds; round++ {
				// One randomized update, applied to both maintainers (the
				// sharded session owns partitioned copies of the same data).
				delta := GenDelta(rng, s.DB, 8)
				if _, err := sess.Apply(delta); err != nil {
					t.Fatalf("round %d: session apply (%s): %v", round, delta.Relation, err)
				}
				if _, err := sharded.Apply(delta); err != nil {
					t.Fatalf("round %d: sharded apply (%s): %v", round, delta.Relation, err)
				}

				// Reference: a from-scratch engine run over the mutated base.
				eng, err := moo.NewEngine(s.DB, freshOpts)
				if err != nil {
					t.Fatal(err)
				}
				oneShot, err := lmfao.RunQueryable(eng, batch)
				if err != nil {
					t.Fatalf("round %d: recompute: %v", round, err)
				}

				var ref, fromSess, fromShard appsModels
				ref.cm, ref.poly, ref.tree, ref.mi, ref.cube =
					learnAll(t, "recompute", oneShot, s.DB, sp, c, p, m, d)
				fromSess.cm, fromSess.poly, fromSess.tree, fromSess.mi, fromSess.cube =
					learnAll(t, "session", sess.Snapshot(), s.DB, sp, c, p, m, d)
				fromShard.cm, fromShard.poly, fromShard.tree, fromShard.mi, fromShard.cube =
					learnAll(t, "sharded", sharded.Snapshot(), s.DB, sp, c, p, m, d)

				diffApps(t, fmt.Sprintf("round %d: session vs recompute", round), fromSess, ref)
				diffApps(t, fmt.Sprintf("round %d: sharded vs recompute", round), fromShard, ref)
			}
		})
	}
}
