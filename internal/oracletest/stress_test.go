package oracletest

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/moo"
)

func TestIVMStressMany(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1000 + seed))
			s, err := GenSchema(rng)
			if err != nil {
				t.Fatal(err)
			}
			queries := GenQueries(rng, s)
			opts := moo.Options{MultiRoot: true, MultiOutput: true, Compiled: seed%2 == 0, Threads: 1 + int(seed%4), DomainParallelRows: 4}
			sessionSteps(t, rng, s.DB, queries, opts, 6, 15, Exact)
		})
	}
}
