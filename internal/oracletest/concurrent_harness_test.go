package oracletest

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	lmfao "repro"
	"repro/internal/baseline"
	"repro/internal/data"
	"repro/internal/ivm"
	"repro/internal/moo"
	"repro/internal/query"
)

// Concurrent serving oracle: N reader goroutines hammer lmfao.Session
// snapshots while a single writer streams randomized deltas through Apply.
// Every snapshot any reader observes is identified by its epoch and base-
// relation version vector; after the stream drains, each distinct observed
// epoch is verified bit-exactly against a single-threaded brute-force
// baseline replayed over a pristine copy of the database to exactly that
// epoch's update prefix. The oracle therefore catches torn publications
// (a snapshot mixing two maintenance rounds), in-place patches of published
// views (an old snapshot changing value after a later round), and lost or
// reordered commits — on top of the plain wrong-answer bugs the
// single-threaded oracles catch. Run it under -race to also catch
// synchronization bugs with benign-looking values.

// cloneDatabase deep-copies db: attributes re-registered in ID order (IDs
// carry over verbatim) and every relation's columns copied. Dictionaries
// start empty — generated schemas never dictionary-encode strings.
func cloneDatabase(db *data.Database) (*data.Database, error) {
	out := data.NewDatabase()
	for i := 0; i < db.NumAttrs(); i++ {
		a := db.Attribute(data.AttrID(i))
		out.Attr(a.Name, a.Kind)
	}
	for _, r := range db.Relations() {
		cols := make([]data.Column, len(r.Cols))
		for ci, c := range r.Cols {
			if c.IsInt() {
				cols[ci] = data.NewIntColumn(append([]int64{}, c.Ints...))
			} else {
				cols[ci] = data.NewFloatColumn(append([]float64{}, c.Floats...))
			}
		}
		if err := out.AddRelation(data.NewRelation(r.Name, append([]data.AttrID{}, r.Attrs...), cols)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// observation is one reader's capture of a snapshot: the full contents of
// every query output (visible aggregate columns only) keyed by packed
// group-by tuple, plus the identity the publication protocol claims for it.
type observation struct {
	reader int
	epoch  uint64
	vv     lmfao.VersionVector
	rows   []map[string][]float64
}

// commitRecord is the writer-side ground truth for one published epoch: how
// many stream updates preceded it and the version vector it committed.
type commitRecord struct {
	prefix int
	vv     lmfao.VersionVector
}

// captureSnapshot reads every query output of sn in full and exercises the
// indexed Lookup path against the captured rows.
func captureSnapshot(t *testing.T, sn *lmfao.Snapshot, queries []*query.Query) *observation {
	obs := &observation{epoch: sn.Epoch(), vv: sn.VersionVector(), rows: make([]map[string][]float64, len(queries))}
	for qi, q := range queries {
		v := sn.Result(qi)
		obs.rows[qi] = viewRows(v, q.NumCols())
		if v.NumRows() == 0 {
			continue
		}
		key := v.Key(0)
		got, ok := sn.Lookup(qi, key...)
		if !ok {
			t.Errorf("snapshot epoch %d: Lookup(%d, %v) missed a present key", sn.Epoch(), qi, key)
			continue
		}
		want := obs.rows[qi][data.PackKey(key...)]
		if len(got) != len(want) {
			t.Errorf("snapshot epoch %d query %d: Lookup row has %d cols, scan has %d", sn.Epoch(), qi, len(got), len(want))
			continue
		}
		for c := range got {
			if got[c] != want[c] {
				t.Errorf("snapshot epoch %d query %d col %d: Lookup %v, scan %v", sn.Epoch(), qi, c, got[c], want[c])
			}
		}
	}
	return obs
}

// runConcurrentOracle drives the reader/writer race and verifies every
// distinct observed snapshot against the replayed baseline. genDelta
// produces the writer's update stream (nil streams GenDelta over the whole
// database).
func runConcurrentOracle(t *testing.T, rng *rand.Rand, s *Schema, queries []*query.Query, opts moo.Options, readers, rounds, maxRows int, genDelta func(*rand.Rand) data.Delta) {
	t.Helper()
	if genDelta == nil {
		genDelta = func(rng *rand.Rand) data.Delta { return GenDelta(rng, s.DB, maxRows) }
	}
	initial, err := cloneDatabase(s.DB)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := lmfao.NewSession(s.DB, queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}

	commits := make(map[uint64]commitRecord)
	first := sess.Head()
	commits[first.Epoch()] = commitRecord{prefix: 0, vv: first.VersionVector()}

	var (
		applying    atomic.Bool   // writer's Apply in flight
		duringApply atomic.Int64  // reads completed while a round was in flight
		maxObserved atomic.Uint64 // highest epoch any reader captured
		stop        atomic.Bool
		wg          sync.WaitGroup
	)
	perReader := make([][]*observation, readers)
	wg.Add(readers)
	for ri := 0; ri < readers; ri++ {
		ri := ri
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			read := func() {
				inFlight := applying.Load()
				sn := sess.Head()
				if e := sn.Epoch(); e < lastEpoch {
					t.Errorf("reader %d: epoch went backwards: %d after %d", ri, e, lastEpoch)
					return
				} else if e != lastEpoch {
					// New epoch: capture it in full for post-run replay
					// verification. Re-reads of an already-captured epoch
					// stay cheap so readers keep pressure on the writer.
					obs := captureSnapshot(t, sn, queries)
					obs.reader = ri
					perReader[ri] = append(perReader[ri], obs)
					lastEpoch = e
					for {
						seen := maxObserved.Load()
						if seen >= e || maxObserved.CompareAndSwap(seen, e) {
							break
						}
					}
				} else if v := sn.Result(0); v.NumRows() > 0 {
					_, _ = sn.Lookup(0, v.Key(0)...)
				}
				if inFlight || applying.Load() {
					duringApply.Add(1)
				}
			}
			for !stop.Load() {
				read()
				runtime.Gosched()
			}
			read() // final state
		}()
	}

	// The single writer: stream randomized deltas, recording each committed
	// epoch's ground truth. Alternate the sync and async entry points.
	var updates []data.Delta
	for r := 0; r < rounds; r++ {
		d := genDelta(rng)
		applying.Store(true)
		var stats []*lmfao.ApplyStats
		if r%2 == 0 {
			stats, err = sess.Apply(d)
		} else {
			res := <-sess.ApplyAsync(d)
			stats, err = res.Stats, res.Err
		}
		applying.Store(false)
		if err != nil {
			t.Fatalf("round %d (%s +%d -%d): %v", r, d.Relation, d.InsertRows(), d.DeleteRows(), err)
		}
		for _, st := range stats {
			if !st.Incremental {
				t.Logf("round %d: full recompute fallback for %s", r, st.Relation)
			}
		}
		updates = append(updates, d)
		sn := sess.Head()
		commits[sn.Epoch()] = commitRecord{prefix: len(updates), vv: sn.VersionVector()}
		// Pace the stream: yield until some reader has captured this epoch,
		// so (nearly) every committed snapshot gets replay-verified instead
		// of only the handful a free-running writer lets readers catch. The
		// deadline keeps a wedged scheduler from hanging the test — paced
		// coverage degrades, correctness checks do not.
		deadline := time.Now().Add(2 * time.Second)
		for maxObserved.Load() < sn.Epoch() && time.Now().Before(deadline) {
			runtime.Gosched()
		}
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	// The no-lock read path must keep readers progressing while maintenance
	// is in flight. Demanding overlap only makes sense when goroutines can
	// actually run in parallel.
	if got := duringApply.Load(); got == 0 && runtime.GOMAXPROCS(0) > 1 {
		t.Errorf("no reader completed a snapshot read while Apply was in flight across %d rounds (read path blocked on the writer?)", rounds)
	}

	// Group observations by epoch; verify each distinct epoch once against
	// the replayed single-threaded baseline, and every duplicate capture
	// against the first (all readers of one epoch must agree bit-exactly).
	byEpoch := make(map[uint64][]*observation)
	for _, obss := range perReader {
		for _, o := range obss {
			byEpoch[o.epoch] = append(byEpoch[o.epoch], o)
		}
	}
	epochs := make([]uint64, 0, len(byEpoch))
	for e := range byEpoch {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	verified := 0
	for _, e := range epochs {
		c, ok := commits[e]
		if !ok {
			t.Fatalf("readers observed epoch %d that the writer never committed", e)
		}
		ref := byEpoch[e][0]
		if !ref.vv.Equal(c.vv) {
			t.Fatalf("epoch %d: snapshot version vector %v, writer committed %v", e, ref.vv, c.vv)
		}
		replayed, err := cloneDatabase(initial)
		if err != nil {
			t.Fatal(err)
		}
		for ui, u := range updates[:c.prefix] {
			if err := replayed.ApplyDelta(u); err != nil {
				t.Fatalf("epoch %d: replaying update %d: %v", e, ui, err)
			}
		}
		if got := ivm.CaptureVersions(replayed); !ref.vv.Equal(got) {
			t.Fatalf("epoch %d: snapshot pinned %v, replayed prefix of %d updates reaches %v", e, ref.vv, c.prefix, got)
		}
		base, err := baseline.New(replayed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := base.Run(queries)
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			if err := diffRows(fmt.Sprintf("epoch %d reader %d query %s", e, ref.reader, q.Name),
				ref.rows[qi], want[qi].Rows, Exact); err != nil {
				t.Fatal(err)
			}
		}
		for _, dup := range byEpoch[e][1:] {
			if !dup.vv.Equal(ref.vv) {
				t.Fatalf("epoch %d: readers %d and %d disagree on version vector", e, ref.reader, dup.reader)
			}
			for qi, q := range queries {
				if err := diffRows(fmt.Sprintf("epoch %d readers %d vs %d query %s", e, dup.reader, ref.reader, q.Name),
					dup.rows[qi], ref.rows[qi], Exact); err != nil {
					t.Fatal(err)
				}
			}
		}
		verified++
	}
	if verified < 2 {
		t.Fatalf("only %d distinct epochs observed; the stream never overlapped the readers", verified)
	}
	t.Logf("verified %d distinct epochs across %d readers (%d reads completed during maintenance)",
		verified, readers, duringApply.Load())
}
