package kernel

import (
	"reflect"
	"testing"
)

// byteReader walks the fuzz input, yielding zeros once exhausted so every
// input decodes to a well-defined shape pair.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func decodeInts(r *byteReader) []int {
	switch r.next() % 3 {
	case 0:
		return nil
	case 1:
		return []int{}
	}
	n := int(r.next()) % 5
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.next()) % 32
	}
	return out
}

// decodeShape consumes one shape from the reader. Relation names take raw
// bytes (quote and delimiter characters included), slices decode to nil,
// empty and populated variants — the cases an injective key must separate.
func decodeShape(r *byteReader) Shape {
	s := Shape{}
	nameLen := int(r.next()) % 9
	name := make([]byte, nameLen)
	for i := range name {
		name[i] = r.next()
	}
	s.Relation = string(name)
	s.Node = int(r.next()) % 8
	s.Group = int(r.next()) % 8
	s.AtDelta = r.next()&1 == 1
	s.Compiled = r.next()&1 == 1
	s.Dirty = decodeInts(r)
	s.DeltaInputs = decodeInts(r)
	switch r.next() % 3 {
	case 0:
		s.SemiJoin = nil
	case 1:
		s.SemiJoin = [][]int64{}
	default:
		n := int(r.next()) % 4
		s.SemiJoin = make([][]int64, n)
		for i := range s.SemiJoin {
			switch r.next() % 3 {
			case 0:
				s.SemiJoin[i] = nil
			case 1:
				s.SemiJoin[i] = []int64{}
			default:
				m := int(r.next()) % 4
				inner := make([]int64, m)
				for j := range inner {
					inner[j] = int64(r.next()) % 64
				}
				s.SemiJoin[i] = inner
			}
		}
	}
	return s
}

// FuzzShapeKey checks the cache key's defining property on random shape
// pairs: equal shapes produce equal keys and distinct shapes never collide —
// a collision would silently hand maintenance a kernel compiled for a
// different plan shape.
func FuzzShapeKey(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{5, 'I', 't', 'e', 'm', 's', 1, 2, 1, 0, 2, 3, 1, 2, 3, 0, 2, 2, 2, 2, 7, 0})
	f.Add([]byte{3, 'a', '|', '"', 0, 0, 0, 1, 1, 0, 2, 1, 1, 2, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 2, 2, 0, 0, 1, 2, 1, 2, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &byteReader{data: data}
		s1 := decodeShape(r)
		s2 := decodeShape(r)
		k1, k2 := s1.Key(), s2.Key()
		if k1 != s1.Key() {
			t.Fatalf("Key not deterministic for %+v", s1)
		}
		if eq := reflect.DeepEqual(s1, s2); eq != (k1 == k2) {
			t.Fatalf("key equality %v but shape equality %v:\ns1=%+v k1=%q\ns2=%+v k2=%q",
				k1 == k2, eq, s1, k1, s2, k2)
		}
	})
}
