// Package kernel provides the plan-shape cache behind the engine's compiled
// maintenance kernels (internal/moo, Options.CompiledKernels): a canonical,
// collision-free key for the shape of one per-(node, delta-relation)
// maintenance step, and a small hit-counting cache mapping keys to compiled
// kernels.
//
// The key is an injective serialization, not a hash: two shapes map to the
// same key if and only if they are equal, so a cache hit can never hand a
// maintenance pass the wrong kernel. Every field is emitted with an explicit
// length or a quoted delimiter, which makes the encoding a decodable grammar
// — the property the FuzzShapeKey target exercises with random shape pairs.
package kernel

import (
	"strconv"
	"strings"
	"sync"
)

// Shape canonically describes the plan shape of one maintenance step: the
// join-tree node and delta relation it serves, the dirty view subset it
// recomputes, the delta views it substitutes for cached inputs, and the
// semi-join restriction it may apply. Engines key their kernel caches by
// Key() (scoped by plan identity), so equal shapes share one compiled kernel
// and distinct shapes never collide.
type Shape struct {
	// Relation is the delta's base relation (the bag relation for deltas
	// folded into a materialized hypertree bag); Node the join-tree node the
	// step scans and Group the logical plan group it recomputes.
	Relation string
	Node     int
	Group    int
	// AtDelta marks the step at the changed node itself, which scans the
	// delta's tuple blocks instead of a base relation.
	AtDelta bool
	// Compiled mirrors Options.Compiled: it changes the compiled group plan
	// (closure composition and slot interning), so it is part of the shape.
	Compiled bool
	// Dirty lists the view IDs the step recomputes, ascending; DeltaInputs
	// the input view IDs read from the delta state instead of the cache.
	Dirty       []int
	DeltaInputs []int
	// SemiJoin holds, per delta input, the attribute IDs of the semi-join
	// probe key (ivm.Step.SemiJoinAttrs). A nil outer slice means the step
	// has no semi-join plan; a nil inner slice an unrestricted input.
	SemiJoin [][]int64
}

// Key returns the shape's canonical cache key. The encoding is injective:
// the relation name is strconv-quoted (delimiters inside it stay escaped),
// every slice is length-prefixed, and nil is encoded distinctly from empty —
// so Key(a) == Key(b) exactly when a and b are equal shapes.
func (s *Shape) Key() string {
	var b strings.Builder
	b.WriteString("rel=")
	b.WriteString(strconv.Quote(s.Relation))
	b.WriteString("|node=")
	b.WriteString(strconv.Itoa(s.Node))
	b.WriteString("|group=")
	b.WriteString(strconv.Itoa(s.Group))
	b.WriteString("|atdelta=")
	b.WriteString(strconv.FormatBool(s.AtDelta))
	b.WriteString("|compiled=")
	b.WriteString(strconv.FormatBool(s.Compiled))
	appendInts(&b, "|dirty", s.Dirty)
	appendInts(&b, "|din", s.DeltaInputs)
	b.WriteString("|sj")
	if s.SemiJoin == nil {
		b.WriteString("=nil")
	} else {
		b.WriteString("=#")
		b.WriteString(strconv.Itoa(len(s.SemiJoin)))
		for _, attrs := range s.SemiJoin {
			if attrs == nil {
				b.WriteString("(~)")
				continue
			}
			b.WriteString("(#")
			b.WriteString(strconv.Itoa(len(attrs)))
			for i, a := range attrs {
				if i > 0 {
					b.WriteByte(',')
				} else {
					b.WriteByte(':')
				}
				b.WriteString(strconv.FormatInt(int64(a), 10))
			}
			b.WriteByte(')')
		}
	}
	return b.String()
}

func appendInts(b *strings.Builder, tag string, xs []int) {
	b.WriteString(tag)
	if xs == nil {
		b.WriteString("=nil")
		return
	}
	b.WriteString("=#")
	b.WriteString(strconv.Itoa(len(xs)))
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		} else {
			b.WriteByte(':')
		}
		b.WriteString(strconv.Itoa(x))
	}
}

// CacheStats is a point-in-time snapshot of a cache's effectiveness: Hits
// and Misses count Get calls, Size the resident kernels.
type CacheStats struct {
	Hits   uint64
	Misses uint64
	Size   int
}

// Cache maps shape keys to compiled kernels (stored as any: the kernel type
// lives in the engine layer, which owns compilation). It is safe for
// concurrent use and counts hits and misses, so benchmarks can report how
// often maintenance reuses a specialized loop instead of recompiling it.
type Cache struct {
	mu     sync.Mutex
	m      map[string]any
	hits   uint64
	misses uint64
}

// NewCache returns an empty kernel cache.
func NewCache() *Cache {
	return &Cache{m: make(map[string]any)}
}

// Get returns the kernel cached under key, counting the probe as a hit or a
// miss.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// Put stores a kernel under key, replacing any previous entry.
func (c *Cache) Put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

// Stats returns the cache's hit/miss counters and current size.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Size: len(c.m)}
}
