package kernel

import (
	"reflect"
	"testing"
)

func TestShapeKeyDistinguishes(t *testing.T) {
	// Every pair of distinct shapes below must produce distinct keys; the
	// tricky cases are nil-vs-empty slices and delimiter bytes inside the
	// relation name.
	shapes := []Shape{
		{},
		{Relation: "Items"},
		{Relation: "Items|node=1"}, // delimiter injection attempt
		{Relation: "Items\"|x"},
		{Node: 1},
		{Group: 1},
		{AtDelta: true},
		{Compiled: true},
		{Dirty: []int{}},
		{Dirty: []int{1}},
		{Dirty: []int{1, 2}},
		{Dirty: []int{12}},
		{DeltaInputs: []int{1}},
		{SemiJoin: [][]int64{}},
		{SemiJoin: [][]int64{nil}},
		{SemiJoin: [][]int64{{}}},
		{SemiJoin: [][]int64{{3}}},
		{SemiJoin: [][]int64{{3}, nil}},
		{SemiJoin: [][]int64{{3, 4}}},
		{SemiJoin: [][]int64{{34}}},
		{Relation: "Inventory", Node: 2, Group: 3, Dirty: []int{0, 4},
			DeltaInputs: []int{2}, SemiJoin: [][]int64{{7}}},
	}
	keys := make(map[string]int)
	for i, s := range shapes {
		k := s.Key()
		if j, dup := keys[k]; dup {
			t.Fatalf("shapes %d and %d collide on key %q", j, i, k)
		}
		keys[k] = i
	}
}

func TestShapeKeyDeterministic(t *testing.T) {
	s := Shape{Relation: "Weather", Node: 3, Group: 5, AtDelta: true, Compiled: true,
		Dirty: []int{1, 2, 9}, DeltaInputs: []int{4}, SemiJoin: [][]int64{{11, 12}, nil}}
	cp := Shape{Relation: s.Relation, Node: s.Node, Group: s.Group,
		AtDelta: s.AtDelta, Compiled: s.Compiled,
		Dirty:       append([]int(nil), s.Dirty...),
		DeltaInputs: append([]int(nil), s.DeltaInputs...),
		SemiJoin:    [][]int64{append([]int64(nil), s.SemiJoin[0]...), nil}}
	if !reflect.DeepEqual(s, cp) {
		t.Fatal("copy is not DeepEqual to original")
	}
	if s.Key() != cp.Key() {
		t.Fatalf("equal shapes produced different keys:\n%q\n%q", s.Key(), cp.Key())
	}
	if s.Key() != s.Key() {
		t.Fatal("Key is not deterministic")
	}
}

func TestCacheCounts(t *testing.T) {
	c := NewCache()
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", 42)
	v, ok := c.Get("a")
	if !ok || v.(int) != 42 {
		t.Fatalf("Get(a) = %v, %v; want 42, true", v, ok)
	}
	c.Put("b", "x")
	c.Get("b")
	c.Get("missing")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Size != 2 {
		t.Fatalf("Stats = %+v; want 2 hits, 2 misses, size 2", st)
	}
}
