// Package ivm is the incremental view maintenance subsystem: given a plan's
// per-view provenance and a delta against one base relation, it computes the
// dirty subset of the view DAG and a maintenance schedule over it.
//
// The delta rules follow from the layered view DAG (paper §3.2) and the
// pushdown invariant that every product aggregate references exactly one
// input view per child edge:
//
//   - A view computed AT the changed node p re-evaluates over the delta
//     tuples only, joined with its cached (clean) input views; deletes are
//     negative-weight inserts because the aggregates live in the sum-product
//     semiring.
//   - A dirty view at another node n scans its unchanged base relation, but
//     with every input view flowing from the neighbor toward p replaced by
//     that view's delta. The changed node lies in exactly one neighbor
//     subtree, so at most one factor per product changes — making the
//     substituted scan compute exactly the view's delta.
//   - Views whose provenance excludes p are untouched, as are their groups.
//
// Analyze additionally plans the semi-join restriction for the substituted
// scans: at an unchanged node only the base rows whose join-key values appear
// among the delta's keys can contribute (every product of a dirty view has
// exactly one delta-input factor), so each Step carries the attribute sets
// (Step.SemiJoinAttrs) on which the executor may index the base relation and
// scan just the delta-joining row subset instead of the full relation.
//
// The execution half (delta scans, semi-join row gathering via
// data.KeyIndex, merge into cached ViewData) lives in internal/moo
// (Engine.Apply); the public API is lmfao.Session.
package ivm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
)

// VersionVector maps base-relation names to the data.Relation.Version a
// maintained state reflects: two states with equal vectors were computed
// over identical base data. Snapshot publication (lmfao.Session) pins each
// published result to the vector its maintenance round committed, so a
// differential checker can replay an update stream to exactly that point.
type VersionVector map[string]int64

// CaptureVersions snapshots the versions of every relation registered in db
// (materialized hypertree bags live in the join tree, not the database, so
// the vector covers exactly the user-mutable base relations).
func CaptureVersions(db *data.Database) VersionVector {
	vv := make(VersionVector, len(db.Relations()))
	for _, r := range db.Relations() {
		vv[r.Name] = r.Version()
	}
	return vv
}

// Clone returns an independent copy.
func (vv VersionVector) Clone() VersionVector {
	out := make(VersionVector, len(vv))
	for k, v := range vv {
		out[k] = v
	}
	return out
}

// Equal reports whether both vectors pin the same versions for the same
// relation set.
func (vv VersionVector) Equal(other VersionVector) bool {
	if len(vv) != len(other) {
		return false
	}
	for k, v := range vv {
		if ov, ok := other[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// String renders the vector deterministically (sorted by relation name).
func (vv VersionVector) String() string {
	names := make([]string, 0, len(vv))
	for k := range vv {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", k, vv[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Step is one maintenance action: re-run a (subset of a) plan group to
// produce the deltas of its dirty views.
type Step struct {
	// Group is the plan group ID the step derives from; Node its join-tree
	// node.
	Group int
	Node  int
	// Dirty lists the group's dirty view IDs (ascending), the views whose
	// deltas the step computes. Clean views of the group are skipped: their
	// cached data stays valid.
	Dirty []int
	// AtDelta is true when Node is the changed node: the scan runs over the
	// delta tuples instead of the base relation.
	AtDelta bool
	// DeltaInputs lists the input view IDs (ascending) that must be read
	// from the delta views computed by earlier steps rather than from the
	// cache. Empty when AtDelta (inputs of views at the changed node are
	// all clean).
	DeltaInputs []int
	// SemiJoinAttrs, parallel to DeltaInputs, lists the attributes (the
	// delta input's consumer key, ascending) on which that input joins the
	// step node's relation. Non-nil iff the semi-join restriction is sound
	// for this step: every product aggregate of a dirty view here contains
	// exactly one delta-input factor (the pushdown invariant: one input per
	// child edge, and the changed node lies behind exactly one edge), so a
	// base row can contribute to some view's delta only if at least one
	// delta input binds a non-empty entry range for it — i.e. the row's
	// values on that input's consumer key appear among the delta's keys.
	// The executor may therefore scan just the union, over delta inputs, of
	// base rows semi-joining that input's key set. Nil when any delta input
	// binds on no attributes (it joins every row; no restriction exists).
	SemiJoinAttrs [][]data.AttrID
}

// Schedule is the maintenance plan for one base-relation delta: the steps in
// dependency order plus the overall dirty view set.
type Schedule struct {
	// Changed is the join-tree node whose relation changed.
	Changed int
	// Steps are ordered so every step's DeltaInputs are produced by earlier
	// steps (group IDs ascend, matching the plan's wave construction).
	Steps []Step
	// DirtyViews lists all dirty view IDs, ascending.
	DirtyViews []int
	// Commits is the base-relation version vector this maintenance round
	// commits: Analyze runs after the delta has been applied to the base
	// (Engine.Apply's contract), so the captured versions are exactly the
	// state the maintained views will reflect once the schedule executes.
	Commits VersionVector
}

// Analyze computes the maintenance schedule for a delta against the base
// relation at join-tree node `changed`. The plan must carry provenance
// (always set by core.BuildPlan).
func Analyze(p *core.Plan, changed int) (*Schedule, error) {
	if changed < 0 || changed >= len(p.Tree.Nodes) {
		return nil, fmt.Errorf("ivm: node %d out of range", changed)
	}
	if len(p.Provenance) != len(p.Views) {
		return nil, fmt.Errorf("ivm: plan has no provenance")
	}
	if len(p.ConsumerKeys) != len(p.Views) {
		return nil, fmt.Errorf("ivm: plan has no consumer-key metadata")
	}
	dirty := make([]bool, len(p.Views))
	s := &Schedule{Changed: changed, Commits: CaptureVersions(p.Tree.DB)}
	for _, v := range p.Views {
		if p.FeedsView(v.ID, changed) {
			dirty[v.ID] = true
			s.DirtyViews = append(s.DirtyViews, v.ID)
		}
	}
	// Plan groups are built wave by wave, so ascending group ID is a valid
	// dependency order; restrict to groups containing dirty views.
	for _, g := range p.Groups {
		var dv []int
		for _, vid := range g.Views {
			if dirty[vid] {
				dv = append(dv, vid)
			}
		}
		if len(dv) == 0 {
			continue
		}
		sort.Ints(dv)
		st := Step{Group: g.ID, Node: g.Node, Dirty: dv, AtDelta: g.Node == changed}
		if !st.AtDelta {
			seen := map[int]struct{}{}
			for _, vid := range dv {
				for _, in := range p.Views[vid].InputViews() {
					if dirty[in] {
						seen[in] = struct{}{}
					}
				}
			}
			for in := range seen {
				st.DeltaInputs = append(st.DeltaInputs, in)
			}
			sort.Ints(st.DeltaInputs)
			if len(st.DeltaInputs) == 0 {
				return nil, fmt.Errorf("ivm: dirty group %d at node %d has no dirty inputs", g.ID, g.Node)
			}
			// Semi-join restriction: the key sets that propagate from the
			// changed node to this step are the delta inputs' consumer keys.
			keys := make([][]data.AttrID, len(st.DeltaInputs))
			restrict := true
			for i, in := range st.DeltaInputs {
				ck := p.ConsumerKeys[in]
				if len(ck) == 0 {
					restrict = false
					break
				}
				keys[i] = ck
			}
			if restrict {
				st.SemiJoinAttrs = keys
			}
		}
		s.Steps = append(s.Steps, st)
	}
	return s, nil
}
