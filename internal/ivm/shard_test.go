package ivm

import "testing"

func TestShardVectorCloneEqual(t *testing.T) {
	sv := ShardVector{
		{"F": 3, "D": 1},
		{"F": 2, "D": 1},
	}
	cp := sv.Clone()
	if !sv.Equal(cp) {
		t.Fatal("clone not equal to source")
	}
	cp[1]["F"] = 99
	if sv.Equal(cp) {
		t.Fatal("mutating a clone component must not keep vectors equal")
	}
	if sv[1]["F"] != 2 {
		t.Fatal("clone shares component maps with the source")
	}
	if sv.Equal(sv[:1]) {
		t.Fatal("different shard counts must not be equal")
	}
	var empty ShardVector
	if !empty.Equal(ShardVector{}) {
		t.Fatal("empty vectors must be equal")
	}
}

func TestShardVectorString(t *testing.T) {
	sv := ShardVector{{"B": 2, "A": 1}, {}}
	if got, want := sv.String(), "[{A:1 B:2} {}]"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
