package ivm

import "strings"

// ShardVector is the version metadata of a sharded maintained state: one
// VersionVector per shard, indexed by shard id. A merged sharded snapshot
// (lmfao.ShardedSession.Snapshot) is pinned to a ShardVector — each
// component identifies the base state its shard's views reflect, exactly as
// a single session's snapshot is pinned to one VersionVector. Consistency is
// per shard: component s is a genuine committed state of shard s, but
// distinct components may reflect different prefixes of a broadcast
// (dimension) update stream until the fan-out drains.
type ShardVector []VersionVector

// Clone returns an independent deep copy.
func (sv ShardVector) Clone() ShardVector {
	out := make(ShardVector, len(sv))
	for i, vv := range sv {
		out[i] = vv.Clone()
	}
	return out
}

// Equal reports whether both vectors have the same shard count and every
// shard pins the same versions.
func (sv ShardVector) Equal(other ShardVector) bool {
	if len(sv) != len(other) {
		return false
	}
	for i, vv := range sv {
		if !vv.Equal(other[i]) {
			return false
		}
	}
	return true
}

// String renders the vector deterministically, one component per shard in
// shard order.
func (sv ShardVector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, vv := range sv {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(vv.String())
	}
	b.WriteByte(']')
	return b.String()
}
