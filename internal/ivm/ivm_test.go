package ivm

import (
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/jointree"
	"repro/internal/query"
)

// chainPlan builds a plan over R0(j0,j1,v0) ⋈ R1(j1,j2,v1) ⋈ R2(j2,j3,v2)
// with roots spread across the tree.
func chainPlan(t *testing.T) *core.Plan {
	t.Helper()
	db := data.NewDatabase()
	var js []data.AttrID
	for _, n := range []string{"j0", "j1", "j2", "j3"} {
		js = append(js, db.Attr(n, data.Key))
	}
	var vs []data.AttrID
	for i, n := range []string{"v0", "v1", "v2"} {
		v := db.Attr(n, data.Numeric)
		vs = append(vs, v)
		ints := []int64{0, 1, 2, 0, 1, 2}
		floats := []float64{1, 2, 3, 4, 5, 6}
		if err := db.AddRelation(data.NewRelation("R"+string(rune('0'+i)),
			[]data.AttrID{js[i], js[i+1], v},
			[]data.Column{data.NewIntColumn(ints), data.NewIntColumn(ints),
				data.NewFloatColumn(floats)})); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := jointree.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	queries := []*query.Query{
		query.NewQuery("q0", []data.AttrID{js[0]}, query.SumAgg(vs[2])),
		query.NewQuery("q1", []data.AttrID{js[3]}, query.SumAgg(vs[0])),
		query.NewQuery("q2", nil, query.CountAgg()),
	}
	plan, err := core.BuildPlan(tree, queries, core.PlanOptions{
		MultiRoot: true, MultiOutput: true, TrackCounts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestProvenance checks the per-view provenance invariants: output views
// cover every node, directional views cover exactly the component behind
// their edge, and every view's provenance contains its own node.
func TestProvenance(t *testing.T) {
	plan := chainPlan(t)
	n := len(plan.Tree.Nodes)
	for _, v := range plan.Views {
		prov := plan.Provenance[v.ID]
		if v.IsOutput() {
			if len(prov) != n {
				t.Fatalf("output view %d provenance %v, want all %d nodes", v.ID, prov, n)
			}
			continue
		}
		if !plan.FeedsView(v.ID, v.From) {
			t.Fatalf("view %d provenance %v misses its own node %d", v.ID, prov, v.From)
		}
		if plan.FeedsView(v.ID, v.To) {
			t.Fatalf("view %d provenance %v contains its target %d", v.ID, prov, v.To)
		}
	}
}

// TestAnalyze checks the schedule invariants for a delta at every node.
func TestAnalyze(t *testing.T) {
	plan := chainPlan(t)
	for node := range plan.Tree.Nodes {
		sched, err := Analyze(plan, node)
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
		dirty := map[int]bool{}
		for _, vid := range sched.DirtyViews {
			dirty[vid] = true
			if !plan.FeedsView(vid, node) {
				t.Fatalf("node %d: view %d scheduled dirty but not fed by the node", node, vid)
			}
		}
		for _, v := range plan.Views {
			if plan.FeedsView(v.ID, node) && !dirty[v.ID] {
				t.Fatalf("node %d: fed view %d missing from dirty set", node, v.ID)
			}
		}
		produced := map[int]bool{}
		lastGroup := -1
		for _, st := range sched.Steps {
			if st.Group <= lastGroup {
				t.Fatalf("node %d: steps out of order (%d after %d)", node, st.Group, lastGroup)
			}
			lastGroup = st.Group
			if st.AtDelta != (st.Node == node) {
				t.Fatalf("node %d: step at node %d has AtDelta=%v", node, st.Node, st.AtDelta)
			}
			if st.AtDelta && len(st.DeltaInputs) != 0 {
				t.Fatalf("node %d: at-delta step has delta inputs %v", node, st.DeltaInputs)
			}
			for _, in := range st.DeltaInputs {
				if !dirty[in] {
					t.Fatalf("node %d: substituted input %d is not dirty", node, in)
				}
				if !produced[in] {
					t.Fatalf("node %d: input %d consumed before its delta is produced", node, in)
				}
			}
			for _, vid := range st.Dirty {
				if !dirty[vid] {
					t.Fatalf("node %d: step covers clean view %d", node, vid)
				}
				produced[vid] = true
			}
		}
		for _, vid := range sched.DirtyViews {
			if !produced[vid] {
				t.Fatalf("node %d: dirty view %d has no producing step", node, vid)
			}
		}
	}
}

// TestAnalyzeCountCols checks TrackCounts wiring: every view carries a count
// column within range.
func TestAnalyzeCountCols(t *testing.T) {
	plan := chainPlan(t)
	if plan.CountCol == nil {
		t.Fatal("plan built with TrackCounts has no CountCol")
	}
	if len(plan.CountCol) != len(plan.Views) {
		t.Fatalf("CountCol covers %d views, want %d", len(plan.CountCol), len(plan.Views))
	}
	for _, v := range plan.Views {
		cc := plan.CountCol[v.ID]
		if cc < 0 || cc >= len(v.Cols) {
			t.Fatalf("view %d: count col %d out of range (%d cols)", v.ID, cc, len(v.Cols))
		}
		if v.IsOutput() && v.Cols[cc].Name != core.CountColName {
			t.Fatalf("output view %d: count col named %q", v.ID, v.Cols[cc].Name)
		}
	}
}

// TestAnalyzeSemiJoinAttrs checks the semi-join planning invariants: every
// non-at-delta step either carries one attribute set per delta input — each
// equal to that input's consumer key, every attribute in the step node's
// schema — or is explicitly unrestricted (nil) because some input binds on no
// attributes.
func TestAnalyzeSemiJoinAttrs(t *testing.T) {
	plan := chainPlan(t)
	restricted := 0
	for node := range plan.Tree.Nodes {
		sched, err := Analyze(plan, node)
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
		for _, st := range sched.Steps {
			if st.AtDelta {
				if st.SemiJoinAttrs != nil {
					t.Fatalf("node %d: at-delta step carries semi-join attrs", node)
				}
				continue
			}
			if st.SemiJoinAttrs == nil {
				for _, in := range st.DeltaInputs {
					if len(plan.ConsumerKeys[in]) > 0 {
						t.Fatalf("node %d group %d: restriction dropped but every input has a key", node, st.Group)
					}
				}
				continue
			}
			restricted++
			if len(st.SemiJoinAttrs) != len(st.DeltaInputs) {
				t.Fatalf("node %d group %d: %d attr sets for %d delta inputs",
					node, st.Group, len(st.SemiJoinAttrs), len(st.DeltaInputs))
			}
			stepNode := plan.Tree.Nodes[st.Node]
			for i, in := range st.DeltaInputs {
				attrs := st.SemiJoinAttrs[i]
				if len(attrs) == 0 {
					t.Fatalf("node %d group %d: empty attr set for input %d", node, st.Group, in)
				}
				ck := plan.ConsumerKeys[in]
				if len(attrs) != len(ck) {
					t.Fatalf("node %d group %d input %d: attrs %v != consumer key %v",
						node, st.Group, in, attrs, ck)
				}
				for j, a := range attrs {
					if a != ck[j] {
						t.Fatalf("node %d group %d input %d: attrs %v != consumer key %v",
							node, st.Group, in, attrs, ck)
					}
					if !stepNode.HasAttr(a) {
						t.Fatalf("node %d group %d input %d: attr %d not in node schema",
							node, st.Group, in, a)
					}
				}
			}
		}
	}
	if restricted == 0 {
		t.Fatal("chain plan produced no semi-join-restricted steps")
	}
}

// TestConsumerKeys pins the plan metadata: every internal view's consumer key
// is its group-by intersected with the consuming node's schema, in ascending
// order.
func TestConsumerKeys(t *testing.T) {
	plan := chainPlan(t)
	for _, v := range plan.Views {
		ck := plan.ConsumerKeys[v.ID]
		if v.IsOutput() {
			if ck != nil {
				t.Fatalf("output view %d has consumer key %v", v.ID, ck)
			}
			continue
		}
		node := plan.Tree.Nodes[v.To]
		var want []data.AttrID
		for _, g := range v.GroupBy {
			if node.HasAttr(g) {
				want = append(want, g)
			}
		}
		if len(ck) != len(want) {
			t.Fatalf("view %d: consumer key %v, want %v", v.ID, ck, want)
		}
		for i := range ck {
			if ck[i] != want[i] {
				t.Fatalf("view %d: consumer key %v, want %v", v.ID, ck, want)
			}
		}
	}
}

func TestAnalyzeBadNode(t *testing.T) {
	plan := chainPlan(t)
	if _, err := Analyze(plan, -1); err == nil {
		t.Fatal("Analyze(-1) succeeded")
	}
	if _, err := Analyze(plan, len(plan.Tree.Nodes)); err == nil {
		t.Fatal("Analyze(out of range) succeeded")
	}
}

// TestVersionVector pins the commit-metadata API: capture reflects current
// relation versions, Analyze stamps the post-delta vector onto the
// schedule, and Clone/Equal/String behave.
func TestVersionVector(t *testing.T) {
	plan := chainPlan(t)
	db := plan.Tree.DB

	before := CaptureVersions(db)
	if len(before) != len(db.Relations()) {
		t.Fatalf("captured %d entries, want %d", len(before), len(db.Relations()))
	}
	for _, r := range db.Relations() {
		if before[r.Name] != r.Version() {
			t.Fatalf("capture of %s = %d, want %d", r.Name, before[r.Name], r.Version())
		}
	}

	cp := before.Clone()
	if !cp.Equal(before) || !before.Equal(cp) {
		t.Fatal("clone not equal to original")
	}

	// Mutate one relation; the schedule must commit the moved vector.
	r0 := db.Relation("R0")
	if err := r0.Append([]data.Column{
		data.NewIntColumn([]int64{0}), data.NewIntColumn([]int64{0}),
		data.NewFloatColumn([]float64{1}),
	}); err != nil {
		t.Fatal(err)
	}
	if cp.Equal(CaptureVersions(db)) {
		t.Fatal("vector unchanged after a mutation")
	}
	sched, err := Analyze(plan, plan.Tree.NodeByRelation("R0").ID)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Commits == nil {
		t.Fatal("schedule carries no commit vector")
	}
	if got, want := sched.Commits["R0"], before["R0"]+1; got != want {
		t.Fatalf("committed R0 version %d, want %d", got, want)
	}
	if !sched.Commits.Equal(CaptureVersions(db)) {
		t.Fatalf("schedule commits %v, database at %v", sched.Commits, CaptureVersions(db))
	}
	// Clone is independent: the pre-mutation copy still holds old values.
	if got := cp["R0"]; got != before["R0"] {
		t.Fatalf("clone mutated: R0 = %d, want %d", got, before["R0"])
	}

	if s := sched.Commits.String(); s == "" || s[0] != '{' {
		t.Fatalf("String() = %q, want deterministic {name:ver ...} form", s)
	}
}
