package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/data"
)

// Record is one committed log entry: a global, monotonically increasing log
// sequence number plus the base-relation delta it carries. LSNs are strictly
// ascending across the whole log but need not be contiguous — a crash can
// lose an unsynced tail whose LSNs a later checkpoint still covers, and the
// writer then resumes past them (Log.AdvanceLSN).
type Record struct {
	LSN   uint64
	Delta data.Delta
}

// Frame layout: [u32le payload length][u32le CRC-32C of payload][payload].
// Payload: [uvarint LSN][uvarint len(name)][name][insert block][delete
// block]. Block: [uvarint ncols]; if ncols > 0, [uvarint nrows] then per
// column one kind byte (0 = int, 1 = float) followed by nrows little-endian
// 64-bit values (int64, or float64 IEEE-754 bits).
const (
	frameHeaderLen = 8

	// MaxRecordBytes bounds a single record payload. Decode rejects larger
	// length prefixes outright so a corrupt length cannot drive a huge
	// allocation.
	MaxRecordBytes = 1 << 28

	maxBlockCols = 1 << 16
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord appends rec's framed encoding to buf and returns the extended
// slice. The delta must be well-formed (equal-length columns within each
// block); Log.Append validates this before encoding.
func AppendRecord(buf []byte, rec Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = binary.AppendUvarint(buf, rec.LSN)
	buf = appendDelta(buf, rec.Delta)
	payload := buf[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

func appendDelta(buf []byte, d data.Delta) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(d.Relation)))
	buf = append(buf, d.Relation...)
	buf = appendBlock(buf, d.Inserts)
	buf = appendBlock(buf, d.Deletes)
	return buf
}

func appendBlock(buf []byte, cols []data.Column) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(cols)))
	if len(cols) == 0 {
		return buf
	}
	n := cols[0].Len()
	buf = binary.AppendUvarint(buf, uint64(n))
	for _, c := range cols {
		if c.IsInt() {
			buf = append(buf, 0)
			for _, v := range c.Ints[:n] {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
			}
		} else {
			buf = append(buf, 1)
			for _, v := range c.Floats[:n] {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		}
	}
	return buf
}

// validDelta rejects deltas AppendRecord cannot frame losslessly: within
// each block every column must have the block's row count.
func validDelta(d data.Delta) error {
	for _, block := range [2][]data.Column{d.Inserts, d.Deletes} {
		if len(block) == 0 {
			continue
		}
		n := block[0].Len()
		for _, c := range block[1:] {
			if c.Len() != n {
				return fmt.Errorf("wal: malformed delta for %q: ragged column lengths", d.Relation)
			}
		}
	}
	return nil
}

// DecodeRecord decodes the first framed record in b, returning the record
// and the number of bytes consumed. ErrTruncated means b ends before the
// frame does (a torn tail); ErrChecksum and ErrCorrupt mean the frame is
// complete but invalid. All three mark the end of a log's committed prefix.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeaderLen {
		return Record{}, 0, ErrTruncated
	}
	n := int(binary.LittleEndian.Uint32(b))
	sum := binary.LittleEndian.Uint32(b[4:])
	if n == 0 || n > MaxRecordBytes {
		return Record{}, 0, ErrCorrupt
	}
	if len(b) < frameHeaderLen+n {
		return Record{}, 0, ErrTruncated
	}
	payload := b[frameHeaderLen : frameHeaderLen+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return Record{}, 0, ErrChecksum
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, frameHeaderLen + n, nil
}

func decodePayload(p []byte) (Record, error) {
	lsn, n := binary.Uvarint(p)
	if n <= 0 {
		return Record{}, ErrCorrupt
	}
	d, rest, err := decodeDelta(p[n:])
	if err != nil {
		return Record{}, err
	}
	if len(rest) != 0 {
		return Record{}, ErrCorrupt
	}
	return Record{LSN: lsn, Delta: d}, nil
}

func decodeDelta(b []byte) (data.Delta, []byte, error) {
	var d data.Delta
	nameLen, n := binary.Uvarint(b)
	if n <= 0 || nameLen > uint64(len(b)-n) {
		return d, nil, ErrCorrupt
	}
	b = b[n:]
	d.Relation = string(b[:nameLen])
	b = b[nameLen:]
	var err error
	if d.Inserts, b, err = decodeBlock(b); err != nil {
		return d, nil, err
	}
	if d.Deletes, b, err = decodeBlock(b); err != nil {
		return d, nil, err
	}
	return d, b, nil
}

func decodeBlock(b []byte) ([]data.Column, []byte, error) {
	ncols, n := binary.Uvarint(b)
	if n <= 0 || ncols > maxBlockCols {
		return nil, nil, ErrCorrupt
	}
	b = b[n:]
	if ncols == 0 {
		return nil, b, nil
	}
	nrows, n := binary.Uvarint(b)
	if n <= 0 || nrows > MaxRecordBytes/8 {
		return nil, nil, ErrCorrupt
	}
	b = b[n:]
	need := ncols * (1 + 8*nrows)
	if uint64(len(b)) < need {
		return nil, nil, ErrCorrupt
	}
	cols := make([]data.Column, ncols)
	for i := range cols {
		kind := b[0]
		b = b[1:]
		switch kind {
		case 0:
			vals := make([]int64, nrows)
			for j := range vals {
				vals[j] = int64(binary.LittleEndian.Uint64(b[8*j:]))
			}
			cols[i] = data.NewIntColumn(vals)
		case 1:
			vals := make([]float64, nrows)
			for j := range vals {
				vals[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*j:]))
			}
			cols[i] = data.NewFloatColumn(vals)
		default:
			return nil, nil, ErrCorrupt
		}
		b = b[8*nrows:]
	}
	return cols, b, nil
}
