package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/data"
	"repro/internal/ivm"
	"repro/internal/moo"
)

// Checkpoint is a durable snapshot of a maintained session's full state as
// of a specific log position: base-relation contents and mutation counters,
// the materialized view DAG, and the ivm.VersionVector the views reflect.
// Recovery restores the newest valid checkpoint and replays only the log
// records with LSN > Checkpoint.LSN.
type Checkpoint struct {
	// LSN is the last log record the state reflects (0 = initial Run only).
	LSN uint64
	// Versions is the version vector the views are consistent with.
	Versions ivm.VersionVector
	// Relations holds every base relation's rows and mutation counter.
	Relations []RelationState
	// Views is the materialized view DAG indexed by plan view ID; nil
	// entries are views the plan never materializes.
	Views []*moo.ViewData
}

// RelationState is one base relation's checkpointed contents.
type RelationState struct {
	Name    string
	Version int64
	Cols    []data.Column
}

// Checkpoint file layout: 8-byte magic, u32le payload length, u32le CRC-32C
// of the payload, payload. Files are written to a .tmp name, fsynced, and
// renamed into place (then the directory is fsynced), so a crash mid-write
// leaves either no checkpoint or a stale .tmp that recovery ignores.
const (
	ckptMagic  = "LMFAOCK1"
	ckptSuffix = ".ckpt"
	tmpSuffix  = ".tmp"
)

func ckptName(lsn uint64) string {
	return fmt.Sprintf("ckpt-%016x%s", lsn, ckptSuffix)
}

// WriteCheckpoint durably writes ck into dir. With failBeforeSync set (the
// injected crash point for recovery testing) the bytes are written but
// neither fsynced nor renamed into place — exactly the state a crash
// between write and commit leaves — and ErrInjectedCrash is returned.
func WriteCheckpoint(dir string, ck *Checkpoint, failBeforeSync bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	payload := encodeCheckpoint(nil, ck)
	buf := make([]byte, 0, len(ckptMagic)+8+len(payload))
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	buf = append(buf, payload...)

	tmp := filepath.Join(dir, ckptName(ck.LSN)+tmpSuffix)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if failBeforeSync {
		f.Close()
		return ErrInjectedCrash
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ckptName(ck.LSN))); err != nil {
		return err
	}
	return syncDir(dir)
}

// LatestCheckpoint returns the newest checkpoint in dir that validates
// (magic, length, checksum, payload structure), or nil if none does.
// Invalid or torn checkpoint files are skipped, never trusted.
func LatestCheckpoint(dir string) (*Checkpoint, error) {
	lsns, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	for i := len(lsns) - 1; i >= 0; i-- {
		ck, err := ReadCheckpoint(filepath.Join(dir, ckptName(lsns[i])))
		if err == nil {
			return ck, nil
		}
	}
	return nil, nil
}

// listCheckpoints returns the LSNs of dir's checkpoint files in ascending
// order. A missing directory yields an empty list.
func listCheckpoints(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var lsns []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		lsn, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ckptSuffix), 16, 64)
		if err != nil {
			continue
		}
		lsns = append(lsns, lsn)
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	return lsns, nil
}

// ReadCheckpoint reads and validates one checkpoint file.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < len(ckptMagic)+8 || string(b[:len(ckptMagic)]) != ckptMagic {
		return nil, ErrCorrupt
	}
	b = b[len(ckptMagic):]
	n := int(binary.LittleEndian.Uint32(b))
	sum := binary.LittleEndian.Uint32(b[4:])
	if len(b) < 8+n {
		return nil, ErrTruncated
	}
	payload := b[8 : 8+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, ErrChecksum
	}
	return decodeCheckpoint(payload)
}

// PruneCheckpoints removes stale .tmp files and all but the keep newest
// checkpoint files from dir.
func PruneCheckpoints(dir string, keep int) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), tmpSuffix) {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	lsns, err := listCheckpoints(dir)
	if err != nil {
		return err
	}
	if keep < 1 {
		keep = 1
	}
	for len(lsns) > keep {
		if err := os.Remove(filepath.Join(dir, ckptName(lsns[0]))); err != nil {
			return err
		}
		lsns = lsns[1:]
	}
	return nil
}

// encodeCheckpoint appends ck's payload encoding to buf. Version-vector
// entries are written in sorted name order so encoding is deterministic.
func encodeCheckpoint(buf []byte, ck *Checkpoint) []byte {
	buf = binary.AppendUvarint(buf, ck.LSN)
	names := make([]string, 0, len(ck.Versions))
	for name := range ck.Versions {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = appendString(buf, name)
		buf = binary.AppendUvarint(buf, uint64(ck.Versions[name]))
	}
	buf = binary.AppendUvarint(buf, uint64(len(ck.Relations)))
	for _, rs := range ck.Relations {
		buf = appendString(buf, rs.Name)
		buf = binary.AppendUvarint(buf, uint64(rs.Version))
		buf = appendBlock(buf, rs.Cols)
	}
	buf = binary.AppendUvarint(buf, uint64(len(ck.Views)))
	for _, v := range ck.Views {
		if v == nil {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		buf = v.AppendBinary(buf)
	}
	return buf
}

func decodeCheckpoint(p []byte) (*Checkpoint, error) {
	ck := &Checkpoint{}
	lsn, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	p = p[n:]
	ck.LSN = lsn

	nver, n := binary.Uvarint(p)
	if n <= 0 || nver > uint64(len(p)) {
		return nil, ErrCorrupt
	}
	p = p[n:]
	ck.Versions = make(ivm.VersionVector, nver)
	for i := uint64(0); i < nver; i++ {
		name, rest, err := decodeString(p)
		if err != nil {
			return nil, err
		}
		ver, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, ErrCorrupt
		}
		p = rest[n:]
		ck.Versions[name] = int64(ver)
	}

	nrel, n := binary.Uvarint(p)
	if n <= 0 || nrel > uint64(len(p)) {
		return nil, ErrCorrupt
	}
	p = p[n:]
	ck.Relations = make([]RelationState, 0, nrel)
	for i := uint64(0); i < nrel; i++ {
		var rs RelationState
		var err error
		if rs.Name, p, err = decodeString(p); err != nil {
			return nil, err
		}
		ver, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, ErrCorrupt
		}
		p = p[n:]
		rs.Version = int64(ver)
		if rs.Cols, p, err = decodeBlock(p); err != nil {
			return nil, err
		}
		ck.Relations = append(ck.Relations, rs)
	}

	nviews, n := binary.Uvarint(p)
	if n <= 0 || nviews > uint64(len(p)) {
		return nil, ErrCorrupt
	}
	p = p[n:]
	ck.Views = make([]*moo.ViewData, nviews)
	for i := range ck.Views {
		if len(p) == 0 {
			return nil, ErrCorrupt
		}
		present := p[0]
		p = p[1:]
		if present == 0 {
			continue
		}
		if present != 1 {
			return nil, ErrCorrupt
		}
		v, used, err := moo.DecodeViewData(p)
		if err != nil {
			return nil, fmt.Errorf("wal: checkpoint view %d: %w", i, err)
		}
		ck.Views[i] = v
		p = p[used:]
	}
	if len(p) != 0 {
		return nil, ErrCorrupt
	}
	return ck, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeString(b []byte) (string, []byte, error) {
	sl, n := binary.Uvarint(b)
	if n <= 0 || sl > uint64(len(b)-n) {
		return "", nil, ErrCorrupt
	}
	return string(b[n : n+int(sl)]), b[n+int(sl):], nil
}
