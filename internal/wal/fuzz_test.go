package wal

import (
	"errors"
	"testing"

	"repro/internal/data"
)

// FuzzWALRecord exercises the record codec with arbitrary byte strings and
// with mutations of valid frames. The decoder must never panic, must reject
// any frame whose checksum no longer matches its payload, and must report
// every proper prefix of a valid frame as ErrTruncated.
func FuzzWALRecord(f *testing.F) {
	seed := [][]byte{
		AppendRecord(nil, Record{LSN: 1, Delta: testDelta(0)}),
		AppendRecord(nil, Record{LSN: 1 << 40, Delta: data.Delta{Relation: "r"}}),
		AppendRecord(nil, Record{LSN: 3, Delta: data.Delta{
			Relation: "wide",
			Inserts: []data.Column{
				data.NewIntColumn([]int64{-1, 0, 1}),
				data.NewFloatColumn([]float64{0.1, -0.2, 3e300}),
				data.NewIntColumn([]int64{7, 8, 9}),
			},
		}}),
		AppendRecord(nil, Record{LSN: 2, Delta: data.Delta{
			Relation: "delonly",
			Deletes:  []data.Column{data.NewFloatColumn([]float64{1.5})},
		}}),
		{},
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeRecord(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("decoded %d bytes of %d", n, len(b))
		}
		// Whatever decoded must re-encode to an identical frame: the codec is
		// canonical, so decode(encode(decode(b))) is a fixed point.
		re := AppendRecord(nil, rec)
		rec2, n2, err := DecodeRecord(re)
		if err != nil || n2 != len(re) {
			t.Fatalf("re-encode failed: n=%d err=%v", n2, err)
		}
		if rec2.LSN != rec.LSN || !deltasEqual(rec2.Delta, rec.Delta) {
			t.Fatalf("re-encode round trip mismatch: %+v vs %+v", rec, rec2)
		}
		// Every proper prefix of the canonical frame is a torn write.
		for cut := 0; cut < len(re); cut += 1 + len(re)/16 {
			if _, _, err := DecodeRecord(re[:cut]); !errors.Is(err, ErrTruncated) {
				t.Fatalf("prefix %d/%d: err=%v, want ErrTruncated", cut, len(re), err)
			}
		}
		// Flipping any payload byte must be caught by the checksum.
		for off := frameHeaderLen; off < len(re); off += 1 + len(re)/16 {
			bad := append([]byte(nil), re...)
			bad[off] ^= 0x20
			if _, _, err := DecodeRecord(bad); err == nil {
				t.Fatalf("payload flip at %d went undetected", off)
			}
		}
	})
}
