package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/data"
	"repro/internal/ivm"
)

func testDelta(i int64) data.Delta {
	return data.Delta{
		Relation: "sales",
		Inserts: []data.Column{
			data.NewIntColumn([]int64{i, i + 1}),
			data.NewFloatColumn([]float64{float64(i) * 0.5, -1}),
		},
		Deletes: []data.Column{
			data.NewIntColumn([]int64{i}),
			data.NewFloatColumn([]float64{0.25}),
		},
	}
}

func deltasEqual(a, b data.Delta) bool {
	return a.Relation == b.Relation &&
		blocksEqual(a.Inserts, b.Inserts) && blocksEqual(a.Deletes, b.Deletes)
}

func blocksEqual(a, b []data.Column) bool {
	if blockRows(a) == 0 && blockRows(b) == 0 && len(a) == len(b) {
		return true
	}
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].IsInt() != b[i].IsInt() {
			return false
		}
		if a[i].IsInt() {
			if !reflect.DeepEqual(append([]int64{}, a[i].Ints...), append([]int64{}, b[i].Ints...)) {
				return false
			}
		} else if !reflect.DeepEqual(append([]float64{}, a[i].Floats...), append([]float64{}, b[i].Floats...)) {
			return false
		}
	}
	return true
}

func blockRows(cols []data.Column) int {
	if len(cols) == 0 {
		return 0
	}
	return cols[0].Len()
}

func TestWALRecordRoundTrip(t *testing.T) {
	for _, d := range []data.Delta{
		testDelta(7),
		{Relation: "empty"},
		{Relation: "insonly", Inserts: []data.Column{data.NewIntColumn([]int64{1, 2, 3})}},
		{Relation: "zerorows", Inserts: []data.Column{data.NewIntColumn(nil), data.NewFloatColumn(nil)}},
	} {
		buf := AppendRecord(nil, Record{LSN: 42, Delta: d})
		rec, n, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("%q: decode: %v", d.Relation, err)
		}
		if n != len(buf) {
			t.Fatalf("%q: consumed %d of %d bytes", d.Relation, n, len(buf))
		}
		if rec.LSN != 42 || !deltasEqual(rec.Delta, d) {
			t.Fatalf("%q: round trip mismatch: %+v", d.Relation, rec)
		}
	}
}

func TestWALRecordTruncatedAndCorrupt(t *testing.T) {
	buf := AppendRecord(nil, Record{LSN: 1, Delta: testDelta(3)})
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeRecord(buf[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix of %d bytes: err = %v, want ErrTruncated", cut, err)
		}
	}
	// A flipped payload byte must fail the checksum.
	for off := frameHeaderLen; off < len(buf); off++ {
		bad := append([]byte(nil), buf...)
		bad[off] ^= 0x40
		if _, _, err := DecodeRecord(bad); err == nil {
			t.Fatalf("flipped payload byte %d: decode succeeded", off)
		}
	}
	// A flipped CRC byte mismatches too.
	bad := append([]byte(nil), buf...)
	bad[5] ^= 0x01
	if _, _, err := DecodeRecord(bad); !errors.Is(err, ErrChecksum) {
		t.Fatalf("flipped crc: err = %v, want ErrChecksum", err)
	}
}

func TestLogAppendReplayReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := int64(0); i < n; i++ {
		lsn, err := l.Append(testDelta(i))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i)+1 {
			t.Fatalf("append %d: lsn = %d", i, lsn)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != n {
		t.Fatalf("reopened LastLSN = %d, want %d", l2.LastLSN(), n)
	}
	var got []uint64
	err = l2.Replay(5, func(rec Record) error {
		got = append(got, rec.LSN)
		if !deltasEqual(rec.Delta, testDelta(int64(rec.LSN)-1)) {
			t.Fatalf("lsn %d: replayed delta mismatch", rec.LSN)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n-5 || got[0] != 6 || got[len(got)-1] != n {
		t.Fatalf("replayed LSNs %v", got)
	}
	// Appends continue numbering after the replayed prefix.
	lsn, err := l2.Append(testDelta(99))
	if err != nil || lsn != n+1 {
		t.Fatalf("append after reopen: lsn=%d err=%v", lsn, err)
	}
}

func TestLogSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := int64(0); i < n; i++ {
		if _, err := l.Append(testDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("rotation produced %d segments (err=%v), want several", len(segs), err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	count := 0
	if err := l2.Replay(0, func(rec Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != n || l2.LastLSN() != n {
		t.Fatalf("replayed %d records, LastLSN %d, want %d", count, l2.LastLSN(), n)
	}
}

func TestLogTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if _, err := l.Append(testDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	st, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the last record.
	if err := os.Truncate(segs[0], st.Size()-3); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 4 {
		t.Fatalf("after torn tail LastLSN = %d, want 4", l2.LastLSN())
	}
	// The torn bytes are gone: appends extend the committed prefix.
	if lsn, err := l2.Append(testDelta(9)); err != nil || lsn != 5 {
		t.Fatalf("append after truncation: lsn=%d err=%v", lsn, err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if l3.LastLSN() != 5 {
		t.Fatalf("after re-append LastLSN = %d, want 5", l3.LastLSN())
	}
}

func TestLogCorruptRecordCutsSuffix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 6; i++ {
		if _, err := l.Append(testDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the 4th record's payload: records 4..6 must drop.
	recLen := len(b) / 6
	b[3*recLen+frameHeaderLen+2] ^= 0xff
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 3 {
		t.Fatalf("after corrupt record LastLSN = %d, want 3", l2.LastLSN())
	}
}

func TestLogCrashAfterAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.CrashAfterAppends(3)
	for i := int64(0); i < 3; i++ {
		if _, err := l.Append(testDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Append(testDelta(3)); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("4th append err = %v, want ErrInjectedCrash", err)
	}
	// Wedged: everything fails with the same error now.
	if _, err := l.Append(testDelta(4)); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("5th append err = %v, want ErrInjectedCrash", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("sync err = %v, want ErrInjectedCrash", err)
	}
	l.Abort()
	// The torn frame the crash left is truncated on reopen.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 3 {
		t.Fatalf("recovered LastLSN = %d, want 3", l2.LastLSN())
	}
}

func TestLogRejectsRaggedDelta(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	bad := data.Delta{Relation: "r", Inserts: []data.Column{
		data.NewIntColumn([]int64{1, 2}),
		data.NewIntColumn([]int64{1}),
	}}
	if _, err := l.Append(bad); err == nil {
		t.Fatal("ragged delta accepted")
	}
	// Not wedged: a rejected delta is not a write failure.
	if _, err := l.Append(testDelta(0)); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointWriteReadPrune(t *testing.T) {
	dir := t.TempDir()
	ck := &Checkpoint{
		LSN:      7,
		Versions: ivm.VersionVector{"sales": 7, "stores": 2},
		Relations: []RelationState{{
			Name: "sales", Version: 7,
			Cols: []data.Column{
				data.NewIntColumn([]int64{1, 2, 3}),
				data.NewFloatColumn([]float64{0.5, 1.5, 2.5}),
			},
		}},
		Views: nil,
	}
	if err := WriteCheckpoint(dir, ck, false); err != nil {
		t.Fatal(err)
	}
	got, err := LatestCheckpoint(dir)
	if err != nil || got == nil {
		t.Fatalf("LatestCheckpoint: %v, %v", got, err)
	}
	if got.LSN != 7 || !got.Versions.Equal(ck.Versions) || len(got.Relations) != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !blocksEqual(got.Relations[0].Cols, ck.Relations[0].Cols) {
		t.Fatal("relation columns mismatch")
	}

	// An injected pre-fsync crash leaves only a .tmp that recovery ignores.
	ck2 := &Checkpoint{LSN: 9, Versions: ivm.VersionVector{"sales": 9}}
	if err := WriteCheckpoint(dir, ck2, true); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("failBeforeSync err = %v", err)
	}
	got, err = LatestCheckpoint(dir)
	if err != nil || got == nil || got.LSN != 7 {
		t.Fatalf("after torn checkpoint: %+v, %v", got, err)
	}

	// A corrupted newest checkpoint falls back to the previous one.
	ck3 := &Checkpoint{LSN: 11, Versions: ivm.VersionVector{"sales": 11}}
	if err := WriteCheckpoint(dir, ck3, false); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ckptName(11))
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = LatestCheckpoint(dir)
	if err != nil || got == nil || got.LSN != 7 {
		t.Fatalf("fallback checkpoint: %+v, %v", got, err)
	}

	// Prune keeps the newest files (by LSN) and clears .tmp litter.
	if err := WriteCheckpoint(dir, &Checkpoint{LSN: 13}, false); err != nil {
		t.Fatal(err)
	}
	if err := PruneCheckpoints(dir, 2); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("after prune: %v", names)
	}
}
