// Package wal is the durability layer: a global-ordered write-ahead log of
// base-relation deltas plus periodic checkpoints of the maintained state,
// giving sessions crash recovery without re-ingesting history.
//
// The log is a sequence of segment files of length-prefixed, CRC-32C
// checksummed records, each carrying one data.Delta tagged with a
// monotonically increasing log sequence number (LSN). Appends are fsynced
// per a configurable policy (every commit by default) and segments rotate at
// a size bound. A checkpoint durably snapshots the session's full state —
// base-relation contents and versions, the materialized view DAG, and the
// ivm.VersionVector it reflects — through a specific LSN, written to a
// temporary file and atomically renamed so a half-written checkpoint is
// never mistaken for a valid one.
//
// Recovery is checkpoint-plus-suffix: load the newest checkpoint that
// validates, then replay the log records with larger LSNs through the normal
// maintenance path (lmfao.RecoverSession). Open validates the record stream
// and truncates everything from the first invalid record onward — a torn
// tail from a crash mid-append, or a record whose checksum no longer
// matches — so a recovered log always resumes from its last committed
// prefix.
//
// The writer carries injectable crash points (Log.CrashAfterAppends, the
// failBeforeSync flag of WriteCheckpoint) so the kill-and-recover oracle in
// internal/oracletest can stop it at arbitrary, adversarial moments: after N
// records with the next one torn mid-frame, or after a checkpoint's bytes
// are written but before they are fsynced and committed.
package wal

import "errors"

// Errors reported by the record codec and the log writer. Decode errors
// distinguish an incomplete frame (ErrTruncated — the committed prefix ends
// here) from a complete frame whose payload fails its checksum
// (ErrChecksum) and from structurally invalid payloads (ErrCorrupt);
// recovery treats all three as the end of the committed prefix.
var (
	// ErrTruncated marks an incomplete record frame (a torn tail).
	ErrTruncated = errors.New("wal: truncated record")
	// ErrChecksum marks a complete frame whose payload checksum mismatches.
	ErrChecksum = errors.New("wal: record checksum mismatch")
	// ErrCorrupt marks a structurally invalid record or checkpoint payload.
	ErrCorrupt = errors.New("wal: corrupt data")
	// ErrInjectedCrash is returned by armed crash points (testing): the
	// writer behaves as if the process died at that instant — partial bytes
	// may be on disk, and every later operation fails with the same error.
	ErrInjectedCrash = errors.New("wal: injected crash")
)

// Options configure a Log.
type Options struct {
	// SegmentBytes rotates the active segment once its size reaches this
	// bound (default DefaultSegmentBytes). Rotation syncs and closes the old
	// segment; a record never spans segments.
	SegmentBytes int64
	// SyncEvery fsyncs the active segment every Nth append. 1 (the default)
	// is fsync-on-commit: every Append is durable when it returns. Larger
	// values trade the durability of up to N-1 trailing appends for
	// throughput; checkpoints always sync the log first, so a checkpoint
	// never covers records that could still be lost.
	SyncEvery int
}

// DefaultSegmentBytes is the segment rotation bound used when
// Options.SegmentBytes is unset.
const DefaultSegmentBytes = 4 << 20

func (o Options) norm() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SyncEvery < 1 {
		o.SyncEvery = 1
	}
	return o
}
