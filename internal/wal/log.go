package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/data"
)

// segment is one on-disk log file. firstLSN (from the filename) is the LSN
// the segment's first record would carry; validBytes is the length of its
// committed prefix as established by Open's scan and extended by appends.
type segment struct {
	path       string
	firstLSN   uint64
	validBytes int64
}

// Log is a single-writer, global-ordered write-ahead log of base-relation
// deltas. All mutating methods (Append, Sync, Close, Abort) must be called
// from one goroutine — the DurableSession worker; LastLSN and
// CrashAfterAppends are safe from any goroutine.
type Log struct {
	dir  string
	opts Options

	segs      []segment
	f         *os.File
	lsn       uint64
	lastLSN   atomic.Uint64
	segBytes  int64
	sinceSync int
	buf       []byte

	// failAfter is the injected-crash countdown: the append that finds it at
	// zero writes a torn frame prefix and wedges the log. Negative = armed
	// off.
	failAfter atomic.Int64
	wedged    error
}

const segSuffix = ".wal"

func segName(firstLSN uint64) string {
	return fmt.Sprintf("seg-%016x%s", firstLSN, segSuffix)
}

// Open opens (or creates) the log in dir. It scans every segment in LSN
// order, validating frames and strictly ascending LSNs; at the first invalid
// or torn record it truncates that segment to its committed prefix and
// deletes all later segments, so the log resumes exactly from its last
// committed state. An empty or missing dir yields a fresh log whose first
// record will carry LSN 1.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.norm()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	l.failAfter.Store(-1)
	segs, err := scanSegments(dir)
	if err != nil {
		return nil, err
	}
	for i := range segs {
		seg := &segs[i]
		b, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, err
		}
		off, last, ok := validPrefix(b, l.lsn)
		seg.validBytes = int64(off)
		l.lsn = last
		l.segs = append(l.segs, *seg)
		if !ok || off < len(b) {
			// Torn or corrupt tail: cut this segment to its committed
			// prefix and drop everything after it.
			if err := os.Truncate(seg.path, seg.validBytes); err != nil {
				return nil, err
			}
			for _, later := range segs[i+1:] {
				if err := os.Remove(later.path); err != nil {
					return nil, err
				}
			}
			break
		}
	}
	if len(l.segs) == 0 {
		if err := l.newSegment(l.lsn + 1); err != nil {
			return nil, err
		}
	} else {
		active := &l.segs[len(l.segs)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		l.f = f
		l.segBytes = active.validBytes
	}
	l.lastLSN.Store(l.lsn)
	return l, nil
}

// scanSegments lists dir's segment files sorted by their first LSN.
func scanSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), segSuffix), 16, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segment{path: filepath.Join(dir, name), firstLSN: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	return segs, nil
}

// validPrefix scans b for its longest valid record prefix: records must
// decode cleanly and carry LSNs strictly greater than prev (gaps are legal —
// an unsynced tail can be lost while a checkpoint still covers its LSNs).
// It returns the prefix length in bytes, the last LSN seen, and whether the
// whole buffer validated.
func validPrefix(b []byte, prev uint64) (off int, last uint64, ok bool) {
	last = prev
	for off < len(b) {
		rec, n, err := DecodeRecord(b[off:])
		if err != nil || rec.LSN <= last {
			return off, last, false
		}
		last = rec.LSN
		off += n
	}
	return off, last, true
}

func (l *Log) newSegment(firstLSN uint64) error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
	}
	path := filepath.Join(l.dir, segName(firstLSN))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segs = append(l.segs, segment{path: path, firstLSN: firstLSN})
	l.segBytes = 0
	return nil
}

// Append frames d as the next record, writes it to the active segment and
// fsyncs per the SyncEvery policy, returning the record's LSN. Once an
// append fails — an injected crash or a real I/O error — the log is wedged:
// the record is not committed and every later operation returns the same
// error.
func (l *Log) Append(d data.Delta) (uint64, error) {
	if l.wedged != nil {
		return 0, l.wedged
	}
	if err := validDelta(d); err != nil {
		return 0, err
	}
	l.buf = AppendRecord(l.buf[:0], Record{LSN: l.lsn + 1, Delta: d})
	if n := l.failAfter.Load(); n >= 0 {
		if n == 0 {
			// Injected crash mid-append: leave a torn frame prefix on disk,
			// exactly what a process death between write and completion
			// leaves behind, then wedge.
			torn := l.buf[:max(1, len(l.buf)/2)]
			_, _ = l.f.Write(torn)
			_ = l.f.Sync()
			l.wedged = ErrInjectedCrash
			return 0, ErrInjectedCrash
		}
		l.failAfter.Store(n - 1)
	}
	if l.segBytes >= l.opts.SegmentBytes {
		if err := l.newSegment(l.lsn + 1); err != nil {
			l.wedged = err
			return 0, err
		}
	}
	if _, err := l.f.Write(l.buf); err != nil {
		l.wedged = err
		return 0, err
	}
	l.lsn++
	l.lastLSN.Store(l.lsn)
	l.segBytes += int64(len(l.buf))
	l.segs[len(l.segs)-1].validBytes += int64(len(l.buf))
	l.sinceSync++
	if l.sinceSync >= l.opts.SyncEvery {
		if err := l.f.Sync(); err != nil {
			l.wedged = err
			return 0, err
		}
		l.sinceSync = 0
	}
	return l.lsn, nil
}

// Sync fsyncs the active segment, making every appended record durable.
func (l *Log) Sync() error {
	if l.wedged != nil {
		return l.wedged
	}
	if l.sinceSync == 0 {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.wedged = err
		return err
	}
	l.sinceSync = 0
	return nil
}

// LastLSN returns the LSN of the last committed record (0 if none). Safe
// from any goroutine.
func (l *Log) LastLSN() uint64 { return l.lastLSN.Load() }

// AdvanceLSN raises the next-LSN watermark so future appends are numbered
// after `to`. Recovery calls it with the checkpoint LSN: a checkpoint can
// cover records whose log tail was lost, and their LSNs must not be reused.
func (l *Log) AdvanceLSN(to uint64) {
	if to > l.lsn {
		l.lsn = to
		l.lastLSN.Store(to)
	}
}

// Replay invokes fn for every committed record with LSN > after, in log
// order, stopping at fn's first error.
func (l *Log) Replay(after uint64, fn func(Record) error) error {
	for _, seg := range l.segs {
		b, err := os.ReadFile(seg.path)
		if err != nil {
			return err
		}
		if int64(len(b)) > seg.validBytes {
			b = b[:seg.validBytes]
		}
		off := 0
		for off < len(b) {
			rec, n, err := DecodeRecord(b[off:])
			if err != nil {
				return fmt.Errorf("wal: replay of committed prefix failed: %w", err)
			}
			off += n
			if rec.LSN <= after {
				continue
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// CrashAfterAppends arms the injected-crash failpoint: the next n appends
// succeed, then the following one writes a torn frame prefix and wedges the
// log with ErrInjectedCrash. Safe from any goroutine; testing only.
func (l *Log) CrashAfterAppends(n int) {
	l.failAfter.Store(int64(n))
}

// Close syncs the active segment and closes it. The wedged error, if any,
// is returned but the file is closed regardless.
func (l *Log) Close() error {
	err := l.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abort closes the active segment WITHOUT a final sync — the shutdown path
// of a simulated crash (DurableSession.Kill), leaving on disk only what the
// sync policy already committed.
func (l *Log) Abort() error {
	return l.f.Close()
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
