package serve

import (
	"net"
	"net/http"
	"sync"
	"time"
)

// AdmissionOptions configures the server's admission control: how much
// expensive work (requeries, model fits, maintenance writes) each tenant may
// push through before the server starts shedding. Cheap snapshot reads are
// never limited — they are lock-free pointer loads and the whole point of
// the snapshot architecture is that reads stay cheap under write pressure.
type AdmissionOptions struct {
	// TenantRate is the sustained token refill rate, in expensive requests
	// per second, of each tenant's token bucket (0 disables rate limiting).
	// Tenants are identified by the X-Lmfao-Tenant header, falling back to
	// the client host.
	TenantRate float64
	// TenantBurst is the bucket capacity — how many expensive requests a
	// tenant may burst before the rate applies (default 8 when rate > 0).
	TenantBurst int
	// MaxRequeries bounds concurrently executing requeries/refinements
	// (default 2). Requeries serialize with maintenance per shard, so a
	// requery storm would stall the write path; excess fresh reads degrade
	// to the published snapshot and excess explicit requeries get 429.
	MaxRequeries int
	// MaxPendingApplies bounds in-flight asynchronous maintenance rounds
	// (default 16). When the backlog is full, async applies get 429 with
	// Retry-After instead of growing an unbounded queue.
	MaxPendingApplies int

	// now overrides the clock for tests.
	now func() time.Time
}

func (o AdmissionOptions) norm() AdmissionOptions {
	if o.TenantBurst <= 0 {
		o.TenantBurst = 8
	}
	if o.MaxRequeries <= 0 {
		o.MaxRequeries = 2
	}
	if o.MaxPendingApplies <= 0 {
		o.MaxPendingApplies = 16
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// admission holds the server's admission-control state: per-tenant token
// buckets plus two semaphores bounding the expensive work classes.
type admission struct {
	opts AdmissionOptions

	mu      sync.Mutex
	buckets map[string]*bucket

	requerySem chan struct{}
	applySem   chan struct{}
}

func newAdmission(opts AdmissionOptions) *admission {
	opts = opts.norm()
	return &admission{
		opts:       opts,
		buckets:    make(map[string]*bucket),
		requerySem: make(chan struct{}, opts.MaxRequeries),
		applySem:   make(chan struct{}, opts.MaxPendingApplies),
	}
}

// tenant extracts the caller's tenant identity: the X-Lmfao-Tenant header,
// else the client host (stable across one client's connections).
func tenant(r *http.Request) string {
	if t := r.Header.Get("X-Lmfao-Tenant"); t != "" {
		return t
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// allow takes one token from the tenant's bucket, reporting false when the
// tenant is over its rate. With rate limiting disabled it always admits.
func (a *admission) allow(tenant string) bool {
	if a.opts.TenantRate <= 0 {
		return true
	}
	now := a.opts.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: float64(a.opts.TenantBurst), last: now}
		a.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * a.opts.TenantRate
	b.last = now
	if cap := float64(a.opts.TenantBurst); b.tokens > cap {
		b.tokens = cap
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// tryRequery claims a requery slot without blocking; the caller must invoke
// the returned release exactly once. ok=false means the refinement tier is
// saturated — degrade to the snapshot or reject, per endpoint policy.
func (a *admission) tryRequery() (release func(), ok bool) {
	select {
	case a.requerySem <- struct{}{}:
		return func() { <-a.requerySem }, true
	default:
		return nil, false
	}
}

// tryApply claims an async-apply backlog slot without blocking; the caller
// must invoke the returned release exactly once (when the round commits).
func (a *admission) tryApply() (release func(), ok bool) {
	select {
	case a.applySem <- struct{}{}:
		return func() { <-a.applySem }, true
	default:
		return nil, false
	}
}

// pendingApplies reports the current async backlog depth.
func (a *admission) pendingApplies() int { return len(a.applySem) }
