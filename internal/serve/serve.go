// Package serve is the network serving tier: it exposes the full serving
// contract — snapshot reads, Requery refinement, the five application
// workloads, and maintenance ingest — over HTTP/JSON, against any
// lmfao.Maintainer (Session, ShardedSession, or their durable variants).
//
// The design mirrors the layered engine underneath. Reads
// (/v1/results, /v1/lookup, metadata) hit the latest published snapshot —
// lock-free, never blocked by maintenance — and always carry the snapshot's
// publication epochs in the X-Lmfao-Epoch header. Expensive work (ad-hoc
// requeries, ?fresh=1 refinement, model fits, maintenance writes) passes
// admission control: per-tenant token buckets plus two semaphores bounding
// concurrent requeries and the async-apply backlog. Under saturation the
// server sheds load by DEGRADING, not erroring: a fresh read that cannot
// claim a requery slot (or whose tenant is over rate) falls back to the last
// published snapshot with X-Lmfao-Degraded: 1 — a 200 with explicit
// staleness, never a 5xx storm. Only explicitly-fresh work with no snapshot
// fallback (POST /v1/requery, async applies over backlog) gets 429 with
// Retry-After. A closed maintainer yields 503 on writes while every read
// keeps serving the final published snapshot.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	lmfao "repro"
	"repro/internal/query"
)

// Config assembles a Server.
type Config struct {
	// DB is the database the maintainer serves (schema for meta, update
	// decoding and requery parsing).
	DB *lmfao.Database
	// Maintainer is the serving backend; reads go through its Snapshot.
	Maintainer lmfao.Maintainer
	// Queries is the served batch, in batch order (metadata + result
	// naming; must match what Maintainer maintains).
	Queries []*lmfao.Query
	// Apps optionally registers application endpoints over batch windows.
	Apps *Apps
	// Admission tunes admission control (zero value = defaults).
	Admission AdmissionOptions
	// MaxResultRows caps /v1/results row dumps (default 1000, <0 = no cap).
	MaxResultRows int
}

// Server is the HTTP serving tier over one Maintainer. It implements
// http.Handler; mount it on any mux or pass it to http.Server directly.
type Server struct {
	db      *lmfao.Database
	m       lmfao.Maintainer
	queries []*lmfao.Query
	apps    *Apps
	adm     *admission
	cache   modelCache
	maxRows int

	// shedded counts degraded reads served (observability).
	shedded atomic.Uint64
}

// NewServer validates cfg and builds the serving tier.
func NewServer(cfg Config) (*Server, error) {
	if cfg.DB == nil || cfg.Maintainer == nil {
		return nil, fmt.Errorf("serve: Config needs DB and Maintainer")
	}
	maxRows := cfg.MaxResultRows
	if maxRows == 0 {
		maxRows = 1000
	}
	if maxRows < 0 {
		maxRows = 0
	}
	return &Server{
		db:      cfg.DB,
		m:       cfg.Maintainer,
		queries: cfg.Queries,
		apps:    cfg.Apps,
		adm:     newAdmission(cfg.Admission),
		maxRows: maxRows,
	}, nil
}

// Shedded returns how many reads were served degraded (from the snapshot
// after a failed admission) since the server started.
func (s *Server) Shedded() uint64 { return s.shedded.Load() }

// ServeHTTP routes the serving API. Paths are matched manually (the module
// targets Go 1.21, which predates method patterns in ServeMux).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		s.handleHealth(w, r)
	case path == "/v1/meta":
		s.handleMeta(w, r)
	case path == "/v1/versions":
		s.handleVersions(w, r)
	case path == "/v1/epochs":
		s.handleEpochs(w, r)
	case path == "/v1/stats":
		s.handleStats(w, r)
	case strings.HasPrefix(path, "/v1/results/"):
		s.handleResult(w, r, strings.TrimPrefix(path, "/v1/results/"))
	case path == "/v1/lookup":
		s.handleLookup(w, r)
	case path == "/v1/requery":
		s.handleRequery(w, r)
	case path == "/v1/apply":
		s.handleApply(w, r)
	case strings.HasPrefix(path, "/v1/models/"):
		s.handleModels(w, r, strings.TrimPrefix(path, "/v1/models/"))
	default:
		writeError(w, http.StatusNotFound, "no route for %s", path)
	}
}

// snapshot returns the latest published snapshot, or nil before first Run.
func (s *Server) snapshot() lmfao.Queryable { return s.m.Snapshot() }

// requireSnapshot fetches the snapshot or writes the one 503 the read path
// can produce: the maintainer has never published (nothing to serve at all).
func (s *Server) requireSnapshot(w http.ResponseWriter) (lmfao.Queryable, bool) {
	sn := s.snapshot()
	if sn == nil {
		writeError(w, http.StatusServiceUnavailable, "no snapshot published yet (run the batch first)")
		return nil, false
	}
	w.Header().Set("X-Lmfao-Epoch", epochHeader(epochsOf(sn)))
	return sn, true
}

// degrade marks the response as shed: served from the last published
// snapshot instead of the fresh path the caller asked for.
func (s *Server) degrade(w http.ResponseWriter, reason string) {
	s.shedded.Add(1)
	w.Header().Set("X-Lmfao-Degraded", "1")
	w.Header().Set("X-Lmfao-Degraded-Reason", reason)
}

// handleHealth reports liveness and the published epochs.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	sn := s.snapshot()
	resp := map[string]any{"ok": true, "published": sn != nil}
	if sn != nil {
		resp["epochs"] = epochsOf(sn)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMeta describes the schema, the served batch and registered apps.
func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	resp := metaResponse{Apps: s.apps.Names(), Shards: 1}
	if sn, ok := s.snapshot().(*lmfao.ShardedSnapshot); ok {
		resp.Shards = sn.NumShards()
	}
	for _, rel := range s.db.Relations() {
		rm := relationMeta{Name: rel.Name, Rows: rel.Len()}
		for _, id := range rel.Attrs {
			a := s.db.Attribute(id)
			rm.Attrs = append(rm.Attrs, attrMeta{Name: a.Name, Kind: kindName(a.Kind)})
		}
		resp.Relations = append(resp.Relations, rm)
	}
	for i, q := range s.queries {
		resp.Queries = append(resp.Queries, queryMeta{
			Index: i, Name: q.Name,
			GroupBy: s.db.AttrNames(q.GroupBy),
			Aggs:    q.NumCols(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleVersions serves the snapshot's base-relation version metadata.
func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request) {
	sn, ok := s.requireSnapshot(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"versions": sn.Versions()})
}

// handleEpochs serves the snapshot's publication epochs.
func (s *Server) handleEpochs(w http.ResponseWriter, r *http.Request) {
	sn, ok := s.requireSnapshot(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"epochs": epochsOf(sn)})
}

// handleStats serves maintainer fan-out counters when available, plus the
// serving tier's own shed counter and backlog depth.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"shedded":        s.shedded.Load(),
		"pendingApplies": s.adm.pendingApplies(),
	}
	if st, ok := s.m.(interface{ Stats() lmfao.ShardedStats }); ok {
		resp["maintainer"] = st.Stats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleResult dumps one query's materialized view. With ?fresh=1 the view
// is recomputed through the Requerier hook under requery admission; when
// admission fails the endpoint degrades to the snapshot view.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request, rest string) {
	idx, err := strconv.Atoi(rest)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad query index %q", rest)
		return
	}
	sn, ok := s.requireSnapshot(w)
	if !ok {
		return
	}
	if idx < 0 || idx >= sn.NumQueries() {
		writeError(w, http.StatusNotFound, "query index %d out of range (batch has %d queries)", idx, sn.NumQueries())
		return
	}
	name := ""
	var aggs int
	if idx < len(s.queries) {
		name = s.queries[idx].Name
		aggs = s.queries[idx].NumCols()
	}
	fresh := r.URL.Query().Get("fresh") != ""
	if fresh {
		v, ok := s.freshResult(w, r, sn, idx)
		if ok {
			if aggs == 0 {
				aggs = v.Stride
			}
			writeJSON(w, http.StatusOK, viewToResponse(s.db, idx, name, v, aggs, epochsOf(sn), true, s.maxRows))
			return
		}
		// Admission failed: fall through and serve the snapshot, degraded.
	}
	v := sn.Result(idx)
	if v == nil {
		writeError(w, http.StatusInternalServerError, "query %d has no materialized view", idx)
		return
	}
	if aggs == 0 {
		aggs = v.Stride
	}
	writeJSON(w, http.StatusOK, viewToResponse(s.db, idx, name, v, aggs, epochsOf(sn), false, s.maxRows))
}

// freshResult recomputes query idx through the snapshot's Requerier hook,
// under rate and concurrency admission. ok=false means the caller should
// degrade to the snapshot (headers already set); a hard requery error also
// degrades — the snapshot is the fallback for every fresh-path failure.
func (s *Server) freshResult(w http.ResponseWriter, r *http.Request, sn lmfao.Queryable, idx int) (*lmfao.Result, bool) {
	rq, isRq := sn.(lmfao.Requerier)
	if !isRq || idx >= len(s.queries) {
		s.degrade(w, "no-requerier")
		return nil, false
	}
	if !s.adm.allow(tenant(r)) {
		s.degrade(w, "rate")
		return nil, false
	}
	release, ok := s.adm.tryRequery()
	if !ok {
		s.degrade(w, "requery-saturated")
		return nil, false
	}
	defer release()
	res, err := rq.Requery([]*lmfao.Query{s.queries[idx]})
	if err != nil || len(res) != 1 {
		s.degrade(w, "requery-failed")
		return nil, false
	}
	return res[0], true
}

// handleLookup serves one group's aggregate row: GET with ?query=&key=a,b,c
// or POST with a lookupRequest body. Out-of-range indices are rejected
// before touching the snapshot (Snapshot.Lookup indexes by queryIdx).
func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	var req lookupRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		idx, err := strconv.Atoi(q.Get("query"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad ?query=%q", q.Get("query"))
			return
		}
		key, err := parseKeyCSV(q.Get("key"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad ?key: %v", err)
			return
		}
		req = lookupRequest{Query: idx, Key: key}
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad lookup body: %v", err)
			return
		}
	default:
		writeError(w, http.StatusMethodNotAllowed, "lookup wants GET or POST")
		return
	}
	sn, ok := s.requireSnapshot(w)
	if !ok {
		return
	}
	if req.Query < 0 || req.Query >= sn.NumQueries() {
		writeError(w, http.StatusNotFound, "query index %d out of range (batch has %d queries)", req.Query, sn.NumQueries())
		return
	}
	vals, found := sn.Lookup(req.Query, req.Key...)
	writeJSON(w, http.StatusOK, lookupResponse{
		Query: req.Query, Key: req.Key, OK: found, Values: vals,
		Epochs: epochsOf(sn),
	})
}

// handleRequery evaluates ad-hoc queries (compact wire syntax) through the
// Requerier hook. Requeries have no snapshot fallback — the caller asked
// for a batch the snapshot does not hold — so saturation is a 429 with
// Retry-After, and rate-limited tenants get 429 too.
func (s *Server) handleRequery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "requery wants POST")
		return
	}
	var req requeryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad requery body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "requery body has no queries")
		return
	}
	queries := make([]*lmfao.Query, len(req.Queries))
	for i, qs := range req.Queries {
		q, err := query.Parse(s.db, qs)
		if err != nil {
			writeError(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
		queries[i] = q
	}
	sn, ok := s.requireSnapshot(w)
	if !ok {
		return
	}
	rq, isRq := sn.(lmfao.Requerier)
	if !isRq {
		writeError(w, http.StatusNotImplemented, "snapshot has no requery hook")
		return
	}
	if !s.adm.allow(tenant(r)) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "tenant over requery rate")
		return
	}
	release, ok := s.adm.tryRequery()
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "requery tier saturated (%d in flight)", cap(s.adm.requerySem))
		return
	}
	defer release()
	res, err := rq.Requery(queries)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "requery: %v", err)
		return
	}
	resp := requeryResponse{Results: make([]resultResponse, len(res))}
	for i, v := range res {
		resp.Results[i] = viewToResponse(s.db, i, queries[i].Name, v, queries[i].NumCols(), epochsOf(sn), true, s.maxRows)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleApply ingests one maintenance round. Default is synchronous: the
// response reports the committed round. ?mode=async enqueues through
// ApplyAsync under backlog admission and returns 202; a full backlog is 429
// with Retry-After. A closed maintainer is 503 in both modes.
func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "apply wants POST")
		return
	}
	var req applyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad apply body: %v", err)
		return
	}
	if len(req.Updates) == 0 {
		writeError(w, http.StatusBadRequest, "apply body has no updates")
		return
	}
	updates, err := decodeUpdates(s.db, req.Updates)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.adm.allow(tenant(r)) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "tenant over write rate")
		return
	}
	if r.URL.Query().Get("mode") == "async" {
		release, ok := s.adm.tryApply()
		if !ok {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "apply backlog full (%d pending)", s.adm.pendingApplies())
			return
		}
		ch := s.m.ApplyAsync(updates...)
		go func() {
			defer release()
			<-ch
		}()
		writeJSON(w, http.StatusAccepted, applyAsyncResponse{Accepted: true, Pending: s.adm.pendingApplies()})
		return
	}
	stats, err := s.m.Apply(updates...)
	if err != nil {
		s.writeApplyError(w, err)
		return
	}
	incremental := len(stats) > 0
	for _, st := range stats {
		if st != nil && !st.Incremental {
			incremental = false
		}
	}
	resp := applyResponse{Applied: len(updates), Incremental: incremental}
	if sn := s.snapshot(); sn != nil {
		resp.Epochs = epochsOf(sn)
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeApplyError maps a maintenance error onto HTTP: a closed (or wedged
// durable) maintainer is 503 — the backend is permanently or persistently
// unavailable, not the request's fault — and anything else is 500.
func (s *Server) writeApplyError(w http.ResponseWriter, err error) {
	if errors.Is(err, lmfao.ErrSessionClosed) {
		writeError(w, http.StatusServiceUnavailable, "maintainer closed: %v", err)
		return
	}
	if dw, ok := s.m.(interface{ Wedged() error }); ok && dw.Wedged() != nil {
		writeError(w, http.StatusServiceUnavailable, "maintainer wedged: %v", err)
		return
	}
	writeError(w, http.StatusInternalServerError, "apply: %v", err)
}

// handleModels routes /v1/models/{app}[/fit|/predict].
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request, rest string) {
	parts := strings.SplitN(rest, "/", 2)
	app := parts[0]
	action := ""
	if len(parts) == 2 {
		action = parts[1]
	}
	if s.apps == nil {
		writeError(w, http.StatusNotFound, "no applications registered")
		return
	}
	switch action {
	case "fit":
		s.handleFit(w, r, app)
	case "predict":
		s.handlePredict(w, r, app)
	case "":
		writeJSON(w, http.StatusOK, map[string]any{"apps": s.apps.Names()})
	default:
		writeError(w, http.StatusNotFound, "no model action %q (want fit or predict)", action)
	}
}

// handleFit re-fits one application's model from the latest snapshot.
// Fitting is expensive (matrix solves, tree search with requeries), so it
// passes rate admission; models are cached per epoch vector, and a cache
// hit skips admission entirely — it does no work.
func (s *Server) handleFit(w http.ResponseWriter, r *http.Request, app string) {
	if r.Method != http.MethodPost && r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "fit wants POST")
		return
	}
	sn, ok := s.requireSnapshot(w)
	if !ok {
		return
	}
	epochs := epochsOf(sn)
	ekey := epochHeader(epochs)
	if v, hit := s.cache.get(app, ekey); hit {
		writeJSON(w, http.StatusOK, v)
		return
	}
	if !s.adm.allow(tenant(r)) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "tenant over fit rate")
		return
	}
	resp, status, err := s.fit(sn, app, epochs)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	s.cache.put(app, ekey, resp)
	writeJSON(w, http.StatusOK, resp)
}

// fit dispatches to the application entry points over the app's batch
// window. The returned status is only meaningful when err != nil.
func (s *Server) fit(sn lmfao.Queryable, app string, epochs []uint64) (any, int, error) {
	window := func(win Window) (lmfao.Queryable, error) {
		return lmfao.SubQueryable(sn, win.Lo, win.Hi)
	}
	switch app {
	case "linreg":
		if s.apps.LinReg == nil {
			return nil, http.StatusNotFound, fmt.Errorf("linreg not registered")
		}
		q, err := window(s.apps.LinReg.Win)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		m, err := lmfao.LearnLinearRegressionClosedFormFrom(q, s.db, s.apps.LinReg.Spec)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		names := make([]string, len(m.Features))
		for i, f := range m.Features {
			names[i] = f.Name
		}
		return linregModelWire{Features: names, Theta: m.Theta, FinalLoss: m.FinalLoss, Epochs: epochs}, 0, nil
	case "polyreg":
		if s.apps.PolyReg == nil {
			return nil, http.StatusNotFound, fmt.Errorf("polyreg not registered")
		}
		q, err := window(s.apps.PolyReg.Win)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		m, err := lmfao.LearnPolynomialRegressionFrom(q, s.db, s.apps.PolyReg.Spec)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		return polyModelWire{Monomials: len(m.Monomials), Theta: m.Theta, Epochs: epochs}, 0, nil
	case "tree":
		if s.apps.Tree == nil {
			return nil, http.StatusNotFound, fmt.Errorf("tree not registered")
		}
		// The tree learner drives the Requerier hook node by node; hold one
		// requery slot for the whole fit so tree learning counts against
		// the refinement tier like any other fresh work.
		release, ok := s.adm.tryRequery()
		if !ok {
			return nil, http.StatusTooManyRequests, fmt.Errorf("requery tier saturated; retry later")
		}
		defer release()
		m, err := lmfao.LearnDecisionTreeFrom(sn, s.db, s.apps.Tree.Spec)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		return treeModelWire{Nodes: m.Nodes, Depth: treeDepth(m.Root), Epochs: epochs}, 0, nil
	case "chowliu":
		if s.apps.ChowLiu == nil {
			return nil, http.StatusNotFound, fmt.Errorf("chowliu not registered")
		}
		q, err := window(s.apps.ChowLiu.Win)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		mi, edges, err := lmfao.LearnChowLiuTreeFrom(q, s.db, s.apps.ChowLiu.Attrs)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		wireEdges := make([]chowliuEdge, len(edges))
		for i, e := range edges {
			wireEdges[i] = chowliuEdge{I: e.I, J: e.J, Weight: e.Weight}
		}
		return chowliuWire{Attrs: s.db.AttrNames(mi.Attrs), Edges: wireEdges, Epochs: epochs}, 0, nil
	case "cube":
		if s.apps.Cube == nil {
			return nil, http.StatusNotFound, fmt.Errorf("cube not registered")
		}
		q, err := window(s.apps.Cube.Win)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		cr, err := lmfao.ComputeDataCubeFrom(q, s.db, s.apps.Cube.Spec)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		flat := cr.Flatten()
		n := len(flat)
		if s.maxRows > 0 && n > s.maxRows {
			n = s.maxRows
		}
		rows := make([]resultRow, n)
		for i := 0; i < n; i++ {
			rows[i] = resultRow{Key: flat[i].Dims, Values: flat[i].Values}
		}
		return cubeWire{
			Dims:     s.db.AttrNames(s.apps.Cube.Spec.Dims),
			Measures: s.db.AttrNames(s.apps.Cube.Spec.Measures),
			Rows:     len(flat),
			Data:     rows,
			Epochs:   epochs,
		}, 0, nil
	}
	return nil, http.StatusNotFound, fmt.Errorf("unknown application %q", app)
}

// handlePredict evaluates a fitted predictor on one input tuple. The model
// comes from the epoch cache, fitting on miss, so the first predict after a
// maintenance round pays one fit and the rest are pure evaluations.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, app string) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "predict wants POST")
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad predict body: %v", err)
		return
	}
	sn, ok := s.requireSnapshot(w)
	if !ok {
		return
	}
	epochs := epochsOf(sn)
	ekey := epochHeader(epochs)
	cached, hit := s.cache.get(app+"/model", ekey)
	if !hit {
		m, status, err := s.fitPredictor(sn, app)
		if err != nil {
			writeError(w, status, "%v", err)
			return
		}
		s.cache.put(app+"/model", ekey, m)
		cached = m
	}
	flat, err := rowRelation(s.db, req.Row)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var pred float64
	switch m := cached.(type) {
	case *lmfao.LinRegModel:
		pred, err = m.PredictRow(flat, 0)
	case *lmfao.PolyModel:
		pred, err = m.PredictRow(flat, 0)
	case *lmfao.TreeModel:
		pred, err = m.PredictRow(flat, 0)
	default:
		writeError(w, http.StatusNotFound, "application %q has no predictor", app)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "predict: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{Prediction: pred, Epochs: epochs})
}

// fitPredictor fits the raw model object (not the wire rendering) for the
// predict path. Only the three predictors are valid here.
func (s *Server) fitPredictor(sn lmfao.Queryable, app string) (any, int, error) {
	switch app {
	case "linreg":
		if s.apps == nil || s.apps.LinReg == nil {
			return nil, http.StatusNotFound, fmt.Errorf("linreg not registered")
		}
		q, err := lmfao.SubQueryable(sn, s.apps.LinReg.Win.Lo, s.apps.LinReg.Win.Hi)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		m, err := lmfao.LearnLinearRegressionClosedFormFrom(q, s.db, s.apps.LinReg.Spec)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		return m, 0, nil
	case "polyreg":
		if s.apps == nil || s.apps.PolyReg == nil {
			return nil, http.StatusNotFound, fmt.Errorf("polyreg not registered")
		}
		q, err := lmfao.SubQueryable(sn, s.apps.PolyReg.Win.Lo, s.apps.PolyReg.Win.Hi)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		m, err := lmfao.LearnPolynomialRegressionFrom(q, s.db, s.apps.PolyReg.Spec)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		return m, 0, nil
	case "tree":
		if s.apps == nil || s.apps.Tree == nil {
			return nil, http.StatusNotFound, fmt.Errorf("tree not registered")
		}
		release, ok := s.adm.tryRequery()
		if !ok {
			return nil, http.StatusTooManyRequests, fmt.Errorf("requery tier saturated; retry later")
		}
		defer release()
		m, err := lmfao.LearnDecisionTreeFrom(sn, s.db, s.apps.Tree.Spec)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		return m, 0, nil
	}
	return nil, http.StatusNotFound, fmt.Errorf("application %q has no predictor", app)
}
