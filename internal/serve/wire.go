package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	lmfao "repro"
	"repro/internal/data"
)

// This file defines the JSON wire format of every endpoint and the decoding
// of update payloads into the engine's columnar Delta representation.

// errorBody is the uniform error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

// lookupRequest asks for one group's aggregate row of one batch query.
type lookupRequest struct {
	Query int     `json:"query"`
	Key   []int64 `json:"key"`
}

// lookupResponse returns the row (exactly the query's aggregates, query
// order) and whether the group exists in the snapshot.
type lookupResponse struct {
	Query  int       `json:"query"`
	Key    []int64   `json:"key"`
	OK     bool      `json:"ok"`
	Values []float64 `json:"values,omitempty"`
	Epochs []uint64  `json:"epochs"`
}

// resultResponse dumps one query's materialized view.
type resultResponse struct {
	Query   int         `json:"query"`
	Name    string      `json:"name,omitempty"`
	GroupBy []string    `json:"groupBy"`
	Aggs    int         `json:"aggs"`
	Rows    int         `json:"rows"`
	Data    []resultRow `json:"data"`
	Epochs  []uint64    `json:"epochs"`
	Fresh   bool        `json:"fresh"`
}

// resultRow is one group of a materialized view.
type resultRow struct {
	Key    []int64   `json:"key"`
	Values []float64 `json:"values"`
}

// requeryRequest carries ad-hoc queries in the compact wire syntax
// understood by the query parser: `name(attr, ...; SUM term, ...)`.
type requeryRequest struct {
	Queries []string `json:"queries"`
}

// requeryResponse returns one materialized view per ad-hoc query.
type requeryResponse struct {
	Results []resultResponse `json:"results"`
}

// updateWire is one relation's insert/delete batch, row-major: every row
// lists the relation's attribute values in schema order (integers for
// key/categorical attributes, numbers for numeric ones).
type updateWire struct {
	Relation string      `json:"relation"`
	Inserts  [][]float64 `json:"inserts,omitempty"`
	Deletes  [][]float64 `json:"deletes,omitempty"`
}

// applyRequest carries one maintenance round.
type applyRequest struct {
	Updates []updateWire `json:"updates"`
}

// applyResponse reports a committed synchronous round.
type applyResponse struct {
	Applied     int      `json:"applied"`
	Incremental bool     `json:"incremental"`
	Epochs      []uint64 `json:"epochs"`
}

// applyAsyncResponse acknowledges an accepted asynchronous round.
type applyAsyncResponse struct {
	Accepted bool `json:"accepted"`
	Pending  int  `json:"pending"`
}

// metaResponse describes the served database and batch.
type metaResponse struct {
	Relations []relationMeta `json:"relations"`
	Queries   []queryMeta    `json:"queries"`
	Apps      []string       `json:"apps"`
	Shards    int            `json:"shards"`
}

// relationMeta describes one base relation's schema.
type relationMeta struct {
	Name  string     `json:"name"`
	Rows  int        `json:"rows"`
	Attrs []attrMeta `json:"attrs"`
}

// attrMeta describes one attribute.
type attrMeta struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// queryMeta describes one batch query.
type queryMeta struct {
	Index   int      `json:"index"`
	Name    string   `json:"name"`
	GroupBy []string `json:"groupBy"`
	Aggs    int      `json:"aggs"`
}

// kindName renders an attribute kind for the wire.
func kindName(k data.Kind) string {
	switch k {
	case data.Key:
		return "key"
	case data.Categorical:
		return "categorical"
	case data.Numeric:
		return "numeric"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// decodeUpdates converts row-major wire updates into schema-order columnar
// Deltas, validating relation names and row arity against db.
func decodeUpdates(db *lmfao.Database, ups []updateWire) ([]lmfao.Update, error) {
	out := make([]lmfao.Update, 0, len(ups))
	for _, u := range ups {
		rel := db.Relation(u.Relation)
		if rel == nil {
			return nil, fmt.Errorf("unknown relation %q", u.Relation)
		}
		ins, err := rowsToColumns(db, rel, u.Inserts)
		if err != nil {
			return nil, fmt.Errorf("relation %q inserts: %w", u.Relation, err)
		}
		del, err := rowsToColumns(db, rel, u.Deletes)
		if err != nil {
			return nil, fmt.Errorf("relation %q deletes: %w", u.Relation, err)
		}
		out = append(out, lmfao.Update{Relation: u.Relation, Inserts: ins, Deletes: del})
	}
	return out, nil
}

// rowsToColumns transposes row-major values into one column per relation
// attribute, typed by the attribute kind.
func rowsToColumns(db *lmfao.Database, rel *data.Relation, rows [][]float64) ([]data.Column, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	attrs := rel.Attrs
	cols := make([]data.Column, len(attrs))
	for c, id := range attrs {
		if db.Attribute(id).Kind == data.Numeric {
			vals := make([]float64, len(rows))
			for i, row := range rows {
				if len(row) != len(attrs) {
					return nil, fmt.Errorf("row %d has %d values, schema has %d attributes", i, len(row), len(attrs))
				}
				vals[i] = row[c]
			}
			cols[c] = data.NewFloatColumn(vals)
		} else {
			vals := make([]int64, len(rows))
			for i, row := range rows {
				if len(row) != len(attrs) {
					return nil, fmt.Errorf("row %d has %d values, schema has %d attributes", i, len(row), len(attrs))
				}
				vals[i] = int64(row[c])
			}
			cols[c] = data.NewIntColumn(vals)
		}
	}
	return cols, nil
}

// viewToResponse renders one materialized view for the wire, capped at
// maxRows groups (0 = no cap) so a huge group-by cannot produce an unbounded
// response body.
func viewToResponse(db *lmfao.Database, idx int, name string, v *lmfao.Result, aggs int, epochs []uint64, fresh bool, maxRows int) resultResponse {
	resp := resultResponse{
		Query:   idx,
		Name:    name,
		GroupBy: db.AttrNames(v.GroupBy),
		Aggs:    aggs,
		Rows:    v.NumRows(),
		Epochs:  epochs,
		Fresh:   fresh,
	}
	n := v.NumRows()
	if maxRows > 0 && n > maxRows {
		n = maxRows
	}
	resp.Data = make([]resultRow, n)
	for i := 0; i < n; i++ {
		key := make([]int64, len(v.GroupBy))
		for c := range key {
			key[c] = v.KeyAt(i, c)
		}
		vals := make([]float64, aggs)
		for c := 0; c < aggs; c++ {
			vals[c] = v.Val(i, c)
		}
		resp.Data[i] = resultRow{Key: key, Values: vals}
	}
	return resp
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes the uniform error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// parseKeyCSV parses a comma-separated int64 list ("" = empty key).
func parseKeyCSV(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("key element %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// epochsOf extracts the publication epochs of a Queryable: per-shard for a
// merged sharded snapshot, a single element otherwise.
func epochsOf(q lmfao.Queryable) []uint64 {
	switch sn := q.(type) {
	case *lmfao.Snapshot:
		return []uint64{sn.Epoch()}
	case *lmfao.ShardedSnapshot:
		return sn.Epochs()
	}
	return nil
}

// epochHeader renders epochs for the X-Lmfao-Epoch header.
func epochHeader(epochs []uint64) string {
	parts := make([]string, len(epochs))
	for i, e := range epochs {
		parts[i] = strconv.FormatUint(e, 10)
	}
	return strings.Join(parts, ",")
}
