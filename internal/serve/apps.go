package serve

import (
	"fmt"
	"sort"
	"sync"

	lmfao "repro"
	"repro/internal/data"
)

// Apps is the serving tier's application registry: which of the five paper
// workloads the served batch carries, and where each one's query window
// lives inside the combined batch. Every registered application gets
// /v1/models/{name}/fit (re-fit from the latest snapshot) and, for the
// predictors, /v1/models/{name}/predict. Windows are carved with
// lmfao.SubQueryable, so one session maintains every application's batch
// concatenated and each fit reads only its slice.
type Apps struct {
	// LinReg fits ridge linear regression from the covar window.
	LinReg *LinRegApp
	// PolyReg fits degree-2 polynomial regression from its window.
	PolyReg *PolyRegApp
	// Tree learns a CART decision tree; it needs the Requerier hook, so it
	// runs under requery admission and has no precomputed window.
	Tree *TreeApp
	// ChowLiu computes pairwise mutual information and the Chow-Liu tree
	// from the MI window.
	ChowLiu *ChowLiuApp
	// Cube serves the data-cube window, flattened.
	Cube *CubeApp
}

// Window is a half-open query-index range [Lo, Hi) inside the served batch.
type Window struct {
	Lo, Hi int
}

// LinRegApp configures the linear-regression application.
type LinRegApp struct {
	Win  Window
	Spec lmfao.LinRegSpec
}

// PolyRegApp configures the polynomial-regression application.
type PolyRegApp struct {
	Win  Window
	Spec lmfao.PolySpec
}

// TreeApp configures the decision-tree application (requery-driven).
type TreeApp struct {
	Spec lmfao.TreeSpec
}

// ChowLiuApp configures the mutual-information / Chow-Liu application.
type ChowLiuApp struct {
	Win   Window
	Attrs []lmfao.AttrID
}

// CubeApp configures the data-cube application.
type CubeApp struct {
	Win  Window
	Spec lmfao.CubeSpec
}

// Names lists the registered application names, sorted.
func (a *Apps) Names() []string {
	if a == nil {
		return nil
	}
	var out []string
	if a.LinReg != nil {
		out = append(out, "linreg")
	}
	if a.PolyReg != nil {
		out = append(out, "polyreg")
	}
	if a.Tree != nil {
		out = append(out, "tree")
	}
	if a.ChowLiu != nil {
		out = append(out, "chowliu")
	}
	if a.Cube != nil {
		out = append(out, "cube")
	}
	sort.Strings(out)
	return out
}

// modelCache memoizes fitted models per (app, epoch vector): re-fitting is
// pure over a snapshot, so two fits at the same epochs return the same
// model and the second one is free.
type modelCache struct {
	mu      sync.Mutex
	entries map[string]cachedModel
}

type cachedModel struct {
	epochs string
	value  any
}

// get returns app's cached model if it was fitted at exactly these epochs.
func (c *modelCache) get(app, epochs string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[app]
	if !ok || e.epochs != epochs {
		return nil, false
	}
	return e.value, true
}

// put replaces app's cached model.
func (c *modelCache) put(app, epochs string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[string]cachedModel)
	}
	c.entries[app] = cachedModel{epochs: epochs, value: v}
}

// linregModelWire renders a fitted linear-regression model.
type linregModelWire struct {
	Features  []string  `json:"features"`
	Theta     []float64 `json:"theta"`
	FinalLoss float64   `json:"finalLoss"`
	Epochs    []uint64  `json:"epochs"`
	Cached    bool      `json:"cached"`
}

// polyModelWire renders a fitted polynomial-regression model.
type polyModelWire struct {
	Monomials int       `json:"monomials"`
	Theta     []float64 `json:"theta"`
	Epochs    []uint64  `json:"epochs"`
	Cached    bool      `json:"cached"`
}

// treeModelWire renders a learned decision tree.
type treeModelWire struct {
	Nodes  int      `json:"nodes"`
	Depth  int      `json:"depth"`
	Epochs []uint64 `json:"epochs"`
	Cached bool     `json:"cached"`
}

// chowliuWire renders the Chow-Liu tree over the MI window.
type chowliuWire struct {
	Attrs  []string      `json:"attrs"`
	Edges  []chowliuEdge `json:"edges"`
	Epochs []uint64      `json:"epochs"`
	Cached bool          `json:"cached"`
}

type chowliuEdge struct {
	I      int     `json:"i"`
	J      int     `json:"j"`
	Weight float64 `json:"weight"`
}

// cubeWire renders the flattened data cube (capped).
type cubeWire struct {
	Dims     []string    `json:"dims"`
	Measures []string    `json:"measures"`
	Rows     int         `json:"rows"`
	Data     []resultRow `json:"data"`
	Epochs   []uint64    `json:"epochs"`
	Cached   bool        `json:"cached"`
}

// predictRequest carries one input tuple, keyed by attribute name.
type predictRequest struct {
	Row map[string]float64 `json:"row"`
}

// predictResponse returns the model's prediction for the tuple.
type predictResponse struct {
	Prediction float64  `json:"prediction"`
	Epochs     []uint64 `json:"epochs"`
}

// rowRelation builds a one-row relation from a name-keyed tuple, typed per
// attribute kind, for the PredictRow entry points.
func rowRelation(db *lmfao.Database, row map[string]float64) (*data.Relation, error) {
	if len(row) == 0 {
		return nil, fmt.Errorf("empty input row")
	}
	names := make([]string, 0, len(row))
	for name := range row {
		names = append(names, name)
	}
	sort.Strings(names)
	attrs := make([]lmfao.AttrID, len(names))
	cols := make([]data.Column, len(names))
	for i, name := range names {
		id, ok := db.AttrByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown attribute %q", name)
		}
		attrs[i] = id
		if db.Attribute(id).Kind == data.Numeric {
			cols[i] = data.NewFloatColumn([]float64{row[name]})
		} else {
			cols[i] = data.NewIntColumn([]int64{int64(row[name])})
		}
	}
	return data.NewRelation("input", attrs, cols), nil
}

// treeDepth computes the maximum depth of a learned tree.
func treeDepth(n *lmfao.TreeNode) int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	l, r := treeDepth(n.Left), treeDepth(n.Right)
	if l > r {
		return 1 + l
	}
	return 1 + r
}
