package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	lmfao "repro"
)

// testBatch builds a two-relation database and a two-query batch: a scalar
// total and a per-store group-by.
func testBatch(t *testing.T) (*lmfao.Database, []*lmfao.Query) {
	t.Helper()
	db := lmfao.NewDatabase()
	store := db.Attr("store", lmfao.Key)
	amount := db.Attr("amount", lmfao.Numeric)
	region := db.Attr("region", lmfao.Categorical)
	if err := db.AddRelation(lmfao.NewRelation("sales",
		[]lmfao.AttrID{store, amount},
		[]lmfao.Column{lmfao.IntColumn([]int64{0, 1, 1, 2}), lmfao.FloatColumn([]float64{1, 2, 3, 4})})); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(lmfao.NewRelation("stores",
		[]lmfao.AttrID{store, region},
		[]lmfao.Column{lmfao.IntColumn([]int64{0, 1, 2}), lmfao.IntColumn([]int64{10, 10, 20})})); err != nil {
		t.Fatal(err)
	}
	return db, []*lmfao.Query{
		lmfao.NewQuery("total", nil, lmfao.Sum(amount), lmfao.Count()),
		lmfao.NewQuery("by_store", []lmfao.AttrID{store}, lmfao.Sum(amount)),
	}
}

// newTestServer builds a Server over a fresh running Session.
func newTestServer(t *testing.T, adm AdmissionOptions) (*Server, *lmfao.Session) {
	t.Helper()
	db, queries := testBatch(t)
	sess, err := lmfao.NewSession(db, queries, lmfao.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{DB: db, Maintainer: sess, Queries: queries, Admission: adm})
	if err != nil {
		t.Fatal(err)
	}
	return srv, sess
}

// do runs one request through the server.
func do(srv *Server, method, target, body string, hdr map[string]string) *httptest.ResponseRecorder {
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, target, nil)
	} else {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	return w
}

func TestServeReadEndpoints(t *testing.T) {
	srv, _ := newTestServer(t, AdmissionOptions{})
	for _, target := range []string{"/healthz", "/v1/meta", "/v1/epochs", "/v1/versions", "/v1/stats", "/v1/results/0", "/v1/results/1", "/v1/lookup?query=0&key="} {
		w := do(srv, http.MethodGet, target, "", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", target, w.Code, w.Body)
		}
	}
	w := do(srv, http.MethodGet, "/v1/lookup?query=1&key=1", "", nil)
	var resp lookupResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Values) != 1 || resp.Values[0] != 5 {
		t.Fatalf("lookup by_store(1) = %+v, want values [5]", resp)
	}
	if got := w.Header().Get("X-Lmfao-Epoch"); got != "1" {
		t.Fatalf("X-Lmfao-Epoch = %q, want 1", got)
	}
}

// TestServeBeforeFirstRun pins the one 503 the read path can produce: the
// maintainer has never published a snapshot.
func TestServeBeforeFirstRun(t *testing.T) {
	db, queries := testBatch(t)
	sess, err := lmfao.NewSession(db, queries, lmfao.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	srv, err := NewServer(Config{DB: db, Maintainer: sess, Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []string{"/v1/epochs", "/v1/versions", "/v1/results/0", "/v1/lookup?query=0&key="} {
		if w := do(srv, http.MethodGet, target, "", nil); w.Code != http.StatusServiceUnavailable {
			t.Fatalf("GET %s before Run = %d, want 503", target, w.Code)
		}
	}
	// healthz stays 200 — the process is alive, just not publishing yet.
	if w := do(srv, http.MethodGet, "/healthz", "", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz before Run = %d, want 200", w.Code)
	}
}

// TestServeOutOfRangeIndices pins that bad query indices are rejected with
// 404 before they can reach Snapshot.Lookup/Result (which index by
// position and would panic).
func TestServeOutOfRangeIndices(t *testing.T) {
	srv, _ := newTestServer(t, AdmissionOptions{})
	for _, target := range []string{
		"/v1/results/99", "/v1/results/-1",
		"/v1/lookup?query=99&key=", "/v1/lookup?query=-1&key=1",
	} {
		if w := do(srv, http.MethodGet, target, "", nil); w.Code != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", target, w.Code)
		}
	}
	if w := do(srv, http.MethodGet, "/v1/results/nonsense", "", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("non-numeric index = %d, want 400", w.Code)
	}
	if w := do(srv, http.MethodPost, "/v1/lookup", `{"query": 99}`, nil); w.Code != http.StatusNotFound {
		t.Fatalf("POST lookup out of range = %d, want 404", w.Code)
	}
}

func TestServeApplySync(t *testing.T) {
	srv, _ := newTestServer(t, AdmissionOptions{})
	w := do(srv, http.MethodPost, "/v1/apply", `{"updates":[{"relation":"sales","inserts":[[2,10]]}]}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("apply = %d: %s", w.Code, w.Body)
	}
	var resp applyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Epochs) != 1 || resp.Epochs[0] != 2 {
		t.Fatalf("epochs after apply = %v, want [2]", resp.Epochs)
	}
	lw := do(srv, http.MethodGet, "/v1/lookup?query=1&key=2", "", nil)
	var lresp lookupResponse
	if err := json.Unmarshal(lw.Body.Bytes(), &lresp); err != nil {
		t.Fatal(err)
	}
	if !lresp.OK || lresp.Values[0] != 14 {
		t.Fatalf("by_store(2) after insert = %+v, want [14]", lresp)
	}

	// Malformed rounds are 400s: bad JSON, no updates, unknown relation,
	// wrong arity.
	for body, why := range map[string]string{
		`{nonsense`:      "bad JSON",
		`{"updates":[]}`: "no updates",
		`{"updates":[{"relation":"nope","inserts":[[1,1]]}]}`:    "unknown relation",
		`{"updates":[{"relation":"sales","inserts":[[1]]}]}`:     "wrong arity",
		`{"updates":[{"relation":"sales","deletes":[[1,2,3]]}]}`: "wrong arity deletes",
	} {
		if w := do(srv, http.MethodPost, "/v1/apply", body, nil); w.Code != http.StatusBadRequest {
			t.Fatalf("apply %s = %d, want 400", why, w.Code)
		}
	}
}

// TestServeClosedMaintainer pins the degradation contract after Close:
// writes are 503 (the sentinel maps to service-unavailable, not a 5xx
// crash) while every read — snapshot reads AND requeries, which evaluate
// against the final committed base data — keeps serving with the last
// published epoch.
func TestServeClosedMaintainer(t *testing.T) {
	srv, sess := newTestServer(t, AdmissionOptions{})
	sess.Close()
	w := do(srv, http.MethodPost, "/v1/apply", `{"updates":[{"relation":"sales","inserts":[[2,10]]}]}`, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("apply after Close = %d, want 503: %s", w.Code, w.Body)
	}
	if rw := do(srv, http.MethodPost, "/v1/requery", `{"queries":["adhoc(SUM 1)"]}`, nil); rw.Code != http.StatusOK {
		t.Fatalf("requery after Close = %d, want 200 (reads the final state): %s", rw.Code, rw.Body)
	}
	for _, target := range []string{"/v1/epochs", "/v1/results/0", "/v1/lookup?query=0&key="} {
		w := do(srv, http.MethodGet, target, "", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s after Close = %d, want 200 (snapshots stay readable)", target, w.Code)
		}
		if got := w.Header().Get("X-Lmfao-Epoch"); got != "1" {
			t.Fatalf("GET %s after Close: X-Lmfao-Epoch = %q, want 1", target, got)
		}
	}
}

// TestServeWedgedDurable pins the wedged-backend path: a WAL write failure
// wedges the durable session; the serve tier maps every later write to 503
// while reads keep serving the last published snapshot.
func TestServeWedgedDurable(t *testing.T) {
	db, queries := testBatch(t)
	d, err := lmfao.NewDurableSession(db, queries, lmfao.DefaultOptions(), lmfao.DurableOptions{}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{DB: db, Maintainer: d, Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	d.CrashAfterAppends(0)
	body := `{"updates":[{"relation":"sales","inserts":[[2,10]]}]}`
	if w := do(srv, http.MethodPost, "/v1/apply", body, nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("apply into armed crash = %d, want 503: %s", w.Code, w.Body)
	}
	if d.Wedged() == nil {
		t.Fatal("session not wedged after injected WAL crash")
	}
	// The wedge is sticky: every later write is 503, never a 500 storm.
	if w := do(srv, http.MethodPost, "/v1/apply", body, nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("apply after wedge = %d, want 503: %s", w.Code, w.Body)
	}
	if w := do(srv, http.MethodGet, "/v1/lookup?query=0&key=", "", nil); w.Code != http.StatusOK {
		t.Fatalf("read after wedge = %d, want 200", w.Code)
	}
}

// TestServeShedFreshRead pins the load-shedding contract: when the requery
// tier is saturated, a ?fresh=1 read is NOT refused — it degrades to the
// last published snapshot, 200, with the staleness headers set.
func TestServeShedFreshRead(t *testing.T) {
	srv, _ := newTestServer(t, AdmissionOptions{MaxRequeries: 1})

	// A fresh read with a free slot really refreshes.
	w := do(srv, http.MethodGet, "/v1/results/0?fresh=1", "", nil)
	if w.Code != http.StatusOK || w.Header().Get("X-Lmfao-Degraded") != "" {
		t.Fatalf("unsaturated fresh read: code %d degraded %q", w.Code, w.Header().Get("X-Lmfao-Degraded"))
	}

	// Saturate the refinement tier by holding its only slot.
	release, ok := srv.adm.tryRequery()
	if !ok {
		t.Fatal("could not take the requery slot")
	}
	defer release()

	w = do(srv, http.MethodGet, "/v1/results/0?fresh=1", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("shed fresh read = %d, want 200 (degrade, don't error): %s", w.Code, w.Body)
	}
	if w.Header().Get("X-Lmfao-Degraded") != "1" {
		t.Fatal("shed fresh read missing X-Lmfao-Degraded header")
	}
	if got := w.Header().Get("X-Lmfao-Epoch"); got != "1" {
		t.Fatalf("shed fresh read X-Lmfao-Epoch = %q, want last published epoch 1", got)
	}
	var resp resultResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Fresh {
		t.Fatal("shed read claims fresh=true")
	}
	if srv.Shedded() == 0 {
		t.Fatal("shed counter not incremented")
	}

	// An explicit requery has no snapshot fallback: saturation is 429 with
	// Retry-After, not a silent degrade.
	rw := do(srv, http.MethodPost, "/v1/requery", `{"queries":["adhoc(SUM 1)"]}`, nil)
	if rw.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated requery = %d, want 429: %s", rw.Code, rw.Body)
	}
	if rw.Header().Get("Retry-After") == "" {
		t.Fatal("saturated requery missing Retry-After")
	}
}

// TestServeTenantRateLimit pins per-tenant token buckets: an over-rate
// tenant's explicit requeries get 429 while its fresh reads degrade to the
// snapshot, and other tenants are unaffected.
func TestServeTenantRateLimit(t *testing.T) {
	clock := time.Unix(1e9, 0)
	srv, _ := newTestServer(t, AdmissionOptions{
		TenantRate:  0.001, // effectively no refill within the test
		TenantBurst: 1,
		now:         func() time.Time { return clock },
	})
	alice := map[string]string{"X-Lmfao-Tenant": "alice"}
	bob := map[string]string{"X-Lmfao-Tenant": "bob"}

	if w := do(srv, http.MethodPost, "/v1/requery", `{"queries":["adhoc(SUM 1)"]}`, alice); w.Code != http.StatusOK {
		t.Fatalf("first requery = %d, want 200: %s", w.Code, w.Body)
	}
	if w := do(srv, http.MethodPost, "/v1/requery", `{"queries":["adhoc(SUM 1)"]}`, alice); w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-rate requery = %d, want 429", w.Code)
	}
	// Fresh reads degrade instead of erroring for the throttled tenant.
	w := do(srv, http.MethodGet, "/v1/results/0?fresh=1", "", alice)
	if w.Code != http.StatusOK || w.Header().Get("X-Lmfao-Degraded") != "1" {
		t.Fatalf("throttled fresh read: code %d degraded %q, want 200 + degraded", w.Code, w.Header().Get("X-Lmfao-Degraded"))
	}
	// Another tenant still has its full burst.
	if w := do(srv, http.MethodPost, "/v1/requery", `{"queries":["adhoc(SUM 1)"]}`, bob); w.Code != http.StatusOK {
		t.Fatalf("other tenant requery = %d, want 200: %s", w.Code, w.Body)
	}
	// Plain snapshot reads are never rate limited.
	for i := 0; i < 10; i++ {
		if w := do(srv, http.MethodGet, "/v1/lookup?query=0&key=", "", alice); w.Code != http.StatusOK {
			t.Fatalf("plain read %d rate-limited: %d", i, w.Code)
		}
	}
}

// stubMaintainer is a Maintainer whose async applies block until released,
// for deterministic backpressure tests.
type stubMaintainer struct {
	snap  lmfao.Queryable
	block chan struct{}
}

func (m *stubMaintainer) Run() (lmfao.Queryable, error)                      { return m.snap, nil }
func (m *stubMaintainer) Apply(...lmfao.Update) ([]*lmfao.ApplyStats, error) { return nil, nil }
func (m *stubMaintainer) ApplyAsync(...lmfao.Update) <-chan lmfao.ApplyResult {
	ch := make(chan lmfao.ApplyResult, 1)
	go func() {
		<-m.block
		ch <- lmfao.ApplyResult{}
	}()
	return ch
}
func (m *stubMaintainer) Snapshot() lmfao.Queryable { return m.snap }
func (m *stubMaintainer) Wait()                     {}
func (m *stubMaintainer) Close()                    {}

// TestServeAsyncApplyBackpressure pins the bounded async backlog: accepted
// rounds are 202, a full backlog is 429 with Retry-After, and slots free up
// when rounds commit.
func TestServeAsyncApplyBackpressure(t *testing.T) {
	db, queries := testBatch(t)
	sess, err := lmfao.NewSession(db, queries, lmfao.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	stub := &stubMaintainer{snap: sess.Snapshot(), block: make(chan struct{})}
	srv, err := NewServer(Config{DB: db, Maintainer: stub, Queries: queries,
		Admission: AdmissionOptions{MaxPendingApplies: 1}})
	if err != nil {
		t.Fatal(err)
	}
	body := `{"updates":[{"relation":"sales","inserts":[[2,10]]}]}`
	if w := do(srv, http.MethodPost, "/v1/apply?mode=async", body, nil); w.Code != http.StatusAccepted {
		t.Fatalf("first async apply = %d, want 202: %s", w.Code, w.Body)
	}
	if w := do(srv, http.MethodPost, "/v1/apply?mode=async", body, nil); w.Code != http.StatusTooManyRequests {
		t.Fatalf("async apply over backlog = %d, want 429: %s", w.Code, w.Body)
	}
	close(stub.block) // commit the in-flight round
	deadline := time.Now().Add(2 * time.Second)
	for srv.adm.pendingApplies() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("backlog never drained")
		}
		time.Sleep(time.Millisecond)
	}
	if w := do(srv, http.MethodPost, "/v1/apply?mode=async", body, nil); w.Code != http.StatusAccepted {
		t.Fatalf("async apply after drain = %d, want 202: %s", w.Code, w.Body)
	}
}

// TestServeRequeryEndpoint pins the ad-hoc requery path: parsed wire
// queries evaluate behind the snapshot and bad syntax is a 400.
func TestServeRequeryEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, AdmissionOptions{})
	w := do(srv, http.MethodPost, "/v1/requery", `{"queries":["by_region(region; SUM amount)"]}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("requery = %d: %s", w.Code, w.Body)
	}
	var resp requeryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Rows != 2 {
		t.Fatalf("by_region rows = %+v, want 2 groups", resp.Results)
	}
	if w := do(srv, http.MethodPost, "/v1/requery", `{"queries":["nonsense"]}`, nil); w.Code != http.StatusBadRequest {
		t.Fatalf("unparsable requery = %d, want 400", w.Code)
	}
	if w := do(srv, http.MethodPost, "/v1/requery", `{"queries":[]}`, nil); w.Code != http.StatusBadRequest {
		t.Fatalf("empty requery = %d, want 400", w.Code)
	}
}
