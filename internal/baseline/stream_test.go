package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/query"
)

// Property: the streaming per-query engine agrees exactly with the
// materialize-then-scan oracle on random snowflake databases.
func TestStreamerMatchesMaterialized(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(700 + trial)))
		db := randomDB(t, rng)
		e, err := New(db)
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewStreamer(e)
		if err != nil {
			t.Fatal(err)
		}
		var qs []*query.Query
		attrs := discreteAttrs(db)
		nums := numericAttrs(db)
		for qi := 0; qi < 3; qi++ {
			var gb []data.AttrID
			for _, a := range attrs {
				if rng.Intn(3) == 0 {
					gb = append(gb, a)
				}
			}
			aggs := []query.Aggregate{query.CountAgg()}
			if len(nums) > 0 {
				aggs = append(aggs, query.SumAgg(nums[rng.Intn(len(nums))]))
			}
			qs = append(qs, query.NewQuery(fmt.Sprintf("q%d", qi), gb, aggs...))
		}
		want, err := e.Run(qs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.RunBatchStreaming(qs)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range qs {
			compareRows(t, fmt.Sprintf("trial %d query %d", trial, qi), got[qi], want[qi])
		}
	}
}

func compareRows(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows vs %d", label, len(got.Rows), len(want.Rows))
	}
	for k, w := range want.Rows {
		g, ok := got.Rows[k]
		if !ok {
			t.Fatalf("%s: missing key", label)
		}
		for c := range w {
			if math.Abs(g[c]-w[c]) > 1e-9*(1+math.Abs(w[c])) {
				t.Fatalf("%s: col %d: %g vs %g", label, c, g[c], w[c])
			}
		}
	}
}

func randomDB(t *testing.T, rng *rand.Rand) *data.Database {
	t.Helper()
	db := data.NewDatabase()
	k1 := db.Attr("k1", data.Key)
	k2 := db.Attr("k2", data.Key)
	c1 := db.Attr("c1", data.Key)
	x := db.Attr("x", data.Numeric)
	dom := 3 + rng.Intn(4)
	n := 20 + rng.Intn(40)
	fact := data.NewRelation("F", []data.AttrID{k1, k2, x}, []data.Column{
		data.NewIntColumn(randInts(rng, n, dom)),
		data.NewIntColumn(randInts(rng, n, dom)),
		data.NewFloatColumn(randFloats(rng, n)),
	})
	if err := db.AddRelation(fact); err != nil {
		t.Fatal(err)
	}
	kv := make([]int64, dom)
	for i := range kv {
		kv[i] = int64(i)
	}
	d1 := data.NewRelation("D1", []data.AttrID{k1, c1}, []data.Column{
		data.NewIntColumn(kv), data.NewIntColumn(randInts(rng, dom, 3))})
	if err := db.AddRelation(d1); err != nil {
		t.Fatal(err)
	}
	// Many-to-many second dimension (several rows per key).
	m := dom * 2
	d2 := data.NewRelation("D2", []data.AttrID{k2, db.Attr("c2", data.Key)}, []data.Column{
		data.NewIntColumn(randInts(rng, m, dom)), data.NewIntColumn(randInts(rng, m, 4))})
	if err := db.AddRelation(d2); err != nil {
		t.Fatal(err)
	}
	return db
}

func randInts(rng *rand.Rand, n, dom int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rng.Intn(dom))
	}
	return out
}

func randFloats(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(rng.Intn(9)) + 0.5
	}
	return out
}

func discreteAttrs(db *data.Database) []data.AttrID {
	var out []data.AttrID
	for i := 0; i < db.NumAttrs(); i++ {
		if db.Attribute(data.AttrID(i)).Kind.Discrete() {
			out = append(out, data.AttrID(i))
		}
	}
	return out
}

func numericAttrs(db *data.Database) []data.AttrID {
	var out []data.AttrID
	for i := 0; i < db.NumAttrs(); i++ {
		if db.Attribute(data.AttrID(i)).Kind == data.Numeric {
			out = append(out, data.AttrID(i))
		}
	}
	return out
}

func TestStreamerScalarAndEmpty(t *testing.T) {
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	b := db.Attr("b", data.Key)
	r1 := data.NewRelation("R1", []data.AttrID{a, b}, []data.Column{
		data.NewIntColumn([]int64{1}), data.NewIntColumn([]int64{5})})
	r2 := data.NewRelation("R2", []data.AttrID{b}, []data.Column{
		data.NewIntColumn([]int64{6})}) // never joins
	if err := db.AddRelation(r1); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(r2); err != nil {
		t.Fatal(err)
	}
	e, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStreamer(e)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.RunStreaming(query.NewQuery("count", nil, query.CountAgg()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[""][0] != 0 {
		t.Fatalf("empty join count = %g", res.Rows[""][0])
	}
	byA, err := st.RunStreaming(query.NewQuery("bya", []data.AttrID{a}, query.CountAgg()))
	if err != nil {
		t.Fatal(err)
	}
	if len(byA.Rows) != 0 {
		t.Fatalf("empty join group-by rows = %d", len(byA.Rows))
	}
}

func TestStreamerInvalidQuery(t *testing.T) {
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	if err := db.AddRelation(data.NewRelation("R", []data.AttrID{a},
		[]data.Column{data.NewIntColumn([]int64{1})})); err != nil {
		t.Fatal(err)
	}
	e, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStreamer(e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.RunStreaming(query.NewQuery("bad", nil, query.SumAgg(99))); err == nil {
		t.Fatal("invalid query accepted")
	}
}
