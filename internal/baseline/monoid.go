package baseline

import (
	"repro/internal/monoid"
	"repro/internal/query"
)

// groupFold accumulates per-group monoid aggregate states during a join
// scan — the brute-force twin of the engine's support-view fold. Both scan
// paths (RunOverFlat, RunStreaming) feed every join tuple's monoid-attr
// values through absorb and finalize the states into the trailing result
// columns afterwards, so the oracle evaluates any registered monoid by
// definition: fold over the group's join tuples.
type groupFold struct {
	ms []monoid.Monoid
	st map[string][]monoid.State
}

// newGroupFold resolves the query's monoid instances; nil when the query
// has no monoid aggregates.
func newGroupFold(q *query.Query) (*groupFold, error) {
	if len(q.MonoidAggs) == 0 {
		return nil, nil
	}
	g := &groupFold{st: make(map[string][]monoid.State)}
	for _, m := range q.MonoidAggs {
		inst, err := m.Instance()
		if err != nil {
			return nil, err
		}
		g.ms = append(g.ms, inst)
	}
	return g, nil
}

// absorb folds one join tuple's monoid-attr values (one per monoid
// aggregate, query order) into the group keyed by key.
func (g *groupFold) absorb(key string, vals []int64) {
	st := g.st[key]
	if st == nil {
		st = make([]monoid.State, len(g.ms))
		g.st[key] = st
	}
	for mi, m := range g.ms {
		x := m.Lift(vals[mi])
		if st[mi] == nil {
			st[mi] = x
		} else {
			st[mi] = m.Combine(st[mi], x)
		}
	}
}

// finalize writes every group's finalized monoid columns after the sum
// columns; groups absorb never saw (the scalar empty-join row) finalize the
// identity.
func (g *groupFold) finalize(q *query.Query, rows map[string][]float64) {
	for key, row := range rows {
		st := g.st[key]
		off := len(q.Aggs)
		for mi, m := range g.ms {
			w := q.MonoidAggs[mi].Width()
			var s monoid.State
			if st != nil {
				s = st[mi]
			}
			if s == nil {
				s = m.Identity()
			}
			m.Finalize(s, row[off:off+w])
			off += w
		}
	}
}
