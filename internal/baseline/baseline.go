// Package baseline implements the conventional evaluation strategy the paper
// benchmarks LMFAO against (DBX / MonetDB / PostgreSQL proxies): materialize
// the natural join of the database once, then evaluate every query of the
// batch independently by scanning the flat join result. No computation is
// shared across queries and no aggregate is pushed past a join — exactly the
// structure-agnostic two-step architecture of §5.
//
// It doubles as the test oracle: its semantics are plain SQL GROUP-BY over
// the join, computed by brute force.
package baseline

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/jointree"
	"repro/internal/query"
)

// Result is a group-by aggregate result keyed by packed group-by tuples.
type Result struct {
	Query   *query.Query
	GroupBy []data.AttrID
	// Rows maps data.PackKey(groupByValues...) to aggregate values: the
	// query's sum aggregates in query order, then each monoid aggregate's
	// finalized columns (Query.NumCols values in total).
	Rows map[string][]float64
}

// NumRows returns the number of result groups.
func (r *Result) NumRows() int { return len(r.Rows) }

// Engine evaluates query batches over the materialized join.
type Engine struct {
	db   *data.Database
	tree *jointree.Tree
	flat *data.Relation
}

// New builds a baseline engine over db (constructing a join tree only to
// order the pairwise joins).
func New(db *data.Database) (*Engine, error) {
	tree, err := jointree.Build(db)
	if err != nil {
		return nil, err
	}
	return &Engine{db: db, tree: tree}, nil
}

// NewWithTree uses an existing join tree.
func NewWithTree(db *data.Database, tree *jointree.Tree) *Engine {
	return &Engine{db: db, tree: tree}
}

// Materialize computes (and caches) the flat join result — the competitors'
// "training dataset export" step.
func (e *Engine) Materialize() (*data.Relation, error) {
	if e.flat != nil {
		return e.flat, nil
	}
	flat, err := e.tree.MaterializeAll("join_result")
	if err != nil {
		return nil, err
	}
	e.flat = flat
	return flat, nil
}

// Run materializes the join and evaluates each query independently over it.
func (e *Engine) Run(queries []*query.Query) ([]*Result, error) {
	flat, err := e.Materialize()
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(queries))
	for i, q := range queries {
		r, err := RunOverFlat(e.db, flat, q)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// RunOverFlat evaluates one query with a single scan over a materialized
// join result.
func RunOverFlat(db *data.Database, flat *data.Relation, q *query.Query) (*Result, error) {
	if err := q.Validate(db); err != nil {
		return nil, err
	}
	res := &Result{Query: q, GroupBy: q.GroupBy, Rows: make(map[string][]float64)}

	gbCols := make([]data.Column, len(q.GroupBy))
	for i, a := range q.GroupBy {
		c, ok := flat.Col(a)
		if !ok {
			return nil, fmt.Errorf("baseline: group-by attribute %q not in join result", db.Attribute(a).Name)
		}
		gbCols[i] = c
	}
	// Resolve each factor's column once.
	type termSpec struct {
		coef    float64
		factors []query.Factor
		cols    []data.Column
	}
	specs := make([][]termSpec, len(q.Aggs))
	for ai, agg := range q.Aggs {
		for _, t := range agg.Terms {
			ts := termSpec{coef: t.Coef}
			for _, f := range t.Factors {
				if !f.HasAttr() {
					ts.coef *= f.Value
					continue
				}
				c, ok := flat.Col(f.Attr)
				if !ok {
					return nil, fmt.Errorf("baseline: attribute %q not in join result", db.Attribute(f.Attr).Name)
				}
				ts.factors = append(ts.factors, f)
				ts.cols = append(ts.cols, c)
			}
			specs[ai] = append(specs[ai], ts)
		}
	}
	fold, err := newGroupFold(q)
	if err != nil {
		return nil, err
	}
	mCols := make([]data.Column, len(q.MonoidAggs))
	for mi, m := range q.MonoidAggs {
		c, ok := flat.Col(m.Attr)
		if !ok {
			return nil, fmt.Errorf("baseline: attribute %q not in join result", db.Attribute(m.Attr).Name)
		}
		mCols[mi] = c
	}

	if len(q.GroupBy) == 0 {
		// Scalar queries always deliver one (possibly zero-valued) row.
		res.Rows[""] = make([]float64, q.NumCols())
	}

	key := make([]int64, len(q.GroupBy))
	buf := make([]byte, 0, 8*len(q.GroupBy))
	mVals := make([]int64, len(q.MonoidAggs))
	for r := 0; r < flat.Len(); r++ {
		for i, c := range gbCols {
			key[i] = c.Int(r)
		}
		buf = data.AppendKey(buf[:0], key...)
		row, ok := res.Rows[string(buf)]
		if !ok {
			row = make([]float64, q.NumCols())
			res.Rows[string(buf)] = row
		}
		for ai := range specs {
			for _, ts := range specs[ai] {
				v := ts.coef
				for fi, f := range ts.factors {
					v *= f.Eval(ts.cols[fi].Float(r))
				}
				row[ai] += v
			}
		}
		if fold != nil {
			for mi, c := range mCols {
				mVals[mi] = c.Int(r)
			}
			fold.absorb(string(buf), mVals)
		}
	}
	if fold != nil {
		fold.finalize(q, res.Rows)
	}
	return res, nil
}
