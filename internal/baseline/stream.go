package baseline

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/query"
)

// Streamer evaluates queries by pipelining the natural join per query — the
// faithful proxy for how PostgreSQL/MonetDB/DBX process an aggregate batch:
// each query re-enumerates the join (hash indexes play the role of a warm
// buffer pool), no computation is shared across queries, and no aggregate is
// pushed past a join.
type Streamer struct {
	e *Engine
	// order is a BFS order of tree nodes from the root (node 0).
	order  []int
	parent []int
	// probeIdx[i] maps the packed shared-key values of order[i]'s parent
	// edge to matching row indices.
	probeIdx []map[string][]int32
	// probeAttrs[i] are the shared attributes of the parent edge.
	probeAttrs [][]data.AttrID
	// attrHome resolves an attribute to (position in order, column).
	attrHome map[data.AttrID]homeRef
}

type homeRef struct {
	pos int
	col data.Column
}

// NewStreamer builds the per-edge hash indexes once (the warm buffer pool).
func NewStreamer(e *Engine) (*Streamer, error) {
	t := e.tree
	s := &Streamer{e: e, attrHome: map[data.AttrID]homeRef{}}
	n := len(t.Nodes)
	visited := make([]bool, n)
	s.order = []int{0}
	s.parent = []int{-1}
	visited[0] = true
	for qi := 0; qi < len(s.order); qi++ {
		for _, v := range t.Adj[s.order[qi]] {
			if !visited[v] {
				visited[v] = true
				s.order = append(s.order, v)
				s.parent = append(s.parent, qi)
			}
		}
	}
	s.probeIdx = make([]map[string][]int32, len(s.order))
	s.probeAttrs = make([][]data.AttrID, len(s.order))
	for pos, id := range s.order {
		node := t.Nodes[id]
		for _, a := range node.Attrs {
			if _, ok := s.attrHome[a]; !ok {
				s.attrHome[a] = homeRef{pos: pos, col: node.Rel.MustCol(a)}
			}
		}
		if pos == 0 {
			continue
		}
		shared := t.PathAttrs(s.order[s.parent[pos]], id)
		if len(shared) == 0 {
			return nil, fmt.Errorf("baseline: cross-product edge in stream plan")
		}
		s.probeAttrs[pos] = shared
		idx := make(map[string][]int32, node.Rel.Len())
		cols := make([][]int64, len(shared))
		for i, a := range shared {
			cols[i] = node.Rel.MustCol(a).Ints
		}
		buf := make([]byte, 0, 8*len(shared))
		for r := 0; r < node.Rel.Len(); r++ {
			buf = buf[:0]
			for _, c := range cols {
				buf = data.AppendKey(buf, c[r])
			}
			idx[string(buf)] = append(idx[string(buf)], int32(r))
		}
		s.probeIdx[pos] = idx
	}
	return s, nil
}

// RunStreaming evaluates one query with a fresh pipelined pass over the join.
func (s *Streamer) RunStreaming(q *query.Query) (*Result, error) {
	if err := q.Validate(s.e.db); err != nil {
		return nil, err
	}
	res := &Result{Query: q, GroupBy: q.GroupBy, Rows: make(map[string][]float64)}
	if len(q.GroupBy) == 0 {
		res.Rows[""] = make([]float64, q.NumCols())
	}

	// Resolve group-by and factor sources.
	gbRefs := make([]homeRef, len(q.GroupBy))
	for i, a := range q.GroupBy {
		gbRefs[i] = s.attrHome[a]
	}
	type termSpec struct {
		coef    float64
		factors []query.Factor
		refs    []homeRef
	}
	specs := make([][]termSpec, len(q.Aggs))
	for ai, agg := range q.Aggs {
		for _, t := range agg.Terms {
			ts := termSpec{coef: t.Coef}
			for _, f := range t.Factors {
				if !f.HasAttr() {
					ts.coef *= f.Value
					continue
				}
				ts.factors = append(ts.factors, f)
				ts.refs = append(ts.refs, s.attrHome[f.Attr])
			}
			specs[ai] = append(specs[ai], ts)
		}
	}
	fold, err := newGroupFold(q)
	if err != nil {
		return nil, err
	}
	mRefs := make([]homeRef, len(q.MonoidAggs))
	for mi, m := range q.MonoidAggs {
		mRefs[mi] = s.attrHome[m.Attr]
	}

	curRows := make([]int32, len(s.order))
	key := make([]int64, len(q.GroupBy))
	buf := make([]byte, 0, 8*len(q.GroupBy))
	mVals := make([]int64, len(q.MonoidAggs))
	emit := func() {
		for i, ref := range gbRefs {
			key[i] = ref.col.Int(int(curRows[ref.pos]))
		}
		buf = data.AppendKey(buf[:0], key...)
		row, ok := res.Rows[string(buf)]
		if !ok {
			row = make([]float64, q.NumCols())
			res.Rows[string(buf)] = row
		}
		for ai := range specs {
			for _, ts := range specs[ai] {
				v := ts.coef
				for fi, f := range ts.factors {
					v *= f.Eval(ts.refs[fi].col.Float(int(curRows[ts.refs[fi].pos])))
				}
				row[ai] += v
			}
		}
		if fold != nil {
			for mi, ref := range mRefs {
				mVals[mi] = ref.col.Int(int(curRows[ref.pos]))
			}
			fold.absorb(string(buf), mVals)
		}
	}

	// DFS enumeration of the join, probing each edge's hash index.
	probeBuf := make([]byte, 0, 16)
	var enumerate func(pos int)
	enumerate = func(pos int) {
		if pos == len(s.order) {
			emit()
			return
		}
		probeBuf = probeBuf[:0]
		for _, a := range s.probeAttrs[pos] {
			ref := s.attrHome[a]
			// The shared attribute's value is bound by an ancestor
			// (running intersection guarantees ref.pos < pos).
			probeBuf = data.AppendKey(probeBuf, ref.col.Int(int(curRows[ref.pos])))
		}
		for _, r := range s.probeIdx[pos][string(probeBuf)] {
			curRows[pos] = r
			enumerate(pos + 1)
		}
	}
	root := s.e.tree.Nodes[s.order[0]]
	for r := 0; r < root.Rel.Len(); r++ {
		curRows[0] = int32(r)
		enumerate(1)
	}
	if fold != nil {
		fold.finalize(q, res.Rows)
	}
	return res, nil
}

// RunBatchStreaming evaluates every query of the batch independently — the
// Table 3 competitor configuration.
func (s *Streamer) RunBatchStreaming(queries []*query.Query) ([]*Result, error) {
	out := make([]*Result, len(queries))
	for i, q := range queries {
		r, err := s.RunStreaming(q)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
