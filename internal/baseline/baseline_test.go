package baseline

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/query"
)

func twoRelDB(t *testing.T) (*data.Database, data.AttrID, data.AttrID, data.AttrID, data.AttrID) {
	t.Helper()
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	b := db.Attr("b", data.Key)
	c := db.Attr("c", data.Key)
	x := db.Attr("x", data.Numeric)
	r1 := data.NewRelation("R1", []data.AttrID{a, b}, []data.Column{
		data.NewIntColumn([]int64{1, 1, 2}),
		data.NewIntColumn([]int64{5, 6, 5}),
	})
	r2 := data.NewRelation("R2", []data.AttrID{b, c, x}, []data.Column{
		data.NewIntColumn([]int64{5, 5, 6}),
		data.NewIntColumn([]int64{8, 9, 8}),
		data.NewFloatColumn([]float64{1.5, 2.5, 4.0}),
	})
	if err := db.AddRelation(r1); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(r2); err != nil {
		t.Fatal(err)
	}
	return db, a, b, c, x
}

func TestBaselineScalar(t *testing.T) {
	db, _, _, _, x := twoRelDB(t)
	e, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run([]*query.Query{
		query.NewQuery("q", nil, query.CountAgg(), query.SumAgg(x)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Join: (1,5)x{(5,8,1.5),(5,9,2.5)}, (1,6)x{(6,8,4.0)}, (2,5)x{...}
	// = rows: 2 + 1 + 2 = 5.
	row := res[0].Rows[""]
	if row[0] != 5 {
		t.Fatalf("count = %g", row[0])
	}
	want := 1.5 + 2.5 + 4.0 + 1.5 + 2.5
	if math.Abs(row[1]-want) > 1e-9 {
		t.Fatalf("sum = %g want %g", row[1], want)
	}
	if res[0].NumRows() != 1 {
		t.Fatalf("rows = %d", res[0].NumRows())
	}
}

func TestBaselineGroupBy(t *testing.T) {
	db, a, _, _, x := twoRelDB(t)
	e, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run([]*query.Query{
		query.NewQuery("bya", []data.AttrID{a}, query.CountAgg(), query.SumAgg(x)),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if len(r.Rows) != 2 {
		t.Fatalf("groups = %d", len(r.Rows))
	}
	row1 := r.Rows[data.PackKey(1)]
	if row1[0] != 3 || math.Abs(row1[1]-8.0) > 1e-9 {
		t.Fatalf("group a=1: %v", row1)
	}
	row2 := r.Rows[data.PackKey(2)]
	if row2[0] != 2 || math.Abs(row2[1]-4.0) > 1e-9 {
		t.Fatalf("group a=2: %v", row2)
	}
}

func TestBaselineEmptyJoinScalar(t *testing.T) {
	db := data.NewDatabase()
	a := db.Attr("a", data.Key)
	b := db.Attr("b", data.Key)
	r1 := data.NewRelation("R1", []data.AttrID{a}, []data.Column{data.NewIntColumn([]int64{1})})
	r2 := data.NewRelation("R2", []data.AttrID{a, b}, []data.Column{
		data.NewIntColumn([]int64{2}), data.NewIntColumn([]int64{3})})
	if err := db.AddRelation(r1); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(r2); err != nil {
		t.Fatal(err)
	}
	e, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run([]*query.Query{
		query.NewQuery("scalar", nil, query.CountAgg()),
		query.NewQuery("byb", []data.AttrID{b}, query.CountAgg()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Rows[""][0] != 0 {
		t.Fatal("scalar count over empty join should be 0")
	}
	if len(res[1].Rows) != 0 {
		t.Fatal("group-by over empty join should have no rows")
	}
}

func TestBaselineInvalidQuery(t *testing.T) {
	db, _, _, _, _ := twoRelDB(t)
	e, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run([]*query.Query{
		query.NewQuery("bad", nil, query.SumAgg(data.AttrID(42))),
	}); err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestMaterializeCached(t *testing.T) {
	db, _, _, _, _ := twoRelDB(t)
	e, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := e.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := e.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("materialization not cached")
	}
	if f1.Len() != 5 {
		t.Fatalf("join rows = %d", f1.Len())
	}
}

func TestRunOverFlatMissingAttr(t *testing.T) {
	db, a, _, _, _ := twoRelDB(t)
	flat := data.NewRelation("flat", []data.AttrID{a}, []data.Column{data.NewIntColumn([]int64{1})})
	q := query.NewQuery("q", nil, query.SumAgg(3)) // x not in flat
	if _, err := RunOverFlat(db, flat, q); err == nil {
		t.Fatal("missing aggregate attribute accepted")
	}
	q2 := query.NewQuery("q2", []data.AttrID{1}, query.CountAgg()) // b not in flat
	if _, err := RunOverFlat(db, flat, q2); err == nil {
		t.Fatal("missing group-by attribute accepted")
	}
}
