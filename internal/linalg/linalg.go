// Package linalg provides the small dense linear-algebra substrate used by
// the learning applications: symmetric linear solves for ridge normal
// equations and basic vector helpers. Only the stdlib is used.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major square-or-rectangular matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set sets m[i,j].
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v into m[i,j].
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("linalg: dimension mismatch %d vs %d", len(x), m.Cols)
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range x {
			s += row[j] * v
		}
		out[i] = s
	}
	return out, nil
}

// Solve solves A·x = b by Gaussian elimination with partial pivoting,
// destroying neither input. A must be square.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Solve requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d != %d", len(b), n)
	}
	m := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, piv = v, r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if piv != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[piv*n+j] = m.Data[piv*n+j], m.Data[col*n+j]
			}
			x[col], x[piv] = x[piv], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Add(r, j, -f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// Dot returns ⟨a, b⟩.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns ‖a‖₂.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// AXPY computes y += alpha·x in place.
func AXPY(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}
