package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveIdentity(t *testing.T) {
	a := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, 1)
	}
	x, err := Solve(a, []float64{3, -1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, -1, 2}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("singular matrix accepted")
	}
}

func TestSolveDimensionErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("non-square accepted")
	}
	b := NewMatrix(2, 2)
	if _, err := Solve(b, []float64{1}); err == nil {
		t.Fatal("wrong rhs length accepted")
	}
}

// Property: for random well-conditioned systems, A·Solve(A,b) ≈ b and the
// inputs are untouched.
func TestSolveRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonal dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		aCopy := a.Clone()
		bCopy := append([]float64(nil), b...)
		x, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ax, err := a.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				t.Fatalf("residual %g at %d", ax[i]-b[i], i)
			}
			if a.At(i, 0) != aCopy.At(i, 0) || b[i] != bCopy[i] {
				t.Fatal("Solve mutated its inputs")
			}
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %g", Dot(a, b))
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Fatal("Norm2 wrong")
	}
	y := []float64{1, 1, 1}
	AXPY(2, a, y)
	if y[2] != 7 {
		t.Fatalf("AXPY = %v", y)
	}
	Scale(0.5, y)
	if y[2] != 3.5 {
		t.Fatalf("Scale = %v", y)
	}
}

func TestMulVecDimMismatch(t *testing.T) {
	a := NewMatrix(2, 2)
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
