package query

import (
	"testing"

	"repro/internal/data"
)

// FuzzParse feeds arbitrary strings to the parser: it must never panic, and
// whatever it accepts must reach a print/parse fixpoint (Format after one
// parse is stable under further parse/Format round trips).
func FuzzParse(f *testing.F) {
	db := parseDB()
	seeds := []string{
		"count(SUM 1)",
		"q1(store; SUM sales)",
		"q2(store, item; SUM sales·price, SUM sales^3)",
		"q3(color; SUM 2·1[sales <= 2.5]·price + -1·1[color in {1,2}], SUM log(price))",
		"q(SUM 1[sales <> -0.5])",
		"q(SUM -3)",
		"q(; SUM 1)",
		"x(SUM 1[color in {}])",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q, err := Parse(db, s)
		if err != nil {
			return
		}
		s1 := q.Format(db)
		q2, err := Parse(db, s1)
		if err != nil {
			t.Fatalf("reparse of formatted %q (from %q): %v", s1, s, err)
		}
		if s2 := q2.Format(db); s1 != s2 {
			t.Fatalf("no fixpoint: %q -> %q -> %q", s, s1, s2)
		}
	})
}

// FuzzPrintParse drives the generator direction: a query assembled from the
// fuzzed byte tape must print, parse back, and re-print stably. The first
// print need not be canonical (a unit coefficient before a constant factor
// prints like a coefficient), so stability is asserted from the second
// print onward.
func FuzzPrintParse(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0})
	f.Add([]byte{255, 0, 128, 7, 9, 200, 13, 1, 1, 1})
	f.Add([]byte("\x80AA\x02"))
	f.Fuzz(func(t *testing.T, tape []byte) {
		db := parseDB()
		q := queryFromTape(db, tape)
		s1 := q.Format(db)
		p, err := Parse(db, s1)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s1, err)
		}
		s2 := p.Format(db)
		p2, err := Parse(db, s2)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s2, err)
		}
		if s3 := p2.Format(db); s2 != s3 {
			t.Fatalf("no fixpoint: %q -> %q -> %q", s1, s2, s3)
		}
	})
}

// queryFromTape deterministically assembles a query from a byte tape using
// only parseable factor shapes.
func queryFromTape(db *data.Database, tape []byte) *Query {
	pos := 0
	next := func() byte {
		if len(tape) == 0 {
			return 0
		}
		b := tape[pos%len(tape)]
		pos++
		return b
	}
	discrete := []string{"store", "item", "color"}
	numeric := []string{"sales", "price"}
	attr := func(names []string) data.AttrID {
		id, _ := db.AttrByName(names[int(next())%len(names)])
		return id
	}
	var groupBy []data.AttrID
	for i := 0; i < int(next())%3; i++ {
		groupBy = append(groupBy, attr(discrete))
	}
	var aggs []Aggregate
	for i := 0; i <= int(next())%3; i++ {
		var terms []Term
		for j := 0; j <= int(next())%2; j++ {
			var fs []Factor
			for k := 0; k < int(next())%3; k++ {
				switch next() % 6 {
				case 0:
					fs = append(fs, IdentF(attr(numeric)))
				case 1:
					fs = append(fs, PowF(attr(numeric), 2+int(next())%3))
				case 2:
					ops := []CmpOp{LE, LT, GE, GT, EQ, NE}
					fs = append(fs, IndicatorF(attr(numeric), ops[int(next())%len(ops)],
						float64(int(next())-128)/4))
				case 3:
					set := []int64{int64(next() % 8), int64(next() % 8)}
					fs = append(fs, InSetF(attr(discrete), set))
				case 4:
					fs = append(fs, LogF(attr(numeric)))
				default:
					fs = append(fs, ConstF(float64(next())/2))
				}
			}
			tm := NewTerm(fs...)
			tm.Coef = float64(int(next())-128) / 4
			if tm.Coef == 0 {
				tm.Coef = 1
			}
			terms = append(terms, tm)
		}
		aggs = append(aggs, NewAggregate("a", terms...))
	}
	return NewQuery("q", groupBy, aggs...)
}
