package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/data"
)

// Term is a product of factors with a scalar coefficient.
type Term struct {
	Coef    float64
	Factors []Factor
}

// NewTerm builds a term with coefficient 1.
func NewTerm(factors ...Factor) Term { return Term{Coef: 1, Factors: factors} }

// Scaled returns a copy of the term with the coefficient multiplied by c.
func (t Term) Scaled(c float64) Term {
	t.Coef *= c
	t.Factors = append([]Factor(nil), t.Factors...)
	return t
}

// Attrs appends the term's attributes to dst (deduplicated, sorted).
func (t Term) Attrs(dst []data.AttrID) []data.AttrID {
	for _, f := range t.Factors {
		if f.HasAttr() {
			dst = append(dst, f.Attr)
		}
	}
	return dedupAttrs(dst)
}

// Signature returns a structural identity string. Factor order within a term
// is not semantically meaningful, so signatures sort factor signatures.
func (t Term) Signature() string {
	sigs := make([]string, len(t.Factors))
	for i, f := range t.Factors {
		sigs[i] = f.Signature()
	}
	sort.Strings(sigs)
	return fmt.Sprintf("%g*%s", t.Coef, strings.Join(sigs, "*"))
}

// Aggregate is a SUM over a sum of products of factors: α = Σ_j c_j Π_k f_jk.
type Aggregate struct {
	Name  string
	Terms []Term
}

// NewAggregate builds an aggregate from terms.
func NewAggregate(name string, terms ...Term) Aggregate {
	return Aggregate{Name: name, Terms: terms}
}

// CountAgg is SUM(1).
func CountAgg() Aggregate {
	return Aggregate{Name: "count", Terms: []Term{NewTerm()}}
}

// SumAgg is SUM(attr).
func SumAgg(attr data.AttrID) Aggregate {
	return Aggregate{Name: fmt.Sprintf("sum(x%d)", attr), Terms: []Term{NewTerm(IdentF(attr))}}
}

// SumProdAgg is SUM(Π attrs).
func SumProdAgg(attrs ...data.AttrID) Aggregate {
	fs := make([]Factor, len(attrs))
	names := make([]string, len(attrs))
	for i, a := range attrs {
		fs[i] = IdentF(a)
		names[i] = fmt.Sprintf("x%d", a)
	}
	return Aggregate{
		Name:  "sum(" + strings.Join(names, "*") + ")",
		Terms: []Term{NewTerm(fs...)},
	}
}

// SumPowAgg is SUM(attr^exp).
func SumPowAgg(attr data.AttrID, exp int) Aggregate {
	if exp == 1 {
		return SumAgg(attr)
	}
	return Aggregate{
		Name:  fmt.Sprintf("sum(x%d^%d)", attr, exp),
		Terms: []Term{NewTerm(PowF(attr, exp))},
	}
}

// Attrs returns the sorted, deduplicated attributes read by the aggregate.
func (a Aggregate) Attrs() []data.AttrID {
	var dst []data.AttrID
	for _, t := range a.Terms {
		for _, f := range t.Factors {
			if f.HasAttr() {
				dst = append(dst, f.Attr)
			}
		}
	}
	return dedupAttrs(dst)
}

// Signature returns a structural identity string. Term order is not
// semantically meaningful.
func (a Aggregate) Signature() string {
	sigs := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		sigs[i] = t.Signature()
	}
	sort.Strings(sigs)
	return strings.Join(sigs, "+")
}

// Dynamic reports whether any factor is a dynamic UDF.
func (a Aggregate) Dynamic() bool {
	for _, t := range a.Terms {
		for _, f := range t.Factors {
			if f.Dynamic {
				return true
			}
		}
	}
	return false
}

// Query is one group-by aggregate batch member:
// Q(GroupBy; Aggs, MonoidAggs) += natural join of the database.
//
// Aggs are sum-product semiring aggregates (the invertible path);
// MonoidAggs are generalized aggregates (MIN/MAX/DISTINCT/top-k) evaluated
// over pluggable monoids. A query may carry either kind alone or both; the
// visible output columns are the Aggs columns followed by each MonoidAgg's
// Width() columns, in declaration order.
type Query struct {
	Name       string
	GroupBy    []data.AttrID
	Aggs       []Aggregate
	MonoidAggs []MonoidAgg
}

// NewQuery builds a query. Group-by attributes are deduplicated and sorted
// (the head of Q is a set; output ordering is not part of query semantics).
func NewQuery(name string, groupBy []data.AttrID, aggs ...Aggregate) *Query {
	return &Query{Name: name, GroupBy: dedupAttrs(append([]data.AttrID(nil), groupBy...)), Aggs: aggs}
}

// Attrs returns all attributes referenced by the query (group-by plus
// aggregate inputs, monoid folds included), sorted and deduplicated.
func (q *Query) Attrs() []data.AttrID {
	dst := append([]data.AttrID(nil), q.GroupBy...)
	for _, a := range q.Aggs {
		dst = append(dst, a.Attrs()...)
	}
	for _, m := range q.MonoidAggs {
		dst = append(dst, m.Attr)
	}
	return dedupAttrs(dst)
}

// NumCols is the number of visible output columns: one per sum aggregate
// plus each monoid aggregate's width.
func (q *Query) NumCols() int {
	n := len(q.Aggs)
	for _, m := range q.MonoidAggs {
		n += m.Width()
	}
	return n
}

// Validate checks the query against the database schema: every referenced
// attribute must exist in some relation, and group-by attributes must be
// discrete.
func (q *Query) Validate(db *data.Database) error {
	for _, g := range q.GroupBy {
		if int(g) >= db.NumAttrs() || g < 0 {
			return fmt.Errorf("query %q: unknown group-by attribute %d", q.Name, g)
		}
		if !db.Attribute(g).Kind.Discrete() {
			return fmt.Errorf("query %q: group-by attribute %q is numeric; only discrete attributes can be group-by keys",
				q.Name, db.Attribute(g).Name)
		}
	}
	for _, a := range q.Attrs() {
		if int(a) >= db.NumAttrs() || a < 0 {
			return fmt.Errorf("query %q: unknown attribute %d", q.Name, a)
		}
		found := false
		for _, rel := range db.Relations() {
			if rel.HasAttr(a) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("query %q: attribute %q appears in no relation",
				q.Name, db.Attribute(a).Name)
		}
	}
	for _, agg := range q.Aggs {
		if len(agg.Terms) == 0 {
			return fmt.Errorf("query %q: aggregate %q has no terms", q.Name, agg.Name)
		}
	}
	for _, m := range q.MonoidAggs {
		if err := q.validateMonoid(db, m); err != nil {
			return err
		}
	}
	if len(q.Aggs) == 0 && len(q.MonoidAggs) == 0 {
		return fmt.Errorf("query %q: no aggregates", q.Name)
	}
	return nil
}

func dedupAttrs(ids []data.AttrID) []data.AttrID {
	if len(ids) <= 1 {
		return ids
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}
