package query

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/monoid"
)

// MonoidOp identifies one of the generalized (non-semiring) aggregate
// operators a query can request. Each op resolves to a registered
// internal/monoid instance via MonoidAgg.Instance; all of them are
// idempotent and non-invertible, so the engine maintains them through
// support views and per-group re-folds instead of delete-as-negative-insert
// (see internal/core and internal/moo).
type MonoidOp int

// The supported generalized aggregate operators.
const (
	// OpMin is MIN(attr): the smallest value of the attribute per group.
	OpMin MonoidOp = iota
	// OpMax is MAX(attr).
	OpMax
	// OpDistinct is COUNT(DISTINCT attr): the number of distinct values of
	// the attribute per group.
	OpDistinct
	// OpTopK is TOP<k>(attr): the k largest distinct values per group,
	// descending, padded with -monoid.Empty.
	OpTopK
)

func (op MonoidOp) String() string {
	switch op {
	case OpMin:
		return "MIN"
	case OpMax:
		return "MAX"
	case OpDistinct:
		return "DISTINCT"
	case OpTopK:
		return "TOP"
	}
	return "?"
}

// MonoidAgg is one generalized aggregate column group of a query: operator
// Op folded over attribute Attr within each group. Attr must be a discrete
// attribute (the fold is over dictionary codes, like group-by keys). K is
// the buffer bound for OpTopK and ignored otherwise.
type MonoidAgg struct {
	Name string
	Op   MonoidOp
	Attr data.AttrID
	K    int
}

// MinOf builds MIN(attr).
func MinOf(attr data.AttrID) MonoidAgg {
	return MonoidAgg{Name: fmt.Sprintf("min(x%d)", attr), Op: OpMin, Attr: attr}
}

// MaxOf builds MAX(attr).
func MaxOf(attr data.AttrID) MonoidAgg {
	return MonoidAgg{Name: fmt.Sprintf("max(x%d)", attr), Op: OpMax, Attr: attr}
}

// DistinctOf builds COUNT(DISTINCT attr).
func DistinctOf(attr data.AttrID) MonoidAgg {
	return MonoidAgg{Name: fmt.Sprintf("distinct(x%d)", attr), Op: OpDistinct, Attr: attr}
}

// TopKOf builds TOP<k>(attr).
func TopKOf(attr data.AttrID, k int) MonoidAgg {
	return MonoidAgg{Name: fmt.Sprintf("top%d(x%d)", k, attr), Op: OpTopK, Attr: attr, K: k}
}

// Width is the number of output columns the aggregate finalizes to: K for
// top-k, 1 otherwise.
func (m MonoidAgg) Width() int {
	if m.Op == OpTopK {
		if m.K < 1 {
			return 1
		}
		return m.K
	}
	return 1
}

// Instance resolves the operator to its monoid algebra.
func (m MonoidAgg) Instance() (monoid.Monoid, error) {
	switch m.Op {
	case OpMin:
		return monoid.MinMonoid{}, nil
	case OpMax:
		return monoid.MaxMonoid{}, nil
	case OpDistinct:
		return monoid.DistinctMonoid{}, nil
	case OpTopK:
		if m.K < 1 {
			return nil, fmt.Errorf("query: aggregate %q: top-k bound must be >= 1, got %d", m.Name, m.K)
		}
		return monoid.TopKMonoid{K: m.K}, nil
	}
	return nil, fmt.Errorf("query: aggregate %q: unknown monoid op %d", m.Name, int(m.Op))
}

// validateMonoid checks one monoid aggregate against the schema: the
// operator must resolve, and the folded attribute must exist and be
// discrete.
func (q *Query) validateMonoid(db *data.Database, m MonoidAgg) error {
	if _, err := m.Instance(); err != nil {
		return fmt.Errorf("query %q: %w", q.Name, err)
	}
	if int(m.Attr) >= db.NumAttrs() || m.Attr < 0 {
		return fmt.Errorf("query %q: aggregate %q: unknown attribute %d", q.Name, m.Name, m.Attr)
	}
	if !db.Attribute(m.Attr).Kind.Discrete() {
		return fmt.Errorf("query %q: aggregate %q: attribute %q is numeric; %s folds over discrete attributes",
			q.Name, m.Name, db.Attribute(m.Attr).Name, m.Op)
	}
	return nil
}
