package query

import (
	"strings"
	"testing"

	"repro/internal/data"
)

func printDB(t *testing.T) *data.Database {
	t.Helper()
	db := data.NewDatabase()
	db.Attr("store", data.Key)
	db.Attr("price", data.Numeric)
	db.Attr("units", data.Numeric)
	return db
}

func TestFormatFactor(t *testing.T) {
	db := printDB(t)
	cases := []struct {
		f    Factor
		want string
	}{
		{ConstF(2.5), "2.5"},
		{IdentF(1), "price"},
		{PowF(2, 2), "units^2"},
		{IndicatorF(1, LE, 5), "1[price <= 5]"},
		{InSetF(0, []int64{1, 2}), "1[store in {1,2}]"},
		{LogF(1), "log(price)"},
		{CustomF("sq", 1, nil), "sq(price)"},
		{DynamicF("cond", 1, nil), "cond!(price)"},
	}
	for _, c := range cases {
		if got := FormatFactor(db, c.f); got != c.want {
			t.Errorf("FormatFactor = %q, want %q", got, c.want)
		}
	}
	// Without a database, attribute IDs render positionally.
	if got := FormatFactor(nil, IdentF(3)); got != "x3" {
		t.Errorf("nil-db format = %q", got)
	}
}

func TestFormatTermAndAggregate(t *testing.T) {
	db := printDB(t)
	term := NewTerm(IdentF(1), IdentF(2)).Scaled(2)
	if got := FormatTerm(db, term); got != "2·price·units" {
		t.Errorf("FormatTerm = %q", got)
	}
	if got := FormatTerm(db, NewTerm()); got != "1" {
		t.Errorf("empty term = %q", got)
	}
	agg := NewAggregate("a", NewTerm(IdentF(1)), NewTerm(PowF(2, 2)).Scaled(-1))
	if got := FormatAggregate(db, agg); got != "price + -1·units^2" {
		t.Errorf("FormatAggregate = %q", got)
	}
}

func TestQueryFormat(t *testing.T) {
	db := printDB(t)
	q := NewQuery("q", []data.AttrID{0}, SumAgg(1), CountAgg())
	got := q.Format(db)
	for _, want := range []string{"q(store; ", "SUM price", "SUM 1"} {
		if !strings.Contains(got, want) {
			t.Errorf("Format = %q missing %q", got, want)
		}
	}
	scalar := NewQuery("s", nil, CountAgg())
	if strings.Contains(scalar.Format(db), ";") {
		t.Errorf("scalar format has separator: %q", scalar.Format(db))
	}
	if !strings.Contains(scalar.Format(nil), "SUM 1") {
		t.Errorf("nil-db scalar format = %q", scalar.Format(nil))
	}
}
