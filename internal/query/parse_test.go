package query

import (
	"strings"
	"testing"

	"repro/internal/data"
)

func parseDB() *data.Database {
	db := data.NewDatabase()
	db.Attr("store", data.Key)
	db.Attr("item", data.Key)
	db.Attr("color", data.Categorical)
	db.Attr("sales", data.Numeric)
	db.Attr("price", data.Numeric)
	return db
}

func TestParseRoundTrip(t *testing.T) {
	db := parseDB()
	store, _ := db.AttrByName("store")
	item, _ := db.AttrByName("item")
	color, _ := db.AttrByName("color")
	sales, _ := db.AttrByName("sales")
	price, _ := db.AttrByName("price")

	cases := []*Query{
		NewQuery("count", nil, CountAgg()),
		NewQuery("q1", []data.AttrID{store}, SumAgg(sales)),
		NewQuery("q2", []data.AttrID{store, item}, SumProdAgg(sales, price), SumPowAgg(sales, 3)),
		NewQuery("q3", []data.AttrID{color},
			NewAggregate("a", NewTerm(IndicatorF(sales, LE, 2.5), IdentF(price)).Scaled(2),
				NewTerm(InSetF(color, []int64{1, 2})).Scaled(-1)),
			NewAggregate("b", NewTerm(LogF(price))),
			NewAggregate("c", NewTerm(ConstF(3)))),
	}
	for _, q := range cases {
		s1 := q.Format(db)
		p1, err := Parse(db, s1)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s1, err)
		}
		s2 := p1.Format(db)
		if s1 != s2 {
			t.Fatalf("round trip changed %q to %q", s1, s2)
		}
		if len(p1.GroupBy) != len(q.GroupBy) || len(p1.Aggs) != len(q.Aggs) {
			t.Fatalf("round trip of %q lost structure", s1)
		}
	}
}

func TestParsePositional(t *testing.T) {
	q := NewQuery("q", []data.AttrID{2}, SumAgg(3), CountAgg())
	s1 := q.Format(nil)
	p, err := Parse(nil, s1)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s1, err)
	}
	if s2 := p.Format(nil); s1 != s2 {
		t.Fatalf("positional round trip changed %q to %q", s1, s2)
	}
}

func TestParseOperators(t *testing.T) {
	db := parseDB()
	sales, _ := db.AttrByName("sales")
	for _, op := range []CmpOp{LE, LT, GE, GT, EQ, NE} {
		q := NewQuery("q", nil, NewAggregate("a", NewTerm(IndicatorF(sales, op, -1.25))))
		s1 := q.Format(db)
		p, err := Parse(db, s1)
		if err != nil {
			t.Fatalf("op %v: Parse(%q): %v", op, s1, err)
		}
		f := p.Aggs[0].Terms[0].Factors[0]
		if f.Kind != Indicator || f.Op != op || f.Threshold != -1.25 {
			t.Fatalf("op %v: parsed %+v from %q", op, f, s1)
		}
	}
}

func TestParseErrors(t *testing.T) {
	db := parseDB()
	bad := []string{
		"",
		"noparen",
		"q(SUM",
		"q()",
		"q(store)",               // no SUM
		"q(ghost; SUM 1)",        // unknown group-by attribute
		"q(SUM ghost)",           // unknown aggregate attribute
		"q(SUM udf(sales))",      // custom factors have no textual form
		"q(SUM sales^x)",         // bad exponent
		"q(SUM 1[sales ? 3])",    // bad operator
		"q(SUM 1[color in {z}])", // bad set element
	}
	for _, s := range bad {
		if _, err := Parse(db, s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
	if _, err := Parse(db, "q(SUM store·2)"); err != nil {
		t.Errorf("discrete attribute in aggregate should parse (validation is separate): %v", err)
	}
	if !strings.Contains(mustErr(t, db, "q(SUM ghost)").Error(), "unknown attribute") {
		t.Error("unknown attribute error not surfaced")
	}
}

func mustErr(t *testing.T, db *data.Database, s string) error {
	t.Helper()
	_, err := Parse(db, s)
	if err == nil {
		t.Fatalf("Parse(%q) succeeded", s)
	}
	return err
}

// TestParseMonoidRoundTrip checks Parse ∘ Format is the identity on queries
// carrying generalized (monoid) aggregates, alone and mixed with SUMs, and
// that the parsed structure (op, attribute, top-k bound) survives.
func TestParseMonoidRoundTrip(t *testing.T) {
	db := parseDB()
	store, _ := db.AttrByName("store")
	item, _ := db.AttrByName("item")
	color, _ := db.AttrByName("color")
	sales, _ := db.AttrByName("sales")

	mixed := NewQuery("mixed", []data.AttrID{store}, SumAgg(sales), CountAgg())
	mixed.MonoidAggs = []MonoidAgg{MinOf(item), MaxOf(item)}
	pure := NewQuery("pure", []data.AttrID{color})
	pure.MonoidAggs = []MonoidAgg{DistinctOf(store), TopKOf(item, 3)}
	scalar := NewQuery("scalar", nil, CountAgg())
	scalar.MonoidAggs = []MonoidAgg{TopKOf(color, 2)}

	for _, q := range []*Query{mixed, pure, scalar} {
		s1 := q.Format(db)
		p, err := Parse(db, s1)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s1, err)
		}
		if s2 := p.Format(db); s1 != s2 {
			t.Fatalf("round trip changed %q to %q", s1, s2)
		}
		if len(p.MonoidAggs) != len(q.MonoidAggs) {
			t.Fatalf("%q: parsed %d monoid aggregates, want %d", s1, len(p.MonoidAggs), len(q.MonoidAggs))
		}
		for i, m := range p.MonoidAggs {
			want := q.MonoidAggs[i]
			if m.Op != want.Op || m.Attr != want.Attr || m.K != want.K {
				t.Fatalf("%q: aggregate %d parsed as %+v, want %+v", s1, i, m, want)
			}
		}
		if p.NumCols() != q.NumCols() {
			t.Fatalf("%q: parsed width %d, want %d", s1, p.NumCols(), q.NumCols())
		}
	}
}

// TestParseMonoidErrors covers the monoid-specific reject paths: malformed
// top-k bounds, unknown operators and unknown attributes fail at Parse;
// a numeric fold attribute parses but fails Validate (mirroring how
// discrete attributes inside SUM terms are a validation concern).
func TestParseMonoidErrors(t *testing.T) {
	db := parseDB()
	bad := []string{
		"q(store; TOP0 item)",   // k < 1
		"q(store; TOPx item)",   // non-numeric k
		"q(store; MIN ghost)",   // unknown attribute
		"q(store; MEDIAN item)", // unknown operator
		"q(store; MIN)",         // missing attribute
	}
	for _, s := range bad {
		if _, err := Parse(db, s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
	if !strings.Contains(mustErr(t, db, "q(store; TOP0 item)").Error(), "top-k") {
		t.Error("bad top-k bound error not surfaced")
	}

	// A numeric fold attribute parses; Validate rejects it against a schema
	// where the attributes are live.
	vdb := data.NewDatabase()
	store := vdb.Attr("store", data.Key)
	sales := vdb.Attr("sales", data.Numeric)
	if err := vdb.AddRelation(data.NewRelation("Sales",
		[]data.AttrID{store, sales},
		[]data.Column{data.NewIntColumn([]int64{0}), data.NewFloatColumn([]float64{1})})); err != nil {
		t.Fatal(err)
	}
	q, err := Parse(vdb, "q(store; MIN sales)")
	if err != nil {
		t.Fatalf("numeric fold attribute should parse (validation is separate): %v", err)
	}
	verr := q.Validate(vdb)
	if verr == nil || !strings.Contains(verr.Error(), "numeric") {
		t.Fatalf("Validate over numeric fold attribute = %v, want a numeric-attribute error", verr)
	}
}
